# Tier-1 verify and CI entry points for the intra-replication workspace.
#
#   make verify   — exactly the tier-1 gate from ROADMAP.md
#   make ci       — everything CI runs (verify + benches/examples + fmt)

CARGO ?= cargo

.PHONY: all build test verify bench-build docs fmt fmt-check ci clean

all: build

build:
	$(CARGO) build --release

test:
	$(CARGO) test -q

# Tier-1 verify (ROADMAP.md): must stay green on every PR.
verify:
	$(CARGO) build --release && $(CARGO) test -q

# All seven Criterion bench targets, the `figures` bin and the five examples
# must keep compiling even when not run.
bench-build:
	$(CARGO) build --benches --examples

# API docs for the whole workspace; warnings are errors (ipr-core and
# kernels additionally deny missing_docs at compile time).
docs:
	RUSTDOCFLAGS="-D warnings" $(CARGO) doc --no-deps --workspace

fmt:
	$(CARGO) fmt

fmt-check:
	$(CARGO) fmt --check

ci: verify bench-build docs fmt-check

clean:
	$(CARGO) clean
