# Tier-1 verify and CI entry points for the intra-replication workspace.
#
#   make verify   — exactly the tier-1 gate from ROADMAP.md
#   make ci       — everything CI runs (verify + benches/examples + fmt)

CARGO ?= cargo
CAMPAIGN_JOBS ?= 4
# Relative tolerance for the campaign regression gate; 0 = bit-exact
# (the simulation is deterministic, so the default gate is exact).
CAMPAIGN_TOL ?= 0

.PHONY: all build test verify bench-build docs fmt fmt-check clippy \
        campaign-smoke failures-smoke weak-smoke serve-smoke bench-smoke \
        ckpt-smoke golden golden-failures golden-weak golden-ckpt bench-json \
        api-surface api-surface-check ci clean

# Label recorded with the BENCH.json entry (CI passes its own).
BENCH_LABEL ?= local

all: build

build:
	$(CARGO) build --release

test:
	$(CARGO) test -q

# Tier-1 verify (ROADMAP.md): must stay green on every PR.
verify:
	$(CARGO) build --release && $(CARGO) test -q

# All seven Criterion bench targets, the `figures` bin and the five examples
# must keep compiling even when not run.
bench-build:
	$(CARGO) build --benches --examples

# API docs for the whole workspace; warnings are errors (ipr-core and
# kernels additionally deny missing_docs at compile time).
docs:
	RUSTDOCFLAGS="-D warnings" $(CARGO) doc --no-deps --workspace

fmt:
	$(CARGO) fmt

fmt-check:
	$(CARGO) fmt --check

# Lints are errors, everywhere (lib/bins/tests/benches/examples).
clippy:
	$(CARGO) clippy --workspace --all-targets -- -D warnings

# The CI determinism/regression gate, reproducible locally: run the smoke
# campaign grid and compare it against the checked-in golden baseline.
campaign-smoke:
	$(CARGO) build --release -p campaign
	./target/release/campaign run --grid smoke --jobs $(CAMPAIGN_JOBS) \
		--out target/campaign-smoke.json --csv target/campaign-smoke.csv
	./target/release/campaign diff crates/campaign/golden/smoke.json \
		target/campaign-smoke.json --tol $(CAMPAIGN_TOL)

# The failure-model gate: run the failure sweep (fitted MTBF hazards and
# correlated node/rack domains included) at two job counts, require both
# reports byte-identical, then gate on the checked-in golden baseline.
failures-smoke:
	$(CARGO) build --release -p campaign
	./target/release/campaign run --grid failures --jobs 1 \
		--out target/campaign-failures-j1.json
	./target/release/campaign run --grid failures --jobs 8 \
		--out target/campaign-failures.json --csv target/campaign-failures.csv
	./target/release/campaign diff target/campaign-failures-j1.json \
		target/campaign-failures.json --tol 0
	./target/release/campaign diff crates/campaign/golden/failures.json \
		target/campaign-failures.json --tol $(CAMPAIGN_TOL)

# The event-engine determinism gate: run the weak-scaling smoke sweep at
# two engine worker counts and require both to match the checked-in golden
# baseline bit-exactly, then prove the 10k-logical-rank sweep still runs.
weak-smoke:
	$(CARGO) build --release -p campaign
	./target/release/campaign weak --sweep weak-smoke --workers 1 \
		--out target/weak-smoke-w1.json
	./target/release/campaign weak --sweep weak-smoke --workers 8 \
		--out target/weak-smoke-w8.json
	./target/release/campaign diff crates/campaign/golden/weak_scaling.json \
		target/weak-smoke-w1.json --tol 0
	./target/release/campaign diff crates/campaign/golden/weak_scaling.json \
		target/weak-smoke-w8.json --tol 0
	./target/release/campaign weak --sweep weak-10k > /dev/null

# The campaign-service gate: submit the smoke grid to a fresh spool twice
# and drain it through `campaign serve` with a fresh run cache.  The second
# pass must be a pure cache replay (0 runs executed), its final report must
# be byte-identical to the first pass, and both must diff clean against the
# checked-in golden baseline.
serve-smoke:
	$(CARGO) build --release -p campaign
	rm -rf target/serve-smoke
	./target/release/campaign submit --spool target/serve-smoke/spool \
		--id first --grid smoke
	./target/release/campaign serve --spool target/serve-smoke/spool \
		--cache-dir target/serve-smoke/cache --jobs $(CAMPAIGN_JOBS) --drain
	./target/release/campaign submit --spool target/serve-smoke/spool \
		--id second --grid smoke
	./target/release/campaign serve --spool target/serve-smoke/spool \
		--cache-dir target/serve-smoke/cache --jobs $(CAMPAIGN_JOBS) --drain
	@grep -q '"executed": 0,' target/serve-smoke/spool/done/second.json || \
		(echo "error: warm re-sweep executed runs (expected 100% cache hits)" && exit 1)
	cmp target/serve-smoke/spool/results/first.json \
		target/serve-smoke/spool/results/second.json
	./target/release/campaign diff crates/campaign/golden/smoke.json \
		target/serve-smoke/spool/results/second.json --tol $(CAMPAIGN_TOL)

# The checkpoint/restart gate: run the replication-vs-C/R grid (Young /
# Daly intervals against the fitted MTBF hazards) at two job counts,
# require both reports byte-identical, then gate on the checked-in golden
# baseline.
ckpt-smoke:
	$(CARGO) build --release -p campaign
	./target/release/campaign run --grid ckpt --jobs 1 \
		--out target/campaign-ckpt-j1.json
	./target/release/campaign run --grid ckpt --jobs 8 \
		--out target/campaign-ckpt.json --csv target/campaign-ckpt.csv
	./target/release/campaign diff target/campaign-ckpt-j1.json \
		target/campaign-ckpt.json --tol 0
	./target/release/campaign diff crates/campaign/golden/ckpt.json \
		target/campaign-ckpt.json --tol $(CAMPAIGN_TOL)

# Structural benchmark gate: the fabric + kernel suites at tiny scale,
# asserting only structural invariants — the zero-copy byte budgets, finite
# checksums and the BENCH.json entry schema.  Never wall-clock numbers, so
# it stays green on arbitrarily slow shared runners.
bench-smoke:
	$(CARGO) build --release -p campaign
	./target/release/bench-json --smoke

# Wall-clock benchmark harness: runs the fabric microbenchmarks and a timed
# smoke campaign, appending one entry to the checked-in BENCH.json trajectory
# (see the README for the schema).  Commit the new entry when a PR changes
# host performance; discard it otherwise.
bench-json:
	$(CARGO) build --release -p campaign
	./target/release/bench-json --append BENCH.json --label $(BENCH_LABEL) \
		--jobs $(CAMPAIGN_JOBS)

# Regenerate the checked-in dump of the workspace's `pub` API surface
# (grep-based, no network; see scripts/api-surface.sh).  Run it whenever a
# PR changes the public API and commit the diff.
api-surface:
	./scripts/api-surface.sh > docs/api-surface.txt

# The CI drift gate: the dumped surface must match the checked-in file.
api-surface-check:
	@mkdir -p target
	./scripts/api-surface.sh > target/api-surface.txt
	@diff -u docs/api-surface.txt target/api-surface.txt || \
		(echo "error: public API surface drifted — run 'make api-surface' and commit docs/api-surface.txt" && exit 1)

# Regenerate the golden baseline after an intentional behaviour change
# (review the diff before committing!).
golden:
	$(CARGO) build --release -p campaign
	./target/release/campaign run --grid smoke --jobs $(CAMPAIGN_JOBS) \
		--strip-informational --out crates/campaign/golden/smoke.json

# Same, for the failure-model sweep baseline.
golden-failures:
	$(CARGO) build --release -p campaign
	./target/release/campaign run --grid failures --jobs $(CAMPAIGN_JOBS) \
		--strip-informational --out crates/campaign/golden/failures.json

# Same, for the event-engine weak-scaling baseline.
golden-weak:
	$(CARGO) build --release -p campaign
	./target/release/campaign weak --sweep weak-smoke --workers 1 \
		--strip-informational --out crates/campaign/golden/weak_scaling.json

# Same, for the checkpoint/restart sweep baseline.
golden-ckpt:
	$(CARGO) build --release -p campaign
	./target/release/campaign run --grid ckpt --jobs $(CAMPAIGN_JOBS) \
		--strip-informational --out crates/campaign/golden/ckpt.json

ci: verify bench-build docs fmt-check clippy api-surface-check campaign-smoke failures-smoke weak-smoke ckpt-smoke serve-smoke bench-smoke

clean:
	$(CARGO) clean
