//! In-tree shim for `proptest`.
//!
//! The build environment has no crates.io access, so this crate reimplements
//! the subset of the proptest API the workspace's property tests use:
//!
//! * the [`proptest!`] macro (`fn name(arg in strategy, ...) { body }`);
//! * [`prop_assert!`] / [`prop_assert_eq!`] / [`prop_assume!`];
//! * range strategies (`0usize..64`, `-3.0f64..3.0`, `1u8..7`, ...);
//! * [`collection::vec`] for vectors with a sampled length;
//! * [`arbitrary::any`] plus the [`Strategy`] combinators `prop_filter` and
//!   `prop_map`.
//!
//! It is *deterministic*: every test function derives its RNG seed from the
//! test name, so failures reproduce run-to-run.  Shrinking is not
//! implemented — a failing case panics with the usual assert message.  The
//! number of cases per property defaults to 64 and can be overridden with
//! the `PROPTEST_CASES` environment variable.

use std::ops::{Range, RangeInclusive};

pub use rand::rngs::SmallRng as TestRng;
use rand::{Rng as _, SeedableRng as _};

/// Number of cases each property runs (override with `PROPTEST_CASES`).
pub fn num_cases() -> u32 {
    std::env::var("PROPTEST_CASES")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(64)
}

/// Per-block configuration, set with `#![proptest_config(...)]`.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// How many cases each property in the block runs.
    pub cases: u32,
}

impl ProptestConfig {
    /// A configuration running `cases` cases per property.
    pub fn with_cases(cases: u32) -> Self {
        Self { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        Self { cases: num_cases() }
    }
}

/// Derives the deterministic RNG for a named property test.
pub fn test_rng(name: &str) -> TestRng {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in name.bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01B3);
    }
    TestRng::seed_from_u64(h)
}

/// A generator of test-case values.
pub trait Strategy {
    /// The type of value this strategy produces.
    type Value;

    /// Draws one value.
    fn sample(&self, rng: &mut TestRng) -> Self::Value;

    /// Keeps only values for which `f` returns true (resampling up to a cap).
    fn prop_filter<F>(self, whence: &'static str, f: F) -> Filter<Self, F>
    where
        Self: Sized,
        F: Fn(&Self::Value) -> bool,
    {
        Filter {
            inner: self,
            whence,
            predicate: f,
        }
    }

    /// Transforms produced values with `f`.
    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        Map {
            inner: self,
            func: f,
        }
    }
}

/// Strategy produced by [`Strategy::prop_filter`].
pub struct Filter<S, F> {
    inner: S,
    whence: &'static str,
    predicate: F,
}

impl<S: Strategy, F: Fn(&S::Value) -> bool> Strategy for Filter<S, F> {
    type Value = S::Value;
    fn sample(&self, rng: &mut TestRng) -> S::Value {
        for _ in 0..1000 {
            let v = self.inner.sample(rng);
            if (self.predicate)(&v) {
                return v;
            }
        }
        panic!(
            "prop_filter({:?}) rejected 1000 consecutive samples",
            self.whence
        );
    }
}

/// Strategy produced by [`Strategy::prop_map`].
pub struct Map<S, F> {
    inner: S,
    func: F,
}

impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
    type Value = O;
    fn sample(&self, rng: &mut TestRng) -> O {
        (self.func)(self.inner.sample(rng))
    }
}

/// Strategy that always yields a clone of one value.
#[derive(Clone, Debug)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn sample(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

macro_rules! impl_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut TestRng) -> $t {
                rng.gen_range(self.clone())
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut TestRng) -> $t {
                rng.gen_range(self.clone())
            }
        }
    )*};
}
impl_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize, f32, f64);

/// `any::<T>()` support, mirroring `proptest::arbitrary`.
pub mod arbitrary {
    use super::{Strategy, TestRng};
    use rand::Rng as _;
    use std::marker::PhantomData;

    /// Types with a canonical full-range strategy.
    pub trait Arbitrary: Sized {
        /// Draws an unconstrained value (full bit range; floats may be
        /// non-finite, mirroring real proptest's `any::<f64>()`).
        fn arbitrary(rng: &mut TestRng) -> Self;
    }

    macro_rules! impl_arbitrary_int {
        ($($t:ty),*) => {$(
            impl Arbitrary for $t {
                fn arbitrary(rng: &mut TestRng) -> Self {
                    rng.gen::<u64>() as $t
                }
            }
        )*};
    }
    impl_arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    impl Arbitrary for bool {
        fn arbitrary(rng: &mut TestRng) -> Self {
            rng.gen()
        }
    }

    impl Arbitrary for f64 {
        fn arbitrary(rng: &mut TestRng) -> Self {
            // Full bit pattern: includes negatives, infinities and NaNs, so
            // `.prop_filter("finite", ...)` is exercised like upstream.
            f64::from_bits(rng.gen::<u64>())
        }
    }

    impl Arbitrary for f32 {
        fn arbitrary(rng: &mut TestRng) -> Self {
            f32::from_bits(rng.gen::<u32>())
        }
    }

    /// Strategy returned by [`any`].
    pub struct Any<T>(PhantomData<T>);

    impl<T: Arbitrary> Strategy for Any<T> {
        type Value = T;
        fn sample(&self, rng: &mut TestRng) -> T {
            T::arbitrary(rng)
        }
    }

    /// The canonical strategy for `T`.
    pub fn any<T: Arbitrary>() -> Any<T> {
        Any(PhantomData)
    }
}

/// Collection strategies, mirroring `proptest::collection`.
pub mod collection {
    use super::{Strategy, TestRng};
    use rand::Rng as _;
    use std::ops::Range;

    /// Strategy returned by [`vec()`].
    pub struct VecStrategy<S> {
        element: S,
        len: Range<usize>,
    }

    /// A vector whose length is drawn from `len` and whose elements are drawn
    /// from `element`.
    pub fn vec<S: Strategy>(element: S, len: Range<usize>) -> VecStrategy<S> {
        VecStrategy { element, len }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn sample(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let n = if self.len.is_empty() {
                0
            } else {
                rng.gen_range(self.len.clone())
            };
            (0..n).map(|_| self.element.sample(rng)).collect()
        }
    }
}

pub use arbitrary::any;

/// The common imports, mirroring `proptest::prelude::*`.
pub mod prelude {
    pub use crate::arbitrary::{any, Arbitrary};
    pub use crate::{
        prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, proptest, Just, ProptestConfig,
        Strategy,
    };
}

/// Defines property tests: `proptest! { #[test] fn name(x in strat) { .. } }`.
///
/// An optional `#![proptest_config(ProptestConfig::with_cases(n))]` first
/// line overrides the case count for every property in the block.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($config:expr)]
     $($(#[$meta:meta])* fn $name:ident($($arg:ident in $strat:expr),+ $(,)?) $body:block)*) => {
        $crate::__proptest_impl!(($config) $($(#[$meta])* fn $name($($arg in $strat),+) $body)*);
    };
    ($($(#[$meta:meta])* fn $name:ident($($arg:ident in $strat:expr),+ $(,)?) $body:block)*) => {
        $crate::__proptest_impl!(($crate::ProptestConfig::default())
            $($(#[$meta])* fn $name($($arg in $strat),+) $body)*);
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    (($config:expr) $($(#[$meta:meta])* fn $name:ident($($arg:ident in $strat:expr),+ $(,)?) $body:block)*) => {
        $(
            $(#[$meta])*
            fn $name() {
                let __config: $crate::ProptestConfig = $config;
                let mut __rng = $crate::test_rng(concat!(module_path!(), "::", stringify!($name)));
                for __case in 0..__config.cases {
                    $(let $arg = $crate::Strategy::sample(&($strat), &mut __rng);)+
                    $body
                }
            }
        )*
    };
}

/// Asserts a condition inside a property (panics with the case number).
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => { assert!($cond) };
    ($cond:expr, $($fmt:tt)*) => { assert!($cond, $($fmt)*) };
}

/// Asserts equality inside a property.
#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr) => { assert_eq!($a, $b) };
    ($a:expr, $b:expr, $($fmt:tt)*) => { assert_eq!($a, $b, $($fmt)*) };
}

/// Asserts inequality inside a property.
#[macro_export]
macro_rules! prop_assert_ne {
    ($a:expr, $b:expr) => { assert_ne!($a, $b) };
    ($a:expr, $b:expr, $($fmt:tt)*) => { assert_ne!($a, $b, $($fmt)*) };
}

/// Skips the current case when its precondition does not hold.
///
/// Real proptest resamples; re-checking a precondition is rare in this
/// workspace, so skipping the case (continuing the loop) is equivalent for
/// test soundness.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !($cond) {
            continue;
        }
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #[test]
        fn ranges_respect_bounds(x in 3usize..17, y in -2.5f64..2.5) {
            prop_assert!((3..17).contains(&x));
            prop_assert!((-2.5..2.5).contains(&y));
        }

        #[test]
        fn vec_strategy_respects_len_and_elements(
            xs in crate::collection::vec(-1.0f64..1.0, 2..9),
        ) {
            prop_assert!(xs.len() >= 2 && xs.len() < 9);
            for v in &xs {
                prop_assert!((-1.0..1.0).contains(v));
            }
        }

        #[test]
        fn filter_and_map_compose(
            v in any::<f64>().prop_filter("finite", |v| v.is_finite()).prop_map(|v| v.abs()),
        ) {
            prop_assert!(v.is_finite() && v >= 0.0);
        }
    }

    #[test]
    fn deterministic_across_runs() {
        let mut a = crate::test_rng("x");
        let mut b = crate::test_rng("x");
        let s = 0usize..1000;
        for _ in 0..32 {
            assert_eq!(Strategy::sample(&s, &mut a), Strategy::sample(&s, &mut b));
        }
    }
}
