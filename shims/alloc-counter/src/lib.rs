//! Counting global allocator for allocation-budget tests.
//!
//! Unlike the other directories under `shims/`, this crate does not stand in
//! for a crates.io dependency — it is a tiny test utility: a
//! [`CountingAllocator`] that wraps the system allocator and counts every
//! allocation, so a test can assert an allocation *budget* (e.g. "a logical
//! send to `r` replicas performs O(1) payload-sized allocations, not
//! O(r)").
//!
//! Usage in a test binary:
//!
//! ```ignore
//! #[global_allocator]
//! static ALLOC: alloc_counter::CountingAllocator = alloc_counter::CountingAllocator;
//!
//! alloc_counter::set_large_threshold(512 * 1024);
//! let before = alloc_counter::snapshot();
//! // ... code under budget ...
//! let stats = alloc_counter::since(&before);
//! assert!(stats.large_allocs <= 4);
//! ```
//!
//! Counters are process-wide and updated with relaxed atomics; tests that
//! measure a window spanning several threads should make the window cover
//! the whole multi-threaded region (as the replication fan-out test does)
//! rather than expect per-thread attribution.

use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};

static ALLOCS: AtomicU64 = AtomicU64::new(0);
static ALLOC_BYTES: AtomicU64 = AtomicU64::new(0);
static LARGE_ALLOCS: AtomicU64 = AtomicU64::new(0);
/// Allocations of at least this size count as "large" (payload-sized).
static LARGE_THRESHOLD: AtomicUsize = AtomicUsize::new(usize::MAX);

/// A `GlobalAlloc` wrapper around [`System`] that counts allocations.
pub struct CountingAllocator;

fn note(size: usize) {
    ALLOCS.fetch_add(1, Ordering::Relaxed);
    ALLOC_BYTES.fetch_add(size as u64, Ordering::Relaxed);
    if size >= LARGE_THRESHOLD.load(Ordering::Relaxed) {
        LARGE_ALLOCS.fetch_add(1, Ordering::Relaxed);
    }
}

// SAFETY: defers every allocation verbatim to `System`; the only added
// behaviour is relaxed atomic counting, which allocates nothing.
unsafe impl GlobalAlloc for CountingAllocator {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        note(layout.size());
        unsafe { System.alloc(layout) }
    }

    unsafe fn alloc_zeroed(&self, layout: Layout) -> *mut u8 {
        note(layout.size());
        unsafe { System.alloc_zeroed(layout) }
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        // A growing realloc materializes `new_size` fresh bytes; count it
        // like an allocation of the new size.
        note(new_size);
        unsafe { System.realloc(ptr, layout, new_size) }
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        unsafe { System.dealloc(ptr, layout) }
    }
}

/// Counter values at one instant (see [`snapshot`] / [`since`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Stats {
    /// Number of allocations.
    pub allocs: u64,
    /// Total bytes requested.
    pub bytes: u64,
    /// Allocations at least as large as the configured threshold.
    pub large_allocs: u64,
}

/// Sets the size (in bytes) from which an allocation counts as "large".
pub fn set_large_threshold(bytes: usize) {
    LARGE_THRESHOLD.store(bytes, Ordering::Relaxed);
}

/// Current counter values.
pub fn snapshot() -> Stats {
    Stats {
        allocs: ALLOCS.load(Ordering::Relaxed),
        bytes: ALLOC_BYTES.load(Ordering::Relaxed),
        large_allocs: LARGE_ALLOCS.load(Ordering::Relaxed),
    }
}

/// Counter deltas since an earlier [`snapshot`].
pub fn since(before: &Stats) -> Stats {
    let now = snapshot();
    Stats {
        allocs: now.allocs - before.allocs,
        bytes: now.bytes - before.bytes,
        large_allocs: now.large_allocs - before.large_allocs,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    // Note: the allocator is only *installed* in binaries that declare it as
    // their `#[global_allocator]`; these unit tests exercise the counting
    // logic directly.
    #[test]
    fn counting_and_thresholds() {
        set_large_threshold(1024);
        let before = snapshot();
        note(8);
        note(2048);
        let s = since(&before);
        assert_eq!(s.allocs, 2);
        assert_eq!(s.bytes, 2056);
        assert_eq!(s.large_allocs, 1);
    }
}
