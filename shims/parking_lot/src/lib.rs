//! In-tree shim for `parking_lot`.
//!
//! The build environment has no crates.io access, so this crate reproduces
//! the subset of the parking_lot API the workspace uses — `Mutex`, `RwLock`
//! and `Condvar` with *non-poisoning* lock methods returning guards directly
//! — on top of `std::sync`.  Poisoned std locks are recovered transparently
//! (`PoisonError::into_inner`), matching parking_lot's behaviour of never
//! poisoning.

use std::fmt;
use std::ops::{Deref, DerefMut};
use std::sync::PoisonError;
use std::time::{Duration, Instant};

/// A mutual-exclusion primitive; `lock()` returns the guard directly.
pub struct Mutex<T: ?Sized> {
    inner: std::sync::Mutex<T>,
}

/// RAII guard for [`Mutex`]; releases the lock on drop.
///
/// Holds the inner std guard in an `Option` so that [`Condvar::wait`] can
/// temporarily take ownership of it (std's condvar consumes the guard).
pub struct MutexGuard<'a, T: ?Sized> {
    inner: Option<std::sync::MutexGuard<'a, T>>,
}

impl<T> Mutex<T> {
    /// Creates a new mutex protecting `value`.
    pub const fn new(value: T) -> Self {
        Self {
            inner: std::sync::Mutex::new(value),
        }
    }

    /// Consumes the mutex, returning the protected value.
    pub fn into_inner(self) -> T {
        self.inner
            .into_inner()
            .unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquires the lock, blocking until it is available.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        let guard = self.inner.lock().unwrap_or_else(PoisonError::into_inner);
        MutexGuard { inner: Some(guard) }
    }

    /// Attempts to acquire the lock without blocking.
    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        match self.inner.try_lock() {
            Ok(guard) => Some(MutexGuard { inner: Some(guard) }),
            Err(std::sync::TryLockError::Poisoned(p)) => Some(MutexGuard {
                inner: Some(p.into_inner()),
            }),
            Err(std::sync::TryLockError::WouldBlock) => None,
        }
    }

    /// Returns a mutable reference to the protected value (requires `&mut`).
    pub fn get_mut(&mut self) -> &mut T {
        self.inner.get_mut().unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: Default> Default for Mutex<T> {
    fn default() -> Self {
        Self::new(T::default())
    }
}

impl<T: ?Sized + fmt::Debug> fmt::Debug for Mutex<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.try_lock() {
            Some(guard) => f.debug_struct("Mutex").field("data", &&*guard).finish(),
            None => f.write_str("Mutex { <locked> }"),
        }
    }
}

impl<'a, T: ?Sized> Deref for MutexGuard<'a, T> {
    type Target = T;
    fn deref(&self) -> &T {
        self.inner
            .as_deref()
            .expect("guard taken during condvar wait")
    }
}

impl<'a, T: ?Sized> DerefMut for MutexGuard<'a, T> {
    fn deref_mut(&mut self) -> &mut T {
        self.inner
            .as_deref_mut()
            .expect("guard taken during condvar wait")
    }
}

/// A reader-writer lock; `read()`/`write()` return guards directly.
pub struct RwLock<T: ?Sized> {
    inner: std::sync::RwLock<T>,
}

/// Shared-access RAII guard for [`RwLock`].
pub struct RwLockReadGuard<'a, T: ?Sized> {
    inner: std::sync::RwLockReadGuard<'a, T>,
}

/// Exclusive-access RAII guard for [`RwLock`].
pub struct RwLockWriteGuard<'a, T: ?Sized> {
    inner: std::sync::RwLockWriteGuard<'a, T>,
}

impl<T> RwLock<T> {
    /// Creates a new reader-writer lock protecting `value`.
    pub const fn new(value: T) -> Self {
        Self {
            inner: std::sync::RwLock::new(value),
        }
    }

    /// Consumes the lock, returning the protected value.
    pub fn into_inner(self) -> T {
        self.inner
            .into_inner()
            .unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: ?Sized> RwLock<T> {
    /// Acquires shared read access, blocking until available.
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        RwLockReadGuard {
            inner: self.inner.read().unwrap_or_else(PoisonError::into_inner),
        }
    }

    /// Acquires exclusive write access, blocking until available.
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        RwLockWriteGuard {
            inner: self.inner.write().unwrap_or_else(PoisonError::into_inner),
        }
    }

    /// Returns a mutable reference to the protected value (requires `&mut`).
    pub fn get_mut(&mut self) -> &mut T {
        self.inner.get_mut().unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: Default> Default for RwLock<T> {
    fn default() -> Self {
        Self::new(T::default())
    }
}

impl<T: ?Sized + fmt::Debug> fmt::Debug for RwLock<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("RwLock")
            .field("data", &&*self.read())
            .finish()
    }
}

impl<'a, T: ?Sized> Deref for RwLockReadGuard<'a, T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.inner
    }
}

impl<'a, T: ?Sized> Deref for RwLockWriteGuard<'a, T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.inner
    }
}

impl<'a, T: ?Sized> DerefMut for RwLockWriteGuard<'a, T> {
    fn deref_mut(&mut self) -> &mut T {
        &mut self.inner
    }
}

/// Result of a timed [`Condvar`] wait.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct WaitTimeoutResult(bool);

impl WaitTimeoutResult {
    /// Whether the wait ended because the timeout elapsed.
    pub fn timed_out(&self) -> bool {
        self.0
    }
}

/// A condition variable usable with [`MutexGuard`] by `&mut` reference.
#[derive(Debug)]
pub struct Condvar {
    inner: std::sync::Condvar,
}

impl Condvar {
    /// Creates a new condition variable.
    pub const fn new() -> Self {
        Self {
            inner: std::sync::Condvar::new(),
        }
    }

    /// Blocks until the condvar is notified, atomically releasing the lock.
    pub fn wait<T>(&self, guard: &mut MutexGuard<'_, T>) {
        let inner = guard.inner.take().expect("guard already taken");
        let inner = self
            .inner
            .wait(inner)
            .unwrap_or_else(PoisonError::into_inner);
        guard.inner = Some(inner);
    }

    /// Blocks until notified or `timeout` elapses; reports which happened.
    pub fn wait_for<T>(
        &self,
        guard: &mut MutexGuard<'_, T>,
        timeout: Duration,
    ) -> WaitTimeoutResult {
        let inner = guard.inner.take().expect("guard already taken");
        let (inner, result) = self
            .inner
            .wait_timeout(inner, timeout)
            .unwrap_or_else(PoisonError::into_inner);
        guard.inner = Some(inner);
        WaitTimeoutResult(result.timed_out())
    }

    /// Blocks until notified or the `deadline` instant passes.
    pub fn wait_until<T>(
        &self,
        guard: &mut MutexGuard<'_, T>,
        deadline: Instant,
    ) -> WaitTimeoutResult {
        let timeout = deadline.saturating_duration_since(Instant::now());
        self.wait_for(guard, timeout)
    }

    /// Blocks until `condition` returns false or `timeout` elapses.
    pub fn wait_while_for<T, F: FnMut(&mut T) -> bool>(
        &self,
        guard: &mut MutexGuard<'_, T>,
        mut condition: F,
        timeout: Duration,
    ) -> WaitTimeoutResult {
        let deadline = Instant::now() + timeout;
        while condition(&mut *guard) {
            if self.wait_until(guard, deadline).timed_out() {
                return WaitTimeoutResult(true);
            }
        }
        WaitTimeoutResult(false)
    }

    /// Wakes one waiting thread.
    pub fn notify_one(&self) {
        self.inner.notify_one();
    }

    /// Wakes all waiting threads.
    pub fn notify_all(&self) {
        self.inner.notify_all();
    }
}

impl Default for Condvar {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;
    use std::thread;

    #[test]
    fn mutex_round_trip() {
        let m = Mutex::new(41);
        *m.lock() += 1;
        assert_eq!(*m.lock(), 42);
        assert_eq!(m.into_inner(), 42);
    }

    #[test]
    fn rwlock_readers_and_writer() {
        let l = RwLock::new(vec![1, 2, 3]);
        {
            let a = l.read();
            let b = l.read();
            assert_eq!(a.len() + b.len(), 6);
        }
        l.write().push(4);
        assert_eq!(l.read().len(), 4);
    }

    #[test]
    fn condvar_wakes_waiter() {
        let pair = Arc::new((Mutex::new(false), Condvar::new()));
        let pair2 = Arc::clone(&pair);
        let t = thread::spawn(move || {
            let (lock, cv) = &*pair2;
            let mut ready = lock.lock();
            while !*ready {
                cv.wait(&mut ready);
            }
        });
        {
            let (lock, cv) = &*pair;
            *lock.lock() = true;
            cv.notify_all();
        }
        t.join().unwrap();
    }

    #[test]
    fn condvar_wait_for_times_out() {
        let m = Mutex::new(());
        let cv = Condvar::new();
        let mut g = m.lock();
        let r = cv.wait_for(&mut g, Duration::from_millis(10));
        assert!(r.timed_out());
    }
}
