//! In-tree shim for the `serde_derive` proc-macro crate.
//!
//! The build environment has no crates.io access, and nothing in this
//! workspace actually serializes data yet — the `#[derive(Serialize,
//! Deserialize)]` attributes on model types only declare intent.  These
//! derives therefore expand to nothing; the marker traits live in the
//! sibling `serde` shim and are blanket-implemented.

use proc_macro::TokenStream;

/// No-op `Serialize` derive (accepts and ignores `#[serde(...)]` attributes).
#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}

/// No-op `Deserialize` derive (accepts and ignores `#[serde(...)]` attributes).
#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}
