//! In-tree shim for `bytes`.
//!
//! The build environment has no crates.io access, so this crate provides the
//! one type the workspace uses: [`Bytes`], a cheaply-clonable immutable byte
//! buffer.  Two representations share the type:
//!
//! * **Inline** — payloads up to [`Bytes::INLINE_CAP`] bytes live directly
//!   in the value, so constructing, cloning, and dropping a small payload
//!   performs *zero* heap allocations.  This is what makes sub-threshold
//!   message sends allocation-free on the simulator's hot path.
//! * **Shared** — larger payloads are backed by `Arc<Vec<u8>>`, so `clone()`
//!   is a reference-count bump exactly like the real crate — which matters
//!   for the simulator, where a message payload is cloned once per
//!   destination replica — and `From<Vec<u8>>` *moves* the vector in without
//!   copying its bytes, exactly like the real crate's `Bytes::from(Vec<u8>)`.
//!
//! Equality, ordering, and hashing are by *content* (as in the real crate),
//! so the two representations are indistinguishable to users.

use std::borrow::Borrow;
use std::fmt;
use std::hash::{Hash, Hasher};
use std::ops::{Deref, RangeBounds};
use std::sync::Arc;

mod arena;

/// A cheaply-clonable immutable contiguous slice of memory.
#[derive(Clone)]
pub struct Bytes {
    repr: Repr,
}

/// Backing storage of the inline representation.  Aligned to 8 bytes so a
/// freshly inlined payload (e.g. the body of a small message frame) can be
/// reinterpreted in place as `f64`/`u64` data without an alignment copy.
#[derive(Clone, Copy)]
#[repr(align(8))]
struct InlineBuf([u8; Bytes::INLINE_CAP]);

#[derive(Clone)]
enum Repr {
    /// Small payloads stored in the value itself; no heap allocation.
    Inline { len: u8, buf: InlineBuf },
    /// Reference-counted view into a shared backing vector.
    Shared {
        data: Arc<Vec<u8>>,
        start: usize,
        end: usize,
    },
    /// Reference-counted view into a thread-local bump-arena chunk (see the
    /// `arena` module); built by [`Bytes::with_len`].  The chunk's pages are
    /// populated in bulk when the chunk is mapped, so carving a payload from
    /// it never takes a page fault — the property that keeps serialization
    /// fast when queued messages pin the heap and defeat normal allocator
    /// reuse.
    Arena {
        chunk: Arc<arena::Chunk>,
        start: usize,
        end: usize,
    },
}

impl Bytes {
    /// Largest payload the inline representation holds.  Constructing a
    /// `Bytes` of at most this many bytes via [`Bytes::copy_from_slice`]
    /// (or slicing one) allocates nothing.
    pub const INLINE_CAP: usize = 64;

    /// Creates an empty `Bytes` (no allocation).
    pub fn new() -> Self {
        Self {
            repr: Repr::Inline {
                len: 0,
                buf: InlineBuf([0; Self::INLINE_CAP]),
            },
        }
    }

    /// Creates `Bytes` from a static slice (copied; semantics are identical).
    pub fn from_static(bytes: &'static [u8]) -> Self {
        Self::copy_from_slice(bytes)
    }

    /// Creates `Bytes` by copying `data`; inline (allocation-free) when the
    /// payload fits [`Bytes::INLINE_CAP`].
    pub fn copy_from_slice(data: &[u8]) -> Self {
        if data.len() <= Self::INLINE_CAP {
            let mut buf = InlineBuf([0u8; Self::INLINE_CAP]);
            buf.0[..data.len()].copy_from_slice(data);
            Self {
                repr: Repr::Inline {
                    len: data.len() as u8,
                    buf,
                },
            }
        } else {
            Self::from_vec(data.to_vec())
        }
    }

    /// Builds a `Bytes` of exactly `len` bytes by handing `fill` a mutable
    /// buffer to write.  This is the allocation-conscious constructor for
    /// message payloads:
    ///
    /// * `len <= INLINE_CAP` — `fill` writes the inline representation; no
    ///   heap allocation at all.
    /// * medium sizes — the buffer is carved from a thread-local,
    ///   bulk-populated bump arena (see the `arena` module), so the
    ///   construction takes no allocator call and no page fault even when
    ///   earlier payloads are still alive.
    /// * large sizes — an ordinary zeroed `Vec` (one allocation).
    ///
    /// The buffer's contents are unspecified before `fill` runs (arena
    /// chunks are recycled, so it may contain bytes of earlier dropped
    /// payloads built by this thread); `fill` must overwrite every byte it
    /// wants defined.  The buffer of the inline and arena paths is 8-byte
    /// aligned, so typed `f64`/`u64` views over the result are zero-copy.
    pub fn with_len(len: usize, fill: impl FnOnce(&mut [u8])) -> Self {
        if len <= Self::INLINE_CAP {
            let mut buf = InlineBuf([0u8; Self::INLINE_CAP]);
            fill(&mut buf.0[..len]);
            return Self {
                repr: Repr::Inline {
                    len: len as u8,
                    buf,
                },
            };
        }
        if len <= arena::MAX_ARENA_ALLOC {
            let (chunk, start) = arena::carve(len);
            // SAFETY: `carve` hands out each region exactly once and no
            // `Bytes` view of it exists yet, so this is the region's unique
            // reference; the chunk outlives the slice via the Arc held here.
            let buf = unsafe { std::slice::from_raw_parts_mut(chunk.ptr().add(start), len) };
            fill(buf);
            return Self {
                repr: Repr::Arena {
                    chunk,
                    start,
                    end: start + len,
                },
            };
        }
        let mut v = vec![0u8; len];
        fill(&mut v);
        Self::from_vec(v)
    }

    fn from_vec(v: Vec<u8>) -> Self {
        let end = v.len();
        Self {
            repr: Repr::Shared {
                data: Arc::new(v),
                start: 0,
                end,
            },
        }
    }

    /// Number of bytes.
    pub fn len(&self) -> usize {
        match &self.repr {
            Repr::Inline { len, .. } => *len as usize,
            Repr::Shared { start, end, .. } | Repr::Arena { start, end, .. } => end - start,
        }
    }

    /// Whether the buffer is empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Returns a zero-copy sub-slice: inline payloads are re-inlined (a
    /// bounded memcpy, no allocation), shared payloads share the backing
    /// allocation.
    pub fn slice(&self, range: impl RangeBounds<usize>) -> Self {
        use std::ops::Bound;
        let len = self.len();
        let start = match range.start_bound() {
            Bound::Included(&n) => n,
            Bound::Excluded(&n) => n + 1,
            Bound::Unbounded => 0,
        };
        let end = match range.end_bound() {
            Bound::Included(&n) => n + 1,
            Bound::Excluded(&n) => n,
            Bound::Unbounded => len,
        };
        assert!(
            start <= end && end <= len,
            "slice {start}..{end} out of bounds of {len}"
        );
        match &self.repr {
            Repr::Inline { buf, .. } => Self::copy_from_slice(&buf.0[start..end]),
            Repr::Shared {
                data, start: base, ..
            } => Self {
                repr: Repr::Shared {
                    data: Arc::clone(data),
                    start: base + start,
                    end: base + end,
                },
            },
            Repr::Arena {
                chunk, start: base, ..
            } => Self {
                repr: Repr::Arena {
                    chunk: Arc::clone(chunk),
                    start: base + start,
                    end: base + end,
                },
            },
        }
    }

    /// Copies the contents into a fresh `Vec<u8>`.
    pub fn to_vec(&self) -> Vec<u8> {
        self.as_ref().to_vec()
    }
}

impl Default for Bytes {
    fn default() -> Self {
        Self::new()
    }
}

impl Deref for Bytes {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        match &self.repr {
            Repr::Inline { len, buf } => &buf.0[..*len as usize],
            Repr::Shared { data, start, end } => &data[*start..*end],
            // SAFETY: the region `[start, end)` was initialized by
            // `with_len` before this value (or its slicing ancestor)
            // existed, is never written again while any view of it is alive
            // (see the arena module's safety model), and the chunk outlives
            // the borrow via the Arc held in `self`.
            Repr::Arena { chunk, start, end } => unsafe {
                std::slice::from_raw_parts(chunk.ptr().add(*start), end - start)
            },
        }
    }
}

impl AsRef<[u8]> for Bytes {
    fn as_ref(&self) -> &[u8] {
        self
    }
}

impl Borrow<[u8]> for Bytes {
    fn borrow(&self) -> &[u8] {
        self
    }
}

impl From<Vec<u8>> for Bytes {
    fn from(v: Vec<u8>) -> Self {
        Self::from_vec(v)
    }
}

impl From<&[u8]> for Bytes {
    fn from(s: &[u8]) -> Self {
        Self::copy_from_slice(s)
    }
}

impl From<Box<[u8]>> for Bytes {
    fn from(b: Box<[u8]>) -> Self {
        Self::from_vec(b.into_vec())
    }
}

impl PartialEq for Bytes {
    fn eq(&self, other: &Self) -> bool {
        self.as_ref() == other.as_ref()
    }
}

impl Eq for Bytes {}

impl PartialOrd for Bytes {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for Bytes {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        self.as_ref().cmp(other.as_ref())
    }
}

impl Hash for Bytes {
    fn hash<H: Hasher>(&self, state: &mut H) {
        self.as_ref().hash(state);
    }
}

impl fmt::Debug for Bytes {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "b\"")?;
        for &b in self.iter() {
            for esc in std::ascii::escape_default(b) {
                write!(f, "{}", esc as char)?;
            }
        }
        write!(f, "\"")
    }
}

impl PartialEq<[u8]> for Bytes {
    fn eq(&self, other: &[u8]) -> bool {
        self.as_ref() == other
    }
}

impl PartialEq<Vec<u8>> for Bytes {
    fn eq(&self, other: &Vec<u8>) -> bool {
        self.as_ref() == other.as_slice()
    }
}

impl FromIterator<u8> for Bytes {
    fn from_iter<I: IntoIterator<Item = u8>>(iter: I) -> Self {
        let v: Vec<u8> = iter.into_iter().collect();
        if v.len() <= Self::INLINE_CAP {
            Self::copy_from_slice(&v)
        } else {
            Self::from_vec(v)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trip_and_clone_shares() {
        let b = Bytes::from(vec![1u8, 2, 3, 4]);
        let c = b.clone();
        assert_eq!(b, c);
        assert_eq!(b.len(), 4);
        assert_eq!(&b[..], &[1, 2, 3, 4]);
    }

    #[test]
    fn slicing_is_zero_copy_and_correct() {
        let b = Bytes::from(vec![0u8, 1, 2, 3, 4, 5]);
        let s = b.slice(2..5);
        assert_eq!(&s[..], &[2, 3, 4]);
        let s2 = s.slice(1..);
        assert_eq!(&s2[..], &[3, 4]);
    }

    #[test]
    fn empty_and_from_static() {
        assert!(Bytes::new().is_empty());
        assert_eq!(&Bytes::from_static(b"xy")[..], b"xy");
    }

    #[test]
    fn equality_is_by_content_across_representations() {
        // An inline value and an equal-content shared view compare equal,
        // hash equal, and order consistently.
        let inline = Bytes::copy_from_slice(&[9u8, 8, 7]);
        let shared = Bytes::from(vec![0u8, 9, 8, 7, 1]).slice(1..4);
        assert_eq!(inline, shared);
        assert_eq!(inline.cmp(&shared), std::cmp::Ordering::Equal);
        use std::collections::hash_map::DefaultHasher;
        let mut h1 = DefaultHasher::new();
        let mut h2 = DefaultHasher::new();
        inline.hash(&mut h1);
        shared.hash(&mut h2);
        assert_eq!(h1.finish(), h2.finish());
    }

    #[test]
    fn inline_payloads_are_word_aligned() {
        // Typed zero-copy views over small message bodies depend on the
        // inline buffer being at least 8-byte aligned.
        for n in [1, 8, 16, Bytes::INLINE_CAP] {
            let b = Bytes::copy_from_slice(&vec![7u8; n]);
            assert_eq!(b.as_ref().as_ptr() as usize % 8, 0, "len {n}");
        }
    }

    #[test]
    fn with_len_round_trips_across_representations() {
        // Spans inline (<= 64), arena (medium), and Vec (large) paths.
        for n in [0, 1, 64, 65, 1000, 2056, 32 << 10, (32 << 10) + 1, 100_000] {
            let b = Bytes::with_len(n, |buf| {
                for (i, x) in buf.iter_mut().enumerate() {
                    *x = (i % 251) as u8;
                }
            });
            assert_eq!(b.len(), n);
            assert!(b.iter().enumerate().all(|(i, &x)| x == (i % 251) as u8));
            // Typed views over the payload need word alignment.
            assert_eq!(b.as_ref().as_ptr() as usize % 8, 0, "len {n}");
            // Slicing an arena-backed value stays zero-copy and correct.
            let s = b.slice(n / 3..n - n / 3);
            assert_eq!(&s[..], &b[n / 3..n - n / 3]);
            let c = b.clone();
            assert_eq!(b, c);
        }
    }

    #[test]
    fn arena_frames_do_not_overlap_and_survive_chunk_turnover() {
        // Enough live medium frames to span several arena chunks; every
        // frame must keep its own contents.
        let frames: Vec<Bytes> = (0..200u32)
            .map(|i| {
                Bytes::with_len(1024, |buf| {
                    buf.fill(i as u8);
                })
            })
            .collect();
        for (i, f) in frames.iter().enumerate() {
            assert_eq!(f.len(), 1024);
            assert!(f.iter().all(|&x| x == i as u8), "frame {i} corrupted");
        }
    }

    #[test]
    fn arena_recycles_released_chunks() {
        // Drain-heavy pattern: frames dropped promptly.  The arena should
        // settle into reusing chunks rather than growing without bound —
        // observable as identical backing addresses reappearing.
        let mut seen = std::collections::HashSet::new();
        let mut reused = false;
        for i in 0..2_000u32 {
            let b = Bytes::with_len(4096, |buf| buf.fill(i as u8));
            assert!(b.iter().all(|&x| x == i as u8));
            if !seen.insert(b.as_ref().as_ptr() as usize) {
                reused = true;
            }
        }
        assert!(reused, "arena never recycled a released chunk");
    }

    #[test]
    fn inline_boundary_round_trips() {
        for n in [
            0,
            1,
            Bytes::INLINE_CAP - 1,
            Bytes::INLINE_CAP,
            Bytes::INLINE_CAP + 1,
            200,
        ] {
            let v: Vec<u8> = (0..n).map(|i| (i % 251) as u8).collect();
            let b = Bytes::copy_from_slice(&v);
            assert_eq!(b.len(), n);
            assert_eq!(b, v);
            let s = b.slice(n / 4..n - n / 4);
            assert_eq!(&s[..], &v[n / 4..n - n / 4]);
        }
    }
}
