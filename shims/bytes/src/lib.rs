//! In-tree shim for `bytes`.
//!
//! The build environment has no crates.io access, so this crate provides the
//! one type the workspace uses: [`Bytes`], a cheaply-clonable immutable byte
//! buffer.  It is backed by `Arc<Vec<u8>>`, so `clone()` is a reference-count
//! bump exactly like the real crate — which matters for the simulator, where
//! a message payload is cloned once per destination replica — and
//! `From<Vec<u8>>` *moves* the vector in without copying its bytes, exactly
//! like the real crate's `Bytes::from(Vec<u8>)` (an `Arc<[u8]>` backing
//! would re-copy the buffer on conversion).

use std::borrow::Borrow;
use std::fmt;
use std::ops::{Deref, RangeBounds};
use std::sync::Arc;

/// A cheaply-clonable immutable contiguous slice of memory.
#[derive(Clone, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Bytes {
    data: Arc<Vec<u8>>,
    start: usize,
    end: usize,
}

impl Bytes {
    /// Creates an empty `Bytes`.
    pub fn new() -> Self {
        Self::from_vec(Vec::new())
    }

    /// Creates `Bytes` from a static slice (copied; semantics are identical).
    pub fn from_static(bytes: &'static [u8]) -> Self {
        Self::from_vec(bytes.to_vec())
    }

    /// Creates `Bytes` by copying `data`.
    pub fn copy_from_slice(data: &[u8]) -> Self {
        Self::from_vec(data.to_vec())
    }

    fn from_vec(v: Vec<u8>) -> Self {
        let end = v.len();
        Self {
            data: Arc::new(v),
            start: 0,
            end,
        }
    }

    /// Number of bytes.
    pub fn len(&self) -> usize {
        self.end - self.start
    }

    /// Whether the buffer is empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Returns a zero-copy sub-slice sharing the same backing allocation.
    pub fn slice(&self, range: impl RangeBounds<usize>) -> Self {
        use std::ops::Bound;
        let len = self.len();
        let start = match range.start_bound() {
            Bound::Included(&n) => n,
            Bound::Excluded(&n) => n + 1,
            Bound::Unbounded => 0,
        };
        let end = match range.end_bound() {
            Bound::Included(&n) => n + 1,
            Bound::Excluded(&n) => n,
            Bound::Unbounded => len,
        };
        assert!(
            start <= end && end <= len,
            "slice {start}..{end} out of bounds of {len}"
        );
        Self {
            data: Arc::clone(&self.data),
            start: self.start + start,
            end: self.start + end,
        }
    }

    /// Copies the contents into a fresh `Vec<u8>`.
    pub fn to_vec(&self) -> Vec<u8> {
        self.as_ref().to_vec()
    }
}

impl Default for Bytes {
    fn default() -> Self {
        Self::new()
    }
}

impl Deref for Bytes {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        &self.data[self.start..self.end]
    }
}

impl AsRef<[u8]> for Bytes {
    fn as_ref(&self) -> &[u8] {
        self
    }
}

impl Borrow<[u8]> for Bytes {
    fn borrow(&self) -> &[u8] {
        self
    }
}

impl From<Vec<u8>> for Bytes {
    fn from(v: Vec<u8>) -> Self {
        Self::from_vec(v)
    }
}

impl From<&[u8]> for Bytes {
    fn from(s: &[u8]) -> Self {
        Self::copy_from_slice(s)
    }
}

impl From<Box<[u8]>> for Bytes {
    fn from(b: Box<[u8]>) -> Self {
        Self::from_vec(b.into_vec())
    }
}

impl fmt::Debug for Bytes {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "b\"")?;
        for &b in self.iter() {
            for esc in std::ascii::escape_default(b) {
                write!(f, "{}", esc as char)?;
            }
        }
        write!(f, "\"")
    }
}

impl PartialEq<[u8]> for Bytes {
    fn eq(&self, other: &[u8]) -> bool {
        self.as_ref() == other
    }
}

impl PartialEq<Vec<u8>> for Bytes {
    fn eq(&self, other: &Vec<u8>) -> bool {
        self.as_ref() == other.as_slice()
    }
}

impl FromIterator<u8> for Bytes {
    fn from_iter<I: IntoIterator<Item = u8>>(iter: I) -> Self {
        Self::from_vec(iter.into_iter().collect())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trip_and_clone_shares() {
        let b = Bytes::from(vec![1u8, 2, 3, 4]);
        let c = b.clone();
        assert_eq!(b, c);
        assert_eq!(b.len(), 4);
        assert_eq!(&b[..], &[1, 2, 3, 4]);
    }

    #[test]
    fn slicing_is_zero_copy_and_correct() {
        let b = Bytes::from(vec![0u8, 1, 2, 3, 4, 5]);
        let s = b.slice(2..5);
        assert_eq!(&s[..], &[2, 3, 4]);
        let s2 = s.slice(1..);
        assert_eq!(&s2[..], &[3, 4]);
    }

    #[test]
    fn empty_and_from_static() {
        assert!(Bytes::new().is_empty());
        assert_eq!(&Bytes::from_static(b"xy")[..], b"xy");
    }
}
