//! Thread-local bump arena backing medium-sized [`Bytes`](crate::Bytes)
//! payloads.
//!
//! ## Why an arena
//!
//! The simulator's replicated fan-out queues duplicate message streams that
//! are, by design, never consumed during a run: every payload built on the
//! hot path stays alive until teardown.  A general-purpose allocator can
//! therefore never reuse a freed block — each payload lands on fresh,
//! never-touched heap pages, and the minor fault taken on first touch
//! (~1 µs) dwarfs the ~60 ns the serialization memcpy itself costs.  The
//! arena removes the per-payload fault: chunks are mapped in bulk and their
//! pages populated with a *single* `madvise(MADV_POPULATE_WRITE)` call (one
//! syscall instead of one trap per page), after which carving a frame is a
//! pointer bump.  (Chunks are deliberately *not* `MADV_HUGEPAGE`-advised:
//! with `defrag=madvise` the advice triggers synchronous compaction, which
//! stalls the carving thread for milliseconds under memory pressure —
//! measured far worse than the 4 KiB-page TLB cost it would save.)
//!
//! ## Lifecycle
//!
//! Each thread owns one current chunk and bump-allocates frames from it.
//! Frames hold an `Arc` to their chunk, so a chunk is unmapped when the
//! arena has moved on *and* every frame carved from it has dropped.
//! Retired chunks sit in a small per-thread pool; when a retired chunk's
//! reference count shows every frame gone (drain-heavy workloads like a
//! point-to-point stream), it is *recycled* — its pages are already
//! populated and warm, so steady state allocates nothing at all.
//!
//! Chunk sizes escalate (32 KiB → 256 KiB → 2 MiB) so a rank that sends a
//! handful of messages pays for one small chunk while a streaming sender
//! amortizes the mapping cost over megabytes.
//!
//! ## Safety model
//!
//! A carved region `[start, start + len)` is written exactly once, through
//! the unique `&mut [u8]` handed to the `Bytes::with_len` closure *before*
//! any `Bytes` value for the region exists.  Afterwards the region is only
//! ever read (through `Bytes` derefs).  The bump offset moves strictly
//! forward, so two frames never overlap; recycling resets the offset only
//! when the pool holds the sole reference to the chunk (no outstanding
//! frame can observe the reuse).

use std::cell::RefCell;
use std::sync::atomic::{fence, Ordering};
use std::sync::Arc;

/// Largest payload served from the arena; bigger ones take the plain
/// `Vec` route (they amortize their own allocation).  Must not exceed
/// `FIRST_CHUNK`.
pub(crate) const MAX_ARENA_ALLOC: usize = 32 << 10;

const FIRST_CHUNK: usize = 32 << 10;
const MAX_CHUNK: usize = 2 << 20;
/// Retired-but-still-pinned chunks kept per thread before the arena stops
/// tracking them (their frames keep them alive through their own `Arc`s).
const POOL_KEEP: usize = 4;

/// One mapped (or heap-backed) slab of payload memory.
pub(crate) struct Chunk {
    ptr: *mut u8,
    len: usize,
    backing: Backing,
}

enum Backing {
    /// Anonymous private mapping; unmapped on drop.
    #[cfg(target_os = "linux")]
    Mmap,
    /// Portable fallback when `mmap` is unavailable or fails.  The box is
    /// only held for ownership; all access goes through `ptr`.
    Heap(#[allow(dead_code)] Box<[u8]>),
}

// SAFETY: a chunk is plain byte memory.  Shared references only ever read
// carved regions (through `Bytes` derefs), and the single writer of a
// region is the carving thread, writing before any reader can exist (see
// the module-level safety model).
unsafe impl Send for Chunk {}
unsafe impl Sync for Chunk {}

impl Chunk {
    pub(crate) fn ptr(&self) -> *mut u8 {
        self.ptr
    }

    fn capacity(&self) -> usize {
        self.len
    }

    fn alloc(len: usize) -> Arc<Chunk> {
        #[cfg(target_os = "linux")]
        if let Some(c) = Self::alloc_mmap(len) {
            return Arc::new(c);
        }
        let mut heap = vec![0u8; len].into_boxed_slice();
        let ptr = heap.as_mut_ptr();
        Arc::new(Chunk {
            ptr,
            len,
            backing: Backing::Heap(heap),
        })
    }

    #[cfg(target_os = "linux")]
    fn alloc_mmap(len: usize) -> Option<Chunk> {
        unsafe {
            let ptr = sys::mmap_anon(len)?;
            // Populate every page in one syscall: batched in-kernel faulting
            // is far cheaper than trapping on each page at first touch, and
            // it is the whole point of the arena.  Best-effort — on kernels
            // without MADV_POPULATE_WRITE (< 5.14) pages fault lazily, which
            // is no worse than the plain-Vec path.
            sys::madvise(ptr.cast(), len, sys::MADV_POPULATE_WRITE);
            Some(Chunk {
                ptr,
                len,
                backing: Backing::Mmap,
            })
        }
    }
}

impl Drop for Chunk {
    fn drop(&mut self) {
        #[cfg(target_os = "linux")]
        if matches!(self.backing, Backing::Mmap) {
            // SAFETY: `ptr`/`len` describe exactly the mapping created in
            // `alloc_mmap` (after trimming); no `Bytes` view exists any more
            // (dropping the last Arc is what got us here).
            unsafe { sys::munmap(self.ptr.cast(), self.len) };
        }
    }
}

#[cfg(target_os = "linux")]
mod sys {
    use std::os::raw::{c_int, c_void};

    pub const MADV_POPULATE_WRITE: c_int = 23;
    const PROT_READ: c_int = 1;
    const PROT_WRITE: c_int = 2;
    const MAP_PRIVATE: c_int = 0x02;
    const MAP_ANONYMOUS: c_int = 0x20;

    mod ffi {
        use super::{c_int, c_void};
        extern "C" {
            pub fn mmap(
                addr: *mut c_void,
                len: usize,
                prot: c_int,
                flags: c_int,
                fd: c_int,
                offset: i64,
            ) -> *mut c_void;
            pub fn munmap(addr: *mut c_void, len: usize) -> c_int;
            pub fn madvise(addr: *mut c_void, len: usize, advice: c_int) -> c_int;
        }
    }

    /// Anonymous private read-write mapping, `None` on failure.
    pub unsafe fn mmap_anon(len: usize) -> Option<*mut u8> {
        let p = unsafe {
            ffi::mmap(
                std::ptr::null_mut(),
                len,
                PROT_READ | PROT_WRITE,
                MAP_PRIVATE | MAP_ANONYMOUS,
                -1,
                0,
            )
        };
        if p as isize == -1 {
            None
        } else {
            Some(p.cast())
        }
    }

    pub unsafe fn munmap(addr: *mut c_void, len: usize) {
        unsafe { ffi::munmap(addr, len) };
    }

    /// Best-effort advice; errors (e.g. unsupported advice value on old
    /// kernels) are deliberately ignored.
    pub unsafe fn madvise(addr: *mut c_void, len: usize, advice: c_int) {
        unsafe { ffi::madvise(addr, len, advice) };
    }
}

struct Arena {
    current: Option<Arc<Chunk>>,
    offset: usize,
    next_size: usize,
    pool: Vec<Arc<Chunk>>,
}

thread_local! {
    static ARENA: RefCell<Arena> = const {
        RefCell::new(Arena {
            current: None,
            offset: 0,
            next_size: FIRST_CHUNK,
            pool: Vec::new(),
        })
    };
}

/// Carves an 8-aligned region of `len` bytes from the current thread's
/// arena, returning the owning chunk and the region's start offset.  The
/// caller must initialize the region before constructing any `Bytes` view
/// of it; its previous contents are unspecified (recycled chunks retain old
/// payload bytes).
pub(crate) fn carve(len: usize) -> (Arc<Chunk>, usize) {
    debug_assert!(len <= MAX_ARENA_ALLOC);
    let rounded = (len + 7) & !7;
    ARENA.with(|cell| {
        let a = &mut *cell.borrow_mut();
        let exhausted = match &a.current {
            Some(c) => a.offset + rounded > c.capacity(),
            None => true,
        };
        if exhausted {
            if let Some(retired) = a.current.take() {
                a.pool.push(retired);
            }
            // Recycle a fully-released retired chunk: its pages are already
            // populated and cache/TLB-warm.
            let reusable = a
                .pool
                .iter()
                .position(|c| Arc::strong_count(c) == 1 && c.capacity() >= rounded);
            match reusable {
                Some(i) => {
                    // Synchronize with the final frame drop on whatever
                    // thread it happened: the Relaxed strong_count read saw
                    // the Release 2→1 decrement, and this fence orders our
                    // upcoming writes after that thread's last reads.
                    fence(Ordering::Acquire);
                    a.current = Some(a.pool.swap_remove(i));
                }
                None => {
                    let size = a.next_size.max(rounded);
                    a.next_size = (a.next_size * 8).min(MAX_CHUNK);
                    a.current = Some(Chunk::alloc(size));
                    // Still-pinned retirees stay alive through their frames'
                    // own Arcs; stop tracking the oldest beyond the cap.
                    while a.pool.len() > POOL_KEEP {
                        a.pool.remove(0);
                    }
                }
            }
            a.offset = 0;
        }
        let start = a.offset;
        a.offset = start + rounded;
        (
            Arc::clone(a.current.as_ref().expect("arena chunk just installed")),
            start,
        )
    })
}
