//! In-tree shim for `criterion`.
//!
//! The build environment has no crates.io access, so this crate provides a
//! minimal wall-clock benchmarking harness with the criterion API subset the
//! `ipr-bench` targets use: `Criterion::benchmark_group`, `sample_size`,
//! `bench_function`, `Bencher::iter` / `iter_batched`, `black_box`, and the
//! `criterion_group!` / `criterion_main!` macros.  No statistics beyond
//! min/mean/max, no HTML reports — just enough to run every bench target and
//! print comparable numbers.  Benches honour `cargo bench -- <filter>` by
//! substring-matching the benchmark id.

use std::time::{Duration, Instant};

/// Opaque-to-the-optimizer identity function.
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// How `iter_batched` amortizes setup cost; accepted and ignored.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BatchSize {
    /// Small per-iteration inputs.
    SmallInput,
    /// Large per-iteration inputs.
    LargeInput,
    /// One setup per iteration.
    PerIteration,
    /// A fixed number of batches.
    NumBatches(u64),
    /// A fixed number of iterations per batch.
    NumIterations(u64),
}

/// The bench harness entry point.
pub struct Criterion {
    filter: Option<String>,
}

impl Default for Criterion {
    fn default() -> Self {
        // First non-flag CLI argument acts as a substring filter, matching
        // `cargo bench -- <filter>`.
        let filter = std::env::args().skip(1).find(|a| !a.starts_with('-'));
        Self { filter }
    }
}

impl Criterion {
    /// Starts a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            criterion: self,
            name: name.into(),
            sample_size: 100,
        }
    }

    /// Registers a stand-alone benchmark (group of one).
    pub fn bench_function<F>(&mut self, id: impl Into<String>, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let id = id.into();
        let mut group = self.benchmark_group(id.clone());
        group.bench_function(id, f);
        group.finish();
        self
    }

    fn matches(&self, id: &str) -> bool {
        self.filter.as_deref().is_none_or(|f| id.contains(f))
    }
}

/// A named set of benchmarks sharing configuration.
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
    sample_size: usize,
}

impl<'a> BenchmarkGroup<'a> {
    /// Sets how many timed samples to collect per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        assert!(n > 0, "sample_size must be positive");
        self.sample_size = n;
        self
    }

    /// Runs one benchmark; `f` drives a [`Bencher`].
    pub fn bench_function<F>(&mut self, id: impl Into<String>, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let id = format!("{}/{}", self.name, id.into());
        if !self.criterion.matches(&id) {
            return self;
        }
        let mut bencher = Bencher {
            samples: Vec::with_capacity(self.sample_size),
        };
        // One warm-up pass, then the timed samples.
        f(&mut bencher);
        bencher.samples.clear();
        for _ in 0..self.sample_size {
            f(&mut bencher);
        }
        report(&id, &bencher.samples);
        self
    }

    /// Ends the group (kept for API compatibility; reporting is immediate).
    pub fn finish(self) {}
}

/// Times closures for one benchmark.
pub struct Bencher {
    samples: Vec<Duration>,
}

impl Bencher {
    /// Times `routine`, once per sample.
    pub fn iter<R, F: FnMut() -> R>(&mut self, mut routine: F) {
        let start = Instant::now();
        black_box(routine());
        self.samples.push(start.elapsed());
    }

    /// Times `routine` on a fresh input from `setup` (setup untimed).
    pub fn iter_batched<I, R, S, F>(&mut self, mut setup: S, mut routine: F, _size: BatchSize)
    where
        S: FnMut() -> I,
        F: FnMut(I) -> R,
    {
        let input = setup();
        let start = Instant::now();
        black_box(routine(input));
        self.samples.push(start.elapsed());
    }
}

fn report(id: &str, samples: &[Duration]) {
    if samples.is_empty() {
        println!("{id:<50} (no samples)");
        return;
    }
    let min = samples.iter().min().unwrap();
    let max = samples.iter().max().unwrap();
    let mean = samples.iter().sum::<Duration>() / samples.len() as u32;
    println!(
        "{id:<50} time: [{} {} {}]  ({} samples)",
        fmt_duration(*min),
        fmt_duration(mean),
        fmt_duration(*max),
        samples.len()
    );
}

fn fmt_duration(d: Duration) -> String {
    let ns = d.as_nanos();
    if ns < 1_000 {
        format!("{ns} ns")
    } else if ns < 1_000_000 {
        format!("{:.2} µs", ns as f64 / 1e3)
    } else if ns < 1_000_000_000 {
        format!("{:.2} ms", ns as f64 / 1e6)
    } else {
        format!("{:.2} s", ns as f64 / 1e9)
    }
}

/// Declares a bench group function from bench target functions.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        fn $group() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Declares the bench binary's `main`, running each group.
#[macro_export]
macro_rules! criterion_main {
    ($($group:ident),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn group_runs_requested_sample_count() {
        let mut c = Criterion { filter: None };
        let mut group = c.benchmark_group("g");
        group.sample_size(5);
        let mut calls = 0;
        group.bench_function("f", |b| {
            calls += 1;
            b.iter(|| 1 + 1)
        });
        group.finish();
        // One warm-up call plus five samples.
        assert_eq!(calls, 6);
    }

    #[test]
    fn filter_skips_non_matching_ids() {
        let mut c = Criterion {
            filter: Some("nomatch".into()),
        };
        let mut group = c.benchmark_group("g");
        let mut calls = 0;
        group.bench_function("f", |b| {
            calls += 1;
            b.iter(|| ())
        });
        group.finish();
        assert_eq!(calls, 0);
    }

    #[test]
    fn iter_batched_times_routine_with_input() {
        let mut b = Bencher {
            samples: Vec::new(),
        };
        b.iter_batched(|| vec![1u8; 16], |v| v.len(), BatchSize::SmallInput);
        assert_eq!(b.samples.len(), 1);
    }
}
