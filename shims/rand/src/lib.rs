//! In-tree shim for `rand` (0.8-style API subset).
//!
//! The build environment has no crates.io access, so this crate provides the
//! pieces the workspace uses: [`rngs::SmallRng`] (an xoshiro256** generator),
//! [`SeedableRng::seed_from_u64`], and the [`Rng`] extension trait with
//! `gen`/`gen_range`/`gen_bool`.  Determinism is the whole point — the
//! simulator derives per-rank streams from a global seed — and that property
//! is preserved exactly.

/// Core trait: a source of uniformly-distributed 64-bit values.
pub trait RngCore {
    /// Returns the next value of the stream.
    fn next_u64(&mut self) -> u64;

    /// Returns the next 32-bit value of the stream.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }

    /// Fills `dest` with random bytes.
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        for chunk in dest.chunks_mut(8) {
            let v = self.next_u64().to_le_bytes();
            chunk.copy_from_slice(&v[..chunk.len()]);
        }
    }
}

/// Conversion from an RNG stream to a concrete value type.
pub trait FromRng {
    /// Draws one uniformly-distributed value.
    fn from_rng<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

macro_rules! impl_from_rng_int {
    ($($t:ty),*) => {$(
        impl FromRng for $t {
            fn from_rng<R: RngCore + ?Sized>(rng: &mut R) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}
impl_from_rng_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl FromRng for u128 {
    fn from_rng<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        ((rng.next_u64() as u128) << 64) | rng.next_u64() as u128
    }
}

impl FromRng for bool {
    fn from_rng<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl FromRng for f64 {
    fn from_rng<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 53 random mantissa bits -> uniform in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl FromRng for f32 {
    fn from_rng<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u64 << 24) as f32)
    }
}

/// A range usable with [`Rng::gen_range`].
pub trait SampleRange<T> {
    /// Draws a value uniformly from the range.
    fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! impl_sample_range_int {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for std::ops::Range<$t> {
            fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end as i128 - self.start as i128) as u128;
                let v = u128::from_rng(rng) % span;
                (self.start as i128 + v as i128) as $t
            }
        }
        impl SampleRange<$t> for std::ops::RangeInclusive<$t> {
            fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "cannot sample empty range");
                let span = (end as i128 - start as i128) as u128 + 1;
                let v = u128::from_rng(rng) % span;
                (start as i128 + v as i128) as $t
            }
        }
    )*};
}
impl_sample_range_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! impl_sample_range_float {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for std::ops::Range<$t> {
            fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                self.start + <$t>::from_rng(rng) * (self.end - self.start)
            }
        }
        impl SampleRange<$t> for std::ops::RangeInclusive<$t> {
            fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "cannot sample empty range");
                start + <$t>::from_rng(rng) * (end - start)
            }
        }
    )*};
}
impl_sample_range_float!(f32, f64);

/// Extension trait with the ergonomic sampling methods of rand 0.8.
pub trait Rng: RngCore {
    /// Draws a uniformly-distributed value of type `T`.
    fn gen<T: FromRng>(&mut self) -> T
    where
        Self: Sized,
    {
        T::from_rng(self)
    }

    /// Draws a value uniformly from `range`.
    fn gen_range<T, S: SampleRange<T>>(&mut self, range: S) -> T
    where
        Self: Sized,
    {
        range.sample(self)
    }

    /// Returns `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        assert!((0.0..=1.0).contains(&p), "probability out of range: {p}");
        f64::from_rng(self) < p
    }

    /// Fills `dest` with uniformly-distributed values.
    fn fill<T: FromRng>(&mut self, dest: &mut [T])
    where
        Self: Sized,
    {
        for slot in dest {
            *slot = T::from_rng(self);
        }
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// RNGs constructible from a seed.
pub trait SeedableRng: Sized {
    /// Builds the generator from a 64-bit seed (deterministic).
    fn seed_from_u64(seed: u64) -> Self;
}

/// Named generators, mirroring `rand::rngs`.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// A small, fast, deterministic generator (xoshiro256**).
    #[derive(Clone, Debug, PartialEq, Eq)]
    pub struct SmallRng {
        s: [u64; 4],
    }

    fn splitmix64(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    impl SeedableRng for SmallRng {
        fn seed_from_u64(seed: u64) -> Self {
            // Expand the seed with SplitMix64, per the xoshiro authors'
            // recommendation; guarantees a non-zero state.
            let mut sm = seed;
            Self {
                s: [
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                ],
            }
        }
    }

    impl RngCore for SmallRng {
        fn next_u64(&mut self) -> u64 {
            let result = self.s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }

    /// Alias: the workspace never needs a cryptographic generator.
    pub type StdRng = SmallRng;
}

/// Prelude mirroring `rand::prelude`.
pub mod prelude {
    pub use crate::rngs::{SmallRng, StdRng};
    pub use crate::{Rng, RngCore, SeedableRng};
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn deterministic_per_seed() {
        let mut a = SmallRng::seed_from_u64(7);
        let mut b = SmallRng::seed_from_u64(7);
        for _ in 0..32 {
            assert_eq!(a.gen::<u64>(), b.gen::<u64>());
        }
        let mut c = SmallRng::seed_from_u64(8);
        assert_ne!(a.gen::<u64>(), c.gen::<u64>());
    }

    #[test]
    fn float_ranges_stay_in_bounds() {
        let mut rng = SmallRng::seed_from_u64(1);
        for _ in 0..1000 {
            let v: f64 = rng.gen_range(2.0..3.0);
            assert!((2.0..3.0).contains(&v));
            let u: f64 = rng.gen();
            assert!((0.0..1.0).contains(&u));
        }
    }

    #[test]
    fn int_ranges_stay_in_bounds_and_hit_all_values() {
        let mut rng = SmallRng::seed_from_u64(2);
        let mut seen = [false; 5];
        for _ in 0..500 {
            let v: usize = rng.gen_range(0..5);
            seen[v] = true;
        }
        assert!(seen.iter().all(|&s| s));
        for _ in 0..100 {
            let v: i32 = rng.gen_range(-3..=3);
            assert!((-3..=3).contains(&v));
        }
    }

    #[test]
    fn gen_bool_respects_probability_extremes() {
        let mut rng = SmallRng::seed_from_u64(3);
        for _ in 0..50 {
            assert!(!rng.gen_bool(0.0));
            assert!(rng.gen_bool(1.0));
        }
    }
}
