//! In-tree shim for `serde`.
//!
//! The build environment has no crates.io access.  Workspace types carry
//! `#[derive(Serialize, Deserialize)]` to declare serialization intent, but
//! no code path serializes anything yet, so this shim provides just enough
//! surface for those derives to compile: blanket marker traits plus no-op
//! derive macros (from the in-tree `serde_derive` shim).  Swapping in the
//! real serde later requires no source changes outside `Cargo.toml`.

pub use serde_derive::{Deserialize, Serialize};

/// Marker stand-in for `serde::Serialize`; blanket-implemented for all types.
pub trait Serialize {}
impl<T: ?Sized> Serialize for T {}

/// Marker stand-in for `serde::Deserialize`; blanket-implemented for all types.
pub trait Deserialize<'de> {}
impl<'de, T: ?Sized> Deserialize<'de> for T {}

/// Marker stand-in for `serde::de::DeserializeOwned`.
pub trait DeserializeOwned {}
impl<T: ?Sized> DeserializeOwned for T {}

/// Stand-in for `serde::de` with the commonly-bounded `DeserializeOwned`.
pub mod de {
    pub use crate::{Deserialize, DeserializeOwned};
}

/// Stand-in for `serde::ser`.
pub mod ser {
    pub use crate::Serialize;
}
