//! Sparse matrices in CSR format and the HPCCG / AMG problem generators.
//!
//! HPCCG builds a 27-point finite-difference operator on a 3D grid (diagonal
//! 27, off-diagonals −1), distributes it by stacking the local grids along
//! the z axis, and spends most of its time in `sparsemv`.  AMG2013's two
//! evaluation problems are Laplace-type operators with 27-point and 7-point
//! stencils on the same kind of grid.  This module generates the *local*
//! matrix of one logical process: rows are the local grid points, columns
//! `0..nrows` are local values and columns `nrows..ncols` refer to ghost
//! values received from the z-neighbours (the paper's applications exchange
//! those ghosts outside the intra-parallel sections).

use crate::cost::{KernelCost, F64};
use crate::pool::{KernelPool, Task};
use std::ops::Range;

/// A sparse matrix in compressed-sparse-row format.
#[derive(Debug, Clone, PartialEq)]
pub struct CsrMatrix {
    nrows: usize,
    ncols: usize,
    row_ptr: Vec<usize>,
    col_idx: Vec<u32>,
    vals: Vec<f64>,
}

impl CsrMatrix {
    /// Builds a CSR matrix from per-row (column, value) lists.
    ///
    /// # Panics
    /// Panics if any column index is out of range.
    pub fn from_rows(ncols: usize, rows: &[Vec<(usize, f64)>]) -> Self {
        let nrows = rows.len();
        let nnz: usize = rows.iter().map(|r| r.len()).sum();
        let mut row_ptr = Vec::with_capacity(nrows + 1);
        let mut col_idx = Vec::with_capacity(nnz);
        let mut vals = Vec::with_capacity(nnz);
        row_ptr.push(0);
        for row in rows {
            for &(c, v) in row {
                assert!(c < ncols, "column index {c} out of range ({ncols} cols)");
                col_idx.push(c as u32);
                vals.push(v);
            }
            row_ptr.push(col_idx.len());
        }
        CsrMatrix {
            nrows,
            ncols,
            row_ptr,
            col_idx,
            vals,
        }
    }

    /// Number of rows.
    pub fn nrows(&self) -> usize {
        self.nrows
    }

    /// Number of columns (local + ghost).
    pub fn ncols(&self) -> usize {
        self.ncols
    }

    /// Number of stored nonzeros.
    pub fn nnz(&self) -> usize {
        self.col_idx.len()
    }

    /// Number of nonzeros in the given row range.
    pub fn nnz_in_rows(&self, rows: Range<usize>) -> usize {
        self.row_ptr[rows.end] - self.row_ptr[rows.start]
    }

    /// The matrix diagonal (zero where a row has no diagonal entry).
    pub fn diagonal(&self) -> Vec<f64> {
        let mut d = vec![0.0; self.nrows];
        for (i, slot) in d.iter_mut().enumerate() {
            for k in self.row_ptr[i]..self.row_ptr[i + 1] {
                if self.col_idx[k] as usize == i {
                    *slot = self.vals[k];
                }
            }
        }
        d
    }

    /// Sparse matrix-vector product `y = A x` (the HPCCG `sparsemv` kernel).
    ///
    /// # Panics
    /// Panics if `x` is shorter than `ncols` or `y` shorter than `nrows`.
    pub fn spmv(&self, x: &[f64], y: &mut [f64]) {
        self.spmv_rows(0..self.nrows, x, y);
    }

    /// Sparse matrix-vector product restricted to a row range — this is the
    /// unit of work one intra-parallel task executes.
    ///
    /// # Panics
    /// Panics on out-of-range rows or undersized vectors.
    pub fn spmv_rows(&self, rows: Range<usize>, x: &[f64], y: &mut [f64]) {
        assert!(y.len() >= rows.end, "y is shorter than the row range");
        let start = rows.start;
        self.spmv_rows_into(rows.clone(), x, &mut y[start..rows.end]);
    }

    /// Like [`CsrMatrix::spmv_rows`], but writes the products into a
    /// zero-based chunk: `out[i - rows.start] = (A x)[rows.start + i]`.
    /// This is the form a work-stealing pool wants — each tile borrows its
    /// own disjoint slice of `y` (e.g. from `chunks_mut`) with no index
    /// offsetting at the call site.
    ///
    /// The inner loop walks the row's values and column indices as zipped
    /// slices in the same `k` order as the classic indexed loop, so results
    /// are bit-identical to it — the slices merely drop the per-nonzero
    /// bounds checks.
    ///
    /// # Panics
    /// Panics on out-of-range rows, an undersized `x`, or an `out` chunk
    /// shorter than the row range.
    pub fn spmv_rows_into(&self, rows: Range<usize>, x: &[f64], out: &mut [f64]) {
        assert!(rows.end <= self.nrows, "row range out of bounds");
        assert!(x.len() >= self.ncols, "x is shorter than ncols");
        assert!(
            out.len() >= rows.len(),
            "out chunk is shorter than the row range"
        );
        let start = rows.start;
        for i in rows {
            let (lo, hi) = (self.row_ptr[i], self.row_ptr[i + 1]);
            let mut sum = 0.0;
            for (v, c) in self.vals[lo..hi].iter().zip(&self.col_idx[lo..hi]) {
                sum += v * x[*c as usize];
            }
            out[i - start] = sum;
        }
    }

    /// Sparse matrix-vector product executed on a [`KernelPool`]: rows are
    /// split into one contiguous block per worker (the striping the paper's
    /// intra-parallel `sparsemv` tasks use) and each block runs as a pool
    /// task writing its own disjoint chunk of `y`.  Bit-identical to
    /// [`CsrMatrix::spmv`] for any worker count.
    ///
    /// # Panics
    /// Panics if `x` is shorter than `ncols` or `y` shorter than `nrows`.
    pub fn spmv_pool(&self, x: &[f64], y: &mut [f64], pool: &KernelPool) {
        assert!(x.len() >= self.ncols, "x is shorter than ncols");
        assert!(y.len() >= self.nrows, "y is shorter than nrows");
        let block = self.nrows.div_ceil(pool.workers().max(1)).max(1);
        pool.run(
            y[..self.nrows]
                .chunks_mut(block)
                .enumerate()
                .map(|(b, chunk)| {
                    let lo = b * block;
                    let hi = (lo + chunk.len()).min(self.nrows);
                    let task: Task<'_> = Box::new(move || self.spmv_rows_into(lo..hi, x, chunk));
                    task
                })
                .collect(),
        );
    }

    /// Generates the HPCCG-style 27-point operator for a local `nx × ny × nz`
    /// grid: 27.0 on the diagonal, −1.0 for every neighbour (truncated at the
    /// local x/y boundaries).  The grid is distributed along z: if
    /// `ghost_below` / `ghost_above` are true, the neighbouring z-planes of
    /// adjacent logical processes appear as ghost columns appended after the
    /// local columns (first the plane below, then the plane above).
    pub fn stencil27(
        nx: usize,
        ny: usize,
        nz: usize,
        ghost_below: bool,
        ghost_above: bool,
    ) -> Self {
        Self::grid_operator(nx, ny, nz, ghost_below, ghost_above, 27.0, |dx, dy, dz| {
            // All 26 neighbours.
            !(dx == 0 && dy == 0 && dz == 0)
        })
    }

    /// Generates a 7-point Laplace-type operator (diagonal 6, −1 on the six
    /// face neighbours), with the same ghost-column convention as
    /// [`CsrMatrix::stencil27`].
    pub fn stencil7(nx: usize, ny: usize, nz: usize, ghost_below: bool, ghost_above: bool) -> Self {
        Self::grid_operator(nx, ny, nz, ghost_below, ghost_above, 6.0, |dx, dy, dz| {
            (dx.abs() + dy.abs() + dz.abs()) == 1
        })
    }

    fn grid_operator<F>(
        nx: usize,
        ny: usize,
        nz: usize,
        ghost_below: bool,
        ghost_above: bool,
        diag: f64,
        is_neighbour: F,
    ) -> Self
    where
        F: Fn(i64, i64, i64) -> bool,
    {
        let nlocal = nx * ny * nz;
        let plane = nx * ny;
        let below_base = nlocal;
        let above_base = nlocal + if ghost_below { plane } else { 0 };
        let ncols =
            nlocal + if ghost_below { plane } else { 0 } + if ghost_above { plane } else { 0 };
        let idx = |x: usize, y: usize, z: usize| -> usize { (z * ny + y) * nx + x };
        let mut rows: Vec<Vec<(usize, f64)>> = Vec::with_capacity(nlocal);
        for z in 0..nz as i64 {
            for y in 0..ny as i64 {
                for x in 0..nx as i64 {
                    let mut row = Vec::with_capacity(27);
                    for dz in -1i64..=1 {
                        for dy in -1i64..=1 {
                            for dx in -1i64..=1 {
                                if dx == 0 && dy == 0 && dz == 0 {
                                    row.push((idx(x as usize, y as usize, z as usize), diag));
                                    continue;
                                }
                                if !is_neighbour(dx, dy, dz) {
                                    continue;
                                }
                                let (cx, cy, cz) = (x + dx, y + dy, z + dz);
                                if cx < 0 || cx >= nx as i64 || cy < 0 || cy >= ny as i64 {
                                    continue; // truncated at local x/y boundary
                                }
                                if cz < 0 {
                                    if ghost_below {
                                        // The ghost plane below stores the
                                        // neighbour's top plane in (x, y) order.
                                        row.push((
                                            below_base + (cy as usize) * nx + cx as usize,
                                            -1.0,
                                        ));
                                    }
                                } else if cz >= nz as i64 {
                                    if ghost_above {
                                        row.push((
                                            above_base + (cy as usize) * nx + cx as usize,
                                            -1.0,
                                        ));
                                    }
                                } else {
                                    row.push((idx(cx as usize, cy as usize, cz as usize), -1.0));
                                }
                            }
                        }
                    }
                    rows.push(row);
                }
            }
        }
        Self::from_rows(ncols, &rows)
    }
}

/// Cost of a sparse matrix-vector product with `nrows` rows and `nnz`
/// nonzeros: 2 flops per nonzero; reads values (8 B) + column indices (4 B)
/// per nonzero plus the source vector (counted once per row, the cache-
/// friendly estimate HPCCG's memory behaviour justifies), writes and ships
/// the destination vector.
pub fn spmv_cost(nrows: usize, nnz: usize) -> KernelCost {
    let nrows = nrows as f64;
    let nnz = nnz as f64;
    KernelCost::new(
        2.0 * nnz,
        nnz * (F64 + 4.0) + nrows * F64,
        nrows * F64,
        nrows * F64,
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn from_rows_and_accessors() {
        // [[2, -1, 0], [-1, 2, -1], [0, -1, 2]]
        let a = CsrMatrix::from_rows(
            3,
            &[
                vec![(0, 2.0), (1, -1.0)],
                vec![(0, -1.0), (1, 2.0), (2, -1.0)],
                vec![(1, -1.0), (2, 2.0)],
            ],
        );
        assert_eq!(a.nrows(), 3);
        assert_eq!(a.ncols(), 3);
        assert_eq!(a.nnz(), 7);
        assert_eq!(a.nnz_in_rows(1..3), 5);
        assert_eq!(a.diagonal(), vec![2.0, 2.0, 2.0]);
        let mut y = vec![0.0; 3];
        a.spmv(&[1.0, 2.0, 3.0], &mut y);
        assert_eq!(y, vec![0.0, 0.0, 4.0]);
    }

    #[test]
    fn spmv_rows_matches_full_spmv() {
        let a = CsrMatrix::stencil27(4, 3, 2, false, false);
        let x: Vec<f64> = (0..a.ncols()).map(|i| (i % 7) as f64 - 3.0).collect();
        let mut full = vec![0.0; a.nrows()];
        a.spmv(&x, &mut full);
        let mut pieces = vec![0.0; a.nrows()];
        let n = a.nrows();
        a.spmv_rows(0..n / 3, &x, &mut pieces);
        a.spmv_rows(n / 3..2 * n / 3, &x, &mut pieces);
        a.spmv_rows(2 * n / 3..n, &x, &mut pieces);
        assert_eq!(full, pieces);
    }

    #[test]
    fn stencil27_interior_row_has_27_entries() {
        let a = CsrMatrix::stencil27(5, 5, 5, false, false);
        assert_eq!(a.nrows(), 125);
        // Center point (2,2,2) has all 27 neighbours inside the local grid.
        let center = (2 * 5 + 2) * 5 + 2;
        assert_eq!(a.nnz_in_rows(center..center + 1), 27);
        // A corner has only 8 (2x2x2 block).
        assert_eq!(a.nnz_in_rows(0..1), 8);
        assert_eq!(a.diagonal(), vec![27.0; 125]);
    }

    #[test]
    fn stencil7_interior_row_has_7_entries() {
        let a = CsrMatrix::stencil7(4, 4, 4, false, false);
        let center = (4 + 1) * 4 + 1; // grid point (1, 1, 1)
        assert_eq!(a.nnz_in_rows(center..center + 1), 7);
        assert_eq!(a.nnz_in_rows(0..1), 4);
        assert_eq!(a.diagonal(), vec![6.0; 64]);
    }

    #[test]
    fn ghost_planes_extend_the_column_space() {
        let (nx, ny, nz) = (3, 3, 2);
        let a = CsrMatrix::stencil7(nx, ny, nz, true, true);
        assert_eq!(a.nrows(), nx * ny * nz);
        assert_eq!(a.ncols(), nx * ny * nz + 2 * nx * ny);
        // Bottom-plane center point reaches into the ghost plane below.
        let bottom_center = nx + 1; // grid point (1, 1, 0)
        let has_ghost_col = (a.row_ptr[bottom_center]..a.row_ptr[bottom_center + 1])
            .any(|k| (a.col_idx[k] as usize) >= nx * ny * nz);
        assert!(has_ghost_col);
    }

    #[test]
    fn row_sums_are_consistent_with_stencil_weights() {
        // With x = all ones (including ghosts), row i of the 27-pt operator
        // gives 27 - (#neighbours), which is >= 1 for interior points of a
        // closed domain and equals 1 when all 26 neighbours are present.
        let a = CsrMatrix::stencil27(5, 5, 5, false, false);
        let x = vec![1.0; a.ncols()];
        let mut y = vec![0.0; a.nrows()];
        a.spmv(&x, &mut y);
        let center = (2 * 5 + 2) * 5 + 2;
        assert_eq!(y[center], 1.0);
        assert!(y.iter().all(|&v| v >= 1.0));
    }

    #[test]
    fn spmv_cost_is_memory_bound_but_update_light() {
        let c = spmv_cost(1000, 27_000);
        assert!(c.intensity() < 0.5, "sparsemv is memory bound");
        // ~6.75 flops per update byte vs waxpby's ~0.375.
        assert!(c.flops_per_output_byte() > 5.0);
    }

    proptest! {
        #[test]
        fn spmv_is_linear(scale in -3.0f64..3.0) {
            let a = CsrMatrix::stencil7(3, 3, 3, false, false);
            let x: Vec<f64> = (0..a.ncols()).map(|i| (i as f64).sin()).collect();
            let xs: Vec<f64> = x.iter().map(|v| v * scale).collect();
            let mut y1 = vec![0.0; a.nrows()];
            let mut y2 = vec![0.0; a.nrows()];
            a.spmv(&x, &mut y1);
            a.spmv(&xs, &mut y2);
            for i in 0..a.nrows() {
                prop_assert!((y2[i] - scale * y1[i]).abs() < 1e-9);
            }
        }

        #[test]
        fn split_spmv_equals_full_spmv(split in 1usize..26) {
            let a = CsrMatrix::stencil27(3, 3, 3, false, false);
            let x: Vec<f64> = (0..a.ncols()).map(|i| ((i * 13 % 7) as f64) - 3.0).collect();
            let mut full = vec![0.0; a.nrows()];
            a.spmv(&x, &mut full);
            let s = split.min(a.nrows() - 1);
            let mut parts = vec![0.0; a.nrows()];
            a.spmv_rows(0..s, &x, &mut parts);
            a.spmv_rows(s..a.nrows(), &x, &mut parts);
            prop_assert_eq!(full, parts);
        }
    }
}
