//! A small intra-rank work-stealing pool for kernel tiles.
//!
//! The paper's intra-parallelization executes a kernel as a set of
//! independent tiles (plane ranges, row ranges) inside one rank.  This pool
//! is the host-side executor for that shape of work: a fixed task set is
//! distributed round-robin over per-worker deques, each worker drains its
//! own deque from the front and steals from siblings' backs when it runs
//! dry — the same discipline as the campaign crate's `ExecutorPool`, but
//! scoped: tasks may borrow the caller's data (the grids and vectors being
//! swept), which a long-lived `'static` pool cannot allow without `unsafe`.
//!
//! Because the task set of one [`KernelPool::run`] call is fixed up front
//! and kernel tiles never spawn new tiles, an idle worker that finds every
//! deque empty can simply exit: no condition variables, no idle backstop.
//! [`std::thread::scope`] joins the workers before `run` returns, so the
//! borrow checker sees the borrows end there — the whole pool is safe code
//! (this crate is `#![deny(unsafe_code)]`).
//!
//! Determinism: tiles write disjoint outputs and their arithmetic does not
//! depend on which worker executes them, so pool-driven sweeps are
//! bit-identical to sequential ones for *any* worker count (the property
//! tests pin this down).  The modeled [`crate::KernelCost`] descriptors are
//! untouched by host-side execution: virtual-time reports cannot observe
//! the pool.

use std::collections::VecDeque;
use std::sync::Mutex;

/// One unit of kernel work: a closure borrowing the caller's data for the
/// lifetime of a single [`KernelPool::run`] call.
pub type Task<'scope> = Box<dyn FnOnce() + Send + 'scope>;

/// A fork-join work-stealing executor for kernel tiles.
#[derive(Debug, Clone)]
pub struct KernelPool {
    workers: usize,
}

impl KernelPool {
    /// A pool with `workers` workers (clamped to at least 1).
    pub fn new(workers: usize) -> Self {
        KernelPool {
            workers: workers.max(1),
        }
    }

    /// A pool sized to the host's available parallelism.
    pub fn host_sized() -> Self {
        Self::new(
            std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(1),
        )
    }

    /// Number of workers.
    pub fn workers(&self) -> usize {
        self.workers
    }

    /// Executes every task, returning when all have finished.
    ///
    /// Tasks are dealt round-robin onto per-worker deques; worker `w` pops
    /// its own deque from the front (oldest first) and steals from other
    /// deques' backs when its own is empty.  With one worker — or with an
    /// empty or single-task set, which skips the thread machinery entirely —
    /// this degenerates to in-order sequential execution on the calling
    /// thread.
    pub fn run(&self, tasks: Vec<Task<'_>>) {
        let n = self.workers;
        if n == 1 || tasks.len() <= 1 {
            for t in tasks {
                t();
            }
            return;
        }
        let queues: Vec<Mutex<VecDeque<Task<'_>>>> =
            (0..n).map(|_| Mutex::new(VecDeque::new())).collect();
        for (i, t) in tasks.into_iter().enumerate() {
            queues[i % n]
                .lock()
                .expect("kernel pool queue poisoned")
                .push_back(t);
        }
        std::thread::scope(|s| {
            // The calling thread acts as worker 0; only n-1 threads spawn.
            for w in 1..n {
                let queues = &queues;
                s.spawn(move || worker_loop(queues, w));
            }
            worker_loop(&queues, 0);
        });
    }
}

fn worker_loop(queues: &[Mutex<VecDeque<Task<'_>>>], own: usize) {
    let n = queues.len();
    loop {
        if let Some(t) = queues[own]
            .lock()
            .expect("kernel pool queue poisoned")
            .pop_front()
        {
            t();
            continue;
        }
        // Steal from siblings' backs, scanning round-robin starting after
        // our own slot so concurrent thieves spread out.
        let mut stolen = false;
        for offset in 1..n {
            let victim = (own + offset) % n;
            if let Some(t) = queues[victim]
                .lock()
                .expect("kernel pool queue poisoned")
                .pop_back()
            {
                t();
                stolen = true;
                break;
            }
        }
        if !stolen {
            // Every deque is empty and tiles never enqueue new tiles: no
            // more work can ever appear, so this worker is done.
            return;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};

    #[test]
    fn runs_every_task_exactly_once() {
        for workers in [1, 2, 4, 7] {
            let pool = KernelPool::new(workers);
            let counter = AtomicUsize::new(0);
            let tasks: Vec<Task<'_>> = (0..100)
                .map(|_| {
                    let c = &counter;
                    Box::new(move || {
                        c.fetch_add(1, Ordering::SeqCst);
                    }) as Task<'_>
                })
                .collect();
            pool.run(tasks);
            assert_eq!(counter.load(Ordering::SeqCst), 100, "workers={workers}");
        }
    }

    #[test]
    fn tasks_may_borrow_and_mutate_disjoint_data() {
        let mut data = vec![0u64; 64];
        let pool = KernelPool::new(4);
        pool.run(
            data.chunks_mut(8)
                .enumerate()
                .map(|(i, chunk)| {
                    let task: Task<'_> = Box::new(move || {
                        for (j, slot) in chunk.iter_mut().enumerate() {
                            *slot = (i * 8 + j) as u64;
                        }
                    });
                    task
                })
                .collect(),
        );
        for (i, v) in data.iter().enumerate() {
            assert_eq!(*v, i as u64);
        }
    }

    #[test]
    fn zero_workers_clamps_to_one_and_empty_task_set_is_fine() {
        let pool = KernelPool::new(0);
        assert_eq!(pool.workers(), 1);
        pool.run(Vec::new());
        assert!(KernelPool::host_sized().workers() >= 1);
    }
}
