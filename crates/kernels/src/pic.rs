//! Particle-in-cell kernels (GTC-style `charge` and `push`).
//!
//! GTC is a gyrokinetic particle-in-cell code; the paper intra-parallelizes
//! its two main kernels, which together account for ~75 % of the runtime:
//!
//! * **charge** — deposit every particle's charge onto the grid (the output
//!   is the grid-sized charge density array);
//! * **push** — advance every particle's position and velocity from the
//!   field (the output is the particle arrays themselves, which makes the
//!   positions `inout` variables — this is the paper's example of data that
//!   needs the extra copy of Section III-B2, measured at ~6 % overhead on
//!   the affected tasks).
//!
//! The proxy here is a simple 1D-periodic electrostatic PIC with cloud-in-
//! cell deposition; what matters for the reproduction is the per-particle
//! flop count, the size of the shipped outputs, and the inout nature of the
//! particle arrays, all of which match.

use crate::cost::{KernelCost, F64};
use rand::Rng;
use serde::{Deserialize, Serialize};
use std::ops::Range;

/// A set of charged particles in a periodic 1D domain `[0, length)`.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ParticleSet {
    /// Positions in `[0, length)`.
    pub x: Vec<f64>,
    /// Velocities.
    pub v: Vec<f64>,
    /// Domain length.
    pub length: f64,
}

impl ParticleSet {
    /// Creates `n` particles at uniformly random positions with a small
    /// sinusoidal velocity perturbation (two-stream-like setup), using the
    /// caller's RNG so runs stay deterministic per rank.
    pub fn random<R: Rng>(n: usize, length: f64, rng: &mut R) -> Self {
        let mut x = Vec::with_capacity(n);
        let mut v = Vec::with_capacity(n);
        for i in 0..n {
            let pos: f64 = rng.gen_range(0.0..length);
            x.push(pos);
            let dir = if i % 2 == 0 { 1.0 } else { -1.0 };
            v.push(dir * (1.0 + 0.1 * (2.0 * std::f64::consts::PI * pos / length).sin()));
        }
        ParticleSet { x, v, length }
    }

    /// Number of particles.
    pub fn len(&self) -> usize {
        self.x.len()
    }

    /// True if the set has no particles.
    pub fn is_empty(&self) -> bool {
        self.x.is_empty()
    }
}

/// Deposits the charge of particles `range` onto `density` using cloud-in-
/// cell (linear) weighting on a periodic grid.  `density` is accumulated
/// into, so the caller zeroes it (or splits it) as appropriate; each task of
/// the intra-parallel version writes its own partial density array.
///
/// # Panics
/// Panics if the range is out of bounds or the grid is empty.
pub fn charge_deposit(particles: &ParticleSet, range: Range<usize>, density: &mut [f64]) {
    let ncells = density.len();
    assert!(ncells > 0, "density grid must not be empty");
    assert!(range.end <= particles.len(), "particle range out of bounds");
    let dx = particles.length / ncells as f64;
    for i in range {
        let xp = particles.x[i].rem_euclid(particles.length);
        let cell = (xp / dx).floor();
        let frac = xp / dx - cell;
        let c0 = (cell as usize) % ncells;
        let c1 = (c0 + 1) % ncells;
        density[c0] += 1.0 - frac;
        density[c1] += frac;
    }
}

/// Cost of depositing `n` particles onto a grid of `cells` cells: ~10 flops
/// per particle, reads positions, read-modify-writes two grid cells per
/// particle; the shipped output is the density array.
pub fn charge_cost(n: usize, cells: usize) -> KernelCost {
    let n = n as f64;
    let cells = cells as f64;
    KernelCost::new(
        10.0 * n,
        n * F64 + 2.0 * n * F64,
        2.0 * n * F64 + cells * F64,
        cells * F64,
    )
}

/// Advances particles `range` by one leapfrog step in the given electric
/// field (periodic, cloud-in-cell gather).  Positions and velocities are
/// updated in place — they are the `inout` variables of the paper's GTC
/// example.
///
/// # Panics
/// Panics if the range is out of bounds or the field is empty.
pub fn push(particles: &mut ParticleSet, range: Range<usize>, field: &[f64], dt: f64) {
    let ncells = field.len();
    assert!(ncells > 0, "field grid must not be empty");
    assert!(range.end <= particles.len(), "particle range out of bounds");
    let length = particles.length;
    let dx = length / ncells as f64;
    for i in range {
        let xp = particles.x[i].rem_euclid(length);
        let cell = (xp / dx).floor();
        let frac = xp / dx - cell;
        let c0 = (cell as usize) % ncells;
        let c1 = (c0 + 1) % ncells;
        let e = field[c0] * (1.0 - frac) + field[c1] * frac;
        particles.v[i] += e * dt;
        particles.x[i] = (particles.x[i] + particles.v[i] * dt).rem_euclid(length);
    }
}

/// Cost of pushing `n` particles: ~15 flops per particle; reads and writes
/// the particle arrays (which are also the shipped output, since positions
/// and velocities are `inout`).
pub fn push_cost(n: usize) -> KernelCost {
    let n = n as f64;
    KernelCost::new(15.0 * n, 3.0 * n * F64, 2.0 * n * F64, 2.0 * n * F64)
}

/// Solves the 1D periodic Poisson equation for the electric field from the
/// charge density (simple integration with zero-mean correction).  This is
/// the "field solve" phase GTC performs between charge and push; it stays
/// outside the intra-parallel sections.
pub fn field_solve(density: &[f64], length: f64) -> Vec<f64> {
    let n = density.len();
    if n == 0 {
        return Vec::new();
    }
    let mean = density.iter().sum::<f64>() / n as f64;
    let dx = length / n as f64;
    // E' = rho - <rho>  (periodic), integrate then remove the mean of E.
    let mut e = Vec::with_capacity(n);
    let mut acc = 0.0;
    for &rho in density {
        acc += (rho - mean) * dx;
        e.push(acc);
    }
    let e_mean = e.iter().sum::<f64>() / n as f64;
    for v in e.iter_mut() {
        *v -= e_mean;
    }
    e
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    fn rng() -> rand::rngs::SmallRng {
        rand::rngs::SmallRng::seed_from_u64(7)
    }

    #[test]
    fn random_particles_are_inside_the_domain() {
        let p = ParticleSet::random(100, 32.0, &mut rng());
        assert_eq!(p.len(), 100);
        assert!(!p.is_empty());
        assert!(p.x.iter().all(|&x| (0.0..32.0).contains(&x)));
    }

    #[test]
    fn charge_deposit_conserves_total_charge() {
        let p = ParticleSet::random(500, 16.0, &mut rng());
        let mut density = vec![0.0; 64];
        charge_deposit(&p, 0..p.len(), &mut density);
        let total: f64 = density.iter().sum();
        assert!((total - 500.0).abs() < 1e-9, "total charge {total}");
    }

    #[test]
    fn charge_deposit_splits_into_additive_ranges() {
        let p = ParticleSet::random(200, 8.0, &mut rng());
        let mut full = vec![0.0; 32];
        charge_deposit(&p, 0..200, &mut full);
        let mut a = vec![0.0; 32];
        let mut b = vec![0.0; 32];
        charge_deposit(&p, 0..77, &mut a);
        charge_deposit(&p, 77..200, &mut b);
        for i in 0..32 {
            assert!((full[i] - (a[i] + b[i])).abs() < 1e-9);
        }
    }

    #[test]
    fn push_with_zero_field_is_free_streaming() {
        let mut p = ParticleSet {
            x: vec![1.0, 2.0],
            v: vec![0.5, -0.25],
            length: 4.0,
        };
        let field = vec![0.0; 8];
        push(&mut p, 0..2, &field, 2.0);
        assert!((p.x[0] - 2.0).abs() < 1e-12);
        assert!((p.x[1] - 1.5).abs() < 1e-12);
        assert_eq!(p.v, vec![0.5, -0.25]);
    }

    #[test]
    fn push_wraps_positions_periodically() {
        let mut p = ParticleSet {
            x: vec![3.9],
            v: vec![1.0],
            length: 4.0,
        };
        let field = vec![0.0; 4];
        push(&mut p, 0..1, &field, 0.5);
        assert!((p.x[0] - 0.4).abs() < 1e-12);
    }

    #[test]
    fn push_ranges_partition_the_work() {
        let p0 = ParticleSet::random(300, 10.0, &mut rng());
        let field: Vec<f64> = (0..50).map(|i| ((i as f64) * 0.3).sin()).collect();
        let mut full = p0.clone();
        push(&mut full, 0..300, &field, 0.1);
        let mut split = p0.clone();
        push(&mut split, 0..100, &field, 0.1);
        push(&mut split, 100..300, &field, 0.1);
        assert_eq!(full, split);
    }

    #[test]
    fn field_solve_has_zero_mean_and_matches_uniform_density() {
        let density = vec![2.0; 16];
        let e = field_solve(&density, 8.0);
        assert_eq!(e.len(), 16);
        let mean: f64 = e.iter().sum::<f64>() / 16.0;
        assert!(mean.abs() < 1e-12);
        // Uniform density => zero field everywhere.
        assert!(e.iter().all(|&v| v.abs() < 1e-12));
        assert!(field_solve(&[], 1.0).is_empty());
    }

    #[test]
    fn costs_reflect_inout_nature_of_push() {
        let push_c = push_cost(1_000_000);
        let charge_c = charge_cost(1_000_000, 1000);
        // push ships the particle arrays (large); charge ships only the grid.
        assert!(push_c.output_bytes > charge_c.output_bytes * 100.0);
        assert!(charge_c.flops_per_output_byte() > push_c.flops_per_output_byte());
    }
}
