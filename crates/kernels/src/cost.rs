//! Analytic cost descriptors.
//!
//! Every kernel exposes a `*_cost(n)` companion returning a [`KernelCost`]:
//! the number of floating-point operations and the memory traffic the kernel
//! generates for a problem of size `n`.  The simulator charges virtual time
//! for the cost through its roofline model, which is what lets paper-scale
//! problem sizes (128³ grid points per logical process) be timed while the
//! actual arrays in memory stay small.
//!
//! The descriptors also record `output_bytes`: the size of the data a task
//! writes, i.e. the size of the *update* that intra-parallelization must ship
//! to the other replicas.  The compute-to-update ratio is the single quantity
//! that decides whether a kernel benefits from intra-parallelization (the
//! paper's Section V-C discussion of waxpby vs ddot vs sparsemv).

use serde::{Deserialize, Serialize};
use std::ops::{Add, AddAssign, Mul};

/// Flop count and memory traffic of a computational region.
#[derive(Debug, Clone, Copy, PartialEq, Default, Serialize, Deserialize)]
pub struct KernelCost {
    /// Floating-point operations performed.
    pub flops: f64,
    /// Bytes read from memory.
    pub bytes_read: f64,
    /// Bytes written to memory.
    pub bytes_written: f64,
    /// Bytes of output that would have to be shipped to a replica (size of
    /// the variables written that are live after the kernel).
    pub output_bytes: f64,
}

impl KernelCost {
    /// A zero cost.
    pub const ZERO: KernelCost = KernelCost {
        flops: 0.0,
        bytes_read: 0.0,
        bytes_written: 0.0,
        output_bytes: 0.0,
    };

    /// Creates a cost descriptor.
    pub fn new(flops: f64, bytes_read: f64, bytes_written: f64, output_bytes: f64) -> Self {
        KernelCost {
            flops,
            bytes_read,
            bytes_written,
            output_bytes,
        }
    }

    /// Total memory traffic (read + written).
    pub fn mem_bytes(&self) -> f64 {
        self.bytes_read + self.bytes_written
    }

    /// Arithmetic intensity in flops per byte of memory traffic.
    pub fn intensity(&self) -> f64 {
        if self.mem_bytes() > 0.0 {
            self.flops / self.mem_bytes()
        } else {
            f64::INFINITY
        }
    }

    /// Flops per byte of *update* (output) — the quantity that governs
    /// intra-parallelization efficiency.
    pub fn flops_per_output_byte(&self) -> f64 {
        if self.output_bytes > 0.0 {
            self.flops / self.output_bytes
        } else {
            f64::INFINITY
        }
    }
}

impl Add for KernelCost {
    type Output = KernelCost;
    fn add(self, rhs: KernelCost) -> KernelCost {
        KernelCost {
            flops: self.flops + rhs.flops,
            bytes_read: self.bytes_read + rhs.bytes_read,
            bytes_written: self.bytes_written + rhs.bytes_written,
            output_bytes: self.output_bytes + rhs.output_bytes,
        }
    }
}

impl AddAssign for KernelCost {
    fn add_assign(&mut self, rhs: KernelCost) {
        *self = *self + rhs;
    }
}

impl Mul<f64> for KernelCost {
    type Output = KernelCost;
    fn mul(self, k: f64) -> KernelCost {
        KernelCost {
            flops: self.flops * k,
            bytes_read: self.bytes_read * k,
            bytes_written: self.bytes_written * k,
            output_bytes: self.output_bytes * k,
        }
    }
}

/// Size of one `f64` in bytes, used by the per-kernel cost functions.
pub const F64: f64 = 8.0;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn arithmetic_combines_costs() {
        let a = KernelCost::new(10.0, 100.0, 50.0, 8.0);
        let b = KernelCost::new(5.0, 10.0, 10.0, 0.0);
        let c = a + b;
        assert_eq!(c.flops, 15.0);
        assert_eq!(c.mem_bytes(), 170.0);
        assert_eq!(c.output_bytes, 8.0);
        let d = a * 2.0;
        assert_eq!(d.flops, 20.0);
        assert_eq!(d.bytes_written, 100.0);
    }

    #[test]
    fn intensity_and_update_ratio() {
        let c = KernelCost::new(100.0, 100.0, 100.0, 10.0);
        assert_eq!(c.intensity(), 0.5);
        assert_eq!(c.flops_per_output_byte(), 10.0);
        assert_eq!(KernelCost::ZERO.intensity(), f64::INFINITY);
        assert_eq!(KernelCost::ZERO.flops_per_output_byte(), f64::INFINITY);
    }

    #[test]
    fn add_assign_accumulates() {
        let mut acc = KernelCost::ZERO;
        for _ in 0..3 {
            acc += KernelCost::new(1.0, 2.0, 3.0, 4.0);
        }
        assert_eq!(acc.flops, 3.0);
        assert_eq!(acc.output_bytes, 12.0);
    }
}
