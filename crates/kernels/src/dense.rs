//! Small dense linear-algebra helpers used by the GMRES solver of the
//! AMG2013 proxy (Hessenberg least-squares via Givens rotations).
//!
//! These operate on tiny `m × m` problems (`m` = restart length, 30 in the
//! paper-scale runs) and are never intra-parallelized — they live outside the
//! sections, in the "others" part of the Figure 6 breakdown.

/// A Givens rotation `(c, s)` that zeroes `b` in the pair `(a, b)`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Givens {
    /// Cosine component.
    pub c: f64,
    /// Sine component.
    pub s: f64,
}

impl Givens {
    /// Computes the rotation annihilating `b` against `a`.
    pub fn compute(a: f64, b: f64) -> Self {
        if b == 0.0 {
            Givens { c: 1.0, s: 0.0 }
        } else if a == 0.0 {
            Givens { c: 0.0, s: 1.0 }
        } else {
            let r = (a * a + b * b).sqrt();
            Givens { c: a / r, s: b / r }
        }
    }

    /// Applies the rotation to the pair `(a, b)`, returning the rotated pair
    /// (second component is zero when applied to the pair the rotation was
    /// computed from).
    pub fn apply(&self, a: f64, b: f64) -> (f64, f64) {
        (self.c * a + self.s * b, -self.s * a + self.c * b)
    }
}

/// Solves the upper-triangular system `R y = g` for the leading `k × k`
/// block, where `R` is stored column-major as the Hessenberg matrix after
/// Givens elimination (`h[j][i]` = entry (i, j)).
///
/// # Panics
/// Panics if the system is singular (zero diagonal) or the dimensions are
/// inconsistent.
pub fn back_substitute(h: &[Vec<f64>], g: &[f64], k: usize) -> Vec<f64> {
    assert!(h.len() >= k, "not enough Hessenberg columns");
    assert!(g.len() >= k, "right-hand side too short");
    let mut y = vec![0.0; k];
    for i in (0..k).rev() {
        let mut sum = g[i];
        for (j, yj) in y.iter().enumerate().take(k).skip(i + 1) {
            sum -= h[j][i] * yj;
        }
        let diag = h[i][i];
        assert!(diag.abs() > 1e-300, "singular triangular system");
        y[i] = sum / diag;
    }
    y
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn givens_annihilates_second_component() {
        let g = Givens::compute(3.0, 4.0);
        let (r, zero) = g.apply(3.0, 4.0);
        assert!((r - 5.0).abs() < 1e-12);
        assert!(zero.abs() < 1e-12);
    }

    #[test]
    fn givens_handles_degenerate_inputs() {
        let g = Givens::compute(2.0, 0.0);
        assert_eq!(g, Givens { c: 1.0, s: 0.0 });
        let g = Givens::compute(0.0, 2.0);
        assert_eq!(g, Givens { c: 0.0, s: 1.0 });
        let (a, b) = g.apply(0.0, 2.0);
        assert!((a - 2.0).abs() < 1e-12 && b.abs() < 1e-12);
    }

    #[test]
    fn givens_preserves_norm() {
        let g = Givens::compute(1.5, -2.5);
        let (a, b) = g.apply(0.7, 3.1);
        let before = (0.7f64 * 0.7 + 3.1 * 3.1).sqrt();
        let after = (a * a + b * b).sqrt();
        assert!((before - after).abs() < 1e-12);
    }

    #[test]
    fn back_substitution_solves_triangular_system() {
        // Columns of R: R = [[2, 0, 0], [1, 3, 0], [4, 5, 6]] (upper tri,
        // column-major storage h[j][i]).
        let h = vec![
            vec![2.0, 0.0, 0.0],
            vec![1.0, 3.0, 0.0],
            vec![4.0, 5.0, 6.0],
        ];
        let y_true = [1.0, -2.0, 0.5];
        // g = R * y_true
        let g = vec![
            2.0 * 1.0 + 1.0 * -2.0 + 4.0 * 0.5,
            3.0 * -2.0 + 5.0 * 0.5,
            6.0 * 0.5,
        ];
        let y = back_substitute(&h, &g, 3);
        for i in 0..3 {
            assert!((y[i] - y_true[i]).abs() < 1e-12);
        }
    }

    #[test]
    #[should_panic]
    fn back_substitution_rejects_singular_systems() {
        let h = vec![vec![0.0]];
        let _ = back_substitute(&h, &[1.0], 1);
    }
}
