//! 3D grids with ghost layers (the data structure behind MiniGhost and the
//! stencil kernels).
//!
//! A [`Grid3d`] stores an `nx × ny × nz` local block surrounded by a
//! one-cell ghost layer.  The mini-applications exchange the six faces with
//! their neighbours (outside intra-parallel sections) and then apply a
//! stencil to the interior (inside sections).

use crate::cost::F64;
use serde::{Deserialize, Serialize};

/// A 3D grid of `f64` values with a one-cell ghost layer on every side.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Grid3d {
    nx: usize,
    ny: usize,
    nz: usize,
    /// Row-major data of size `(nx + 2) * (ny + 2) * (nz + 2)`.
    data: Vec<f64>,
}

/// The six faces of a 3D block.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Face {
    /// −x face.
    West,
    /// +x face.
    East,
    /// −y face.
    South,
    /// +y face.
    North,
    /// −z face.
    Down,
    /// +z face.
    Up,
}

impl Face {
    /// All six faces.
    pub const ALL: [Face; 6] = [
        Face::West,
        Face::East,
        Face::South,
        Face::North,
        Face::Down,
        Face::Up,
    ];

    /// The opposite face.
    pub fn opposite(self) -> Face {
        match self {
            Face::West => Face::East,
            Face::East => Face::West,
            Face::South => Face::North,
            Face::North => Face::South,
            Face::Down => Face::Up,
            Face::Up => Face::Down,
        }
    }
}

impl Grid3d {
    /// Creates a grid filled with `value` (ghost cells included).
    pub fn filled(nx: usize, ny: usize, nz: usize, value: f64) -> Self {
        assert!(
            nx > 0 && ny > 0 && nz > 0,
            "grid dimensions must be positive"
        );
        Grid3d {
            nx,
            ny,
            nz,
            data: vec![value; (nx + 2) * (ny + 2) * (nz + 2)],
        }
    }

    /// Creates a grid whose interior is initialized by `f(x, y, z)` (local,
    /// zero-based coordinates); ghost cells are zero.
    pub fn from_fn<F: Fn(usize, usize, usize) -> f64>(
        nx: usize,
        ny: usize,
        nz: usize,
        f: F,
    ) -> Self {
        let mut g = Self::filled(nx, ny, nz, 0.0);
        for z in 0..nz {
            for y in 0..ny {
                for x in 0..nx {
                    let v = f(x, y, z);
                    g.set(x, y, z, v);
                }
            }
        }
        g
    }

    /// Interior dimensions `(nx, ny, nz)`.
    pub fn dims(&self) -> (usize, usize, usize) {
        (self.nx, self.ny, self.nz)
    }

    /// Number of interior cells.
    pub fn interior_len(&self) -> usize {
        self.nx * self.ny * self.nz
    }

    /// Bytes occupied by the interior cells.
    pub fn interior_bytes(&self) -> f64 {
        self.interior_len() as f64 * F64
    }

    #[inline]
    fn index(&self, x: usize, y: usize, z: usize) -> usize {
        // Coordinates are ghost-inclusive: 0..=nx+1 etc.
        (z * (self.ny + 2) + y) * (self.nx + 2) + x
    }

    /// Value of the interior cell `(x, y, z)` (zero-based interior
    /// coordinates).
    #[inline]
    pub fn get(&self, x: usize, y: usize, z: usize) -> f64 {
        self.data[self.index(x + 1, y + 1, z + 1)]
    }

    /// Sets the interior cell `(x, y, z)`.
    #[inline]
    pub fn set(&mut self, x: usize, y: usize, z: usize, v: f64) {
        let i = self.index(x + 1, y + 1, z + 1);
        self.data[i] = v;
    }

    /// Value at ghost-inclusive coordinates (`0..=nx+1` etc.), used by the
    /// stencil kernels.
    #[inline]
    pub fn get_raw(&self, x: usize, y: usize, z: usize) -> f64 {
        self.data[self.index(x, y, z)]
    }

    /// Sets a value at ghost-inclusive coordinates.
    #[inline]
    pub fn set_raw(&mut self, x: usize, y: usize, z: usize, v: f64) {
        let i = self.index(x, y, z);
        self.data[i] = v;
    }

    /// One ghost-inclusive x-row (length `nx + 2`) at raw coordinates
    /// `(0.., y, z)`.  Rows are the contiguous unit of the storage layout;
    /// the blocked stencil kernels walk rows as slices so the inner loops
    /// compile to bounds-check-free, vectorizable code instead of one
    /// indexed load per stencil point.
    #[inline]
    pub fn raw_row(&self, y: usize, z: usize) -> &[f64] {
        let start = self.index(0, y, z);
        &self.data[start..start + self.nx + 2]
    }

    /// The interior cells of row `(y, z)` (interior coordinates, length
    /// `nx`) as a mutable slice.
    #[inline]
    pub fn interior_row_mut(&mut self, y: usize, z: usize) -> &mut [f64] {
        let start = self.index(1, y + 1, z + 1);
        let nx = self.nx;
        &mut self.data[start..start + nx]
    }

    /// Length of one ghost-inclusive x-row (`nx + 2`); the row stride of
    /// the plane slabs returned by [`Grid3d::interior_plane_slabs_mut`].
    #[inline]
    pub fn raw_row_len(&self) -> usize {
        self.nx + 2
    }

    /// Splits the grid into one mutable ghost-inclusive z-plane slab per
    /// *interior* plane (raw planes `1..=nz`, each `(nx+2) * (ny+2)` long,
    /// row stride [`Grid3d::raw_row_len`]).
    ///
    /// The slabs are disjoint, so a task pool can hand each tile of planes
    /// to a different worker without any aliasing: this is the mutable
    /// surface behind the pool-parallel stencil sweeps.
    pub fn interior_plane_slabs_mut(&mut self) -> Vec<&mut [f64]> {
        let plane = (self.nx + 2) * (self.ny + 2);
        self.data.chunks_mut(plane).skip(1).take(self.nz).collect()
    }

    /// Copies the interior cells into a flat vector (x fastest, then y, z) —
    /// the layout used when the grid is exposed to the task workspace.
    pub fn interior_to_vec(&self) -> Vec<f64> {
        let mut out = Vec::with_capacity(self.interior_len());
        for z in 0..self.nz {
            for y in 0..self.ny {
                for x in 0..self.nx {
                    out.push(self.get(x, y, z));
                }
            }
        }
        out
    }

    /// Overwrites the interior cells from a flat vector produced by
    /// [`Grid3d::interior_to_vec`].
    ///
    /// # Panics
    /// Panics if the vector has the wrong length.
    pub fn interior_from_vec(&mut self, v: &[f64]) {
        assert_eq!(v.len(), self.interior_len(), "interior size mismatch");
        let mut it = v.iter();
        for z in 0..self.nz {
            for y in 0..self.ny {
                for x in 0..self.nx {
                    self.set(x, y, z, *it.next().expect("length checked"));
                }
            }
        }
    }

    /// Extracts the interior layer adjacent to `face` as a flat vector (the
    /// data a process sends to its neighbour on that side).
    pub fn extract_face(&self, face: Face) -> Vec<f64> {
        let (nx, ny, nz) = self.dims();
        match face {
            Face::West | Face::East => {
                let x = if face == Face::West { 0 } else { nx - 1 };
                let mut out = Vec::with_capacity(ny * nz);
                for z in 0..nz {
                    for y in 0..ny {
                        out.push(self.get(x, y, z));
                    }
                }
                out
            }
            Face::South | Face::North => {
                let y = if face == Face::South { 0 } else { ny - 1 };
                let mut out = Vec::with_capacity(nx * nz);
                for z in 0..nz {
                    for x in 0..nx {
                        out.push(self.get(x, y, z));
                    }
                }
                out
            }
            Face::Down | Face::Up => {
                let z = if face == Face::Down { 0 } else { nz - 1 };
                let mut out = Vec::with_capacity(nx * ny);
                for y in 0..ny {
                    for x in 0..nx {
                        out.push(self.get(x, y, z));
                    }
                }
                out
            }
        }
    }

    /// Number of cells in the face perpendicular to `face`.
    pub fn face_len(&self, face: Face) -> usize {
        let (nx, ny, nz) = self.dims();
        match face {
            Face::West | Face::East => ny * nz,
            Face::South | Face::North => nx * nz,
            Face::Down | Face::Up => nx * ny,
        }
    }

    /// Fills the ghost layer on `face` from a flat vector received from the
    /// neighbour on that side (the neighbour's opposite interior face).
    ///
    /// # Panics
    /// Panics if the vector has the wrong length.
    pub fn fill_ghost(&mut self, face: Face, values: &[f64]) {
        let (nx, ny, nz) = self.dims();
        assert_eq!(
            values.len(),
            self.face_len(face),
            "ghost face size mismatch"
        );
        let mut it = values.iter();
        match face {
            Face::West | Face::East => {
                let gx = if face == Face::West { 0 } else { nx + 1 };
                for z in 0..nz {
                    for y in 0..ny {
                        self.set_raw(gx, y + 1, z + 1, *it.next().expect("checked"));
                    }
                }
            }
            Face::South | Face::North => {
                let gy = if face == Face::South { 0 } else { ny + 1 };
                for z in 0..nz {
                    for x in 0..nx {
                        self.set_raw(x + 1, gy, z + 1, *it.next().expect("checked"));
                    }
                }
            }
            Face::Down | Face::Up => {
                let gz = if face == Face::Down { 0 } else { nz + 1 };
                for y in 0..ny {
                    for x in 0..nx {
                        self.set_raw(x + 1, y + 1, gz, *it.next().expect("checked"));
                    }
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn construction_and_accessors() {
        let g = Grid3d::filled(2, 3, 4, 1.5);
        assert_eq!(g.dims(), (2, 3, 4));
        assert_eq!(g.interior_len(), 24);
        assert_eq!(g.get(1, 2, 3), 1.5);
        assert_eq!(g.interior_bytes(), 24.0 * 8.0);
    }

    #[test]
    fn from_fn_and_round_trip_through_vec() {
        let g = Grid3d::from_fn(3, 2, 2, |x, y, z| (x + 10 * y + 100 * z) as f64);
        assert_eq!(g.get(2, 1, 1), 112.0);
        let v = g.interior_to_vec();
        assert_eq!(v.len(), 12);
        assert_eq!(v[0], 0.0);
        assert_eq!(v[1], 1.0);
        assert_eq!(v[3], 10.0);
        let mut h = Grid3d::filled(3, 2, 2, 0.0);
        h.interior_from_vec(&v);
        assert_eq!(g, h);
    }

    #[test]
    fn ghost_cells_start_at_zero_and_are_separate_from_interior() {
        let mut g = Grid3d::filled(2, 2, 2, 3.0);
        // Raw coordinate (0, 1, 1) is the west ghost of interior (0, 0, 0).
        assert_eq!(g.get_raw(0, 1, 1), 3.0);
        g.set_raw(0, 1, 1, -1.0);
        assert_eq!(g.get(0, 0, 0), 3.0, "interior untouched by ghost write");
    }

    #[test]
    fn face_extraction_and_ghost_fill_are_inverse_shapes() {
        let g = Grid3d::from_fn(3, 4, 5, |x, y, z| (x + 10 * y + 100 * z) as f64);
        for face in Face::ALL {
            let f = g.extract_face(face);
            assert_eq!(f.len(), g.face_len(face), "{face:?}");
            let mut h = g.clone();
            h.fill_ghost(face.opposite(), &f);
        }
        // Spot-check the Up face: z = nz-1 plane.
        let up = g.extract_face(Face::Up);
        assert_eq!(up[0], g.get(0, 0, 4));
        assert_eq!(*up.last().unwrap(), g.get(2, 3, 4));
    }

    #[test]
    fn neighbour_exchange_matches_physical_adjacency() {
        // Two blocks stacked along z: the Up face of the lower block becomes
        // the Down ghost of the upper block.
        let lower = Grid3d::from_fn(2, 2, 2, |x, y, z| (x + 2 * y + 4 * z) as f64 + 100.0);
        let mut upper = Grid3d::filled(2, 2, 2, 0.0);
        upper.fill_ghost(Face::Down, &lower.extract_face(Face::Up));
        // Ghost cell below upper (0,0,0) = lower (0,0,1) = 104.
        assert_eq!(upper.get_raw(1, 1, 0), 104.0);
        assert_eq!(upper.get_raw(2, 2, 0), 107.0);
    }

    #[test]
    fn opposite_faces_pair_up() {
        for face in Face::ALL {
            assert_eq!(face.opposite().opposite(), face);
            assert_ne!(face.opposite(), face);
        }
    }

    #[test]
    #[should_panic]
    fn ghost_fill_rejects_wrong_length() {
        let mut g = Grid3d::filled(2, 2, 2, 0.0);
        g.fill_ghost(Face::Up, &[1.0, 2.0, 3.0]);
    }
}
