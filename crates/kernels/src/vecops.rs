//! Vector kernels: the HPCCG trio (`waxpby`, `ddot`) and friends.
//!
//! These are the kernels of Figure 5a of the paper.  Each comes with a cost
//! descriptor; the key property reproduced by the costs is the ratio between
//! computation and output (update) size:
//!
//! * `waxpby` writes a full vector while doing only 3 flops per element — its
//!   update is as large as its memory traffic, so intra-parallelization
//!   *loses* (paper: 0.34 efficiency, worse than plain replication);
//! * `ddot` reduces two vectors to a single scalar — its update is 8 bytes,
//!   so intra-parallelization is essentially free (paper: 0.99);
//! * `sparsemv` (in [`crate::sparse`]) writes a vector but reads a whole
//!   matrix row per element — enough work per output byte for
//!   intra-parallelization to pay off (paper: 0.94).

use crate::cost::{KernelCost, F64};

/// `w = alpha * x + beta * y` (the HPCCG `waxpby` kernel).
///
/// # Panics
/// Panics if the slices have different lengths.
pub fn waxpby(alpha: f64, x: &[f64], beta: f64, y: &[f64], w: &mut [f64]) {
    assert_eq!(
        x.len(),
        y.len(),
        "waxpby: x and y must have the same length"
    );
    assert_eq!(
        x.len(),
        w.len(),
        "waxpby: x and w must have the same length"
    );
    // Match HPCCG's special-casing of alpha/beta == 1.0 (it matters for the
    // flop count, not for the result).  The zipped iterators give the
    // compiler three bounds-check-free elementwise loops; the per-element
    // arithmetic is unchanged, so results are bit-identical to the indexed
    // form.
    let pairs = w.iter_mut().zip(x.iter().zip(y));
    if alpha == 1.0 {
        for (w, (x, y)) in pairs {
            *w = x + beta * y;
        }
    } else if beta == 1.0 {
        for (w, (x, y)) in pairs {
            *w = alpha * x + y;
        }
    } else {
        for (w, (x, y)) in pairs {
            *w = alpha * x + beta * y;
        }
    }
}

/// Cost of [`waxpby`] on vectors of length `n`: 3 flops per element, reads
/// two vectors, writes one (which is also the update).
pub fn waxpby_cost(n: usize) -> KernelCost {
    let n = n as f64;
    KernelCost::new(3.0 * n, 2.0 * n * F64, n * F64, n * F64)
}

/// Local part of the HPCCG `ddot` kernel: the dot product of two vectors.
/// (The MPI all-reduce that completes the global dot product is *outside*
/// the intra-parallel section, as in the paper.)
///
/// # Panics
/// Panics if the slices have different lengths.
pub fn ddot(x: &[f64], y: &[f64]) -> f64 {
    assert_eq!(x.len(), y.len(), "ddot: vectors must have the same length");
    let mut sum = 0.0;
    for i in 0..x.len() {
        sum += x[i] * y[i];
    }
    sum
}

/// Number of independent accumulators used by [`ddot_lanes`].
pub const DDOT_LANES: usize = 8;

/// Dot product with [`DDOT_LANES`] fixed-width accumulator lanes.
///
/// The sequential [`ddot`] carries one serial addition chain, so its
/// throughput is capped by the FP-add latency and the compiler cannot
/// vectorize it without `-ffast-math`-style licence.  This variant keeps
/// eight independent accumulators (lane `l` sums elements `l, l+8, l+16, …`)
/// and tree-reduces them at the end, which is the standard way to expose the
/// reduction to SIMD while keeping the summation order *fixed*: for a given
/// input the result is always the same bits, on every host and worker count.
/// It is **not** bit-identical to [`ddot`] (the association differs), which
/// is why `ddot` stays the app-facing kernel: the simulated applications'
/// goldens are pinned to the sequential order.
///
/// # Panics
/// Panics if the slices have different lengths.
pub fn ddot_lanes(x: &[f64], y: &[f64]) -> f64 {
    assert_eq!(
        x.len(),
        y.len(),
        "ddot_lanes: vectors must have the same length"
    );
    let mut lanes = [0.0f64; DDOT_LANES];
    let mut xc = x.chunks_exact(DDOT_LANES);
    let mut yc = y.chunks_exact(DDOT_LANES);
    for (xs, ys) in xc.by_ref().zip(yc.by_ref()) {
        for ((lane, a), b) in lanes.iter_mut().zip(xs).zip(ys) {
            *lane += a * b;
        }
    }
    let mut sum = ((lanes[0] + lanes[1]) + (lanes[2] + lanes[3]))
        + ((lanes[4] + lanes[5]) + (lanes[6] + lanes[7]));
    for (a, b) in xc.remainder().iter().zip(yc.remainder()) {
        sum += a * b;
    }
    sum
}

/// Cost of [`ddot`] on vectors of length `n`: 2 flops per element, reads two
/// vectors, writes (and ships) a single scalar.
pub fn ddot_cost(n: usize) -> KernelCost {
    let n = n as f64;
    KernelCost::new(2.0 * n, 2.0 * n * F64, F64, F64)
}

/// Special case `ddot(x, x)` used by HPCCG for residual norms.
pub fn ddot_self(x: &[f64]) -> f64 {
    ddot(x, x)
}

/// `y += alpha * x` (classic axpy).
///
/// # Panics
/// Panics if the slices have different lengths.
pub fn axpy(alpha: f64, x: &[f64], y: &mut [f64]) {
    assert_eq!(x.len(), y.len(), "axpy: vectors must have the same length");
    for i in 0..y.len() {
        y[i] += alpha * x[i];
    }
}

/// Cost of [`axpy`] on vectors of length `n`.
pub fn axpy_cost(n: usize) -> KernelCost {
    let n = n as f64;
    KernelCost::new(2.0 * n, 2.0 * n * F64, n * F64, n * F64)
}

/// Scales a vector in place: `x *= alpha`.
pub fn scale(alpha: f64, x: &mut [f64]) {
    for v in x.iter_mut() {
        *v *= alpha;
    }
}

/// Cost of [`scale`] on a vector of length `n`.
pub fn scale_cost(n: usize) -> KernelCost {
    let n = n as f64;
    KernelCost::new(n, n * F64, n * F64, n * F64)
}

/// Sum of all elements (the MiniGhost grid-summation kernel, `GRID_SUM`).
pub fn grid_sum(x: &[f64]) -> f64 {
    let mut sum = 0.0;
    for &v in x {
        sum += v;
    }
    sum
}

/// Cost of [`grid_sum`] on `n` elements: 1 flop per element, reads one
/// vector, ships a single scalar.
pub fn grid_sum_cost(n: usize) -> KernelCost {
    let n = n as f64;
    KernelCost::new(n, n * F64, F64, F64)
}

/// Euclidean norm of a vector.
pub fn norm2(x: &[f64]) -> f64 {
    ddot(x, x).sqrt()
}

/// Fills a vector with a constant.
pub fn fill(x: &mut [f64], value: f64) {
    for v in x.iter_mut() {
        *v = value;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn waxpby_matches_reference() {
        let x = vec![1.0, 2.0, 3.0];
        let y = vec![10.0, 20.0, 30.0];
        let mut w = vec![0.0; 3];
        waxpby(2.0, &x, 0.5, &y, &mut w);
        assert_eq!(w, vec![7.0, 14.0, 21.0]);
        // alpha == 1 and beta == 1 fast paths give the same results.
        waxpby(1.0, &x, 0.5, &y, &mut w);
        assert_eq!(w, vec![6.0, 12.0, 18.0]);
        waxpby(2.0, &x, 1.0, &y, &mut w);
        assert_eq!(w, vec![12.0, 24.0, 36.0]);
    }

    #[test]
    fn ddot_and_norm() {
        let x = vec![3.0, 4.0];
        assert_eq!(ddot(&x, &x), 25.0);
        assert_eq!(ddot_self(&x), 25.0);
        assert_eq!(norm2(&x), 5.0);
        assert_eq!(ddot(&x, &[1.0, 1.0]), 7.0);
    }

    #[test]
    fn axpy_scale_fill_and_sum() {
        let mut y = vec![1.0, 1.0, 1.0];
        axpy(3.0, &[1.0, 2.0, 3.0], &mut y);
        assert_eq!(y, vec![4.0, 7.0, 10.0]);
        scale(0.5, &mut y);
        assert_eq!(y, vec![2.0, 3.5, 5.0]);
        assert_eq!(grid_sum(&y), 10.5);
        fill(&mut y, 0.0);
        assert_eq!(grid_sum(&y), 0.0);
    }

    #[test]
    fn cost_ratios_match_the_papers_story() {
        let n = 1 << 20;
        let w = waxpby_cost(n);
        let d = ddot_cost(n);
        // waxpby ships as many bytes as it writes: ~2.7 flops per output
        // byte.  ddot ships 8 bytes total: millions of flops per output byte.
        assert!(w.flops_per_output_byte() < 1.0);
        assert!(d.flops_per_output_byte() > 1e5);
        assert!(grid_sum_cost(n).flops_per_output_byte() > 1e5);
    }

    #[test]
    #[should_panic]
    fn waxpby_rejects_mismatched_lengths() {
        let mut w = vec![0.0; 2];
        waxpby(1.0, &[1.0, 2.0], 1.0, &[1.0], &mut w);
    }

    proptest! {
        #[test]
        fn waxpby_is_linear(alpha in -10.0f64..10.0, beta in -10.0f64..10.0,
                            xs in proptest::collection::vec(-100.0f64..100.0, 1..64)) {
            let ys: Vec<f64> = xs.iter().map(|v| v * 0.5 + 1.0).collect();
            let mut w = vec![0.0; xs.len()];
            waxpby(alpha, &xs, beta, &ys, &mut w);
            for i in 0..xs.len() {
                prop_assert!((w[i] - (alpha * xs[i] + beta * ys[i])).abs() < 1e-9);
            }
        }

        #[test]
        fn ddot_is_symmetric_and_positive(xs in proptest::collection::vec(-100.0f64..100.0, 1..64)) {
            let ys: Vec<f64> = xs.iter().rev().cloned().collect();
            let xy = ddot(&xs, &ys);
            let yx = ddot(&ys, &xs);
            prop_assert!((xy - yx).abs() < 1e-6);
            prop_assert!(ddot_self(&xs) >= 0.0);
        }

        #[test]
        fn ddot_lanes_agrees_with_sequential_ddot(
            xs in proptest::collection::vec(-100.0f64..100.0, 0..200)
        ) {
            let ys: Vec<f64> = xs.iter().map(|v| v * 0.25 - 2.0).collect();
            let seq = ddot(&xs, &ys);
            let lanes = ddot_lanes(&xs, &ys);
            // Different association, same value up to rounding.
            let scale = 1.0 + seq.abs();
            prop_assert!((seq - lanes).abs() / scale < 1e-10);
            // And the laned result is itself deterministic bit for bit.
            prop_assert_eq!(lanes.to_bits(), ddot_lanes(&xs, &ys).to_bits());
        }

        #[test]
        fn grid_sum_matches_iterator_sum(xs in proptest::collection::vec(-1.0f64..1.0, 0..128)) {
            let expected: f64 = xs.iter().sum();
            prop_assert!((grid_sum(&xs) - expected).abs() < 1e-9);
        }
    }
}
