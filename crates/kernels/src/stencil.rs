//! Stencil kernels (MiniGhost-style).
//!
//! MiniGhost applies a 27-point stencil to a 3D grid after exchanging ghost
//! faces with its neighbours, then computes a global grid summation every few
//! time steps.  The paper could not intra-parallelize the stencil itself (its
//! output is a full new grid, like waxpby) and only applied
//! intra-parallelization to the grid summation (about 10 % of the runtime) —
//! this is the negative result of Figure 6d.  Both kernels are implemented
//! here, with cost descriptors.

use crate::cost::{KernelCost, F64};
use crate::grid::Grid3d;
use crate::pool::{KernelPool, Task};
use std::ops::Range;

/// Scalar reference for the 27-point stencil: one indexed load per tap.
/// Kept as the bit-identity oracle for the blocked kernel (the property
/// tests check `stencil27_planes` against this, bit for bit).
pub fn stencil27_planes_scalar(input: &Grid3d, output: &mut Grid3d, zs: Range<usize>) {
    let (nx, ny, nz) = input.dims();
    assert_eq!(input.dims(), output.dims(), "grids must have equal dims");
    assert!(zs.end <= nz, "plane range out of bounds");
    let inv = 1.0 / 27.0;
    for z in zs {
        for y in 0..ny {
            for x in 0..nx {
                let mut sum = 0.0;
                for dz in 0..3 {
                    for dy in 0..3 {
                        for dx in 0..3 {
                            sum += input.get_raw(x + dx, y + dy, z + dz);
                        }
                    }
                }
                output.set(x, y, z, sum * inv);
            }
        }
    }
}

/// Accumulates the 27-point sums of output row `(y, z)` into `out`
/// (`out.len()` = nx), then scales by `inv`.
///
/// The nine input rows are visited in `(dz, dy)` order and each row's three
/// taps are added in `dx` order, so every cell's floating-point addition
/// chain is exactly the scalar reference's `(dz, dy, dx)` chain — the
/// results are bit-identical.  The difference is purely mechanical: each
/// pass is an element-wise add of three shifted row slices, which compiles
/// to bounds-check-free SIMD instead of 27 indexed loads per cell.
#[inline]
fn stencil27_row_into(input: &Grid3d, y: usize, z: usize, inv: f64, out: &mut [f64]) {
    let nx = out.len();
    for o in out.iter_mut() {
        *o = 0.0;
    }
    for dz in 0..3 {
        for dy in 0..3 {
            let row = input.raw_row(y + dy, z + dz);
            let (r0, r1, r2) = (&row[..nx], &row[1..nx + 1], &row[2..nx + 2]);
            for (((o, a), b), c) in out.iter_mut().zip(r0).zip(r1).zip(r2) {
                *o = ((*o + a) + b) + c;
            }
        }
    }
    for o in out.iter_mut() {
        *o *= inv;
    }
}

/// Applies the 27-point average stencil to the interior z-planes in `zs` of
/// `input`, writing into the same planes of `output`.  Ghost cells of
/// `input` must already be filled.  Restricting the plane range is what lets
/// the stencil be split into intra-parallel tasks (and what the pool-driven
/// [`stencil27_pool`] tiles over).
///
/// Blocked implementation: sweeps row by row with slice-based inner loops
/// (see [`Grid3d::raw_row`]); bit-identical to
/// [`stencil27_planes_scalar`].
///
/// # Panics
/// Panics if the grids have different dimensions or the range is out of
/// bounds.
pub fn stencil27_planes(input: &Grid3d, output: &mut Grid3d, zs: Range<usize>) {
    let (_, ny, nz) = input.dims();
    assert_eq!(input.dims(), output.dims(), "grids must have equal dims");
    assert!(zs.end <= nz, "plane range out of bounds");
    let inv = 1.0 / 27.0;
    for z in zs {
        for y in 0..ny {
            stencil27_row_into(input, y, z, inv, output.interior_row_mut(y, z));
        }
    }
}

/// One interior z-plane of the 27-point stencil, written into the plane's
/// raw slab (as handed out by [`Grid3d::interior_plane_slabs_mut`]).  The
/// unit of work of [`stencil27_pool`].
fn stencil27_plane_into(input: &Grid3d, z: usize, slab: &mut [f64]) {
    let (nx, ny, _) = input.dims();
    let stride = input.raw_row_len();
    let inv = 1.0 / 27.0;
    for y in 0..ny {
        let start = (y + 1) * stride + 1;
        stencil27_row_into(input, y, z, inv, &mut slab[start..start + nx]);
    }
}

/// Full 27-point sweep executed on a [`KernelPool`]: the interior planes
/// are tiled across the pool's workers (one task per plane, stolen freely),
/// each writing its own disjoint output slab.  Bit-identical to the
/// sequential sweep for any worker count — every cell's arithmetic is
/// unchanged; only *which thread* computes a plane varies.
pub fn stencil27_pool(input: &Grid3d, output: &mut Grid3d, pool: &KernelPool) {
    assert_eq!(input.dims(), output.dims(), "grids must have equal dims");
    let slabs = output.interior_plane_slabs_mut();
    pool.run(
        slabs
            .into_iter()
            .enumerate()
            .map(|(z, slab)| {
                let task: Task<'_> = Box::new(move || stencil27_plane_into(input, z, slab));
                task
            })
            .collect(),
    );
}

/// Applies the 27-point stencil to the whole interior.
pub fn stencil27(input: &Grid3d, output: &mut Grid3d) {
    let (_, _, nz) = input.dims();
    stencil27_planes(input, output, 0..nz);
}

/// Scalar reference for the 7-point stencil (bit-identity oracle for the
/// blocked kernel, like [`stencil27_planes_scalar`]).
pub fn stencil7_planes_scalar(input: &Grid3d, output: &mut Grid3d, zs: Range<usize>) {
    let (nx, ny, nz) = input.dims();
    assert_eq!(input.dims(), output.dims(), "grids must have equal dims");
    assert!(zs.end <= nz, "plane range out of bounds");
    let inv = 1.0 / 7.0;
    for z in zs {
        for y in 0..ny {
            for x in 0..nx {
                let (cx, cy, cz) = (x + 1, y + 1, z + 1);
                let sum = input.get_raw(cx, cy, cz)
                    + input.get_raw(cx - 1, cy, cz)
                    + input.get_raw(cx + 1, cy, cz)
                    + input.get_raw(cx, cy - 1, cz)
                    + input.get_raw(cx, cy + 1, cz)
                    + input.get_raw(cx, cy, cz - 1)
                    + input.get_raw(cx, cy, cz + 1);
                output.set(x, y, z, sum * inv);
            }
        }
    }
}

/// Applies the 7-point average stencil to the interior z-planes in `zs`.
///
/// Blocked implementation: walks the five contributing input rows of each
/// output row as slices, adding the taps in the scalar reference's order
/// (center, x−1, x+1, y−1, y+1, z−1, z+1) — bit-identical to
/// [`stencil7_planes_scalar`], but free of per-tap index arithmetic.
///
/// # Panics
/// Panics if the grids have different dimensions or the range is out of
/// bounds.
pub fn stencil7_planes(input: &Grid3d, output: &mut Grid3d, zs: Range<usize>) {
    let (nx, ny, nz) = input.dims();
    assert_eq!(input.dims(), output.dims(), "grids must have equal dims");
    assert!(zs.end <= nz, "plane range out of bounds");
    let inv = 1.0 / 7.0;
    for z in zs {
        for y in 0..ny {
            let c = input.raw_row(y + 1, z + 1);
            let s = input.raw_row(y, z + 1);
            let n = input.raw_row(y + 2, z + 1);
            let d = input.raw_row(y + 1, z);
            let u = input.raw_row(y + 1, z + 2);
            let out = output.interior_row_mut(y, z);
            let taps = out
                .iter_mut()
                .zip(&c[1..nx + 1])
                .zip(&c[..nx])
                .zip(&c[2..nx + 2])
                .zip(&s[1..nx + 1])
                .zip(&n[1..nx + 1])
                .zip(&d[1..nx + 1])
                .zip(&u[1..nx + 1]);
            for (((((((o, c0), cw), ce), sv), nv), dv), uv) in taps {
                *o = ((((((c0 + cw) + ce) + sv) + nv) + dv) + uv) * inv;
            }
        }
    }
}

/// Applies the 7-point stencil to the whole interior.
pub fn stencil7(input: &Grid3d, output: &mut Grid3d) {
    let (_, _, nz) = input.dims();
    stencil7_planes(input, output, 0..nz);
}

/// Sums the interior cells of the z-planes in `zs` (the MiniGhost grid
/// summation, split by planes for intra-parallel tasks).
pub fn grid_sum_planes(grid: &Grid3d, zs: Range<usize>) -> f64 {
    let (nx, ny, nz) = grid.dims();
    assert!(zs.end <= nz, "plane range out of bounds");
    let mut sum = 0.0;
    for z in zs {
        for y in 0..ny {
            for x in 0..nx {
                sum += grid.get(x, y, z);
            }
        }
    }
    sum
}

/// Cost of applying a `points`-point stencil to `n` grid cells: `points`
/// adds + 1 multiply per cell; reads `points` values (cache estimate: each
/// input cell read once per sweep plus the stencil reuse overhead folded
/// into a 2x factor), writes and ships one value per cell.
pub fn stencil_cost(n: usize, points: usize) -> KernelCost {
    let n = n as f64;
    let p = points as f64;
    KernelCost::new(p * n, 2.0 * n * F64, n * F64, n * F64)
}

/// Cost of summing `n` grid cells (ships a single scalar).
pub fn grid_sum_cost(n: usize) -> KernelCost {
    crate::vecops::grid_sum_cost(n)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constant_field_is_a_fixed_point_of_both_stencils() {
        let mut input = Grid3d::filled(4, 4, 4, 2.5);
        // Fill ghosts with the same constant so averages stay constant.
        for z in 0..6 {
            for y in 0..6 {
                for x in 0..6 {
                    input.set_raw(x, y, z, 2.5);
                }
            }
        }
        let mut out27 = Grid3d::filled(4, 4, 4, 0.0);
        let mut out7 = Grid3d::filled(4, 4, 4, 0.0);
        stencil27(&input, &mut out27);
        stencil7(&input, &mut out7);
        for z in 0..4 {
            for y in 0..4 {
                for x in 0..4 {
                    assert!((out27.get(x, y, z) - 2.5).abs() < 1e-12);
                    assert!((out7.get(x, y, z) - 2.5).abs() < 1e-12);
                }
            }
        }
    }

    #[test]
    fn plane_split_matches_full_sweep() {
        let input = Grid3d::from_fn(3, 3, 6, |x, y, z| ((x * 7 + y * 3 + z * 11) % 5) as f64);
        let mut full = Grid3d::filled(3, 3, 6, 0.0);
        stencil27(&input, &mut full);
        let mut split = Grid3d::filled(3, 3, 6, 0.0);
        stencil27_planes(&input, &mut split, 0..2);
        stencil27_planes(&input, &mut split, 2..5);
        stencil27_planes(&input, &mut split, 5..6);
        assert_eq!(full, split);
    }

    #[test]
    fn stencil7_uses_only_face_neighbours() {
        // A single spike at the center: the 7-point stencil spreads it only
        // to the 6 face neighbours.
        let mut input = Grid3d::filled(3, 3, 3, 0.0);
        input.set(1, 1, 1, 7.0);
        let mut out = Grid3d::filled(3, 3, 3, 0.0);
        stencil7(&input, &mut out);
        assert!((out.get(1, 1, 1) - 1.0).abs() < 1e-12);
        assert!((out.get(0, 1, 1) - 1.0).abs() < 1e-12);
        assert!(
            (out.get(0, 0, 1) - 0.0).abs() < 1e-12,
            "corner must be untouched"
        );
    }

    #[test]
    fn grid_sum_planes_partition_adds_up() {
        let g = Grid3d::from_fn(4, 3, 5, |x, y, z| (x + y + z) as f64);
        let total = grid_sum_planes(&g, 0..5);
        let split = grid_sum_planes(&g, 0..2) + grid_sum_planes(&g, 2..5);
        assert!((total - split).abs() < 1e-12);
        let expected: f64 = g.interior_to_vec().iter().sum();
        assert!((total - expected).abs() < 1e-12);
    }

    #[test]
    fn stencil_cost_is_update_heavy_and_sum_cost_is_not() {
        let s = stencil_cost(1_000_000, 27);
        let g = grid_sum_cost(1_000_000);
        assert!(s.flops_per_output_byte() < 4.0);
        assert!(g.flops_per_output_byte() > 1e4);
    }
}
