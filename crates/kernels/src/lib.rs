//! # kernels — HPC computational kernels and analytic cost descriptors
//!
//! The paper evaluates intra-parallelization on the computational kernels of
//! HPCCG (`waxpby`, `ddot`, `sparsemv`), on stencil codes (MiniGhost,
//! AMG2013's Laplacian problems) and on a particle-in-cell code (GTC, with
//! its `charge` and `push` kernels).  This crate implements those kernels as
//! plain sequential Rust functions — they are the units of work the
//! intra-parallelization runtime schedules onto replicas — together with
//! analytic *cost descriptors* ([`cost::KernelCost`]) that tell the
//! simulator's roofline model how many flops and bytes of memory traffic a
//! kernel performs at a given (possibly paper-scale) problem size.
//!
//! Nothing in this crate knows about MPI, replication or tasks; it is pure
//! computation, which is exactly what the paper requires of code placed
//! inside an intra-parallel section ("It cannot include message-passing
//! communication").

#![deny(missing_docs)]
#![deny(unsafe_code)]

pub mod cost;
pub mod dense;
pub mod grid;
pub mod pic;
pub mod pool;
pub mod sparse;
pub mod stencil;
pub mod vecops;

pub use cost::KernelCost;
pub use grid::Grid3d;
pub use pic::ParticleSet;
pub use pool::KernelPool;
pub use sparse::CsrMatrix;
