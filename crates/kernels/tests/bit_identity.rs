//! Bit-identity properties of the blocked / pooled kernels.
//!
//! The blocked rewrites (slice-based stencils, laned reductions, pooled
//! sweeps) are throughput work on the *host* side; the contract that keeps
//! the repository's goldens valid is that they change no result by even one
//! ULP.  Every property here compares `f64::to_bits`, not approximate
//! equality: the blocked kernels must reproduce their scalar references'
//! floating-point addition chains exactly, and the pool must be invisible —
//! the same bits for any worker count and any plane-split point.

use kernels::stencil::{
    stencil27, stencil27_planes, stencil27_planes_scalar, stencil27_pool, stencil7_planes,
    stencil7_planes_scalar,
};
use kernels::vecops::{ddot_lanes, waxpby};
use kernels::{CsrMatrix, Grid3d, KernelPool};
use proptest::prelude::*;

fn arb_grid(nx: usize, ny: usize, nz: usize, seed: u64) -> Grid3d {
    // A cheap deterministic fill with enough structure that reassociated
    // sums would actually differ in the low bits.
    Grid3d::from_fn(nx, ny, nz, move |x, y, z| {
        let h = (x as u64)
            .wrapping_mul(0x9e37_79b9_7f4a_7c15)
            .wrapping_add((y as u64).wrapping_mul(0xbf58_476d_1ce4_e5b9))
            .wrapping_add((z as u64).wrapping_mul(0x94d0_49bb_1331_11eb))
            .wrapping_add(seed);
        ((h % 4093) as f64) * 0.037 - 75.0
    })
}

fn grids_bit_equal(a: &Grid3d, b: &Grid3d) -> bool {
    let (nx, ny, nz) = a.dims();
    for z in 0..nz {
        for y in 0..ny {
            for x in 0..nx {
                if a.get(x, y, z).to_bits() != b.get(x, y, z).to_bits() {
                    return false;
                }
            }
        }
    }
    true
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    #[test]
    fn blocked_stencil27_matches_scalar_reference(
        nx in 1usize..9, ny in 1usize..8, nz in 1usize..7, seed in 0u64..1000,
    ) {
        let input = arb_grid(nx, ny, nz, seed);
        let mut blocked = Grid3d::filled(nx, ny, nz, 0.0);
        let mut scalar = Grid3d::filled(nx, ny, nz, 0.0);
        stencil27(&input, &mut blocked);
        stencil27_planes_scalar(&input, &mut scalar, 0..nz);
        prop_assert!(grids_bit_equal(&blocked, &scalar));
    }

    #[test]
    fn blocked_stencil7_matches_scalar_reference(
        nx in 1usize..9, ny in 1usize..8, nz in 1usize..7, seed in 0u64..1000,
    ) {
        let input = arb_grid(nx, ny, nz, seed);
        let mut blocked = Grid3d::filled(nx, ny, nz, 0.0);
        let mut scalar = Grid3d::filled(nx, ny, nz, 0.0);
        stencil7_planes(&input, &mut blocked, 0..nz);
        stencil7_planes_scalar(&input, &mut scalar, 0..nz);
        prop_assert!(grids_bit_equal(&blocked, &scalar));
    }

    #[test]
    fn plane_split_point_is_invisible(
        nx in 1usize..8, ny in 1usize..8, nz in 2usize..7,
        split_pick in 1usize..6, seed in 0u64..1000,
    ) {
        // Splitting the sweep into two plane ranges — the intra-parallel
        // tiling — must reproduce the one-shot sweep bit for bit.
        let split = split_pick.min(nz - 1);
        let input = arb_grid(nx, ny, nz, seed);
        let mut whole = Grid3d::filled(nx, ny, nz, 0.0);
        let mut parts = Grid3d::filled(nx, ny, nz, 0.0);
        stencil27(&input, &mut whole);
        stencil27_planes(&input, &mut parts, 0..split);
        stencil27_planes(&input, &mut parts, split..nz);
        prop_assert!(grids_bit_equal(&whole, &parts));
    }

    #[test]
    fn pooled_stencil27_matches_sequential_for_any_worker_count(
        nx in 1usize..8, ny in 1usize..8, nz in 1usize..7, seed in 0u64..1000,
    ) {
        let input = arb_grid(nx, ny, nz, seed);
        let mut sequential = Grid3d::filled(nx, ny, nz, 0.0);
        stencil27(&input, &mut sequential);
        for workers in [1, 2, 4] {
            let pool = KernelPool::new(workers);
            let mut pooled = Grid3d::filled(nx, ny, nz, 0.0);
            stencil27_pool(&input, &mut pooled, &pool);
            prop_assert!(
                grids_bit_equal(&sequential, &pooled),
                "pooled sweep diverged at workers={workers}",
            );
        }
    }

    #[test]
    fn sliced_spmv_matches_indexed_reference(
        nx in 1usize..6, ny in 1usize..6, nz in 1usize..6, seed in 0u64..1000,
    ) {
        let a = CsrMatrix::stencil27(nx, ny, nz, true, true);
        let x: Vec<f64> = (0..a.ncols())
            .map(|i| (((i as u64).wrapping_mul(2654435761).wrapping_add(seed) % 1021) as f64)
                * 0.013 - 6.5)
            .collect();
        let mut y = vec![0.0; a.nrows()];
        a.spmv(&x, &mut y);
        // One-row-at-a-time sweeps must agree with the full sweep exactly
        // (each row's k-order is fixed, so any row partition is invisible).
        let mut per_row = vec![0.0; a.nrows()];
        for i in 0..a.nrows() {
            a.spmv_rows(i..i + 1, &x, &mut per_row);
        }
        for (full, single) in y.iter().zip(&per_row) {
            prop_assert_eq!(full.to_bits(), single.to_bits());
        }
        // And the zero-based chunk form used by pool tasks.
        let mid = a.nrows() / 2;
        let mut chunk = vec![0.0; a.nrows() - mid];
        a.spmv_rows_into(mid..a.nrows(), &x, &mut chunk);
        for (full, got) in y[mid..].iter().zip(&chunk) {
            prop_assert_eq!(full.to_bits(), got.to_bits());
        }
        // Pooled spmv is bit-identical for any worker count.
        for workers in [1, 2, 4] {
            let pool = KernelPool::new(workers);
            let mut pooled = vec![0.0; a.nrows()];
            a.spmv_pool(&x, &mut pooled, &pool);
            for (full, got) in y.iter().zip(&pooled) {
                prop_assert_eq!(full.to_bits(), got.to_bits());
            }
        }
    }

    #[test]
    fn zipped_waxpby_matches_indexed_arithmetic(
        alpha_pick in 0usize..3, n in 0usize..80, seed in 0u64..1000,
    ) {
        // Covers all three special-case branches (alpha == 1, beta == 1,
        // general) against per-element recomputation.
        let (alpha, beta) = [(1.0, 0.75), (2.5, 1.0), (1.25, -0.5)][alpha_pick];
        let x: Vec<f64> = (0..n)
            .map(|i| (((i as u64).wrapping_add(seed) % 509) as f64) * 0.21 - 53.0)
            .collect();
        let y: Vec<f64> = x.iter().map(|v| v * 0.3 + 1.0).collect();
        let mut w = vec![0.0; n];
        waxpby(alpha, &x, beta, &y, &mut w);
        for i in 0..n {
            let expect = if alpha == 1.0 {
                x[i] + beta * y[i]
            } else if beta == 1.0 {
                alpha * x[i] + y[i]
            } else {
                alpha * x[i] + beta * y[i]
            };
            prop_assert_eq!(w[i].to_bits(), expect.to_bits());
        }
    }

    #[test]
    fn ddot_lanes_is_deterministic_across_layouts(
        n in 0usize..100, seed in 0u64..1000,
    ) {
        let x: Vec<f64> = (0..n)
            .map(|i| (((i as u64).wrapping_mul(31).wrapping_add(seed) % 701) as f64)
                * 0.017 - 6.0)
            .collect();
        let y: Vec<f64> = x.iter().rev().cloned().collect();
        let first = ddot_lanes(&x, &y);
        // Re-running, and running on freshly cloned storage, gives the same
        // bits: the lane layout is a function of index only.
        prop_assert_eq!(first.to_bits(), ddot_lanes(&x.clone(), &y.clone()).to_bits());
    }
}
