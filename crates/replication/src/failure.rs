//! Failure injection hooks and Poisson failure-trace generation.
//!
//! The paper's Section III-B2 distinguishes three crash scenarios relative to
//! a task update: before any update bytes were sent, after the full update
//! reached only a subset of the replicas, and in the middle of an update
//! (partial update).  To test all of them deterministically, the runtime
//! layers call [`FailureInjector::should_fail`] at well-defined protocol
//! points ([`ProtocolPoint`]); a test arms the injector with (physical rank,
//! point) pairs and the matching process crashes itself (crash-stop) exactly
//! there.
//!
//! On top of the point-armed one-shots, the injector supports *timed*
//! failures: a crash scheduled at a virtual time instead of a protocol
//! point.  A timed failure fires at the first protocol point the process
//! reaches at or after the scheduled time, which is exactly how a crash of
//! the underlying node would be observed by the protocol.  Timed failures
//! are what failure *traces* arm: [`sample_failure_trace`] draws crash times
//! from a homogeneous or inhomogeneous Poisson process (via thinning, in the
//! spirit of IPPP-style simulation packages) using the deterministic
//! per-rank streams of [`simcluster::rng`], so a campaign can sweep failure
//! rates instead of hand-placing crashes while every run stays exactly
//! reproducible from its seed.

use parking_lot::Mutex;
use simcluster::SimTime;
use std::sync::Arc;

// The rate functions and trace samplers historically lived in this module;
// they moved to the dedicated `rate` module when the failure-model library
// grew, and stay re-exported here for the established paths.
pub use crate::rate::{
    majorant_candidates, majorant_candidates_fn, sample_failure_trace, sample_trace_fn,
    FailureRate, HorizonRate, RateFn,
};

/// A point in the intra-parallelization / replication protocol at which a
/// failure can be injected.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ProtocolPoint {
    /// Right after entering the section with the given index (0-based count
    /// of sections executed by the process).
    SectionEnter {
        /// Section index.
        section: usize,
    },
    /// Right after finishing the local execution of a task, before sending
    /// any update for it.
    BeforeUpdateSend {
        /// Section index.
        section: usize,
        /// Task index within the section.
        task: usize,
    },
    /// In the middle of sending the update of a task: after `vars_sent`
    /// output variables have been shipped, before the remaining ones.
    MidUpdateSend {
        /// Section index.
        section: usize,
        /// Task index within the section.
        task: usize,
        /// Number of output variables already sent when the crash happens.
        vars_sent: usize,
    },
    /// Right after the full update of a task has been sent.
    AfterUpdateSend {
        /// Section index.
        section: usize,
        /// Task index within the section.
        task: usize,
    },
    /// Right after leaving the section with the given index (i.e. outside any
    /// section — the "no specific action required" case of the paper).
    SectionExit {
        /// Section index.
        section: usize,
    },
    /// At the beginning of application iteration `iteration` (used by the
    /// mini-apps to crash a replica between solver iterations).
    IterationStart {
        /// Iteration index.
        iteration: usize,
    },
}

/// One timed failure that fired: the rank, the virtual time it was scheduled
/// for, and the protocol point / virtual time at which the process actually
/// observed it.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TimedFiring {
    /// Physical rank that crashed.
    pub rank: usize,
    /// Crash time sampled from the failure trace.
    pub scheduled: SimTime,
    /// Virtual time at which the crash was observed (first protocol point at
    /// or after `scheduled`).
    pub fired_at: SimTime,
    /// Protocol point at which the crash was observed.
    pub point: ProtocolPoint,
}

#[derive(Debug, Default)]
struct Plan {
    /// Armed one-shot injections: (physical rank, point).
    armed: Vec<(usize, ProtocolPoint)>,
    /// Armed timed injections: (physical rank, virtual crash time).
    timed: Vec<(usize, SimTime)>,
    /// History of fired injections.
    fired: Vec<(usize, ProtocolPoint)>,
    /// History of fired timed injections.
    fired_timed: Vec<TimedFiring>,
}

/// A shared, thread-safe failure-injection plan.
///
/// Cloning is cheap; all clones share the same plan.  An injector with no
/// armed entries never fires, so production code paths can always consult it.
#[derive(Debug, Clone, Default)]
pub struct FailureInjector {
    plan: Arc<Mutex<Plan>>,
}

impl FailureInjector {
    /// Creates an injector with no armed failures.
    pub fn none() -> Self {
        Self::default()
    }

    /// Arms a one-shot failure of `physical_rank` at `point`.
    pub fn arm(&self, physical_rank: usize, point: ProtocolPoint) -> &Self {
        self.plan.lock().armed.push((physical_rank, point));
        self
    }

    /// Returns true exactly once if a failure is armed for this rank and
    /// point; the armed entry is consumed.
    pub fn should_fail(&self, physical_rank: usize, point: ProtocolPoint) -> bool {
        let mut plan = self.plan.lock();
        if let Some(pos) = plan
            .armed
            .iter()
            .position(|&(r, p)| r == physical_rank && p == point)
        {
            plan.armed.remove(pos);
            plan.fired.push((physical_rank, point));
            true
        } else {
            false
        }
    }

    /// Arms a timed failure: `physical_rank` crashes at the first protocol
    /// point it reaches at or after virtual time `at`.
    pub fn arm_at(&self, physical_rank: usize, at: SimTime) -> &Self {
        self.plan.lock().timed.push((physical_rank, at));
        self
    }

    /// Arms one timed failure per entry of `trace` for `physical_rank`
    /// (typically the output of [`sample_failure_trace`]).  Since failures
    /// are crash-stop, only the earliest reachable entry can ever fire.
    pub fn arm_trace(&self, physical_rank: usize, trace: &[SimTime]) -> &Self {
        let mut plan = self.plan.lock();
        for &at in trace {
            plan.timed.push((physical_rank, at));
        }
        self
    }

    /// Returns true exactly once if a timed failure for this rank is due at
    /// virtual time `now` (consuming every timed entry of the rank: the
    /// process is crash-stop, so later entries can never fire).  `point` is
    /// recorded as the protocol point at which the crash was observed.
    pub fn should_fail_at(&self, physical_rank: usize, point: ProtocolPoint, now: SimTime) -> bool {
        Self::check_timed(&mut self.plan.lock(), physical_rank, point, now)
    }

    fn check_timed(
        plan: &mut Plan,
        physical_rank: usize,
        point: ProtocolPoint,
        now: SimTime,
    ) -> bool {
        let due = plan
            .timed
            .iter()
            .filter(|&&(r, at)| r == physical_rank && at <= now)
            .map(|&(_, at)| at)
            .min();
        if let Some(scheduled) = due {
            plan.timed.retain(|&(r, _)| r != physical_rank);
            plan.fired_timed.push(TimedFiring {
                rank: physical_rank,
                scheduled,
                fired_at: now,
                point,
            });
            true
        } else {
            false
        }
    }

    /// Combined protocol-point consultation (what [`crate::ReplicatedEnv`]'s
    /// `maybe_fail` calls): fires a point-armed one-shot or a due timed
    /// failure, whichever matches, under a single lock acquisition.
    pub fn consult(&self, physical_rank: usize, point: ProtocolPoint, now: SimTime) -> bool {
        let mut plan = self.plan.lock();
        if let Some(pos) = plan
            .armed
            .iter()
            .position(|&(r, p)| r == physical_rank && p == point)
        {
            plan.armed.remove(pos);
            plan.fired.push((physical_rank, point));
            return true;
        }
        Self::check_timed(&mut plan, physical_rank, point, now)
    }

    /// Number of armed injections (point-armed and timed) that have not
    /// fired yet.
    pub fn pending(&self) -> usize {
        let plan = self.plan.lock();
        plan.armed.len() + plan.timed.len()
    }

    /// Injections that fired, in firing order.
    pub fn fired(&self) -> Vec<(usize, ProtocolPoint)> {
        self.plan.lock().fired.clone()
    }

    /// Timed injections that fired, in firing order.
    pub fn fired_timed(&self) -> Vec<TimedFiring> {
        self.plan.lock().fired_timed.clone()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unarmed_injector_never_fires() {
        let inj = FailureInjector::none();
        assert!(!inj.should_fail(0, ProtocolPoint::SectionEnter { section: 0 }));
        assert_eq!(inj.pending(), 0);
        assert!(inj.fired().is_empty());
    }

    #[test]
    fn armed_injection_fires_exactly_once() {
        let inj = FailureInjector::none();
        let point = ProtocolPoint::BeforeUpdateSend {
            section: 1,
            task: 2,
        };
        inj.arm(3, point);
        assert_eq!(inj.pending(), 1);
        assert!(!inj.should_fail(2, point), "wrong rank must not fire");
        assert!(!inj.should_fail(3, ProtocolPoint::SectionEnter { section: 1 }));
        assert!(inj.should_fail(3, point));
        assert!(
            !inj.should_fail(3, point),
            "one-shot: second query is false"
        );
        assert_eq!(inj.fired(), vec![(3, point)]);
    }

    #[test]
    fn multiple_injections_are_independent() {
        let inj = FailureInjector::none();
        inj.arm(0, ProtocolPoint::SectionEnter { section: 0 });
        inj.arm(
            1,
            ProtocolPoint::MidUpdateSend {
                section: 0,
                task: 1,
                vars_sent: 1,
            },
        );
        assert!(inj.should_fail(0, ProtocolPoint::SectionEnter { section: 0 }));
        assert_eq!(inj.pending(), 1);
        assert!(inj.should_fail(
            1,
            ProtocolPoint::MidUpdateSend {
                section: 0,
                task: 1,
                vars_sent: 1,
            }
        ));
        assert_eq!(inj.pending(), 0);
    }

    #[test]
    fn clones_share_the_plan() {
        let a = FailureInjector::none();
        let b = a.clone();
        a.arm(5, ProtocolPoint::SectionExit { section: 2 });
        assert!(b.should_fail(5, ProtocolPoint::SectionExit { section: 2 }));
        assert!(!a.should_fail(5, ProtocolPoint::SectionExit { section: 2 }));
    }
}
