//! Failure injection hooks.
//!
//! The paper's Section III-B2 distinguishes three crash scenarios relative to
//! a task update: before any update bytes were sent, after the full update
//! reached only a subset of the replicas, and in the middle of an update
//! (partial update).  To test all of them deterministically, the runtime
//! layers call [`FailureInjector::should_fail`] at well-defined protocol
//! points ([`ProtocolPoint`]); a test arms the injector with (physical rank,
//! point) pairs and the matching process crashes itself (crash-stop) exactly
//! there.

use parking_lot::Mutex;
use std::sync::Arc;

/// A point in the intra-parallelization / replication protocol at which a
/// failure can be injected.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ProtocolPoint {
    /// Right after entering the section with the given index (0-based count
    /// of sections executed by the process).
    SectionEnter {
        /// Section index.
        section: usize,
    },
    /// Right after finishing the local execution of a task, before sending
    /// any update for it.
    BeforeUpdateSend {
        /// Section index.
        section: usize,
        /// Task index within the section.
        task: usize,
    },
    /// In the middle of sending the update of a task: after `vars_sent`
    /// output variables have been shipped, before the remaining ones.
    MidUpdateSend {
        /// Section index.
        section: usize,
        /// Task index within the section.
        task: usize,
        /// Number of output variables already sent when the crash happens.
        vars_sent: usize,
    },
    /// Right after the full update of a task has been sent.
    AfterUpdateSend {
        /// Section index.
        section: usize,
        /// Task index within the section.
        task: usize,
    },
    /// Right after leaving the section with the given index (i.e. outside any
    /// section — the "no specific action required" case of the paper).
    SectionExit {
        /// Section index.
        section: usize,
    },
    /// At the beginning of application iteration `iteration` (used by the
    /// mini-apps to crash a replica between solver iterations).
    IterationStart {
        /// Iteration index.
        iteration: usize,
    },
}

#[derive(Debug, Default)]
struct Plan {
    /// Armed one-shot injections: (physical rank, point).
    armed: Vec<(usize, ProtocolPoint)>,
    /// History of fired injections.
    fired: Vec<(usize, ProtocolPoint)>,
}

/// A shared, thread-safe failure-injection plan.
///
/// Cloning is cheap; all clones share the same plan.  An injector with no
/// armed entries never fires, so production code paths can always consult it.
#[derive(Debug, Clone, Default)]
pub struct FailureInjector {
    plan: Arc<Mutex<Plan>>,
}

impl FailureInjector {
    /// Creates an injector with no armed failures.
    pub fn none() -> Self {
        Self::default()
    }

    /// Arms a one-shot failure of `physical_rank` at `point`.
    pub fn arm(&self, physical_rank: usize, point: ProtocolPoint) -> &Self {
        self.plan.lock().armed.push((physical_rank, point));
        self
    }

    /// Returns true exactly once if a failure is armed for this rank and
    /// point; the armed entry is consumed.
    pub fn should_fail(&self, physical_rank: usize, point: ProtocolPoint) -> bool {
        let mut plan = self.plan.lock();
        if let Some(pos) = plan
            .armed
            .iter()
            .position(|&(r, p)| r == physical_rank && p == point)
        {
            plan.armed.remove(pos);
            plan.fired.push((physical_rank, point));
            true
        } else {
            false
        }
    }

    /// Number of armed injections that have not fired yet.
    pub fn pending(&self) -> usize {
        self.plan.lock().armed.len()
    }

    /// Injections that fired, in firing order.
    pub fn fired(&self) -> Vec<(usize, ProtocolPoint)> {
        self.plan.lock().fired.clone()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unarmed_injector_never_fires() {
        let inj = FailureInjector::none();
        assert!(!inj.should_fail(0, ProtocolPoint::SectionEnter { section: 0 }));
        assert_eq!(inj.pending(), 0);
        assert!(inj.fired().is_empty());
    }

    #[test]
    fn armed_injection_fires_exactly_once() {
        let inj = FailureInjector::none();
        let point = ProtocolPoint::BeforeUpdateSend {
            section: 1,
            task: 2,
        };
        inj.arm(3, point);
        assert_eq!(inj.pending(), 1);
        assert!(!inj.should_fail(2, point), "wrong rank must not fire");
        assert!(!inj.should_fail(3, ProtocolPoint::SectionEnter { section: 1 }));
        assert!(inj.should_fail(3, point));
        assert!(
            !inj.should_fail(3, point),
            "one-shot: second query is false"
        );
        assert_eq!(inj.fired(), vec![(3, point)]);
    }

    #[test]
    fn multiple_injections_are_independent() {
        let inj = FailureInjector::none();
        inj.arm(0, ProtocolPoint::SectionEnter { section: 0 });
        inj.arm(
            1,
            ProtocolPoint::MidUpdateSend {
                section: 0,
                task: 1,
                vars_sent: 1,
            },
        );
        assert!(inj.should_fail(0, ProtocolPoint::SectionEnter { section: 0 }));
        assert_eq!(inj.pending(), 1);
        assert!(inj.should_fail(
            1,
            ProtocolPoint::MidUpdateSend {
                section: 0,
                task: 1,
                vars_sent: 1,
            }
        ));
        assert_eq!(inj.pending(), 0);
    }

    #[test]
    fn clones_share_the_plan() {
        let a = FailureInjector::none();
        let b = a.clone();
        a.arm(5, ProtocolPoint::SectionExit { section: 2 });
        assert!(b.should_fail(5, ProtocolPoint::SectionExit { section: 2 }));
        assert!(!a.should_fail(5, ProtocolPoint::SectionExit { section: 2 }));
    }
}
