//! Correlated failure domains: one event kills a co-located rank group.
//!
//! Independent per-rank Poisson traces miss the failure mode that makes
//! replica placement interesting: on real machines a power supply, a DIMM
//! riser or a rack switch takes out *every* process on the affected node or
//! rack at once.  A [`CorrelatedPlan`] models exactly that — crash events
//! are drawn per failure *domain group* (a node, or a rack of several
//! nodes) from any [`FailureRate`], and each event kills the whole
//! co-located rank group of [`simcluster::Topology`] at the event time.
//!
//! Because an event is correlated across a group, placement now matters:
//! with [`simcluster::Topology::replica_disjoint`] placement the replicas
//! of a logical process never share a node, so any single node (or rack,
//! when racks do not span both replica halves) loss leaves one replica of
//! every logical rank alive; with [`simcluster::Topology::single_node`]
//! placement one event is fatal to the whole job.
//!
//! Determinism rule 5 holds: group traces are pure functions of
//! `(seed, group id)` on a dedicated RNG stream ([`sample_group_trace`]),
//! disjoint from the per-rank stream of
//! [`crate::rate::sample_failure_trace`], so correlated and independent
//! plans can coexist under one seed without interacting.

use crate::rate::{thinned_candidates, FailureRate, RateFn};
use simcluster::{SimTime, Topology};

/// RNG stream id reserved for correlated (group-level) failure traces,
/// disjoint from the per-rank `FAILURE_TRACE_STREAM`.
const CORRELATED_TRACE_STREAM: usize = 0xC0FA;

/// The granularity of a correlated failure event: what one event kills.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum FailureDomain {
    /// One event kills every rank on one node.
    Node,
    /// One event kills every rank on one rack of `nodes_per_rack`
    /// consecutive nodes (rack r hosts nodes `r*n .. (r+1)*n`).
    Rack {
        /// Nodes per rack (≥ 1).
        nodes_per_rack: usize,
    },
}

impl FailureDomain {
    /// Compact label used in plan labels: `node` or `rack<N>`.
    pub fn label(&self) -> String {
        match *self {
            FailureDomain::Node => "node".to_string(),
            FailureDomain::Rack { nodes_per_rack } => format!("rack{nodes_per_rack}"),
        }
    }

    /// Parses the output of [`FailureDomain::label`] (whitespace/case
    /// lenient, like the rate labels).
    pub fn parse(s: &str) -> Option<Self> {
        let s = s.trim().to_ascii_lowercase();
        if s == "node" {
            return Some(FailureDomain::Node);
        }
        let n = s.strip_prefix("rack")?.parse().ok()?;
        (n >= 1).then_some(FailureDomain::Rack { nodes_per_rack: n })
    }

    /// Number of failure groups this domain partitions `topology` into.
    pub fn num_groups(&self, topology: &Topology) -> usize {
        match *self {
            FailureDomain::Node => topology.num_nodes(),
            FailureDomain::Rack { nodes_per_rack } => topology.num_racks(nodes_per_rack.max(1)),
        }
    }

    /// The group a node belongs to.
    pub fn group_of_node(&self, node: usize) -> usize {
        match *self {
            FailureDomain::Node => node,
            FailureDomain::Rack { nodes_per_rack } => node / nodes_per_rack.max(1),
        }
    }

    /// All ranks of `topology` that one event on `group` kills, ascending.
    pub fn ranks_in(&self, topology: &Topology, group: usize) -> Vec<usize> {
        match *self {
            FailureDomain::Node => topology.ranks_on(group),
            FailureDomain::Rack { nodes_per_rack } => {
                topology.ranks_on_rack(group, nodes_per_rack.max(1))
            }
        }
    }
}

/// Samples the crash-event times of one failure group over `[0, horizon)`
/// from the Poisson process described by `rate` — the same Lewis–Shedler
/// thinning loop as [`crate::rate::sample_failure_trace`], on the dedicated
/// correlated stream of `(seed, group)`, so group traces never alias the
/// per-rank traces of an independent plan under the same seed.
pub fn sample_group_trace(
    rate: FailureRate,
    horizon: SimTime,
    seed: u64,
    group: usize,
) -> Vec<SimTime> {
    sample_group_trace_fn(&rate.over(horizon.as_secs()), horizon, seed, group)
}

/// [`sample_group_trace`] generalized to any user-supplied [`RateFn`].
pub fn sample_group_trace_fn(
    rate: &dyn RateFn,
    horizon: SimTime,
    seed: u64,
    group: usize,
) -> Vec<SimTime> {
    thinned_candidates(rate, horizon, seed, group, CORRELATED_TRACE_STREAM)
        .into_iter()
        .filter_map(|(t, accepted)| accepted.then_some(t))
        .collect()
}

/// A correlated failure plan: group-level crash events over a topology.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CorrelatedPlan {
    /// What one event kills.
    pub domain: FailureDomain,
    /// Intensity of the per-group event process.
    pub rate: FailureRate,
    /// Observation horizon.
    pub horizon: SimTime,
}

impl CorrelatedPlan {
    /// Builds a plan from its three axes.
    pub fn new(domain: FailureDomain, rate: FailureRate, horizon: SimTime) -> Self {
        CorrelatedPlan {
            domain,
            rate,
            horizon,
        }
    }

    /// The crash-event times of one group ([`sample_group_trace`]).
    pub fn group_trace(&self, seed: u64, group: usize) -> Vec<SimTime> {
        sample_group_trace(self.rate, self.horizon, seed, group)
    }

    /// Expands the plan over `topology` into per-rank crash times: for
    /// every group whose trace is non-empty, each co-located rank is
    /// scheduled to crash at the group's *first* event (ranks are
    /// crash-stop, so later events of the group can never fire).  The
    /// result is ordered group-ascending, rank-ascending — a pure function
    /// of `(plan, topology, seed)`.
    pub fn crashes(&self, topology: &Topology, seed: u64) -> Vec<(usize, SimTime)> {
        let mut out = Vec::new();
        for group in 0..self.domain.num_groups(topology) {
            let Some(&at) = self.group_trace(seed, group).first() else {
                continue;
            };
            for rank in self.domain.ranks_in(topology, group) {
                out.push((rank, at));
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn domain_labels_round_trip() {
        for d in [
            FailureDomain::Node,
            FailureDomain::Rack { nodes_per_rack: 4 },
        ] {
            assert_eq!(FailureDomain::parse(&d.label()), Some(d), "{}", d.label());
        }
        assert_eq!(FailureDomain::parse(" NODE "), Some(FailureDomain::Node));
        assert_eq!(FailureDomain::parse("rack0"), None);
        assert_eq!(FailureDomain::parse("rack"), None);
        assert_eq!(FailureDomain::parse("switch2"), None);
    }

    #[test]
    fn group_traces_are_deterministic_and_distinct_from_rank_traces() {
        let rate = FailureRate::Constant(0.5);
        let horizon = SimTime::from_secs(50.0);
        let a = sample_group_trace(rate, horizon, 42, 0);
        assert_eq!(a, sample_group_trace(rate, horizon, 42, 0));
        assert_ne!(a, sample_group_trace(rate, horizon, 42, 1));
        // The correlated stream must not alias the per-rank stream.
        assert_ne!(a, crate::rate::sample_failure_trace(rate, horizon, 42, 0));
    }

    #[test]
    fn node_groups_follow_the_topology() {
        let topo = Topology::block(8, 4);
        let d = FailureDomain::Node;
        assert_eq!(d.num_groups(&topo), 2);
        assert_eq!(d.ranks_in(&topo, 0), vec![0, 1, 2, 3]);
        assert_eq!(d.ranks_in(&topo, 1), vec![4, 5, 6, 7]);
    }

    #[test]
    fn rack_groups_merge_consecutive_nodes() {
        let topo = Topology::block(16, 2); // 8 nodes of 2 ranks
        let d = FailureDomain::Rack { nodes_per_rack: 4 };
        assert_eq!(d.num_groups(&topo), 2);
        assert_eq!(d.group_of_node(3), 0);
        assert_eq!(d.group_of_node(4), 1);
        assert_eq!(d.ranks_in(&topo, 0), (0..8).collect::<Vec<_>>());
        assert_eq!(d.ranks_in(&topo, 1), (8..16).collect::<Vec<_>>());
    }

    #[test]
    fn crashes_kill_whole_groups_at_one_time() {
        let topo = Topology::block(8, 4);
        let plan = CorrelatedPlan::new(
            FailureDomain::Node,
            FailureRate::Constant(5.0),
            SimTime::from_secs(10.0),
        );
        let crashes = plan.crashes(&topo, 42);
        assert!(!crashes.is_empty(), "rate 5/s over 10 s must fire");
        for group in 0..2 {
            let times: Vec<SimTime> = crashes
                .iter()
                .filter(|(r, _)| topo.node_of(*r) == group)
                .map(|&(_, t)| t)
                .collect();
            if times.is_empty() {
                continue;
            }
            assert_eq!(times.len(), 4, "an event kills the whole node");
            assert!(times.windows(2).all(|w| w[0] == w[1]));
        }
        assert_eq!(crashes, plan.crashes(&topo, 42), "pure function of seed");
    }
}
