//! Mapping between physical ranks and (logical rank, replica id) pairs.
//!
//! The convention matches the topology helper
//! `simcluster::Topology::replica_disjoint`: physical rank
//! `replica_id * num_logical + logical_rank`.  With a replication degree of
//! 2 (the degree the paper uses throughout), physical ranks `0..L` form
//! replica set 0 and ranks `L..2L` form replica set 1, and the two replicas
//! of any logical process land on different nodes.

use serde::{Deserialize, Serialize};

/// Mapping between physical and logical ranks for a given replication degree.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct ReplicaMapping {
    num_logical: usize,
    degree: usize,
}

impl ReplicaMapping {
    /// Creates a mapping for `num_logical` logical processes, each replicated
    /// `degree` times.
    ///
    /// # Panics
    /// Panics if either argument is zero.
    pub fn new(num_logical: usize, degree: usize) -> Self {
        assert!(num_logical > 0, "need at least one logical process");
        assert!(degree > 0, "replication degree must be at least 1");
        ReplicaMapping {
            num_logical,
            degree,
        }
    }

    /// Derives a mapping from the number of physical processes and the
    /// replication degree.
    ///
    /// # Panics
    /// Panics if the number of physical processes is not a multiple of the
    /// degree.
    pub fn from_physical(num_physical: usize, degree: usize) -> Self {
        assert!(degree > 0, "replication degree must be at least 1");
        assert!(
            num_physical.is_multiple_of(degree),
            "{num_physical} physical processes cannot be split into replicas of degree {degree}"
        );
        Self::new(num_physical / degree, degree)
    }

    /// Number of logical processes (MPI ranks seen by the application).
    pub fn num_logical(&self) -> usize {
        self.num_logical
    }

    /// Replication degree.
    pub fn degree(&self) -> usize {
        self.degree
    }

    /// Total number of physical processes.
    pub fn num_physical(&self) -> usize {
        self.num_logical * self.degree
    }

    /// Logical rank of a physical rank.
    pub fn logical_of(&self, physical: usize) -> usize {
        assert!(physical < self.num_physical(), "physical rank out of range");
        physical % self.num_logical
    }

    /// Replica id of a physical rank.
    pub fn replica_of(&self, physical: usize) -> usize {
        assert!(physical < self.num_physical(), "physical rank out of range");
        physical / self.num_logical
    }

    /// Physical rank hosting replica `replica` of logical process `logical`.
    pub fn physical_of(&self, logical: usize, replica: usize) -> usize {
        assert!(logical < self.num_logical, "logical rank out of range");
        assert!(replica < self.degree, "replica id out of range");
        replica * self.num_logical + logical
    }

    /// All physical ranks hosting replicas of `logical`.
    pub fn replicas_of(&self, logical: usize) -> Vec<usize> {
        (0..self.degree)
            .map(|r| self.physical_of(logical, r))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn degree_two_layout() {
        let m = ReplicaMapping::new(4, 2);
        assert_eq!(m.num_physical(), 8);
        assert_eq!(m.logical_of(0), 0);
        assert_eq!(m.replica_of(0), 0);
        assert_eq!(m.logical_of(5), 1);
        assert_eq!(m.replica_of(5), 1);
        assert_eq!(m.physical_of(1, 1), 5);
        assert_eq!(m.replicas_of(2), vec![2, 6]);
    }

    #[test]
    fn degree_one_is_identity() {
        let m = ReplicaMapping::new(3, 1);
        for p in 0..3 {
            assert_eq!(m.logical_of(p), p);
            assert_eq!(m.replica_of(p), 0);
            assert_eq!(m.physical_of(p, 0), p);
        }
    }

    #[test]
    fn from_physical_divides() {
        let m = ReplicaMapping::from_physical(12, 3);
        assert_eq!(m.num_logical(), 4);
        assert_eq!(m.degree(), 3);
    }

    #[test]
    #[should_panic]
    fn from_physical_rejects_non_multiple() {
        let _ = ReplicaMapping::from_physical(7, 2);
    }

    proptest! {
        #[test]
        fn round_trip_physical_logical(num_logical in 1usize..64, degree in 1usize..4, p in 0usize..256) {
            let m = ReplicaMapping::new(num_logical, degree);
            let p = p % m.num_physical();
            let logical = m.logical_of(p);
            let replica = m.replica_of(p);
            prop_assert!(logical < num_logical);
            prop_assert!(replica < degree);
            prop_assert_eq!(m.physical_of(logical, replica), p);
        }

        #[test]
        fn replica_sets_partition_physical_ranks(num_logical in 1usize..32, degree in 1usize..4) {
            let m = ReplicaMapping::new(num_logical, degree);
            let mut seen = vec![false; m.num_physical()];
            for logical in 0..num_logical {
                for p in m.replicas_of(logical) {
                    prop_assert!(!seen[p], "physical rank {} assigned twice", p);
                    seen[p] = true;
                    prop_assert_eq!(m.logical_of(p), logical);
                }
            }
            prop_assert!(seen.into_iter().all(|s| s));
        }
    }
}
