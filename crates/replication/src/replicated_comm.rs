//! The replicated communicator: logical channels + replica channels.
//!
//! With active replication, the application still thinks in terms of
//! *logical* MPI ranks.  On the logical channel implemented here, every
//! replica of the sending logical process sends a copy of each application
//! message to every replica of the destination logical process (copies
//! addressed to crashed replicas are dropped by the network).  Each copy
//! carries a per-channel sequence number; a receiver consumes the stream of
//! the lowest-id alive replica of the source and discards duplicates by
//! sequence number, so it can switch to another replica's stream at any
//! point after a failure without losing or re-delivering messages.  This is
//! the classic state-machine-replication messaging discipline (rMPI-style);
//! the paper's SDR-MPI optimizes the duplicate sends away using send
//! determinism, an optimization that is orthogonal to intra-parallelization
//! (the paper explicitly defers the consistency protocol to its ref. \[17\]).
//!
//! The sequence-number discipline relies on replicas emitting identical
//! message sequences per (destination, tag) channel — exactly the partial
//! (send) determinism assumption the paper makes for its applications.
//!
//! On top of the logical point-to-point channel, the logical collectives the
//! mini-applications need (barrier, broadcast, all-reduce) are implemented
//! with the usual binomial/dissemination algorithms, so they inherit the
//! failover behaviour of the channel.

use crate::mapping::ReplicaMapping;
use parking_lot::Mutex;
use simmpi::{Comm, FxBuildHasher, MpiError, MpiResult, Pod, Tag, RESERVED_TAG_BASE};
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// First tag reserved for the replication layer's internal collectives.
/// Applications must keep their tags below this value.
pub const REPLICATION_TAG_BASE: Tag = RESERVED_TAG_BASE / 2;

/// Shared per-`(logical rank, tag)` sequence-number map (Fx-hashed: the
/// keys are small trusted integer tuples on the per-message hot path).
type SeqMap = Arc<Mutex<HashMap<(usize, Tag), u64, FxBuildHasher>>>;

/// Communicators and rank mapping for one physical process of a replicated
/// MPI application.
#[derive(Clone)]
pub struct ReplicatedComm {
    world: Comm,
    mapping: ReplicaMapping,
    /// All logical ranks within this process's replica set (communicator rank
    /// == logical rank).
    logical_comm: Comm,
    /// All replicas of this process's logical rank (communicator rank ==
    /// replica id).
    replica_comm: Comm,
    my_logical: usize,
    my_replica: usize,
    coll_seq: Arc<AtomicU64>,
    /// Next sequence number per outgoing (destination logical rank, tag)
    /// channel.
    send_seq: SeqMap,
    /// Next expected sequence number per incoming (source logical rank, tag)
    /// channel.
    recv_seq: SeqMap,
    /// Replica id whose stream is currently consumed, per source logical
    /// rank.  Advanced only when a receive from that replica reports
    /// `ProcessFailed` (its stream ran dry), never from a racy liveness
    /// query, so failover is deterministic in virtual time.
    src_replica: Arc<Mutex<HashMap<usize, usize, FxBuildHasher>>>,
}

impl ReplicatedComm {
    /// Builds the replicated communicator from the world communicator and a
    /// replication degree.  Every physical process must call this
    /// collectively.
    pub fn new(world: Comm, degree: usize) -> MpiResult<Self> {
        if degree == 0 {
            return Err(MpiError::InvalidCommunicator(
                "replication degree must be at least 1".into(),
            ));
        }
        if !world.size().is_multiple_of(degree) {
            return Err(MpiError::InvalidCommunicator(format!(
                "{} physical processes cannot host replicas of degree {}",
                world.size(),
                degree
            )));
        }
        let mapping = ReplicaMapping::from_physical(world.size(), degree);
        let my = world.rank();
        let my_logical = mapping.logical_of(my);
        let my_replica = mapping.replica_of(my);
        let logical_comm =
            world.split_by(|r| (mapping.replica_of(r) as u64, mapping.logical_of(r) as u64))?;
        let replica_comm =
            world.split_by(|r| (mapping.logical_of(r) as u64, mapping.replica_of(r) as u64))?;
        Ok(ReplicatedComm {
            world,
            mapping,
            logical_comm,
            replica_comm,
            my_logical,
            my_replica,
            coll_seq: Arc::new(AtomicU64::new(0)),
            send_seq: Arc::new(Mutex::new(HashMap::default())),
            recv_seq: Arc::new(Mutex::new(HashMap::default())),
            src_replica: Arc::new(Mutex::new(HashMap::default())),
        })
    }

    /// The world communicator (all physical processes).
    pub fn world(&self) -> &Comm {
        &self.world
    }

    /// The rank mapping in effect.
    pub fn mapping(&self) -> &ReplicaMapping {
        &self.mapping
    }

    /// Communicator over the logical ranks of this process's replica set.
    pub fn logical_comm(&self) -> &Comm {
        &self.logical_comm
    }

    /// Communicator over the replicas of this process's logical rank.  This
    /// is the "dedicated communicator" the intra-parallelization runtime uses
    /// to ship task updates.
    pub fn replica_comm(&self) -> &Comm {
        &self.replica_comm
    }

    /// Logical rank of this process (the rank the application sees).
    pub fn logical_rank(&self) -> usize {
        self.my_logical
    }

    /// Replica id of this process within its logical process.
    pub fn replica_id(&self) -> usize {
        self.my_replica
    }

    /// Number of logical processes.
    pub fn num_logical(&self) -> usize {
        self.mapping.num_logical()
    }

    /// Replication degree.
    pub fn degree(&self) -> usize {
        self.mapping.degree()
    }

    /// Replica ids of this logical process that are still alive.
    ///
    /// The answer is based on the failure board, which is updated at
    /// real-time (not virtual-time) order; use it for diagnostics and
    /// post-run assertions only, never to steer protocol decisions.
    pub fn alive_replicas(&self) -> Vec<usize> {
        (0..self.degree())
            .filter(|&r| !self.is_replica_failed(r))
            .collect()
    }

    /// True if replica `replica` of this logical process has crashed.
    pub fn is_replica_failed(&self, replica: usize) -> bool {
        self.replica_comm.is_failed(replica)
    }

    /// True if this process is the lowest-id alive replica of its logical
    /// process (the replica that covers for failed siblings).
    ///
    /// The answer is based on the racy failure board, so it must only be
    /// used for diagnostics — never to steer protocol decisions (those use
    /// the deterministic stream-failover discipline of
    /// [`ReplicatedComm::recv_logical`]).
    pub fn is_covering_replica(&self) -> bool {
        self.alive_replicas().first() == Some(&self.my_replica)
    }

    // ------------------------------------------------------------------
    // Logical point-to-point channel
    // ------------------------------------------------------------------

    /// Sends `buf` to logical process `dest_logical`.
    ///
    /// One sequence-numbered copy is sent to every replica of the
    /// destination; copies addressed to crashed replicas are dropped by the
    /// network, and the receivers discard duplicates, so the channel
    /// tolerates crash-stop failures of any subset of the replicas involved.
    pub fn send_logical<T: Pod>(&self, buf: &[T], dest_logical: usize, tag: Tag) -> MpiResult<()> {
        let modeled = std::mem::size_of_val(buf);
        self.send_logical_with_modeled_size(buf, dest_logical, tag, modeled)
    }

    /// [`ReplicatedComm::send_logical`] with an explicit modeled size charged
    /// to the network model (used by paper-scale experiments running on
    /// reduced actual arrays).
    pub fn send_logical_with_modeled_size<T: Pod>(
        &self,
        buf: &[T],
        dest_logical: usize,
        tag: Tag,
        modeled_bytes: usize,
    ) -> MpiResult<()> {
        // Serialized in one pass; sub-threshold bodies land in the payload's
        // inline representation and allocate nothing.
        let payload = simmpi::to_payload(buf);
        self.send_logical_payload(&payload, dest_logical, tag, modeled_bytes)
    }

    /// Zero-copy variant of [`ReplicatedComm::send_logical`]: sends a
    /// pre-serialized message body.
    ///
    /// This is the replicated analogue of MPI's persistent requests: an
    /// application that transmits (from) the same buffer every iteration
    /// serializes it once with [`simmpi::to_payload`] and hands the handle
    /// in here each send.  The channel's sequence number travels out-of-band
    /// in the message frame ([`simmpi::Comm::send_framed_multi`]), so a send
    /// costs no payload copy and no allocation at all — every replica copy
    /// shares the caller's buffer by reference count.  The wire-level
    /// modeled size is `modeled_bytes` plus the 8-byte frame head.
    pub fn send_logical_payload(
        &self,
        payload: &bytes::Bytes,
        dest_logical: usize,
        tag: Tag,
        modeled_bytes: usize,
    ) -> MpiResult<()> {
        if dest_logical >= self.num_logical() {
            return Err(MpiError::InvalidRank {
                rank: dest_logical,
                size: self.num_logical(),
            });
        }
        let seq = {
            let mut seqs = self.send_seq.lock();
            let entry = seqs.entry((dest_logical, tag)).or_insert(0);
            let s = *entry;
            *entry += 1;
            s
        };
        // One copy goes to *every* replica of the destination, alive or not:
        // the sender has no failure detector, so it must not consult the
        // (real-time-racy) failure board — doing so would make the charged
        // send time depend on thread scheduling.  Copies addressed to
        // crashed replicas are dropped by the network.  The copies share the
        // single framed buffer by reference count: the replica fan-out
        // performs O(1) payload allocations, not O(degree), and the whole
        // group goes through one batched router visit.
        let degree = self.degree();
        let mut dest_buf = [0usize; 8];
        let mut dest_vec;
        let dests: &mut [usize] = if degree <= dest_buf.len() {
            &mut dest_buf[..degree]
        } else {
            dest_vec = vec![0usize; degree];
            &mut dest_vec[..]
        };
        for (r, d) in dests.iter_mut().enumerate() {
            *d = self.mapping.physical_of(dest_logical, r);
        }
        self.world
            .send_framed_multi(seq, payload, dests, tag, modeled_bytes + 8)?;
        Ok(())
    }

    /// Receives the next message on the (source logical rank, tag) channel.
    ///
    /// The stream of one replica of the source is consumed, starting from
    /// replica 0; when a receive on that stream reports `ProcessFailed` (the
    /// replica crashed before sending the next expected message), the
    /// receiver fails over permanently to the next replica id.  Stale
    /// duplicates (already delivered through the previous replica's stream)
    /// are discarded by sequence number.  Failover is driven purely by the
    /// message streams — never by a real-time liveness query — so the
    /// virtual-time behaviour is deterministic.
    pub fn recv_logical<T: Pod>(&self, src_logical: usize, tag: Tag) -> MpiResult<Vec<T>> {
        let body = self.recv_logical_payload(src_logical, tag)?;
        simmpi::from_bytes(&body)
    }

    /// Zero-copy variant of [`ReplicatedComm::recv_logical`]: returns the
    /// message body as reference-counted bytes borrowing the very buffer the
    /// sender serialized (the 8-byte sequence frame is already stripped).
    /// Use [`simmpi::typed_view`] to read it as a typed slice without
    /// materializing a vector; the deserializing wrapper above is the
    /// convenience path.
    pub fn recv_logical_payload(&self, src_logical: usize, tag: Tag) -> MpiResult<bytes::Bytes> {
        if src_logical >= self.num_logical() {
            return Err(MpiError::InvalidRank {
                rank: src_logical,
                size: self.num_logical(),
            });
        }
        let expected = *self.recv_seq.lock().entry((src_logical, tag)).or_insert(0);
        loop {
            let src_replica = *self.src_replica.lock().entry(src_logical).or_insert(0);
            if src_replica >= self.degree() {
                // Every replica's stream ran dry: the logical process is gone.
                return Err(MpiError::ProcessFailed {
                    rank: self.mapping.physical_of(src_logical, self.degree() - 1),
                });
            }
            let phys = self.mapping.physical_of(src_logical, src_replica);
            let (seq, body) = match self.world.recv_framed(Some(phys), Some(tag)) {
                Ok((seq, body, _)) => (seq, body),
                // The consumed stream ran dry mid-wait: fail over to the
                // next replica id (or error out once none is left).
                Err(MpiError::ProcessFailed { .. }) => {
                    let mut preferred = self.src_replica.lock();
                    let entry = preferred.entry(src_logical).or_insert(0);
                    if *entry == src_replica {
                        *entry += 1;
                    }
                    continue;
                }
                Err(e) => return Err(e),
            };
            if seq < expected {
                // Duplicate of a message already delivered through another
                // replica's stream: discard and keep looking.
                continue;
            }
            debug_assert_eq!(
                seq, expected,
                "gap in replicated channel: replicas are not send-deterministic"
            );
            self.recv_seq
                .lock()
                .insert((src_logical, tag), expected + 1);
            return Ok(body);
        }
    }

    // ------------------------------------------------------------------
    // Logical collectives (built on the logical channel)
    // ------------------------------------------------------------------

    fn next_coll_tag(&self) -> Tag {
        let seq = self.coll_seq.fetch_add(1, Ordering::Relaxed);
        REPLICATION_TAG_BASE
            + (seq % ((RESERVED_TAG_BASE - REPLICATION_TAG_BASE - 1) as u64)) as u32
    }

    /// Barrier over the logical processes (dissemination algorithm on the
    /// logical channel).
    pub fn logical_barrier(&self) -> MpiResult<()> {
        let size = self.num_logical();
        let rank = self.my_logical;
        if size <= 1 {
            return Ok(());
        }
        let tag = self.next_coll_tag();
        let mut step = 1usize;
        while step < size {
            let to = (rank + step) % size;
            let from = (rank + size - step) % size;
            self.send_logical::<u8>(&[1], to, tag)?;
            let _ = self.recv_logical::<u8>(from, tag)?;
            step <<= 1;
        }
        Ok(())
    }

    /// Broadcast over the logical processes from logical root `root`
    /// (binomial tree on the logical channel).
    pub fn logical_bcast<T: Pod>(&self, buf: &mut Vec<T>, root: usize) -> MpiResult<()> {
        let size = self.num_logical();
        let rank = self.my_logical;
        if root >= size {
            return Err(MpiError::InvalidRank { rank: root, size });
        }
        if size <= 1 {
            return Ok(());
        }
        let tag = self.next_coll_tag();
        let vrank = (rank + size - root) % size;
        let mut mask = 1usize;
        while mask < size {
            if vrank & mask != 0 {
                let src = (vrank - mask + root) % size;
                *buf = self.recv_logical::<T>(src, tag)?;
                break;
            }
            mask <<= 1;
        }
        mask >>= 1;
        while mask > 0 {
            if vrank + mask < size {
                let dst = (vrank + mask + root) % size;
                self.send_logical::<T>(buf, dst, tag)?;
            }
            mask >>= 1;
        }
        Ok(())
    }

    /// Element-wise all-reduce over the logical processes (binomial reduce to
    /// logical rank 0 followed by a broadcast, both on the logical channel).
    pub fn logical_allreduce<T: Pod, F>(&self, data: &[T], op: F) -> MpiResult<Vec<T>>
    where
        F: Fn(T, T) -> T,
    {
        let size = self.num_logical();
        let rank = self.my_logical;
        let tag = self.next_coll_tag();
        let mut acc: Vec<T> = data.to_vec();
        let mut mask = 1usize;
        while mask < size {
            if rank & mask == 0 {
                let src = rank | mask;
                if src < size {
                    let incoming = self.recv_logical::<T>(src, tag)?;
                    if incoming.len() != acc.len() {
                        return Err(MpiError::TypeMismatch {
                            bytes: incoming.len() * T::SIZE,
                            elem_size: T::SIZE,
                        });
                    }
                    for (a, b) in acc.iter_mut().zip(incoming) {
                        *a = op(*a, b);
                    }
                }
            } else {
                let dst = rank & !mask;
                self.send_logical::<T>(&acc, dst, tag)?;
                break;
            }
            mask <<= 1;
        }
        self.logical_bcast(&mut acc, 0)?;
        Ok(acc)
    }

    /// Sum all-reduce of one `f64` over the logical processes.
    pub fn logical_allreduce_sum_f64(&self, value: f64) -> MpiResult<f64> {
        Ok(self.logical_allreduce(&[value], |a, b| a + b)?[0])
    }
}
