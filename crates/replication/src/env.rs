//! Per-physical-process environment handle.
//!
//! [`ReplicatedEnv`] bundles everything a mini-application (or the
//! intra-parallelization runtime) needs on one physical process: the process
//! handle of the simulated MPI runtime, the replicated communicator, the
//! execution mode, and the failure injector.  It is the analog of "the MPI
//! library as seen by one process" in the paper's prototype.

use crate::failure::{FailureInjector, ProtocolPoint};
use crate::replicated_comm::ReplicatedComm;
use simcluster::SimTime;
use simmpi::{MpiResult, ProcHandle};

/// How the application is being executed.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ExecutionMode {
    /// No replication: every physical process is a logical process (the
    /// paper's "Open MPI" baseline).
    Native,
    /// Classic state-machine replication: every logical process is executed
    /// by `degree` replicas and all computation is duplicated (the paper's
    /// "SDR-MPI" baseline).
    Replicated {
        /// Replication degree (the paper always uses 2).
        degree: usize,
    },
    /// Replication with intra-parallelization: computation inside
    /// intra-parallel sections is shared between the replicas (the paper's
    /// "intra" configuration).
    IntraParallel {
        /// Replication degree (the paper always uses 2).
        degree: usize,
    },
}

impl ExecutionMode {
    /// Replication degree implied by the mode (1 for native execution).
    pub fn degree(&self) -> usize {
        match self {
            ExecutionMode::Native => 1,
            ExecutionMode::Replicated { degree } | ExecutionMode::IntraParallel { degree } => {
                *degree
            }
        }
    }

    /// True if computation inside sections should be shared between replicas.
    pub fn shares_work(&self) -> bool {
        matches!(self, ExecutionMode::IntraParallel { .. })
    }

    /// Short label used in reports ("native", "replicated", "intra").
    pub fn label(&self) -> &'static str {
        match self {
            ExecutionMode::Native => "native",
            ExecutionMode::Replicated { .. } => "replicated",
            ExecutionMode::IntraParallel { .. } => "intra",
        }
    }
}

/// Everything one physical process needs to take part in a replicated run.
#[derive(Clone)]
pub struct ReplicatedEnv {
    proc: ProcHandle,
    rcomm: ReplicatedComm,
    mode: ExecutionMode,
    injector: FailureInjector,
}

impl ReplicatedEnv {
    /// Builds the environment for this physical process.  Must be called
    /// collectively by every process of the cluster.
    pub fn new(
        proc: ProcHandle,
        mode: ExecutionMode,
        injector: FailureInjector,
    ) -> MpiResult<Self> {
        let rcomm = ReplicatedComm::new(proc.world(), mode.degree())?;
        Ok(ReplicatedEnv {
            proc,
            rcomm,
            mode,
            injector,
        })
    }

    /// Convenience constructor without failure injection.
    pub fn without_failures(proc: ProcHandle, mode: ExecutionMode) -> MpiResult<Self> {
        Self::new(proc, mode, FailureInjector::none())
    }

    /// The simulated-process handle.
    pub fn proc(&self) -> &ProcHandle {
        &self.proc
    }

    /// The replicated communicator.
    pub fn rcomm(&self) -> &ReplicatedComm {
        &self.rcomm
    }

    /// Execution mode.
    pub fn mode(&self) -> ExecutionMode {
        self.mode
    }

    /// The failure injector for this run.
    pub fn injector(&self) -> &FailureInjector {
        &self.injector
    }

    /// Logical rank of this process (what the application considers its MPI
    /// rank).
    pub fn logical_rank(&self) -> usize {
        self.rcomm.logical_rank()
    }

    /// Number of logical processes.
    pub fn num_logical(&self) -> usize {
        self.rcomm.num_logical()
    }

    /// Replica id of this process.
    pub fn replica_id(&self) -> usize {
        self.rcomm.replica_id()
    }

    /// World (physical) rank of this process.
    pub fn physical_rank(&self) -> usize {
        self.proc.rank()
    }

    /// Current virtual time.
    pub fn now(&self) -> SimTime {
        self.proc.now()
    }

    /// Charges compute time for a region described by flops and memory
    /// traffic.
    pub fn charge_compute(&self, flops: f64, mem_bytes: f64) {
        self.proc.charge_compute(flops, mem_bytes);
    }

    /// True if this process has crashed.
    pub fn is_failed(&self) -> bool {
        self.proc.is_failed()
    }

    /// Consults the failure injector at a protocol point; if an injection is
    /// armed for this physical rank at this point — or a timed failure from
    /// a failure trace is due at the current virtual time — the process
    /// crashes (crash-stop) and `true` is returned — the caller must stop
    /// doing any further work.
    pub fn maybe_fail(&self, point: ProtocolPoint) -> bool {
        if self
            .injector
            .consult(self.physical_rank(), point, self.now())
        {
            self.proc.fail_here();
            true
        } else {
            false
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mode_degrees_and_labels() {
        assert_eq!(ExecutionMode::Native.degree(), 1);
        assert_eq!(ExecutionMode::Replicated { degree: 2 }.degree(), 2);
        assert_eq!(ExecutionMode::IntraParallel { degree: 2 }.degree(), 2);
        assert!(!ExecutionMode::Replicated { degree: 2 }.shares_work());
        assert!(ExecutionMode::IntraParallel { degree: 2 }.shares_work());
        assert_eq!(ExecutionMode::Native.label(), "native");
        assert_eq!(
            ExecutionMode::Replicated { degree: 2 }.label(),
            "replicated"
        );
        assert_eq!(ExecutionMode::IntraParallel { degree: 2 }.label(), "intra");
    }
}
