//! # replication — active replication substrate (SDR-MPI analog)
//!
//! The paper's prototype is built on SDR-MPI, the authors' active-replication
//! patch for Open MPI.  Intra-parallelization itself is deliberately
//! independent of the replication protocol; it only consumes a few
//! facilities, which is exactly what this crate provides on top of `simmpi`:
//!
//! * a mapping from *physical* ranks to *(logical rank, replica id)* pairs
//!   ([`mapping::ReplicaMapping`]);
//! * a **logical communicator** on which the application communicates as if
//!   it were not replicated (each replica set mirrors the application's
//!   messages, the optimization at the heart of SDR-MPI);
//! * a **replica communicator** connecting the replicas of one logical
//!   process, used by the intra-parallelization runtime to ship task updates
//!   ("SDR-MPI allows sending messages between the replicas of a logical MPI
//!   process by simply using MPI functions over a dedicated communicator");
//! * crash-stop **failure injection and detection** hooks
//!   ([`failure::FailureInjector`], [`failure::ProtocolPoint`]) backed by a
//!   failure-model library: parametric and user-supplied rate functions
//!   sampled by Lewis–Shedler thinning ([`rate`]) and correlated node/rack
//!   failure domains ([`correlated`]).
//!
//! The crate also provides [`ReplicatedEnv`], the per-physical-process handle
//! the mini-applications use, and a non-replicated pass-through mode so the
//! same application code can run natively (the paper's "Open MPI" baseline),
//! fully replicated (the "SDR-MPI" baseline) or intra-parallelized.

#![warn(missing_docs)]
#![deny(unsafe_op_in_unsafe_fn)]

pub mod correlated;
pub mod env;
pub mod failure;
pub mod mapping;
pub mod rate;
pub mod replicated_comm;

pub use correlated::{sample_group_trace, CorrelatedPlan, FailureDomain};
pub use env::{ExecutionMode, ReplicatedEnv};
pub use failure::{FailureInjector, ProtocolPoint, TimedFiring};
pub use mapping::ReplicaMapping;
pub use rate::{
    majorant_candidates, sample_failure_trace, sample_trace_fn, FailureRate, HorizonRate, RateFn,
};
pub use replicated_comm::ReplicatedComm;
