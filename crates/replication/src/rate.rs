//! Failure-rate functions and inhomogeneous-Poisson trace sampling.
//!
//! The failure model of a run is an intensity function λ(t) — crashes per
//! virtual second — observed over a finite horizon.  This module provides:
//!
//! * [`RateFn`], the trait any intensity function implements: λ(t) plus an
//!   explicit *majorant* (a finite upper bound on λ over the horizon), the
//!   two ingredients Lewis–Shedler thinning needs.  Arbitrary user-supplied
//!   rate functions plug into the exact same sampler as the built-ins.
//! * [`FailureRate`], the closed-form intensity family used by the
//!   campaign axes: homogeneous (`Constant`), piecewise (`Ramp`, `Burst`)
//!   and the two MTBF-distribution hazards observed on real HPC systems —
//!   [`FailureRate::Weibull`] (the decreasing-hazard "infant mortality"
//!   shape fitted to the LANL failure records, shape ≈ 0.7) and
//!   [`FailureRate::LogNormal`] (the unimodal hazard fitted to
//!   Blue Gene class systems).  Each variant knows its analytic mean event
//!   count ([`FailureRate::mean_events`]), which the statistical property
//!   tests compare empirical traces against.
//! * [`sample_failure_trace`] / [`sample_trace_fn`], the thinning sampler
//!   (in the spirit of IPPP-style conditional-density simulation): draw
//!   candidates from a homogeneous process at the majorant rate and keep
//!   each candidate at time t with probability λ(t)/λ\*.  The generator is
//!   a deterministic [`simcluster::rng`] substream of `(seed, stream id)`,
//!   so every trace is a pure function of its arguments — determinism
//!   rule 5: byte-identical traces per seed at any job or worker count.

use rand::Rng;
use simcluster::SimTime;

/// An intensity function λ(t) of an inhomogeneous Poisson failure process,
/// together with the explicit majorant that makes it samplable by
/// Lewis–Shedler thinning.
///
/// Implementations must be deterministic pure functions: the thinning
/// sampler evaluates them on RNG-drawn candidate times and any hidden state
/// would break trace reproducibility (determinism rule 5).
pub trait RateFn: Send + Sync {
    /// The intensity λ(t) at absolute virtual time `t` seconds, in crashes
    /// per virtual second.  Must be non-negative.
    fn rate(&self, t: f64) -> f64;

    /// A finite upper bound on λ(t) over `[0, horizon]` seconds — the
    /// homogeneous rate the thinning majorant process runs at.  A tighter
    /// bound only improves sampling efficiency; candidates where the bound
    /// is momentarily exceeded are simply always accepted.
    fn majorant(&self, horizon: f64) -> f64;
}

/// Intensity function λ(t) of a Poisson failure-arrival process, in crashes
/// per virtual second.  `Constant` gives a homogeneous process; the other
/// variants are inhomogeneous and are sampled by thinning a homogeneous
/// process running at the majorant rate ([`FailureRate::max_rate`]).
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum FailureRate {
    /// λ(t) = `rate` for all t.
    Constant(f64),
    /// λ(t) ramps linearly from `start` at t = 0 to `end` at t = horizon.
    Ramp {
        /// Rate at the beginning of the horizon.
        start: f64,
        /// Rate at the end of the horizon.
        end: f64,
    },
    /// λ(t) = `base` outside the burst window, `peak` inside
    /// [`center` − `width`/2, `center` + `width`/2] (times are fractions of
    /// the horizon in [0, 1]).
    Burst {
        /// Background rate outside the burst.
        base: f64,
        /// Rate inside the burst window.
        peak: f64,
        /// Center of the burst as a fraction of the horizon.
        center: f64,
        /// Width of the burst as a fraction of the horizon.
        width: f64,
    },
    /// The Weibull hazard λ(t) = (k/s)·(t/s)^(k−1) with shape k and scale s
    /// (virtual seconds), the MTBF shape fitted to large-scale HPC failure
    /// records (LANL systems show k ≈ 0.7: failures cluster early, the
    /// "infant mortality" of repaired nodes).  For k < 1 the raw hazard
    /// diverges at t → 0, so evaluation clamps t to a floor of
    /// `scale_s / 1024`, keeping the majorant finite; the analytic
    /// [`FailureRate::mean_events`] accounts for the clamp exactly.
    Weibull {
        /// Shape parameter k (> 0; k < 1 = decreasing hazard, k = 1 =
        /// constant, k > 1 = increasing/wear-out).
        shape: f64,
        /// Scale parameter s in virtual seconds (the characteristic life:
        /// the integrated intensity over one scale is exactly 1).
        scale_s: f64,
    },
    /// The log-normal hazard λ(t) = pdf(t)/survival(t) of a
    /// LogNormal(μ, σ) lifetime (t in virtual seconds), the unimodal MTBF
    /// shape reported for Blue Gene class systems: near-zero at t = 0,
    /// rising to a single peak, then slowly decaying.
    LogNormal {
        /// Location μ of ln(t); the distribution median is e^μ seconds.
        mu: f64,
        /// Shape σ of ln(t) (> 0).
        sigma: f64,
    },
}

/// Relative floor applied to the Weibull hazard evaluation time for
/// shape < 1 (`t ≥ scale_s / WEIBULL_FLOOR_DIV`), bounding the otherwise
/// divergent t → 0 hazard so the thinning majorant stays finite.
const WEIBULL_FLOOR_DIV: f64 = 1024.0;

/// Grid resolution used to bound the log-normal hazard over a horizon (the
/// hazard is smooth and unimodal, so a dense scan plus headroom is a valid
/// majorant in practice; see [`RateFn::majorant`] for why a momentary
/// excess is harmless).
const LOGNORMAL_SCAN_POINTS: usize = 4096;

/// Safety headroom multiplied onto the scanned log-normal hazard maximum.
const LOGNORMAL_SCAN_MARGIN: f64 = 1.05;

/// Complementary error function, accurate to ~1.2e-7 relative error
/// everywhere (the classic Chebyshev fit; no libm erfc in the container).
fn erfc(x: f64) -> f64 {
    let z = x.abs();
    let t = 1.0 / (1.0 + 0.5 * z);
    let poly = -z * z - 1.265_512_23
        + t * (1.000_023_68
            + t * (0.374_091_96
                + t * (0.096_784_18
                    + t * (-0.186_288_06
                        + t * (0.278_868_07
                            + t * (-1.135_203_98
                                + t * (1.488_515_87 + t * (-0.822_152_23 + t * 0.170_872_77))))))));
    let ans = t * poly.exp();
    if x >= 0.0 {
        ans
    } else {
        2.0 - ans
    }
}

/// Survival function 1 − CDF of LogNormal(μ, σ) at `t` (> 0).
fn lognormal_sf(t: f64, mu: f64, sigma: f64) -> f64 {
    let z = ((t.ln() - mu) / sigma) / std::f64::consts::SQRT_2;
    0.5 * erfc(z)
}

/// Hazard pdf(t)/sf(t) of LogNormal(μ, σ) at `t`; zero for t ≤ 0.
fn lognormal_hazard(t: f64, mu: f64, sigma: f64) -> f64 {
    if t <= 0.0 {
        return 0.0;
    }
    let z = (t.ln() - mu) / sigma;
    let pdf = (-0.5 * z * z).exp() / (t * sigma * (2.0 * std::f64::consts::PI).sqrt());
    let sf = lognormal_sf(t, mu, sigma);
    if sf <= 0.0 {
        // Far past the distribution: both pdf and sf underflow; the hazard
        // ~ ln(t)/(σ² t) is effectively zero at this magnitude.
        return 0.0;
    }
    (pdf / sf).max(0.0)
}

/// Weibull hazard (k/s)·(t/s)^(k−1) with the t-floor applied for k < 1.
fn weibull_hazard(t: f64, shape: f64, scale_s: f64) -> f64 {
    if shape <= 0.0 || scale_s <= 0.0 {
        return 0.0;
    }
    let t = if shape < 1.0 {
        t.max(scale_s / WEIBULL_FLOOR_DIV)
    } else {
        t.max(0.0)
    };
    (shape / scale_s) * (t / scale_s).powf(shape - 1.0)
}

impl FailureRate {
    /// The LANL-fit Weibull MTBF model (Schroeder & Gibson's large-scale
    /// HPC failure study): shape 0.7 — the decreasing hazard of repaired
    /// nodes — with the scale set to `mtbf_s`, so the expected number of
    /// failures over one MTBF is exactly 1.
    pub fn weibull_hpc(mtbf_s: f64) -> Self {
        FailureRate::Weibull {
            shape: 0.7,
            scale_s: mtbf_s,
        }
    }

    /// The log-normal MTBF model reported for Blue Gene class systems:
    /// σ = 1 with the median lifetime set to `mtbf_s` (μ = ln mtbf), so
    /// the integrated intensity over one MTBF is −ln ½ ≈ 0.693.
    pub fn lognormal_hpc(mtbf_s: f64) -> Self {
        FailureRate::LogNormal {
            mu: mtbf_s.ln(),
            sigma: 1.0,
        }
    }

    /// The intensity at time `t` of a process observed over `horizon`
    /// virtual seconds.  The hazard variants (`Weibull`, `LogNormal`) are
    /// absolute-time MTBF curves and ignore the horizon; the fraction-based
    /// variants (`Ramp`, `Burst`) scale with it.
    pub fn at(&self, t: f64, horizon: f64) -> f64 {
        let rate = match *self {
            FailureRate::Constant(rate) => rate,
            FailureRate::Ramp { start, end } => {
                if horizon <= 0.0 {
                    start
                } else {
                    start + (end - start) * (t / horizon).clamp(0.0, 1.0)
                }
            }
            FailureRate::Burst {
                base,
                peak,
                center,
                width,
            } => {
                if horizon <= 0.0 {
                    base
                } else {
                    let frac = (t / horizon).clamp(0.0, 1.0);
                    if (frac - center).abs() <= width / 2.0 {
                        peak
                    } else {
                        base
                    }
                }
            }
            FailureRate::Weibull { shape, scale_s } => weibull_hazard(t, shape, scale_s),
            FailureRate::LogNormal { mu, sigma } => lognormal_hazard(t, mu, sigma),
        };
        rate.max(0.0)
    }

    /// An upper bound on λ(t) over the horizon (the thinning majorant).
    pub fn max_rate(&self, horizon: f64) -> f64 {
        match *self {
            FailureRate::Constant(rate) => rate.max(0.0),
            FailureRate::Ramp { start, end } => start.max(end).max(0.0),
            FailureRate::Burst { base, peak, .. } => base.max(peak).max(0.0),
            FailureRate::Weibull { shape, scale_s } => {
                if shape <= 0.0 || scale_s <= 0.0 {
                    0.0
                } else if shape <= 1.0 {
                    // Decreasing hazard: the (floored) origin is the peak.
                    weibull_hazard(0.0, shape, scale_s)
                } else {
                    // Increasing hazard: the horizon end is the peak.
                    weibull_hazard(horizon.max(0.0), shape, scale_s)
                }
            }
            FailureRate::LogNormal { mu, sigma } => {
                if horizon <= 0.0 || sigma <= 0.0 {
                    return 0.0;
                }
                // The log-normal hazard is smooth and unimodal: a dense
                // deterministic scan with headroom bounds it.
                let mut max = 0.0f64;
                for i in 1..=LOGNORMAL_SCAN_POINTS {
                    let t = horizon * (i as f64) / (LOGNORMAL_SCAN_POINTS as f64);
                    max = max.max(lognormal_hazard(t, mu, sigma));
                }
                max * LOGNORMAL_SCAN_MARGIN
            }
        }
    }

    /// The analytic expected number of arrivals over `[0, horizon]`:
    /// ∫₀ᴴ λ(t) dt.  This is what the statistical property tests compare
    /// empirical trace counts against (the clamped Weibull floor is
    /// accounted for exactly).
    pub fn mean_events(&self, horizon: f64) -> f64 {
        let h = horizon.max(0.0);
        match *self {
            FailureRate::Constant(rate) => rate.max(0.0) * h,
            FailureRate::Ramp { start, end } => {
                if h <= 0.0 {
                    0.0
                } else {
                    (start.max(0.0) + end.max(0.0)) / 2.0 * h
                }
            }
            FailureRate::Burst {
                base,
                peak,
                center,
                width,
            } => {
                let lo = (center - width / 2.0).max(0.0);
                let hi = (center + width / 2.0).min(1.0);
                let window = (hi - lo).max(0.0);
                base.max(0.0) * h * (1.0 - window) + peak.max(0.0) * h * window
            }
            FailureRate::Weibull { shape, scale_s } => {
                if shape <= 0.0 || scale_s <= 0.0 || h <= 0.0 {
                    return 0.0;
                }
                if shape >= 1.0 {
                    return (h / scale_s).powf(shape);
                }
                let floor = scale_s / WEIBULL_FLOOR_DIV;
                if h <= floor {
                    // Entirely inside the clamped region: constant hazard.
                    h * weibull_hazard(0.0, shape, scale_s)
                } else {
                    // ∫₀ᶠ h(f) dt + ∫ᶠᴴ = k(f/s)^k + (H/s)^k − (f/s)^k.
                    (h / scale_s).powf(shape) + (shape - 1.0) * (floor / scale_s).powf(shape)
                }
            }
            FailureRate::LogNormal { mu, sigma } => {
                if sigma <= 0.0 || h <= 0.0 {
                    return 0.0;
                }
                // The integrated hazard is −ln(survival).
                -lognormal_sf(h, mu, sigma).max(f64::MIN_POSITIVE).ln()
            }
        }
    }

    /// Compact label used in campaign run ids and reports, e.g.
    /// `const-0.5`, `ramp-0.1-2`, `burst-0.1-4-0.5-0.2`, `weibull-0.7-1`,
    /// `lognormal--0.5-1`.
    pub fn label(&self) -> String {
        match *self {
            FailureRate::Constant(rate) => format!("const-{rate}"),
            FailureRate::Ramp { start, end } => format!("ramp-{start}-{end}"),
            FailureRate::Burst {
                base,
                peak,
                center,
                width,
            } => format!("burst-{base}-{peak}-{center}-{width}"),
            FailureRate::Weibull { shape, scale_s } => format!("weibull-{shape}-{scale_s}"),
            FailureRate::LogNormal { mu, sigma } => format!("lognormal-{mu}-{sigma}"),
        }
    }

    /// Parses the output of [`FailureRate::label`].  Parsing is lenient
    /// where display is canonical: surrounding whitespace and ASCII case
    /// are ignored, and `-` is only a separator when it does not introduce
    /// a (possibly negative) number — so `lognormal--0.5-1` round-trips.
    pub fn parse(s: &str) -> Option<Self> {
        let s = s.trim().to_ascii_lowercase();
        if let Some(rest) = s.strip_prefix("const-") {
            let v = parse_nums(rest)?;
            (v.len() == 1).then(|| FailureRate::Constant(v[0]))
        } else if let Some(rest) = s.strip_prefix("ramp-") {
            let v = parse_nums(rest)?;
            (v.len() == 2).then(|| FailureRate::Ramp {
                start: v[0],
                end: v[1],
            })
        } else if let Some(rest) = s.strip_prefix("burst-") {
            let v = parse_nums(rest)?;
            (v.len() == 4).then(|| FailureRate::Burst {
                base: v[0],
                peak: v[1],
                center: v[2],
                width: v[3],
            })
        } else if let Some(rest) = s.strip_prefix("weibull-") {
            let v = parse_nums(rest)?;
            (v.len() == 2).then(|| FailureRate::Weibull {
                shape: v[0],
                scale_s: v[1],
            })
        } else if let Some(rest) = s.strip_prefix("lognormal-") {
            let v = parse_nums(rest)?;
            (v.len() == 2).then(|| FailureRate::LogNormal {
                mu: v[0],
                sigma: v[1],
            })
        } else {
            None
        }
    }

    /// Adapts the rate to a fixed horizon, yielding a [`RateFn`] (the
    /// fraction-based variants need the horizon to evaluate λ(t)).
    pub fn over(self, horizon_s: f64) -> HorizonRate {
        HorizonRate {
            rate: self,
            horizon_s,
        }
    }
}

/// Splits a label tail into its `-`-separated numbers.  A `-` directly
/// after another separator (or at the start) is a sign, not a separator,
/// which is what lets negative parameters (log-normal μ) round-trip
/// through [`FailureRate::label`].
fn parse_nums(rest: &str) -> Option<Vec<f64>> {
    let mut out = Vec::new();
    let mut cur = String::new();
    for ch in rest.chars() {
        if ch == '-' && !cur.is_empty() {
            out.push(cur.trim().parse::<f64>().ok()?);
            cur.clear();
        } else {
            cur.push(ch);
        }
    }
    out.push(cur.trim().parse::<f64>().ok()?);
    Some(out)
}

/// A [`FailureRate`] bound to its observation horizon — the [`RateFn`]
/// adapter the built-in variants are sampled through.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct HorizonRate {
    /// The intensity family.
    pub rate: FailureRate,
    /// The observation horizon in virtual seconds.
    pub horizon_s: f64,
}

impl RateFn for HorizonRate {
    fn rate(&self, t: f64) -> f64 {
        self.rate.at(t, self.horizon_s)
    }

    fn majorant(&self, horizon: f64) -> f64 {
        self.rate.max_rate(horizon)
    }
}

/// RNG stream id reserved for per-rank failure traces (keeps trace sampling
/// independent of any other per-rank randomness derived from the same seed).
pub(crate) const FAILURE_TRACE_STREAM: usize = 0xFA11;

/// Samples the crash times of one physical rank over `[0, horizon)` virtual
/// seconds from the Poisson process described by `rate`.
///
/// Sampling uses Lewis–Shedler thinning: candidate arrivals are drawn from a
/// homogeneous process at the majorant rate λ\* = [`FailureRate::max_rate`]
/// and each candidate at time t is kept with probability λ(t)/λ\*.  The
/// generator is a deterministic [`simcluster::rng`] substream of
/// `(seed, rank)`, so the trace is a pure function of its arguments: every
/// replica (and every re-run) derives the identical trace without
/// coordination.
pub fn sample_failure_trace(
    rate: FailureRate,
    horizon: SimTime,
    seed: u64,
    rank: usize,
) -> Vec<SimTime> {
    sample_trace_fn(&rate.over(horizon.as_secs()), horizon, seed, rank)
}

/// Candidate arrival times of the homogeneous majorant process that thinning
/// filters (exposed for tests: an inhomogeneous trace must be a subset of
/// its majorant candidates).
pub fn majorant_candidates(
    rate: FailureRate,
    horizon: SimTime,
    seed: u64,
    rank: usize,
) -> Vec<SimTime> {
    majorant_candidates_fn(&rate.over(horizon.as_secs()), horizon, seed, rank)
}

/// [`sample_failure_trace`] generalized to any user-supplied [`RateFn`]:
/// the same thinning loop, the same `(seed, rank)` stream discipline.
pub fn sample_trace_fn(
    rate: &dyn RateFn,
    horizon: SimTime,
    seed: u64,
    rank: usize,
) -> Vec<SimTime> {
    thinned_candidates(rate, horizon, seed, rank, FAILURE_TRACE_STREAM)
        .into_iter()
        .filter_map(|(t, accepted)| accepted.then_some(t))
        .collect()
}

/// [`majorant_candidates`] generalized to any user-supplied [`RateFn`].
pub fn majorant_candidates_fn(
    rate: &dyn RateFn,
    horizon: SimTime,
    seed: u64,
    rank: usize,
) -> Vec<SimTime> {
    thinned_candidates(rate, horizon, seed, rank, FAILURE_TRACE_STREAM)
        .into_iter()
        .map(|(t, _)| t)
        .collect()
}

/// The single thinning loop behind every trace sampler: every candidate of
/// the homogeneous majorant process, paired with its acceptance verdict.
/// Sharing the loop (and its RNG draw order) is what makes "an
/// inhomogeneous trace is a subset of its majorant candidates" structural
/// rather than conventional.
pub(crate) fn thinned_candidates(
    rate: &dyn RateFn,
    horizon: SimTime,
    seed: u64,
    id: usize,
    stream: usize,
) -> Vec<(SimTime, bool)> {
    let horizon_s = horizon.as_secs();
    let max_rate = rate.majorant(horizon_s);
    let mut candidates = Vec::new();
    if max_rate <= 0.0 || horizon_s <= 0.0 {
        return candidates;
    }
    let mut rng = simcluster::rng::substream(seed, id, stream);
    let mut t = 0.0f64;
    loop {
        // Exponential inter-arrival at the majorant rate; 1 - u is in (0, 1]
        // so the logarithm is finite.
        let u: f64 = rng.gen();
        t += -(1.0 - u).ln() / max_rate;
        if t >= horizon_s {
            return candidates;
        }
        let accept: f64 = rng.gen();
        let accepted = accept * max_rate < rate.rate(t);
        candidates.push((SimTime::from_secs(t), accepted));
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn erfc_matches_reference_values() {
        // erfc(0) = 1, erfc(±∞) → 0 / 2, plus a few table values.
        assert!((erfc(0.0) - 1.0).abs() < 1e-7);
        assert!((erfc(1.0) - 0.157_299_207).abs() < 1e-6);
        assert!((erfc(-1.0) - 1.842_700_793).abs() < 1e-6);
        assert!((erfc(2.0) - 0.004_677_735).abs() < 1e-7);
        assert!(erfc(6.0) < 1e-15);
    }

    #[test]
    fn weibull_shape_one_is_the_constant_hazard() {
        let r = FailureRate::Weibull {
            shape: 1.0,
            scale_s: 2.0,
        };
        for t in [0.0, 0.5, 1.0, 10.0] {
            assert!((r.at(t, 10.0) - 0.5).abs() < 1e-12);
        }
        assert!((r.mean_events(10.0) - 5.0).abs() < 1e-12);
    }

    #[test]
    fn weibull_decreasing_hazard_is_bounded_by_its_floor() {
        let r = FailureRate::Weibull {
            shape: 0.7,
            scale_s: 1.0,
        };
        let m = r.max_rate(100.0);
        assert!(m.is_finite() && m > 0.0);
        for i in 0..=1000 {
            let t = 100.0 * (i as f64) / 1000.0;
            assert!(r.at(t, 100.0) <= m + 1e-12, "t={t}");
        }
        // Hazard decreases past the floor.
        assert!(r.at(0.5, 100.0) > r.at(5.0, 100.0));
    }

    #[test]
    fn lognormal_hazard_is_unimodal_and_bounded() {
        let r = FailureRate::LogNormal {
            mu: 0.0,
            sigma: 1.0,
        };
        let m = r.max_rate(50.0);
        assert!(m.is_finite() && m > 0.0);
        assert_eq!(r.at(0.0, 50.0), 0.0, "hazard vanishes at t = 0");
        for i in 1..=2000 {
            let t = 50.0 * (i as f64) / 2000.0;
            assert!(r.at(t, 50.0) <= m, "t={t}");
        }
    }

    #[test]
    fn mean_events_matches_closed_forms() {
        let h = 10.0;
        assert!((FailureRate::Constant(0.5).mean_events(h) - 5.0).abs() < 1e-12);
        let ramp = FailureRate::Ramp {
            start: 0.0,
            end: 2.0,
        };
        assert!((ramp.mean_events(h) - 10.0).abs() < 1e-12);
        let burst = FailureRate::Burst {
            base: 0.1,
            peak: 2.0,
            center: 0.5,
            width: 0.2,
        };
        // 0.1 * 10 * 0.8 + 2.0 * 10 * 0.2 = 0.8 + 4.0
        assert!((burst.mean_events(h) - 4.8).abs() < 1e-12);
        // LogNormal: Λ(median) = −ln ½.
        let ln = FailureRate::lognormal_hpc(5.0);
        assert!((ln.mean_events(5.0) - std::f64::consts::LN_2).abs() < 1e-6);
        // Weibull fitted: Λ(mtbf) = 1 up to the tiny floor correction.
        let wb = FailureRate::weibull_hpc(5.0);
        assert!((wb.mean_events(5.0) - 1.0).abs() < 0.01);
    }

    #[test]
    fn fitted_constructors_use_the_published_shapes() {
        assert_eq!(
            FailureRate::weibull_hpc(3600.0),
            FailureRate::Weibull {
                shape: 0.7,
                scale_s: 3600.0
            }
        );
        let FailureRate::LogNormal { mu, sigma } = FailureRate::lognormal_hpc(3600.0) else {
            panic!("lognormal_hpc must be LogNormal");
        };
        assert!((mu - 3600.0f64.ln()).abs() < 1e-12);
        assert_eq!(sigma, 1.0);
    }

    #[test]
    fn negative_number_labels_round_trip() {
        let r = FailureRate::LogNormal {
            mu: -0.5,
            sigma: 1.25,
        };
        assert_eq!(r.label(), "lognormal--0.5-1.25");
        assert_eq!(FailureRate::parse(&r.label()), Some(r));
    }

    #[test]
    fn parse_is_whitespace_and_case_lenient() {
        assert_eq!(
            FailureRate::parse("  Const-0.5 "),
            Some(FailureRate::Constant(0.5))
        );
        assert_eq!(
            FailureRate::parse("WEIBULL-0.7-2"),
            Some(FailureRate::Weibull {
                shape: 0.7,
                scale_s: 2.0
            })
        );
        assert_eq!(FailureRate::parse("const-"), None);
        assert_eq!(FailureRate::parse("const--"), None);
        assert_eq!(FailureRate::parse("weibull-1"), None);
    }
}
