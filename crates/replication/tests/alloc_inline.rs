//! Allocation budget of *small* logical sends: the inline-payload path.
//!
//! Payloads that fit [`bytes::Bytes::INLINE_CAP`] (64 bytes) are carried
//! inline in the envelope — no heap, no arena, nothing for the allocator to
//! do per message.  One byte over the cap and the receiver must materialize
//! a real vector, so the boundary is observable from allocation counts
//! alone.  This binary (separate from `alloc_counting.rs` so each test
//! binary owns its `#[global_allocator]` and threshold) measures the
//! *marginal* allocation cost of a logical send by differencing two runs
//! that differ only in message count — cluster setup, replica spawning and
//! warmup cancel out exactly.
//!
//! Note the frame itself never hits the global allocator in either case:
//! sub-threshold frames are inline and larger frames come from the
//! thread-local arena (mmap-backed).  What the boundary case counts is the
//! receiver-side vector the payload is deserialized into.

use replication::ReplicatedComm;
use simmpi::{run_cluster, ClusterConfig};

#[global_allocator]
static ALLOC: alloc_counter::CountingAllocator = alloc_counter::CountingAllocator;

const DEGREE: usize = 2;

/// Runs a 2-logical-rank × [`DEGREE`]-replica cluster in which logical rank
/// 0 streams `sends` messages of `elems` f64s to logical rank 1, and returns
/// the whole run's large-allocation count.
fn large_allocs(elems: usize, sends: u64) -> u64 {
    let data: Vec<f64> = (0..elems).map(|i| i as f64 * 0.5).collect();
    let config = ClusterConfig::ideal(2 * DEGREE);
    let before = alloc_counter::snapshot();
    let report = run_cluster(&config, move |proc| {
        let world = proc.world();
        let rcomm = ReplicatedComm::new(world, DEGREE).unwrap();
        if rcomm.logical_rank() == 0 {
            for _ in 0..sends {
                rcomm.send_logical(&data, 1, 9).unwrap();
            }
        } else {
            for _ in 0..sends {
                let v: Vec<f64> = rcomm.recv_logical(0, 9).unwrap();
                assert_eq!(v.len(), elems);
            }
        }
    });
    assert!(!report.any_panicked());
    alloc_counter::since(&before).large_allocs
}

/// Marginal large allocations per extra logical send, isolated by
/// differencing a short and a long run of the same cluster shape.
fn marginal_allocs_per_send(elems: usize) -> f64 {
    const SHORT: u64 = 8;
    const LONG: u64 = 72;
    let short = large_allocs(elems, SHORT);
    let long = large_allocs(elems, LONG);
    long.saturating_sub(short) as f64 / (LONG - SHORT) as f64
}

#[test]
fn inline_threshold_separates_free_sends_from_allocating_sends() {
    // Count allocations of at least 65 bytes: one byte above the inline
    // cap, so an inline body can never trip it while the smallest
    // spilled-payload vector always does.
    const INLINE_CAP: usize = 64; // bytes::Bytes::INLINE_CAP
    assert_eq!(INLINE_CAP % std::mem::size_of::<f64>(), 0);
    alloc_counter::set_large_threshold(INLINE_CAP + 1);

    // Sub-threshold: an exactly-64-byte body rides inline end to end.  The
    // steady-state fabric is allocation-free — inline envelope on the wire,
    // inline deserialization on the receiver — so the marginal cost of a
    // send is (near) zero.  A small slack absorbs amortized container
    // growth (mailbox deques and the like).
    let inline = marginal_allocs_per_send(INLINE_CAP / 8);
    assert!(
        inline <= 0.5,
        "sub-threshold sends should be allocation-free, measured {inline:.2} \
         large allocations per send"
    );

    // Threshold boundary: one element more (72-byte body) spills.  The
    // frame still bypasses the global allocator (arena), but each consuming
    // receiver replica now materializes a payload-sized vector, so the
    // marginal cost jumps to at least one allocation per logical send.
    let spilled = marginal_allocs_per_send(INLINE_CAP / 8 + 1);
    assert!(
        spilled >= 1.0,
        "a just-over-threshold payload must allocate on the receive side, \
         measured {spilled:.2} large allocations per send"
    );
}
