//! Tests for Poisson failure-trace generation: determinism, rate
//! monotonicity, and the bounds guaranteed by inhomogeneous thinning.

use replication::failure::{majorant_candidates, sample_failure_trace};
use replication::{FailureInjector, FailureRate, ProtocolPoint};
use simcluster::SimTime;

const HORIZON: f64 = 100.0;

fn trace(rate: FailureRate, seed: u64, rank: usize) -> Vec<SimTime> {
    sample_failure_trace(rate, SimTime::from_secs(HORIZON), seed, rank)
}

#[test]
fn trace_is_replica_identical_for_a_given_seed() {
    // Every replica derives the trace independently; the result must be a
    // pure function of (rate, horizon, seed, rank).
    for rank in 0..8 {
        let a = trace(FailureRate::Constant(0.2), 42, rank);
        let b = trace(FailureRate::Constant(0.2), 42, rank);
        assert_eq!(a, b, "rank {rank}: trace must be deterministic");
    }
}

#[test]
fn different_seeds_and_ranks_give_different_traces() {
    let base = trace(FailureRate::Constant(1.0), 1, 0);
    assert_ne!(base, trace(FailureRate::Constant(1.0), 2, 0));
    assert_ne!(base, trace(FailureRate::Constant(1.0), 1, 1));
}

#[test]
fn times_are_sorted_strictly_increasing_and_inside_the_horizon() {
    for seed in 0..20 {
        let t = trace(FailureRate::Constant(0.5), seed, 3);
        for w in t.windows(2) {
            assert!(w[0] < w[1], "times must be strictly increasing");
        }
        for x in &t {
            assert!(x.as_secs() < HORIZON, "times must lie inside the horizon");
            assert!(x.as_secs() > 0.0);
        }
    }
}

#[test]
fn rate_monotonicity_higher_rate_means_more_crashes() {
    // Averaged over many independent streams, a 5x rate must produce
    // (roughly 5x) more arrivals.  The comparison is deterministic because
    // the seeds are fixed.
    let count = |rate: f64| -> usize {
        (0..200)
            .map(|seed| trace(FailureRate::Constant(rate), seed, 0).len())
            .sum()
    };
    let slow = count(0.05);
    let fast = count(0.25);
    assert!(
        fast > 3 * slow,
        "rate 0.25 must produce far more crashes than 0.05 (got {fast} vs {slow})"
    );
    // Sanity-check the absolute scale: E[count] = rate * horizon * streams.
    let expected_fast = 0.25 * HORIZON * 200.0;
    assert!(
        (fast as f64) > 0.7 * expected_fast && (fast as f64) < 1.3 * expected_fast,
        "homogeneous arrival count {fast} far from expectation {expected_fast}"
    );
}

#[test]
fn zero_rate_and_zero_horizon_yield_empty_traces() {
    assert!(trace(FailureRate::Constant(0.0), 7, 0).is_empty());
    assert!(sample_failure_trace(FailureRate::Constant(10.0), SimTime::ZERO, 7, 0).is_empty());
    assert!(trace(
        FailureRate::Ramp {
            start: 0.0,
            end: 0.0
        },
        7,
        0
    )
    .is_empty());
}

#[test]
fn thinning_keeps_a_subset_of_the_majorant_candidates() {
    // An inhomogeneous trace is produced by thinning a homogeneous process
    // at the majorant rate; every accepted time must be one of the
    // candidates, in order.
    let rate = FailureRate::Ramp {
        start: 0.0,
        end: 1.0,
    };
    for seed in 0..10 {
        let accepted = trace(rate, seed, 2);
        let candidates = majorant_candidates(rate, SimTime::from_secs(HORIZON), seed, 2);
        assert!(accepted.len() <= candidates.len());
        let mut it = candidates.iter();
        for a in &accepted {
            assert!(
                it.any(|c| c == a),
                "accepted time {a} is not a majorant candidate (seed {seed})"
            );
        }
    }
}

#[test]
fn thinning_respects_the_intensity_profile() {
    // A burst process concentrates arrivals inside its window: with base 0
    // every arrival must fall inside the burst.
    let rate = FailureRate::Burst {
        base: 0.0,
        peak: 2.0,
        center: 0.5,
        width: 0.2,
    };
    let mut total = 0usize;
    for seed in 0..50 {
        for x in trace(rate, seed, 0) {
            let frac = x.as_secs() / HORIZON;
            assert!(
                (0.4..=0.6).contains(&frac),
                "arrival at fraction {frac} outside the burst window"
            );
            total += 1;
        }
    }
    assert!(total > 0, "the burst window must produce arrivals");
    // Expected arrivals per stream: peak * width * horizon = 2*0.2*100 = 40.
    let expected = 2.0 * 0.2 * HORIZON * 50.0;
    assert!(
        (total as f64) > 0.7 * expected && (total as f64) < 1.3 * expected,
        "burst arrival count {total} far from expectation {expected}"
    );
}

#[test]
fn ramp_rate_evaluates_linearly_and_majorant_bounds_it() {
    let r = FailureRate::Ramp {
        start: 1.0,
        end: 3.0,
    };
    assert_eq!(r.at(0.0, 10.0), 1.0);
    assert_eq!(r.at(5.0, 10.0), 2.0);
    assert_eq!(r.at(10.0, 10.0), 3.0);
    for i in 0..=10 {
        let t = i as f64;
        assert!(r.at(t, 10.0) <= r.max_rate(10.0) + 1e-12);
    }
    // Negative rates clamp to zero.
    assert_eq!(FailureRate::Constant(-1.0).at(0.0, 1.0), 0.0);
    assert_eq!(FailureRate::Constant(-1.0).max_rate(1.0), 0.0);
}

#[test]
fn rate_labels_round_trip() {
    let rates = [
        FailureRate::Constant(0.5),
        FailureRate::Ramp {
            start: 0.1,
            end: 2.0,
        },
        FailureRate::Burst {
            base: 0.1,
            peak: 4.0,
            center: 0.5,
            width: 0.2,
        },
    ];
    for r in rates {
        assert_eq!(FailureRate::parse(&r.label()), Some(r), "{}", r.label());
    }
    assert_eq!(FailureRate::parse("nonsense"), None);
    assert_eq!(FailureRate::parse("const-x"), None);
    assert_eq!(FailureRate::parse("ramp-1"), None);
}

#[test]
fn timed_injection_fires_at_the_first_point_past_the_scheduled_time() {
    let inj = FailureInjector::none();
    inj.arm_at(3, SimTime::from_secs(5.0));
    let point = ProtocolPoint::SectionEnter { section: 0 };
    // Not due yet.
    assert!(!inj.should_fail_at(3, point, SimTime::from_secs(4.9)));
    // Wrong rank never fires.
    assert!(!inj.should_fail_at(2, point, SimTime::from_secs(100.0)));
    // Due: fires exactly once and records the firing.
    assert!(inj.should_fail_at(3, point, SimTime::from_secs(6.0)));
    assert!(!inj.should_fail_at(3, point, SimTime::from_secs(7.0)));
    let fired = inj.fired_timed();
    assert_eq!(fired.len(), 1);
    assert_eq!(fired[0].rank, 3);
    assert_eq!(fired[0].scheduled, SimTime::from_secs(5.0));
    assert_eq!(fired[0].fired_at, SimTime::from_secs(6.0));
    assert_eq!(fired[0].point, point);
    assert_eq!(inj.pending(), 0);
}

#[test]
fn arming_a_trace_consumes_all_entries_of_the_rank_on_the_first_fire() {
    let inj = FailureInjector::none();
    let times = [
        SimTime::from_secs(1.0),
        SimTime::from_secs(2.0),
        SimTime::from_secs(3.0),
    ];
    inj.arm_trace(0, &times);
    inj.arm_at(1, SimTime::from_secs(9.0));
    assert_eq!(inj.pending(), 4);
    // Crash-stop: a fire consumes every timed entry of the rank; the
    // earliest due entry is the one recorded.
    let point = ProtocolPoint::SectionExit { section: 1 };
    assert!(inj.should_fail_at(0, point, SimTime::from_secs(2.5)));
    assert_eq!(inj.fired_timed()[0].scheduled, SimTime::from_secs(1.0));
    assert_eq!(inj.pending(), 1, "only rank 1's entry remains");
    assert!(!inj.should_fail_at(0, point, SimTime::from_secs(100.0)));
}

// ---------------------------------------------------------------------------
// Statistical property suite: empirical traces vs analytic intensities.
// Every test runs at fixed seeds, so the assertions are deterministic even
// though they check distributional properties.
// ---------------------------------------------------------------------------

use proptest::prelude::*;
use replication::rate::{majorant_candidates_fn, sample_trace_fn, RateFn};

/// Aggregate arrival count of `rate` over `streams` fixed-seed traces.
fn total_count(rate: FailureRate, horizon: f64, streams: u64) -> usize {
    (0..streams)
        .map(|seed| sample_failure_trace(rate, SimTime::from_secs(horizon), seed, 0).len())
        .sum()
}

/// Asserts the empirical aggregate count is within `tol` (relative) of the
/// analytic expectation `mean_events * streams`.
fn assert_count_matches(rate: FailureRate, horizon: f64, streams: u64, tol: f64) {
    let total = total_count(rate, horizon, streams) as f64;
    let expected = rate.mean_events(horizon) * streams as f64;
    assert!(
        total > (1.0 - tol) * expected && total < (1.0 + tol) * expected,
        "{}: empirical count {total} vs analytic {expected} (tol {tol})",
        rate.label()
    );
}

#[test]
fn constant_mean_inter_arrival_matches_the_rate() {
    // For a homogeneous process the inter-arrival times are Exp(rate):
    // the empirical mean over many fixed-seed streams must be ~1/rate.
    let rate = 2.0;
    let mut gaps = Vec::new();
    for seed in 0..100 {
        let t = trace(FailureRate::Constant(rate), seed, 0);
        let mut prev = 0.0;
        for x in &t {
            gaps.push(x.as_secs() - prev);
            prev = x.as_secs();
        }
    }
    assert!(gaps.len() > 10_000, "enough arrivals for a stable mean");
    let mean = gaps.iter().sum::<f64>() / gaps.len() as f64;
    let expected = 1.0 / rate;
    assert!(
        (mean - expected).abs() < 0.05 * expected,
        "mean inter-arrival {mean} vs 1/rate {expected}"
    );
}

#[test]
fn empirical_counts_match_the_analytic_mean_for_every_variant() {
    // The thinning sampler must reproduce ∫λ for each intensity family
    // (mean_events accounts for the Weibull floor clamp exactly).
    assert_count_matches(FailureRate::Constant(0.8), HORIZON, 200, 0.1);
    assert_count_matches(FailureRate::weibull_hpc(HORIZON), HORIZON, 300, 0.1);
    assert_count_matches(
        FailureRate::Weibull {
            shape: 1.5,
            scale_s: HORIZON / 2.0,
        },
        HORIZON,
        200,
        0.1,
    );
    assert_count_matches(FailureRate::lognormal_hpc(HORIZON / 2.0), HORIZON, 300, 0.1);
    assert_count_matches(
        FailureRate::Ramp {
            start: 0.2,
            end: 1.0,
        },
        HORIZON,
        200,
        0.1,
    );
}

#[test]
fn expected_event_counts_are_monotone_in_rate_and_horizon() {
    // Analytic monotonicity on a deterministic grid...
    let rates = [
        FailureRate::Constant(0.5),
        FailureRate::weibull_hpc(10.0),
        FailureRate::lognormal_hpc(10.0),
        FailureRate::Ramp {
            start: 0.5,
            end: 1.5,
        },
    ];
    for r in rates {
        let mut prev = 0.0;
        for i in 1..=20 {
            let m = r.mean_events(5.0 * i as f64);
            assert!(
                m >= prev,
                "{}: mean_events must grow with horizon",
                r.label()
            );
            prev = m;
        }
    }
    // ...and scaling the intensity scales the empirical aggregate too.
    let slow = total_count(FailureRate::weibull_hpc(4.0 * HORIZON), HORIZON, 200);
    let fast = total_count(FailureRate::weibull_hpc(HORIZON / 4.0), HORIZON, 200);
    assert!(
        fast > 2 * slow,
        "shorter MTBF must produce more failures ({fast} vs {slow})"
    );
}

#[test]
fn constant_traces_extend_prefix_stable_with_the_horizon() {
    // A homogeneous majorant does not depend on the horizon, so extending
    // the observation window only appends arrivals — the earlier trace is a
    // structural prefix of the later one (rule-5 stability under horizon
    // growth).
    for seed in 0..20 {
        let short = trace_h(FailureRate::Constant(0.5), 40.0, seed);
        let long = trace_h(FailureRate::Constant(0.5), 120.0, seed);
        assert!(long.len() >= short.len());
        assert_eq!(&long[..short.len()], &short[..], "seed {seed}");
    }
}

fn trace_h(rate: FailureRate, horizon: f64, seed: u64) -> Vec<SimTime> {
    sample_failure_trace(rate, SimTime::from_secs(horizon), seed, 0)
}

/// A custom user-supplied intensity the built-in family cannot express: a
/// triangle wave with explicit majorant, exercising the `RateFn` surface.
struct TriangleWave {
    period: f64,
    peak: f64,
}

impl RateFn for TriangleWave {
    fn rate(&self, t: f64) -> f64 {
        let phase = (t / self.period).fract();
        let tri = 1.0 - (2.0 * phase - 1.0).abs();
        self.peak * tri
    }

    fn majorant(&self, _horizon: f64) -> f64 {
        self.peak
    }
}

#[test]
fn custom_rate_fn_traces_obey_the_thinning_invariants() {
    let wave = TriangleWave {
        period: 10.0,
        peak: 1.5,
    };
    let horizon = SimTime::from_secs(HORIZON);
    let mut accepted_total = 0usize;
    for seed in 0..50 {
        let accepted = sample_trace_fn(&wave, horizon, seed, 1);
        let candidates = majorant_candidates_fn(&wave, horizon, seed, 1);
        // Thinning subset: every accepted time is a candidate, in order.
        assert!(accepted.len() <= candidates.len());
        let mut it = candidates.iter();
        for a in &accepted {
            assert!(it.any(|c| c == a), "accepted {a} not a candidate");
        }
        // Majorant bound: the candidate process runs at rate `peak`, so its
        // count is Poisson(peak * horizon); check a generous upper bound,
        // and that λ never exceeds the declared majorant where sampled.
        for c in &candidates {
            assert!(wave.rate(c.as_secs()) <= wave.majorant(HORIZON) + 1e-12);
        }
        accepted_total += accepted.len();
    }
    // ∫λ over a whole number of periods is peak/2 per second.
    let expected = 50.0 * wave.peak / 2.0 * HORIZON;
    assert!(
        (accepted_total as f64) > 0.85 * expected && (accepted_total as f64) < 1.15 * expected,
        "triangle-wave count {accepted_total} vs expectation {expected}"
    );
    // Determinism (rule 5) holds for custom rate functions too.
    assert_eq!(
        sample_trace_fn(&wave, horizon, 7, 3),
        sample_trace_fn(&wave, horizon, 7, 3)
    );
}

proptest! {
    #[test]
    fn every_rate_label_round_trips_with_mangled_input(
        variant in 0usize..5,
        a in -2.0f64..8.0,
        b in 0.01f64..8.0,
        c in 0.0f64..1.0,
        d in 0.01f64..0.5,
        pad_left in 0usize..3,
        pad_right in 0usize..3,
        upper in proptest::prelude::any::<bool>(),
    ) {
        let rate = match variant {
            0 => FailureRate::Constant(a.abs()),
            1 => FailureRate::Ramp { start: a.abs(), end: b },
            2 => FailureRate::Burst { base: a.abs(), peak: b, center: c, width: d },
            3 => FailureRate::Weibull { shape: b, scale_s: b + c },
            _ => FailureRate::LogNormal { mu: a, sigma: b },
        };
        // Canonical label round-trips...
        prop_assert_eq!(FailureRate::parse(&rate.label()), Some(rate));
        // ...and so does a whitespace-padded, case-mangled rendering.
        let mut mangled = rate.label();
        if upper {
            mangled = mangled.to_ascii_uppercase();
        }
        let mangled = format!(
            "{}{}{}",
            " ".repeat(pad_left),
            mangled,
            "\t".repeat(pad_right)
        );
        prop_assert_eq!(FailureRate::parse(&mangled), Some(rate));
    }
}
