//! Allocation-budget regression tests for the zero-copy payload path.
//!
//! The replicated channel sends one copy of every logical message to each of
//! the `degree` replicas of the destination, and (under send-determinism)
//! every replica of the *sender* emits the stream too.  Before the
//! zero-copy rewrite each copy re-serialized the payload, so one logical
//! send cost O(degree) payload-sized allocations per sender; now the frame
//! is built once and fanned out by reference count, so the cost is O(1) per
//! sender regardless of the replication degree.
//!
//! The test installs a counting global allocator and counts *payload-sized*
//! allocations (at least half the payload) across whole replicated runs at
//! degree 2 and degree 4.  The budget would be blown by a factor of ~4 by
//! the old copy-per-destination path.

use replication::ReplicatedComm;
use simmpi::{run_cluster, ClusterConfig};

#[global_allocator]
static ALLOC: alloc_counter::CountingAllocator = alloc_counter::CountingAllocator;

/// Elements per message; 128 KiB of f64 — large enough that payload-sized
/// allocations stand out from all runtime bookkeeping.
const PAYLOAD_ELEMS: usize = 16 * 1024;
const PAYLOAD_BYTES: usize = PAYLOAD_ELEMS * std::mem::size_of::<f64>();
/// Logical messages sent per sender replica.
const SENDS: u64 = 4;

/// Runs one replicated cluster (2 logical ranks x `degree` replicas) where
/// logical rank 0 streams `SENDS` messages to logical rank 1, and returns
/// the number of payload-sized allocations the whole run performed.
fn large_allocs_for_degree(degree: usize) -> u64 {
    let data: Vec<f64> = (0..PAYLOAD_ELEMS).map(|i| i as f64).collect();
    let config = ClusterConfig::ideal(2 * degree);
    alloc_counter::set_large_threshold(PAYLOAD_BYTES / 2);
    let before = alloc_counter::snapshot();
    let report = run_cluster(&config, move |proc| {
        let world = proc.world();
        let rcomm = ReplicatedComm::new(world, degree).unwrap();
        if rcomm.logical_rank() == 0 {
            for _ in 0..SENDS {
                rcomm.send_logical(&data, 1, 5).unwrap();
            }
        } else {
            for _ in 0..SENDS {
                let v: Vec<f64> = rcomm.recv_logical(0, 5).unwrap();
                assert_eq!(v.len(), PAYLOAD_ELEMS);
            }
        }
    });
    assert!(!report.any_panicked());
    alloc_counter::since(&before).large_allocs
}

#[test]
fn logical_send_fan_out_performs_o1_payload_allocations() {
    // Per logical send, the zero-copy path allocates: 1 framed buffer on the
    // sender (serialized once, shared by reference count across the fan-out)
    // and 1 deserialized vector on each receiver that consumes the stream.
    // Every replica of the sender emits the stream and every replica of the
    // destination consumes one stream, so the whole run budget is
    //   degree * SENDS * (sender allocs + receiver allocs).
    // The old path added `degree` serialization copies per send, i.e.
    // roughly `degree * SENDS * degree` extra large allocations.
    let counts: Vec<(usize, u64)> = [2usize, 4]
        .into_iter()
        .map(|d| (d, large_allocs_for_degree(d)))
        .collect();
    for &(degree, large) in &counts {
        let per_send_per_replica = large as f64 / (degree as u64 * SENDS) as f64;
        assert!(
            per_send_per_replica <= 3.5,
            "degree {degree}: {per_send_per_replica:.1} payload-sized allocations per logical \
             send per replica ({large} total) — the fan-out is copying per destination again"
        );
    }
    // O(1), not O(r): doubling the degree must not grow the per-replica
    // allocation count.  (With copy-per-destination the degree-4 run would
    // roughly double the per-replica count of the degree-2 run.)
    let (_, at2) = counts[0];
    let (_, at4) = counts[1];
    let per2 = at2 as f64 / (2.0 * SENDS as f64);
    let per4 = at4 as f64 / (4.0 * SENDS as f64);
    assert!(
        per4 <= per2 * 1.5 + 0.5,
        "per-replica payload allocations grew with the degree: {per2:.2} at degree 2 vs \
         {per4:.2} at degree 4"
    );
}
