//! Correlated failure-domain tests: one event kills exactly the co-located
//! rank group, and replica placement decides whether the job survives it.

use replication::{CorrelatedPlan, FailureDomain, FailureRate};
use simcluster::{SimTime, Topology};

/// A plan hot enough that every group fires within the horizon (constant
/// rate 50/s over 10 s: the probability of an empty group trace is ~e^-500).
fn hot_plan(domain: FailureDomain) -> CorrelatedPlan {
    CorrelatedPlan::new(
        domain,
        FailureRate::Constant(50.0),
        SimTime::from_secs(10.0),
    )
}

#[test]
fn a_node_event_kills_exactly_ranks_on_that_node() {
    let topo = Topology::replica_disjoint(8, 2, 4); // 16 ranks on 4 nodes
    let plan = hot_plan(FailureDomain::Node);
    let crashes = plan.crashes(&topo, 42);
    // Every group fired; group the crash list back by node and compare
    // against the topology's own membership view.
    for node in 0..topo.num_nodes() {
        let killed: Vec<usize> = crashes
            .iter()
            .filter(|&&(r, _)| topo.node_of(r) == node)
            .map(|&(r, _)| r)
            .collect();
        assert_eq!(
            killed,
            topo.ranks_on(node),
            "node {node}: event must kill exactly the co-located ranks"
        );
    }
    // No rank appears twice (one fatal event per crash-stop rank).
    let mut ranks: Vec<usize> = crashes.iter().map(|&(r, _)| r).collect();
    ranks.sort_unstable();
    ranks.dedup();
    assert_eq!(ranks.len(), crashes.len());
}

#[test]
fn rack_events_kill_every_node_of_the_rack() {
    let topo = Topology::block(16, 2); // 8 nodes of 2 ranks
    let domain = FailureDomain::Rack { nodes_per_rack: 4 };
    let crashes = hot_plan(domain).crashes(&topo, 42);
    for rack in 0..topo.num_racks(4) {
        let killed: Vec<usize> = crashes
            .iter()
            .filter(|&&(r, _)| topo.rack_of(topo.node_of(r), 4) == rack)
            .map(|&(r, _)| r)
            .collect();
        assert_eq!(killed, topo.ranks_on_rack(rack, 4));
        // All at the same instant: the rack's first event.
        let times: Vec<SimTime> = crashes
            .iter()
            .filter(|&&(r, _)| topo.rack_of(topo.node_of(r), 4) == rack)
            .map(|&(_, t)| t)
            .collect();
        assert!(times.windows(2).all(|w| w[0] == w[1]));
    }
}

/// True if, after removing `lost` ranks, every logical rank of a
/// degree-`degree` replicated job of `num_logical` logical processes still
/// has at least one live replica (physical rank = replica * num_logical +
/// logical).
fn all_logical_survive(num_logical: usize, degree: usize, lost: &[usize]) -> bool {
    (0..num_logical).all(|logical| {
        (0..degree).any(|replica| !lost.contains(&(replica * num_logical + logical)))
    })
}

#[test]
fn replica_disjoint_placement_survives_any_single_node_loss() {
    let (num_logical, degree, cores) = (8, 2, 4);
    let topo = Topology::replica_disjoint(num_logical, degree, cores);
    for node in 0..topo.num_nodes() {
        let lost = topo.ranks_on(node);
        assert!(
            all_logical_survive(num_logical, degree, &lost),
            "losing node {node} must leave a replica of every logical rank"
        );
    }
}

#[test]
fn single_node_placement_dies_to_one_node_event() {
    let (num_logical, degree) = (8, 2);
    let topo = Topology::single_node(num_logical * degree);
    let lost = topo.ranks_on(0);
    assert_eq!(lost.len(), topo.num_procs(), "one node hosts everything");
    assert!(
        !all_logical_survive(num_logical, degree, &lost),
        "co-located replicas cannot survive their shared node"
    );
    // The correlated plan reaches the same verdict end to end: a node
    // event under single-node placement schedules every rank to crash.
    let crashes = hot_plan(FailureDomain::Node).crashes(&topo, 42);
    assert_eq!(crashes.len(), topo.num_procs());
}

#[test]
fn crash_expansion_is_deterministic_and_seed_sensitive() {
    let topo = Topology::replica_disjoint(8, 2, 4);
    let plan = CorrelatedPlan::new(
        FailureDomain::Node,
        FailureRate::weibull_hpc(5.0),
        SimTime::from_secs(10.0),
    );
    assert_eq!(plan.crashes(&topo, 42), plan.crashes(&topo, 42));
    assert_ne!(
        plan.crashes(&topo, 42),
        plan.crashes(&topo, 43),
        "different seeds must draw different correlated event times"
    );
}
