//! Integration tests for the active-replication substrate.

use replication::{ExecutionMode, FailureInjector, ProtocolPoint, ReplicatedComm, ReplicatedEnv};
use simmpi::{run_cluster, ClusterConfig};

#[test]
fn replica_and_logical_communicators_have_expected_shape() {
    let report = run_cluster(&ClusterConfig::ideal(8), |proc| {
        let rcomm = ReplicatedComm::new(proc.world(), 2).unwrap();
        (
            rcomm.num_logical(),
            rcomm.degree(),
            rcomm.logical_rank(),
            rcomm.replica_id(),
            rcomm.logical_comm().size(),
            rcomm.logical_comm().rank(),
            rcomm.replica_comm().size(),
            rcomm.replica_comm().rank(),
        )
    });
    for (rank, r) in report.unwrap_results().into_iter().enumerate() {
        let (num_logical, degree, logical, replica, lsize, lrank, rsize, rrank) = r;
        assert_eq!(num_logical, 4);
        assert_eq!(degree, 2);
        assert_eq!(logical, rank % 4);
        assert_eq!(replica, rank / 4);
        assert_eq!(lsize, 4);
        assert_eq!(lrank, logical);
        assert_eq!(rsize, 2);
        assert_eq!(rrank, replica);
    }
}

#[test]
fn degree_one_behaves_like_native_mpi() {
    let report = run_cluster(&ClusterConfig::ideal(3), |proc| {
        let rcomm = ReplicatedComm::new(proc.world(), 1).unwrap();
        assert_eq!(rcomm.num_logical(), 3);
        assert_eq!(rcomm.replica_id(), 0);
        rcomm.logical_allreduce_sum_f64(1.0).unwrap()
    });
    for v in report.unwrap_results() {
        assert_eq!(v, 3.0);
    }
}

#[test]
fn mirrored_logical_ring_exchange() {
    // Each logical process sends its logical rank to the next logical rank.
    // Both replica sets must observe the same values.
    let report = run_cluster(&ClusterConfig::ideal(8), |proc| {
        let rcomm = ReplicatedComm::new(proc.world(), 2).unwrap();
        let l = rcomm.logical_rank();
        let n = rcomm.num_logical();
        let next = (l + 1) % n;
        let prev = (l + n - 1) % n;
        rcomm.send_logical(&[l as f64], next, 11).unwrap();
        let got: Vec<f64> = rcomm.recv_logical(prev, 11).unwrap();
        got[0]
    });
    for (rank, v) in report.unwrap_results().into_iter().enumerate() {
        let logical = rank % 4;
        let prev = (logical + 3) % 4;
        assert_eq!(v, prev as f64);
    }
}

#[test]
fn logical_allreduce_agrees_across_replica_sets() {
    let report = run_cluster(&ClusterConfig::ideal(12), |proc| {
        let rcomm = ReplicatedComm::new(proc.world(), 2).unwrap();
        rcomm
            .logical_allreduce_sum_f64((rcomm.logical_rank() + 1) as f64)
            .unwrap()
    });
    // 6 logical processes: sum = 1+2+..+6 = 21, on every physical process.
    for v in report.unwrap_results() {
        assert_eq!(v, 21.0);
    }
}

#[test]
fn logical_bcast_and_barrier() {
    let report = run_cluster(&ClusterConfig::ideal(6), |proc| {
        let rcomm = ReplicatedComm::new(proc.world(), 2).unwrap();
        rcomm.logical_barrier().unwrap();
        let mut data = if rcomm.logical_rank() == 0 {
            vec![7.5f64, 8.5]
        } else {
            vec![0.0; 2]
        };
        rcomm.logical_bcast(&mut data, 0).unwrap();
        data
    });
    for v in report.unwrap_results() {
        assert_eq!(v, vec![7.5, 8.5]);
    }
}

#[test]
fn replica_channel_carries_updates() {
    // The intra-parallelization runtime ships task updates over the replica
    // communicator; check the two replicas of each logical process can talk.
    let report = run_cluster(&ClusterConfig::ideal(4), |proc| {
        let rcomm = ReplicatedComm::new(proc.world(), 2).unwrap();
        let rc = rcomm.replica_comm();
        let peer = 1 - rcomm.replica_id();
        rc.send(
            &[rcomm.logical_rank() as i64 * 100 + rcomm.replica_id() as i64],
            peer,
            3,
        )
        .unwrap();
        rc.recv::<i64>(peer, 3).unwrap()[0]
    });
    let results = report.unwrap_results();
    // Physical 0 (logical 0, replica 0) talks to physical 2 (logical 0, replica 1).
    assert_eq!(results[0], 1);
    assert_eq!(results[2], 0);
    assert_eq!(results[1], 101);
    assert_eq!(results[3], 100);
}

#[test]
fn failover_covers_orphaned_receiver_after_quiescent_failure() {
    // 2 logical processes, degree 2: physical 0,1 are replica set 0 and
    // physical 2,3 are replica set 1.  Physical 0 (replica 0 of logical 0)
    // crashes at a quiescent point; afterwards logical 0 -> logical 1
    // messages must still reach BOTH replicas of logical 1.
    let report = run_cluster(&ClusterConfig::ideal(4), |proc| {
        let injector = FailureInjector::none();
        injector.arm(0, ProtocolPoint::IterationStart { iteration: 1 });
        let env = ReplicatedEnv::new(
            proc.clone(),
            ExecutionMode::Replicated { degree: 2 },
            injector,
        )
        .unwrap();
        let rcomm = env.rcomm();
        let mut received = Vec::new();
        for iteration in 0..3u64 {
            if env.maybe_fail(ProtocolPoint::IterationStart {
                iteration: iteration as usize,
            }) {
                return received;
            }
            if env.logical_rank() == 0 {
                // After physical 0 crashes (iteration >= 1), only replica 1
                // of logical 0 (physical 2) keeps sending; it must cover for
                // the orphaned replica 0 of logical 1 (physical 1).
                rcomm.send_logical(&[iteration * 10], 1, 5).unwrap();
            } else {
                let v: Vec<u64> = rcomm.recv_logical(0, 5).unwrap();
                received.push(v[0]);
            }
        }
        received
    });
    // Physical 1 and physical 3 are the two replicas of logical 1; both must
    // have received all three messages despite the crash of physical 0.
    for rank in [1usize, 3] {
        let got = report.results[rank].as_ref().unwrap();
        assert_eq!(got, &vec![0, 10, 20], "physical rank {rank}");
    }
    assert_eq!(report.failures.len(), 1);
    assert_eq!(report.failures[0].rank, 0);
}

#[test]
fn env_exposes_mode_and_ranks() {
    let report = run_cluster(&ClusterConfig::ideal(4), |proc| {
        let env = ReplicatedEnv::without_failures(proc, ExecutionMode::IntraParallel { degree: 2 })
            .unwrap();
        (
            env.mode().label(),
            env.logical_rank(),
            env.replica_id(),
            env.num_logical(),
            env.physical_rank(),
            env.is_failed(),
        )
    });
    for (rank, (label, logical, replica, num_logical, physical, failed)) in
        report.unwrap_results().into_iter().enumerate()
    {
        assert_eq!(label, "intra");
        assert_eq!(logical, rank % 2);
        assert_eq!(replica, rank / 2);
        assert_eq!(num_logical, 2);
        assert_eq!(physical, rank);
        assert!(!failed);
    }
}

#[test]
fn invalid_degree_is_rejected() {
    let report = run_cluster(&ClusterConfig::ideal(3), |proc| {
        ReplicatedComm::new(proc.world(), 2).is_err()
    });
    assert!(report.unwrap_results().into_iter().all(|x| x));
}
