//! Collective operation tests across a range of communicator sizes
//! (including non-powers of two) and roots.

use simmpi::{run_cluster, ClusterConfig};

fn sizes() -> Vec<usize> {
    vec![1, 2, 3, 4, 5, 7, 8, 12, 16]
}

#[test]
fn barrier_completes_for_all_sizes() {
    for n in sizes() {
        let report = run_cluster(&ClusterConfig::ideal(n), |proc| {
            let world = proc.world();
            world.barrier().unwrap();
            world.barrier().unwrap();
            true
        });
        assert!(report.unwrap_results().into_iter().all(|x| x));
    }
}

#[test]
fn bcast_distributes_root_data_for_all_sizes_and_roots() {
    for n in sizes() {
        for root in [0, n / 2, n - 1] {
            let report = run_cluster(&ClusterConfig::ideal(n), |proc| {
                let world = proc.world();
                let mut data = if world.rank() == root {
                    vec![1.5f64, 2.5, 3.5, world.rank() as f64]
                } else {
                    vec![0.0; 4]
                };
                world.bcast(&mut data, root).unwrap();
                data
            });
            for data in report.unwrap_results() {
                assert_eq!(data, vec![1.5, 2.5, 3.5, root as f64], "n={n} root={root}");
            }
        }
    }
}

#[test]
fn reduce_sums_on_root_only() {
    for n in sizes() {
        let root = n - 1;
        let report = run_cluster(&ClusterConfig::ideal(n), |proc| {
            let world = proc.world();
            let contribution = vec![world.rank() as f64, 1.0];
            world.reduce(&contribution, root, |a, b| a + b).unwrap()
        });
        let results = report.unwrap_results();
        let expected_sum: f64 = (0..n).map(|r| r as f64).sum();
        for (rank, res) in results.into_iter().enumerate() {
            if rank == root {
                let v = res.expect("root must get the reduction");
                assert_eq!(v, vec![expected_sum, n as f64], "n={n}");
            } else {
                assert!(res.is_none(), "non-root rank {rank} must get None");
            }
        }
    }
}

#[test]
fn allreduce_sum_and_max() {
    for n in sizes() {
        let report = run_cluster(&ClusterConfig::ideal(n), |proc| {
            let world = proc.world();
            let sum = world.allreduce_sum_f64(world.rank() as f64 + 1.0).unwrap();
            let max = world.allreduce_max_f64(world.rank() as f64).unwrap();
            let counts = world.allreduce_sum_u64(2).unwrap();
            (sum, max, counts)
        });
        let expected_sum: f64 = (1..=n).map(|r| r as f64).sum();
        for (sum, max, counts) in report.unwrap_results() {
            assert_eq!(sum, expected_sum, "n={n}");
            assert_eq!(max, (n - 1) as f64);
            assert_eq!(counts, 2 * n as u64);
        }
    }
}

#[test]
fn allreduce_vector_elementwise() {
    let report = run_cluster(&ClusterConfig::ideal(5), |proc| {
        let world = proc.world();
        let mine = vec![world.rank() as i64, 10 * world.rank() as i64];
        world.allreduce(&mine, |a, b| a + b).unwrap()
    });
    for v in report.unwrap_results() {
        assert_eq!(v, vec![10, 100]);
    }
}

#[test]
fn gather_concatenates_in_rank_order() {
    for n in sizes() {
        let report = run_cluster(&ClusterConfig::ideal(n), |proc| {
            let world = proc.world();
            let mine = vec![world.rank() as u32; 2];
            world.gather(&mine, 0).unwrap()
        });
        let results = report.unwrap_results();
        let gathered = results[0].as_ref().expect("root gets data");
        let expected: Vec<u32> = (0..n as u32).flat_map(|r| [r, r]).collect();
        assert_eq!(gathered, &expected, "n={n}");
        for r in results.iter().skip(1) {
            assert!(r.is_none());
        }
    }
}

#[test]
fn allgather_gives_everyone_everything() {
    let report = run_cluster(&ClusterConfig::ideal(6), |proc| {
        let world = proc.world();
        world.allgather(&[world.rank() as f32]).unwrap()
    });
    for v in report.unwrap_results() {
        assert_eq!(v, vec![0.0, 1.0, 2.0, 3.0, 4.0, 5.0]);
    }
}

#[test]
fn scatter_distributes_chunks() {
    for n in [2usize, 3, 4, 8] {
        let report = run_cluster(&ClusterConfig::ideal(n), |proc| {
            let world = proc.world();
            let root_data: Option<Vec<i32>> = if world.rank() == 0 {
                Some((0..(n as i32) * 3).collect())
            } else {
                None
            };
            world.scatter(root_data.as_deref(), 3, 0).unwrap()
        });
        for (rank, chunk) in report.unwrap_results().into_iter().enumerate() {
            let base = rank as i32 * 3;
            assert_eq!(chunk, vec![base, base + 1, base + 2], "n={n}");
        }
    }
}

#[test]
fn split_partitions_communicator() {
    let report = run_cluster(&ClusterConfig::ideal(8), |proc| {
        let world = proc.world();
        // Even/odd split; key preserves world order.
        let sub = world.split_by(|r| ((r % 2) as u64, r as u64)).unwrap();
        let sum_in_sub = sub.allreduce_sum_f64(world.rank() as f64).unwrap();
        (sub.size(), sub.rank(), sum_in_sub)
    });
    for (rank, (size, sub_rank, sum)) in report.unwrap_results().into_iter().enumerate() {
        assert_eq!(size, 4);
        assert_eq!(sub_rank, rank / 2);
        let expected: f64 = if rank % 2 == 0 {
            0.0 + 2.0 + 4.0 + 6.0
        } else {
            1.0 + 3.0 + 5.0 + 7.0
        };
        assert_eq!(sum, expected);
    }
}

#[test]
fn dup_gives_independent_matching_context() {
    let report = run_cluster(&ClusterConfig::ideal(2), |proc| {
        let world = proc.world();
        let dup = world.dup();
        if world.rank() == 0 {
            // Same destination and tag, different communicators.
            world.send(&[1i32], 1, 5).unwrap();
            dup.send(&[2i32], 1, 5).unwrap();
            0
        } else {
            // Receive on the duplicate first: the message sent on `world`
            // must not match.
            let from_dup = dup.recv::<i32>(0, 5).unwrap()[0];
            let from_world = world.recv::<i32>(0, 5).unwrap()[0];
            assert_eq!((from_dup, from_world), (2, 1));
            from_dup + from_world
        }
    });
    assert_eq!(*report.result_of(1).unwrap(), 3);
}

#[test]
fn collectives_on_subcommunicators_do_not_interfere() {
    let report = run_cluster(&ClusterConfig::ideal(6), |proc| {
        let world = proc.world();
        let sub = world.split_by(|r| ((r % 3) as u64, r as u64)).unwrap();
        // Run a collective on the sub-communicator and on the world
        // communicator back to back.
        let s1 = sub.allreduce_sum_f64(1.0).unwrap();
        let s2 = world.allreduce_sum_f64(1.0).unwrap();
        (s1, s2)
    });
    for (s1, s2) in report.unwrap_results() {
        assert_eq!(s1, 2.0);
        assert_eq!(s2, 6.0);
    }
}

#[test]
fn virtual_time_of_allreduce_grows_with_message_size() {
    // With a realistic network and ideal compute, reducing a large vector
    // must take longer than reducing a scalar.
    let config = ClusterConfig::new(4)
        .with_machine(simcluster::MachineModel::ideal_compute_ib20g())
        .with_topology(simcluster::Topology::one_per_node(4));
    let report = run_cluster(&config, |proc| {
        let world = proc.world();
        let t0 = proc.now();
        let _ = world.allreduce_sum_f64(1.0).unwrap();
        let t1 = proc.now();
        let big = vec![1.0f64; 1 << 16];
        let _ = world.allreduce(&big, |a, b| a + b).unwrap();
        let t2 = proc.now();
        ((t1 - t0).as_secs(), (t2 - t1).as_secs())
    });
    for (small, large) in report.unwrap_results() {
        assert!(large > small * 5.0, "large={large} small={small}");
    }
}
