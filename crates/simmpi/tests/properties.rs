//! Property-based tests of the simulated MPI runtime: collective results
//! must match their sequential definitions for arbitrary inputs, sizes and
//! roots, and the virtual clock must never run backwards.

use proptest::prelude::*;
use simmpi::{run_cluster, ClusterConfig};

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    #[test]
    fn allreduce_matches_sequential_sum(
        n in 1usize..9,
        values in proptest::collection::vec(-1e3f64..1e3, 1..6),
    ) {
        let values_per_rank = values.clone();
        let report = run_cluster(&ClusterConfig::ideal(n), move |proc| {
            let world = proc.world();
            // Every rank contributes rank-dependent values.
            let mine: Vec<f64> = values_per_rank
                .iter()
                .map(|v| v * (world.rank() as f64 + 1.0))
                .collect();
            world.allreduce(&mine, |a, b| a + b).unwrap()
        });
        let results = report.unwrap_results();
        let factor: f64 = (1..=n).map(|r| r as f64).sum();
        for got in results {
            for (g, v) in got.iter().zip(&values) {
                prop_assert!((g - v * factor).abs() < 1e-6 * (1.0 + v.abs() * factor.abs()));
            }
        }
    }

    #[test]
    fn bcast_from_any_root_delivers_identical_data(
        n in 2usize..9,
        root_pick in 0usize..8,
        payload in proptest::collection::vec(-1e6f64..1e6, 1..32),
    ) {
        let root = root_pick % n;
        let payload_for_root = payload.clone();
        let report = run_cluster(&ClusterConfig::ideal(n), move |proc| {
            let world = proc.world();
            let mut data = if world.rank() == root {
                payload_for_root.clone()
            } else {
                vec![0.0; payload_for_root.len()]
            };
            world.bcast(&mut data, root).unwrap();
            data
        });
        for got in report.unwrap_results() {
            prop_assert_eq!(&got, &payload);
        }
    }

    #[test]
    fn gather_scatter_round_trip(
        n in 2usize..7,
        chunk in proptest::collection::vec(-1e3f64..1e3, 1..8),
    ) {
        let chunk_len = chunk.len();
        let report = run_cluster(&ClusterConfig::ideal(n), move |proc| {
            let world = proc.world();
            // Each rank owns a distinct chunk; gather to root then scatter
            // back must return the original chunk.
            let mine: Vec<f64> = chunk.iter().map(|v| v + world.rank() as f64).collect();
            let gathered = world.gather(&mine, 0).unwrap();
            let back = world
                .scatter(gathered.as_deref(), chunk_len, 0)
                .unwrap();
            (mine, back)
        });
        for (mine, back) in report.unwrap_results() {
            prop_assert_eq!(mine, back);
        }
    }

    #[test]
    fn point_to_point_preserves_arbitrary_payloads(
        payload in proptest::collection::vec(any::<f64>().prop_filter("finite", |v| v.is_finite()), 0..64),
        tag in 0u32..1000,
    ) {
        let sent = payload.clone();
        let report = run_cluster(&ClusterConfig::ideal(2), move |proc| {
            let world = proc.world();
            if world.rank() == 0 {
                world.send(&sent, 1, tag).unwrap();
                Vec::new()
            } else {
                world.recv::<f64>(0, tag).unwrap()
            }
        });
        let results = report.unwrap_results();
        prop_assert_eq!(&results[1], &payload);
    }

    #[test]
    fn concurrent_senders_keep_per_source_fifo_order(
        senders in 1usize..6,
        messages in 1usize..12,
        tag in 0u32..100,
    ) {
        // Ranks 1..=senders all blast rank 0 concurrently (each logical
        // process runs on its own host thread, so this genuinely exercises
        // the sharded mailbox lanes under contention).  Rank 0 receives with
        // wildcard source and must observe every source's counter sequence
        // in send order — the per-lane FIFO guarantee — while the sharding
        // makes no promise about interleaving *between* sources.
        let report = run_cluster(&ClusterConfig::ideal(senders + 1), move |proc| {
            let world = proc.world();
            let rank = world.rank();
            if rank == 0 {
                let mut next_expected = vec![0u64; senders + 1];
                for _ in 0..senders * messages {
                    let (msg, status) = world.recv_any::<u64>(tag).unwrap();
                    let src = status.source;
                    assert_eq!(
                        msg,
                        vec![src as u64, next_expected[src]],
                        "source {src} delivered out of send order"
                    );
                    next_expected[src] += 1;
                }
                next_expected
            } else {
                for m in 0..messages as u64 {
                    world.send(&[rank as u64, m], 0, tag).unwrap();
                }
                Vec::new()
            }
        });
        let results = report.unwrap_results();
        for (src, &count) in results[0].iter().enumerate().skip(1) {
            prop_assert_eq!(count, messages as u64, "source {} short-counted", src);
        }
    }

    #[test]
    fn virtual_clocks_are_monotone_and_consistent(
        n in 1usize..6,
        messages in 1usize..8,
    ) {
        let report = run_cluster(&ClusterConfig::new(n), move |proc| {
            let world = proc.world();
            let mut last = proc.now();
            for m in 0..messages {
                let next = (world.rank() + 1) % world.size();
                let prev = (world.rank() + world.size() - 1) % world.size();
                if world.size() > 1 {
                    world.send(&[m as f64], next, 7).unwrap();
                    let _ = world.recv::<f64>(prev, 7).unwrap();
                }
                proc.charge_compute(1e6, 1e6);
                let now = proc.now();
                assert!(now >= last, "virtual clock went backwards");
                last = now;
            }
            let (now, compute, comm, wait) = proc.time_breakdown();
            (now.as_secs(), compute.as_secs(), comm.as_secs(), wait.as_secs())
        });
        for (now, compute, comm, wait) in report.unwrap_results() {
            prop_assert!(now >= compute);
            prop_assert!(comm >= wait);
            prop_assert!(now + 1e-12 >= compute + comm * 0.0); // sanity: all finite, non-negative
            prop_assert!(now.is_finite() && compute >= 0.0 && comm >= 0.0 && wait >= 0.0);
        }
    }
}

// ---------------------------------------------------------------------------
// Mailbox-lane properties of the indexed router (PR 4).
// ---------------------------------------------------------------------------

mod mailbox_lanes {
    use bytes::Bytes;
    use proptest::prelude::*;
    use simcluster::{FailureStatusBoard, SimTime};
    use simmpi::{Envelope, MatchSelector, Router};

    fn env(src: usize, tag: u32, seq: u64) -> Envelope {
        Envelope {
            src_world: src,
            dst_world: 0,
            comm: 1,
            tag,
            payload: Bytes::new(),
            head: None,
            modeled_bytes: 0,
            arrival: SimTime::ZERO,
            seq,
        }
    }

    fn sel(src: Option<usize>, tag: Option<u32>) -> MatchSelector {
        MatchSelector {
            comm: 1,
            src_world: src,
            tag,
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        /// Per-(source, tag) FIFO is preserved no matter how exact and
        /// wildcard receives interleave: for every lane, the envelopes a
        /// receiver extracts (through any mix of selectors) appear in
        /// delivery order, and wildcard receives always return the earliest
        /// delivered live envelope that their selector admits.
        #[test]
        fn lane_fifo_survives_interleaved_wildcard_receives(
            // Delivery schedule: each element encodes (src in 0..3, tag in
            // 0..3) as src * 3 + tag (the shim proptest has no tuple strategy).
            delivery_codes in proptest::collection::vec(0u8..9, 1..40),
            // Receive schedule: 0 = exact on a lane picked round-robin,
            // 1 = wildcard-any, 2 = tag-only wildcard, 3 = src-only wildcard.
            recv_kinds in proptest::collection::vec(0u8..4, 0..60),
        ) {
            let deliveries: Vec<(usize, u32)> = delivery_codes
                .iter()
                .map(|&c| ((c / 3) as usize, (c % 3) as u32))
                .collect();
            let board = FailureStatusBoard::new(4);
            let router = Router::new(4, board);
            for (i, &(src, tag)) in deliveries.iter().enumerate() {
                // The global seq doubles as the delivery index.
                router.deliver(env(1 + src, tag, i as u64));
            }

            // Shadow model: one FIFO per lane plus the global delivery order.
            let mut last_seq_per_lane = std::collections::HashMap::new();
            let mut received = 0usize;
            let mut exact_cursor = 0usize;
            for &kind in &recv_kinds {
                let selector = match kind {
                    0 => {
                        let (src, tag) = deliveries[exact_cursor % deliveries.len()];
                        exact_cursor += 1;
                        sel(Some(1 + src), Some(tag))
                    }
                    1 => sel(None, None),
                    2 => sel(None, Some(deliveries[0].1)),
                    _ => sel(Some(1 + deliveries[0].0), None),
                };
                let before = router.queued(0);
                match router.try_match(0, &selector) {
                    Some(got) => {
                        received += 1;
                        prop_assert_eq!(router.queued(0), before - 1);
                        // The envelope matches what was asked for.
                        prop_assert!(got.matches(&selector));
                        // Per-lane FIFO: seq strictly increases within the lane.
                        let lane = (got.src_world, got.tag);
                        if let Some(&prev) = last_seq_per_lane.get(&lane) {
                            prop_assert!(
                                got.seq > prev,
                                "lane {:?} delivered seq {} after {}",
                                lane, got.seq, prev
                            );
                        }
                        last_seq_per_lane.insert(lane, got.seq);
                    }
                    None => prop_assert_eq!(router.queued(0), before),
                }
            }

            // Drain with a full wildcard: the remainder comes out in global
            // delivery order restricted to the live envelopes.
            let mut last_global = None;
            while let Some(got) = router.try_match(0, &sel(None, None)) {
                received += 1;
                if let Some(prev) = last_global {
                    prop_assert!(got.seq > prev, "wildcard drain out of delivery order");
                }
                last_global = Some(got.seq);
                let lane = (got.src_world, got.tag);
                if let Some(&prev) = last_seq_per_lane.get(&lane) {
                    prop_assert!(got.seq > prev);
                }
                last_seq_per_lane.insert(lane, got.seq);
            }
            prop_assert_eq!(received, deliveries.len());
            prop_assert_eq!(router.queued(0), 0);
        }
    }
}
