//! Point-to-point communication tests for the simulated MPI runtime.

use simcluster::{MachineModel, NetworkModel, Topology};
use simmpi::{run_cluster, ClusterConfig, MpiError};

#[test]
fn ping_pong_delivers_payload() {
    let report = run_cluster(&ClusterConfig::ideal(2), |proc| {
        let world = proc.world();
        match world.rank() {
            0 => {
                world.send(&[1.0f64, 2.0, 3.0], 1, 7).unwrap();
                let back: Vec<f64> = world.recv(1, 8).unwrap();
                back
            }
            _ => {
                let data: Vec<f64> = world.recv(0, 7).unwrap();
                let doubled: Vec<f64> = data.iter().map(|x| x * 2.0).collect();
                world.send(&doubled, 0, 8).unwrap();
                doubled
            }
        }
    });
    let results = report.unwrap_results();
    assert_eq!(results[0], vec![2.0, 4.0, 6.0]);
}

#[test]
fn messages_are_non_overtaking_per_source_and_tag() {
    let report = run_cluster(&ClusterConfig::ideal(2), |proc| {
        let world = proc.world();
        if world.rank() == 0 {
            for i in 0..32i32 {
                world.send(&[i], 1, 3).unwrap();
            }
            Vec::new()
        } else {
            let mut got = Vec::new();
            for _ in 0..32 {
                got.push(world.recv::<i32>(0, 3).unwrap()[0]);
            }
            got
        }
    });
    let results = report.unwrap_results();
    assert_eq!(results[1], (0..32).collect::<Vec<i32>>());
}

#[test]
fn tags_demultiplex_messages() {
    let report = run_cluster(&ClusterConfig::ideal(2), |proc| {
        let world = proc.world();
        if world.rank() == 0 {
            world.send(&[10i32], 1, 1).unwrap();
            world.send(&[20i32], 1, 2).unwrap();
            0
        } else {
            // Receive in the opposite order of sending: tag matching must
            // pick the right message.
            let b = world.recv::<i32>(0, 2).unwrap()[0];
            let a = world.recv::<i32>(0, 1).unwrap()[0];
            assert_eq!((a, b), (10, 20));
            a + b
        }
    });
    assert_eq!(*report.result_of(1).unwrap(), 30);
}

#[test]
fn isend_irecv_waitall_round_trip() {
    let report = run_cluster(&ClusterConfig::ideal(3), |proc| {
        let world = proc.world();
        let rank = world.rank();
        // Everyone sends its rank to everyone else, non-blockingly.
        let mut sends = Vec::new();
        let mut recvs = Vec::new();
        for peer in 0..world.size() {
            if peer != rank {
                sends.push(world.isend(&[rank as u64], peer, 5).unwrap());
                recvs.push(world.irecv(peer, 5).unwrap());
            }
        }
        let received: Vec<Vec<u64>> = world.waitall_recv(recvs).unwrap();
        world.waitall_send(sends).unwrap();
        received.into_iter().map(|v| v[0]).sum::<u64>()
    });
    let results = report.unwrap_results();
    // Each rank receives the sum of the other two ranks.
    assert_eq!(results[0], 1 + 2);
    assert_eq!(results[1], 2);
    assert_eq!(results[2], 1);
}

#[test]
fn recv_into_and_scalar_helpers() {
    let report = run_cluster(&ClusterConfig::ideal(2), |proc| {
        let world = proc.world();
        if world.rank() == 0 {
            world.send_one(41.5f64, 1, 9).unwrap();
            world.send(&[7i64, 8, 9], 1, 10).unwrap();
            0.0
        } else {
            let x: f64 = world.recv_one(0, 9).unwrap();
            let mut buf = [0i64; 3];
            let status = world.recv_into(&mut buf, 0, 10).unwrap();
            assert_eq!(status.source, 0);
            assert_eq!(status.bytes, 24);
            assert_eq!(buf, [7, 8, 9]);
            x
        }
    });
    assert_eq!(*report.result_of(1).unwrap(), 41.5);
}

#[test]
fn invalid_rank_and_reserved_tag_are_rejected() {
    let report = run_cluster(&ClusterConfig::ideal(1), |proc| {
        let world = proc.world();
        let bad_rank = world.send(&[1.0f64], 5, 1).unwrap_err();
        let bad_tag = world.send(&[1.0f64], 0, simmpi::RESERVED_TAG_BASE + 1);
        (bad_rank, bad_tag.is_err())
    });
    let results = report.unwrap_results();
    assert!(matches!(
        results[0].0,
        MpiError::InvalidRank { rank: 5, size: 1 }
    ));
    assert!(results[0].1);
}

#[test]
fn receive_from_failed_rank_returns_error() {
    let report = run_cluster(&ClusterConfig::ideal(3), |proc| {
        let world = proc.world();
        match world.rank() {
            1 => {
                // Rank 1 crashes before sending anything.
                proc.fail_here();
                Err(MpiError::SelfFailed)
            }
            2 => {
                // Rank 2 waits for a message from rank 1 that never comes.
                world.recv::<f64>(1, 4).map(|_| ())
            }
            _ => Ok(()),
        }
    });
    assert_eq!(
        report.results[2].as_ref().unwrap().clone().unwrap_err(),
        MpiError::ProcessFailed { rank: 1 }
    );
    assert_eq!(report.failures.len(), 1);
    assert_eq!(report.failures[0].rank, 1);
}

#[test]
fn message_sent_before_crash_is_still_delivered() {
    let report = run_cluster(&ClusterConfig::ideal(2), |proc| {
        let world = proc.world();
        if world.rank() == 0 {
            world.send(&[3.25f64], 1, 2).unwrap();
            proc.fail_here();
            None
        } else {
            Some(world.recv::<f64>(0, 2).unwrap()[0])
        }
    });
    assert_eq!(report.results[1].as_ref().unwrap().unwrap(), 3.25);
}

#[test]
fn virtual_time_accounts_for_transfer_size() {
    // 1 MB over a 1 GB/s link with zero-cost compute: the receiver's clock
    // must show about 1 ms.
    let machine = MachineModel {
        inter_node: NetworkModel {
            latency_s: 0.0,
            bandwidth_bytes_per_s: 1e9,
            send_overhead_s: 0.0,
            recv_overhead_s: 0.0,
        },
        ..MachineModel::ideal()
    };
    let config = ClusterConfig::new(2)
        .with_machine(machine)
        .with_topology(Topology::one_per_node(2));
    let report = run_cluster(&config, |proc| {
        let world = proc.world();
        if world.rank() == 0 {
            let data = vec![0u8; 1_000_000];
            world.send(&data, 1, 1).unwrap();
        } else {
            let _ = world.recv::<u8>(0, 1).unwrap();
        }
        proc.now()
    });
    let times = report.unwrap_results();
    assert!(
        (times[1].as_secs() - 1e-3).abs() < 1e-6,
        "receiver time {} should be ~1ms",
        times[1]
    );
    // The sender only pays the (zero) overhead, not the serialization.
    assert!(times[0].as_secs() < 1e-6);
}

#[test]
fn modeled_size_overrides_payload_size_for_timing() {
    let machine = MachineModel {
        inter_node: NetworkModel {
            latency_s: 0.0,
            bandwidth_bytes_per_s: 1e6,
            send_overhead_s: 0.0,
            recv_overhead_s: 0.0,
        },
        ..MachineModel::ideal()
    };
    let config = ClusterConfig::new(2)
        .with_machine(machine)
        .with_topology(Topology::one_per_node(2));
    let report = run_cluster(&config, |proc| {
        let world = proc.world();
        if world.rank() == 0 {
            // 8-byte real payload, but modeled as 1 MB.
            world
                .send_with_modeled_size(&[1.0f64], 1, 1, 1_000_000)
                .unwrap();
            0.0
        } else {
            let v: Vec<f64> = world.recv(0, 1).unwrap();
            assert_eq!(v, vec![1.0]);
            proc.now().as_secs()
        }
    });
    let results = report.unwrap_results();
    assert!(
        (results[1] - 1.0).abs() < 1e-9,
        "modeled 1MB at 1MB/s should take ~1s, got {}",
        results[1]
    );
}

#[test]
fn intra_node_link_is_faster_than_inter_node() {
    let run = |same_node: bool| {
        let topology = if same_node {
            Topology::single_node(2)
        } else {
            Topology::one_per_node(2)
        };
        let config = ClusterConfig::new(2)
            .with_machine(MachineModel {
                compute: simcluster::ComputeModel::ideal(),
                ..MachineModel::grid5000_ib20g()
            })
            .with_topology(topology);
        let report = run_cluster(&config, |proc| {
            let world = proc.world();
            if world.rank() == 0 {
                world.send(&vec![0u8; 1 << 20], 1, 1).unwrap();
                0.0
            } else {
                let _ = world.recv::<u8>(0, 1).unwrap();
                proc.now().as_secs()
            }
        });
        report.unwrap_results()[1]
    };
    let intra = run(true);
    let inter = run(false);
    assert!(
        intra < inter,
        "intra-node transfer ({intra}) should beat inter-node ({inter})"
    );
}

#[test]
fn per_process_compute_charges_accumulate() {
    let report = run_cluster(&ClusterConfig::new(1), |proc| {
        proc.charge_compute(1.0e9, 0.0);
        proc.charge_compute(1.0e9, 0.0);
        let (now, compute, _, _) = proc.time_breakdown();
        (now.as_secs(), compute.as_secs())
    });
    let (now, compute) = report.unwrap_results()[0];
    assert!(compute > 0.0);
    assert!((now - compute).abs() < 1e-12);
}
