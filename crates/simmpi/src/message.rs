//! Message envelopes.

use bytes::Bytes;
use simcluster::SimTime;

/// Identifier of a communicator, globally consistent across the processes
/// that are members of it (derived deterministically at `split`/`dup` time).
pub type CommId = u64;

/// Message tag.  Application tags must stay below [`RESERVED_TAG_BASE`];
/// larger values are reserved for internal collective operations.
pub type Tag = u32;

/// First tag value reserved for internal use (collectives).
pub const RESERVED_TAG_BASE: Tag = 1 << 30;

/// A message in flight or queued at the destination's mailbox.
#[derive(Debug, Clone)]
pub struct Envelope {
    /// World rank of the sender.
    pub src_world: usize,
    /// World rank of the destination.
    pub dst_world: usize,
    /// Communicator the message was sent on.
    pub comm: CommId,
    /// Application or internal tag.
    pub tag: Tag,
    /// Actual payload carried (used for correctness).
    pub payload: Bytes,
    /// Optional 8-byte frame head carried out-of-band.
    ///
    /// Protocol layers that prefix every message with a small fixed header
    /// (the replication channel's sequence number) would otherwise have to
    /// materialize `header ++ payload` in a fresh buffer for every send —
    /// one allocation and one full payload copy per message.  Carrying the
    /// head in the envelope instead lets all copies of a fan-out share one
    /// reference-counted payload with **zero** per-send copies.  `None` for
    /// plain sends.  `Comm::recv_framed` splits either representation
    /// transparently; a plain `recv_payload` of a headed envelope
    /// re-materializes the contiguous frame (correctness fallback, off the
    /// hot path).
    pub head: Option<u64>,
    /// Number of bytes charged to the network model.  Usually equal to
    /// `payload.len()`, but paper-scale experiments can run the protocol on
    /// reduced actual arrays while charging the modeled size (see
    /// `DESIGN.md`, "Timing / efficiency methodology").
    pub modeled_bytes: usize,
    /// Virtual time at which the message is fully available at the receiver.
    pub arrival: SimTime,
    /// Global sequence number (used only for deterministic tie-breaking and
    /// debugging).
    pub seq: u64,
}

impl Envelope {
    /// The `(communicator, source, tag)` mailbox lane this envelope queues
    /// in.  Envelopes of one lane are delivered and consumed strictly FIFO
    /// (MPI's non-overtaking guarantee); the router keeps one indexed queue
    /// per lane.
    pub fn lane_key(&self) -> LaneKey {
        (self.comm, self.src_world, self.tag)
    }

    /// True if this envelope matches the given selector.
    pub fn matches(&self, sel: &MatchSelector) -> bool {
        if self.comm != sel.comm {
            return false;
        }
        if let Some(src) = sel.src_world {
            if self.src_world != src {
                return false;
            }
        }
        if let Some(tag) = sel.tag {
            if self.tag != tag {
                return false;
            }
        }
        true
    }
}

/// A mailbox lane identifier: `(communicator, source world rank, tag)`.
/// Every envelope belongs to exactly one lane (see [`Envelope::lane_key`]).
pub type LaneKey = (CommId, usize, Tag);

/// Receiver-side matching criteria: communicator plus optional source and
/// tag wildcards (the equivalents of `MPI_ANY_SOURCE` / `MPI_ANY_TAG`).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MatchSelector {
    /// Communicator to match on (always required).
    pub comm: CommId,
    /// World rank of the expected sender, or `None` for any source.
    pub src_world: Option<usize>,
    /// Expected tag, or `None` for any tag.
    pub tag: Option<Tag>,
}

impl MatchSelector {
    /// True if this selector is fully determined (no wildcard), i.e. it
    /// names exactly one mailbox lane.
    pub fn exact_lane(&self) -> Option<LaneKey> {
        match (self.src_world, self.tag) {
            (Some(src), Some(tag)) => Some((self.comm, src, tag)),
            _ => None,
        }
    }

    /// True if every envelope of lane `key` matches this selector (lane
    /// membership fully determines matching — the selector never inspects
    /// the payload).
    pub fn matches_lane(&self, key: &LaneKey) -> bool {
        self.comm == key.0
            && self.src_world.is_none_or(|s| s == key.1)
            && self.tag.is_none_or(|t| t == key.2)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn env(src: usize, comm: CommId, tag: Tag) -> Envelope {
        Envelope {
            src_world: src,
            dst_world: 0,
            comm,
            tag,
            payload: Bytes::new(),
            head: None,
            modeled_bytes: 0,
            arrival: SimTime::ZERO,
            seq: 0,
        }
    }

    #[test]
    fn exact_match() {
        let e = env(2, 7, 5);
        assert!(e.matches(&MatchSelector {
            comm: 7,
            src_world: Some(2),
            tag: Some(5)
        }));
    }

    #[test]
    fn comm_must_match() {
        let e = env(2, 7, 5);
        assert!(!e.matches(&MatchSelector {
            comm: 8,
            src_world: None,
            tag: None
        }));
    }

    #[test]
    fn wildcards_match_anything() {
        let e = env(2, 7, 5);
        assert!(e.matches(&MatchSelector {
            comm: 7,
            src_world: None,
            tag: None
        }));
        assert!(e.matches(&MatchSelector {
            comm: 7,
            src_world: None,
            tag: Some(5)
        }));
        assert!(!e.matches(&MatchSelector {
            comm: 7,
            src_world: Some(3),
            tag: None
        }));
        assert!(!e.matches(&MatchSelector {
            comm: 7,
            src_world: Some(2),
            tag: Some(6)
        }));
    }
}
