//! Non-blocking operation handles.
//!
//! Requests are deliberately lightweight: a send request remembers the
//! virtual time at which the local NIC finishes injecting the message, and a
//! receive request remembers the matching selector.  `Comm::wait_*` consumes
//! them.  A request can only be waited on once; waiting twice is a protocol
//! bug and surfaces as [`crate::MpiError::RequestConsumed`].

use crate::error::{MpiError, MpiResult};
use crate::message::MatchSelector;
use simcluster::SimTime;

/// Handle for a pending (non-blocking) send.
#[derive(Debug)]
pub struct SendRequest {
    complete_at: Option<SimTime>,
}

impl SendRequest {
    pub(crate) fn new(complete_at: SimTime) -> Self {
        SendRequest {
            complete_at: Some(complete_at),
        }
    }

    /// Virtual time at which the send completes locally, without consuming
    /// the request.
    pub fn completion_time(&self) -> Option<SimTime> {
        self.complete_at
    }

    pub(crate) fn consume(mut self) -> MpiResult<SimTime> {
        self.complete_at.take().ok_or(MpiError::RequestConsumed)
    }
}

/// Handle for a pending (non-blocking) receive.
#[derive(Debug)]
pub struct RecvRequest {
    sel: Option<MatchSelector>,
}

impl RecvRequest {
    pub(crate) fn new(sel: MatchSelector) -> Self {
        RecvRequest { sel: Some(sel) }
    }

    /// The matching selector of this request, without consuming it.
    pub fn selector(&self) -> Option<&MatchSelector> {
        self.sel.as_ref()
    }

    pub(crate) fn consume(mut self) -> MpiResult<MatchSelector> {
        self.sel.take().ok_or(MpiError::RequestConsumed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn send_request_reports_completion_time() {
        let r = SendRequest::new(SimTime::from_secs(2.0));
        assert_eq!(r.completion_time().unwrap().as_secs(), 2.0);
        assert_eq!(r.consume().unwrap().as_secs(), 2.0);
    }

    #[test]
    fn recv_request_carries_selector() {
        let sel = MatchSelector {
            comm: 3,
            src_world: Some(1),
            tag: Some(7),
        };
        let r = RecvRequest::new(sel);
        assert_eq!(r.selector().unwrap().comm, 3);
        assert_eq!(r.consume().unwrap(), sel);
    }
}
