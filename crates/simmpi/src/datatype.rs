//! Typed message buffers.
//!
//! MPI moves raw bytes; applications move typed arrays.  The [`Pod`] trait
//! marks the plain-old-data element types the runtime knows how to
//! (de)serialize by direct memory reinterpretation: fixed-size numeric types
//! with no padding and no invalid bit patterns.
//!
//! The two `unsafe` blocks in this module are the only unsafe code in the
//! whole workspace.  They are sound because:
//! * `Pod` is a sealed-by-convention marker implemented only for numeric
//!   primitives (`f64`, `f32`, `i64`, `i32`, `u64`, `u32`, `u8`, `usize`),
//!   all of which are valid for every bit pattern and have alignment equal
//!   to their size;
//! * byte views never outlive the borrowed slice;
//! * deserialization copies into a properly typed, properly aligned `Vec`
//!   element by element (`from_le_bytes`), so no alignment assumption is made
//!   about the incoming byte buffer.

use crate::error::{MpiError, MpiResult};

/// Marker trait for element types that can be shipped by reinterpreting their
/// memory.  See the module documentation for the safety argument.
pub trait Pod: Copy + Send + Sync + 'static {
    /// Size of one element in bytes.
    const SIZE: usize;
    /// Serializes one element into little-endian bytes.
    fn write_le(&self, out: &mut Vec<u8>);
    /// Deserializes one element from little-endian bytes.
    ///
    /// # Panics
    /// Panics if `bytes.len() < Self::SIZE`; callers always slice exactly.
    fn read_le(bytes: &[u8]) -> Self;
}

macro_rules! impl_pod {
    ($($t:ty),*) => {
        $(
            impl Pod for $t {
                const SIZE: usize = std::mem::size_of::<$t>();
                fn write_le(&self, out: &mut Vec<u8>) {
                    out.extend_from_slice(&self.to_le_bytes());
                }
                fn read_le(bytes: &[u8]) -> Self {
                    let mut buf = [0u8; std::mem::size_of::<$t>()];
                    buf.copy_from_slice(&bytes[..std::mem::size_of::<$t>()]);
                    <$t>::from_le_bytes(buf)
                }
            }
        )*
    };
}

impl_pod!(f64, f32, i64, i32, u64, u32, u16, i16, u8);

impl Pod for usize {
    const SIZE: usize = 8;
    fn write_le(&self, out: &mut Vec<u8>) {
        out.extend_from_slice(&(*self as u64).to_le_bytes());
    }
    fn read_le(bytes: &[u8]) -> Self {
        let mut buf = [0u8; 8];
        buf.copy_from_slice(&bytes[..8]);
        u64::from_le_bytes(buf) as usize
    }
}

/// Serializes a typed slice into a byte vector (little-endian).
///
/// On little-endian targets with native-endian layout this is a straight
/// `memcpy`; the element-wise path is kept as the portable fallback.
pub fn to_bytes<T: Pod>(data: &[T]) -> Vec<u8> {
    #[cfg(target_endian = "little")]
    {
        // SAFETY: `T: Pod` guarantees `T` is a plain numeric type valid for
        // any bit pattern with no padding; viewing its memory as bytes is
        // therefore always defined.  The view does not outlive `data`.
        let bytes: &[u8] = unsafe {
            std::slice::from_raw_parts(data.as_ptr().cast::<u8>(), std::mem::size_of_val(data))
        };
        bytes.to_vec()
    }
    #[cfg(not(target_endian = "little"))]
    {
        let mut out = Vec::with_capacity(data.len() * T::SIZE);
        for x in data {
            x.write_le(&mut out);
        }
        out
    }
}

/// Deserializes a byte buffer into a typed vector.
///
/// Returns [`MpiError::TypeMismatch`] if the byte length is not a multiple of
/// the element size.
pub fn from_bytes<T: Pod>(bytes: &[u8]) -> MpiResult<Vec<T>> {
    if !bytes.len().is_multiple_of(T::SIZE) {
        return Err(MpiError::TypeMismatch {
            bytes: bytes.len(),
            elem_size: T::SIZE,
        });
    }
    let n = bytes.len() / T::SIZE;
    let mut out = Vec::with_capacity(n);
    for i in 0..n {
        out.push(T::read_le(&bytes[i * T::SIZE..(i + 1) * T::SIZE]));
    }
    Ok(out)
}

/// Deserializes a byte buffer into an existing typed slice.
///
/// The destination must have exactly the right number of elements; a shorter
/// destination yields [`MpiError::Truncated`], a longer one
/// [`MpiError::TypeMismatch`] (the protocols in this workspace always size
/// buffers exactly).
pub fn copy_into<T: Pod>(bytes: &[u8], dst: &mut [T]) -> MpiResult<()> {
    if !bytes.len().is_multiple_of(T::SIZE) {
        return Err(MpiError::TypeMismatch {
            bytes: bytes.len(),
            elem_size: T::SIZE,
        });
    }
    let n = bytes.len() / T::SIZE;
    if n > dst.len() {
        return Err(MpiError::Truncated {
            got: bytes.len(),
            capacity: dst.len() * T::SIZE,
        });
    }
    if n < dst.len() {
        return Err(MpiError::TypeMismatch {
            bytes: bytes.len(),
            elem_size: T::SIZE,
        });
    }
    for (i, slot) in dst.iter_mut().enumerate() {
        *slot = T::read_le(&bytes[i * T::SIZE..(i + 1) * T::SIZE]);
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn f64_round_trip() {
        let data = vec![1.5f64, -2.25, 0.0, f64::MAX, f64::MIN_POSITIVE];
        let bytes = to_bytes(&data);
        assert_eq!(bytes.len(), data.len() * 8);
        let back: Vec<f64> = from_bytes(&bytes).unwrap();
        assert_eq!(back, data);
    }

    #[test]
    fn integer_round_trips() {
        let a = vec![1i32, -7, i32::MAX, i32::MIN];
        assert_eq!(from_bytes::<i32>(&to_bytes(&a)).unwrap(), a);
        let b = vec![0u64, 42, u64::MAX];
        assert_eq!(from_bytes::<u64>(&to_bytes(&b)).unwrap(), b);
        let c = vec![3usize, 0, usize::MAX];
        assert_eq!(from_bytes::<usize>(&to_bytes(&c)).unwrap(), c);
        let d = vec![1u8, 2, 255];
        assert_eq!(from_bytes::<u8>(&to_bytes(&d)).unwrap(), d);
    }

    #[test]
    fn empty_slices_are_fine() {
        let empty: Vec<f64> = Vec::new();
        let bytes = to_bytes(&empty);
        assert!(bytes.is_empty());
        assert!(from_bytes::<f64>(&bytes).unwrap().is_empty());
    }

    #[test]
    fn type_mismatch_is_detected() {
        let bytes = vec![0u8; 10];
        assert!(matches!(
            from_bytes::<f64>(&bytes),
            Err(MpiError::TypeMismatch { .. })
        ));
    }

    #[test]
    fn copy_into_checks_sizes() {
        let data = vec![1.0f64, 2.0, 3.0];
        let bytes = to_bytes(&data);
        let mut exact = [0.0f64; 3];
        copy_into(&bytes, &mut exact).unwrap();
        assert_eq!(exact, [1.0, 2.0, 3.0]);

        let mut short = [0.0f64; 2];
        assert!(matches!(
            copy_into(&bytes, &mut short),
            Err(MpiError::Truncated { .. })
        ));

        let mut long = [0.0f64; 4];
        assert!(matches!(
            copy_into(&bytes, &mut long),
            Err(MpiError::TypeMismatch { .. })
        ));
    }

    #[test]
    fn mixed_type_interpretation_is_consistent() {
        // 2 f64 == 16 bytes == 4 f32 worth of bytes; reinterpreting must fail
        // only when the length does not divide evenly.
        let data = vec![1.0f64, 2.0];
        let bytes = to_bytes(&data);
        assert_eq!(from_bytes::<f32>(&bytes).unwrap().len(), 4);
        assert!(from_bytes::<u64>(&bytes).is_ok());
    }
}
