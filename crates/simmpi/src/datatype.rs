//! Typed message buffers.
//!
//! MPI moves raw bytes; applications move typed arrays.  The [`Pod`] trait
//! marks the plain-old-data element types the runtime knows how to
//! (de)serialize by direct memory reinterpretation: fixed-size numeric types
//! with no padding and no invalid bit patterns.
//!
//! The `unsafe` blocks in this module are the only unsafe code in the whole
//! workspace.  They are sound because:
//! * `Pod` is a sealed-by-convention marker implemented only for numeric
//!   primitives (`f64`, `f32`, `i64`, `i32`, `u64`, `u32`, `u8`, `usize`),
//!   all of which are valid for every bit pattern and have no padding;
//! * byte views never outlive the borrowed slice, and typed views
//!   ([`typed_view`]) are only produced when the byte buffer is aligned for
//!   `T` (checked at runtime) on little-endian targets;
//! * bulk deserialization copies raw bytes into a freshly allocated,
//!   properly aligned `Vec<T>` (or an existing `&mut [T]`), which is defined
//!   for any `Pod` type on little-endian targets regardless of the *source*
//!   buffer's alignment; the element-wise `from_le_bytes` path remains the
//!   portable fallback.

use crate::error::{MpiError, MpiResult};
use std::sync::atomic::{AtomicU64, Ordering};

/// Process-wide count of payload bytes materialized (actually copied) by the
/// conversion functions of this module.  This is the host-side copy traffic
/// of the simulator itself — *not* a virtual-time quantity — and exists purely
/// for observability: the fabric microbenchmarks (`ipr-bench::fabric`) read it
/// to report how many bytes each messaging pattern really copies, which is
/// how the zero-copy invariants of the payload path are kept honest.
static COPIED_BYTES: AtomicU64 = AtomicU64::new(0);

/// Total payload bytes copied by this module since process start (or the last
/// [`reset_copied_bytes`]).  Monotonic, process-wide, updated with relaxed
/// atomics — use only for benchmarking/diagnostics, never for protocol
/// decisions.
pub fn copied_bytes() -> u64 {
    COPIED_BYTES.load(Ordering::Relaxed)
}

/// Resets the [`copied_bytes`] counter to zero.  Benchmark harness use only.
pub fn reset_copied_bytes() {
    COPIED_BYTES.store(0, Ordering::Relaxed)
}

#[inline]
fn note_copied(bytes: usize) {
    COPIED_BYTES.fetch_add(bytes as u64, Ordering::Relaxed);
}

/// Marker trait for element types that can be shipped by reinterpreting their
/// memory.  See the module documentation for the safety argument.
pub trait Pod: Copy + Send + Sync + 'static {
    /// Size of one element in bytes.
    const SIZE: usize;
    /// Serializes one element into little-endian bytes.
    fn write_le(&self, out: &mut Vec<u8>);
    /// Deserializes one element from little-endian bytes.
    ///
    /// # Panics
    /// Panics if `bytes.len() < Self::SIZE`; callers always slice exactly.
    fn read_le(bytes: &[u8]) -> Self;
}

macro_rules! impl_pod {
    ($($t:ty),*) => {
        $(
            impl Pod for $t {
                const SIZE: usize = std::mem::size_of::<$t>();
                fn write_le(&self, out: &mut Vec<u8>) {
                    out.extend_from_slice(&self.to_le_bytes());
                }
                fn read_le(bytes: &[u8]) -> Self {
                    let mut buf = [0u8; std::mem::size_of::<$t>()];
                    buf.copy_from_slice(&bytes[..std::mem::size_of::<$t>()]);
                    <$t>::from_le_bytes(buf)
                }
            }
        )*
    };
}

impl_pod!(f64, f32, i64, i32, u64, u32, u16, i16, u8);

impl Pod for usize {
    const SIZE: usize = 8;
    fn write_le(&self, out: &mut Vec<u8>) {
        out.extend_from_slice(&(*self as u64).to_le_bytes());
    }
    fn read_le(bytes: &[u8]) -> Self {
        let mut buf = [0u8; 8];
        buf.copy_from_slice(&bytes[..8]);
        u64::from_le_bytes(buf) as usize
    }
}

/// Serializes a typed slice into a byte vector (little-endian).
///
/// On little-endian targets with native-endian layout this is a straight
/// `memcpy`; the element-wise path is kept as the portable fallback.
pub fn to_bytes<T: Pod>(data: &[T]) -> Vec<u8> {
    // Wire size, not in-memory size: they differ for `usize` on 32-bit.
    let mut out = Vec::with_capacity(data.len() * T::SIZE);
    to_bytes_into(data, &mut out);
    out
}

/// Appends the little-endian serialization of `data` to an existing byte
/// vector.  This is the allocation-free building block behind [`to_bytes`];
/// callers that assemble framed messages (header + payload) use it to
/// serialize directly into the frame instead of through a temporary vector.
pub fn to_bytes_into<T: Pod>(data: &[T], out: &mut Vec<u8>) {
    note_copied(data.len() * T::SIZE);
    if wire_layout_matches::<T>() {
        // SAFETY: `T: Pod` guarantees `T` is a plain numeric type valid for
        // any bit pattern with no padding; viewing its memory as bytes is
        // therefore always defined.  The view does not outlive `data`.
        let bytes: &[u8] = unsafe {
            std::slice::from_raw_parts(data.as_ptr().cast::<u8>(), std::mem::size_of_val(data))
        };
        out.extend_from_slice(bytes);
    } else {
        out.reserve(data.len() * T::SIZE);
        for x in data {
            x.write_le(out);
        }
    }
}

/// Serializes a typed slice directly into a payload [`bytes::Bytes`].
///
/// When the wire size fits [`bytes::Bytes::INLINE_CAP`] the serialization
/// goes through a stack buffer into the inline representation — *zero* heap
/// allocations for the whole send-side payload path.  Larger payloads take
/// the ordinary [`to_bytes`] + `Bytes::from(Vec)` route (one allocation,
/// moved in without re-copying).
pub fn to_payload<T: Pod>(data: &[T]) -> bytes::Bytes {
    to_payload_framed(&[], data)
}

/// Serializes `header` followed by the little-endian serialization of `data`
/// into a payload [`bytes::Bytes`], staying allocation-free when the whole
/// frame fits the inline representation.  Framed protocols (e.g. the
/// replicated channel's sequence-number prefix) build their wire frame with
/// this instead of assembling a temporary vector.
///
/// # Panics
/// Panics if `header` alone exceeds [`bytes::Bytes::INLINE_CAP`] while the
/// total frame would have fit (cannot happen for the fixed small headers the
/// runtime uses).
pub fn to_payload_framed<T: Pod>(header: &[u8], data: &[T]) -> bytes::Bytes {
    let wire = data.len() * T::SIZE;
    let total = header.len() + wire;
    if total <= bytes::Bytes::INLINE_CAP && wire_layout_matches::<T>() {
        note_copied(wire);
        let mut buf = [0u8; bytes::Bytes::INLINE_CAP];
        buf[..header.len()].copy_from_slice(header);
        // SAFETY: same argument as `to_bytes_into` — `T: Pod` is a plain
        // numeric type valid for any bit pattern with no padding, and the
        // byte view does not outlive `data`.
        let raw: &[u8] = unsafe {
            std::slice::from_raw_parts(data.as_ptr().cast::<u8>(), std::mem::size_of_val(data))
        };
        buf[header.len()..total].copy_from_slice(raw);
        bytes::Bytes::copy_from_slice(&buf[..total])
    } else if wire_layout_matches::<T>() {
        note_copied(wire);
        // Serialize straight into a `Bytes` buffer (arena-backed for medium
        // frames — no allocator call, no page fault; see
        // [`bytes::Bytes::with_len`]).
        bytes::Bytes::with_len(total, |buf| {
            buf[..header.len()].copy_from_slice(header);
            // SAFETY: same argument as `to_bytes_into` — `T: Pod` is a plain
            // numeric type valid for any bit pattern with no padding, and
            // the byte view does not outlive `data`.
            let raw: &[u8] = unsafe {
                std::slice::from_raw_parts(data.as_ptr().cast::<u8>(), std::mem::size_of_val(data))
            };
            buf[header.len()..].copy_from_slice(raw);
        })
    } else {
        // Portable element-wise fallback (big-endian targets, wire sizes
        // that differ from in-memory sizes).
        let mut out = Vec::with_capacity(total);
        out.extend_from_slice(header);
        to_bytes_into(data, &mut out);
        bytes::Bytes::from(out)
    }
}

/// True when `T`'s in-memory layout equals its little-endian wire format —
/// the precondition of every bulk-`memcpy` / reinterpretation fast path in
/// this module.  False on big-endian targets, and false whenever the
/// declared wire size differs from the in-memory size (`usize` is always 8
/// bytes on the wire, so on a 32-bit target it must take the element-wise
/// path).
fn wire_layout_matches<T: Pod>() -> bool {
    cfg!(target_endian = "little") && T::SIZE == std::mem::size_of::<T>()
}

/// Zero-copy reinterpretation of a byte buffer as a typed slice.
///
/// Returns `Some(view)` when no copy is needed to read the buffer as `[T]`:
/// the target is little-endian, the length is an exact multiple of the
/// element size, and the buffer happens to be aligned for `T`.  Returns
/// `None` otherwise — callers fall back to [`from_bytes`].  Receive paths
/// use this to *borrow* typed data straight out of a shared payload (e.g.
/// the reduction combine loop), skipping the deserialization copy entirely.
pub fn typed_view<T: Pod>(bytes: &[u8]) -> Option<&[T]> {
    if !wire_layout_matches::<T>() {
        return None;
    }
    if !bytes.len().is_multiple_of(T::SIZE) {
        return None;
    }
    if !(bytes.as_ptr() as usize).is_multiple_of(std::mem::align_of::<T>()) {
        return None;
    }
    // SAFETY: the wire layout equals the in-memory layout
    // (`wire_layout_matches`), the buffer is aligned for `T` (checked
    // above), its length is an exact multiple of `T::SIZE ==
    // size_of::<T>()`, and `T: Pod` is valid for every bit pattern.  The
    // view borrows `bytes` and cannot outlive it.
    Some(unsafe { std::slice::from_raw_parts(bytes.as_ptr().cast::<T>(), bytes.len() / T::SIZE) })
}

/// Deserializes a byte buffer into a typed vector.
///
/// Returns [`MpiError::TypeMismatch`] if the byte length is not a multiple of
/// the element size.  On little-endian targets the copy is a single bulk
/// `memcpy` into the (correctly aligned) fresh vector; no alignment
/// assumption is made about the incoming bytes.
pub fn from_bytes<T: Pod>(bytes: &[u8]) -> MpiResult<Vec<T>> {
    if !bytes.len().is_multiple_of(T::SIZE) {
        return Err(MpiError::TypeMismatch {
            bytes: bytes.len(),
            elem_size: T::SIZE,
        });
    }
    note_copied(bytes.len());
    let n = bytes.len() / T::SIZE;
    let mut out: Vec<T> = Vec::with_capacity(n);
    if wire_layout_matches::<T>() {
        // SAFETY: the destination was allocated with capacity for `n`
        // elements and is properly aligned for `T`; `n * T::SIZE ==
        // bytes.len()` bytes are copied, which is exactly `n` elements
        // because `T::SIZE == size_of::<T>()` (`wire_layout_matches`), and
        // every bit pattern is a valid `T` (`Pod`), so `set_len(n)` exposes
        // only initialized values.
        unsafe {
            std::ptr::copy_nonoverlapping(
                bytes.as_ptr(),
                out.as_mut_ptr().cast::<u8>(),
                n * T::SIZE,
            );
            out.set_len(n);
        }
    } else {
        for i in 0..n {
            out.push(T::read_le(&bytes[i * T::SIZE..(i + 1) * T::SIZE]));
        }
    }
    Ok(out)
}

/// Deserializes a byte buffer by appending to an existing typed vector.
///
/// The gather assembly loop uses this to decode each received part straight
/// into the result buffer instead of materializing a temporary vector per
/// part.  Returns [`MpiError::TypeMismatch`] on a length that is not a
/// multiple of the element size.
pub fn extend_from_bytes<T: Pod>(bytes: &[u8], out: &mut Vec<T>) -> MpiResult<()> {
    if !bytes.len().is_multiple_of(T::SIZE) {
        return Err(MpiError::TypeMismatch {
            bytes: bytes.len(),
            elem_size: T::SIZE,
        });
    }
    note_copied(bytes.len());
    let n = bytes.len() / T::SIZE;
    out.reserve(n);
    if wire_layout_matches::<T>() {
        let old_len = out.len();
        // SAFETY: `reserve(n)` guarantees capacity for `old_len + n`
        // elements; exactly `n * T::SIZE == bytes.len()` bytes are copied
        // into the spare capacity — `n` elements, because `T::SIZE ==
        // size_of::<T>()` (`wire_layout_matches`) — and every bit pattern
        // is a valid `T`.
        unsafe {
            std::ptr::copy_nonoverlapping(
                bytes.as_ptr(),
                out.as_mut_ptr().add(old_len).cast::<u8>(),
                n * T::SIZE,
            );
            out.set_len(old_len + n);
        }
    } else {
        for i in 0..n {
            out.push(T::read_le(&bytes[i * T::SIZE..(i + 1) * T::SIZE]));
        }
    }
    Ok(())
}

/// Deserializes a byte buffer into an existing typed slice.
///
/// The destination must have exactly the right number of elements; a shorter
/// destination yields [`MpiError::Truncated`], a longer one
/// [`MpiError::TypeMismatch`] (the protocols in this workspace always size
/// buffers exactly).
pub fn copy_into<T: Pod>(bytes: &[u8], dst: &mut [T]) -> MpiResult<()> {
    if !bytes.len().is_multiple_of(T::SIZE) {
        return Err(MpiError::TypeMismatch {
            bytes: bytes.len(),
            elem_size: T::SIZE,
        });
    }
    let n = bytes.len() / T::SIZE;
    if n > dst.len() {
        return Err(MpiError::Truncated {
            got: bytes.len(),
            capacity: dst.len() * T::SIZE,
        });
    }
    if n < dst.len() {
        return Err(MpiError::TypeMismatch {
            bytes: bytes.len(),
            elem_size: T::SIZE,
        });
    }
    note_copied(bytes.len());
    if wire_layout_matches::<T>() {
        // SAFETY: `dst` has exactly `n` elements (checked above) of size
        // `size_of::<T>() == T::SIZE` (`wire_layout_matches`), so copying
        // `n * T::SIZE == bytes.len()` bytes over it stays in bounds, and
        // every bit pattern is a valid `T` (`Pod`).
        unsafe {
            std::ptr::copy_nonoverlapping(
                bytes.as_ptr(),
                dst.as_mut_ptr().cast::<u8>(),
                bytes.len(),
            );
        }
    } else {
        for (i, slot) in dst.iter_mut().enumerate() {
            *slot = T::read_le(&bytes[i * T::SIZE..(i + 1) * T::SIZE]);
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn f64_round_trip() {
        let data = vec![1.5f64, -2.25, 0.0, f64::MAX, f64::MIN_POSITIVE];
        let bytes = to_bytes(&data);
        assert_eq!(bytes.len(), data.len() * 8);
        let back: Vec<f64> = from_bytes(&bytes).unwrap();
        assert_eq!(back, data);
    }

    #[test]
    fn integer_round_trips() {
        let a = vec![1i32, -7, i32::MAX, i32::MIN];
        assert_eq!(from_bytes::<i32>(&to_bytes(&a)).unwrap(), a);
        let b = vec![0u64, 42, u64::MAX];
        assert_eq!(from_bytes::<u64>(&to_bytes(&b)).unwrap(), b);
        let c = vec![3usize, 0, usize::MAX];
        assert_eq!(from_bytes::<usize>(&to_bytes(&c)).unwrap(), c);
        let d = vec![1u8, 2, 255];
        assert_eq!(from_bytes::<u8>(&to_bytes(&d)).unwrap(), d);
    }

    #[test]
    fn empty_slices_are_fine() {
        let empty: Vec<f64> = Vec::new();
        let bytes = to_bytes(&empty);
        assert!(bytes.is_empty());
        assert!(from_bytes::<f64>(&bytes).unwrap().is_empty());
    }

    #[test]
    fn type_mismatch_is_detected() {
        let bytes = vec![0u8; 10];
        assert!(matches!(
            from_bytes::<f64>(&bytes),
            Err(MpiError::TypeMismatch { .. })
        ));
    }

    #[test]
    fn copy_into_checks_sizes() {
        let data = vec![1.0f64, 2.0, 3.0];
        let bytes = to_bytes(&data);
        let mut exact = [0.0f64; 3];
        copy_into(&bytes, &mut exact).unwrap();
        assert_eq!(exact, [1.0, 2.0, 3.0]);

        let mut short = [0.0f64; 2];
        assert!(matches!(
            copy_into(&bytes, &mut short),
            Err(MpiError::Truncated { .. })
        ));

        let mut long = [0.0f64; 4];
        assert!(matches!(
            copy_into(&bytes, &mut long),
            Err(MpiError::TypeMismatch { .. })
        ));
    }

    #[test]
    fn to_bytes_into_appends_after_existing_content() {
        let mut framed = vec![0xAAu8; 8];
        to_bytes_into(&[1.0f64, 2.0], &mut framed);
        assert_eq!(framed.len(), 8 + 16);
        assert_eq!(&framed[..8], &[0xAA; 8]);
        let back: Vec<f64> = from_bytes(&framed[8..]).unwrap();
        assert_eq!(back, vec![1.0, 2.0]);
    }

    #[test]
    fn typed_view_borrows_aligned_buffers_and_rejects_misaligned_ones() {
        let data = vec![1.5f64, -2.25, 8.0];
        let bytes = to_bytes(&data);
        // A Vec<u8> from to_bytes is at least 8-aligned on every mainstream
        // allocator, but don't rely on it: check whichever way it lands.
        match typed_view::<f64>(&bytes) {
            Some(view) => assert_eq!(view, &data[..]),
            None => assert_ne!((bytes.as_ptr() as usize) % std::mem::align_of::<f64>(), 0),
        }
        // u8 views are always aligned (on little-endian targets).
        if cfg!(target_endian = "little") {
            assert_eq!(typed_view::<u8>(&bytes).unwrap().len(), bytes.len());
            // An odd offset into an f64 buffer can never be an f64 view.
            assert!(typed_view::<f64>(&bytes[1..9]).is_none() || bytes.as_ptr() as usize % 8 == 7);
        }
        // Length mismatch is always rejected.
        assert!(typed_view::<f64>(&bytes[..10]).is_none());
    }

    #[test]
    fn extend_from_bytes_decodes_in_place() {
        let mut out = vec![7i32];
        extend_from_bytes(&to_bytes(&[1i32, 2, 3]), &mut out).unwrap();
        assert_eq!(out, vec![7, 1, 2, 3]);
        assert!(matches!(
            extend_from_bytes::<i32>(&[0u8; 5], &mut out),
            Err(MpiError::TypeMismatch { .. })
        ));
        assert_eq!(out.len(), 4, "failed extend must not change the buffer");
    }

    #[test]
    fn copied_bytes_counter_tracks_conversions() {
        // The counter is process-global and sibling unit tests run in
        // parallel in this binary, so assert only deltas large enough that
        // their small conversions cannot account for them.
        const BIG: usize = 1 << 20;
        let data = vec![0u8; BIG];
        let before = copied_bytes();
        let bytes = to_bytes(&data);
        let back: Vec<u8> = from_bytes(&bytes).unwrap();
        assert_eq!(back.len(), BIG);
        assert!(copied_bytes() - before >= 2 * BIG as u64);
        // Borrowing a view copies nothing payload-sized.
        let mid = copied_bytes();
        let view = typed_view::<u8>(&bytes).unwrap();
        assert_eq!(view.len(), BIG);
        assert!(
            copied_bytes() - mid < BIG as u64 / 2,
            "typed_view must not copy the buffer"
        );
    }

    #[test]
    fn to_payload_framed_round_trips_across_the_inline_boundary() {
        // 7 f64 + 8-byte header = 64 bytes (inline); 8 f64 + header = 72
        // (heap).  Both must produce identical wire content.
        for elems in [0usize, 1, 7, 8, 100] {
            let data: Vec<f64> = (0..elems).map(|i| i as f64 * 1.25 - 3.0).collect();
            let header = 0xDEAD_BEEF_u64.to_le_bytes();
            let payload = to_payload_framed(&header, &data);
            assert_eq!(payload.len(), 8 + elems * 8);
            assert_eq!(&payload[..8], &header);
            let back: Vec<f64> = from_bytes(&payload[8..]).unwrap();
            assert_eq!(back, data);
            // And the unframed variant matches to_bytes exactly.
            assert_eq!(&to_payload(&data)[..], &to_bytes(&data)[..]);
        }
    }

    #[test]
    fn mixed_type_interpretation_is_consistent() {
        // 2 f64 == 16 bytes == 4 f32 worth of bytes; reinterpreting must fail
        // only when the length does not divide evenly.
        let data = vec![1.0f64, 2.0];
        let bytes = to_bytes(&data);
        assert_eq!(from_bytes::<f32>(&bytes).unwrap().len(), 4);
        assert!(from_bytes::<u64>(&bytes).is_ok());
    }
}
