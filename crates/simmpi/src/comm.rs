//! Communicators and point-to-point communication.
//!
//! A [`Comm`] is a group of physical processes with a private communication
//! context.  The world communicator contains every process; `split` and
//! `dup` derive sub-communicators with deterministic, globally consistent
//! identifiers (all members perform the same sequence of collective calls,
//! as MPI requires, so they derive the same ids without any exchange).
//!
//! Point-to-point operations follow MPI semantics: standard-mode sends are
//! buffered (they complete locally once the payload has been handed to the
//! "NIC"), receives match on `(communicator, source, tag)` with optional
//! wildcards, and message order is non-overtaking per (source, tag).

use crate::datatype::{self, Pod};
use crate::error::{MpiError, MpiResult};
use crate::message::{CommId, Envelope, MatchSelector, Tag, RESERVED_TAG_BASE};
use crate::proc::ProcCore;
use crate::request::{RecvRequest, SendRequest};
use bytes::Bytes;
use simcluster::SimTime;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// Identifier of the world communicator.
pub const WORLD_COMM_ID: CommId = 1;

fn mix(a: u64, b: u64, c: u64) -> u64 {
    // SplitMix64-style mixing of (parent id, split counter, color) so every
    // member of a split derives the same child id without communication.
    let mut x = a
        .wrapping_mul(0x9E37_79B9_7F4A_7C15)
        .wrapping_add(b.wrapping_mul(0xBF58_476D_1CE4_E5B9))
        .wrapping_add(c.wrapping_mul(0x94D0_49BB_1331_11EB));
    x ^= x >> 31;
    x = x.wrapping_mul(0xD6E8_FEB8_6659_FD93);
    x ^= x >> 29;
    x | 0x2 // never collide with WORLD_COMM_ID
}

/// A communicator: an ordered group of physical processes plus a private
/// matching context.
#[derive(Clone)]
pub struct Comm {
    core: Arc<ProcCore>,
    id: CommId,
    /// Communicator rank -> world rank.
    group: Arc<Vec<usize>>,
    /// This process's rank within the communicator.
    my_rank: usize,
    /// Per-process counter of collective operations on this communicator
    /// (all members stay in lockstep because collectives are collective).
    coll_seq: Arc<AtomicU64>,
    /// Per-process counter of split/dup operations on this communicator.
    child_seq: Arc<AtomicU64>,
}

/// Status information returned by receives.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RecvStatus {
    /// Communicator rank of the sender.
    pub source: usize,
    /// Tag of the received message.
    pub tag: Tag,
    /// Number of payload bytes received.
    pub bytes: usize,
}

impl Comm {
    /// Builds the world communicator for a process.
    pub(crate) fn world(core: Arc<ProcCore>) -> Self {
        let n = core.num_procs;
        let rank = core.world_rank;
        Comm {
            core,
            id: WORLD_COMM_ID,
            group: Arc::new((0..n).collect()),
            my_rank: rank,
            coll_seq: Arc::new(AtomicU64::new(0)),
            child_seq: Arc::new(AtomicU64::new(0)),
        }
    }

    /// This process's rank within the communicator.
    pub fn rank(&self) -> usize {
        self.my_rank
    }

    /// Number of processes in the communicator.
    pub fn size(&self) -> usize {
        self.group.len()
    }

    /// Identifier of this communicator (diagnostic).
    pub fn id(&self) -> CommId {
        self.id
    }

    /// World rank of the process with communicator rank `r`.
    pub fn world_rank_of(&self, r: usize) -> usize {
        self.group[r]
    }

    /// World rank of this process.
    pub fn my_world_rank(&self) -> usize {
        self.core.world_rank
    }

    /// Communicator rank of the given world rank, if it is a member.
    pub fn comm_rank_of_world(&self, world: usize) -> Option<usize> {
        self.group.iter().position(|&w| w == world)
    }

    /// The underlying per-process core (used by higher layers for timing).
    pub(crate) fn core(&self) -> &Arc<ProcCore> {
        &self.core
    }

    /// Current virtual time of the calling process.
    pub fn now(&self) -> SimTime {
        self.core.clock.lock().now()
    }

    /// True if the member with communicator rank `r` has crashed.
    pub fn is_failed(&self, r: usize) -> bool {
        self.core.router.failures().is_failed(self.group[r])
    }

    /// Communicator ranks of all members that are still alive.
    pub fn alive_ranks(&self) -> Vec<usize> {
        (0..self.size()).filter(|&r| !self.is_failed(r)).collect()
    }

    fn validate_rank(&self, r: usize) -> MpiResult<()> {
        if r < self.size() {
            Ok(())
        } else {
            Err(MpiError::InvalidRank {
                rank: r,
                size: self.size(),
            })
        }
    }

    fn validate_tag(tag: Tag) -> MpiResult<()> {
        if tag < RESERVED_TAG_BASE {
            Ok(())
        } else {
            Err(MpiError::InvalidCommunicator(format!(
                "application tag {tag} is in the reserved range"
            )))
        }
    }

    // ------------------------------------------------------------------
    // Point-to-point
    // ------------------------------------------------------------------

    /// Internal send of raw bytes on this communicator (used by collectives
    /// with reserved tags, hence no tag validation).
    pub(crate) fn send_bytes(
        &self,
        payload: Bytes,
        modeled_bytes: usize,
        dest: usize,
        tag: Tag,
    ) -> MpiResult<SendRequest> {
        self.validate_rank(dest)?;
        self.core.check_alive()?;
        let dst_world = self.group[dest];
        let (arrival, inject_done) = self.core.inject(modeled_bytes, dst_world);
        let env = Envelope {
            src_world: self.core.world_rank,
            dst_world,
            comm: self.id,
            tag,
            payload,
            head: None,
            modeled_bytes,
            arrival,
            seq: self.core.router.next_seq(),
        };
        self.core.ctr_messages_sent.incr();
        self.core.ctr_bytes_sent.add(modeled_bytes as u64);
        self.core.router.deliver(env);
        Ok(SendRequest::new(inject_done))
    }

    /// Sends one pre-serialized payload to several destinations (the replica
    /// fan-out of the replication layer), equivalent to — and bit-identical
    /// in virtual time with — calling [`Comm::send_payload`] once per
    /// destination in order, but with the per-send fixed costs paid once:
    /// one rank/tag/liveness validation, one block of sequence numbers
    /// (`Router::next_seq_block`), one batched statistics update.  The
    /// payload is shared by reference count; each destination's envelope
    /// clones the handle (for inline payloads a bounded memcpy, never an
    /// allocation).
    pub fn send_payload_multi(
        &self,
        payload: &Bytes,
        dests: &[usize],
        tag: Tag,
        modeled_bytes: usize,
    ) -> MpiResult<()> {
        self.send_multi_inner(payload, None, dests, tag, modeled_bytes)
    }

    /// [`Comm::send_payload_multi`] with an out-of-band 8-byte frame head.
    ///
    /// Logically sends `head.to_le_bytes() ++ payload` to every destination,
    /// but carries the head in the envelope (see [`Envelope::head`]) so the
    /// shared payload buffer is never rewritten: a protocol that stamps a
    /// per-message sequence number onto an otherwise reused buffer performs
    /// zero payload copies per send.  Receive with [`Comm::recv_framed`];
    /// `modeled_bytes` must already include the head (the wire carries it).
    pub fn send_framed_multi(
        &self,
        head: u64,
        payload: &Bytes,
        dests: &[usize],
        tag: Tag,
        modeled_bytes: usize,
    ) -> MpiResult<()> {
        self.send_multi_inner(payload, Some(head), dests, tag, modeled_bytes)
    }

    fn send_multi_inner(
        &self,
        payload: &Bytes,
        head: Option<u64>,
        dests: &[usize],
        tag: Tag,
        modeled_bytes: usize,
    ) -> MpiResult<()> {
        Self::validate_tag(tag)?;
        for &d in dests {
            self.validate_rank(d)?;
        }
        self.core.check_alive()?;
        let seq_base = self.core.router.next_seq_block(dests.len() as u64);
        // Inject per copy — each replica occupies the sending channel in
        // turn, exactly as the one-send-per-destination loop would, so every
        // arrival timestamp is unchanged — but under a single clock
        // acquisition.
        let mut world_buf = [0usize; 8];
        let mut world_vec;
        let dst_worlds: &mut [usize] = if dests.len() <= world_buf.len() {
            &mut world_buf[..dests.len()]
        } else {
            world_vec = vec![0usize; dests.len()];
            &mut world_vec[..]
        };
        for (w, &d) in dst_worlds.iter_mut().zip(dests.iter()) {
            *w = self.group[d];
        }
        let mut arr_buf = [SimTime::ZERO; 8];
        let mut arr_vec;
        let arrivals: &mut [SimTime] = if dests.len() <= arr_buf.len() {
            &mut arr_buf[..dests.len()]
        } else {
            arr_vec = vec![SimTime::ZERO; dests.len()];
            &mut arr_vec[..]
        };
        self.core.inject_multi(modeled_bytes, dst_worlds, arrivals);
        for (i, (&dst_world, &arrival)) in dst_worlds.iter().zip(arrivals.iter()).enumerate() {
            let env = Envelope {
                src_world: self.core.world_rank,
                dst_world,
                comm: self.id,
                tag,
                payload: payload.clone(),
                head,
                modeled_bytes,
                arrival,
                seq: seq_base + i as u64,
            };
            self.core.router.deliver(env);
        }
        self.core.ctr_messages_sent.add(dests.len() as u64);
        self.core
            .ctr_bytes_sent
            .add((modeled_bytes * dests.len()) as u64);
        Ok(())
    }

    /// Blocking standard-mode send of a typed slice.
    ///
    /// The send is buffered: it returns once the payload has been handed to
    /// the NIC; the sender's clock is charged the per-message overhead while
    /// the serialization occupies the NIC in the background.
    pub fn send<T: Pod>(&self, buf: &[T], dest: usize, tag: Tag) -> MpiResult<()> {
        Self::validate_tag(tag)?;
        let bytes = datatype::to_payload(buf);
        let modeled = bytes.len();
        self.send_bytes(bytes, modeled, dest, tag)?;
        Ok(())
    }

    /// Blocking send that charges the network model for `modeled_bytes`
    /// instead of the actual payload size.  Used by paper-scale experiments
    /// that run the protocol on reduced arrays (see `DESIGN.md`).
    pub fn send_with_modeled_size<T: Pod>(
        &self,
        buf: &[T],
        dest: usize,
        tag: Tag,
        modeled_bytes: usize,
    ) -> MpiResult<()> {
        Self::validate_tag(tag)?;
        let bytes = datatype::to_payload(buf);
        self.send_bytes(bytes, modeled_bytes, dest, tag)?;
        Ok(())
    }

    /// Blocking send of a pre-serialized payload.
    ///
    /// The payload is shared by reference count, never copied: a caller
    /// fanning one payload out to several destinations (the replication
    /// layer sends one copy of each logical message to every replica of the
    /// destination) clones the `Bytes` handle per destination and the
    /// serialized buffer is allocated exactly once.  `modeled_bytes` is the
    /// size charged to the network model, usually `payload.len()`.
    pub fn send_payload(
        &self,
        payload: Bytes,
        dest: usize,
        tag: Tag,
        modeled_bytes: usize,
    ) -> MpiResult<()> {
        Self::validate_tag(tag)?;
        self.send_bytes(payload, modeled_bytes, dest, tag)?;
        Ok(())
    }

    /// Non-blocking variant of [`Comm::send_payload`].
    pub fn isend_payload(
        &self,
        payload: Bytes,
        dest: usize,
        tag: Tag,
        modeled_bytes: usize,
    ) -> MpiResult<SendRequest> {
        Self::validate_tag(tag)?;
        self.send_bytes(payload, modeled_bytes, dest, tag)
    }

    /// Blocking receive of a raw payload (optionally wildcarded source /
    /// tag, the `None` cases being `MPI_ANY_SOURCE` / `MPI_ANY_TAG`).
    ///
    /// Returns the payload as reference-counted [`Bytes`] — the receiver
    /// borrows the very buffer the sender serialized, so deserialization can
    /// be deferred, partial (frame headers), or skipped entirely via
    /// [`crate::datatype::typed_view`].
    pub fn recv_payload(
        &self,
        src: Option<usize>,
        tag: Option<Tag>,
    ) -> MpiResult<(Bytes, RecvStatus)> {
        if let Some(t) = tag {
            Self::validate_tag(t)?;
        }
        self.recv_bytes(src, tag)
    }

    /// Non-blocking send.  The returned request completes when the NIC has
    /// finished injecting the message (`Comm::wait_send`).
    pub fn isend<T: Pod>(&self, buf: &[T], dest: usize, tag: Tag) -> MpiResult<SendRequest> {
        Self::validate_tag(tag)?;
        let bytes = datatype::to_payload(buf);
        let modeled = bytes.len();
        self.send_bytes(bytes, modeled, dest, tag)
    }

    /// Non-blocking send with an explicit modeled size.
    pub fn isend_with_modeled_size<T: Pod>(
        &self,
        buf: &[T],
        dest: usize,
        tag: Tag,
        modeled_bytes: usize,
    ) -> MpiResult<SendRequest> {
        Self::validate_tag(tag)?;
        let bytes = datatype::to_payload(buf);
        self.send_bytes(bytes, modeled_bytes, dest, tag)
    }

    /// Waits for a send request: the sender's clock advances to the point
    /// where the NIC finished injecting the message.
    pub fn wait_send(&self, req: SendRequest) -> MpiResult<()> {
        let t = req.consume()?;
        self.core.clock.lock().wait_until(t);
        Ok(())
    }

    /// Waits for all send requests.
    pub fn waitall_send(&self, reqs: Vec<SendRequest>) -> MpiResult<()> {
        for r in reqs {
            self.wait_send(r)?;
        }
        Ok(())
    }

    fn selector(&self, src: Option<usize>, tag: Option<Tag>) -> MpiResult<MatchSelector> {
        if let Some(s) = src {
            self.validate_rank(s)?;
        }
        Ok(MatchSelector {
            comm: self.id,
            src_world: src.map(|s| self.group[s]),
            tag,
        })
    }

    /// Internal blocking receive of raw bytes.
    pub(crate) fn recv_bytes(
        &self,
        src: Option<usize>,
        tag: Option<Tag>,
    ) -> MpiResult<(Bytes, RecvStatus)> {
        let sel = self.selector(src, tag)?;
        self.core.check_alive()?;
        let env = self.core.router.recv_blocking(self.core.world_rank, &sel)?;
        self.core.complete_recv(env.arrival, env.src_world);
        self.core.ctr_messages_received.incr();
        self.core.ctr_bytes_received.add(env.modeled_bytes as u64);
        let source = self
            .comm_rank_of_world(env.src_world)
            .expect("sender is not a member of this communicator");
        // Correctness fallback for framed sends consumed through the plain
        // byte interface: re-materialize the contiguous `head ++ payload`
        // frame the sender logically transmitted.  Framed protocols receive
        // through `recv_framed` instead, which never takes this copy.
        let payload = match env.head {
            None => env.payload,
            Some(h) => Bytes::with_len(8 + env.payload.len(), |buf| {
                buf[..8].copy_from_slice(&h.to_le_bytes());
                buf[8..].copy_from_slice(&env.payload);
            }),
        };
        let status = RecvStatus {
            source,
            tag: env.tag,
            bytes: payload.len(),
        };
        Ok((payload, status))
    }

    /// Blocking receive of a framed message: returns the 8-byte frame head
    /// and the message body separately, with zero copies either way.
    ///
    /// Accepts both representations on the wire — envelopes sent with
    /// [`Comm::send_framed_multi`] (out-of-band head) are split for free,
    /// while plain sends whose payload begins with an 8-byte little-endian
    /// head are split by reference (`slice(8..)`, no copy).  A plain
    /// message shorter than 8 bytes is a frame error.
    pub fn recv_framed(
        &self,
        src: Option<usize>,
        tag: Option<Tag>,
    ) -> MpiResult<(u64, Bytes, RecvStatus)> {
        if let Some(t) = tag {
            Self::validate_tag(t)?;
        }
        let sel = self.selector(src, tag)?;
        self.core.check_alive()?;
        let env = self.core.router.recv_blocking(self.core.world_rank, &sel)?;
        self.core.complete_recv(env.arrival, env.src_world);
        self.core.ctr_messages_received.incr();
        self.core.ctr_bytes_received.add(env.modeled_bytes as u64);
        let source = self
            .comm_rank_of_world(env.src_world)
            .expect("sender is not a member of this communicator");
        let (head, body) = match env.head {
            Some(h) => (h, env.payload),
            None => {
                if env.payload.len() < 8 {
                    return Err(MpiError::TypeMismatch {
                        bytes: env.payload.len(),
                        elem_size: 8,
                    });
                }
                let mut h = [0u8; 8];
                h.copy_from_slice(&env.payload[..8]);
                (u64::from_le_bytes(h), env.payload.slice(8..))
            }
        };
        let status = RecvStatus {
            source,
            tag: env.tag,
            bytes: body.len(),
        };
        Ok((head, body, status))
    }

    /// Blocking receive returning a freshly allocated typed vector.
    pub fn recv<T: Pod>(&self, src: usize, tag: Tag) -> MpiResult<Vec<T>> {
        Self::validate_tag(tag)?;
        let (payload, _) = self.recv_bytes(Some(src), Some(tag))?;
        datatype::from_bytes(&payload)
    }

    /// Blocking receive from any source.
    pub fn recv_any<T: Pod>(&self, tag: Tag) -> MpiResult<(Vec<T>, RecvStatus)> {
        Self::validate_tag(tag)?;
        let (payload, status) = self.recv_bytes(None, Some(tag))?;
        Ok((datatype::from_bytes(&payload)?, status))
    }

    /// Blocking receive into an existing, exactly-sized buffer.
    pub fn recv_into<T: Pod>(&self, buf: &mut [T], src: usize, tag: Tag) -> MpiResult<RecvStatus> {
        Self::validate_tag(tag)?;
        let (payload, status) = self.recv_bytes(Some(src), Some(tag))?;
        datatype::copy_into(&payload, buf)?;
        Ok(status)
    }

    /// Posts a non-blocking receive.  Matching happens at wait time, which is
    /// equivalent for timing purposes because arrival times are computed on
    /// the sender side.
    pub fn irecv(&self, src: usize, tag: Tag) -> MpiResult<RecvRequest> {
        Self::validate_tag(tag)?;
        let sel = self.selector(Some(src), Some(tag))?;
        Ok(RecvRequest::new(sel))
    }

    /// Waits for a posted receive and returns the typed payload.
    pub fn wait_recv<T: Pod>(&self, req: RecvRequest) -> MpiResult<Vec<T>> {
        let sel = req.consume()?;
        self.core.check_alive()?;
        let env = self.core.router.recv_blocking(self.core.world_rank, &sel)?;
        self.core.complete_recv(env.arrival, env.src_world);
        self.core.ctr_messages_received.incr();
        self.core.ctr_bytes_received.add(env.modeled_bytes as u64);
        datatype::from_bytes(&env.payload)
    }

    /// Waits for every posted receive, returning the payloads in request
    /// order.
    pub fn waitall_recv<T: Pod>(&self, reqs: Vec<RecvRequest>) -> MpiResult<Vec<Vec<T>>> {
        reqs.into_iter().map(|r| self.wait_recv(r)).collect()
    }

    /// Convenience: sends a single scalar.
    pub fn send_one<T: Pod>(&self, value: T, dest: usize, tag: Tag) -> MpiResult<()> {
        self.send(&[value], dest, tag)
    }

    /// Convenience: receives a single scalar.
    pub fn recv_one<T: Pod>(&self, src: usize, tag: Tag) -> MpiResult<T> {
        let v: Vec<T> = self.recv(src, tag)?;
        v.into_iter().next().ok_or(MpiError::TypeMismatch {
            bytes: 0,
            elem_size: T::SIZE,
        })
    }

    // ------------------------------------------------------------------
    // Communicator management
    // ------------------------------------------------------------------

    /// Collectively splits the communicator by `color`; members with the same
    /// color form a new communicator ordered by `key` (ties broken by the
    /// parent rank).  Like `MPI_Comm_split`, every member must call this with
    /// its own color/key.
    ///
    /// The membership of every color must be derivable locally, so this
    /// implementation requires the caller to pass the full color/key table
    /// via `colors_of_all` (an exchange the real MPI performs internally);
    /// helpers such as [`Comm::split_by`] build the table from a function of
    /// the rank, which is how all the code in this workspace uses it.
    pub fn split_with_table(&self, colors_of_all: &[(u64, u64)], my_color: u64) -> MpiResult<Comm> {
        if colors_of_all.len() != self.size() {
            return Err(MpiError::InvalidCommunicator(format!(
                "color table has {} entries for a communicator of size {}",
                colors_of_all.len(),
                self.size()
            )));
        }
        let seq = self.child_seq.fetch_add(1, Ordering::Relaxed);
        let id = mix(self.id, seq, my_color);
        let mut members: Vec<(u64, usize)> = colors_of_all
            .iter()
            .enumerate()
            .filter(|(_, (c, _))| *c == my_color)
            .map(|(r, (_, k))| (*k, r))
            .collect();
        members.sort();
        let group: Vec<usize> = members.iter().map(|&(_, r)| self.group[r]).collect();
        let my_world = self.core.world_rank;
        let my_rank = group
            .iter()
            .position(|&w| w == my_world)
            .ok_or_else(|| MpiError::InvalidCommunicator("caller not in its own color".into()))?;
        Ok(Comm {
            core: Arc::clone(&self.core),
            id,
            group: Arc::new(group),
            my_rank,
            coll_seq: Arc::new(AtomicU64::new(0)),
            child_seq: Arc::new(AtomicU64::new(0)),
        })
    }

    /// Splits the communicator using a function from communicator rank to
    /// (color, key).  Every member must pass an equivalent function.
    pub fn split_by<F>(&self, f: F) -> MpiResult<Comm>
    where
        F: Fn(usize) -> (u64, u64),
    {
        let table: Vec<(u64, u64)> = (0..self.size()).map(&f).collect();
        let (my_color, _) = f(self.rank());
        self.split_with_table(&table, my_color)
    }

    /// Duplicates the communicator (same group, fresh matching context).
    pub fn dup(&self) -> Comm {
        let seq = self.child_seq.fetch_add(1, Ordering::Relaxed);
        let id = mix(self.id, seq, u64::MAX);
        Comm {
            core: Arc::clone(&self.core),
            id,
            group: Arc::clone(&self.group),
            my_rank: self.my_rank,
            coll_seq: Arc::new(AtomicU64::new(0)),
            child_seq: Arc::new(AtomicU64::new(0)),
        }
    }

    /// Next reserved tag for an internal collective operation.
    pub(crate) fn next_collective_tag(&self) -> Tag {
        let seq = self.coll_seq.fetch_add(1, Ordering::Relaxed);
        RESERVED_TAG_BASE + (seq % ((u32::MAX - RESERVED_TAG_BASE) as u64)) as u32
    }
}
