//! Per-process state and the user-facing process handle.

use crate::error::{MpiError, MpiResult};
use crate::router::Router;
use parking_lot::Mutex;
use simcluster::{
    Counter, FailureStatusBoard, MachineModel, SimTime, StatsRegistry, Topology, VirtualClock,
};
use std::sync::Arc;

/// Internal per-process state shared by every communicator owned by one
/// simulated process.  One `ProcCore` exists per physical rank; it is only
/// ever touched from that rank's thread plus (read-only) from the report
/// collector once the run has finished, hence the plain mutexes.
pub struct ProcCore {
    pub(crate) world_rank: usize,
    pub(crate) num_procs: usize,
    pub(crate) router: Arc<Router>,
    pub(crate) machine: MachineModel,
    pub(crate) topology: Topology,
    pub(crate) clock: Mutex<VirtualClock>,
    /// Virtual time until which this process's local copy engine is busy
    /// (used for intra-node messages, which do not touch the network card).
    pub(crate) local_channel_busy_until: Mutex<SimTime>,
    /// Virtual time until which this process's share of the node NIC is busy
    /// injecting inter-node messages.
    pub(crate) nic_busy_until: Mutex<SimTime>,
    /// Number of processes co-located on this process's node.  The node's
    /// network card is fair-shared between them, so each process sees
    /// `1/nic_sharing` of the inter-node bandwidth — this contention is what
    /// makes update-heavy kernels (waxpby) perform poorly under
    /// intra-parallelization in the paper's Figure 5a.  (A static fair share
    /// is used instead of a dynamically shared busy-until timestamp so that
    /// virtual time stays causally consistent regardless of thread
    /// scheduling; the experiments are SPMD, so every co-located process is
    /// communicating at the same points anyway.)
    pub(crate) nic_sharing: f64,
    pub(crate) stats: StatsRegistry,
    /// Hot-path message counters, resolved once at construction.  The
    /// registry lookup (`RwLock` + name-keyed map) is far too expensive to
    /// repeat per message on the fabric fast path; these handles update the
    /// very counters the registry serves, so `stats` snapshots stay exact.
    pub(crate) ctr_messages_sent: Arc<Counter>,
    pub(crate) ctr_bytes_sent: Arc<Counter>,
    pub(crate) ctr_messages_received: Arc<Counter>,
    pub(crate) ctr_bytes_received: Arc<Counter>,
    pub(crate) seed: u64,
}

impl ProcCore {
    pub(crate) fn new(
        world_rank: usize,
        num_procs: usize,
        router: Arc<Router>,
        machine: MachineModel,
        topology: Topology,
        stats: StatsRegistry,
        seed: u64,
    ) -> Self {
        let node = topology.node_of(world_rank);
        let nic_sharing = topology.ranks_on(node).len().max(1) as f64;
        ProcCore {
            world_rank,
            num_procs,
            router,
            machine,
            topology,
            clock: Mutex::new(VirtualClock::new()),
            local_channel_busy_until: Mutex::new(SimTime::ZERO),
            nic_busy_until: Mutex::new(SimTime::ZERO),
            nic_sharing,
            ctr_messages_sent: stats.counter("mpi.messages_sent"),
            ctr_bytes_sent: stats.counter("mpi.bytes_sent"),
            ctr_messages_received: stats.counter("mpi.messages_received"),
            ctr_bytes_received: stats.counter("mpi.bytes_received"),
            stats,
            seed,
        }
    }

    /// Charges the local clock for a compute region.
    pub(crate) fn charge_compute(&self, flops: f64, mem_bytes: f64) {
        let dt = self.machine.compute.region_time(flops, mem_bytes);
        self.clock.lock().advance_compute(dt);
    }

    /// Charges the local clock for a plain memory copy of `bytes` bytes.
    pub(crate) fn charge_memcpy(&self, bytes: usize) {
        let dt = self.machine.compute.memcpy_time(bytes);
        self.clock.lock().advance_compute(dt);
    }

    /// Models the injection of a message of `bytes` bytes towards `dest`.
    ///
    /// Returns `(arrival, inject_done)`: the virtual time at which the
    /// message is fully available at the destination, and the virtual time
    /// at which the sending channel (node NIC for inter-node messages, local
    /// copy engine for intra-node messages) finishes injecting it.  The
    /// channel serializes back-to-back sends — and, for the node NIC, sends
    /// from *all* processes on the node — while the sender's CPU is only
    /// charged the fixed per-message overhead, so computation posted after a
    /// non-blocking send overlaps with the transfer (the overlap the paper's
    /// implementation exploits when shipping task updates).
    pub(crate) fn inject(&self, bytes: usize, dest: usize) -> (SimTime, SimTime) {
        let same_node = self.topology.same_node(self.world_rank, dest);
        let link = *self.machine.link(same_node);
        let mut clock = self.clock.lock();
        let inject_done = {
            let mut channel = if same_node {
                self.local_channel_busy_until.lock()
            } else {
                self.nic_busy_until.lock()
            };
            let start = (*channel).max(clock.now());
            // Inter-node messages only get this process's fair share of the
            // node's network card.
            let occupancy = if same_node {
                link.sender_occupancy(bytes)
            } else {
                let serialization = link
                    .wire_time(bytes)
                    .saturating_sub(SimTime::from_secs(link.latency_s))
                    * self.nic_sharing;
                SimTime::from_secs(link.send_overhead_s) + serialization
            };
            let done = start + occupancy;
            *channel = done;
            done
        };
        clock.advance_comm(SimTime::from_secs(link.send_overhead_s));
        let arrival = inject_done + SimTime::from_secs(link.latency_s);
        (arrival, inject_done)
    }

    /// Batched [`ProcCore::inject`]: charges one send per destination, in
    /// order, under a single clock acquisition.  Bit-identical in virtual
    /// time with calling `inject` once per destination (the per-destination
    /// channel reservation and the clock advance interleave in exactly the
    /// same sequence); only the host-side lock traffic is batched.  Returns
    /// the per-destination arrival times via `out`.
    pub(crate) fn inject_multi(&self, bytes: usize, dests: &[usize], out: &mut [SimTime]) {
        debug_assert_eq!(dests.len(), out.len());
        let mut clock = self.clock.lock();
        for (&dest, arrival) in dests.iter().zip(out.iter_mut()) {
            let same_node = self.topology.same_node(self.world_rank, dest);
            let link = *self.machine.link(same_node);
            let inject_done = {
                let mut channel = if same_node {
                    self.local_channel_busy_until.lock()
                } else {
                    self.nic_busy_until.lock()
                };
                let start = (*channel).max(clock.now());
                let occupancy = if same_node {
                    link.sender_occupancy(bytes)
                } else {
                    let serialization = link
                        .wire_time(bytes)
                        .saturating_sub(SimTime::from_secs(link.latency_s))
                        * self.nic_sharing;
                    SimTime::from_secs(link.send_overhead_s) + serialization
                };
                let done = start + occupancy;
                *channel = done;
                done
            };
            clock.advance_comm(SimTime::from_secs(link.send_overhead_s));
            *arrival = inject_done + SimTime::from_secs(link.latency_s);
        }
    }

    /// Completes a receive whose message arrived (in virtual time) at
    /// `arrival` from world rank `src`.
    pub(crate) fn complete_recv(&self, arrival: SimTime, src: usize) {
        let same_node = self.topology.same_node(self.world_rank, src);
        let link = self.machine.link(same_node);
        let mut clock = self.clock.lock();
        clock.wait_until(arrival);
        clock.advance_comm(link.receiver_overhead());
    }

    /// Returns an error if this process has been marked as failed.
    pub(crate) fn check_alive(&self) -> MpiResult<()> {
        if self.router.failures().is_failed(self.world_rank) {
            Err(MpiError::SelfFailed)
        } else {
            Ok(())
        }
    }
}

/// Handle given to the per-process closure by the cluster launcher.
///
/// It exposes the world communicator, virtual-time accounting, the machine
/// model, statistics, and failure injection.  Cloning is cheap; all clones
/// refer to the same process.
#[derive(Clone)]
pub struct ProcHandle {
    core: Arc<ProcCore>,
}

impl ProcHandle {
    pub(crate) fn new(core: Arc<ProcCore>) -> Self {
        ProcHandle { core }
    }

    #[allow(dead_code)]
    pub(crate) fn core(&self) -> &Arc<ProcCore> {
        &self.core
    }

    /// World rank of this process.
    pub fn rank(&self) -> usize {
        self.core.world_rank
    }

    /// Total number of physical processes in the cluster.
    pub fn num_procs(&self) -> usize {
        self.core.num_procs
    }

    /// The world communicator (all physical processes).
    pub fn world(&self) -> crate::comm::Comm {
        crate::comm::Comm::world(Arc::clone(&self.core))
    }

    /// Current virtual time of this process.
    pub fn now(&self) -> SimTime {
        self.core.clock.lock().now()
    }

    /// Charges virtual time for a compute region described by its flop count
    /// and memory traffic (roofline model).
    pub fn charge_compute(&self, flops: f64, mem_bytes: f64) {
        self.core.charge_compute(flops, mem_bytes);
    }

    /// Charges virtual time for a memory copy of `bytes` bytes.
    pub fn charge_memcpy(&self, bytes: usize) {
        self.core.charge_memcpy(bytes);
    }

    /// Charges an explicit amount of virtual time as "other" (neither compute
    /// nor communication); used by applications to model phases that are not
    /// broken down.
    pub fn charge_other(&self, dt: SimTime) {
        self.core.clock.lock().advance_other(dt);
    }

    /// Virtual-time breakdown: (now, compute, comm, wait).
    pub fn time_breakdown(&self) -> (SimTime, SimTime, SimTime, SimTime) {
        let c = self.core.clock.lock();
        (c.now(), c.compute_time(), c.comm_time(), c.wait_time())
    }

    /// The machine model in effect.
    pub fn machine(&self) -> &MachineModel {
        &self.core.machine
    }

    /// The process placement in effect.
    pub fn topology(&self) -> &Topology {
        &self.core.topology
    }

    /// Shared statistics registry.
    pub fn stats(&self) -> &StatsRegistry {
        &self.core.stats
    }

    /// Shared failure board.
    pub fn failures(&self) -> &FailureStatusBoard {
        self.core.router.failures()
    }

    /// Global seed configured for this run (use with
    /// [`simcluster::seeded_rng`] and the local rank for deterministic
    /// per-process randomness).
    pub fn seed(&self) -> u64 {
        self.core.seed
    }

    /// True if this process has been marked as crashed.
    pub fn is_failed(&self) -> bool {
        self.core.router.failures().is_failed(self.rank())
    }

    /// Injects a crash-stop failure of this process at the current virtual
    /// time: the failure board is updated and every blocked receiver in the
    /// cluster is woken so it can observe the failure.  The caller is
    /// expected to stop communicating afterwards (the runtime layers return
    /// early when they see `SelfFailed`).
    pub fn fail_here(&self) {
        let now = self.now();
        self.core.router.failures().mark_failed(self.rank(), now);
        self.core.router.notify_all();
    }

    /// Marks another rank as failed (used by test harnesses that simulate an
    /// external failure detector killing a peer).
    pub fn kill_rank(&self, rank: usize) {
        let now = self.now();
        self.core.router.failures().mark_failed(rank, now);
        self.core.router.notify_all();
    }
}
