//! Collective operations.
//!
//! The mini-applications of the paper need barriers, broadcasts, reductions,
//! all-reductions (HPCCG's `ddot`), gathers and scatters.  They are built on
//! the point-to-point layer with the classic binomial-tree / dissemination
//! algorithms, so their virtual-time cost scales as `O(log p)` rounds like a
//! production MPI.
//!
//! Every collective call consumes one reserved tag from the communicator's
//! collective sequence; since collectives are called in the same order by
//! every member (an MPI requirement), consecutive collectives can never
//! interfere even when some ranks run ahead of others.
//!
//! ## Host-side copy discipline
//!
//! Payloads move through the fabric as reference-counted [`Bytes`], so the
//! collectives serialize each distinct buffer exactly once per rank:
//! * `bcast` forwards the *received* payload handle to its children instead
//!   of re-serializing the deserialized buffer at every hop;
//! * `reduce` keeps one accumulation buffer and combines incoming payloads
//!   through a borrowed typed view ([`crate::datatype::typed_view`]) when
//!   alignment allows, falling back to one deserialization copy otherwise;
//! * `gather` decodes each received part directly into the assembly buffer;
//! * `scatter` serializes the root's buffer once and sends zero-copy
//!   sub-slices of that single allocation.
//!
//! None of this changes what is sent or when — payload sizes, message
//! counts and modeled bytes are identical to a copy-per-hop implementation,
//! so virtual-time results are unaffected.

use crate::comm::Comm;
use crate::datatype::{self, Pod};
use crate::error::{MpiError, MpiResult};
use crate::message::Tag;
use bytes::Bytes;

impl Comm {
    fn coll_send<T: Pod>(&self, buf: &[T], dest: usize, tag: Tag) -> MpiResult<()> {
        let bytes = Bytes::from(datatype::to_bytes(buf));
        let modeled = bytes.len();
        self.send_bytes(bytes, modeled, dest, tag)?;
        Ok(())
    }

    fn coll_send_payload(&self, payload: Bytes, dest: usize, tag: Tag) -> MpiResult<()> {
        let modeled = payload.len();
        self.send_bytes(payload, modeled, dest, tag)?;
        Ok(())
    }

    fn coll_recv<T: Pod>(&self, src: usize, tag: Tag) -> MpiResult<Vec<T>> {
        let (payload, _) = self.recv_bytes(Some(src), Some(tag))?;
        datatype::from_bytes(&payload)
    }

    fn coll_recv_payload(&self, src: usize, tag: Tag) -> MpiResult<Bytes> {
        let (payload, _) = self.recv_bytes(Some(src), Some(tag))?;
        Ok(payload)
    }

    /// Synchronizes all members (dissemination algorithm, `ceil(log2 p)`
    /// rounds).
    pub fn barrier(&self) -> MpiResult<()> {
        let tag = self.next_collective_tag();
        let size = self.size();
        let rank = self.rank();
        if size <= 1 {
            return Ok(());
        }
        let mut step = 1usize;
        while step < size {
            let to = (rank + step) % size;
            let from = (rank + size - step) % size;
            self.coll_send::<u8>(&[1], to, tag)?;
            let _ = self.coll_recv::<u8>(from, tag)?;
            step <<= 1;
        }
        Ok(())
    }

    /// Broadcasts `buf` from `root` to every member (binomial tree).  On
    /// non-root ranks the buffer is overwritten with the root's data; it must
    /// already have the correct length.
    ///
    /// The payload is serialized exactly once (by the root); every
    /// intermediate rank forwards the received `Bytes` handle to its
    /// children, so an `O(log p)`-deep tree performs `O(1)` serializations
    /// total instead of one per hop.
    pub fn bcast<T: Pod>(&self, buf: &mut Vec<T>, root: usize) -> MpiResult<()> {
        let size = self.size();
        let rank = self.rank();
        if root >= size {
            return Err(MpiError::InvalidRank { rank: root, size });
        }
        if size <= 1 {
            return Ok(());
        }
        let tag = self.next_collective_tag();
        let vrank = (rank + size - root) % size;

        // Receive phase: find the bit where a parent sends to us.  Non-root
        // ranks keep the received payload handle for zero-copy forwarding.
        let mut payload: Option<Bytes> = None;
        let mut mask = 1usize;
        while mask < size {
            if vrank & mask != 0 {
                let src = (vrank - mask + root) % size;
                let incoming = self.coll_recv_payload(src, tag)?;
                *buf = datatype::from_bytes(&incoming)?;
                payload = Some(incoming);
                break;
            }
            mask <<= 1;
        }
        // Send phase: forward to children on every bit below the one where
        // we received (for the root, below the highest bit reached).
        mask >>= 1;
        if mask > 0 && payload.is_none() {
            // Root with at least one child: serialize once.
            payload = Some(Bytes::from(datatype::to_bytes(buf)));
        }
        while mask > 0 {
            if vrank + mask < size {
                let dst = (vrank + mask + root) % size;
                let p = payload.clone().expect("payload exists when children do");
                self.coll_send_payload(p, dst, tag)?;
            }
            mask >>= 1;
        }
        Ok(())
    }

    /// Element-wise reduction of `data` onto `root` using `op` (binomial
    /// tree).  Returns `Some(result)` on the root and `None` elsewhere.
    ///
    /// One accumulation buffer is reused across all combine steps; incoming
    /// contributions are combined through a borrowed typed view of the
    /// received payload when alignment allows, so a combine step allocates
    /// nothing.
    pub fn reduce<T: Pod, F>(&self, data: &[T], root: usize, op: F) -> MpiResult<Option<Vec<T>>>
    where
        F: Fn(T, T) -> T,
    {
        let size = self.size();
        let rank = self.rank();
        if root >= size {
            return Err(MpiError::InvalidRank { rank: root, size });
        }
        let tag = self.next_collective_tag();
        let vrank = (rank + size - root) % size;
        let mut acc: Vec<T> = data.to_vec();

        let mut mask = 1usize;
        while mask < size {
            if vrank & mask == 0 {
                let src_v = vrank | mask;
                if src_v < size {
                    let src = (src_v + root) % size;
                    let incoming = self.coll_recv_payload(src, tag)?;
                    if incoming.len() != acc.len() * T::SIZE {
                        return Err(MpiError::TypeMismatch {
                            bytes: incoming.len(),
                            elem_size: T::SIZE,
                        });
                    }
                    match datatype::typed_view::<T>(&incoming) {
                        Some(view) => {
                            for (a, &b) in acc.iter_mut().zip(view) {
                                *a = op(*a, b);
                            }
                        }
                        None => {
                            let values = datatype::from_bytes::<T>(&incoming)?;
                            for (a, b) in acc.iter_mut().zip(values) {
                                *a = op(*a, b);
                            }
                        }
                    }
                    // Charge the combine loop: one flop-equivalent per
                    // element, reading both operands and writing one.
                    self.core()
                        .charge_compute(acc.len() as f64, (acc.len() * 3 * T::SIZE) as f64);
                }
            } else {
                let dst_v = vrank & !mask;
                let dst = (dst_v + root) % size;
                self.coll_send::<T>(&acc, dst, tag)?;
                break;
            }
            mask <<= 1;
        }
        if rank == root {
            Ok(Some(acc))
        } else {
            Ok(None)
        }
    }

    /// Element-wise all-reduction: every member receives the reduction of all
    /// contributions (reduce to rank 0 followed by a broadcast).
    pub fn allreduce<T: Pod, F>(&self, data: &[T], op: F) -> MpiResult<Vec<T>>
    where
        F: Fn(T, T) -> T,
    {
        let reduced = self.reduce(data, 0, op)?;
        let mut buf = reduced.unwrap_or_else(|| data.to_vec());
        self.bcast(&mut buf, 0)?;
        Ok(buf)
    }

    /// Sum all-reduction of one `f64` (the reduction HPCCG's `ddot` needs).
    pub fn allreduce_sum_f64(&self, value: f64) -> MpiResult<f64> {
        Ok(self.allreduce(&[value], |a, b| a + b)?[0])
    }

    /// Max all-reduction of one `f64`.
    pub fn allreduce_max_f64(&self, value: f64) -> MpiResult<f64> {
        Ok(self.allreduce(&[value], f64::max)?[0])
    }

    /// Sum all-reduction of one `u64`.
    pub fn allreduce_sum_u64(&self, value: u64) -> MpiResult<u64> {
        Ok(self.allreduce(&[value], |a, b| a + b)?[0])
    }

    /// Gathers equally sized contributions onto `root` in rank order.
    /// Returns `Some(concatenated)` on the root and `None` elsewhere.
    ///
    /// Received parts are decoded straight into the assembly buffer — no
    /// temporary per-part vector.
    pub fn gather<T: Pod>(&self, data: &[T], root: usize) -> MpiResult<Option<Vec<T>>> {
        let size = self.size();
        let rank = self.rank();
        if root >= size {
            return Err(MpiError::InvalidRank { rank: root, size });
        }
        let tag = self.next_collective_tag();
        if rank == root {
            let mut out = Vec::with_capacity(data.len() * size);
            for r in 0..size {
                if r == rank {
                    out.extend_from_slice(data);
                } else {
                    let part = self.coll_recv_payload(r, tag)?;
                    datatype::extend_from_bytes(&part, &mut out)?;
                }
            }
            Ok(Some(out))
        } else {
            self.coll_send(data, root, tag)?;
            Ok(None)
        }
    }

    /// All-gather: every member receives the concatenation of all
    /// contributions in rank order.
    pub fn allgather<T: Pod>(&self, data: &[T]) -> MpiResult<Vec<T>> {
        let gathered = self.gather(data, 0)?;
        let mut buf = gathered.unwrap_or_default();
        if self.rank() != 0 {
            buf = Vec::new();
        }
        self.bcast(&mut buf, 0)?;
        Ok(buf)
    }

    /// Scatters `size()` equally sized chunks from `root`.  `chunks` is only
    /// read on the root and must contain `size() * chunk_len` elements.
    ///
    /// The root serializes the whole buffer once and every child receives a
    /// zero-copy sub-slice of that single allocation (this removes the
    /// chunk-copy-then-serialize double copy of the flat implementation).
    pub fn scatter<T: Pod>(
        &self,
        chunks: Option<&[T]>,
        chunk_len: usize,
        root: usize,
    ) -> MpiResult<Vec<T>> {
        let size = self.size();
        let rank = self.rank();
        if root >= size {
            return Err(MpiError::InvalidRank { rank: root, size });
        }
        let tag = self.next_collective_tag();
        if rank == root {
            let all = chunks.ok_or_else(|| {
                MpiError::InvalidCommunicator("scatter root must provide the data".into())
            })?;
            if all.len() != size * chunk_len {
                return Err(MpiError::InvalidCommunicator(format!(
                    "scatter data has {} elements, expected {}",
                    all.len(),
                    size * chunk_len
                )));
            }
            let payload = Bytes::from(datatype::to_bytes(all));
            let chunk_bytes = chunk_len * T::SIZE;
            for r in 0..size {
                if r != rank {
                    let slice = payload.slice(r * chunk_bytes..(r + 1) * chunk_bytes);
                    self.coll_send_payload(slice, r, tag)?;
                }
            }
            Ok(all[rank * chunk_len..(rank + 1) * chunk_len].to_vec())
        } else {
            self.coll_recv::<T>(root, tag)
        }
    }
}
