//! Cluster launcher: spawns one OS thread per simulated physical process and
//! collects results, virtual-time breakdowns and statistics.

use crate::proc::{ProcCore, ProcHandle};
use crate::router::Router;
use parking_lot::{Condvar, Mutex};
use simcluster::{
    FailureEvent, FailureStatusBoard, MachineModel, SimTime, StatsRegistry, Topology,
};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::Arc;
use std::time::Duration;

/// Configuration of a simulated cluster run.
#[derive(Debug, Clone)]
pub struct ClusterConfig {
    /// Number of physical processes (threads) to spawn.
    pub num_procs: usize,
    /// Machine model (compute + network calibration).
    pub machine: MachineModel,
    /// Placement of processes on nodes.  Defaults to block placement with
    /// `machine.cores_per_node` processes per node.
    pub topology: Option<Topology>,
    /// Global seed for deterministic per-process randomness.
    pub seed: u64,
    /// Real-time watchdog: if the run has not finished after this wall-clock
    /// duration, all pending operations abort with `MpiError::Aborted`
    /// (protects the test suite against protocol deadlocks).
    pub watchdog: Option<Duration>,
}

impl ClusterConfig {
    /// A cluster of `num_procs` processes on the paper's Grid'5000/IB-20G
    /// machine model.
    pub fn new(num_procs: usize) -> Self {
        ClusterConfig {
            num_procs,
            machine: MachineModel::grid5000_ib20g(),
            topology: None,
            seed: 42,
            watchdog: Some(Duration::from_secs(300)),
        }
    }

    /// A cluster with a zero-cost machine model, for protocol-correctness
    /// tests that do not care about timing.
    pub fn ideal(num_procs: usize) -> Self {
        ClusterConfig {
            machine: MachineModel::ideal(),
            ..ClusterConfig::new(num_procs)
        }
    }

    /// Sets the machine model.
    pub fn with_machine(mut self, machine: MachineModel) -> Self {
        self.machine = machine;
        self
    }

    /// Sets an explicit topology.
    pub fn with_topology(mut self, topology: Topology) -> Self {
        self.topology = Some(topology);
        self
    }

    /// Sets the seed.
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Sets (or disables) the real-time watchdog.
    pub fn with_watchdog(mut self, watchdog: Option<Duration>) -> Self {
        self.watchdog = watchdog;
        self
    }

    fn resolved_topology(&self) -> Topology {
        self.topology
            .clone()
            .unwrap_or_else(|| Topology::block(self.num_procs, self.machine.cores_per_node.max(1)))
    }
}

/// Per-process summary collected after the run.
#[derive(Debug, Clone)]
pub struct ProcReport {
    /// World rank.
    pub rank: usize,
    /// Final virtual time of the process.
    pub final_time: SimTime,
    /// Virtual time attributed to computation.
    pub compute_time: SimTime,
    /// Virtual time attributed to communication (incl. waiting).
    pub comm_time: SimTime,
    /// Virtual time spent blocked waiting for remote progress.
    pub wait_time: SimTime,
    /// True if the process was marked as crashed during the run.
    pub failed: bool,
}

/// Result of a cluster run.
#[derive(Debug)]
pub struct ClusterReport<R> {
    /// Per-rank closure results (`Err` carries the panic payload if the
    /// process panicked).
    pub results: Vec<Result<R, String>>,
    /// Per-rank virtual-time summaries.
    pub procs: Vec<ProcReport>,
    /// Shared statistics registry.
    pub stats: StatsRegistry,
    /// Failure history (injected crashes).
    pub failures: Vec<FailureEvent>,
}

impl<R> ClusterReport<R> {
    /// Virtual makespan: the largest final virtual time over the processes
    /// that did *not* crash (crashed processes stop early by construction).
    pub fn makespan(&self) -> SimTime {
        self.procs
            .iter()
            .filter(|p| !p.failed)
            .map(|p| p.final_time)
            .max()
            .unwrap_or(SimTime::ZERO)
    }

    /// Largest final virtual time over all processes.
    pub fn max_time(&self) -> SimTime {
        self.procs
            .iter()
            .map(|p| p.final_time)
            .max()
            .unwrap_or(SimTime::ZERO)
    }

    /// Unwraps every per-rank result, panicking (with the original payload
    /// text) if any process panicked.
    pub fn unwrap_results(self) -> Vec<R> {
        self.results
            .into_iter()
            .enumerate()
            .map(|(rank, r)| match r {
                Ok(v) => v,
                Err(msg) => panic!("simulated process {rank} panicked: {msg}"),
            })
            .collect()
    }

    /// Result of a specific rank, if it completed without panicking.
    pub fn result_of(&self, rank: usize) -> Option<&R> {
        self.results.get(rank).and_then(|r| r.as_ref().ok())
    }

    /// True if at least one process panicked.
    pub fn any_panicked(&self) -> bool {
        self.results.iter().any(|r| r.is_err())
    }
}

fn panic_message(payload: Box<dyn std::any::Any + Send>) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "unknown panic payload".to_string()
    }
}

/// Runs `body` once per simulated physical process and collects the results.
///
/// `body` receives a [`ProcHandle`] giving access to the world communicator,
/// virtual time, failure injection and statistics.  The call returns when
/// every process has returned (or panicked, or the watchdog fired).
pub fn run_cluster<R, F>(config: &ClusterConfig, body: F) -> ClusterReport<R>
where
    R: Send,
    F: Fn(ProcHandle) -> R + Send + Sync,
{
    assert!(config.num_procs > 0, "cluster needs at least one process");
    let topology = config.resolved_topology();
    assert!(
        topology.num_procs() >= config.num_procs,
        "topology covers {} ranks but the cluster has {}",
        topology.num_procs(),
        config.num_procs
    );
    let failures = FailureStatusBoard::new(config.num_procs);
    let router = Arc::new(Router::new(config.num_procs, failures.clone()));
    let stats = StatsRegistry::new();

    let cores: Vec<Arc<ProcCore>> = (0..config.num_procs)
        .map(|rank| {
            Arc::new(ProcCore::new(
                rank,
                config.num_procs,
                Arc::clone(&router),
                config.machine,
                topology.clone(),
                stats.clone(),
                config.seed,
            ))
        })
        .collect();

    // Watchdog bookkeeping: signalled when all workers have joined.
    let done = Arc::new((Mutex::new(false), Condvar::new()));

    let results: Vec<Result<R, String>> = std::thread::scope(|scope| {
        let watchdog_handle = config.watchdog.map(|deadline| {
            let router = Arc::clone(&router);
            let done = Arc::clone(&done);
            scope.spawn(move || {
                let (lock, cvar) = &*done;
                let mut finished = lock.lock();
                if !*finished {
                    cvar.wait_for(&mut finished, deadline);
                }
                if !*finished {
                    router.abort();
                }
            })
        });

        let handles: Vec<_> = cores
            .iter()
            .map(|core| {
                let core = Arc::clone(core);
                let body = &body;
                let router = Arc::clone(&router);
                scope.spawn(move || {
                    let handle = ProcHandle::new(Arc::clone(&core));
                    let rank = handle.rank();
                    let out = catch_unwind(AssertUnwindSafe(|| body(handle)));
                    match out {
                        Ok(v) => Ok(v),
                        Err(payload) => {
                            // Mark the rank as failed so peers blocked on it
                            // observe ProcessFailed instead of hanging.
                            let now = core.clock.lock().now();
                            router.failures().mark_failed(rank, now);
                            router.notify_all();
                            Err(panic_message(payload))
                        }
                    }
                })
            })
            .collect();

        let results: Vec<Result<R, String>> = handles
            .into_iter()
            .map(|h| h.join().unwrap_or_else(|_| Err("join failed".to_string())))
            .collect();

        // Release the watchdog.
        {
            let (lock, cvar) = &*done;
            *lock.lock() = true;
            cvar.notify_all();
        }
        if let Some(w) = watchdog_handle {
            let _ = w.join();
        }
        results
    });

    let procs = cores
        .iter()
        .enumerate()
        .map(|(rank, core)| {
            let clock = core.clock.lock();
            ProcReport {
                rank,
                final_time: clock.now(),
                compute_time: clock.compute_time(),
                comm_time: clock.comm_time(),
                wait_time: clock.wait_time(),
                failed: failures.is_failed(rank),
            }
        })
        .collect();

    ClusterReport {
        results,
        procs,
        stats,
        failures: failures.events(),
    }
}
