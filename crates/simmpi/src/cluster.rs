//! Cluster launcher: spawns one OS thread per simulated physical process and
//! collects results, virtual-time breakdowns and statistics.
//!
//! Although every rank gets its own thread (bodies are arbitrary blocking
//! closures), only [`ClusterConfig::max_runnable`] of them are *runnable*
//! at once: each thread holds a permit from the router's runnable gate and
//! releases it whenever it parks in a blocking receive, so large clusters
//! behave like a small worker pool instead of thrashing the host scheduler.
//! For rank counts beyond a few thousand, use the event-driven engine
//! ([`crate::engine`]), which drops the thread-per-rank model entirely.

use crate::error::ConfigError;
use crate::proc::{ProcCore, ProcHandle};
use crate::router::Router;
use parking_lot::{Condvar, Mutex};
use simcluster::{
    FailureEvent, FailureStatusBoard, MachineModel, SimTime, StatsRegistry, Topology,
};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::Arc;
use std::time::Duration;

/// Configuration of a simulated cluster run.
#[derive(Debug, Clone)]
pub struct ClusterConfig {
    /// Number of physical processes (threads) to spawn.
    pub num_procs: usize,
    /// Machine model (compute + network calibration).
    pub machine: MachineModel,
    /// Placement of processes on nodes.  Defaults to block placement with
    /// `machine.cores_per_node` processes per node.
    pub topology: Option<Topology>,
    /// Global seed for deterministic per-process randomness.
    pub seed: u64,
    /// Real-time watchdog: if the run has not finished after this wall-clock
    /// duration, all pending operations abort with `MpiError::Aborted`
    /// (protects the test suite against protocol deadlocks).
    pub watchdog: Option<Duration>,
    /// Upper bound on simultaneously *runnable* rank threads.  One OS
    /// thread per rank still exists, but only this many hold a runnable
    /// permit at once — a thread parked in a blocking receive gives its
    /// permit back, so the host scheduler juggles a small worker-pool's
    /// worth of active threads instead of all `num_procs`.  `None` (the
    /// default) resolves to the host's available parallelism; `Some(0)` is
    /// rejected as [`crate::ConfigError::ZeroRunnable`] (no thread could
    /// ever run).  Virtual-time results are identical for every value;
    /// only host wall clock and scheduler load change.
    pub max_runnable: Option<usize>,
}

impl ClusterConfig {
    /// A cluster of `num_procs` processes on the paper's Grid'5000/IB-20G
    /// machine model.
    pub fn new(num_procs: usize) -> Self {
        ClusterConfig {
            num_procs,
            machine: MachineModel::grid5000_ib20g(),
            topology: None,
            seed: 42,
            watchdog: Some(Duration::from_secs(300)),
            max_runnable: None,
        }
    }

    /// A cluster with a zero-cost machine model, for protocol-correctness
    /// tests that do not care about timing.
    pub fn ideal(num_procs: usize) -> Self {
        ClusterConfig {
            machine: MachineModel::ideal(),
            ..ClusterConfig::new(num_procs)
        }
    }

    /// Sets the machine model.
    pub fn with_machine(mut self, machine: MachineModel) -> Self {
        self.machine = machine;
        self
    }

    /// Sets an explicit topology.
    pub fn with_topology(mut self, topology: Topology) -> Self {
        self.topology = Some(topology);
        self
    }

    /// Sets the seed.
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Sets (or disables) the real-time watchdog.
    pub fn with_watchdog(mut self, watchdog: Option<Duration>) -> Self {
        self.watchdog = watchdog;
        self
    }

    /// Sets the runnable-thread bound (`0` = host parallelism, kept for
    /// backward compatibility with the old sentinel encoding; it maps to
    /// `None`).
    pub fn with_max_runnable(mut self, max_runnable: usize) -> Self {
        self.max_runnable = (max_runnable > 0).then_some(max_runnable);
        self
    }

    fn resolved_max_runnable(&self) -> usize {
        if let Some(max_runnable) = self.max_runnable {
            return max_runnable;
        }
        // Small clusters run ungated: with only a handful of rank threads the
        // host scheduler juggles them fine, and the permit handoff on every
        // blocking receive costs more wall clock than it saves (measured ~40%
        // on the fan-out microbenchmark of an 8-rank cluster gated at 2).
        // Large clusters keep the gate so a 4096-rank campaign does not pile
        // thousands of runnable threads onto a small CI host.
        if self.num_procs <= 64 {
            return self.num_procs.max(1);
        }
        std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(8)
            .max(2)
    }

    fn resolved_topology(&self) -> Topology {
        self.topology
            .clone()
            .unwrap_or_else(|| Topology::block(self.num_procs, self.machine.cores_per_node.max(1)))
    }
}

/// Per-process summary collected after the run.
#[derive(Debug, Clone)]
pub struct ProcReport {
    /// World rank.
    pub rank: usize,
    /// Final virtual time of the process.
    pub final_time: SimTime,
    /// Virtual time attributed to computation.
    pub compute_time: SimTime,
    /// Virtual time attributed to communication (incl. waiting).
    pub comm_time: SimTime,
    /// Virtual time spent blocked waiting for remote progress.
    pub wait_time: SimTime,
    /// True if the process was marked as crashed during the run.
    pub failed: bool,
}

/// Result of a cluster run.
#[derive(Debug)]
pub struct ClusterReport<R> {
    /// Per-rank closure results (`Err` carries the panic payload if the
    /// process panicked).
    pub results: Vec<Result<R, String>>,
    /// Per-rank virtual-time summaries.
    pub procs: Vec<ProcReport>,
    /// Shared statistics registry.
    pub stats: StatsRegistry,
    /// Failure history (injected crashes).
    pub failures: Vec<FailureEvent>,
}

impl<R> ClusterReport<R> {
    /// Virtual makespan: the largest final virtual time over the processes
    /// that did *not* crash (crashed processes stop early by construction).
    ///
    /// When *every* process crashed there are no survivors to take the
    /// maximum over; the makespan then falls back to [`max_time`] over the
    /// crashed processes instead of reporting `SimTime::ZERO` — a total-loss
    /// run must not look like an instantaneous perfect one in reports and
    /// benches.  Use [`all_crashed`] to detect the case explicitly.
    ///
    /// [`max_time`]: ClusterReport::max_time
    /// [`all_crashed`]: ClusterReport::all_crashed
    pub fn makespan(&self) -> SimTime {
        self.procs
            .iter()
            .filter(|p| !p.failed)
            .map(|p| p.final_time)
            .max()
            .unwrap_or_else(|| self.max_time())
    }

    /// True if every process crashed (total loss): there are processes, and
    /// all of them were marked failed.  In this case [`makespan`] reports
    /// the time the last process reached before dying.
    ///
    /// [`makespan`]: ClusterReport::makespan
    pub fn all_crashed(&self) -> bool {
        !self.procs.is_empty() && self.procs.iter().all(|p| p.failed)
    }

    /// Largest final virtual time over all processes.
    pub fn max_time(&self) -> SimTime {
        self.procs
            .iter()
            .map(|p| p.final_time)
            .max()
            .unwrap_or(SimTime::ZERO)
    }

    /// Unwraps every per-rank result, panicking (with the original payload
    /// text) if any process panicked.
    pub fn unwrap_results(self) -> Vec<R> {
        self.results
            .into_iter()
            .enumerate()
            .map(|(rank, r)| match r {
                Ok(v) => v,
                Err(msg) => panic!("simulated process {rank} panicked: {msg}"),
            })
            .collect()
    }

    /// Result of a specific rank, if it completed without panicking.
    pub fn result_of(&self, rank: usize) -> Option<&R> {
        self.results.get(rank).and_then(|r| r.as_ref().ok())
    }

    /// True if at least one process panicked.
    pub fn any_panicked(&self) -> bool {
        self.results.iter().any(|r| r.is_err())
    }
}

/// Blocks until the run signals completion or `timeout` of wall-clock time
/// has elapsed.  Returns `true` if the watchdog expired with the run still
/// unfinished (the caller must abort), `false` if the run finished in time.
///
/// The wait loops against one *absolute* deadline: a spurious condvar wakeup
/// (permitted by every condvar implementation) re-enters the wait for the
/// remaining time instead of being mistaken for a timeout.  A single
/// `wait_for` here once aborted healthy runs whose condvar woke spuriously
/// before the deadline.
fn watchdog_expired(done: &(Mutex<bool>, Condvar), timeout: Duration) -> bool {
    let deadline = std::time::Instant::now() + timeout;
    let (lock, cvar) = done;
    let mut finished = lock.lock();
    while !*finished {
        if cvar.wait_until(&mut finished, deadline).timed_out() {
            break;
        }
    }
    !*finished
}

fn panic_message(payload: Box<dyn std::any::Any + Send>) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "unknown panic payload".to_string()
    }
}

/// Runs `body` once per simulated physical process and collects the results.
///
/// `body` receives a [`ProcHandle`] giving access to the world communicator,
/// virtual time, failure injection and statistics.  The call returns when
/// every process has returned (or panicked, or the watchdog fired).
pub fn run_cluster<R, F>(config: &ClusterConfig, body: F) -> ClusterReport<R>
where
    R: Send,
    F: Fn(ProcHandle) -> R + Send + Sync,
{
    match try_run_cluster(config, body) {
        Ok(report) => report,
        Err(e) => panic!("invalid cluster configuration: {e}"),
    }
}

/// [`run_cluster`] with the configuration validated up front: invalid
/// configurations (a zero runnable bound, an empty cluster) return a typed
/// [`ConfigError`] before any thread is spawned, instead of hanging or
/// panicking.
pub fn try_run_cluster<R, F>(
    config: &ClusterConfig,
    body: F,
) -> Result<ClusterReport<R>, ConfigError>
where
    R: Send,
    F: Fn(ProcHandle) -> R + Send + Sync,
{
    if config.num_procs == 0 {
        return Err(ConfigError::NoProcesses);
    }
    if config.max_runnable == Some(0) {
        return Err(ConfigError::ZeroRunnable);
    }
    let topology = config.resolved_topology();
    assert!(
        topology.num_procs() >= config.num_procs,
        "topology covers {} ranks but the cluster has {}",
        topology.num_procs(),
        config.num_procs
    );
    let failures = FailureStatusBoard::new(config.num_procs);
    let router = Arc::new(
        Router::new(config.num_procs, failures.clone())
            .with_runnable_limit(config.resolved_max_runnable()),
    );
    let stats = StatsRegistry::new();

    let cores: Vec<Arc<ProcCore>> = (0..config.num_procs)
        .map(|rank| {
            Arc::new(ProcCore::new(
                rank,
                config.num_procs,
                Arc::clone(&router),
                config.machine,
                topology.clone(),
                stats.clone(),
                config.seed,
            ))
        })
        .collect();

    // Watchdog bookkeeping: signalled when all workers have joined.
    let done = Arc::new((Mutex::new(false), Condvar::new()));

    let results: Vec<Result<R, String>> = std::thread::scope(|scope| {
        let watchdog_handle = config.watchdog.map(|timeout| {
            let router = Arc::clone(&router);
            let done = Arc::clone(&done);
            scope.spawn(move || {
                if watchdog_expired(&done, timeout) {
                    router.abort();
                }
            })
        });

        let handles: Vec<_> = cores
            .iter()
            .map(|core| {
                let core = Arc::clone(core);
                let body = &body;
                let router = Arc::clone(&router);
                scope.spawn(move || {
                    let handle = ProcHandle::new(Arc::clone(&core));
                    let rank = handle.rank();
                    // Hold a runnable permit for the body's lifetime (given
                    // back transparently around every blocking receive, and
                    // on panic via RAII).
                    let _permit = router.enter_runnable();
                    let out = catch_unwind(AssertUnwindSafe(|| body(handle)));
                    match out {
                        Ok(v) => Ok(v),
                        Err(payload) => {
                            // Mark the rank as failed so peers blocked on it
                            // observe ProcessFailed instead of hanging.
                            let now = core.clock.lock().now();
                            router.failures().mark_failed(rank, now);
                            router.notify_all();
                            Err(panic_message(payload))
                        }
                    }
                })
            })
            .collect();

        let results: Vec<Result<R, String>> = handles
            .into_iter()
            .map(|h| h.join().unwrap_or_else(|_| Err("join failed".to_string())))
            .collect();

        // Release the watchdog.
        {
            let (lock, cvar) = &*done;
            *lock.lock() = true;
            cvar.notify_all();
        }
        if let Some(w) = watchdog_handle {
            let _ = w.join();
        }
        results
    });

    let procs = cores
        .iter()
        .enumerate()
        .map(|(rank, core)| {
            let clock = core.clock.lock();
            ProcReport {
                rank,
                final_time: clock.now(),
                compute_time: clock.compute_time(),
                comm_time: clock.comm_time(),
                wait_time: clock.wait_time(),
                failed: failures.is_failed(rank),
            }
        })
        .collect();

    Ok(ClusterReport {
        results,
        procs,
        stats,
        failures: failures.events(),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::thread;

    /// Regression: `max_runnable == Some(0)` used to be unrepresentable
    /// gibberish (the `0` sentinel meant "auto"); now it is a typed config
    /// error instead of a hang.
    #[test]
    fn zero_runnable_bound_is_a_typed_config_error() {
        let mut config = ClusterConfig::ideal(2);
        config.max_runnable = Some(0);
        let err = try_run_cluster(&config, |_proc| 0usize).unwrap_err();
        assert_eq!(err, crate::ConfigError::ZeroRunnable);
        assert!(err.to_string().contains("max_runnable"));
        // The builder keeps the old `0 = auto` sentinel working.
        assert_eq!(
            ClusterConfig::ideal(2).with_max_runnable(0).max_runnable,
            None
        );
        let empty = try_run_cluster(&ClusterConfig::ideal(0), |_proc| 0usize).unwrap_err();
        assert_eq!(empty, crate::ConfigError::NoProcesses);
    }

    /// Regression: a spurious condvar wakeup before the deadline must
    /// re-enter the wait, not abort a healthy run.  The notifies below do
    /// *not* set `finished`, exactly like a spurious wakeup.
    #[test]
    fn watchdog_survives_spurious_wakeups() {
        let done = Arc::new((Mutex::new(false), Condvar::new()));
        let waiter = {
            let done = Arc::clone(&done);
            thread::spawn(move || watchdog_expired(&done, Duration::from_secs(60)))
        };
        for _ in 0..5 {
            thread::sleep(Duration::from_millis(2));
            done.1.notify_all();
        }
        // Now genuinely finish the run, well before the deadline.
        *done.0.lock() = true;
        done.1.notify_all();
        let expired = waiter.join().unwrap();
        assert!(!expired, "spurious wakeups must not trip the watchdog");
    }

    #[test]
    fn watchdog_expires_when_the_run_never_finishes() {
        let done = (Mutex::new(false), Condvar::new());
        assert!(watchdog_expired(&done, Duration::from_millis(20)));
    }

    #[test]
    fn watchdog_sees_a_run_that_finished_before_it_waited() {
        let done = (Mutex::new(true), Condvar::new());
        assert!(!watchdog_expired(&done, Duration::from_millis(1)));
    }

    /// Regression: when every rank crashed, the makespan must report the
    /// last death time instead of `SimTime::ZERO` — a total-loss run used to
    /// look like a perfect instantaneous one.
    #[test]
    fn makespan_of_total_loss_run_reports_last_death_time() {
        let report = run_cluster(&ClusterConfig::ideal(2), |proc| {
            proc.charge_other(SimTime::from_secs(1.0 + proc.rank() as f64));
            proc.fail_here();
        });
        assert!(report.all_crashed());
        assert_eq!(report.makespan(), report.max_time());
        assert_eq!(report.makespan().as_secs(), 2.0);
    }

    /// The runnable gate is a host-scheduling knob only: a message-passing
    /// run produces identical virtual times whether one thread is runnable
    /// at a time or all of them are.
    #[test]
    fn gate_width_does_not_change_virtual_results() {
        let run = |max_runnable: usize| {
            run_cluster(
                &ClusterConfig::new(6).with_max_runnable(max_runnable),
                |proc| {
                    let world = proc.world();
                    world.allreduce_sum_f64(proc.rank() as f64).unwrap()
                },
            )
        };
        let baseline = run(1);
        for width in [2, 3, 64] {
            let report = run(width);
            assert_eq!(report.results, baseline.results);
            for (a, b) in baseline.procs.iter().zip(&report.procs) {
                assert_eq!(a.final_time, b.final_time, "rank {}", a.rank);
                assert_eq!(a.compute_time, b.compute_time);
                assert_eq!(a.comm_time, b.comm_time);
            }
        }
    }

    /// The survivor filter is unchanged: crashed ranks still do not drag the
    /// makespan when at least one rank survived.
    #[test]
    fn makespan_still_ignores_crashed_ranks_when_survivors_exist() {
        let report = run_cluster(&ClusterConfig::ideal(2), |proc| {
            if proc.rank() == 0 {
                proc.charge_other(SimTime::from_secs(9.0));
                proc.fail_here();
            } else {
                proc.charge_other(SimTime::from_secs(3.0));
            }
        });
        assert!(!report.all_crashed());
        assert_eq!(report.makespan().as_secs(), 3.0);
        assert_eq!(report.max_time().as_secs(), 9.0);
    }
}
