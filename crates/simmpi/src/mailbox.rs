//! Indexed mailbox state shared by the two execution strategies.
//!
//! [`MailboxState`] implements the matching semantics of one rank's mailbox:
//! envelopes queue in per-`(communicator, source, tag)` FIFO lanes, and a
//! lazily-compacted arrival-order index remembers the order in which lanes
//! received envelopes.  An exact receive (explicit source and tag) is a
//! single lane lookup plus a pop — O(1) amortized regardless of how many
//! unrelated messages are queued — while a wildcard receive walks an index.
//!
//! Two wildcard disciplines are offered, one per execution strategy:
//!
//! * [`take_match`](MailboxState::take_match) matches in **delivery order**
//!   (the order `push` was called).  The condvar-based
//!   [`Router`](crate::router::Router) uses it: with one OS thread per rank,
//!   delivery order is the natural analogue of a flat mailbox scan.
//! * [`take_match_by_arrival`](MailboxState::take_match_by_arrival) matches
//!   in **virtual arrival order**, ties broken by `(source, tag, sender
//!   sequence)`.  The event-driven engine ([`crate::engine`]) uses it so
//!   that wildcard matching depends only on virtual time, never on the host
//!   order in which worker threads happened to apply deliveries.
//!
//! Both disciplines reduce to a minimum over the lanes' front envelopes:
//! arrival ids are assigned in delivery order and each lane's ids are
//! strictly increasing, so the earliest-delivered match is simply the
//! matching lane front with the smallest id.  Keeping *only* the lanes (no
//! auxiliary delivery-order index) makes `push` a single map operation —
//! the fabric's per-copy hot path — at the cost of an O(lanes) scan per
//! wildcard receive, which profiling shows is the right trade: exact
//! receives outnumber wildcards by orders of magnitude in every workload in
//! this repository.

use crate::fxhash::FxBuildHasher;
use crate::message::{Envelope, LaneKey, MatchSelector};
use std::collections::{HashMap, VecDeque};

/// The matching core of one rank's mailbox.  Not synchronized: the router
/// wraps it in a mutex/condvar pair, the engine drives it under its
/// scheduler lock.
#[derive(Default)]
pub(crate) struct MailboxState {
    /// Per-`(comm, src, tag)` FIFO lanes.  Values are `(arrival id,
    /// envelope)`; arrival ids are monotone within the mailbox, so a lane's
    /// ids are strictly increasing front to back.
    lanes: HashMap<LaneKey, VecDeque<(u64, Envelope)>, FxBuildHasher>,
    /// Next arrival id.
    next_arrival: u64,
    /// Number of envelopes currently queued.
    queued: usize,
}

impl MailboxState {
    /// Queues an envelope, assigning the next internal arrival id.
    pub(crate) fn push(&mut self, env: Envelope) {
        let id = self.next_arrival;
        self.push_with_arrival(id, env);
    }

    /// Queues an envelope under an externally-assigned arrival id.  The
    /// sharded router stamps ids from one per-mailbox atomic counter so that
    /// delivery order stays totally ordered *across* shards; each shard's
    /// `MailboxState` then only ever sees a monotone subsequence of those
    /// ids.  The caller must never reuse or reorder ids within one state
    /// (the internal counter is advanced past `id` to keep the two entry
    /// points composable).
    pub(crate) fn push_with_arrival(&mut self, id: u64, env: Envelope) {
        debug_assert!(id >= self.next_arrival, "arrival ids must be monotone");
        let key = env.lane_key();
        self.next_arrival = id + 1;
        self.lanes.entry(key).or_default().push_back((id, env));
        self.queued += 1;
    }

    /// Number of envelopes currently queued.
    pub(crate) fn queued(&self) -> usize {
        self.queued
    }

    /// Pops the front envelope of one lane, dropping the lane once empty so
    /// the map does not accumulate dead `(comm, src, tag)` combinations.
    fn pop_lane(&mut self, key: &LaneKey) -> Option<Envelope> {
        let lane = self.lanes.get_mut(key)?;
        let (_, env) = lane.pop_front()?;
        if lane.is_empty() {
            self.lanes.remove(key);
        }
        self.queued -= 1;
        Some(env)
    }

    /// Removes and returns the earliest-**delivered** envelope matching
    /// `sel`, if any — the same envelope a front-to-back scan of a flat
    /// mailbox queue would select.
    pub(crate) fn take_match(&mut self, sel: &MatchSelector) -> Option<Envelope> {
        if let Some(key) = sel.exact_lane() {
            // Fully determined selector: the match, if any, is the lane
            // front (lanes are FIFO in delivery order).
            return self.pop_lane(&key);
        }
        // Wildcard: the earliest-delivered match is the matching lane front
        // with the smallest arrival id (ids are assigned in delivery order).
        let best = self
            .lanes
            .iter()
            .filter(|(key, _)| sel.matches_lane(key))
            .filter_map(|(key, lane)| lane.front().map(|&(id, _)| (id, *key)))
            .min_by_key(|&(id, _)| id)
            .map(|(_, key)| key)?;
        self.pop_lane(&best)
    }

    /// Returns the arrival id of the earliest-**delivered** envelope
    /// matching `sel` without removing it — the id `take_match` would
    /// consume next.  The sharded router uses this to pick the winning
    /// shard for a wildcard receive: each shard reports its earliest match
    /// and the globally smallest arrival id wins.
    pub(crate) fn peek_match(&self, sel: &MatchSelector) -> Option<u64> {
        if let Some(key) = sel.exact_lane() {
            return self
                .lanes
                .get(&key)
                .and_then(|lane| lane.front())
                .map(|&(id, _)| id);
        }
        self.lanes
            .iter()
            .filter(|(key, _)| sel.matches_lane(key))
            .filter_map(|(_, lane)| lane.front().map(|&(id, _)| id))
            .min()
    }

    /// Removes and returns the envelope matching `sel` with the smallest
    /// **virtual arrival time**, ties broken by `(source, tag, sender
    /// sequence)`.
    ///
    /// Unlike [`take_match`](Self::take_match), the selection is a pure
    /// function of the queued envelopes' virtual-time stamps — it does not
    /// depend on the host order in which concurrent worker threads applied
    /// deliveries, which is what lets the event-driven engine keep wildcard
    /// receives deterministic at any worker count.  Within one lane the
    /// delivery FIFO *is* arrival order (one sender's back-to-back sends
    /// serialize on its channel, so arrivals are monotone per lane), so only
    /// the cross-lane choice differs from delivery order.
    pub(crate) fn take_match_by_arrival(&mut self, sel: &MatchSelector) -> Option<Envelope> {
        if let Some(key) = sel.exact_lane() {
            return self.pop_lane(&key);
        }
        // The candidate set is each matching lane's front.  `(arrival, src,
        // tag, seq)` totally orders the candidates (two lanes never share
        // `(src, tag)` under one selector comm), so the minimum is
        // well-defined no matter what order the hash map iterates in.
        let best = self
            .lanes
            .iter()
            .filter(|(key, _)| sel.matches_lane(key))
            .filter_map(|(key, lane)| lane.front().map(|(_, env)| (key, env)))
            .min_by(|(ka, a), (kb, b)| {
                (a.arrival, ka.1, ka.2, a.seq).cmp(&(b.arrival, kb.1, kb.2, b.seq))
            })
            .map(|(key, _)| *key)?;
        self.pop_lane(&best)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bytes::Bytes;
    use simcluster::SimTime;

    fn env_at(src: usize, tag: u32, arrival: f64, seq: u64) -> Envelope {
        Envelope {
            src_world: src,
            dst_world: 0,
            comm: 9,
            tag,
            payload: Bytes::new(),
            head: None,
            modeled_bytes: 0,
            arrival: SimTime::from_secs(arrival),
            seq,
        }
    }

    fn any(comm: u64) -> MatchSelector {
        MatchSelector {
            comm,
            src_world: None,
            tag: None,
        }
    }

    #[test]
    fn delivery_order_and_arrival_order_can_differ() {
        // Lane (src 1) delivered first but arrives later than lane (src 0).
        let mut mb = MailboxState::default();
        mb.push(env_at(1, 5, 3.0, 0));
        mb.push(env_at(0, 5, 1.0, 0));
        let mut by_delivery = MailboxState::default();
        by_delivery.push(env_at(1, 5, 3.0, 0));
        by_delivery.push(env_at(0, 5, 1.0, 0));

        // Delivery-order wildcard returns the first-delivered envelope…
        assert_eq!(by_delivery.take_match(&any(9)).unwrap().src_world, 1);
        // …while arrival-order wildcard returns the earliest arrival.
        assert_eq!(mb.take_match_by_arrival(&any(9)).unwrap().src_world, 0);
        assert_eq!(mb.take_match_by_arrival(&any(9)).unwrap().src_world, 1);
        assert_eq!(mb.queued(), 0);
    }

    #[test]
    fn arrival_order_breaks_ties_by_source_then_tag() {
        let mut mb = MailboxState::default();
        mb.push(env_at(2, 1, 1.0, 0));
        mb.push(env_at(1, 7, 1.0, 0));
        mb.push(env_at(1, 3, 1.0, 0));
        let first = mb.take_match_by_arrival(&any(9)).unwrap();
        assert_eq!((first.src_world, first.tag), (1, 3));
        let second = mb.take_match_by_arrival(&any(9)).unwrap();
        assert_eq!((second.src_world, second.tag), (1, 7));
        assert_eq!(mb.take_match_by_arrival(&any(9)).unwrap().src_world, 2);
    }

    #[test]
    fn arrival_order_respects_exact_lane_fifo() {
        let mut mb = MailboxState::default();
        mb.push(env_at(0, 5, 1.0, 0));
        mb.push(env_at(0, 5, 2.0, 1));
        let sel = MatchSelector {
            comm: 9,
            src_world: Some(0),
            tag: Some(5),
        };
        assert_eq!(mb.take_match_by_arrival(&sel).unwrap().seq, 0);
        assert_eq!(mb.take_match_by_arrival(&sel).unwrap().seq, 1);
        assert!(mb.take_match_by_arrival(&sel).is_none());
    }
}
