//! Error type for the simulated MPI runtime.

use std::fmt;

/// Errors returned by communication operations.
///
/// The variant the fault-tolerance layers care about is
/// [`MpiError::ProcessFailed`]: the paper's Algorithm 1 assumes that "trying
/// to receive an update from a failed replica returns an error", and this is
/// how that error surfaces.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum MpiError {
    /// The peer process (world rank) has crashed and the requested message
    /// will never arrive.
    ProcessFailed {
        /// World rank of the failed peer.
        rank: usize,
    },
    /// The local process has been marked as crashed; it must stop
    /// communicating.
    SelfFailed,
    /// A rank argument was outside the communicator.
    InvalidRank {
        /// The offending rank.
        rank: usize,
        /// Size of the communicator.
        size: usize,
    },
    /// The received message was larger than the posted receive buffer.
    Truncated {
        /// Bytes in the incoming message.
        got: usize,
        /// Capacity of the receive buffer.
        capacity: usize,
    },
    /// The incoming payload length is not a multiple of the element size.
    TypeMismatch {
        /// Bytes in the incoming message.
        bytes: usize,
        /// Size of one element of the requested type.
        elem_size: usize,
    },
    /// The simulation was aborted (watchdog deadline exceeded or explicit
    /// abort), so the pending operation cannot complete.
    Aborted,
    /// A collective was attempted on an empty communicator or with an
    /// otherwise invalid configuration.
    InvalidCommunicator(String),
    /// A request handle was used twice.
    RequestConsumed,
}

impl fmt::Display for MpiError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            MpiError::ProcessFailed { rank } => write!(f, "peer process {rank} has failed"),
            MpiError::SelfFailed => write!(f, "local process has been marked as failed"),
            MpiError::InvalidRank { rank, size } => {
                write!(
                    f,
                    "rank {rank} out of range for communicator of size {size}"
                )
            }
            MpiError::Truncated { got, capacity } => {
                write!(
                    f,
                    "message of {got} bytes truncated to buffer of {capacity} bytes"
                )
            }
            MpiError::TypeMismatch { bytes, elem_size } => {
                write!(
                    f,
                    "payload of {bytes} bytes is not a multiple of element size {elem_size}"
                )
            }
            MpiError::Aborted => write!(f, "simulation aborted"),
            MpiError::InvalidCommunicator(msg) => write!(f, "invalid communicator: {msg}"),
            MpiError::RequestConsumed => write!(f, "request handle already completed"),
        }
    }
}

impl std::error::Error for MpiError {}

/// Result alias used throughout the runtime.
pub type MpiResult<T> = Result<T, MpiError>;

/// Invalid launcher configurations, returned by
/// [`crate::cluster::try_run_cluster`] and
/// [`crate::engine::try_run_virtual_cluster`] before any thread is spawned.
///
/// The panicking entry points ([`crate::run_cluster`],
/// [`crate::run_virtual_cluster`]) surface the same conditions as a panic
/// with the error's message.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ConfigError {
    /// `EngineConfig::workers == Some(0)`: an engine with zero worker
    /// threads could never dispatch a rank, so the run would hang.
    ZeroWorkers,
    /// `ClusterConfig::max_runnable == Some(0)`: no rank thread could ever
    /// hold a runnable permit, so the run would hang.
    ZeroRunnable,
    /// The cluster has no processes to run.
    NoProcesses,
}

impl fmt::Display for ConfigError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ConfigError::ZeroWorkers => write!(
                f,
                "EngineConfig::workers is Some(0); use None for host parallelism \
                 or a positive worker count"
            ),
            ConfigError::ZeroRunnable => write!(
                f,
                "ClusterConfig::max_runnable is Some(0); use None for host \
                 parallelism or a positive runnable bound"
            ),
            ConfigError::NoProcesses => write!(f, "cluster needs at least one process"),
        }
    }
}

impl std::error::Error for ConfigError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages_are_informative() {
        let e = MpiError::ProcessFailed { rank: 3 };
        assert!(e.to_string().contains('3'));
        let e = MpiError::Truncated {
            got: 16,
            capacity: 8,
        };
        assert!(e.to_string().contains("16"));
        assert!(e.to_string().contains('8'));
        let e = MpiError::InvalidRank { rank: 9, size: 4 };
        assert!(e.to_string().contains('9'));
    }

    #[test]
    fn errors_are_comparable() {
        assert_eq!(
            MpiError::ProcessFailed { rank: 1 },
            MpiError::ProcessFailed { rank: 1 }
        );
        assert_ne!(MpiError::Aborted, MpiError::SelfFailed);
    }
}
