//! # simmpi — an in-process MPI-like runtime with a virtual-time cost model
//!
//! The reproduced paper implements intra-parallelization inside Open MPI and
//! runs it on an InfiniBand cluster.  `simmpi` plays the role of that MPI
//! library: every *physical process* is an OS thread, communicators and
//! point-to-point/collective operations follow MPI semantics, and all timing
//! is accounted in *virtual time* through the calibrated cost model of
//! [`simcluster`].
//!
//! ## Quick example
//!
//! ```
//! use simmpi::{run_cluster, ClusterConfig};
//!
//! let report = run_cluster(&ClusterConfig::ideal(4), |proc| {
//!     let world = proc.world();
//!     // Every rank contributes its rank; the sum must be 0+1+2+3 = 6.
//!     world.allreduce_sum_f64(world.rank() as f64).unwrap()
//! });
//! for sum in report.unwrap_results() {
//!     assert_eq!(sum, 6.0);
//! }
//! ```
//!
//! ## Layering
//!
//! * [`cluster`] spawns the threads and collects reports;
//! * [`comm`] implements communicators and point-to-point messaging;
//! * [`collectives`] adds barrier / bcast / reduce / allreduce / (all)gather /
//!   scatter;
//! * [`router`] moves envelopes between per-rank mailboxes;
//! * [`engine`] is the second execution strategy: cooperatively-scheduled
//!   rank state machines on a discrete-event virtual-time core, lifting the
//!   thread-per-rank ceiling to 10k–1M logical ranks;
//! * [`datatype`] converts typed slices to and from bytes.
//!
//! The replication layer (`replication` crate) and the intra-parallelization
//! runtime (`ipr-core`) are built purely on this public API, exactly like the
//! paper's prototype is built on (a patched) Open MPI.

#![warn(missing_docs)]
#![deny(unsafe_op_in_unsafe_fn)]

pub mod cluster;
pub mod collectives;
pub mod comm;
pub mod datatype;
pub mod engine;
pub mod error;
pub mod fxhash;
mod mailbox;
pub mod message;
pub mod proc;
pub mod request;
pub mod router;

pub use cluster::{run_cluster, try_run_cluster, ClusterConfig, ClusterReport, ProcReport};
pub use comm::{Comm, RecvStatus, WORLD_COMM_ID};
pub use datatype::{
    copied_bytes, copy_into, extend_from_bytes, from_bytes, reset_copied_bytes, to_bytes,
    to_bytes_into, to_payload, to_payload_framed, typed_view, Pod,
};
pub use engine::{
    run_virtual_cluster, try_run_virtual_cluster, EngineConfig, RankCtx, RankEnd, RankProgram,
    RecvDone, RecvOutcome, Step, VirtualClusterReport, VirtualRankReport,
};
pub use error::{ConfigError, MpiError, MpiResult};
pub use fxhash::{FxBuildHasher, FxHasher};
pub use message::{CommId, Envelope, MatchSelector, Tag, RESERVED_TAG_BASE};
pub use proc::ProcHandle;
pub use request::{RecvRequest, SendRequest};
pub use router::{Router, RunnablePermit};
