//! Message routing between simulated processes (thread-per-rank strategy).
//!
//! The router owns one mailbox per physical rank.  A mailbox is *indexed*:
//! envelopes queue in per-`(communicator, source, tag)` FIFO lanes, stamped
//! with a per-mailbox delivery-order arrival id.  An exact receive
//! (`MPI_Recv` with explicit source and tag) is a single lane lookup plus a
//! pop — O(1) amortized regardless of how many unrelated messages are queued
//! — while a wildcard receive (`MPI_ANY_SOURCE` / `MPI_ANY_TAG`) takes the
//! matching lane front with the smallest arrival id, which is exactly the
//! envelope a scan of one flat queue would have found.  Matching is purely
//! receiver-side and per-lane FIFO, which preserves MPI's non-overtaking
//! guarantee.  The matching core lives in the private `mailbox` module, shared
//! with the event-driven engine ([`crate::engine`]); the router adds the
//! blocking layer around it.
//!
//! ## Sharded synchronization
//!
//! Each mailbox is split into `LANE_SHARDS` (16) independently-locked shards;
//! a lane hashes to one shard, so senders delivering into different lanes of
//! the same mailbox — and the receiver matching a third lane — never contend
//! on one mutex.  Delivery order stays totally ordered *across* shards
//! because arrival ids come from one per-mailbox atomic counter, stamped
//! while holding the destination shard's lock (so each shard still sees a
//! monotone id sequence, which the per-shard matching core relies on).
//!
//! Blocked receivers never sleep-poll, and wakeups are *precise*:
//!
//! * An **exact** receiver parks inside its lane's shard, registering a
//!   ticketed waiter tagged with the lane it wants.  Delivery wakes a shard's
//!   condvar only when a waiter for the delivered lane exists, so the
//!   thousands of unrelated deliveries of a deep-mailbox workload cost the
//!   parked receiver nothing.
//! * A **wildcard** receiver cannot bind to one shard, so it parks on a
//!   per-mailbox eventcount: it snapshots the arrival counter (which doubles
//!   as the eventcount generation — every delivery bumps it anyway to stamp
//!   its envelope), scans every shard (locking them in index order), and
//!   sleeps only if the counter is still unchanged under the eventcount
//!   mutex.  Delivery only takes the eventcount mutex when a wildcard
//!   waiter is registered — the common wildcard-free path pays nothing
//!   beyond the arrival stamp it needs anyway.
//!
//! The router registers a waker on the shared [`FailureStatusBoard`] at
//! construction time, so a crash signaled on the board — by the failure
//! injector, a panicking process, or a test harness — wakes every blocked
//! receiver immediately; there is no re-check interval to wait out.

use crate::error::{MpiError, MpiResult};
use crate::fxhash::FxBuildHasher;
use crate::mailbox::MailboxState;
use crate::message::{Envelope, LaneKey, MatchSelector};
use parking_lot::{Condvar, Mutex};
use simcluster::FailureStatusBoard;
use std::cell::Cell;
use std::hash::BuildHasher;
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Weak};

/// Number of independently-locked lane shards per mailbox (power of two).
/// Sixteen keeps the per-mailbox footprint small while making same-shard
/// collisions between concurrently-active lanes rare.
const LANE_SHARDS: usize = 16;

thread_local! {
    /// True while the current thread holds a [`RunnablePermit`].  Lets
    /// [`Router::recv_blocking`] know whether it must release a runnable
    /// slot around its sleep (threads without a permit — tests, external
    /// callers — wait without touching the gate).
    static HOLDS_PERMIT: Cell<bool> = const { Cell::new(false) };
}

/// Counting gate that bounds how many rank threads are *runnable* at once.
///
/// With one OS thread per simulated rank, an ungated cluster makes the host
/// scheduler juggle all N threads even though most are asleep in a receive;
/// past a few hundred ranks the wakeup storms and context-switch overhead
/// dominate.  The gate caps concurrency: each rank thread holds a permit
/// while it executes and *releases it for the duration of every blocking
/// receive*, so a small worker-pool's worth of threads makes progress while
/// the rest stay parked.  Virtual-time results are unaffected — they are a
/// pure function of the messages exchanged, not of host scheduling.
///
/// A limit of `0` disables the gate entirely (every operation is a no-op).
struct RunnableGate {
    limit: usize,
    running: Mutex<usize>,
    cv: Condvar,
}

impl RunnableGate {
    fn new(limit: usize) -> Self {
        RunnableGate {
            limit,
            running: Mutex::new(0),
            cv: Condvar::new(),
        }
    }

    /// Blocks until a runnable slot is free and claims it.
    fn acquire(&self) {
        if self.limit == 0 {
            return;
        }
        let mut running = self.running.lock();
        while *running >= self.limit {
            self.cv.wait(&mut running);
        }
        *running += 1;
    }

    /// Returns a claimed slot.
    fn release(&self) {
        if self.limit == 0 {
            return;
        }
        let mut running = self.running.lock();
        *running -= 1;
        self.cv.notify_one();
    }
}

/// RAII claim on one runnable slot of a router's gate, held by a rank
/// thread for the duration of its body (see [`Router::enter_runnable`]).
/// Dropping the permit — including during a panic unwind — returns the
/// slot.
pub struct RunnablePermit<'r> {
    router: &'r Router,
}

impl Drop for RunnablePermit<'_> {
    fn drop(&mut self) {
        HOLDS_PERMIT.with(|h| h.set(false));
        self.router.gate.release();
    }
}

/// A parked exact receiver, registered in the shard that owns its lane.
struct Waiter {
    /// The lane this receiver is blocked on; delivery only marks waiters of
    /// the delivered lane (precise wakeups).
    lane: LaneKey,
    /// Distinguishes this waiter from others on the same lane.
    ticket: u64,
    /// Set by delivery into the lane or by [`Mailbox::wake_all`]; the waiter
    /// re-checks its mailbox once the flag is set.
    woken: bool,
}

/// One shard's lock-protected state: a slice of the mailbox's lanes plus the
/// exact receivers currently parked on them.
#[derive(Default)]
struct ShardState {
    mail: MailboxState,
    waiting: Vec<Waiter>,
    next_ticket: u64,
}

struct Shard {
    state: Mutex<ShardState>,
    cv: Condvar,
}

impl Shard {
    fn new() -> Self {
        Shard {
            state: Mutex::new(ShardState::default()),
            cv: Condvar::new(),
        }
    }
}

struct Mailbox {
    shards: Vec<Shard>,
    /// Per-mailbox arrival-id counter.  Stamped while holding the
    /// destination shard's lock, so ids are assigned in shard-lock
    /// acquisition order and each shard observes a monotone subsequence.
    /// Doubles as the wildcard eventcount generation: every delivery bumps
    /// it (to stamp its envelope) before any wildcard sleep re-check can
    /// observe an unchanged value, and `wake_all` bumps it once more (ids
    /// may skip values; only monotonicity matters).  SeqCst pairs with the
    /// `wild_waiters` accesses so a delivery that reads "no waiters" is
    /// ordered before a registering waiter's generation re-check.
    arrival: AtomicU64,
    /// Number of wildcard receivers currently between registration and
    /// deregistration; delivery skips the eventcount mutex when zero.
    wild_waiters: AtomicUsize,
    /// Guards the sleep/notify race of the eventcount.
    wild_mutex: Mutex<()>,
    wild_cv: Condvar,
}

impl Mailbox {
    fn new() -> Self {
        Mailbox {
            shards: (0..LANE_SHARDS).map(|_| Shard::new()).collect(),
            arrival: AtomicU64::new(0),
            wild_waiters: AtomicUsize::new(0),
            wild_mutex: Mutex::new(()),
            wild_cv: Condvar::new(),
        }
    }

    fn shard_of(key: &LaneKey) -> usize {
        let h = FxBuildHasher::default().hash_one(key);
        // Fx mixes into the high bits; take the top log2(LANE_SHARDS) of them.
        (h >> (64 - LANE_SHARDS.trailing_zeros())) as usize
    }

    /// Wakes parked wildcard receivers, if any.  The caller must already
    /// have bumped the eventcount generation (the `arrival` counter).
    /// Locking `wild_mutex` before notifying closes the race against a
    /// receiver that has re-checked the generation but not yet entered
    /// `wild_cv.wait` (the wait releases the mutex atomically).
    fn signal_wildcards(&self) {
        if self.wild_waiters.load(Ordering::SeqCst) > 0 {
            drop(self.wild_mutex.lock());
            self.wild_cv.notify_all();
        }
    }

    /// Wakes every receiver parked on this mailbox (exact and wildcard) so
    /// it can re-check abort/failure status.
    fn wake_all(&self) {
        for shard in &self.shards {
            let mut st = shard.state.lock();
            if st.waiting.is_empty() {
                continue;
            }
            for w in st.waiting.iter_mut() {
                w.woken = true;
            }
            shard.cv.notify_all();
        }
        // Bump the eventcount generation so a wildcard receiver that already
        // scanned re-checks instead of sleeping (arrival ids may skip
        // values; the matching core only needs monotonicity).
        self.arrival.fetch_add(1, Ordering::SeqCst);
        self.signal_wildcards();
    }
}

/// The shared message router of a simulated cluster.
pub struct Router {
    mailboxes: Arc<Vec<Mailbox>>,
    seq: AtomicU64,
    aborted: AtomicBool,
    failures: FailureStatusBoard,
    gate: RunnableGate,
}

impl Router {
    /// Creates a router for `num_procs` ranks sharing the given failure
    /// board.  The router registers a waker on the board so that failures
    /// signaled on it (by whatever path) immediately wake blocked receivers.
    pub fn new(num_procs: usize, failures: FailureStatusBoard) -> Self {
        let mailboxes: Arc<Vec<Mailbox>> =
            Arc::new((0..num_procs).map(|_| Mailbox::new()).collect());
        let weak: Weak<Vec<Mailbox>> = Arc::downgrade(&mailboxes);
        failures.register_waker(Arc::new(move || {
            if let Some(mailboxes) = weak.upgrade() {
                for mb in mailboxes.iter() {
                    mb.wake_all();
                }
            }
        }));
        Router {
            mailboxes,
            seq: AtomicU64::new(0),
            aborted: AtomicBool::new(false),
            failures,
            gate: RunnableGate::new(0),
        }
    }

    /// Bounds how many permit-holding rank threads are runnable at once
    /// (`0` = unbounded).  Permits are claimed with
    /// [`enter_runnable`](Router::enter_runnable) and transparently released
    /// around every blocking receive, so the limit caps host-scheduler load
    /// without changing any virtual-time result.
    pub fn with_runnable_limit(mut self, limit: usize) -> Self {
        self.gate = RunnableGate::new(limit);
        self
    }

    /// Claims a runnable slot for the current thread, blocking until one is
    /// free.  The slot is held until the returned permit drops and is
    /// temporarily given back for the duration of every
    /// [`recv_blocking`](Router::recv_blocking) sleep on this thread.
    pub fn enter_runnable(&self) -> RunnablePermit<'_> {
        self.gate.acquire();
        HOLDS_PERMIT.with(|h| h.set(true));
        RunnablePermit { router: self }
    }

    /// Number of ranks served.
    pub fn num_procs(&self) -> usize {
        self.mailboxes.len()
    }

    /// Allocates the next global sequence number.
    pub fn next_seq(&self) -> u64 {
        self.seq.fetch_add(1, Ordering::Relaxed)
    }

    /// Allocates `n` consecutive global sequence numbers in one atomic
    /// operation and returns the first.  Batched fan-out uses this to stamp
    /// a whole replica group with one counter round-trip instead of `n`.
    pub fn next_seq_block(&self, n: u64) -> u64 {
        self.seq.fetch_add(n, Ordering::Relaxed)
    }

    /// The failure board shared with this router.
    pub fn failures(&self) -> &FailureStatusBoard {
        &self.failures
    }

    /// Delivers an envelope to its destination mailbox.
    ///
    /// Messages addressed to failed processes are dropped silently (the peer
    /// will never receive them), mirroring a crashed destination.
    pub fn deliver(&self, env: Envelope) {
        let dst = env.dst_world;
        if dst >= self.mailboxes.len() {
            return;
        }
        if self.failures.is_failed(dst) {
            return;
        }
        let mb = &self.mailboxes[dst];
        let key = env.lane_key();
        let shard = &mb.shards[Mailbox::shard_of(&key)];
        let woke_exact = {
            let mut st = shard.state.lock();
            // Stamp the arrival id while holding the shard lock: ids are
            // handed out in lock-acquisition order, so this shard's matching
            // core sees them monotone even though the counter is shared with
            // the mailbox's other shards.  SeqCst because the counter doubles
            // as the wildcard eventcount generation (see `Mailbox::arrival`).
            let id = mb.arrival.fetch_add(1, Ordering::SeqCst);
            st.mail.push_with_arrival(id, env);
            let mut woke = false;
            for w in st.waiting.iter_mut() {
                if !w.woken && w.lane == key {
                    w.woken = true;
                    woke = true;
                }
            }
            woke
        };
        if woke_exact {
            shard.cv.notify_all();
        }
        mb.signal_wildcards();
    }

    /// Marks the simulation as aborted and wakes every blocked receiver.
    pub fn abort(&self) {
        self.aborted.store(true, Ordering::SeqCst);
        self.notify_all();
    }

    /// True if the simulation has been aborted.
    pub fn is_aborted(&self) -> bool {
        self.aborted.load(Ordering::SeqCst)
    }

    /// Wakes every receiver so it can re-check failure status.  Failures
    /// signaled through the shared [`FailureStatusBoard`] trigger this
    /// automatically via the registered waker; the method stays public for
    /// callers that change other observable state.
    pub fn notify_all(&self) {
        for mb in self.mailboxes.iter() {
            mb.wake_all();
        }
    }

    /// Removes and returns the earliest-delivered wildcard match across all
    /// shards of `dst`'s mailbox, if any.  Locks every shard in index order
    /// (a fixed order, so concurrent wildcard receivers cannot deadlock);
    /// exclusive access to all shards makes the cross-shard minimum exact —
    /// no delivery can slip in between the per-shard peeks.
    fn take_any(&self, dst: usize, sel: &MatchSelector) -> Option<Envelope> {
        let mb = &self.mailboxes[dst];
        let mut guards: Vec<_> = mb.shards.iter().map(|s| s.state.lock()).collect();
        let mut best: Option<(u64, usize)> = None;
        for (i, guard) in guards.iter_mut().enumerate() {
            if let Some(id) = guard.mail.peek_match(sel) {
                if best.is_none_or(|(b, _)| id < b) {
                    best = Some((id, i));
                }
            }
        }
        let (_, i) = best?;
        guards[i].mail.take_match(sel)
    }

    /// Non-blocking probe: removes and returns the earliest envelope in
    /// `dst`'s mailbox matching `sel`, if any.
    pub fn try_match(&self, dst: usize, sel: &MatchSelector) -> Option<Envelope> {
        if let Some(key) = sel.exact_lane() {
            let shard = &self.mailboxes[dst].shards[Mailbox::shard_of(&key)];
            return shard.state.lock().mail.take_match(sel);
        }
        self.take_any(dst, sel)
    }

    /// Checks the terminal conditions a blocked receiver must surface, in
    /// documented order.
    fn recv_error(&self, dst: usize, sel: &MatchSelector) -> Option<MpiError> {
        if self.is_aborted() {
            return Some(MpiError::Aborted);
        }
        if self.failures.is_failed(dst) {
            return Some(MpiError::SelfFailed);
        }
        if let Some(src) = sel.src_world {
            if self.failures.is_failed(src) {
                return Some(MpiError::ProcessFailed { rank: src });
            }
        }
        None
    }

    /// Blocking receive: waits until an envelope matching `sel` is available
    /// in `dst`'s mailbox and removes it.
    ///
    /// Returns
    /// * `Err(ProcessFailed)` if the selector names a specific source, that
    ///   source has crashed, and no matching message is queued (messages sent
    ///   before the crash remain deliverable);
    /// * `Err(SelfFailed)` if the receiving rank itself has been marked
    ///   failed;
    /// * `Err(Aborted)` if the simulation watchdog fired.
    ///
    /// The wait is event-driven.  An exact receiver registers a ticketed
    /// waiter in its lane's shard and sleeps on the shard condvar until a
    /// delivery into that lane (or a failure/abort broadcast) marks it
    /// woken; a wildcard receiver sleeps on the mailbox eventcount.  The
    /// failure checks run *before* every wait, and the wakers take the same
    /// locks the checks are sequenced against, so a crash signaled between
    /// two waits is observed immediately.
    pub fn recv_blocking(&self, dst: usize, sel: &MatchSelector) -> MpiResult<Envelope> {
        match sel.exact_lane() {
            Some(key) => self.recv_blocking_exact(dst, sel, key),
            None => self.recv_blocking_wildcard(dst, sel),
        }
    }

    fn recv_blocking_exact(
        &self,
        dst: usize,
        sel: &MatchSelector,
        key: LaneKey,
    ) -> MpiResult<Envelope> {
        let shard = &self.mailboxes[dst].shards[Mailbox::shard_of(&key)];
        let gated = HOLDS_PERMIT.with(Cell::get);
        let mut st = shard.state.lock();
        loop {
            if let Some(env) = st.mail.take_match(sel) {
                return Ok(env);
            }
            // The failure checks happen under the shard lock.  `wake_all`
            // also takes the shard lock, so a failure signaled after these
            // checks can only mark waiters once this receiver is registered
            // and parked — the wakeup cannot be lost.
            if let Some(err) = self.recv_error(dst, sel) {
                return Err(err);
            }
            let ticket = st.next_ticket;
            st.next_ticket += 1;
            st.waiting.push(Waiter {
                lane: key,
                ticket,
                woken: false,
            });
            loop {
                if gated {
                    // Give the runnable slot back while asleep so another
                    // rank thread can make the progress this one is waiting
                    // for.  Reacquire only *after* unlocking the shard:
                    // holding the shard lock while blocked on the gate would
                    // deadlock against a permit-holding sender trying to
                    // deliver into this very shard.
                    self.gate.release();
                    shard.cv.wait(&mut st);
                    drop(st);
                    self.gate.acquire();
                    st = shard.state.lock();
                } else {
                    shard.cv.wait(&mut st);
                }
                let idx = st
                    .waiting
                    .iter()
                    .position(|w| w.ticket == ticket)
                    .expect("parked waiter entry disappeared");
                if st.waiting[idx].woken {
                    st.waiting.swap_remove(idx);
                    break;
                }
            }
        }
    }

    fn recv_blocking_wildcard(&self, dst: usize, sel: &MatchSelector) -> MpiResult<Envelope> {
        let mb = &self.mailboxes[dst];
        let gated = HOLDS_PERMIT.with(Cell::get);
        loop {
            // Snapshot the generation *before* scanning: a delivery the scan
            // misses must have stamped its arrival id (bumping the counter)
            // after the scan released that shard's lock — hence after this
            // snapshot — so the re-check under `wild_mutex` below cannot
            // sleep through it.
            let gen = mb.arrival.load(Ordering::SeqCst);
            if let Some(env) = self.take_any(dst, sel) {
                return Ok(env);
            }
            if let Some(err) = self.recv_error(dst, sel) {
                return Err(err);
            }
            mb.wild_waiters.fetch_add(1, Ordering::SeqCst);
            let mut guard = mb.wild_mutex.lock();
            if mb.arrival.load(Ordering::SeqCst) == gen {
                if gated {
                    self.gate.release();
                    mb.wild_cv.wait(&mut guard);
                    drop(guard);
                    self.gate.acquire();
                } else {
                    mb.wild_cv.wait(&mut guard);
                    drop(guard);
                }
            } else {
                drop(guard);
            }
            mb.wild_waiters.fetch_sub(1, Ordering::SeqCst);
        }
    }

    /// Number of queued (unmatched) envelopes currently sitting in `dst`'s
    /// mailbox.  Diagnostic only.
    pub fn queued(&self, dst: usize) -> usize {
        self.mailboxes[dst]
            .shards
            .iter()
            .map(|s| s.state.lock().mail.queued())
            .sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bytes::Bytes;
    use simcluster::SimTime;
    use std::sync::Arc;
    use std::thread;
    use std::time::Duration;

    fn env(src: usize, dst: usize, comm: u64, tag: u32, seq: u64) -> Envelope {
        Envelope {
            src_world: src,
            dst_world: dst,
            comm,
            tag,
            payload: Bytes::from_static(b"x"),
            head: None,
            modeled_bytes: 1,
            arrival: SimTime::ZERO,
            seq,
        }
    }

    fn sel(comm: u64, src: Option<usize>, tag: Option<u32>) -> MatchSelector {
        MatchSelector {
            comm,
            src_world: src,
            tag,
        }
    }

    #[test]
    fn deliver_then_match() {
        let r = Router::new(2, FailureStatusBoard::new(2));
        r.deliver(env(0, 1, 9, 3, 0));
        assert_eq!(r.queued(1), 1);
        let got = r.try_match(1, &sel(9, Some(0), Some(3))).unwrap();
        assert_eq!(got.src_world, 0);
        assert_eq!(r.queued(1), 0);
        assert!(r.try_match(1, &sel(9, Some(0), Some(3))).is_none());
    }

    #[test]
    fn matching_preserves_fifo_per_sender_and_tag() {
        let r = Router::new(2, FailureStatusBoard::new(2));
        for seq in 0..3 {
            let mut e = env(0, 1, 9, 3, seq);
            e.modeled_bytes = seq as usize;
            r.deliver(e);
        }
        for expected in 0..3 {
            let got = r.try_match(1, &sel(9, Some(0), Some(3))).unwrap();
            assert_eq!(got.seq, expected);
        }
    }

    #[test]
    fn blocking_recv_wakes_on_delivery() {
        let board = FailureStatusBoard::new(2);
        let r = Arc::new(Router::new(2, board));
        let r2 = Arc::clone(&r);
        let h = thread::spawn(move || r2.recv_blocking(1, &sel(9, Some(0), Some(3))));
        thread::sleep(Duration::from_millis(5));
        r.deliver(env(0, 1, 9, 3, 0));
        let got = h.join().unwrap().unwrap();
        assert_eq!(got.tag, 3);
    }

    /// Wildcard receivers park on the mailbox eventcount rather than a
    /// shard condvar; a delivery into *any* lane must wake them.
    #[test]
    fn blocking_wildcard_recv_wakes_on_delivery() {
        let board = FailureStatusBoard::new(2);
        let r = Arc::new(Router::new(2, board));
        let r2 = Arc::clone(&r);
        let h = thread::spawn(move || r2.recv_blocking(1, &sel(9, None, None)));
        thread::sleep(Duration::from_millis(5));
        r.deliver(env(0, 1, 9, 3, 7));
        let got = h.join().unwrap().unwrap();
        assert_eq!((got.tag, got.seq), (3, 7));
    }

    #[test]
    fn recv_from_failed_source_errors_once_queue_is_empty() {
        let board = FailureStatusBoard::new(2);
        let r = Router::new(2, board.clone());
        // A message sent before the crash is still deliverable.
        r.deliver(env(0, 1, 9, 3, 0));
        board.mark_failed(0, SimTime::ZERO);
        assert!(r.recv_blocking(1, &sel(9, Some(0), Some(3))).is_ok());
        // Nothing queued any more: the failure must surface as an error.
        let err = r.recv_blocking(1, &sel(9, Some(0), Some(3))).unwrap_err();
        assert_eq!(err, MpiError::ProcessFailed { rank: 0 });
    }

    /// Regression (PR 4): a crash signaled on the shared failure board while
    /// a receiver is blocked mid-wait must wake it immediately through the
    /// registered board waker.  Before the indexed-mailbox rewrite the
    /// receiver only noticed on its next 20 ms re-check tick; now there is no
    /// re-check interval at all, so a missed wakeup would hang this test
    /// forever rather than pass slowly.
    #[test]
    fn failure_signaled_mid_wait_wakes_blocked_receiver() {
        let board = FailureStatusBoard::new(2);
        let r = Arc::new(Router::new(2, board.clone()));
        let r2 = Arc::clone(&r);
        let h = thread::spawn(move || r2.recv_blocking(1, &sel(9, Some(0), Some(3))));
        thread::sleep(Duration::from_millis(30));
        // Signal the crash on the board only — deliberately not calling
        // Router::notify_all, as a failure injector outside the router would.
        board.mark_failed(0, SimTime::ZERO);
        let err = h.join().unwrap().unwrap_err();
        assert_eq!(err, MpiError::ProcessFailed { rank: 0 });
    }

    /// Same regression for the wildcard path, which parks on the mailbox
    /// eventcount instead of a shard condvar.
    #[test]
    fn failure_signaled_mid_wait_wakes_blocked_wildcard_receiver() {
        let board = FailureStatusBoard::new(2);
        let r = Arc::new(Router::new(2, board.clone()));
        let r2 = Arc::clone(&r);
        let h = thread::spawn(move || r2.recv_blocking(1, &sel(9, None, None)));
        thread::sleep(Duration::from_millis(30));
        board.mark_failed(1, SimTime::ZERO);
        let err = h.join().unwrap().unwrap_err();
        assert_eq!(err, MpiError::SelfFailed);
    }

    #[test]
    fn messages_to_failed_destination_are_dropped() {
        let board = FailureStatusBoard::new(2);
        let r = Router::new(2, board.clone());
        board.mark_failed(1, SimTime::ZERO);
        r.deliver(env(0, 1, 9, 3, 0));
        assert_eq!(r.queued(1), 0);
    }

    #[test]
    fn abort_unblocks_receivers() {
        let board = FailureStatusBoard::new(2);
        let r = Arc::new(Router::new(2, board));
        let r2 = Arc::clone(&r);
        let h = thread::spawn(move || r2.recv_blocking(1, &sel(9, Some(0), Some(3))));
        thread::sleep(Duration::from_millis(5));
        r.abort();
        assert_eq!(h.join().unwrap().unwrap_err(), MpiError::Aborted);
    }

    #[test]
    fn wildcard_source_matching() {
        let r = Router::new(2, FailureStatusBoard::new(2));
        r.deliver(env(0, 1, 9, 7, 0));
        let got = r.recv_blocking(1, &sel(9, None, Some(7))).unwrap();
        assert_eq!(got.src_world, 0);
    }

    #[test]
    fn wildcard_takes_earliest_delivery_across_lanes() {
        let r = Router::new(3, FailureStatusBoard::new(3));
        // Three lanes, delivered in interleaved order.  The lanes hash to
        // different shards, so this exercises the cross-shard minimum.
        r.deliver(env(1, 2, 9, 5, 10));
        r.deliver(env(0, 2, 9, 7, 11));
        r.deliver(env(1, 2, 9, 5, 12));
        r.deliver(env(0, 2, 9, 5, 13));
        // Full wildcard drains in exact delivery order.
        let seqs: Vec<u64> = (0..4)
            .map(|_| r.try_match(2, &sel(9, None, None)).unwrap().seq)
            .collect();
        assert_eq!(seqs, vec![10, 11, 12, 13]);
    }

    #[test]
    fn wildcard_skips_entries_consumed_by_exact_receives() {
        let r = Router::new(2, FailureStatusBoard::new(2));
        r.deliver(env(0, 1, 9, 1, 0));
        r.deliver(env(0, 1, 9, 2, 1));
        r.deliver(env(0, 1, 9, 1, 2));
        // Exact receive consumes the earliest tag-1 envelope; its index
        // entry becomes stale.
        let got = r.try_match(1, &sel(9, Some(0), Some(1))).unwrap();
        assert_eq!(got.seq, 0);
        // Wildcard must now find the tag-2 envelope (earliest live), then
        // the remaining tag-1 one.
        assert_eq!(r.try_match(1, &sel(9, None, None)).unwrap().seq, 1);
        assert_eq!(r.try_match(1, &sel(9, None, None)).unwrap().seq, 2);
        assert_eq!(r.queued(1), 0);
    }

    /// Precise wakeups: deliveries into unrelated lanes must not wake an
    /// exact receiver parked on a different lane.  (Functional check — the
    /// receiver must still *only* complete once its own lane is served.)
    #[test]
    fn exact_receiver_ignores_unrelated_deliveries() {
        let board = FailureStatusBoard::new(2);
        let r = Arc::new(Router::new(2, board));
        let r2 = Arc::clone(&r);
        let h = thread::spawn(move || r2.recv_blocking(1, &sel(9, Some(0), Some(42))));
        thread::sleep(Duration::from_millis(5));
        // A burst of deliveries into other lanes of the same mailbox.
        for tag in 0..32 {
            r.deliver(env(0, 1, 9, tag, tag as u64));
        }
        thread::sleep(Duration::from_millis(5));
        assert_eq!(r.queued(1), 32);
        r.deliver(env(0, 1, 9, 42, 99));
        let got = h.join().unwrap().unwrap();
        assert_eq!((got.tag, got.seq), (42, 99));
        // The unrelated envelopes are all still queued.
        assert_eq!(r.queued(1), 32);
    }

    #[test]
    fn seq_blocks_are_disjoint_and_consecutive() {
        let r = Router::new(1, FailureStatusBoard::new(1));
        let a = r.next_seq_block(4);
        let b = r.next_seq();
        let c = r.next_seq_block(2);
        assert_eq!(b, a + 4);
        assert_eq!(c, a + 5);
    }

    #[test]
    fn runnable_gate_bounds_concurrency() {
        use std::sync::atomic::AtomicUsize;
        let r = Arc::new(Router::new(1, FailureStatusBoard::new(1)).with_runnable_limit(2));
        let concurrent = Arc::new(AtomicUsize::new(0));
        let peak = Arc::new(AtomicUsize::new(0));
        let handles: Vec<_> = (0..6)
            .map(|_| {
                let r = Arc::clone(&r);
                let concurrent = Arc::clone(&concurrent);
                let peak = Arc::clone(&peak);
                thread::spawn(move || {
                    let _permit = r.enter_runnable();
                    let now = concurrent.fetch_add(1, Ordering::SeqCst) + 1;
                    peak.fetch_max(now, Ordering::SeqCst);
                    thread::sleep(Duration::from_millis(5));
                    concurrent.fetch_sub(1, Ordering::SeqCst);
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        let peak = peak.load(Ordering::SeqCst);
        assert!(peak <= 2, "gate of 2 admitted {peak} concurrent threads");
    }

    /// The load-bearing property of the gate: a receiver parked in
    /// `recv_blocking` must give its runnable slot back, otherwise a
    /// 1-permit cluster would deadlock the moment any rank waits for a
    /// message whose sender has not run yet.
    #[test]
    fn parked_receiver_releases_its_runnable_slot() {
        let board = FailureStatusBoard::new(2);
        let r = Arc::new(Router::new(2, board).with_runnable_limit(1));
        let receiver = {
            let r = Arc::clone(&r);
            thread::spawn(move || {
                let _permit = r.enter_runnable();
                r.recv_blocking(1, &sel(9, Some(0), Some(3)))
            })
        };
        // Let the receiver claim the only permit and park.
        thread::sleep(Duration::from_millis(10));
        let sender = {
            let r = Arc::clone(&r);
            thread::spawn(move || {
                // Only acquirable because the parked receiver released it.
                let _permit = r.enter_runnable();
                r.deliver(env(0, 1, 9, 3, 0));
            })
        };
        sender.join().unwrap();
        let got = receiver.join().unwrap().unwrap();
        assert_eq!(got.tag, 3);
    }

    /// Same property for a gated *wildcard* receiver, whose sleep sits on
    /// the mailbox eventcount instead of a shard condvar.
    #[test]
    fn parked_wildcard_receiver_releases_its_runnable_slot() {
        let board = FailureStatusBoard::new(2);
        let r = Arc::new(Router::new(2, board).with_runnable_limit(1));
        let receiver = {
            let r = Arc::clone(&r);
            thread::spawn(move || {
                let _permit = r.enter_runnable();
                r.recv_blocking(1, &sel(9, None, None))
            })
        };
        thread::sleep(Duration::from_millis(10));
        let sender = {
            let r = Arc::clone(&r);
            thread::spawn(move || {
                let _permit = r.enter_runnable();
                r.deliver(env(0, 1, 9, 3, 0));
            })
        };
        sender.join().unwrap();
        let got = receiver.join().unwrap().unwrap();
        assert_eq!(got.tag, 3);
    }

    /// Long deliver/exact-receive churn leaves nothing behind: lanes are
    /// dropped when drained, so the mailbox holds no per-message state after
    /// each cycle (the memory-boundedness the old delivery-order index
    /// needed compaction for now holds structurally).
    #[test]
    fn exact_receive_churn_leaves_mailbox_empty() {
        let r = Router::new(2, FailureStatusBoard::new(2));
        for round in 0..2_000u64 {
            r.deliver(env(0, 1, 9, 3, round));
            let got = r.try_match(1, &sel(9, Some(0), Some(3))).unwrap();
            assert_eq!(got.seq, round);
        }
        assert_eq!(r.queued(1), 0);
        // A wildcard probe after the churn confirms no stale matching state.
        assert!(r.try_match(1, &sel(9, None, None)).is_none());
    }
}
