//! Message routing between simulated processes.
//!
//! The router owns one mailbox per physical rank.  A send pushes a fully
//! formed [`Envelope`] (payload + precomputed arrival time) into the
//! destination mailbox; a receive scans the mailbox for the first envelope
//! matching its [`MatchSelector`] and blocks until one appears, the expected
//! sender is declared failed, or the simulation is aborted.
//!
//! Matching is purely receiver-side, which preserves MPI's non-overtaking
//! guarantee: envelopes from a given sender are pushed in program order and
//! the scan always takes the earliest match.

use crate::error::{MpiError, MpiResult};
use crate::message::{Envelope, MatchSelector};
use parking_lot::{Condvar, Mutex};
use simcluster::FailureStatusBoard;
use std::collections::VecDeque;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::time::Duration;

/// How long a blocked receive sleeps before re-checking the failure board
/// and the abort flag.  Purely a liveness bound for the simulation host; it
/// has no effect on virtual time.
const RECHECK_INTERVAL: Duration = Duration::from_millis(20);

struct Mailbox {
    queue: Mutex<VecDeque<Envelope>>,
    cv: Condvar,
}

impl Mailbox {
    fn new() -> Self {
        Mailbox {
            queue: Mutex::new(VecDeque::new()),
            cv: Condvar::new(),
        }
    }
}

/// The shared message router of a simulated cluster.
pub struct Router {
    mailboxes: Vec<Mailbox>,
    seq: AtomicU64,
    aborted: AtomicBool,
    failures: FailureStatusBoard,
}

impl Router {
    /// Creates a router for `num_procs` ranks sharing the given failure
    /// board.
    pub fn new(num_procs: usize, failures: FailureStatusBoard) -> Self {
        Router {
            mailboxes: (0..num_procs).map(|_| Mailbox::new()).collect(),
            seq: AtomicU64::new(0),
            aborted: AtomicBool::new(false),
            failures,
        }
    }

    /// Number of ranks served.
    pub fn num_procs(&self) -> usize {
        self.mailboxes.len()
    }

    /// Allocates the next global sequence number.
    pub fn next_seq(&self) -> u64 {
        self.seq.fetch_add(1, Ordering::Relaxed)
    }

    /// The failure board shared with this router.
    pub fn failures(&self) -> &FailureStatusBoard {
        &self.failures
    }

    /// Delivers an envelope to its destination mailbox.
    ///
    /// Messages addressed to failed processes are dropped silently (the peer
    /// will never receive them), mirroring a crashed destination.
    pub fn deliver(&self, env: Envelope) {
        let dst = env.dst_world;
        if dst >= self.mailboxes.len() {
            return;
        }
        if self.failures.is_failed(dst) {
            return;
        }
        let mb = &self.mailboxes[dst];
        let mut q = mb.queue.lock();
        q.push_back(env);
        mb.cv.notify_all();
    }

    /// Marks the simulation as aborted and wakes every blocked receiver.
    pub fn abort(&self) {
        self.aborted.store(true, Ordering::SeqCst);
        self.notify_all();
    }

    /// True if the simulation has been aborted.
    pub fn is_aborted(&self) -> bool {
        self.aborted.load(Ordering::SeqCst)
    }

    /// Wakes every receiver so it can re-check failure status.  Called by the
    /// failure injector right after marking a rank as failed.
    pub fn notify_all(&self) {
        for mb in &self.mailboxes {
            let _q = mb.queue.lock();
            mb.cv.notify_all();
        }
    }

    /// Non-blocking probe: removes and returns the first envelope in `dst`'s
    /// mailbox matching `sel`, if any.
    pub fn try_match(&self, dst: usize, sel: &MatchSelector) -> Option<Envelope> {
        let mb = &self.mailboxes[dst];
        let mut q = mb.queue.lock();
        let pos = q.iter().position(|e| e.matches(sel))?;
        q.remove(pos)
    }

    /// Blocking receive: waits until an envelope matching `sel` is available
    /// in `dst`'s mailbox and removes it.
    ///
    /// Returns
    /// * `Err(ProcessFailed)` if the selector names a specific source, that
    ///   source has crashed, and no matching message is queued (messages sent
    ///   before the crash remain deliverable);
    /// * `Err(SelfFailed)` if the receiving rank itself has been marked
    ///   failed;
    /// * `Err(Aborted)` if the simulation watchdog fired.
    pub fn recv_blocking(&self, dst: usize, sel: &MatchSelector) -> MpiResult<Envelope> {
        let mb = &self.mailboxes[dst];
        let mut q = mb.queue.lock();
        loop {
            if let Some(pos) = q.iter().position(|e| e.matches(sel)) {
                // The position always exists, so the remove cannot fail.
                return Ok(q.remove(pos).expect("matched envelope vanished"));
            }
            if self.is_aborted() {
                return Err(MpiError::Aborted);
            }
            if self.failures.is_failed(dst) {
                return Err(MpiError::SelfFailed);
            }
            if let Some(src) = sel.src_world {
                if self.failures.is_failed(src) {
                    return Err(MpiError::ProcessFailed { rank: src });
                }
            }
            mb.cv.wait_for(&mut q, RECHECK_INTERVAL);
        }
    }

    /// Number of queued (unmatched) envelopes currently sitting in `dst`'s
    /// mailbox.  Diagnostic only.
    pub fn queued(&self, dst: usize) -> usize {
        self.mailboxes[dst].queue.lock().len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bytes::Bytes;
    use simcluster::SimTime;
    use std::sync::Arc;
    use std::thread;

    fn env(src: usize, dst: usize, comm: u64, tag: u32, seq: u64) -> Envelope {
        Envelope {
            src_world: src,
            dst_world: dst,
            comm,
            tag,
            payload: Bytes::from_static(b"x"),
            modeled_bytes: 1,
            arrival: SimTime::ZERO,
            seq,
        }
    }

    fn sel(comm: u64, src: Option<usize>, tag: Option<u32>) -> MatchSelector {
        MatchSelector {
            comm,
            src_world: src,
            tag,
        }
    }

    #[test]
    fn deliver_then_match() {
        let r = Router::new(2, FailureStatusBoard::new(2));
        r.deliver(env(0, 1, 9, 3, 0));
        assert_eq!(r.queued(1), 1);
        let got = r.try_match(1, &sel(9, Some(0), Some(3))).unwrap();
        assert_eq!(got.src_world, 0);
        assert_eq!(r.queued(1), 0);
        assert!(r.try_match(1, &sel(9, Some(0), Some(3))).is_none());
    }

    #[test]
    fn matching_preserves_fifo_per_sender_and_tag() {
        let r = Router::new(2, FailureStatusBoard::new(2));
        for seq in 0..3 {
            let mut e = env(0, 1, 9, 3, seq);
            e.modeled_bytes = seq as usize;
            r.deliver(e);
        }
        for expected in 0..3 {
            let got = r.try_match(1, &sel(9, Some(0), Some(3))).unwrap();
            assert_eq!(got.seq, expected);
        }
    }

    #[test]
    fn blocking_recv_wakes_on_delivery() {
        let board = FailureStatusBoard::new(2);
        let r = Arc::new(Router::new(2, board));
        let r2 = Arc::clone(&r);
        let h = thread::spawn(move || r2.recv_blocking(1, &sel(9, Some(0), Some(3))));
        thread::sleep(Duration::from_millis(5));
        r.deliver(env(0, 1, 9, 3, 0));
        let got = h.join().unwrap().unwrap();
        assert_eq!(got.tag, 3);
    }

    #[test]
    fn recv_from_failed_source_errors_once_queue_is_empty() {
        let board = FailureStatusBoard::new(2);
        let r = Router::new(2, board.clone());
        // A message sent before the crash is still deliverable.
        r.deliver(env(0, 1, 9, 3, 0));
        board.mark_failed(0, SimTime::ZERO);
        assert!(r.recv_blocking(1, &sel(9, Some(0), Some(3))).is_ok());
        // Nothing queued any more: the failure must surface as an error.
        let err = r.recv_blocking(1, &sel(9, Some(0), Some(3))).unwrap_err();
        assert_eq!(err, MpiError::ProcessFailed { rank: 0 });
    }

    #[test]
    fn messages_to_failed_destination_are_dropped() {
        let board = FailureStatusBoard::new(2);
        let r = Router::new(2, board.clone());
        board.mark_failed(1, SimTime::ZERO);
        r.deliver(env(0, 1, 9, 3, 0));
        assert_eq!(r.queued(1), 0);
    }

    #[test]
    fn abort_unblocks_receivers() {
        let board = FailureStatusBoard::new(2);
        let r = Arc::new(Router::new(2, board));
        let r2 = Arc::clone(&r);
        let h = thread::spawn(move || r2.recv_blocking(1, &sel(9, Some(0), Some(3))));
        thread::sleep(Duration::from_millis(5));
        r.abort();
        assert_eq!(h.join().unwrap().unwrap_err(), MpiError::Aborted);
    }

    #[test]
    fn wildcard_source_matching() {
        let r = Router::new(2, FailureStatusBoard::new(2));
        r.deliver(env(0, 1, 9, 7, 0));
        let got = r.recv_blocking(1, &sel(9, None, Some(7))).unwrap();
        assert_eq!(got.src_world, 0);
    }
}
