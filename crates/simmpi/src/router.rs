//! Message routing between simulated processes (thread-per-rank strategy).
//!
//! The router owns one mailbox per physical rank.  A mailbox is *indexed*:
//! envelopes queue in per-`(communicator, source, tag)` FIFO lanes, and a
//! separate delivery-order index remembers the order in which lanes received
//! envelopes.  An exact receive (`MPI_Recv` with explicit source and tag) is
//! a single lane lookup plus a pop — O(1) amortized regardless of how many
//! unrelated messages are queued — while a wildcard receive (`MPI_ANY_SOURCE`
//! / `MPI_ANY_TAG`) walks the delivery-order index, which yields exactly the
//! envelope a scan of one flat queue would have found.  Matching is purely
//! receiver-side and per-lane FIFO, which preserves MPI's non-overtaking
//! guarantee.  The matching core lives in the private `mailbox` module, shared
//! with the event-driven engine ([`crate::engine`]); the router adds the
//! blocking layer around it.
//!
//! Blocked receivers never sleep-poll.  Each mailbox pairs a generation
//! counter with a condvar: delivery, abort and failure notification bump the
//! generation and signal the condvar, and a receiver waits until the
//! generation moves.  The router registers a waker on the shared
//! [`FailureStatusBoard`] at construction time, so a crash signaled on the
//! board — by the failure injector, a panicking process, or a test harness —
//! wakes every blocked receiver immediately; there is no re-check interval
//! to wait out.

use crate::error::{MpiError, MpiResult};
use crate::mailbox::MailboxState;
use crate::message::{Envelope, MatchSelector};
use parking_lot::{Condvar, Mutex};
use simcluster::FailureStatusBoard;
use std::cell::Cell;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Weak};

thread_local! {
    /// True while the current thread holds a [`RunnablePermit`].  Lets
    /// [`Router::recv_blocking`] know whether it must release a runnable
    /// slot around its sleep (threads without a permit — tests, external
    /// callers — wait without touching the gate).
    static HOLDS_PERMIT: Cell<bool> = const { Cell::new(false) };
}

/// Counting gate that bounds how many rank threads are *runnable* at once.
///
/// With one OS thread per simulated rank, an ungated cluster makes the host
/// scheduler juggle all N threads even though most are asleep in a receive;
/// past a few hundred ranks the wakeup storms and context-switch overhead
/// dominate.  The gate caps concurrency: each rank thread holds a permit
/// while it executes and *releases it for the duration of every blocking
/// receive*, so a small worker-pool's worth of threads makes progress while
/// the rest stay parked.  Virtual-time results are unaffected — they are a
/// pure function of the messages exchanged, not of host scheduling.
///
/// A limit of `0` disables the gate entirely (every operation is a no-op).
struct RunnableGate {
    limit: usize,
    running: Mutex<usize>,
    cv: Condvar,
}

impl RunnableGate {
    fn new(limit: usize) -> Self {
        RunnableGate {
            limit,
            running: Mutex::new(0),
            cv: Condvar::new(),
        }
    }

    /// Blocks until a runnable slot is free and claims it.
    fn acquire(&self) {
        if self.limit == 0 {
            return;
        }
        let mut running = self.running.lock();
        while *running >= self.limit {
            self.cv.wait(&mut running);
        }
        *running += 1;
    }

    /// Returns a claimed slot.
    fn release(&self) {
        if self.limit == 0 {
            return;
        }
        let mut running = self.running.lock();
        *running -= 1;
        self.cv.notify_one();
    }
}

/// RAII claim on one runnable slot of a router's gate, held by a rank
/// thread for the duration of its body (see [`Router::enter_runnable`]).
/// Dropping the permit — including during a panic unwind — returns the
/// slot.
pub struct RunnablePermit<'r> {
    router: &'r Router,
}

impl Drop for RunnablePermit<'_> {
    fn drop(&mut self) {
        HOLDS_PERMIT.with(|h| h.set(false));
        self.router.gate.release();
    }
}

/// One mailbox's condvar-synchronized state: the shared matching core
/// ([`MailboxState`], also used by the event-driven engine) plus the wakeup
/// generation receivers sleep on.
#[derive(Default)]
struct MailboxSync {
    mail: MailboxState,
    /// Wakeup generation: bumped by delivery, abort and failure
    /// notification.  Receivers sleep on the condvar until it moves.
    generation: u64,
}

struct Mailbox {
    state: Mutex<MailboxSync>,
    cv: Condvar,
}

impl Mailbox {
    fn new() -> Self {
        Mailbox {
            state: Mutex::new(MailboxSync::default()),
            cv: Condvar::new(),
        }
    }

    /// Bumps the wakeup generation and signals every waiting receiver.
    fn wake(&self) {
        let mut state = self.state.lock();
        state.generation += 1;
        self.cv.notify_all();
    }
}

/// The shared message router of a simulated cluster.
pub struct Router {
    mailboxes: Arc<Vec<Mailbox>>,
    seq: AtomicU64,
    aborted: AtomicBool,
    failures: FailureStatusBoard,
    gate: RunnableGate,
}

impl Router {
    /// Creates a router for `num_procs` ranks sharing the given failure
    /// board.  The router registers a waker on the board so that failures
    /// signaled on it (by whatever path) immediately wake blocked receivers.
    pub fn new(num_procs: usize, failures: FailureStatusBoard) -> Self {
        let mailboxes: Arc<Vec<Mailbox>> =
            Arc::new((0..num_procs).map(|_| Mailbox::new()).collect());
        let weak: Weak<Vec<Mailbox>> = Arc::downgrade(&mailboxes);
        failures.register_waker(Arc::new(move || {
            if let Some(mailboxes) = weak.upgrade() {
                for mb in mailboxes.iter() {
                    mb.wake();
                }
            }
        }));
        Router {
            mailboxes,
            seq: AtomicU64::new(0),
            aborted: AtomicBool::new(false),
            failures,
            gate: RunnableGate::new(0),
        }
    }

    /// Bounds how many permit-holding rank threads are runnable at once
    /// (`0` = unbounded).  Permits are claimed with
    /// [`enter_runnable`](Router::enter_runnable) and transparently released
    /// around every blocking receive, so the limit caps host-scheduler load
    /// without changing any virtual-time result.
    pub fn with_runnable_limit(mut self, limit: usize) -> Self {
        self.gate = RunnableGate::new(limit);
        self
    }

    /// Claims a runnable slot for the current thread, blocking until one is
    /// free.  The slot is held until the returned permit drops and is
    /// temporarily given back for the duration of every
    /// [`recv_blocking`](Router::recv_blocking) sleep on this thread.
    pub fn enter_runnable(&self) -> RunnablePermit<'_> {
        self.gate.acquire();
        HOLDS_PERMIT.with(|h| h.set(true));
        RunnablePermit { router: self }
    }

    /// Number of ranks served.
    pub fn num_procs(&self) -> usize {
        self.mailboxes.len()
    }

    /// Allocates the next global sequence number.
    pub fn next_seq(&self) -> u64 {
        self.seq.fetch_add(1, Ordering::Relaxed)
    }

    /// The failure board shared with this router.
    pub fn failures(&self) -> &FailureStatusBoard {
        &self.failures
    }

    /// Delivers an envelope to its destination mailbox.
    ///
    /// Messages addressed to failed processes are dropped silently (the peer
    /// will never receive them), mirroring a crashed destination.
    pub fn deliver(&self, env: Envelope) {
        let dst = env.dst_world;
        if dst >= self.mailboxes.len() {
            return;
        }
        if self.failures.is_failed(dst) {
            return;
        }
        let mb = &self.mailboxes[dst];
        let mut state = mb.state.lock();
        state.mail.push(env);
        state.generation += 1;
        mb.cv.notify_all();
    }

    /// Marks the simulation as aborted and wakes every blocked receiver.
    pub fn abort(&self) {
        self.aborted.store(true, Ordering::SeqCst);
        self.notify_all();
    }

    /// True if the simulation has been aborted.
    pub fn is_aborted(&self) -> bool {
        self.aborted.load(Ordering::SeqCst)
    }

    /// Wakes every receiver so it can re-check failure status.  Failures
    /// signaled through the shared [`FailureStatusBoard`] trigger this
    /// automatically via the registered waker; the method stays public for
    /// callers that change other observable state.
    pub fn notify_all(&self) {
        for mb in self.mailboxes.iter() {
            mb.wake();
        }
    }

    /// Non-blocking probe: removes and returns the earliest envelope in
    /// `dst`'s mailbox matching `sel`, if any.
    pub fn try_match(&self, dst: usize, sel: &MatchSelector) -> Option<Envelope> {
        self.mailboxes[dst].state.lock().mail.take_match(sel)
    }

    /// Blocking receive: waits until an envelope matching `sel` is available
    /// in `dst`'s mailbox and removes it.
    ///
    /// Returns
    /// * `Err(ProcessFailed)` if the selector names a specific source, that
    ///   source has crashed, and no matching message is queued (messages sent
    ///   before the crash remain deliverable);
    /// * `Err(SelfFailed)` if the receiving rank itself has been marked
    ///   failed;
    /// * `Err(Aborted)` if the simulation watchdog fired.
    ///
    /// The wait is event-driven: the receiver sleeps on the mailbox condvar
    /// until the wakeup generation moves (delivery, abort, or any failure
    /// signaled on the shared board) and re-checks the conditions above in
    /// that order.  The failure checks run *before* every wait, so a crash
    /// signaled between two waits is observed immediately.
    pub fn recv_blocking(&self, dst: usize, sel: &MatchSelector) -> MpiResult<Envelope> {
        let mb = &self.mailboxes[dst];
        let mut state = mb.state.lock();
        loop {
            if let Some(env) = state.mail.take_match(sel) {
                return Ok(env);
            }
            if self.is_aborted() {
                return Err(MpiError::Aborted);
            }
            if self.failures.is_failed(dst) {
                return Err(MpiError::SelfFailed);
            }
            if let Some(src) = sel.src_world {
                if self.failures.is_failed(src) {
                    return Err(MpiError::ProcessFailed { rank: src });
                }
            }
            // Wait for the generation to move.  The generation is only ever
            // bumped under the mailbox lock, so checking it under the same
            // lock cannot miss a wakeup.
            let waited_on = state.generation;
            let gated = HOLDS_PERMIT.with(Cell::get);
            while state.generation == waited_on {
                if gated {
                    // Give the runnable slot back while asleep so another
                    // rank thread can make the progress this one is waiting
                    // for.  Reacquire only *after* unlocking the mailbox:
                    // holding the mailbox lock while blocked on the gate
                    // would deadlock against a permit-holding sender trying
                    // to deliver into this very mailbox.
                    self.gate.release();
                    mb.cv.wait(&mut state);
                    drop(state);
                    self.gate.acquire();
                    state = mb.state.lock();
                } else {
                    mb.cv.wait(&mut state);
                }
            }
        }
    }

    /// Number of queued (unmatched) envelopes currently sitting in `dst`'s
    /// mailbox.  Diagnostic only.
    pub fn queued(&self, dst: usize) -> usize {
        self.mailboxes[dst].state.lock().mail.queued()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bytes::Bytes;
    use simcluster::SimTime;
    use std::sync::Arc;
    use std::thread;
    use std::time::Duration;

    fn env(src: usize, dst: usize, comm: u64, tag: u32, seq: u64) -> Envelope {
        Envelope {
            src_world: src,
            dst_world: dst,
            comm,
            tag,
            payload: Bytes::from_static(b"x"),
            modeled_bytes: 1,
            arrival: SimTime::ZERO,
            seq,
        }
    }

    fn sel(comm: u64, src: Option<usize>, tag: Option<u32>) -> MatchSelector {
        MatchSelector {
            comm,
            src_world: src,
            tag,
        }
    }

    #[test]
    fn deliver_then_match() {
        let r = Router::new(2, FailureStatusBoard::new(2));
        r.deliver(env(0, 1, 9, 3, 0));
        assert_eq!(r.queued(1), 1);
        let got = r.try_match(1, &sel(9, Some(0), Some(3))).unwrap();
        assert_eq!(got.src_world, 0);
        assert_eq!(r.queued(1), 0);
        assert!(r.try_match(1, &sel(9, Some(0), Some(3))).is_none());
    }

    #[test]
    fn matching_preserves_fifo_per_sender_and_tag() {
        let r = Router::new(2, FailureStatusBoard::new(2));
        for seq in 0..3 {
            let mut e = env(0, 1, 9, 3, seq);
            e.modeled_bytes = seq as usize;
            r.deliver(e);
        }
        for expected in 0..3 {
            let got = r.try_match(1, &sel(9, Some(0), Some(3))).unwrap();
            assert_eq!(got.seq, expected);
        }
    }

    #[test]
    fn blocking_recv_wakes_on_delivery() {
        let board = FailureStatusBoard::new(2);
        let r = Arc::new(Router::new(2, board));
        let r2 = Arc::clone(&r);
        let h = thread::spawn(move || r2.recv_blocking(1, &sel(9, Some(0), Some(3))));
        thread::sleep(Duration::from_millis(5));
        r.deliver(env(0, 1, 9, 3, 0));
        let got = h.join().unwrap().unwrap();
        assert_eq!(got.tag, 3);
    }

    #[test]
    fn recv_from_failed_source_errors_once_queue_is_empty() {
        let board = FailureStatusBoard::new(2);
        let r = Router::new(2, board.clone());
        // A message sent before the crash is still deliverable.
        r.deliver(env(0, 1, 9, 3, 0));
        board.mark_failed(0, SimTime::ZERO);
        assert!(r.recv_blocking(1, &sel(9, Some(0), Some(3))).is_ok());
        // Nothing queued any more: the failure must surface as an error.
        let err = r.recv_blocking(1, &sel(9, Some(0), Some(3))).unwrap_err();
        assert_eq!(err, MpiError::ProcessFailed { rank: 0 });
    }

    /// Regression (PR 4): a crash signaled on the shared failure board while
    /// a receiver is blocked mid-wait must wake it immediately through the
    /// registered board waker.  Before the indexed-mailbox rewrite the
    /// receiver only noticed on its next 20 ms re-check tick; now there is no
    /// re-check interval at all, so a missed wakeup would hang this test
    /// forever rather than pass slowly.
    #[test]
    fn failure_signaled_mid_wait_wakes_blocked_receiver() {
        let board = FailureStatusBoard::new(2);
        let r = Arc::new(Router::new(2, board.clone()));
        let r2 = Arc::clone(&r);
        let h = thread::spawn(move || r2.recv_blocking(1, &sel(9, Some(0), Some(3))));
        thread::sleep(Duration::from_millis(30));
        // Signal the crash on the board only — deliberately not calling
        // Router::notify_all, as a failure injector outside the router would.
        board.mark_failed(0, SimTime::ZERO);
        let err = h.join().unwrap().unwrap_err();
        assert_eq!(err, MpiError::ProcessFailed { rank: 0 });
    }

    #[test]
    fn messages_to_failed_destination_are_dropped() {
        let board = FailureStatusBoard::new(2);
        let r = Router::new(2, board.clone());
        board.mark_failed(1, SimTime::ZERO);
        r.deliver(env(0, 1, 9, 3, 0));
        assert_eq!(r.queued(1), 0);
    }

    #[test]
    fn abort_unblocks_receivers() {
        let board = FailureStatusBoard::new(2);
        let r = Arc::new(Router::new(2, board));
        let r2 = Arc::clone(&r);
        let h = thread::spawn(move || r2.recv_blocking(1, &sel(9, Some(0), Some(3))));
        thread::sleep(Duration::from_millis(5));
        r.abort();
        assert_eq!(h.join().unwrap().unwrap_err(), MpiError::Aborted);
    }

    #[test]
    fn wildcard_source_matching() {
        let r = Router::new(2, FailureStatusBoard::new(2));
        r.deliver(env(0, 1, 9, 7, 0));
        let got = r.recv_blocking(1, &sel(9, None, Some(7))).unwrap();
        assert_eq!(got.src_world, 0);
    }

    #[test]
    fn wildcard_takes_earliest_delivery_across_lanes() {
        let r = Router::new(3, FailureStatusBoard::new(3));
        // Three lanes, delivered in interleaved order.
        r.deliver(env(1, 2, 9, 5, 10));
        r.deliver(env(0, 2, 9, 7, 11));
        r.deliver(env(1, 2, 9, 5, 12));
        r.deliver(env(0, 2, 9, 5, 13));
        // Full wildcard drains in exact delivery order.
        let seqs: Vec<u64> = (0..4)
            .map(|_| r.try_match(2, &sel(9, None, None)).unwrap().seq)
            .collect();
        assert_eq!(seqs, vec![10, 11, 12, 13]);
    }

    #[test]
    fn wildcard_skips_entries_consumed_by_exact_receives() {
        let r = Router::new(2, FailureStatusBoard::new(2));
        r.deliver(env(0, 1, 9, 1, 0));
        r.deliver(env(0, 1, 9, 2, 1));
        r.deliver(env(0, 1, 9, 1, 2));
        // Exact receive consumes the earliest tag-1 envelope; its index
        // entry becomes stale.
        let got = r.try_match(1, &sel(9, Some(0), Some(1))).unwrap();
        assert_eq!(got.seq, 0);
        // Wildcard must now find the tag-2 envelope (earliest live), then
        // the remaining tag-1 one.
        assert_eq!(r.try_match(1, &sel(9, None, None)).unwrap().seq, 1);
        assert_eq!(r.try_match(1, &sel(9, None, None)).unwrap().seq, 2);
        assert_eq!(r.queued(1), 0);
    }

    #[test]
    fn runnable_gate_bounds_concurrency() {
        use std::sync::atomic::AtomicUsize;
        let r = Arc::new(Router::new(1, FailureStatusBoard::new(1)).with_runnable_limit(2));
        let concurrent = Arc::new(AtomicUsize::new(0));
        let peak = Arc::new(AtomicUsize::new(0));
        let handles: Vec<_> = (0..6)
            .map(|_| {
                let r = Arc::clone(&r);
                let concurrent = Arc::clone(&concurrent);
                let peak = Arc::clone(&peak);
                thread::spawn(move || {
                    let _permit = r.enter_runnable();
                    let now = concurrent.fetch_add(1, Ordering::SeqCst) + 1;
                    peak.fetch_max(now, Ordering::SeqCst);
                    thread::sleep(Duration::from_millis(5));
                    concurrent.fetch_sub(1, Ordering::SeqCst);
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        let peak = peak.load(Ordering::SeqCst);
        assert!(peak <= 2, "gate of 2 admitted {peak} concurrent threads");
    }

    /// The load-bearing property of the gate: a receiver parked in
    /// `recv_blocking` must give its runnable slot back, otherwise a
    /// 1-permit cluster would deadlock the moment any rank waits for a
    /// message whose sender has not run yet.
    #[test]
    fn parked_receiver_releases_its_runnable_slot() {
        let board = FailureStatusBoard::new(2);
        let r = Arc::new(Router::new(2, board).with_runnable_limit(1));
        let receiver = {
            let r = Arc::clone(&r);
            thread::spawn(move || {
                let _permit = r.enter_runnable();
                r.recv_blocking(1, &sel(9, Some(0), Some(3)))
            })
        };
        // Let the receiver claim the only permit and park.
        thread::sleep(Duration::from_millis(10));
        let sender = {
            let r = Arc::clone(&r);
            thread::spawn(move || {
                // Only acquirable because the parked receiver released it.
                let _permit = r.enter_runnable();
                r.deliver(env(0, 1, 9, 3, 0));
            })
        };
        sender.join().unwrap();
        let got = receiver.join().unwrap().unwrap();
        assert_eq!(got.tag, 3);
    }

    #[test]
    fn index_compaction_keeps_memory_bounded_without_wildcards() {
        let r = Router::new(2, FailureStatusBoard::new(2));
        // Many deliver/exact-receive cycles never run a wildcard scan, so
        // stale index entries are only dropped by compaction.
        for round in 0..2_000u64 {
            r.deliver(env(0, 1, 9, 3, round));
            let got = r.try_match(1, &sel(9, Some(0), Some(3))).unwrap();
            assert_eq!(got.seq, round);
        }
        let state = r.mailboxes[1].state.lock();
        assert_eq!(state.mail.queued(), 0);
        assert!(
            state.mail.index_len() <= crate::mailbox::COMPACT_SLACK + 2,
            "stale index entries must be compacted away, found {}",
            state.mail.index_len()
        );
    }
}
