//! Event-driven execution strategy: N logical ranks on a small worker pool.
//!
//! The thread-per-rank launcher ([`crate::cluster::run_cluster`]) maps every
//! simulated rank onto one OS thread, which caps experiments at a few
//! thousand ranks.  This module lifts that ceiling: rank bodies are
//! *cooperatively scheduled state machines* ([`RankProgram`]) driven by the
//! discrete-event core of [`simcluster::VirtualEngine`], so 10k–1M logical
//! ranks run on a handful of worker threads.
//!
//! ## Execution model
//!
//! A [`RankProgram`] yields one [`Step`] at a time: charge compute, send a
//! message, receive a message, or finish.  The driver runs each rank in
//! *bursts*: compute charges and sends are rank-local (the sender's channel
//! busy-until times live with the rank), so a burst proceeds lock-free until
//! the program posts a `Recv` — the engine's only continuation point.  A
//! receive that cannot be matched parks the rank; the matching delivery
//! later schedules a resumption at the message's virtual arrival time.
//! Where the router blocks an OS thread on a mailbox condvar, the engine
//! parks a task and wakes it by event — the same generation/waker semantics
//! expressed as continuations.
//!
//! ## Determinism
//!
//! Virtual-time results are independent of the number of worker threads and
//! of host scheduling:
//!
//! * every per-rank quantity (clock, channel busy-until) is touched only by
//!   the rank itself, and a receive completes at `max(receiver clock,
//!   arrival) + overhead` regardless of *when* in host time the match
//!   happened (the conservative-clock rule of [`simcluster::clock`]);
//! * wildcard receives match in virtual **arrival** order (ties broken by
//!   source, tag, sender sequence — see
//!   `MailboxState::take_match_by_arrival`), not host delivery order, when
//!   the candidates are already queued.  Programs whose wildcard receives
//!   race with in-flight sends should run with one worker or use exact
//!   sources (every workload in `apps` uses exact sources);
//! * failure injection is rank-local: a crash scheduled at virtual time *t*
//!   fires at the first step boundary where the rank's own clock has
//!   reached *t*, mirroring the protocol-point semantics of the
//!   thread-world failure injector;
//! * the report sorts failure events by `(time, rank)` and rank rows by
//!   rank, so serialized output is byte-stable across worker counts.
//!
//! ## Liveness
//!
//! The thread world needs a wall-clock watchdog because a deadlocked
//! protocol leaves threads blocked forever.  The engine does not: when the
//! event queue drains with ranks still parked, those ranks are *provably*
//! deadlocked (nothing can ever wake them) and are reported as errored —
//! deadlock detection falls out of the scheduler for free.

use crate::comm::WORLD_COMM_ID;
use crate::error::ConfigError;
use crate::mailbox::MailboxState;
use crate::message::{Envelope, MatchSelector, Tag};
use bytes::Bytes;
use parking_lot::{Condvar, Mutex};
use simcluster::{
    FailureEvent, MachineModel, SimTime, TaskId, Topology, VirtualClock, VirtualEngine,
};
use std::panic::{catch_unwind, AssertUnwindSafe};

/// One cooperative step of a rank program.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Step {
    /// Charge a compute region described by its flop count and memory
    /// traffic (roofline model, like [`crate::ProcHandle::charge_compute`]).
    Compute {
        /// Floating-point operations performed.
        flops: f64,
        /// Bytes moved to/from memory.
        mem_bytes: f64,
    },
    /// Charge an explicit amount of virtual time without attributing it to
    /// compute or communication (like [`crate::ProcHandle::charge_other`]).
    Elapse(SimTime),
    /// Eagerly send `bytes` modeled bytes to world rank `dst`.  Sends never
    /// block (the sender is only charged its injection occupancy); sends to
    /// crashed or out-of-range destinations are dropped silently, exactly
    /// like the router drops them.
    Send {
        /// Destination world rank.
        dst: usize,
        /// Message tag.
        tag: Tag,
        /// Modeled payload size in bytes.
        bytes: usize,
    },
    /// Block until a message matching `(src, tag)` is available (`None` is a
    /// wildcard).  How the receive ended is visible to the *next* step via
    /// [`RankCtx::last_recv`].
    Recv {
        /// Expected source world rank, or any.
        src: Option<usize>,
        /// Expected tag, or any.
        tag: Option<Tag>,
    },
    /// The program is finished.
    Done,
}

/// Completed-receive metadata handed back to the program.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RecvDone {
    /// World rank of the sender.
    pub src: usize,
    /// Tag of the matched message.
    pub tag: Tag,
    /// Modeled payload size in bytes.
    pub bytes: usize,
    /// Receiver's virtual time when the receive completed.
    pub at: SimTime,
}

/// How the previous [`Step::Recv`] ended.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum RecvOutcome {
    /// A message was matched and consumed.
    Message(RecvDone),
    /// The named source crashed with no matching message queued (the
    /// engine-world equivalent of [`crate::MpiError::ProcessFailed`]).
    PeerFailed {
        /// The crashed source rank.
        src: usize,
    },
}

/// Read-only view a program gets at every step.
#[derive(Debug, Clone, Copy)]
pub struct RankCtx {
    rank: usize,
    world: usize,
    now: SimTime,
    last_recv: Option<RecvOutcome>,
}

impl RankCtx {
    /// World rank of this program.
    pub fn rank(&self) -> usize {
        self.rank
    }

    /// Total number of logical ranks.
    pub fn world(&self) -> usize {
        self.world
    }

    /// Current virtual time of this rank.
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// How the previous [`Step::Recv`] ended.  `Some` exactly on the first
    /// step after a receive.
    pub fn last_recv(&self) -> Option<RecvOutcome> {
        self.last_recv
    }
}

/// A cooperatively-scheduled rank body: a state machine that yields one
/// [`Step`] per call instead of running on a dedicated OS thread.
///
/// Programs must be deterministic functions of their own state and the
/// [`RankCtx`] they are shown (ARCHITECTURE.md determinism rules); they are
/// `Send` because bursts migrate between worker threads, but never run
/// concurrently with themselves.
pub trait RankProgram: Send {
    /// Produces the next step.  If the previous step was a `Recv`,
    /// [`RankCtx::last_recv`] says how it ended.
    fn step(&mut self, ctx: &RankCtx) -> Step;

    /// Optional scalar result collected into the report (e.g. a residual or
    /// checksum a test wants to assert on).
    fn result(&self) -> Option<f64> {
        None
    }
}

/// Configuration of an event-driven virtual cluster run.
#[derive(Debug, Clone)]
pub struct EngineConfig {
    /// Number of logical ranks.
    pub num_ranks: usize,
    /// Machine model (compute + network calibration).
    pub machine: MachineModel,
    /// Placement of ranks on nodes.  Defaults to block placement with
    /// `machine.cores_per_node` ranks per node.
    pub topology: Option<Topology>,
    /// Worker threads driving the ranks; `None` picks the host parallelism.
    /// Virtual-time results are identical for every value.  `Some(0)` is
    /// rejected as [`crate::ConfigError::ZeroWorkers`] (it could never make
    /// progress).
    pub workers: Option<usize>,
    /// Crash-stop failures to inject: `(rank, virtual time)`.  The crash
    /// fires at the first step boundary at which the rank's clock has
    /// reached the given time.
    pub crashes: Vec<(usize, SimTime)>,
    /// Per-rank step budget guarding against non-terminating programs
    /// (`0` = unlimited).  A rank exceeding it is reported as errored, the
    /// virtual-time analogue of the thread world's wall-clock watchdog.
    pub step_limit: u64,
}

impl EngineConfig {
    /// A cluster of `num_ranks` logical ranks on the paper's
    /// Grid'5000/IB-20G machine model.
    pub fn new(num_ranks: usize) -> Self {
        EngineConfig {
            num_ranks,
            machine: MachineModel::grid5000_ib20g(),
            topology: None,
            workers: None,
            crashes: Vec::new(),
            step_limit: 0,
        }
    }

    /// A cluster with a zero-cost machine model, for protocol-correctness
    /// tests that do not care about timing.
    pub fn ideal(num_ranks: usize) -> Self {
        EngineConfig {
            machine: MachineModel::ideal(),
            ..EngineConfig::new(num_ranks)
        }
    }

    /// Sets the machine model.
    pub fn with_machine(mut self, machine: MachineModel) -> Self {
        self.machine = machine;
        self
    }

    /// Sets an explicit topology.
    pub fn with_topology(mut self, topology: Topology) -> Self {
        self.topology = Some(topology);
        self
    }

    /// Sets the worker-thread count (`0` = host parallelism, kept for
    /// backward compatibility with the old sentinel encoding; it maps to
    /// `None`).
    pub fn with_workers(mut self, workers: usize) -> Self {
        self.workers = (workers > 0).then_some(workers);
        self
    }

    /// Schedules a crash-stop failure of `rank` at virtual time `at`.
    pub fn with_crash(mut self, rank: usize, at: SimTime) -> Self {
        self.crashes.push((rank, at));
        self
    }

    /// Sets the per-rank step budget (`0` = unlimited).
    pub fn with_step_limit(mut self, step_limit: u64) -> Self {
        self.step_limit = step_limit;
        self
    }

    fn resolved_topology(&self) -> Topology {
        self.topology
            .clone()
            .unwrap_or_else(|| Topology::block(self.num_ranks, self.machine.cores_per_node.max(1)))
    }
}

/// How one rank's program ended.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RankEnd {
    /// The program ran to [`Step::Done`].
    Completed,
    /// The rank was crashed by failure injection.
    Crashed,
    /// The program panicked, exceeded its step budget, or was still parked
    /// on a receive when the event queue drained (deadlock).
    Errored(String),
}

/// Per-rank summary of an event-driven run.
#[derive(Debug, Clone)]
pub struct VirtualRankReport {
    /// World rank.
    pub rank: usize,
    /// Final virtual time of the rank.
    pub final_time: SimTime,
    /// Virtual time attributed to computation.
    pub compute_time: SimTime,
    /// Virtual time attributed to communication (incl. waiting).
    pub comm_time: SimTime,
    /// Virtual time spent blocked waiting for remote progress.
    pub wait_time: SimTime,
    /// True if the rank was marked as crashed during the run.
    pub failed: bool,
    /// How the program ended.
    pub end: RankEnd,
    /// Scalar result reported by the program, if any.
    pub result: Option<f64>,
}

/// Result of an event-driven virtual cluster run.
#[derive(Debug)]
pub struct VirtualClusterReport {
    /// Per-rank summaries, ordered by rank.
    pub ranks: Vec<VirtualRankReport>,
    /// Failure history, sorted by `(time, rank)` so it is identical at any
    /// worker count.
    pub failures: Vec<FailureEvent>,
    /// Scheduler dispatches served.  A *host-execution* diagnostic, not a
    /// virtual-time result: duplicate wakeups (a failure retirement racing
    /// a message delivery for the same parked rank) are consumed as
    /// harmless stale dispatches, so the count can vary with worker
    /// interleaving even though every virtual-time field is identical.
    pub dispatches: u64,
    /// Messages injected (deterministic: each rank's send sequence is a
    /// pure function of virtual time).
    pub messages: u64,
}

impl VirtualClusterReport {
    /// Virtual makespan: the largest final virtual time over the ranks that
    /// did *not* crash, falling back to [`max_time`] when every rank crashed
    /// — the same total-loss semantics as
    /// [`ClusterReport::makespan`](crate::ClusterReport::makespan).
    ///
    /// [`max_time`]: VirtualClusterReport::max_time
    pub fn makespan(&self) -> SimTime {
        self.ranks
            .iter()
            .filter(|r| !r.failed)
            .map(|r| r.final_time)
            .max()
            .unwrap_or_else(|| self.max_time())
    }

    /// Largest final virtual time over all ranks.
    pub fn max_time(&self) -> SimTime {
        self.ranks
            .iter()
            .map(|r| r.final_time)
            .max()
            .unwrap_or(SimTime::ZERO)
    }

    /// True if every rank crashed (total loss).
    pub fn all_crashed(&self) -> bool {
        !self.ranks.is_empty() && self.ranks.iter().all(|r| r.failed)
    }

    /// Number of ranks that ran to completion.
    pub fn num_completed(&self) -> usize {
        self.ranks
            .iter()
            .filter(|r| r.end == RankEnd::Completed)
            .count()
    }

    /// Number of ranks crashed by failure injection.
    pub fn num_crashed(&self) -> usize {
        self.ranks
            .iter()
            .filter(|r| r.end == RankEnd::Crashed)
            .count()
    }

    /// Ranks that errored (panic, step budget, deadlock), with messages.
    pub fn errors(&self) -> Vec<(usize, &str)> {
        self.ranks
            .iter()
            .filter_map(|r| match &r.end {
                RankEnd::Errored(msg) => Some((r.rank, msg.as_str())),
                _ => None,
            })
            .collect()
    }
}

/// Scheduling phase of one rank.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Phase {
    /// On the ready list (or about to be), `local` present.
    Runnable,
    /// A worker is running a burst; `local` is taken.
    Stepping,
    /// Waiting for a receive to become satisfiable.
    Parked,
    /// Terminal states.
    Done,
    Crashed,
    Errored,
}

/// Rank state only ever touched by the rank's own burst: moved out of the
/// shared table while a worker steps the program, so the burst runs without
/// holding the scheduler lock.
struct RankLocal {
    program: Box<dyn RankProgram>,
    clock: VirtualClock,
    /// Busy-until time of the local copy engine (intra-node sends).
    local_busy: SimTime,
    /// Busy-until time of this rank's share of the node NIC.
    nic_busy: SimTime,
    /// Fair-share divisor of the node NIC (ranks co-located on the node).
    nic_sharing: f64,
    last_recv: Option<RecvOutcome>,
    crash_at: Option<SimTime>,
    steps: u64,
    /// Sender-local envelope sequence (virtual-time tie-breaking only).
    seq: u64,
}

/// Shared per-rank slot: mailbox and scheduling state.
struct RankSlot {
    phase: Phase,
    mailbox: MailboxState,
    parked_on: Option<MatchSelector>,
    local: Option<RankLocal>,
    error: Option<String>,
}

/// Scheduler state shared by the worker pool, behind one mutex.
struct Shared {
    engine: VirtualEngine,
    ranks: Vec<RankSlot>,
    failed: Vec<bool>,
    failures: Vec<FailureEvent>,
    /// Bursts currently executing outside the lock.
    in_flight: usize,
    messages: u64,
}

/// Why a burst ended.
enum BurstEnd {
    NeedRecv(MatchSelector),
    Done,
    Crashed(SimTime),
    Errored(String),
}

/// Outcome of one lock-free burst: buffered outgoing envelopes plus the
/// reason the rank stopped stepping.
struct Burst {
    end: BurstEnd,
    outgoing: Vec<Envelope>,
}

fn panic_message(payload: Box<dyn std::any::Any + Send>) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "unknown panic payload".to_string()
    }
}

/// Models message injection exactly like `ProcCore::inject`: the sending
/// channel (node-NIC fair share for inter-node, local copy engine for
/// intra-node) serializes back-to-back sends, the sender CPU is charged only
/// the fixed overhead, and the message arrives one latency after injection
/// completes.
fn inject(
    local: &mut RankLocal,
    rank: usize,
    dst: usize,
    tag: Tag,
    bytes: usize,
    topology: &Topology,
    machine: &MachineModel,
) -> Envelope {
    let same_node = topology.same_node(rank, dst);
    let link = *machine.link(same_node);
    let channel = if same_node {
        &mut local.local_busy
    } else {
        &mut local.nic_busy
    };
    let start = (*channel).max(local.clock.now());
    let occupancy = if same_node {
        link.sender_occupancy(bytes)
    } else {
        let serialization = link
            .wire_time(bytes)
            .saturating_sub(SimTime::from_secs(link.latency_s))
            * local.nic_sharing;
        SimTime::from_secs(link.send_overhead_s) + serialization
    };
    let done = start + occupancy;
    *channel = done;
    local
        .clock
        .advance_comm(SimTime::from_secs(link.send_overhead_s));
    let arrival = done + SimTime::from_secs(link.latency_s);
    let seq = local.seq;
    local.seq += 1;
    Envelope {
        src_world: rank,
        dst_world: dst,
        comm: WORLD_COMM_ID,
        tag,
        payload: Bytes::new(),
        head: None,
        modeled_bytes: bytes,
        arrival,
        seq,
    }
}

/// Completes a matched receive on the rank's clock (conservative rule:
/// `max(clock, arrival)` plus the receiver overhead) and records the
/// outcome for the program's next step.
fn complete_recv(
    local: &mut RankLocal,
    env: &Envelope,
    rank: usize,
    topology: &Topology,
    machine: &MachineModel,
) {
    let same_node = topology.same_node(rank, env.src_world);
    let link = machine.link(same_node);
    local.clock.wait_until(env.arrival);
    local.clock.advance_comm(link.receiver_overhead());
    local.last_recv = Some(RecvOutcome::Message(RecvDone {
        src: env.src_world,
        tag: env.tag,
        bytes: env.modeled_bytes,
        at: local.clock.now(),
    }));
}

/// Runs one rank as far as it can go without touching shared state: compute
/// charges and sends are rank-local, so the burst only ends on a receive, a
/// crash, completion, or an error.
fn run_burst(
    local: &mut RankLocal,
    rank: usize,
    world: usize,
    topology: &Topology,
    machine: &MachineModel,
    step_limit: u64,
) -> Burst {
    let mut outgoing = Vec::new();
    loop {
        if let Some(at) = local.crash_at {
            if local.clock.now() >= at {
                return Burst {
                    end: BurstEnd::Crashed(local.clock.now()),
                    outgoing,
                };
            }
        }
        if step_limit > 0 && local.steps >= step_limit {
            return Burst {
                end: BurstEnd::Errored(format!("exceeded step budget of {step_limit}")),
                outgoing,
            };
        }
        local.steps += 1;
        let ctx = RankCtx {
            rank,
            world,
            now: local.clock.now(),
            last_recv: local.last_recv.take(),
        };
        let step = match catch_unwind(AssertUnwindSafe(|| local.program.step(&ctx))) {
            Ok(step) => step,
            Err(payload) => {
                return Burst {
                    end: BurstEnd::Errored(panic_message(payload)),
                    outgoing,
                }
            }
        };
        match step {
            Step::Compute { flops, mem_bytes } => {
                let dt = machine.compute.region_time(flops, mem_bytes);
                local.clock.advance_compute(dt);
            }
            Step::Elapse(dt) => local.clock.advance_other(dt),
            Step::Send { dst, tag, bytes } => {
                if dst < world {
                    outgoing.push(inject(local, rank, dst, tag, bytes, topology, machine));
                }
                // Out-of-range destinations are dropped like the router
                // drops them; crashed destinations are filtered at apply
                // time, where liveness is known.
            }
            Step::Recv { src, tag } => {
                return Burst {
                    end: BurstEnd::NeedRecv(MatchSelector {
                        comm: WORLD_COMM_ID,
                        src_world: src,
                        tag,
                    }),
                    outgoing,
                };
            }
            Step::Done => {
                return Burst {
                    end: BurstEnd::Done,
                    outgoing,
                }
            }
        }
    }
}

/// Tries to hand a parked or freshly-recv-blocked rank its receive outcome:
/// a queued matching envelope (earliest virtual arrival first) or a
/// `PeerFailed` for a crashed named source.  Returns `false` if the rank
/// must (stay) park(ed).
fn try_satisfy_recv(
    local: &mut RankLocal,
    mailbox: &mut MailboxState,
    failed: &[bool],
    sel: &MatchSelector,
    rank: usize,
    topology: &Topology,
    machine: &MachineModel,
) -> bool {
    if let Some(env) = mailbox.take_match_by_arrival(sel) {
        complete_recv(local, &env, rank, topology, machine);
        true
    } else if let Some(src) = sel.src_world.filter(|&s| s < failed.len() && failed[s]) {
        local.last_recv = Some(RecvOutcome::PeerFailed { src });
        true
    } else {
        false
    }
}

/// Applies a finished burst under the scheduler lock: delivers buffered
/// sends (waking parked receivers at the message arrival time), then parks,
/// re-readies, or retires the rank.
fn apply_burst(
    sh: &mut Shared,
    rank: usize,
    mut local: RankLocal,
    burst: Burst,
    topology: &Topology,
    machine: &MachineModel,
) {
    for env in burst.outgoing {
        sh.messages += 1;
        let dst = env.dst_world;
        if sh.failed[dst] {
            continue; // crashed destination: dropped, like the router
        }
        let arrival = env.arrival;
        let matches_parked = sh.ranks[dst].phase == Phase::Parked
            && sh.ranks[dst]
                .parked_on
                .as_ref()
                .is_some_and(|sel| env.matches(sel));
        sh.ranks[dst].mailbox.push(env);
        if matches_parked {
            // Resume the receiver no earlier than the message's virtual
            // arrival.  Duplicate wakeups are harmless: a dispatch that
            // finds nothing to do re-parks.
            sh.engine.schedule_at(TaskId(dst), arrival);
        }
    }
    match burst.end {
        BurstEnd::NeedRecv(sel) => {
            let slot = &mut sh.ranks[rank];
            if try_satisfy_recv(
                &mut local,
                &mut slot.mailbox,
                &sh.failed,
                &sel,
                rank,
                topology,
                machine,
            ) {
                slot.phase = Phase::Runnable;
                slot.local = Some(local);
                sh.engine.make_ready(TaskId(rank));
            } else {
                slot.phase = Phase::Parked;
                slot.parked_on = Some(sel);
                slot.local = Some(local);
            }
        }
        BurstEnd::Done => {
            let slot = &mut sh.ranks[rank];
            slot.phase = Phase::Done;
            slot.local = Some(local);
        }
        BurstEnd::Crashed(at) => {
            retire_failed(sh, rank, local, at, Phase::Crashed, None);
        }
        BurstEnd::Errored(msg) => {
            // Mirror the thread world: a panicked rank is marked failed so
            // peers blocked on it observe the failure instead of hanging.
            let at = local.clock.now();
            retire_failed(sh, rank, local, at, Phase::Errored, Some(msg));
        }
    }
}

/// Retires a rank as crashed/errored: records the failure, and wakes every
/// rank parked on a receive naming it so the parked rank can observe
/// `PeerFailed` (the continuation equivalent of the failure board waking
/// blocked receivers through its registered wakers).
fn retire_failed(
    sh: &mut Shared,
    rank: usize,
    local: RankLocal,
    at: SimTime,
    phase: Phase,
    error: Option<String>,
) {
    sh.failed[rank] = true;
    sh.failures.push(FailureEvent { rank, time: at });
    let slot = &mut sh.ranks[rank];
    slot.phase = phase;
    slot.error = error;
    slot.local = Some(local);
    for q in 0..sh.ranks.len() {
        if sh.ranks[q].phase == Phase::Parked
            && sh.ranks[q]
                .parked_on
                .as_ref()
                .is_some_and(|sel| sel.src_world == Some(rank))
        {
            sh.engine.make_ready(TaskId(q));
        }
    }
}

/// One worker of the pool: pops dispatches, runs bursts outside the lock,
/// applies them under it.  Returns when the event queue is drained and no
/// burst is in flight.
fn worker(
    shared: &Mutex<Shared>,
    cv: &Condvar,
    world: usize,
    topology: &Topology,
    machine: &MachineModel,
    step_limit: u64,
) {
    let mut guard = shared.lock();
    loop {
        let dispatch = loop {
            if let Some(d) = guard.engine.next() {
                break Some(d);
            }
            if guard.in_flight == 0 {
                break None;
            }
            // Another worker's in-flight burst may enqueue more work (or
            // finish the run); wait for its apply.
            cv.wait(&mut guard);
        };
        let Some(dispatch) = dispatch else {
            cv.notify_all();
            return;
        };
        let rank = dispatch.task.0;
        let sh = &mut *guard;
        let local = match sh.ranks[rank].phase {
            Phase::Runnable => {
                let slot = &mut sh.ranks[rank];
                slot.phase = Phase::Stepping;
                slot.local.take()
            }
            Phase::Parked => {
                let sel = sh.ranks[rank]
                    .parked_on
                    .expect("parked rank has a selector");
                let slot = &mut sh.ranks[rank];
                let mut local = slot.local.take().expect("parked rank has local state");
                if try_satisfy_recv(
                    &mut local,
                    &mut slot.mailbox,
                    &sh.failed,
                    &sel,
                    rank,
                    topology,
                    machine,
                ) {
                    slot.phase = Phase::Stepping;
                    slot.parked_on = None;
                    Some(local)
                } else {
                    // Spurious wakeup (e.g. a duplicate resume): re-park.
                    slot.local = Some(local);
                    None
                }
            }
            // Stale dispatch for a rank that already resumed or retired.
            _ => None,
        };
        let Some(mut local) = local else { continue };
        sh.in_flight += 1;
        drop(guard);

        let burst = run_burst(&mut local, rank, world, topology, machine, step_limit);

        guard = shared.lock();
        let sh = &mut *guard;
        sh.in_flight -= 1;
        apply_burst(sh, rank, local, burst, topology, machine);
        cv.notify_all();
    }
}

/// Runs `num_ranks` logical ranks, each executing the program built by
/// `make(rank)`, on a pool of `config.workers` worker threads, and collects
/// virtual-time reports.
///
/// This is the scalable sibling of [`crate::run_cluster`]: same machine
/// model, same injection/completion timing formulas, same failure
/// semantics — but ranks are cooperative tasks instead of OS threads, so
/// the rank count is bounded by memory, not by spawnable threads.
pub fn run_virtual_cluster<P, F>(config: &EngineConfig, make: F) -> VirtualClusterReport
where
    P: RankProgram + 'static,
    F: Fn(usize) -> P,
{
    match try_run_virtual_cluster(config, make) {
        Ok(report) => report,
        Err(e) => panic!("invalid engine configuration: {e}"),
    }
}

/// [`run_virtual_cluster`] with the configuration validated up front:
/// invalid configurations (zero worker threads, an empty cluster) return a
/// typed [`ConfigError`] before any thread is spawned, instead of hanging
/// or panicking.
pub fn try_run_virtual_cluster<P, F>(
    config: &EngineConfig,
    make: F,
) -> Result<VirtualClusterReport, ConfigError>
where
    P: RankProgram + 'static,
    F: Fn(usize) -> P,
{
    let n = config.num_ranks;
    if n == 0 {
        return Err(ConfigError::NoProcesses);
    }
    if config.workers == Some(0) {
        return Err(ConfigError::ZeroWorkers);
    }
    let topology = config.resolved_topology();
    assert!(
        topology.num_procs() >= n,
        "topology covers {} ranks but the cluster has {}",
        topology.num_procs(),
        n
    );

    // Fair-share divisor of each node's NIC, computed in one O(n) pass
    // (`Topology::ranks_on` per rank would be quadratic at 1M ranks).
    let mut per_node = vec![0usize; topology.num_nodes().max(1)];
    for rank in 0..n {
        per_node[topology.node_of(rank)] += 1;
    }

    let mut crash_at: Vec<Option<SimTime>> = vec![None; n];
    for &(rank, at) in &config.crashes {
        if rank < n {
            let slot = &mut crash_at[rank];
            *slot = Some(slot.map_or(at, |t| t.min(at)));
        }
    }

    let mut engine = VirtualEngine::new();
    let ranks: Vec<RankSlot> = (0..n)
        .map(|rank| {
            engine.make_ready(TaskId(rank));
            RankSlot {
                phase: Phase::Runnable,
                mailbox: MailboxState::default(),
                parked_on: None,
                local: Some(RankLocal {
                    program: Box::new(make(rank)),
                    clock: VirtualClock::new(),
                    local_busy: SimTime::ZERO,
                    nic_busy: SimTime::ZERO,
                    nic_sharing: per_node[topology.node_of(rank)].max(1) as f64,
                    last_recv: None,
                    crash_at: crash_at[rank],
                    steps: 0,
                    seq: 0,
                }),
                error: None,
            }
        })
        .collect();

    let shared = Mutex::new(Shared {
        engine,
        ranks,
        failed: vec![false; n],
        failures: Vec::new(),
        in_flight: 0,
        messages: 0,
    });
    let cv = Condvar::new();

    let workers = config
        .workers
        .unwrap_or_else(|| std::thread::available_parallelism().map_or(4, |p| p.get()))
        .min(n)
        .max(1);

    std::thread::scope(|scope| {
        for _ in 0..workers {
            scope.spawn(|| {
                worker(
                    &shared,
                    &cv,
                    n,
                    &topology,
                    &config.machine,
                    config.step_limit,
                )
            });
        }
    });

    let mut sh = shared.into_inner();
    let mut failures = std::mem::take(&mut sh.failures);
    failures.sort_by_key(|f| (f.time, f.rank));
    let dispatches = sh.engine.dispatched();
    let ranks = sh
        .ranks
        .into_iter()
        .enumerate()
        .map(|(rank, slot)| {
            let local = slot.local.expect("retired rank keeps its local state");
            let end = match slot.phase {
                Phase::Done => RankEnd::Completed,
                Phase::Crashed => RankEnd::Crashed,
                Phase::Errored => {
                    RankEnd::Errored(slot.error.unwrap_or_else(|| "unknown error".to_string()))
                }
                // Still parked when the event queue drained: nothing can
                // ever wake it — a deadlock, reported instead of hung.
                Phase::Parked => RankEnd::Errored(
                    "deadlock: parked on a receive when the event queue drained".to_string(),
                ),
                Phase::Runnable | Phase::Stepping => {
                    unreachable!("rank {rank} left neither parked nor retired")
                }
            };
            VirtualRankReport {
                rank,
                final_time: local.clock.now(),
                compute_time: local.clock.compute_time(),
                comm_time: local.clock.comm_time(),
                wait_time: local.clock.wait_time(),
                failed: matches!(slot.phase, Phase::Crashed | Phase::Errored),
                end,
                result: local.program.result(),
            }
        })
        .collect();

    Ok(VirtualClusterReport {
        ranks,
        failures,
        dispatches,
        messages: sh.messages,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Regression: `workers == Some(0)` used to be unrepresentable (the
    /// `0` sentinel meant "auto"); now it is a typed config error instead
    /// of an engine that can never dispatch a rank.
    #[test]
    fn zero_workers_is_a_typed_config_error() {
        struct Noop;
        impl RankProgram for Noop {
            fn step(&mut self, _ctx: &RankCtx) -> Step {
                Step::Done
            }
        }
        let mut config = EngineConfig::ideal(2);
        config.workers = Some(0);
        let err = try_run_virtual_cluster(&config, |_rank| Noop).unwrap_err();
        assert_eq!(err, ConfigError::ZeroWorkers);
        assert!(err.to_string().contains("workers"));
        // The builder keeps the old `0 = auto` sentinel working.
        assert_eq!(EngineConfig::ideal(2).with_workers(0).workers, None);
        let empty = try_run_virtual_cluster(&EngineConfig::ideal(0), |_rank| Noop).unwrap_err();
        assert_eq!(empty, ConfigError::NoProcesses);
    }

    /// A ring pass: every rank sends a token right, receives from the left,
    /// then finishes.
    struct RingProgram {
        state: u8,
        bytes: usize,
    }

    impl RankProgram for RingProgram {
        fn step(&mut self, ctx: &RankCtx) -> Step {
            let right = (ctx.rank() + 1) % ctx.world();
            let left = (ctx.rank() + ctx.world() - 1) % ctx.world();
            match self.state {
                0 => {
                    self.state = 1;
                    Step::Send {
                        dst: right,
                        tag: 7,
                        bytes: self.bytes,
                    }
                }
                1 => {
                    self.state = 2;
                    Step::Recv {
                        src: Some(left),
                        tag: Some(7),
                    }
                }
                _ => {
                    assert!(
                        matches!(ctx.last_recv(), Some(RecvOutcome::Message(m)) if m.src == left),
                        "rank {} expected a token from {left}",
                        ctx.rank()
                    );
                    Step::Done
                }
            }
        }

        fn result(&self) -> Option<f64> {
            Some(self.state as f64)
        }
    }

    fn ring_report(workers: usize) -> VirtualClusterReport {
        let config = EngineConfig::new(8).with_workers(workers);
        run_virtual_cluster(&config, |_| RingProgram {
            state: 0,
            bytes: 4096,
        })
    }

    #[test]
    fn ring_pass_completes_with_symmetric_times() {
        let report = ring_report(1);
        assert_eq!(report.num_completed(), 8);
        assert_eq!(report.messages, 8);
        assert!(report.makespan() > SimTime::ZERO);
        // The ring is fully symmetric under block placement of 8 ranks on
        // 4-core nodes *except* at node boundaries; all ranks at least make
        // identical progress counts.
        for r in &report.ranks {
            assert_eq!(r.end, RankEnd::Completed);
            assert_eq!(r.result, Some(2.0));
        }
    }

    #[test]
    fn virtual_times_are_identical_at_any_worker_count() {
        let baseline = ring_report(1);
        for workers in [2, 4, 8] {
            let report = ring_report(workers);
            for (a, b) in baseline.ranks.iter().zip(&report.ranks) {
                assert_eq!(a.final_time, b.final_time, "rank {} diverged", a.rank);
                assert_eq!(a.compute_time, b.compute_time);
                assert_eq!(a.comm_time, b.comm_time);
                assert_eq!(a.wait_time, b.wait_time);
            }
            assert_eq!(baseline.messages, report.messages);
        }
    }

    /// Two-rank ping-pong must charge the same virtual times as the
    /// conservative-clock formulas predict: the engine is an execution
    /// strategy, not a different cost model.
    #[test]
    fn ping_pong_matches_hand_computed_times() {
        struct Ping(u8);
        impl RankProgram for Ping {
            fn step(&mut self, ctx: &RankCtx) -> Step {
                self.0 += 1;
                match (ctx.rank(), self.0) {
                    (0, 1) => Step::Send {
                        dst: 1,
                        tag: 1,
                        bytes: 1_000_000,
                    },
                    (0, 2) => Step::Recv {
                        src: Some(1),
                        tag: Some(2),
                    },
                    (1, 1) => Step::Recv {
                        src: Some(0),
                        tag: Some(1),
                    },
                    (1, 2) => Step::Send {
                        dst: 0,
                        tag: 2,
                        bytes: 1_000_000,
                    },
                    _ => Step::Done,
                }
            }
        }
        // One rank per node: full NIC bandwidth, inter-node link.
        let machine = MachineModel::grid5000_ib20g();
        let link = *machine.link(false);
        let config = EngineConfig::new(2)
            .with_machine(machine)
            .with_topology(Topology::one_per_node(2))
            .with_workers(1);
        let report = run_virtual_cluster(&config, |_| Ping(0));
        let occupancy = link.sender_occupancy(1_000_000);
        let overhead = SimTime::from_secs(link.send_overhead_s);
        let latency = SimTime::from_secs(link.latency_s);
        let recv_ovh = link.receiver_overhead();
        // Rank 1: recv completes at arrival (= occupancy + latency) + recv
        // overhead; its reply injection starts there.
        let r1_recv_done = occupancy + latency + recv_ovh;
        assert_eq!(report.ranks[1].final_time, r1_recv_done + overhead);
        // Rank 0: sent (clock = overhead), then waits for the reply.
        let reply_arrival = r1_recv_done + occupancy + latency;
        assert_eq!(report.ranks[0].final_time, reply_arrival + recv_ovh);
    }

    /// A crash before the victim's send leaves the receiver observing
    /// `PeerFailed` — the continuation analogue of `MpiError::ProcessFailed`.
    struct WaitForPeer {
        state: u8,
        saw_failure: bool,
    }

    impl RankProgram for WaitForPeer {
        fn step(&mut self, ctx: &RankCtx) -> Step {
            match (ctx.rank(), self.state) {
                (1, _) => {
                    // Victim: compute past its crash time, then (never) send.
                    self.state += 1;
                    if self.state == 1 {
                        Step::Elapse(SimTime::from_secs(5.0))
                    } else {
                        Step::Send {
                            dst: 0,
                            tag: 1,
                            bytes: 8,
                        }
                    }
                }
                (0, 0) => {
                    self.state = 1;
                    Step::Recv {
                        src: Some(1),
                        tag: Some(1),
                    }
                }
                _ => {
                    self.saw_failure =
                        matches!(ctx.last_recv(), Some(RecvOutcome::PeerFailed { src: 1 }));
                    Step::Done
                }
            }
        }

        fn result(&self) -> Option<f64> {
            Some(if self.saw_failure { 1.0 } else { 0.0 })
        }
    }

    #[test]
    fn crash_wakes_parked_receiver_with_peer_failed() {
        let config = EngineConfig::ideal(2)
            .with_workers(2)
            .with_crash(1, SimTime::from_secs(1.0));
        let report = run_virtual_cluster(&config, |_| WaitForPeer {
            state: 0,
            saw_failure: false,
        });
        assert_eq!(report.ranks[0].end, RankEnd::Completed);
        assert_eq!(report.ranks[0].result, Some(1.0), "must observe PeerFailed");
        assert_eq!(report.ranks[1].end, RankEnd::Crashed);
        assert_eq!(report.failures.len(), 1);
        assert_eq!(report.failures[0].rank, 1);
        // The crash fired at the first step boundary past t=1.0, i.e. after
        // the 5 s elapse.
        assert_eq!(report.failures[0].time, SimTime::from_secs(5.0));
    }

    #[test]
    fn total_loss_makespan_reports_last_death_not_zero() {
        struct Busy;
        impl RankProgram for Busy {
            fn step(&mut self, ctx: &RankCtx) -> Step {
                if ctx.now() < SimTime::from_secs(10.0) {
                    Step::Elapse(SimTime::from_secs(1.0 + ctx.rank() as f64))
                } else {
                    Step::Done
                }
            }
        }
        let config = EngineConfig::ideal(2)
            .with_crash(0, SimTime::from_secs(0.5))
            .with_crash(1, SimTime::from_secs(0.5));
        let report = run_virtual_cluster(&config, |_| Busy);
        assert!(report.all_crashed());
        assert_eq!(report.makespan(), report.max_time());
        // Rank 0 died at 1.0 (first boundary past 0.5), rank 1 at 2.0.
        assert_eq!(report.makespan(), SimTime::from_secs(2.0));
        assert_eq!(
            report
                .failures
                .iter()
                .map(|f| (f.rank, f.time))
                .collect::<Vec<_>>(),
            vec![(0, SimTime::from_secs(1.0)), (1, SimTime::from_secs(2.0))]
        );
    }

    #[test]
    fn deadlocked_rank_is_reported_not_hung() {
        struct Stuck(bool);
        impl RankProgram for Stuck {
            fn step(&mut self, _ctx: &RankCtx) -> Step {
                if !self.0 {
                    self.0 = true;
                    Step::Recv {
                        src: Some(0),
                        tag: Some(99),
                    }
                } else {
                    Step::Done
                }
            }
        }
        let config = EngineConfig::ideal(2).with_workers(2);
        let report = run_virtual_cluster(&config, |rank| Stuck(rank == 0));
        // Rank 0 finishes immediately; rank 1 waits for a message that is
        // never sent and must be reported as deadlocked, not hang the run.
        assert_eq!(report.ranks[0].end, RankEnd::Completed);
        assert!(matches!(report.ranks[1].end, RankEnd::Errored(ref m) if m.contains("deadlock")));
    }

    #[test]
    fn panicking_program_is_reported_and_unblocks_peers() {
        struct Faulty(u8);
        impl RankProgram for Faulty {
            fn step(&mut self, ctx: &RankCtx) -> Step {
                self.0 += 1;
                match (ctx.rank(), self.0) {
                    (0, 1) => panic!("program bug"),
                    (1, 1) => Step::Recv {
                        src: Some(0),
                        tag: Some(1),
                    },
                    _ => Step::Done,
                }
            }
        }
        let config = EngineConfig::ideal(2).with_workers(1);
        let report = run_virtual_cluster(&config, |_| Faulty(0));
        assert!(matches!(report.ranks[0].end, RankEnd::Errored(ref m) if m.contains("bug")));
        // The peer observed the failure instead of deadlocking.
        assert_eq!(report.ranks[1].end, RankEnd::Completed);
    }

    #[test]
    fn step_budget_catches_non_terminating_programs() {
        struct Spinner;
        impl RankProgram for Spinner {
            fn step(&mut self, _ctx: &RankCtx) -> Step {
                Step::Elapse(SimTime::ZERO)
            }
        }
        let config = EngineConfig::ideal(1).with_step_limit(1_000);
        let report = run_virtual_cluster(&config, |_| Spinner);
        assert!(matches!(report.ranks[0].end, RankEnd::Errored(ref m) if m.contains("budget")));
    }

    #[test]
    fn self_send_is_received() {
        struct SelfTalk(u8);
        impl RankProgram for SelfTalk {
            fn step(&mut self, ctx: &RankCtx) -> Step {
                self.0 += 1;
                match self.0 {
                    1 => Step::Send {
                        dst: ctx.rank(),
                        tag: 3,
                        bytes: 64,
                    },
                    2 => Step::Recv {
                        src: Some(ctx.rank()),
                        tag: Some(3),
                    },
                    _ => {
                        assert!(matches!(ctx.last_recv(), Some(RecvOutcome::Message(_))));
                        Step::Done
                    }
                }
            }
        }
        let report = run_virtual_cluster(&EngineConfig::ideal(1), |_| SelfTalk(0));
        assert_eq!(report.num_completed(), 1);
    }
}
