//! A fast non-cryptographic hasher for small fixed-size keys on hot paths.
//!
//! This is the FxHash function from the Firefox / rustc tradition: a
//! rotate-xor-multiply per 8-byte word.  The fabric uses it for the mailbox
//! lane map and the replication layer for its per-channel sequence maps —
//! all keyed by small integer tuples looked up once or twice per message,
//! where SipHash's keyed initialization and finalization dominate the probe
//! cost.  Keys come from the simulation itself (never from untrusted
//! input), so hash-flooding resistance buys nothing here.

use std::hash::{BuildHasherDefault, Hasher};

/// Streaming FxHash state.  Construct through [`FxBuildHasher`] /
/// `HashMap::default()`; the hasher is not cryptographic and must not be
/// used on attacker-controlled keys.
#[derive(Default)]
pub struct FxHasher {
    hash: u64,
}

const FX_SEED: u64 = 0x51_7c_c1_b7_27_22_0a_95;

impl FxHasher {
    #[inline]
    fn add(&mut self, v: u64) {
        self.hash = (self.hash.rotate_left(5) ^ v).wrapping_mul(FX_SEED);
    }
}

impl Hasher for FxHasher {
    #[inline]
    fn write(&mut self, bytes: &[u8]) {
        for chunk in bytes.chunks(8) {
            let mut buf = [0u8; 8];
            buf[..chunk.len()].copy_from_slice(chunk);
            self.add(u64::from_le_bytes(buf));
        }
    }

    #[inline]
    fn write_u8(&mut self, v: u8) {
        self.add(v as u64);
    }

    #[inline]
    fn write_u32(&mut self, v: u32) {
        self.add(v as u64);
    }

    #[inline]
    fn write_u64(&mut self, v: u64) {
        self.add(v);
    }

    #[inline]
    fn write_usize(&mut self, v: usize) {
        self.add(v as u64);
    }

    #[inline]
    fn finish(&self) -> u64 {
        self.hash
    }
}

/// `BuildHasher` plugging [`FxHasher`] into `HashMap`.
pub type FxBuildHasher = BuildHasherDefault<FxHasher>;

#[cfg(test)]
mod tests {
    use super::*;
    use std::hash::BuildHasher;

    #[test]
    fn distinct_small_keys_hash_distinctly() {
        let b = FxBuildHasher::default();
        let mut seen = std::collections::HashSet::new();
        for src in 0..64usize {
            for tag in 0..64u32 {
                assert!(seen.insert(b.hash_one((src, tag))));
            }
        }
    }

    #[test]
    fn hash_is_deterministic_across_builders() {
        let a = FxBuildHasher::default().hash_one((7usize, 9u32));
        let b = FxBuildHasher::default().hash_one((7usize, 9u32));
        assert_eq!(a, b);
    }
}
