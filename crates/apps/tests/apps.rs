//! End-to-end tests of the mini-applications in the three execution modes.

use apps::{
    run_amg, run_gtc, run_hpccg, run_minighost, AmgParams, AmgSolver, AppContext, GtcParams,
    HpccgParams, MiniGhostParams,
};
use ipr_core::IntraConfig;
use replication::{ExecutionMode, FailureInjector, ProtocolPoint};
use simmpi::{run_cluster, ClusterConfig};

fn modes(logical: usize) -> Vec<(ExecutionMode, usize)> {
    vec![
        (ExecutionMode::Native, logical),
        (ExecutionMode::Replicated { degree: 2 }, 2 * logical),
        (ExecutionMode::IntraParallel { degree: 2 }, 2 * logical),
    ]
}

#[test]
fn hpccg_converges_in_all_modes() {
    for (mode, procs) in modes(4) {
        let report = run_cluster(&ClusterConfig::ideal(procs), move |proc| {
            let mut ctx = AppContext::without_failures(proc, mode, IntraConfig::paper()).unwrap();
            let params = HpccgParams::small(6, 40);
            run_hpccg(&mut ctx, &params).unwrap()
        });
        for out in report.unwrap_results() {
            assert!(
                out.solution_error < 1e-6,
                "mode {mode:?}: CG did not converge to the all-ones solution (err {})",
                out.solution_error
            );
            assert!(
                out.residual < 1e-5,
                "mode {mode:?}: residual {}",
                out.residual
            );
            // The report carries measurements only (the mode is the
            // caller's configuration); intra mode shares section work, so
            // it must have executed sections.
            if matches!(mode, ExecutionMode::IntraParallel { .. }) {
                assert!(out.report.sections > 0, "mode {mode:?}: no sections");
            }
        }
    }
}

#[test]
fn hpccg_replicas_agree_bit_for_bit() {
    let report = run_cluster(&ClusterConfig::ideal(8), |proc| {
        let mut ctx = AppContext::without_failures(
            proc,
            ExecutionMode::IntraParallel { degree: 2 },
            IntraConfig::paper(),
        )
        .unwrap();
        let params = HpccgParams::small(5, 25);
        let out = run_hpccg(&mut ctx, &params).unwrap();
        (ctx.env.logical_rank(), out.residual, out.solution_error)
    });
    let results = report.unwrap_results();
    // Replicas of the same logical rank (physical r and r+4) must agree.
    for logical in 0..4 {
        let a = &results[logical];
        let b = &results[logical + 4];
        assert_eq!(a.0, b.0);
        assert_eq!(a.1.to_bits(), b.1.to_bits(), "residuals must be identical");
        assert_eq!(a.2.to_bits(), b.2.to_bits());
    }
}

#[test]
fn hpccg_intra_shares_sections_between_replicas() {
    let report = run_cluster(&ClusterConfig::ideal(4), |proc| {
        let mut ctx = AppContext::without_failures(
            proc,
            ExecutionMode::IntraParallel { degree: 2 },
            IntraConfig::paper(),
        )
        .unwrap();
        let params = HpccgParams::small(5, 10);
        run_hpccg(&mut ctx, &params).unwrap().report
    });
    for r in report.unwrap_results() {
        assert!(r.sections > 0);
        assert!(r.update_bytes_sent > 0, "intra mode must ship updates");
        // ddot + sparsemv sections: each replica executes about half of the
        // tasks of every section.
        assert!(r.tasks_executed < r.sections * 8);
    }
}

#[test]
fn hpccg_survives_a_replica_crash_between_iterations() {
    let report = run_cluster(&ClusterConfig::ideal(4), |proc| {
        let injector = FailureInjector::none();
        // Physical rank 0 = replica 0 of logical 0 crashes at iteration 3.
        injector.arm(0, ProtocolPoint::IterationStart { iteration: 3 });
        let mut ctx = AppContext::new(
            proc,
            ExecutionMode::IntraParallel { degree: 2 },
            IntraConfig::paper(),
            injector,
        )
        .unwrap();
        let params = HpccgParams::small(5, 25);
        run_hpccg(&mut ctx, &params)
    });
    // The crashed rank reports the crash...
    assert!(report.results[0].as_ref().unwrap().is_err());
    // ...every other physical rank still converges.
    for rank in 1..4 {
        let out = report.results[rank]
            .as_ref()
            .unwrap()
            .as_ref()
            .unwrap_or_else(|e| panic!("rank {rank} failed: {e}"));
        assert!(
            out.solution_error < 1e-6,
            "rank {rank}: {}",
            out.solution_error
        );
    }
}

#[test]
fn amg_pcg_and_gmres_converge_in_all_modes() {
    for solver in [AmgSolver::Pcg27, AmgSolver::Gmres7] {
        for (mode, procs) in modes(2) {
            let report = run_cluster(&ClusterConfig::ideal(procs), move |proc| {
                let mut ctx =
                    AppContext::without_failures(proc, mode, IntraConfig::paper()).unwrap();
                let params = AmgParams::small(solver, 5, 30);
                run_amg(&mut ctx, &params).unwrap()
            });
            for out in report.unwrap_results() {
                assert!(
                    out.residual < 1e-6,
                    "{solver:?} in {mode:?}: residual {}",
                    out.residual
                );
            }
        }
    }
}

#[test]
fn amg_sections_cover_a_larger_fraction_for_pcg_than_gmres() {
    // Figure 6a vs 6b: the 27-point PCG problem has a larger fraction of its
    // runtime inside sections than the 7-point GMRES problem.
    let fraction = |solver: AmgSolver| {
        let report = run_cluster(&ClusterConfig::new(2), move |proc| {
            let mut ctx =
                AppContext::without_failures(proc, ExecutionMode::Native, IntraConfig::paper())
                    .unwrap();
            let params = AmgParams::paper_scale(solver, 6, 5);
            run_amg(&mut ctx, &params)
                .unwrap()
                .report
                .section_fraction()
        });
        report.unwrap_results().into_iter().sum::<f64>() / 2.0
    };
    let pcg = fraction(AmgSolver::Pcg27);
    let gmres = fraction(AmgSolver::Gmres7);
    assert!(
        pcg > gmres,
        "PCG section fraction ({pcg:.2}) should exceed GMRES ({gmres:.2})"
    );
    assert!(pcg > 0.4 && pcg < 0.95, "PCG fraction {pcg:.2}");
    assert!(gmres > 0.2 && gmres < 0.7, "GMRES fraction {gmres:.2}");
}

#[test]
fn gtc_conserves_charge_in_all_modes() {
    for (mode, procs) in modes(2) {
        let report = run_cluster(&ClusterConfig::ideal(procs), move |proc| {
            let mut ctx = AppContext::without_failures(proc, mode, IntraConfig::paper()).unwrap();
            let params = GtcParams::small(4000, 5);
            run_gtc(&mut ctx, &params).unwrap()
        });
        for out in report.unwrap_results() {
            assert!(
                (out.total_charge - 4000.0).abs() < 1e-6,
                "mode {mode:?}: charge {} not conserved",
                out.total_charge
            );
            assert!(out.kinetic.is_finite() && out.kinetic > 0.0);
        }
    }
}

#[test]
fn gtc_replicas_agree_and_ship_inout_snapshots() {
    let report = run_cluster(&ClusterConfig::ideal(2), |proc| {
        let mut ctx = AppContext::without_failures(
            proc,
            ExecutionMode::IntraParallel { degree: 2 },
            IntraConfig::paper(),
        )
        .unwrap();
        let params = GtcParams::small(2000, 4);
        let out = run_gtc(&mut ctx, &params).unwrap();
        let snapshot_bytes: usize = ctx
            .rt
            .report()
            .sections()
            .iter()
            .map(|s| s.inout_snapshot_bytes)
            .sum();
        (out.kinetic, snapshot_bytes)
    });
    let results = report.unwrap_results();
    assert_eq!(results[0].0.to_bits(), results[1].0.to_bits());
    // The push kernel's inout particle arrays must have been snapshotted.
    assert!(results[0].1 > 0);
}

#[test]
fn minighost_matches_across_modes_and_reports_small_section_fraction() {
    let mut sums = Vec::new();
    for (mode, procs) in modes(2) {
        let report = run_cluster(&ClusterConfig::ideal(procs), move |proc| {
            let mut ctx = AppContext::without_failures(proc, mode, IntraConfig::paper()).unwrap();
            let params = MiniGhostParams::small(6, 4);
            run_minighost(&mut ctx, &params).unwrap()
        });
        let results = report.unwrap_results();
        sums.push(results[0].last_sum);
        for out in &results {
            assert!(out.last_sum.is_finite());
        }
    }
    // The global sum is mode-independent (native vs replicated vs intra).
    assert!((sums[0] - sums[1]).abs() < 1e-9);
    assert!((sums[0] - sums[2]).abs() < 1e-9);

    // With a realistic machine model, the section (grid-sum) fraction is
    // small — this is the paper's explanation for the poor MiniGhost result.
    let report = run_cluster(&ClusterConfig::new(2), |proc| {
        let mut ctx =
            AppContext::without_failures(proc, ExecutionMode::Native, IntraConfig::paper())
                .unwrap();
        let params = MiniGhostParams::paper_scale(8, 4);
        run_minighost(&mut ctx, &params)
            .unwrap()
            .report
            .section_fraction()
    });
    for fraction in report.unwrap_results() {
        assert!(
            fraction < 0.35,
            "grid-sum sections should be a small fraction, got {fraction:.2}"
        );
    }
}
