//! `ProtocolPoint::IterationStart` crash coverage across the three
//! execution modes, driven through a real mini-application (HPCCG).

use apps::{run_hpccg, AppContext, HpccgParams};
use ipr_core::{IntraConfig, IntraError};
use replication::{ExecutionMode, FailureInjector, ProtocolPoint};
use simmpi::{run_cluster, ClusterConfig};

fn run_hpccg_cluster(
    mode: ExecutionMode,
    num_logical: usize,
    injector: &FailureInjector,
) -> Vec<Result<Result<f64, IntraError>, String>> {
    let injector = injector.clone();
    let procs = num_logical * mode.degree();
    let report = run_cluster(&ClusterConfig::new(procs), move |proc| {
        let mut ctx = AppContext::new(proc, mode, IntraConfig::paper(), injector.clone())?;
        let params = HpccgParams::small(5, 6);
        match run_hpccg(&mut ctx, &params) {
            Ok(out) => Ok(out.residual),
            Err(e) => Err(e),
        }
    });
    report.results
}

#[test]
fn iteration_start_crash_is_survivable_under_replication() {
    for mode in [
        ExecutionMode::Replicated { degree: 2 },
        ExecutionMode::IntraParallel { degree: 2 },
    ] {
        // Failure-free reference.
        let reference = run_hpccg_cluster(mode, 1, &FailureInjector::none());
        let expected = *reference[0].as_ref().unwrap().as_ref().unwrap();

        let injector = FailureInjector::none();
        injector.arm(0, ProtocolPoint::IterationStart { iteration: 2 });
        let results = run_hpccg_cluster(mode, 1, &injector);
        assert_eq!(
            results[0].as_ref().unwrap().as_ref().unwrap_err(),
            &IntraError::Crashed,
            "{mode:?}: armed replica must crash at iteration 2"
        );
        let survivor = *results[1].as_ref().unwrap().as_ref().unwrap();
        assert_eq!(
            survivor, expected,
            "{mode:?}: the surviving replica must finish with the failure-free residual"
        );
        assert_eq!(injector.pending(), 0);
        assert_eq!(
            injector.fired(),
            vec![(0, ProtocolPoint::IterationStart { iteration: 2 })]
        );
    }
}

#[test]
fn iteration_start_crash_kills_an_unreplicated_run() {
    let injector = FailureInjector::none();
    injector.arm(0, ProtocolPoint::IterationStart { iteration: 1 });
    let results = run_hpccg_cluster(ExecutionMode::Native, 1, &injector);
    assert_eq!(
        results[0].as_ref().unwrap().as_ref().unwrap_err(),
        &IntraError::Crashed,
        "without replication the crash is fatal"
    );
}
