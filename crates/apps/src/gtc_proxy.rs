//! GTC proxy: particle-in-cell charge deposition and particle push.
//!
//! GTC is a 3D gyrokinetic particle-in-cell code; the paper (Figure 6c)
//! applies intra-parallelization to its two main kernels, `charge` and
//! `push`, which together account for about 75 % of the runtime, and obtains
//! an efficiency above 0.7.  The `push` kernel updates the particle
//! positions in place, which makes the particle arrays `inout` variables —
//! the paper's example of data that needs the extra snapshot copy of
//! Section III-B2 (measured there at ~6 % overhead on the affected tasks).
//!
//! The proxy keeps exactly that structure: a per-step loop of
//! charge-deposition (intra, `out` density), field solve (redundant, outside
//! sections), particle push (intra, `inout` particle arrays) and a small
//! neighbour exchange standing in for GTC's particle shift phase.

use crate::driver::{task_cost, AppContext, ScaledWorkload};
use crate::report::AppRunReport;
use ipr_core::{ArgSpec, IntraResult, TaskDef, Workspace};
use kernels::pic::{self, charge_cost, push_cost, ParticleSet};
use kernels::vecops::grid_sum;
use simcluster::seeded_rng;
use simmpi::Tag;

const SHIFT_TAG: Tag = 121;

/// Parameters of a GTC-proxy run.
#[derive(Debug, Clone, Copy)]
pub struct GtcParams {
    /// Particles actually allocated per logical process.
    pub particles: usize,
    /// Modeled (paper-scale) particles per logical process.
    pub modeled_particles: usize,
    /// Grid cells per logical process.
    pub grid_cells: usize,
    /// Number of time steps.
    pub steps: usize,
    /// Time-step size.
    pub dt: f64,
    /// Whether charge and push run inside intra-parallel sections.
    pub intra_kernels: bool,
    /// Fraction of the particle data exchanged with neighbours each step
    /// (stands in for GTC's shift phase).
    pub shift_fraction: f64,
    /// Per-step work outside the charge/push kernels (field smoothing,
    /// diagnostics, …), expressed as a fraction of the charge+push cost.
    /// The paper reports that charge and push cover ~75 % of GTC's runtime,
    /// i.e. the other phases amount to about a third of the kernel cost.
    pub other_work_fraction: f64,
}

impl GtcParams {
    /// A small functional configuration (actual == modeled).
    pub fn small(particles: usize, steps: usize) -> Self {
        GtcParams {
            particles,
            modeled_particles: particles,
            grid_cells: 64,
            steps,
            dt: 0.05,
            intra_kernels: true,
            shift_fraction: 0.05,
            other_work_fraction: 0.0,
        }
    }

    /// Paper-scale configuration: the evaluation runs GTC with micell = 200
    /// particles per cell; with the per-process grid portion this amounts to
    /// roughly two million particles per logical process.
    pub fn paper_scale(actual_particles: usize, steps: usize) -> Self {
        GtcParams {
            particles: actual_particles,
            modeled_particles: 2_000_000,
            grid_cells: 128,
            steps,
            dt: 0.05,
            intra_kernels: true,
            shift_fraction: 0.05,
            other_work_fraction: 1.0 / 3.0,
        }
    }

    fn workload(&self) -> ScaledWorkload {
        ScaledWorkload::scaled(self.particles, self.modeled_particles)
    }
}

/// Result of a GTC-proxy run on one physical process.
#[derive(Debug, Clone)]
pub struct GtcOutput {
    /// Generic per-process report.
    pub report: AppRunReport,
    /// Total deposited charge at the last step (must equal the number of
    /// particles: charge conservation check).
    pub total_charge: f64,
    /// Kinetic-energy-like diagnostic (sum of v^2) at the last step.
    pub kinetic: f64,
}

/// Runs the GTC proxy on this physical process.
pub fn run_gtc(ctx: &mut AppContext, params: &GtcParams) -> IntraResult<GtcOutput> {
    let workload = params.workload();
    let rcomm = ctx.env.rcomm().clone();
    let logical = rcomm.logical_rank();
    let num_logical = rcomm.num_logical();
    let tasks = ctx.rt.config().tasks_per_section.max(1);

    let domain_length = params.grid_cells as f64;
    // Deterministic per-logical-process particle load (identical on every
    // replica of the same logical process).
    let mut rng = seeded_rng(ctx.env.proc().seed(), logical);
    let particles = ParticleSet::random(params.particles, domain_length, &mut rng);
    let np = particles.len();
    let cells = params.grid_cells;

    // Workspace: particle positions and velocities (inout in push), the
    // charge density (written by charge), and the per-task partial densities.
    let mut ws = Workspace::new();
    let x_v = ws.add("px", particles.x.clone());
    let v_v = ws.add("pv", particles.v.clone());
    let density_v = ws.add_zeros("density", cells);
    let partial_density_v = ws.add_zeros("partial_density", cells * tasks);

    let modeled_np = params.modeled_particles;
    let charge_task_cost = task_cost(charge_cost(modeled_np / tasks, cells));
    let push_task_cost = task_cost(push_cost(modeled_np / tasks));
    let field_cost = kernels::KernelCost::new(
        6.0 * cells as f64,
        3.0 * cells as f64 * 8.0,
        cells as f64 * 8.0,
        0.0,
    );

    ctx.start_measurement();

    let mut total_charge = 0.0;

    for step in 0..params.steps {
        ctx.iteration_boundary(step)?;

        // --- charge deposition (intra-parallel, `out` density) ------------
        if params.intra_kernels {
            let mut section = ctx.rt.section(&mut ws);
            let chunks = ipr_core::split_ranges(np, tasks);
            for (t, chunk) in chunks.into_iter().enumerate() {
                section.add_task(
                    TaskDef::new(
                        "gtc-charge",
                        move |c| {
                            let xs = &c.inputs[0];
                            let density = &mut c.outputs[0];
                            for d in density.iter_mut() {
                                *d = 0.0;
                            }
                            let p = ParticleSet {
                                x: xs.to_vec(),
                                v: vec![0.0; xs.len()],
                                length: density.len() as f64,
                            };
                            pic::charge_deposit(&p, 0..p.len(), density);
                        },
                        vec![
                            ArgSpec::input(x_v, chunk),
                            ArgSpec::output(partial_density_v, t * cells..(t + 1) * cells),
                        ],
                    )
                    .with_cost(charge_task_cost),
                )?;
            }
            let _ = section.end()?;
            // Reduce the per-task partial densities (outside the section,
            // identical on every replica).
            ctx.run_redundant(
                kernels::KernelCost::new(
                    (cells * tasks) as f64,
                    (cells * tasks) as f64 * 8.0,
                    cells as f64 * 8.0,
                    0.0,
                ),
                || (),
            );
            let partials = ws.read_range(partial_density_v, 0..cells * tasks);
            let mut density = vec![0.0; cells];
            for t in 0..tasks {
                for c in 0..cells {
                    density[c] += partials[t * cells + c];
                }
            }
            ws.write_range(density_v, 0..cells, &density);
        } else {
            ctx.run_redundant(charge_cost(modeled_np, cells), || ());
            let xs = ws.read_range(x_v, 0..np);
            let p = ParticleSet {
                x: xs,
                v: vec![0.0; np],
                length: domain_length,
            };
            let mut density = vec![0.0; cells];
            pic::charge_deposit(&p, 0..np, &mut density);
            ws.write_range(density_v, 0..cells, &density);
        }
        total_charge = grid_sum(ws.get(density_v));

        // --- field solve and the other per-step phases (redundant, outside
        // sections): smoothing, diagnostics, toroidal bookkeeping.  Modeled
        // as a configurable fraction of the kernel cost so that the
        // charge+push share of the runtime matches GTC's (~75 %).
        ctx.run_redundant(field_cost, || ());
        if params.other_work_fraction > 0.0 {
            let kernel_cost = charge_cost(modeled_np, cells) + push_cost(modeled_np);
            ctx.charge_other(kernel_cost * params.other_work_fraction);
        }
        let field = pic::field_solve(ws.get(density_v), domain_length);

        // --- particle push (intra-parallel, `inout` particle arrays) ------
        if params.intra_kernels {
            let field_clone = field.clone();
            let dt = params.dt;
            let mut section = ctx.rt.section(&mut ws);
            let chunks = ipr_core::split_ranges(np, tasks);
            for chunk in chunks {
                let field = field_clone.clone();
                section.add_task(
                    TaskDef::new(
                        "gtc-push",
                        move |c| {
                            let length = field.len() as f64;
                            // outputs[0] = positions (inout), outputs[1] =
                            // velocities (inout).
                            let n = c.outputs[0].len();
                            let mut p = ParticleSet {
                                x: std::mem::take(&mut c.outputs[0]),
                                v: std::mem::take(&mut c.outputs[1]),
                                length,
                            };
                            pic::push(&mut p, 0..n, &field, dt);
                            c.outputs[0] = p.x;
                            c.outputs[1] = p.v;
                        },
                        vec![
                            ArgSpec::inout(x_v, chunk.clone()),
                            ArgSpec::inout(v_v, chunk),
                        ],
                    )
                    .with_cost(push_task_cost),
                )?;
            }
            let _ = section.end()?;
        } else {
            ctx.run_redundant(push_cost(modeled_np), || ());
            let mut p = ParticleSet {
                x: ws.read_range(x_v, 0..np),
                v: ws.read_range(v_v, 0..np),
                length: domain_length,
            };
            pic::push(&mut p, 0..np, &field, params.dt);
            ws.write_range(x_v, 0..np, &p.x);
            ws.write_range(v_v, 0..np, &p.v);
        }

        // --- particle shift between neighbouring logical processes --------
        // (stands in for GTC's toroidal shift; outside sections).
        if num_logical > 1 {
            let shift_count = ((np as f64) * params.shift_fraction) as usize;
            let modeled_shift_bytes = workload.scale_count(shift_count) * 16;
            let next = (logical + 1) % num_logical;
            let prev = (logical + num_logical - 1) % num_logical;
            let outgoing = ws.read_range(v_v, 0..shift_count.max(1));
            rcomm.send_logical_with_modeled_size(
                &outgoing,
                next,
                SHIFT_TAG,
                modeled_shift_bytes,
            )?;
            let _incoming: Vec<f64> = rcomm.recv_logical(prev, SHIFT_TAG)?;
        }
    }

    let kinetic = ws.get(v_v).iter().map(|v| v * v).sum::<f64>();
    let report = ctx.finish(params.steps, total_charge);
    Ok(GtcOutput {
        report,
        total_charge,
        kinetic,
    })
}
