//! Per-process application run reports.

use simcluster::SimTime;

/// Summary of one application run on one physical process, in virtual time.
///
/// The benchmark harness aggregates these across processes (taking the
/// makespan) and across execution modes to compute the paper's efficiency
/// numbers.
///
/// Carries *measurements only*: the run's configuration axes (app, mode,
/// scheduler, …) live on the experiment that produced it and in the
/// versioned campaign report model (`campaign::report::v1`), not here —
/// the pre-v1 `app`/`mode`/`scheduler` string fields were deleted (see
/// MIGRATION.md).
#[derive(Debug, Clone, PartialEq)]
#[must_use = "an AppRunReport carries the run's metrics; dropping it silently loses them"]
pub struct AppRunReport {
    /// Logical rank of this process.
    pub logical_rank: usize,
    /// Replica id of this process.
    pub replica_id: usize,
    /// Number of outer iterations / time steps executed.
    pub iterations: usize,
    /// Virtual time spent in the measured region of the application.
    pub total_time: SimTime,
    /// Virtual time spent inside intra-parallel sections (the "sections"
    /// part of the Figure 6 breakdown).
    pub section_time: SimTime,
    /// Virtual time spent draining update transfers after local task
    /// execution (subset of `section_time`; the dashed area of Figure 5a).
    pub update_drain_time: SimTime,
    /// Number of sections executed.
    pub sections: usize,
    /// Number of tasks executed locally.
    pub tasks_executed: usize,
    /// Number of tasks whose result was received from a peer replica.
    pub tasks_received: usize,
    /// Number of tasks re-executed locally because their owner crashed.
    pub tasks_reexecuted: usize,
    /// Replica failures of this logical process observed inside sections.
    pub replica_failures_observed: usize,
    /// Modeled bytes of replica updates sent.
    pub update_bytes_sent: usize,
    /// Application-specific verification value (residual norm, conserved
    /// charge, …) used by tests to check numerical correctness.
    pub verification: f64,
}

impl AppRunReport {
    /// Virtual time spent outside intra-parallel sections (the "others" part
    /// of the Figure 6 breakdown).
    pub fn other_time(&self) -> SimTime {
        self.total_time.saturating_sub(self.section_time)
    }

    /// Fraction of the runtime covered by intra-parallel sections.
    pub fn section_fraction(&self) -> f64 {
        if self.total_time.is_zero() {
            0.0
        } else {
            self.section_time / self.total_time
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn breakdown_accessors() {
        let r = AppRunReport {
            logical_rank: 0,
            replica_id: 0,
            iterations: 10,
            total_time: SimTime::from_secs(10.0),
            section_time: SimTime::from_secs(6.0),
            update_drain_time: SimTime::from_secs(1.0),
            sections: 30,
            tasks_executed: 120,
            tasks_received: 60,
            tasks_reexecuted: 0,
            replica_failures_observed: 0,
            update_bytes_sent: 1000,
            verification: 0.0,
        };
        assert_eq!(r.other_time().as_secs(), 4.0);
        assert!((r.section_fraction() - 0.6).abs() < 1e-12);
    }

    #[test]
    fn zero_total_time_gives_zero_fraction() {
        let r = AppRunReport {
            logical_rank: 0,
            replica_id: 0,
            iterations: 0,
            total_time: SimTime::ZERO,
            section_time: SimTime::ZERO,
            update_drain_time: SimTime::ZERO,
            sections: 0,
            tasks_executed: 0,
            tasks_received: 0,
            tasks_reexecuted: 0,
            replica_failures_observed: 0,
            update_bytes_sent: 0,
            verification: 0.0,
        };
        assert_eq!(r.section_fraction(), 0.0);
    }
}
