//! HPCCG: the Mantevo conjugate-gradient mini-application.
//!
//! HPCCG solves a 27-point finite-difference problem on a 3D grid with an
//! unpreconditioned conjugate gradient.  Its three computational kernels —
//! `waxpby`, `ddot` and `sparsemv` — are the micro-kernels of Figure 5a, and
//! the full application is the weak-scaling experiment of Figure 5b (where,
//! following the paper, intra-parallelization is applied only to `ddot` and
//! `sparsemv` because it hurts `waxpby`).
//!
//! The domain is decomposed by stacking the local `nx × ny × nz` grids along
//! the z axis, one block per logical process; the sparse matrix-vector
//! product needs the neighbouring z-planes, which are exchanged over the
//! logical channel before every `sparsemv` (outside the intra-parallel
//! sections, as the paper requires).

use crate::driver::{task_cost, AppContext, ScaledWorkload};
use crate::report::AppRunReport;
use ipr_core::{ArgSpec, IntraResult, TaskDef};
use kernels::sparse::{spmv_cost, CsrMatrix};
use kernels::vecops::{self, ddot_cost, waxpby_cost};
use simmpi::Tag;
use std::sync::Arc;

const HALO_TAG_UP: Tag = 101;
const HALO_TAG_DOWN: Tag = 102;

/// Which kernels are executed inside intra-parallel sections.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct KernelSelection {
    /// Intra-parallelize `waxpby` (the paper only does this in the
    /// kernel-level study of Figure 5a, not in the full application).
    pub waxpby: bool,
    /// Intra-parallelize `ddot`.
    pub ddot: bool,
    /// Intra-parallelize `sparsemv`.
    pub sparsemv: bool,
}

impl KernelSelection {
    /// The paper's Figure 5b configuration: ddot and sparsemv only.
    pub fn paper_application() -> Self {
        KernelSelection {
            waxpby: false,
            ddot: true,
            sparsemv: true,
        }
    }

    /// All three kernels (used by the Figure 5a kernel study).
    pub fn all() -> Self {
        KernelSelection {
            waxpby: true,
            ddot: true,
            sparsemv: true,
        }
    }
}

/// Parameters of an HPCCG run.
#[derive(Debug, Clone, Copy)]
pub struct HpccgParams {
    /// Local grid dimensions actually allocated per logical process.
    pub nx: usize,
    /// Local grid dimension y.
    pub ny: usize,
    /// Local grid dimension z.
    pub nz: usize,
    /// Modeled (paper-scale) local grid dimensions per logical process.
    pub modeled_nx: usize,
    /// Modeled local grid dimension y.
    pub modeled_ny: usize,
    /// Modeled local grid dimension z.
    pub modeled_nz: usize,
    /// Number of CG iterations to run.
    pub max_iters: usize,
    /// Which kernels run inside intra-parallel sections.
    pub kernels: KernelSelection,
}

impl HpccgParams {
    /// A small functional configuration (actual == modeled), handy for tests.
    pub fn small(n: usize, iters: usize) -> Self {
        HpccgParams {
            nx: n,
            ny: n,
            nz: n,
            modeled_nx: n,
            modeled_ny: n,
            modeled_nz: n,
            max_iters: iters,
            kernels: KernelSelection::paper_application(),
        }
    }

    /// The paper-scale configuration: a 128^3 modeled grid per logical
    /// process, executed on a reduced `actual^3` grid.
    pub fn paper_scale(actual: usize, iters: usize) -> Self {
        HpccgParams {
            nx: actual,
            ny: actual,
            nz: actual,
            modeled_nx: 128,
            modeled_ny: 128,
            modeled_nz: 128,
            max_iters: iters,
            kernels: KernelSelection::paper_application(),
        }
    }

    /// Local problem size actually allocated.
    pub fn local_n(&self) -> usize {
        self.nx * self.ny * self.nz
    }

    /// Modeled local problem size.
    pub fn modeled_n(&self) -> usize {
        self.modeled_nx * self.modeled_ny * self.modeled_nz
    }

    fn workload(&self) -> ScaledWorkload {
        ScaledWorkload::scaled(self.local_n(), self.modeled_n())
    }
}

/// Result of one HPCCG run on one physical process.
#[derive(Debug, Clone)]
pub struct HpccgOutput {
    /// Generic per-process report.
    pub report: AppRunReport,
    /// Final residual norm (global).
    pub residual: f64,
    /// Maximum absolute error against the known solution (all ones).
    pub solution_error: f64,
}

struct HaloLayout {
    n: usize,
    plane: usize,
    has_below: bool,
    has_above: bool,
}

impl HaloLayout {
    fn ghost_len(&self) -> usize {
        self.plane * (usize::from(self.has_below) + usize::from(self.has_above))
    }
    fn below_range(&self) -> Option<std::ops::Range<usize>> {
        self.has_below.then(|| self.n..self.n + self.plane)
    }
    fn above_range(&self) -> Option<std::ops::Range<usize>> {
        self.has_above.then(|| {
            let base = self.n + if self.has_below { self.plane } else { 0 };
            base..base + self.plane
        })
    }
}

/// Exchanges the boundary z-planes of the vector `values` (local part of
/// length `layout.n`, ghosts appended) with the logical neighbours.  Returns
/// the vector with ghost entries filled in.
fn exchange_halo(
    ctx: &AppContext,
    layout: &HaloLayout,
    values: &mut [f64],
    workload: &ScaledWorkload,
) -> IntraResult<()> {
    let rcomm = ctx.env.rcomm();
    let logical = rcomm.logical_rank();
    let modeled_plane_bytes = workload.scale_count(layout.plane) * std::mem::size_of::<f64>();
    // Send up (my top plane feeds the neighbour above), then down.
    if layout.has_above {
        let top = &values[(layout.n - layout.plane)..layout.n];
        rcomm.send_logical_with_modeled_size(top, logical + 1, HALO_TAG_UP, modeled_plane_bytes)?;
    }
    if layout.has_below {
        let bottom = &values[0..layout.plane];
        rcomm.send_logical_with_modeled_size(
            bottom,
            logical - 1,
            HALO_TAG_DOWN,
            modeled_plane_bytes,
        )?;
    }
    if let Some(range) = layout.below_range() {
        let incoming: Vec<f64> = rcomm.recv_logical(logical - 1, HALO_TAG_UP)?;
        values[range].copy_from_slice(&incoming);
    }
    if let Some(range) = layout.above_range() {
        let incoming: Vec<f64> = rcomm.recv_logical(logical + 1, HALO_TAG_DOWN)?;
        values[range].copy_from_slice(&incoming);
    }
    Ok(())
}

/// Runs HPCCG on this physical process and returns its report.
///
/// The run is collective: every physical process of the cluster must call it
/// with identical parameters.
pub fn run_hpccg(ctx: &mut AppContext, params: &HpccgParams) -> IntraResult<HpccgOutput> {
    let workload = params.workload();
    let rcomm = ctx.env.rcomm().clone();
    let logical = rcomm.logical_rank();
    let num_logical = rcomm.num_logical();
    let has_below = logical > 0;
    let has_above = logical + 1 < num_logical;

    let n = params.local_n();
    let plane = params.nx * params.ny;
    let layout = HaloLayout {
        n,
        plane,
        has_below,
        has_above,
    };
    let matrix = Arc::new(CsrMatrix::stencil27(
        params.nx, params.ny, params.nz, has_below, has_above,
    ));
    let ncols = matrix.ncols();

    // Modeled per-kernel costs at paper scale.
    let modeled_n = params.modeled_n();
    let nnz_per_row = matrix.nnz() as f64 / n as f64;
    let modeled_nnz = (modeled_n as f64 * nnz_per_row) as usize;
    let tasks = ctx.rt.config().tasks_per_section.max(1);
    let waxpby_task_cost = task_cost(waxpby_cost(modeled_n / tasks));
    let ddot_task_cost = task_cost(ddot_cost(modeled_n / tasks));
    let spmv_task_cost = task_cost(spmv_cost(modeled_n / tasks, modeled_nnz / tasks));

    // b = A * ones  => the exact solution of A x = b is the all-ones vector.
    let ones = vec![1.0; ncols];
    let mut b = vec![0.0; n];
    matrix.spmv(&ones, &mut b);

    // Workspace: x (solution), r (residual), p (search direction, with ghost
    // space), Ap, and the per-task partial dot products.
    let mut ws = ipr_core::Workspace::new();
    let x_v = ws.add_zeros("x", n);
    let r_v = ws.add("r", b.clone());
    let p_v = ws.add_zeros("p", n + layout.ghost_len());
    let ap_v = ws.add_zeros("Ap", n);
    let partial_v = ws.add_zeros("partial", tasks);

    ctx.start_measurement();

    // Kernel helpers ------------------------------------------------------

    // waxpby over the local range of two workspace vectors, writing a third
    // (which may alias one of the inputs, as in HPCCG's `p = r + beta*p`).
    // Aliased inputs are declared `inout` so that re-execution after a
    // failure is safe (Section III-B2 of the paper).
    let do_waxpby = |ctx: &mut AppContext,
                     ws: &mut ipr_core::Workspace,
                     alpha: f64,
                     xv: ipr_core::VarId,
                     beta: f64,
                     yv: ipr_core::VarId,
                     wv: ipr_core::VarId|
     -> IntraResult<()> {
        if params.kernels.waxpby {
            // mode 0: w distinct from x and y; 1: w == x; 2: w == y.
            let mode = if wv == xv {
                1.0
            } else if wv == yv {
                2.0
            } else {
                0.0
            };
            let mut section = ctx.rt.section(ws);
            section.add_split(n, |chunk| {
                let args = if wv == xv {
                    vec![ArgSpec::inout(wv, chunk.clone()), ArgSpec::input(yv, chunk)]
                } else if wv == yv {
                    vec![ArgSpec::input(xv, chunk.clone()), ArgSpec::inout(wv, chunk)]
                } else {
                    vec![
                        ArgSpec::input(xv, chunk.clone()),
                        ArgSpec::input(yv, chunk.clone()),
                        ArgSpec::output(wv, chunk),
                    ]
                };
                TaskDef::new(
                    "waxpby",
                    |c| {
                        let alpha = c.scalars[0];
                        let beta = c.scalars[1];
                        let mode = c.scalars[2] as i64;
                        let w = &mut c.outputs[0];
                        match mode {
                            1 => {
                                // w == x: w = alpha*w + beta*y
                                let y = &c.inputs[0];
                                for i in 0..w.len() {
                                    w[i] = alpha * w[i] + beta * y[i];
                                }
                            }
                            2 => {
                                // w == y: w = alpha*x + beta*w
                                let x = &c.inputs[0];
                                for i in 0..w.len() {
                                    w[i] = alpha * x[i] + beta * w[i];
                                }
                            }
                            _ => {
                                let x = &c.inputs[0];
                                let y = &c.inputs[1];
                                for i in 0..w.len() {
                                    w[i] = alpha * x[i] + beta * y[i];
                                }
                            }
                        }
                    },
                    args,
                )
                .with_scalars(vec![alpha, beta, mode])
                .with_cost(waxpby_task_cost)
            })?;
            let _ = section.end()?;
        } else {
            ctx.run_redundant(waxpby_cost(modeled_n), || ());
            let x = ws.read_range(xv, 0..n);
            let y = ws.read_range(yv, 0..n);
            let mut w = vec![0.0; n];
            vecops::waxpby(alpha, &x, beta, &y, &mut w);
            ws.write_range(wv, 0..n, &w);
        }
        Ok(())
    };

    // Local dot product of two workspace vectors followed by the global
    // all-reduce over the logical processes (the reduce stays outside the
    // section, as in the paper).
    let do_ddot = |ctx: &mut AppContext,
                   ws: &mut ipr_core::Workspace,
                   xv: ipr_core::VarId,
                   yv: ipr_core::VarId|
     -> IntraResult<f64> {
        let local = if params.kernels.ddot {
            let mut section = ctx.rt.section(ws);
            let chunks = ipr_core::split_ranges(n, tasks);
            for (t, chunk) in chunks.into_iter().enumerate() {
                let same = xv == yv;
                let mut args = vec![ArgSpec::input(xv, chunk.clone())];
                if !same {
                    args.push(ArgSpec::input(yv, chunk));
                }
                args.push(ArgSpec::output(partial_v, t..t + 1));
                section.add_task(
                    TaskDef::new(
                        "ddot",
                        move |c| {
                            let x = &c.inputs[0];
                            let y = if same { &c.inputs[0] } else { &c.inputs[1] };
                            c.outputs[0][0] = x.iter().zip(y.iter()).map(|(a, b)| a * b).sum();
                        },
                        args,
                    )
                    .with_cost(ddot_task_cost),
                )?;
            }
            let _ = section.end()?;
            ws.get(partial_v).iter().sum::<f64>()
        } else {
            ctx.run_redundant(ddot_cost(modeled_n), || ());
            let x = ws.read_range(xv, 0..n);
            let y = ws.read_range(yv, 0..n);
            vecops::ddot(&x, &y)
        };
        Ok(ctx.env.rcomm().logical_allreduce_sum_f64(local)?)
    };

    // Sparse matrix-vector product Ap = A * p (p includes the ghost planes).
    let do_spmv = |ctx: &mut AppContext, ws: &mut ipr_core::Workspace| -> IntraResult<()> {
        if params.kernels.sparsemv {
            let matrix = Arc::clone(&matrix);
            let mut section = ctx.rt.section(ws);
            section.add_split(n, |chunk| {
                let matrix = Arc::clone(&matrix);
                TaskDef::new(
                    "sparsemv",
                    move |c| {
                        let rows = c.scalar_usize(0)..c.scalar_usize(1);
                        let p = &c.inputs[0];
                        let y = &mut c.outputs[0];
                        // The output buffer covers exactly `rows`; compute
                        // into a full-length scratch then copy the slice.
                        let mut scratch = vec![0.0; rows.end];
                        matrix.spmv_rows(rows.clone(), p, &mut scratch);
                        y.copy_from_slice(&scratch[rows]);
                    },
                    vec![
                        ArgSpec::input(p_v, 0..ncols),
                        ArgSpec::output(ap_v, chunk.clone()),
                    ],
                )
                .with_scalars(vec![chunk.start as f64, chunk.end as f64])
                .with_cost(spmv_task_cost)
            })?;
            let _ = section.end()?;
        } else {
            ctx.run_redundant(spmv_cost(modeled_n, modeled_nnz), || ());
            let p = ws.read_range(p_v, 0..ncols);
            let mut ap = vec![0.0; n];
            matrix.spmv(&p, &mut ap);
            ws.write_range(ap_v, 0..n, &ap);
        }
        Ok(())
    };

    // CG iterations --------------------------------------------------------
    // p = r ; rtrans = <r, r>
    {
        let r = ws.read_range(r_v, 0..n);
        ws.write_range(p_v, 0..n, &r);
    }
    let mut rtrans = do_ddot(ctx, &mut ws, r_v, r_v)?;
    let mut iterations = 0usize;

    for iter in 0..params.max_iters {
        ctx.iteration_boundary(iter)?;
        if iter > 0 {
            // beta = rtrans / oldrtrans ; p = r + beta * p
            let oldrtrans = rtrans;
            rtrans = do_ddot(ctx, &mut ws, r_v, r_v)?;
            let beta = rtrans / oldrtrans;
            do_waxpby(ctx, &mut ws, 1.0, r_v, beta, p_v, p_v)?;
        }
        // Halo exchange of p, then Ap = A p.
        {
            let mut p = ws.take(p_v);
            exchange_halo(ctx, &layout, &mut p, &workload)?;
            ws.replace(p_v, p);
        }
        do_spmv(ctx, &mut ws)?;
        let p_ap = do_ddot(ctx, &mut ws, p_v, ap_v)?;
        if p_ap.abs() < f64::MIN_POSITIVE {
            break;
        }
        let alpha = rtrans / p_ap;
        // x = x + alpha p ; r = r - alpha Ap
        do_waxpby(ctx, &mut ws, 1.0, x_v, alpha, p_v, x_v)?;
        do_waxpby(ctx, &mut ws, 1.0, r_v, -alpha, ap_v, r_v)?;
        iterations = iter + 1;
    }

    let final_rtrans = do_ddot(ctx, &mut ws, r_v, r_v)?;
    let residual = final_rtrans.sqrt();
    let solution_error = ws
        .get(x_v)
        .iter()
        .map(|v| (v - 1.0).abs())
        .fold(0.0f64, f64::max);

    let report = ctx.finish(iterations, residual);
    Ok(HpccgOutput {
        report,
        residual,
        solution_error,
    })
}
