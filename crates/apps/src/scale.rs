//! Experiment scale selection.
//!
//! The paper's experiments use 128 nodes (252–512 physical processes).  The
//! simulator reproduces those process counts on threads, but the Criterion
//! benches and the test suite use a reduced scale so they stay fast.  The
//! scale is one axis of the root facade's `Experiment` builder, which is why
//! this type lives here (the lowest layer that knows about workloads) rather
//! than in the bench harness.  The
//! virtual-time results are driven by the *modeled* per-process problem size
//! and the machine model, so the efficiency numbers are comparable at both
//! scales; only the cluster-size-dependent effects (all-reduce depth) change.

/// How large the simulated cluster and the actual arrays are.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ExperimentScale {
    /// Paper-scale process counts (up to 512 simulated processes).
    Full,
    /// Reduced process counts for quick runs (tests, Criterion).
    Small,
    /// Minimal process counts for the campaign smoke grid and CI gates:
    /// every run finishes in a fraction of a second.
    Tiny,
}

impl ExperimentScale {
    /// Parses `"full"` / `"small"` / `"tiny"`.
    pub fn parse(s: &str) -> Option<Self> {
        match s.to_ascii_lowercase().as_str() {
            "full" => Some(ExperimentScale::Full),
            "small" => Some(ExperimentScale::Small),
            "tiny" => Some(ExperimentScale::Tiny),
            _ => None,
        }
    }

    /// Stable lowercase name (the inverse of [`ExperimentScale::parse`]).
    pub fn name(self) -> &'static str {
        match self {
            ExperimentScale::Full => "full",
            ExperimentScale::Small => "small",
            ExperimentScale::Tiny => "tiny",
        }
    }

    /// Physical process count for the Figure 5a kernel study.
    pub fn fig5a_procs(self) -> usize {
        match self {
            ExperimentScale::Full => 512,
            ExperimentScale::Small => 16,
            ExperimentScale::Tiny => 4,
        }
    }

    /// Physical process counts for the Figure 5b weak-scaling study.
    pub fn fig5b_procs(self) -> Vec<usize> {
        match self {
            ExperimentScale::Full => vec![128, 256, 512],
            ExperimentScale::Small => vec![8, 16, 32],
            ExperimentScale::Tiny => vec![2, 4],
        }
    }

    /// Number of *logical* processes for the Figure 6 application runs
    /// (native uses this many physical processes, replicated/intra twice as
    /// many).
    pub fn fig6_logical_procs(self) -> usize {
        match self {
            ExperimentScale::Full => 64,
            ExperimentScale::Small => 4,
            ExperimentScale::Tiny => 2,
        }
    }

    /// Edge of the actual (allocated) local grid for grid-based workloads.
    pub fn actual_grid_edge(self) -> usize {
        match self {
            ExperimentScale::Full => 8,
            ExperimentScale::Small => 6,
            ExperimentScale::Tiny => 4,
        }
    }

    /// Actual number of particles per logical process for the GTC proxy.
    pub fn actual_particles(self) -> usize {
        match self {
            ExperimentScale::Full => 20_000,
            ExperimentScale::Small => 4_000,
            ExperimentScale::Tiny => 500,
        }
    }

    /// Solver iterations / time steps for application runs.
    pub fn app_iterations(self) -> usize {
        match self {
            ExperimentScale::Full => 20,
            ExperimentScale::Small => 8,
            ExperimentScale::Tiny => 4,
        }
    }

    /// Repetitions of each kernel in the Figure 5a study.
    pub fn kernel_reps(self) -> usize {
        match self {
            ExperimentScale::Full => 5,
            ExperimentScale::Small => 3,
            ExperimentScale::Tiny => 1,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_and_process_counts() {
        assert_eq!(ExperimentScale::parse("full"), Some(ExperimentScale::Full));
        assert_eq!(
            ExperimentScale::parse("SMALL"),
            Some(ExperimentScale::Small)
        );
        assert_eq!(ExperimentScale::parse("other"), None);
        assert_eq!(ExperimentScale::Full.fig5a_procs(), 512);
        assert_eq!(ExperimentScale::Small.fig5b_procs(), vec![8, 16, 32]);
        assert!(
            ExperimentScale::Full.fig6_logical_procs()
                > ExperimentScale::Small.fig6_logical_procs()
        );
    }
}
