//! Declarative application catalog.
//!
//! The campaign engine (and any other driver that wants to select a workload
//! by name) dispatches through [`AppId`] instead of hard-wiring one
//! `run_*` call per figure: every mini-application of the paper's evaluation
//! is listed here with a uniform entry point, [`run_app`], that takes the
//! same scale knobs for all of them.

use crate::driver::AppContext;
use crate::report::AppRunReport;
use crate::{
    run_amg, run_gtc, run_hpccg, run_minighost, AmgParams, AmgSolver, GtcParams, HpccgParams,
    MiniGhostParams,
};
use ipr_core::IntraResult;

/// Identifier of one mini-application of the paper's evaluation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum AppId {
    /// HPCCG, the Mantevo conjugate-gradient mini-app (Figures 5a/5b).
    Hpccg,
    /// AMG2013 stand-in, 27-point PCG solver (Figure 6a).
    AmgPcg27,
    /// AMG2013 stand-in, 7-point GMRES solver (Figure 6b).
    AmgGmres7,
    /// GTC particle-in-cell charge/push proxy (Figure 6c).
    Gtc,
    /// MiniGhost 27-point stencil + grid summation proxy (Figure 6d).
    MiniGhost,
}

impl AppId {
    /// Every application, in figure order.
    pub const ALL: [AppId; 5] = [
        AppId::Hpccg,
        AppId::AmgPcg27,
        AppId::AmgGmres7,
        AppId::Gtc,
        AppId::MiniGhost,
    ];

    /// Stable name used in reports and run ids.
    pub fn name(&self) -> &'static str {
        match self {
            AppId::Hpccg => "hpccg",
            AppId::AmgPcg27 => "amg-pcg27",
            AppId::AmgGmres7 => "amg-gmres7",
            AppId::Gtc => "gtc",
            AppId::MiniGhost => "minighost",
        }
    }

    /// Parses the output of [`AppId::name`].
    pub fn parse(s: &str) -> Option<Self> {
        AppId::ALL.into_iter().find(|a| a.name() == s)
    }
}

/// The scale knobs shared by every application: catalog dispatch maps them
/// onto each app's own parameter struct (paper-scale modeled sizes, reduced
/// actual arrays).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct AppWorkload {
    /// Edge of the actual local grid for grid-based workloads.
    pub grid_edge: usize,
    /// Actual particles per logical process for the GTC proxy.
    pub particles: usize,
    /// Solver iterations / time steps.
    pub iterations: usize,
}

/// Runs `app` on this physical process with the catalog's uniform scale
/// knobs.  Collective: every process of the cluster must call it with the
/// same application and workload.
pub fn run_app(ctx: &mut AppContext, app: AppId, w: &AppWorkload) -> IntraResult<AppRunReport> {
    match app {
        AppId::Hpccg => {
            let params = HpccgParams::paper_scale(w.grid_edge, w.iterations);
            Ok(run_hpccg(ctx, &params)?.report)
        }
        AppId::AmgPcg27 => {
            let params = AmgParams::paper_scale(AmgSolver::Pcg27, w.grid_edge, w.iterations);
            Ok(run_amg(ctx, &params)?.report)
        }
        AppId::AmgGmres7 => {
            // Same reduced-restart configuration as the Figure 6b harness.
            let mut params = AmgParams::paper_scale(
                AmgSolver::Gmres7,
                w.grid_edge,
                w.iterations.div_ceil(8).max(1),
            );
            params.restart = 10;
            Ok(run_amg(ctx, &params)?.report)
        }
        AppId::Gtc => {
            let params = GtcParams::paper_scale(w.particles, w.iterations);
            Ok(run_gtc(ctx, &params)?.report)
        }
        AppId::MiniGhost => {
            let params = MiniGhostParams::paper_scale(w.grid_edge, w.iterations);
            Ok(run_minighost(ctx, &params)?.report)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn names_round_trip() {
        for app in AppId::ALL {
            assert_eq!(AppId::parse(app.name()), Some(app));
        }
        assert_eq!(AppId::parse("unknown"), None);
    }
}
