//! AMG2013 proxy: Krylov solvers on Laplace-type stencil operators.
//!
//! AMG2013 is an algebraic multigrid proxy application; the paper evaluates
//! two of its configurations (Figure 6a/6b):
//!
//! * a **preconditioned conjugate gradient** applied to a Laplace problem
//!   with a **27-point** stencil (sections ≈ 62 % of the native runtime,
//!   intra efficiency ≈ 0.61);
//! * **GMRES** applied to a Laplace problem with a **7-point** stencil
//!   (sections ≈ 42 %, intra efficiency ≈ 0.59).
//!
//! The proxy implemented here keeps the solver structure (diagonally
//! preconditioned CG, restarted GMRES with classical Gram–Schmidt) and the
//! stencil operators, and intra-parallelizes the kernels that are good
//!   candidates — the sparse matrix-vector product and the dot products —
//! while the vector updates (waxpby-like, poor candidates) and the
//! preconditioner run redundantly.  This reproduces both the
//! sections-vs-others split and the compute-to-update ratios that drive the
//! paper's Figure 6a/6b results.

use crate::driver::{task_cost, AppContext, ScaledWorkload};
use crate::report::AppRunReport;
use ipr_core::{ArgSpec, IntraResult, TaskDef, VarId, Workspace};
use kernels::dense::{back_substitute, Givens};
use kernels::sparse::{spmv_cost, CsrMatrix};
use kernels::vecops::{self, axpy_cost, ddot_cost, scale_cost, waxpby_cost};
use simmpi::Tag;
use std::sync::Arc;

const HALO_TAG_UP: Tag = 111;
const HALO_TAG_DOWN: Tag = 112;

/// Which solver (and stencil) the proxy runs.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AmgSolver {
    /// Diagonally preconditioned CG on a 27-point operator (Figure 6a).
    Pcg27,
    /// Restarted GMRES on a 7-point operator (Figure 6b).
    Gmres7,
}

/// Parameters of an AMG-proxy run.
#[derive(Debug, Clone, Copy)]
pub struct AmgParams {
    /// Solver / stencil selection.
    pub solver: AmgSolver,
    /// Actual local grid edge (the local grid is `n_actual^3`).
    pub n_actual: usize,
    /// Modeled local grid edge (the paper uses 100, i.e. 100^3 per logical
    /// process).
    pub n_modeled: usize,
    /// Outer iterations (CG iterations, or GMRES restart cycles).
    pub max_iters: usize,
    /// GMRES restart length.
    pub restart: usize,
    /// Whether the sparse matrix-vector product runs in intra-parallel
    /// sections.
    pub intra_spmv: bool,
    /// Whether the dot products run in intra-parallel sections.
    pub intra_dots: bool,
}

impl AmgParams {
    /// A small functional configuration.
    pub fn small(solver: AmgSolver, n: usize, iters: usize) -> Self {
        AmgParams {
            solver,
            n_actual: n,
            n_modeled: n,
            max_iters: iters,
            restart: 10,
            intra_spmv: true,
            intra_dots: true,
        }
    }

    /// The paper-scale configuration: 100^3 modeled per logical process.
    /// For the 27-point PCG problem only the matrix-vector product is
    /// intra-parallelized (it already covers ~62 % of the runtime, matching
    /// the paper's reported share); for the 7-point GMRES problem the
    /// Gram-Schmidt dot products are included as well.
    pub fn paper_scale(solver: AmgSolver, actual: usize, iters: usize) -> Self {
        AmgParams {
            solver,
            n_actual: actual,
            n_modeled: 100,
            max_iters: iters,
            restart: 30,
            intra_spmv: true,
            intra_dots: matches!(solver, AmgSolver::Gmres7),
        }
    }

    fn local_n(&self) -> usize {
        self.n_actual * self.n_actual * self.n_actual
    }

    fn modeled_n(&self) -> usize {
        self.n_modeled * self.n_modeled * self.n_modeled
    }

    fn workload(&self) -> ScaledWorkload {
        ScaledWorkload::scaled(self.local_n(), self.modeled_n())
    }
}

/// Result of one AMG-proxy run on one physical process.
#[derive(Debug, Clone)]
pub struct AmgOutput {
    /// Generic per-process report.
    pub report: AppRunReport,
    /// Final residual norm.
    pub residual: f64,
}

struct Dist {
    n: usize,
    plane: usize,
    ncols: usize,
    has_below: bool,
    has_above: bool,
}

fn exchange_halo(
    ctx: &AppContext,
    dist: &Dist,
    values: &mut [f64],
    workload: &ScaledWorkload,
) -> IntraResult<()> {
    let rcomm = ctx.env.rcomm();
    let logical = rcomm.logical_rank();
    let modeled_plane = workload.scale_count(dist.plane) * std::mem::size_of::<f64>();
    if dist.has_above {
        let top = &values[(dist.n - dist.plane)..dist.n];
        rcomm.send_logical_with_modeled_size(top, logical + 1, HALO_TAG_UP, modeled_plane)?;
    }
    if dist.has_below {
        let bottom = &values[0..dist.plane];
        rcomm.send_logical_with_modeled_size(bottom, logical - 1, HALO_TAG_DOWN, modeled_plane)?;
    }
    if dist.has_below {
        let incoming: Vec<f64> = rcomm.recv_logical(logical - 1, HALO_TAG_UP)?;
        values[dist.n..dist.n + dist.plane].copy_from_slice(&incoming);
    }
    if dist.has_above {
        let base = dist.n + if dist.has_below { dist.plane } else { 0 };
        let incoming: Vec<f64> = rcomm.recv_logical(logical + 1, HALO_TAG_DOWN)?;
        values[base..base + dist.plane].copy_from_slice(&incoming);
    }
    Ok(())
}

/// Shared state for the kernel helpers.
struct AmgKernels {
    matrix: Arc<CsrMatrix>,
    dist: Dist,
    workload: ScaledWorkload,
    tasks: usize,
    intra_spmv: bool,
    intra_dots: bool,
    modeled_n: usize,
    modeled_nnz: usize,
    /// Workspace variable holding the per-task partial dot products.
    partial: Option<VarId>,
}

impl AmgKernels {
    /// y = A * x where `xv` has ghost space appended; exchanges halos first.
    fn spmv(
        &self,
        ctx: &mut AppContext,
        ws: &mut Workspace,
        xv: VarId,
        yv: VarId,
    ) -> IntraResult<()> {
        {
            let mut x = ws.take(xv);
            exchange_halo(ctx, &self.dist, &mut x, &self.workload)?;
            ws.replace(xv, x);
        }
        let n = self.dist.n;
        let ncols = self.dist.ncols;
        if self.intra_spmv {
            let cost = task_cost(spmv_cost(
                self.modeled_n / self.tasks,
                self.modeled_nnz / self.tasks,
            ));
            let matrix = Arc::clone(&self.matrix);
            let mut section = ctx.rt.section(ws);
            section.add_split(n, |chunk| {
                let matrix = Arc::clone(&matrix);
                TaskDef::new(
                    "amg-spmv",
                    move |c| {
                        let rows = c.scalar_usize(0)..c.scalar_usize(1);
                        let x = &c.inputs[0];
                        let mut scratch = vec![0.0; rows.end];
                        matrix.spmv_rows(rows.clone(), x, &mut scratch);
                        c.outputs[0].copy_from_slice(&scratch[rows]);
                    },
                    vec![
                        ArgSpec::input(xv, 0..ncols),
                        ArgSpec::output(yv, chunk.clone()),
                    ],
                )
                .with_scalars(vec![chunk.start as f64, chunk.end as f64])
                .with_cost(cost)
            })?;
            let _ = section.end()?;
        } else {
            ctx.run_redundant(spmv_cost(self.modeled_n, self.modeled_nnz), || ());
            let x = ws.read_range(xv, 0..ncols);
            let mut y = vec![0.0; n];
            self.matrix.spmv(&x, &mut y);
            ws.write_range(yv, 0..n, &y);
        }
        Ok(())
    }

    /// Global dot product of two local vectors.
    fn dot(
        &self,
        ctx: &mut AppContext,
        ws: &mut Workspace,
        xv: VarId,
        yv: VarId,
    ) -> IntraResult<f64> {
        let n = self.dist.n;
        let local = if self.intra_dots {
            let cost = task_cost(ddot_cost(self.modeled_n / self.tasks));
            let partial = self.partial.expect("partial-dot variable not registered");
            let mut section = ctx.rt.section(ws);
            let chunks = ipr_core::split_ranges(n, self.tasks);
            for (t, chunk) in chunks.into_iter().enumerate() {
                let same = xv == yv;
                let mut args = vec![ArgSpec::input(xv, chunk.clone())];
                if !same {
                    args.push(ArgSpec::input(yv, chunk));
                }
                args.push(ArgSpec::output(partial, t..t + 1));
                section.add_task(
                    TaskDef::new(
                        "amg-dot",
                        move |c| {
                            let x = &c.inputs[0];
                            let y = if same { &c.inputs[0] } else { &c.inputs[1] };
                            c.outputs[0][0] = x.iter().zip(y.iter()).map(|(a, b)| a * b).sum();
                        },
                        args,
                    )
                    .with_cost(cost),
                )?;
            }
            let _ = section.end()?;
            ws.get(partial).iter().sum::<f64>()
        } else {
            ctx.run_redundant(ddot_cost(self.modeled_n), || ());
            let x = ws.read_range(xv, 0..n);
            let y = ws.read_range(yv, 0..n);
            vecops::ddot(&x, &y)
        };
        Ok(ctx.env.rcomm().logical_allreduce_sum_f64(local)?)
    }

    /// Redundant (non-intra) vector update: w = alpha*x + beta*y over the
    /// local range, where `wv` may alias `xv` or `yv`.
    #[allow(clippy::too_many_arguments)]
    fn waxpby_redundant(
        &self,
        ctx: &AppContext,
        ws: &mut Workspace,
        alpha: f64,
        xv: VarId,
        beta: f64,
        yv: VarId,
        wv: VarId,
    ) {
        let n = self.dist.n;
        ctx.run_redundant(waxpby_cost(self.modeled_n), || ());
        let x = ws.read_range(xv, 0..n);
        let y = ws.read_range(yv, 0..n);
        let mut w = vec![0.0; n];
        vecops::waxpby(alpha, &x, beta, &y, &mut w);
        ws.write_range(wv, 0..n, &w);
    }

    /// Redundant axpy: y += alpha * x.
    fn axpy_redundant(
        &self,
        ctx: &AppContext,
        ws: &mut Workspace,
        alpha: f64,
        xv: VarId,
        yv: VarId,
    ) {
        let n = self.dist.n;
        ctx.run_redundant(axpy_cost(self.modeled_n), || ());
        let x = ws.read_range(xv, 0..n);
        let mut y = ws.read_range(yv, 0..n);
        vecops::axpy(alpha, &x, &mut y);
        ws.write_range(yv, 0..n, &y);
    }

    /// Redundant scale: x *= alpha.
    fn scale_redundant(&self, ctx: &AppContext, ws: &mut Workspace, alpha: f64, xv: VarId) {
        let n = self.dist.n;
        ctx.run_redundant(scale_cost(self.modeled_n), || ());
        let mut x = ws.read_range(xv, 0..n);
        vecops::scale(alpha, &mut x);
        ws.write_range(xv, 0..n, &x);
    }
}

/// Runs the AMG proxy on this physical process.
pub fn run_amg(ctx: &mut AppContext, params: &AmgParams) -> IntraResult<AmgOutput> {
    let workload = params.workload();
    let rcomm = ctx.env.rcomm().clone();
    let logical = rcomm.logical_rank();
    let num_logical = rcomm.num_logical();
    let has_below = logical > 0;
    let has_above = logical + 1 < num_logical;

    let edge = params.n_actual;
    let n = params.local_n();
    let plane = edge * edge;
    let matrix = Arc::new(match params.solver {
        AmgSolver::Pcg27 => CsrMatrix::stencil27(edge, edge, edge, has_below, has_above),
        AmgSolver::Gmres7 => CsrMatrix::stencil7(edge, edge, edge, has_below, has_above),
    });
    let ncols = matrix.ncols();
    let dist = Dist {
        n,
        plane,
        ncols,
        has_below,
        has_above,
    };
    let tasks = ctx.rt.config().tasks_per_section.max(1);
    let modeled_n = params.modeled_n();
    let nnz_per_row = matrix.nnz() as f64 / n as f64;
    let kernels = AmgKernels {
        matrix: Arc::clone(&matrix),
        dist,
        workload,
        tasks,
        intra_spmv: params.intra_spmv,
        intra_dots: params.intra_dots,
        modeled_n,
        modeled_nnz: (modeled_n as f64 * nnz_per_row) as usize,
        partial: None,
    };

    // b = A * ones, exact solution = ones.
    let ones = vec![1.0; ncols];
    let mut b = vec![0.0; n];
    matrix.spmv(&ones, &mut b);

    match params.solver {
        AmgSolver::Pcg27 => run_pcg(ctx, params, kernels, b),
        AmgSolver::Gmres7 => run_gmres(ctx, params, kernels, b),
    }
}

fn run_pcg(
    ctx: &mut AppContext,
    params: &AmgParams,
    mut kernels: AmgKernels,
    b: Vec<f64>,
) -> IntraResult<AmgOutput> {
    let n = kernels.dist.n;
    let ncols = kernels.dist.ncols;
    let diag = kernels.matrix.diagonal();
    let tasks = kernels.tasks;

    let mut ws = Workspace::new();
    let x_v = ws.add_zeros("x", n);
    let r_v = ws.add("r", b);
    let z_v = ws.add_zeros("z", n);
    let p_v = ws.add_zeros("p", ncols);
    let ap_v = ws.add_zeros("Ap", n);
    let partial_v = ws.add_zeros("partial", tasks);
    kernels.partial = Some(partial_v);

    ctx.start_measurement();

    // z = M^{-1} r (Jacobi preconditioner), p = z.
    let apply_precond = |ctx: &AppContext, ws: &mut Workspace| {
        ctx.run_redundant(scale_cost(kernels.modeled_n), || ());
        let r = ws.read_range(r_v, 0..n);
        let z: Vec<f64> = r.iter().zip(&diag).map(|(ri, di)| ri / di).collect();
        ws.write_range(z_v, 0..n, &z);
    };

    apply_precond(ctx, &mut ws);
    {
        let z = ws.read_range(z_v, 0..n);
        ws.write_range(p_v, 0..n, &z);
    }
    let mut rz = kernels.dot(ctx, &mut ws, r_v, z_v)?;
    let mut iterations = 0usize;

    for iter in 0..params.max_iters {
        // C/R-only coordinated point: AMG's timed-crash behaviour predates
        // the checkpoint subsystem and must stay unchanged, so no
        // failure-injection check is added here.
        ctx.checkpoint_boundary()?;
        kernels.spmv(ctx, &mut ws, p_v, ap_v)?;
        let p_ap = kernels.dot(ctx, &mut ws, p_v, ap_v)?;
        if p_ap.abs() < f64::MIN_POSITIVE {
            break;
        }
        let alpha = rz / p_ap;
        kernels.axpy_redundant(ctx, &mut ws, alpha, p_v, x_v);
        kernels.axpy_redundant(ctx, &mut ws, -alpha, ap_v, r_v);
        apply_precond(ctx, &mut ws);
        let rz_new = kernels.dot(ctx, &mut ws, r_v, z_v)?;
        let beta = rz_new / rz;
        rz = rz_new;
        // p = z + beta * p
        kernels.waxpby_redundant(ctx, &mut ws, 1.0, z_v, beta, p_v, p_v);
        iterations = iter + 1;
    }

    let rr = kernels.dot(ctx, &mut ws, r_v, r_v)?;
    let residual = rr.sqrt();
    let report = ctx.finish(iterations, residual);
    Ok(AmgOutput { report, residual })
}

fn run_gmres(
    ctx: &mut AppContext,
    params: &AmgParams,
    mut kernels: AmgKernels,
    b: Vec<f64>,
) -> IntraResult<AmgOutput> {
    let n = kernels.dist.n;
    let ncols = kernels.dist.ncols;
    let m = params.restart.max(2);
    let tasks = kernels.tasks;

    let mut ws = Workspace::new();
    let x_v = ws.add_zeros("x", n);
    let r_v = ws.add("r", b.clone());
    let w_v = ws.add_zeros("w", n);
    // Krylov basis: m+1 vectors, each with ghost space for the halo.
    let v_vs: Vec<VarId> = (0..=m)
        .map(|j| ws.add_zeros(&format!("v{j}"), ncols))
        .collect();
    let partial_v = ws.add_zeros("partial", tasks);
    kernels.partial = Some(partial_v);

    ctx.start_measurement();

    let mut residual = f64::MAX;
    let mut cycles = 0usize;
    for _cycle in 0..params.max_iters {
        // C/R-only coordinated point (see run_pcg).
        ctx.checkpoint_boundary()?;
        // r = b - A x
        {
            let x = ws.read_range(x_v, 0..n);
            ws.write_range(v_vs[0], 0..n, &x);
        }
        kernels.spmv(ctx, &mut ws, v_vs[0], w_v)?;
        {
            ctx.run_redundant(waxpby_cost(kernels.modeled_n), || ());
            let ax = ws.read_range(w_v, 0..n);
            let r: Vec<f64> = b.iter().zip(&ax).map(|(bi, axi)| bi - axi).collect();
            ws.write_range(r_v, 0..n, &r);
        }
        let beta = kernels.dot(ctx, &mut ws, r_v, r_v)?.sqrt();
        residual = beta;
        if beta < 1e-12 {
            break;
        }
        // v0 = r / beta
        {
            let r = ws.read_range(r_v, 0..n);
            ws.write_range(v_vs[0], 0..n, &r);
        }
        kernels.scale_redundant(ctx, &mut ws, 1.0 / beta, v_vs[0]);

        let mut h: Vec<Vec<f64>> = vec![vec![0.0; m + 1]; m];
        let mut g = vec![0.0; m + 1];
        g[0] = beta;
        let mut rotations: Vec<Givens> = Vec::with_capacity(m);
        let mut k = 0usize;

        for j in 0..m {
            // w = A v_j
            kernels.spmv(ctx, &mut ws, v_vs[j], w_v)?;
            // Classical Gram-Schmidt: h[i][j] = <w, v_i>, then w -= h[i][j] v_i.
            for (i, &vi) in v_vs.iter().enumerate().take(j + 1) {
                let hij = kernels.dot(ctx, &mut ws, w_v, vi)?;
                h[j][i] = hij;
                kernels.axpy_redundant(ctx, &mut ws, -hij, vi, w_v);
            }
            let wnorm = kernels.dot(ctx, &mut ws, w_v, w_v)?.sqrt();
            h[j][j + 1] = wnorm;
            k = j + 1;
            if wnorm < 1e-14 {
                break;
            }
            // v_{j+1} = w / wnorm
            {
                let w = ws.read_range(w_v, 0..n);
                ws.write_range(v_vs[j + 1], 0..n, &w);
            }
            kernels.scale_redundant(ctx, &mut ws, 1.0 / wnorm, v_vs[j + 1]);

            // Apply the previous Givens rotations to the new column, compute
            // the new rotation, and update the residual estimate.
            for (i, rot) in rotations.iter().enumerate() {
                let (a, b2) = rot.apply(h[j][i], h[j][i + 1]);
                h[j][i] = a;
                h[j][i + 1] = b2;
            }
            let rot = Givens::compute(h[j][j], h[j][j + 1]);
            let (a, _) = rot.apply(h[j][j], h[j][j + 1]);
            h[j][j] = a;
            h[j][j + 1] = 0.0;
            let (g0, g1) = rot.apply(g[j], g[j + 1]);
            g[j] = g0;
            g[j + 1] = g1;
            rotations.push(rot);
            residual = g[j + 1].abs();
        }

        // Solve the small least-squares problem and update x.
        if k > 0 {
            let y = back_substitute(&h, &g, k);
            for (j, &yj) in y.iter().enumerate().take(k) {
                kernels.axpy_redundant(ctx, &mut ws, yj, v_vs[j], x_v);
            }
        }
        cycles += 1;
        if residual < 1e-10 {
            break;
        }
    }

    let report = ctx.finish(cycles, residual);
    Ok(AmgOutput { report, residual })
}
