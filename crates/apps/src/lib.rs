//! # apps — mini-applications of the paper's evaluation
//!
//! The four workloads of Section V, each written once and runnable in the
//! paper's three configurations (native, replicated, intra-parallelized):
//!
//! * [`hpccg`] — the Mantevo conjugate-gradient mini-app (Figures 5a / 5b);
//! * [`amg_proxy`] — AMG2013 stand-in: PCG on a 27-point operator and GMRES
//!   on a 7-point operator (Figures 6a / 6b);
//! * [`gtc_proxy`] — particle-in-cell charge/push proxy for GTC (Figure 6c);
//! * [`minighost`] — 27-point stencil + grid summation proxy for MiniGhost
//!   (Figure 6d).
//!
//! [`driver`] holds the shared per-process plumbing ([`driver::AppContext`])
//! and [`report::AppRunReport`] the per-process results that the benchmark
//! harness aggregates into the paper's efficiency figures.

#![warn(missing_docs)]
#![deny(unsafe_code)]

pub mod amg_proxy;
pub mod catalog;
pub mod driver;
pub mod gtc_proxy;
pub mod hpccg;
pub mod minighost;
pub mod report;
pub mod scale;
pub mod weak_scaling;

pub use amg_proxy::{run_amg, AmgOutput, AmgParams, AmgSolver};
pub use catalog::{run_app, AppId, AppWorkload};
pub use driver::{task_cost, AppContext, ScaledWorkload};
pub use gtc_proxy::{run_gtc, GtcOutput, GtcParams};
pub use hpccg::{run_hpccg, HpccgOutput, HpccgParams, KernelSelection};
pub use minighost::{run_minighost, MiniGhostOutput, MiniGhostParams};
pub use report::AppRunReport;
pub use scale::ExperimentScale;
pub use weak_scaling::{
    ckpt_charges, run_weak_scaling, WeakMode, WeakScalingProgram, WeakScalingSpec,
};
