//! Common plumbing for running a mini-application on one physical process.
//!
//! Every application is written once and runs in the paper's three
//! configurations (native / replicated / intra) by switching the
//! [`ExecutionMode`]: intra-parallel sections degrade gracefully to local
//! execution when work is not shared, and kernels that are *not*
//! intra-parallelized are executed redundantly on every replica through
//! [`AppContext::run_redundant`].

use crate::report::AppRunReport;
use ckpt::{CkptSession, CkptStats};
use ipr_core::{IntraConfig, IntraError, IntraResult, IntraRuntime, SectionsView, TaskCost};
use kernels::KernelCost;
use replication::{ExecutionMode, FailureInjector, ProtocolPoint, ReplicatedEnv};
use simcluster::SimTime;
use simmpi::{MpiResult, ProcHandle};

/// Converts a kernel cost descriptor into the task cost charged by the
/// intra-parallelization runtime.
pub fn task_cost(cost: KernelCost) -> TaskCost {
    TaskCost::new(cost.flops, cost.mem_bytes())
}

/// Per-process context shared by all the mini-applications.
pub struct AppContext {
    /// The replication environment (communicators, failure injection).
    pub env: ReplicatedEnv,
    /// The intra-parallelization runtime.
    pub rt: IntraRuntime,
    /// Virtual time at which the measured region started.
    start: SimTime,
    /// Section count / drain time already consumed by previous measured
    /// regions (so a context can be reused).
    sections_at_start: usize,
    /// The coordinated checkpoint/restart session, when the experiment has
    /// a checkpoint plan.  Every rank holds its own copy built from the
    /// same inputs, advanced with allreduce-synchronized timestamps, so
    /// the sessions stay in lock-step.
    ckpt: Option<CkptSession>,
}

impl AppContext {
    /// Builds the context for this physical process.  Collective: every
    /// process of the cluster must call it with the same mode and intra
    /// configuration.
    pub fn new(
        proc: ProcHandle,
        mode: ExecutionMode,
        intra: IntraConfig,
        injector: FailureInjector,
    ) -> MpiResult<Self> {
        let env = ReplicatedEnv::new(proc, mode, injector)?;
        let rt = IntraRuntime::new(env.clone(), intra);
        let start = env.now();
        Ok(AppContext {
            env,
            rt,
            start,
            sections_at_start: 0,
            ckpt: None,
        })
    }

    /// Convenience constructor without failure injection.
    pub fn without_failures(
        proc: ProcHandle,
        mode: ExecutionMode,
        intra: IntraConfig,
    ) -> MpiResult<Self> {
        Self::new(proc, mode, intra, FailureInjector::none())
    }

    /// Name of the scheduler the intra runtime is using (for reports).
    pub fn scheduler_name(&self) -> &'static str {
        self.rt.config().scheduler.name()
    }

    /// Attaches a coordinated checkpoint/restart session.  Collective in
    /// spirit: every rank of the run must attach a session built from the
    /// same inputs, or none at all.
    pub fn set_checkpointing(&mut self, session: CkptSession) {
        self.ckpt = Some(session);
    }

    /// The coordinated protocol point applications place at iteration
    /// boundaries: checks the timed/hand-placed failure injector exactly
    /// like the former inline `maybe_fail` blocks, then (when a C/R
    /// session is attached) runs the checkpoint protocol.  Behaviourally
    /// identical to the plain `maybe_fail` check when no session is set.
    pub fn iteration_boundary(&mut self, iteration: usize) -> IntraResult<()> {
        if self
            .env
            .maybe_fail(ProtocolPoint::IterationStart { iteration })
        {
            return Err(IntraError::Crashed);
        }
        self.checkpoint_boundary()
    }

    /// A C/R-only coordinated protocol point (no failure-injection check):
    /// synchronizes the rank clocks with an allreduce, advances the
    /// session, and charges the identical extra virtual time (restarts,
    /// re-executed work, a committed checkpoint) on every rank.  A no-op
    /// without an attached session.
    pub fn checkpoint_boundary(&mut self) -> IntraResult<()> {
        let Some(session) = self.ckpt.as_mut() else {
            return Ok(());
        };
        let synced = self
            .env
            .proc()
            .world()
            .allreduce_max_f64(self.env.now().as_secs())?;
        let extra = session.advance(synced);
        if extra > 0.0 {
            self.env.proc().charge_other(SimTime::from_secs(extra));
        }
        Ok(())
    }

    /// The final coordinated point at the end of the run: replays any
    /// crash events the last segment overlaps (committing no trailing
    /// checkpoint) and returns the session's accounting.  `None` without
    /// an attached session.
    pub fn finish_checkpointing(&mut self) -> IntraResult<Option<CkptStats>> {
        let Some(session) = self.ckpt.as_mut() else {
            return Ok(None);
        };
        let synced = self
            .env
            .proc()
            .world()
            .allreduce_max_f64(self.env.now().as_secs())?;
        let extra = session.finish(synced);
        if extra > 0.0 {
            self.env.proc().charge_other(SimTime::from_secs(extra));
        }
        Ok(Some(session.stats()))
    }

    /// Marks the beginning of the measured region (e.g. after problem setup).
    pub fn start_measurement(&mut self) {
        self.start = self.env.now();
        self.sections_at_start = self.rt.report().num_sections();
    }

    /// Executes a kernel redundantly on every replica (no work sharing),
    /// charging its modeled cost.  This is how the applications run the
    /// kernels that are *not* intra-parallelized.
    pub fn run_redundant<R>(&self, cost: KernelCost, f: impl FnOnce() -> R) -> R {
        self.env.charge_compute(cost.flops, cost.mem_bytes());
        f()
    }

    /// Charges communication-free "other" work (e.g. problem setup phases
    /// that are modeled but not executed).
    pub fn charge_other(&self, cost: KernelCost) {
        self.env.charge_compute(cost.flops, cost.mem_bytes());
    }

    /// Builds the per-process report for the measured region.  The report
    /// carries measurements only — the configuration axes (app name, mode,
    /// scheduler) are known to the caller that configured the run.
    pub fn finish(&self, iterations: usize, verification: f64) -> AppRunReport {
        let total_time = self.env.now().saturating_sub(self.start);
        let report = self.rt.report();
        let measured = SectionsView::new(&report.sections()[self.sections_at_start..]);
        AppRunReport {
            logical_rank: self.env.logical_rank(),
            replica_id: self.env.replica_id(),
            iterations,
            total_time,
            section_time: measured.total_section_time(),
            update_drain_time: measured.total_update_drain_time(),
            sections: measured.num_sections(),
            tasks_executed: measured.total_tasks_executed(),
            tasks_received: measured.total_tasks_received(),
            tasks_reexecuted: measured.total_tasks_reexecuted(),
            replica_failures_observed: measured.total_replica_failures_observed(),
            update_bytes_sent: measured.total_update_bytes_sent(),
            verification,
        }
    }
}

/// Parameters shared by the applications to describe the scale gap between
/// the arrays actually allocated and the paper-scale problem being modeled.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ScaledWorkload {
    /// Number of elements (grid points, particles, …) actually allocated per
    /// logical process.
    pub actual: usize,
    /// Number of elements of the modeled, paper-scale problem per logical
    /// process.
    pub modeled: usize,
}

impl ScaledWorkload {
    /// A workload where the actual and modeled sizes coincide.
    pub fn exact(n: usize) -> Self {
        ScaledWorkload {
            actual: n,
            modeled: n,
        }
    }

    /// A workload running on `actual` elements while modeling `modeled`.
    pub fn scaled(actual: usize, modeled: usize) -> Self {
        assert!(actual > 0, "actual size must be positive");
        assert!(
            modeled >= actual,
            "modeled size must be at least the actual size"
        );
        ScaledWorkload { actual, modeled }
    }

    /// The ratio modeled / actual, used as the `modeled_scale` of the intra
    /// runtime and for scaling halo-exchange message sizes.
    pub fn scale(&self) -> f64 {
        self.modeled as f64 / self.actual as f64
    }

    /// Scales an element count from actual to modeled size.
    pub fn scale_count(&self, actual_count: usize) -> usize {
        (actual_count as f64 * self.scale()).round() as usize
    }
}

/// Re-exported so applications can return `IntraResult` uniformly.
pub type AppResult<T> = IntraResult<T>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scaled_workload_ratios() {
        let w = ScaledWorkload::exact(1000);
        assert_eq!(w.scale(), 1.0);
        let w = ScaledWorkload::scaled(1000, 8000);
        assert_eq!(w.scale(), 8.0);
        assert_eq!(w.scale_count(10), 80);
    }

    #[test]
    #[should_panic]
    fn modeled_smaller_than_actual_is_rejected() {
        let _ = ScaledWorkload::scaled(100, 10);
    }

    #[test]
    fn task_cost_conversion_keeps_flops_and_traffic() {
        let c = KernelCost::new(10.0, 100.0, 50.0, 8.0);
        let t = task_cost(c);
        assert_eq!(t.flops, 10.0);
        assert_eq!(t.mem_bytes, 150.0);
    }
}
