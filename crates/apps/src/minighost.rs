//! MiniGhost proxy: 27-point stencil sweeps with halo exchange.
//!
//! MiniGhost (Mantevo) studies boundary-exchange strategies: every time step
//! it exchanges ghost faces with its neighbours, applies a 27-point stencil,
//! and periodically reduces a global grid summation.  The paper (Figure 6d)
//! could **not** intra-parallelize the stencil itself — its output is a full
//! new grid, so shipping the update costs as much as recomputing it — and
//! only the grid summation (~10 % of the runtime) runs in intra-parallel
//! sections, which caps the efficiency at ≈ 0.51.  The proxy reproduces
//! exactly that split: the stencil is executed redundantly on every replica,
//! the grid summation is intra-parallelized.

use crate::driver::{task_cost, AppContext, ScaledWorkload};
use crate::report::AppRunReport;
use ipr_core::{ArgSpec, IntraResult, TaskDef, Workspace};
use kernels::grid::{Face, Grid3d};
use kernels::stencil::{grid_sum_cost, stencil27_planes, stencil_cost};
use kernels::vecops::grid_sum;
use simmpi::Tag;

const HALO_TAG_UP: Tag = 131;
const HALO_TAG_DOWN: Tag = 132;

/// Parameters of a MiniGhost-proxy run.
#[derive(Debug, Clone, Copy)]
pub struct MiniGhostParams {
    /// Actual local grid dimensions per logical process.
    pub nx: usize,
    /// Local grid dimension y.
    pub ny: usize,
    /// Local grid dimension z.
    pub nz: usize,
    /// Modeled local grid dimensions (the paper uses 128 × 128 × 64).
    pub modeled_nx: usize,
    /// Modeled local grid dimension y.
    pub modeled_ny: usize,
    /// Modeled local grid dimension z.
    pub modeled_nz: usize,
    /// Number of stencil time steps.
    pub steps: usize,
    /// A grid summation is performed every `sum_every` steps (MiniGhost's
    /// `percent_sum` knob; 1 = every step).
    pub sum_every: usize,
    /// Whether the grid summation runs inside intra-parallel sections.
    pub intra_sum: bool,
}

impl MiniGhostParams {
    /// A small functional configuration.
    pub fn small(n: usize, steps: usize) -> Self {
        MiniGhostParams {
            nx: n,
            ny: n,
            nz: n,
            modeled_nx: n,
            modeled_ny: n,
            modeled_nz: n,
            steps,
            sum_every: 1,
            intra_sum: true,
        }
    }

    /// Paper-scale configuration: 128 × 128 × 64 modeled per process.
    pub fn paper_scale(actual: usize, steps: usize) -> Self {
        MiniGhostParams {
            nx: actual,
            ny: actual,
            nz: actual / 2,
            modeled_nx: 128,
            modeled_ny: 128,
            modeled_nz: 64,
            steps,
            sum_every: 2,
            intra_sum: true,
        }
    }

    fn local_n(&self) -> usize {
        self.nx * self.ny * self.nz
    }

    fn modeled_n(&self) -> usize {
        self.modeled_nx * self.modeled_ny * self.modeled_nz
    }

    fn workload(&self) -> ScaledWorkload {
        ScaledWorkload::scaled(self.local_n(), self.modeled_n())
    }
}

/// Result of a MiniGhost-proxy run on one physical process.
#[derive(Debug, Clone)]
pub struct MiniGhostOutput {
    /// Generic per-process report.
    pub report: AppRunReport,
    /// Last global grid summation value.
    pub last_sum: f64,
}

/// Runs the MiniGhost proxy on this physical process.
pub fn run_minighost(
    ctx: &mut AppContext,
    params: &MiniGhostParams,
) -> IntraResult<MiniGhostOutput> {
    let workload = params.workload();
    let rcomm = ctx.env.rcomm().clone();
    let logical = rcomm.logical_rank();
    let num_logical = rcomm.num_logical();
    let has_below = logical > 0;
    let has_above = logical + 1 < num_logical;
    let tasks = ctx.rt.config().tasks_per_section.max(1);

    let (nx, ny, nz) = (params.nx, params.ny, params.nz);
    let n = params.local_n();
    let modeled_n = params.modeled_n();
    let face_cells = nx * ny;
    let modeled_face_bytes = params.modeled_nx * params.modeled_ny * std::mem::size_of::<f64>();

    // Two grids (ping-pong) initialized from a smooth deterministic field.
    let mut current = Grid3d::from_fn(nx, ny, nz, |x, y, z| {
        1.0 + ((x + 2 * y + 3 * z + logical) % 7) as f64 * 0.1
    });
    let mut next = Grid3d::filled(nx, ny, nz, 0.0);

    // Workspace: the flattened interior (input of the summation) and the
    // per-task partial sums.
    let mut ws = Workspace::new();
    let interior_v = ws.add_zeros("interior", n);
    let partial_v = ws.add_zeros("partial", tasks);

    let stencil_full_cost = stencil_cost(modeled_n, 27);
    let sum_task_cost = task_cost(grid_sum_cost(modeled_n / tasks));

    ctx.start_measurement();

    let mut last_sum = 0.0;
    for step in 0..params.steps {
        ctx.iteration_boundary(step)?;

        // --- boundary exchange (outside sections) --------------------------
        if has_above {
            rcomm.send_logical_with_modeled_size(
                &current.extract_face(Face::Up),
                logical + 1,
                HALO_TAG_UP,
                modeled_face_bytes,
            )?;
        }
        if has_below {
            rcomm.send_logical_with_modeled_size(
                &current.extract_face(Face::Down),
                logical - 1,
                HALO_TAG_DOWN,
                modeled_face_bytes,
            )?;
        }
        if has_below {
            let incoming: Vec<f64> = rcomm.recv_logical(logical - 1, HALO_TAG_UP)?;
            current.fill_ghost(Face::Down, &incoming);
        }
        if has_above {
            let incoming: Vec<f64> = rcomm.recv_logical(logical + 1, HALO_TAG_DOWN)?;
            current.fill_ghost(Face::Up, &incoming);
        }
        // Charge the (small) copy cost of packing/unpacking the faces.
        ctx.charge_other(kernels::KernelCost::new(
            0.0,
            2.0 * face_cells as f64 * 8.0 * workload.scale(),
            2.0 * face_cells as f64 * 8.0 * workload.scale(),
            0.0,
        ));

        // --- 27-point stencil sweep (redundant on every replica) -----------
        ctx.run_redundant(stencil_full_cost, || ());
        stencil27_planes(&current, &mut next, 0..nz);
        std::mem::swap(&mut current, &mut next);

        // --- grid summation (intra-parallel) --------------------------------
        if params.sum_every > 0 && (step + 1) % params.sum_every == 0 {
            ws.write_range(interior_v, 0..n, &current.interior_to_vec());
            let local_sum = if params.intra_sum {
                let mut section = ctx.rt.section(&mut ws);
                let chunks = ipr_core::split_ranges(n, tasks);
                for (t, chunk) in chunks.into_iter().enumerate() {
                    section.add_task(
                        TaskDef::new(
                            "grid-sum",
                            |c| {
                                c.outputs[0][0] = grid_sum(&c.inputs[0]);
                            },
                            vec![
                                ArgSpec::input(interior_v, chunk),
                                ArgSpec::output(partial_v, t..t + 1),
                            ],
                        )
                        .with_cost(sum_task_cost),
                    )?;
                }
                let _ = section.end()?;
                ws.get(partial_v).iter().sum::<f64>()
            } else {
                ctx.run_redundant(grid_sum_cost(modeled_n), || ());
                grid_sum(ws.get(interior_v))
            };
            last_sum = rcomm.logical_allreduce_sum_f64(local_sum)?;
        }
    }

    let report = ctx.finish(params.steps, last_sum);
    Ok(MiniGhostOutput { report, last_sum })
}
