//! Weak-scaling replication workload for the event-driven engine.
//!
//! The paper's measurements stop at 128 nodes, but its argument — that
//! sharing work between replicas beats classic duplicate-everything
//! replication — is about *supercomputer* scale, where failures are frequent
//! enough that replication is worth its cost.  This module models the
//! paper's three configurations as [`simmpi::RankProgram`] state machines so
//! the replication curves can be swept at 10k–1M logical ranks on the
//! event-driven engine ([`simmpi::run_virtual_cluster`]), far past the
//! thread-per-rank ceiling.
//!
//! Each iteration of the modeled SPMD solver performs, per rank:
//!
//! 1. a compute region (roofline-modeled; **halved** under
//!    intra-parallelization, because the two replicas split the work);
//! 2. *intra mode only*: an update exchange with the partner replica (each
//!    replica ships the half of the results it computed — the paper's
//!    task-update traffic);
//! 3. a halo exchange with the ring neighbours inside the rank's own
//!    replica set (sends posted before receives, so the ring cannot
//!    deadlock);
//! 4. a hypercube allreduce across the replica set (`ceil(log2 n)` rounds
//!    of pairwise exchanges — partners beyond the rank count sit out, which
//!    both sides of each pair agree on, so no round can deadlock).
//!
//! Classic replication (`Replicated`) runs the full computation and
//! communication in *both* replica sets; native runs one set.  All receives
//! name exact sources and tags, which keeps the engine's virtual-time
//! results byte-identical at any worker count (see `simmpi::engine`).
//!
//! Failures are crash-stop: a receive naming a dead peer resolves as
//! [`RecvOutcome::PeerFailed`] and the survivor *continues with a hole* —
//! and, in intra mode, takes over the dead partner's compute share, which is
//! exactly the paper's failure handling (the surviving replica executes all
//! tasks of the logical process).

use ckpt::{CheckpointPlan, CkptSession, CkptStats};
use simcluster::{MachineModel, SimTime, Topology};
use simmpi::{
    run_virtual_cluster, EngineConfig, RankCtx, RankProgram, RecvOutcome, Step, Tag,
    VirtualClusterReport,
};
use std::sync::Arc;

/// Execution configuration of a weak-scaling run (the engine-world analogue
/// of `replication::ExecutionMode` with the paper's degree of 2).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum WeakMode {
    /// One replica set, full work per rank.
    Native,
    /// Two replica sets, each doing the full work (classic replication).
    Replicated,
    /// Two replica sets sharing the work and exchanging updates
    /// (the paper's intra-parallelization).
    Intra,
}

impl WeakMode {
    /// Replication degree of the mode.
    pub fn degree(self) -> usize {
        match self {
            WeakMode::Native => 1,
            WeakMode::Replicated | WeakMode::Intra => 2,
        }
    }

    /// Stable label used in run ids and reports.
    pub fn label(self) -> &'static str {
        match self {
            WeakMode::Native => "native",
            WeakMode::Replicated => "replicated2",
            WeakMode::Intra => "intra2",
        }
    }
}

/// Parameters of one weak-scaling run.
#[derive(Debug, Clone)]
pub struct WeakScalingSpec {
    /// Logical ranks (physical ranks = `logical * mode.degree()`).
    pub logical: usize,
    /// Execution configuration.
    pub mode: WeakMode,
    /// Solver iterations to model.
    pub iters: usize,
    /// Halo message size in bytes (per neighbour, per iteration).
    pub halo_bytes: usize,
    /// Allreduce contribution size in bytes (per round).
    pub allreduce_bytes: usize,
    /// Replica update-exchange size in bytes (intra mode only).
    pub update_bytes: usize,
    /// Flops of one full compute region (before work sharing).
    pub flops_per_iter: f64,
    /// Memory traffic of one full compute region in bytes.
    pub mem_bytes_per_iter: f64,
    /// Engine worker threads (`0` = host parallelism).  Virtual-time
    /// results are identical for every value.
    pub workers: usize,
    /// Coordinated checkpoint/restart plan.  When set, crash events feed a
    /// deterministic rollback-recovery replay instead of killing ranks:
    /// every rank elapses the identical checkpoint/restart/re-execution
    /// charges at its iteration boundaries (see [`ckpt_charges`]).
    pub ckpt: Option<CheckpointPlan>,
    /// System MTBF in seconds the Young/Daly interval policies resolve
    /// against (ignored by fixed-interval plans; `INFINITY` = failure-free).
    pub ckpt_mtbf_s: f64,
}

impl WeakScalingSpec {
    /// A paper-flavoured default: a memory-bound stencil iteration with an
    /// 8 KiB halo, a scalar allreduce, and a 64 KiB replica update.
    pub fn new(logical: usize, mode: WeakMode) -> Self {
        WeakScalingSpec {
            logical,
            mode,
            iters: 3,
            halo_bytes: 8 << 10,
            allreduce_bytes: 8,
            update_bytes: 64 << 10,
            flops_per_iter: 2.0e7,
            mem_bytes_per_iter: 1.6e8,
            workers: 0,
            ckpt: None,
            ckpt_mtbf_s: f64::INFINITY,
        }
    }

    /// Attaches a coordinated checkpoint/restart plan, resolving Young/Daly
    /// intervals against the given system MTBF (pass `f64::INFINITY` for a
    /// failure-free overhead-only run).
    pub fn with_checkpointing(mut self, plan: CheckpointPlan, mtbf_s: f64) -> Self {
        self.ckpt = Some(plan);
        self.ckpt_mtbf_s = mtbf_s;
        self
    }

    /// Sets the iteration count.
    pub fn with_iters(mut self, iters: usize) -> Self {
        self.iters = iters;
        self
    }

    /// Sets the engine worker-thread count.
    pub fn with_workers(mut self, workers: usize) -> Self {
        self.workers = workers;
        self
    }

    /// Number of physical ranks the run simulates.
    pub fn num_procs(&self) -> usize {
        self.logical * self.mode.degree()
    }

    /// The placement: block for native, replica-disjoint halves (the
    /// paper's requirement that replicas of one logical process never share
    /// a node) for the replicated modes.
    pub fn topology(&self, machine: &MachineModel) -> Topology {
        let cores = machine.cores_per_node.max(1);
        match self.mode {
            WeakMode::Native => Topology::block(self.logical, cores),
            WeakMode::Replicated | WeakMode::Intra => {
                Topology::replica_disjoint(self.logical, 2, cores)
            }
        }
    }
}

/// Tags used by the workload (all below `simmpi::RESERVED_TAG_BASE`).
const TAG_UPDATE: Tag = 1001;
/// Halo sent to the right neighbour ("from your left").
const TAG_HALO_R: Tag = 1002;
/// Halo sent to the left neighbour ("from your right").
const TAG_HALO_L: Tag = 1003;
/// Base tag of the allreduce rounds (round `k` uses `TAG_AR + k`).
const TAG_AR: Tag = 1100;

/// Program counter of the per-iteration state machine.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Pc {
    Compute,
    UpdateSend,
    UpdateRecv,
    HaloSendRight,
    HaloSendLeft,
    HaloRecvLeft,
    HaloRecvRight,
    AllreduceSend(u32),
    AllreduceRecv(u32),
    NextIter,
    Finished,
}

/// One logical rank of the weak-scaling workload, as a cooperative state
/// machine.
pub struct WeakScalingProgram {
    spec: WeakScalingSpec,
    /// Logical id within the replica set.
    l: usize,
    /// Replica set (0 or 1).
    rep: usize,
    iter: usize,
    pc: Pc,
    /// Allreduce rounds: `ceil(log2 logical)`.
    ar_rounds: u32,
    /// Whether the previous step returned was a `Recv` (so `last_recv`
    /// belongs to it and not to some earlier receive).
    expect_recv: bool,
    /// Intra mode: the partner replica is still alive.  When it dies, this
    /// rank takes over the full compute share (the paper's failure
    /// handling: the surviving replica executes all tasks).
    partner_alive: bool,
    /// Receives that resolved as [`RecvOutcome::PeerFailed`] — data holes a
    /// real solver would paper over with its recovery protocol.
    holes: u64,
    /// Per-boundary checkpoint/restart charges (empty without a plan):
    /// `charges[i]` is elapsed after iteration `i` completes, identically
    /// on every rank, so the C/R protocol stays coordinated.
    charges: Arc<[f64]>,
}

impl WeakScalingProgram {
    /// Builds the program for world rank `rank`.
    pub fn new(spec: &WeakScalingSpec, rank: usize) -> Self {
        Self::with_charges(spec, rank, Arc::from(Vec::new()))
    }

    /// Builds the program with a shared per-boundary C/R charge vector
    /// (computed once by [`ckpt_charges`] and cloned into every rank).
    pub fn with_charges(spec: &WeakScalingSpec, rank: usize, charges: Arc<[f64]>) -> Self {
        let logical = spec.logical;
        WeakScalingProgram {
            spec: spec.clone(),
            l: rank % logical,
            rep: rank / logical,
            iter: 0,
            pc: Pc::Compute,
            ar_rounds: usize::BITS - (logical.max(1) - 1).leading_zeros(),
            expect_recv: false,
            partner_alive: true,
            holes: 0,
            charges,
        }
    }

    fn world_of(&self, logical_id: usize) -> usize {
        self.rep * self.spec.logical + logical_id
    }

    fn left(&self) -> usize {
        self.world_of((self.l + self.spec.logical - 1) % self.spec.logical)
    }

    fn right(&self) -> usize {
        self.world_of((self.l + 1) % self.spec.logical)
    }

    fn partner(&self) -> usize {
        (1 - self.rep) * self.spec.logical + self.l
    }

    /// Allreduce partner of round `k`, if it exists (`l ^ 2^k` may fall
    /// outside a non-power-of-two rank count; both sides of a pair agree on
    /// existence, so skipped rounds cannot deadlock).
    fn ar_peer(&self, round: u32) -> Option<usize> {
        let p = self.l ^ (1usize << round);
        (p < self.spec.logical).then(|| self.world_of(p))
    }
}

impl RankProgram for WeakScalingProgram {
    fn step(&mut self, ctx: &RankCtx) -> Step {
        // A receive from a crashed peer resolves as `PeerFailed`: the rank
        // records the hole and keeps going (crash-stop peers must not stall
        // the survivors).  In intra mode, losing the partner means this
        // replica takes over the full compute share from the next region on.
        if self.expect_recv {
            self.expect_recv = false;
            if let Some(RecvOutcome::PeerFailed { src }) = ctx.last_recv() {
                self.holes += 1;
                if self.spec.mode == WeakMode::Intra && src == self.partner() {
                    self.partner_alive = false;
                }
            }
        }
        loop {
            match self.pc {
                Pc::Compute => {
                    let sharing = self.spec.mode == WeakMode::Intra && self.partner_alive;
                    self.pc = if sharing {
                        Pc::UpdateSend
                    } else {
                        Pc::HaloSendRight
                    };
                    let share = if sharing { 0.5 } else { 1.0 };
                    return Step::Compute {
                        flops: self.spec.flops_per_iter * share,
                        mem_bytes: self.spec.mem_bytes_per_iter * share,
                    };
                }
                Pc::UpdateSend => {
                    self.pc = Pc::UpdateRecv;
                    return Step::Send {
                        dst: self.partner(),
                        tag: TAG_UPDATE,
                        bytes: self.spec.update_bytes,
                    };
                }
                Pc::UpdateRecv => {
                    self.pc = Pc::HaloSendRight;
                    self.expect_recv = true;
                    return Step::Recv {
                        src: Some(self.partner()),
                        tag: Some(TAG_UPDATE),
                    };
                }
                Pc::HaloSendRight => {
                    self.pc = Pc::HaloSendLeft;
                    return Step::Send {
                        dst: self.right(),
                        tag: TAG_HALO_R,
                        bytes: self.spec.halo_bytes,
                    };
                }
                Pc::HaloSendLeft => {
                    self.pc = Pc::HaloRecvLeft;
                    return Step::Send {
                        dst: self.left(),
                        tag: TAG_HALO_L,
                        bytes: self.spec.halo_bytes,
                    };
                }
                Pc::HaloRecvLeft => {
                    self.pc = Pc::HaloRecvRight;
                    self.expect_recv = true;
                    return Step::Recv {
                        src: Some(self.left()),
                        tag: Some(TAG_HALO_R),
                    };
                }
                Pc::HaloRecvRight => {
                    self.pc = Pc::AllreduceSend(0);
                    self.expect_recv = true;
                    return Step::Recv {
                        src: Some(self.right()),
                        tag: Some(TAG_HALO_L),
                    };
                }
                Pc::AllreduceSend(round) => {
                    if round >= self.ar_rounds {
                        self.pc = Pc::NextIter;
                        continue;
                    }
                    match self.ar_peer(round) {
                        Some(peer) => {
                            self.pc = Pc::AllreduceRecv(round);
                            return Step::Send {
                                dst: peer,
                                tag: TAG_AR + round,
                                bytes: self.spec.allreduce_bytes,
                            };
                        }
                        None => {
                            self.pc = Pc::AllreduceSend(round + 1);
                            continue;
                        }
                    }
                }
                Pc::AllreduceRecv(round) => {
                    self.pc = Pc::AllreduceSend(round + 1);
                    self.expect_recv = true;
                    return Step::Recv {
                        src: Some(self.ar_peer(round).expect("peer existed at send time")),
                        tag: Some(TAG_AR + round),
                    };
                }
                Pc::NextIter => {
                    // Coordinated C/R boundary: every rank elapses the same
                    // precomputed charge (committed checkpoints, restarts,
                    // re-executed work), keeping the protocol in lock-step.
                    let charge = self.charges.get(self.iter).copied().unwrap_or(0.0);
                    self.iter += 1;
                    self.pc = if self.iter >= self.spec.iters {
                        Pc::Finished
                    } else {
                        Pc::Compute
                    };
                    if charge > 0.0 {
                        return Step::Elapse(SimTime::from_secs(charge));
                    }
                }
                Pc::Finished => return Step::Done,
            }
        }
    }

    /// Iterations completed plus `holes * 1e-6`: the integer part says how
    /// far the rank got, the fraction whether any receives resolved as
    /// peer failures (`0` = clean run).
    fn result(&self) -> Option<f64> {
        Some(self.iter as f64 + self.holes as f64 * 1e-6)
    }
}

/// The per-boundary checkpoint/restart charges of an engine-world run, and
/// the session's wasted-work accounting.  `None` without a plan.
///
/// The engine world replays the C/R protocol on a *nominal* timeline: the
/// modeled compute cost of one iteration (roofline time of the per-rank
/// region, halved under intra-parallelization) spaces the coordinated
/// boundaries, and the crash events drive the same deterministic
/// rollback-recovery replay as the thread world ([`ckpt::CkptSession`]).
/// The result is a charge vector of length `spec.iters` — entry `i` is the
/// extra virtual time (committed checkpoint, restarts, re-executed work)
/// every rank elapses after iteration `i`; the last boundary commits no
/// trailing checkpoint.  A pure function of the spec and the crash list.
pub fn ckpt_charges(
    spec: &WeakScalingSpec,
    crashes: &[(usize, SimTime)],
) -> Option<(Arc<[f64]>, CkptStats)> {
    let plan = spec.ckpt?;
    let machine = MachineModel::grid5000_ib20g();
    let share = if spec.mode == WeakMode::Intra {
        0.5
    } else {
        1.0
    };
    let iter_cost = machine
        .compute
        .region_time(spec.flops_per_iter * share, spec.mem_bytes_per_iter * share)
        .as_secs();
    let events: Vec<(usize, f64)> = crashes.iter().map(|&(r, t)| (r, t.as_secs())).collect();
    let mut session = CkptSession::new(
        &plan,
        spec.ckpt_mtbf_s,
        &events,
        spec.logical,
        spec.mode.degree(),
    );
    let mut charges = vec![0.0; spec.iters];
    let mut clock = 0.0;
    for (i, slot) in charges.iter_mut().enumerate() {
        clock += iter_cost;
        let extra = if i + 1 == spec.iters {
            session.finish(clock)
        } else {
            session.advance(clock)
        };
        clock += extra;
        *slot = extra;
    }
    Some((Arc::from(charges), session.stats()))
}

/// Runs a weak-scaling experiment on the event-driven engine, with
/// crash-stop failures injected at the given `(world rank, virtual time)`
/// points (typically sampled from a Poisson trace; see
/// `replication::sample_failure_trace`).
///
/// With a checkpoint plan attached ([`WeakScalingSpec::with_checkpointing`])
/// the crash events feed the rollback-recovery replay instead of killing
/// ranks: every rank completes, elapsing the identical C/R charges at its
/// iteration boundaries ([`ckpt_charges`] exposes the same vector and the
/// wasted-work accounting).
pub fn run_weak_scaling(
    spec: &WeakScalingSpec,
    crashes: &[(usize, SimTime)],
) -> VirtualClusterReport {
    let machine = MachineModel::grid5000_ib20g();
    let mut config = EngineConfig::new(spec.num_procs())
        .with_machine(machine)
        .with_topology(spec.topology(&machine))
        .with_workers(spec.workers);
    let charges = match ckpt_charges(spec, crashes) {
        Some((charges, _stats)) => charges,
        None => {
            config.crashes = crashes.to_vec();
            Arc::from(Vec::new())
        }
    };
    run_virtual_cluster(&config, |rank| {
        WeakScalingProgram::with_charges(spec, rank, Arc::clone(&charges))
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use simmpi::RankEnd;

    #[test]
    fn native_ring_completes_at_modest_scale() {
        let spec = WeakScalingSpec::new(64, WeakMode::Native).with_workers(2);
        let report = run_weak_scaling(&spec, &[]);
        assert_eq!(report.num_completed(), 64);
        assert!(report.errors().is_empty(), "{:?}", report.errors());
        assert!(report.makespan() > SimTime::ZERO);
        for r in &report.ranks {
            assert_eq!(r.result, Some(spec.iters as f64));
        }
    }

    #[test]
    fn all_modes_complete_on_non_power_of_two_counts() {
        for mode in [WeakMode::Native, WeakMode::Replicated, WeakMode::Intra] {
            for logical in [1usize, 2, 3, 24, 100] {
                let spec = WeakScalingSpec::new(logical, mode).with_iters(2);
                let report = run_weak_scaling(&spec, &[]);
                assert_eq!(
                    report.num_completed(),
                    spec.num_procs(),
                    "mode {:?} logical {logical}: {:?}",
                    mode,
                    report.errors()
                );
            }
        }
    }

    #[test]
    fn intra_mode_is_faster_than_replicated_and_includes_update_traffic() {
        let replicated = run_weak_scaling(&WeakScalingSpec::new(32, WeakMode::Replicated), &[]);
        let intra = run_weak_scaling(&WeakScalingSpec::new(32, WeakMode::Intra), &[]);
        // Work sharing halves the dominant compute term; the added update
        // exchange must not eat the whole gain on this workload.
        assert!(
            intra.makespan() < replicated.makespan(),
            "intra {:?} !< replicated {:?}",
            intra.makespan(),
            replicated.makespan()
        );
        // Update exchange is extra messages on top of the replicated set.
        assert!(intra.messages > replicated.messages);
    }

    #[test]
    fn results_are_identical_across_worker_counts() {
        let base = run_weak_scaling(
            &WeakScalingSpec::new(48, WeakMode::Intra).with_workers(1),
            &[],
        );
        for workers in [2, 4] {
            let spec = WeakScalingSpec::new(48, WeakMode::Intra).with_workers(workers);
            let report = run_weak_scaling(&spec, &[]);
            for (a, b) in base.ranks.iter().zip(&report.ranks) {
                assert_eq!(a.final_time, b.final_time, "rank {}", a.rank);
                assert_eq!(a.compute_time, b.compute_time);
                assert_eq!(a.comm_time, b.comm_time);
                assert_eq!(a.wait_time, b.wait_time);
            }
            assert_eq!(base.messages, report.messages);
        }
    }

    #[test]
    fn engine_checkpoint_replay_absorbs_a_crash_and_charges_every_rank() {
        let machine = MachineModel::grid5000_ib20g();
        let iter_cost = machine.compute.region_time(2.0e7, 1.6e8).as_secs();
        let plan = CheckpointPlan::fixed(0.6 * iter_cost, 0.01 * iter_cost, 0.02 * iter_cost);
        let spec = WeakScalingSpec::new(8, WeakMode::Native)
            .with_iters(4)
            .with_checkpointing(plan, f64::INFINITY);
        let crashes = vec![(3usize, SimTime::from_secs(1.5 * iter_cost))];

        let (charges, stats) = ckpt_charges(&spec, &crashes).unwrap();
        assert_eq!(charges.len(), 4);
        assert_eq!(stats.recoveries, 1, "{stats:?}");
        assert!(stats.checkpoints >= 2, "{stats:?}");
        assert!(stats.time_lost_s > 0.0);
        assert!(stats.ckpt_overhead_s > 0.0);

        let baseline = run_weak_scaling(
            &WeakScalingSpec::new(8, WeakMode::Native).with_iters(4),
            &[],
        );
        let report = run_weak_scaling(&spec, &crashes);
        // Rollback-recovery absorbs the crash: nobody dies, everybody pays.
        assert_eq!(report.num_crashed(), 0);
        assert_eq!(report.num_completed(), spec.num_procs());
        assert!(report.errors().is_empty(), "{:?}", report.errors());
        let extra: f64 = charges.iter().sum();
        let diff = report.makespan().as_secs() - baseline.makespan().as_secs();
        assert!(
            (diff - extra).abs() < 1e-9,
            "makespan grew by {diff}, charges total {extra}"
        );
    }

    #[test]
    fn engine_checkpoint_results_are_identical_across_worker_counts() {
        // Ranks 5 and 21 are the two replicas of logical rank 5: a replica
        // defeat, so the replay must roll back even in a replicated mode.
        let plan = CheckpointPlan::fixed(0.01, 0.001, 0.002);
        let crashes = vec![
            (5usize, SimTime::from_secs(0.02)),
            (21usize, SimTime::from_secs(0.05)),
        ];
        let base_spec = WeakScalingSpec::new(16, WeakMode::Intra)
            .with_iters(3)
            .with_checkpointing(plan, f64::INFINITY)
            .with_workers(1);
        let base = run_weak_scaling(&base_spec, &crashes);
        assert_eq!(base.num_crashed(), 0);
        assert_eq!(base.num_completed(), base_spec.num_procs());
        for workers in [2usize, 4] {
            let spec = base_spec.clone().with_workers(workers);
            let report = run_weak_scaling(&spec, &crashes);
            for (a, b) in base.ranks.iter().zip(&report.ranks) {
                assert_eq!(a.final_time, b.final_time, "rank {}", a.rank);
            }
            assert_eq!(base.messages, report.messages);
        }
    }

    #[test]
    fn a_crash_degrades_neighbours_instead_of_hanging() {
        let spec = WeakScalingSpec::new(16, WeakMode::Intra).with_iters(4);
        // Kill one rank mid-run (virtual time inside the first iteration).
        let report = run_weak_scaling(&spec, &[(3, SimTime::from_secs(1e-4))]);
        assert_eq!(report.num_crashed(), 1);
        assert_eq!(report.ranks[3].end, RankEnd::Crashed);
        // Every survivor ran to completion (with holes), nobody deadlocked.
        assert_eq!(report.num_completed(), spec.num_procs() - 1);
        assert!(report.errors().is_empty(), "{:?}", report.errors());
        // The dead rank's partner (world rank 16 + 3) observed the failure
        // and took over the full compute share, so it computed more than a
        // survivor whose partner stayed alive.
        let partner = &report.ranks[16 + 3];
        let unaffected = &report.ranks[16 + 8];
        assert!(partner.result.unwrap().fract() > 0.0, "partner saw no hole");
        assert!(
            partner.compute_time > unaffected.compute_time,
            "partner {:?} !> unaffected {:?}",
            partner.compute_time,
            unaffected.compute_time
        );
        // Survivors all finished the full iteration count.
        for r in report.ranks.iter().filter(|r| !r.failed) {
            assert_eq!(
                r.result.unwrap().trunc(),
                spec.iters as f64,
                "rank {}",
                r.rank
            );
        }
    }
}
