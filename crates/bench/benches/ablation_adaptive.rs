//! Criterion wrapper around the `ABL-ADAPT` adaptive-scheduling ablation:
//! all five registered schedulers on a heterogeneous HPCCG/GTC-like section
//! repeated over iterations, showing the adaptive scheduler's warm-up
//! convergence.

use criterion::{criterion_group, criterion_main, Criterion};
use ipr_bench::{ablations, ExperimentScale};

fn bench_adaptive(c: &mut Criterion) {
    let rows = ablations::adaptive(ExperimentScale::Small);
    for r in &rows {
        println!(
            "adaptive[{} iter {}]: makespan={:.4}s",
            r.scheduler, r.iteration, r.makespan_s
        );
    }
    let last = rows.iter().map(|r| r.iteration).max().unwrap_or(0);
    let pick = |sched: &str| {
        rows.iter()
            .find(|r| r.scheduler == sched && r.iteration == last)
            .map(|r| r.makespan_s)
            .unwrap_or(f64::NAN)
    };
    println!(
        "final makespans: adaptive={:.4}s cost-aware={:.4}s static-block={:.4}s",
        pick("adaptive"),
        pick("cost-aware"),
        pick("static-block")
    );
    let mut group = c.benchmark_group("ablation_adaptive");
    group.sample_size(10);
    group.bench_function("scheduler_convergence_small", |b| {
        b.iter(|| ablations::adaptive(ExperimentScale::Small))
    });
    group.finish();
}

criterion_group!(benches, bench_adaptive);
criterion_main!(benches);
