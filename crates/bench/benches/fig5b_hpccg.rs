//! Criterion wrapper around the Figure 5b HPCCG weak-scaling study
//! (reduced scale).

use criterion::{criterion_group, criterion_main, Criterion};
use ipr_bench::{fig5b, ExperimentScale};

fn bench_fig5b(c: &mut Criterion) {
    let rows = fig5b::run(ExperimentScale::Small);
    for r in &rows {
        println!(
            "fig5b[{} procs/{}]: time={:.3}s efficiency={:.2}",
            r.procs, r.mode, r.time_s, r.efficiency
        );
    }
    let mut group = c.benchmark_group("fig5b");
    group.sample_size(10);
    group.bench_function("hpccg_weak_scaling_small", |b| {
        b.iter(|| fig5b::run(ExperimentScale::Small))
    });
    group.finish();
}

criterion_group!(benches, bench_fig5b);
criterion_main!(benches);
