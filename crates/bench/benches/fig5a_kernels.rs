//! Criterion wrapper around the Figure 5a kernel study (reduced scale).
//!
//! The measured quantity is the wall-clock time of the whole simulated
//! experiment; the virtual-time results (the actual figure content) are
//! printed once per bench run so they appear in the bench log.

use criterion::{criterion_group, criterion_main, Criterion};
use ipr_bench::{fig5a, ExperimentScale};

fn bench_fig5a(c: &mut Criterion) {
    // Print the figure content once so `cargo bench` output documents it.
    let rows = fig5a::run(ExperimentScale::Small);
    for r in &rows {
        println!(
            "fig5a[{}/{}]: normalized={:.2} efficiency={:.2} update_share={:.0}%",
            r.kernel,
            r.mode,
            r.normalized,
            r.efficiency,
            r.update_fraction * 100.0
        );
    }
    let mut group = c.benchmark_group("fig5a");
    group.sample_size(10);
    group.bench_function("kernel_study_small", |b| {
        b.iter(|| fig5a::run(ExperimentScale::Small))
    });
    group.finish();
}

criterion_group!(benches, bench_fig5a);
criterion_main!(benches);
