//! Micro-benchmarks of the runtime primitives themselves (real wall-clock
//! time, not virtual time): section overhead, update framing, message
//! round-trips, scheduler cost.  These guard against regressions in the
//! simulator and runtime implementation rather than reproducing a paper
//! figure.

use criterion::{criterion_group, criterion_main, BatchSize, Criterion};
use ipr_core::{
    ArgSpec, IntraConfig, IntraRuntime, Scheduler, StaticBlockScheduler, TaskDef, Workspace,
};
use replication::{ExecutionMode, ReplicatedEnv};
use simmpi::{run_cluster, ClusterConfig};

fn bench_section_overhead(c: &mut Criterion) {
    let mut group = c.benchmark_group("runtime");
    group.sample_size(20);

    // Cost of running one 8-task section (2 replicas, work shared) including
    // thread spawning for the 2-process simulated cluster.
    group.bench_function("shared_section_2_replicas", |b| {
        b.iter(|| {
            run_cluster(&ClusterConfig::ideal(2), |proc| {
                let env = ReplicatedEnv::without_failures(
                    proc,
                    ExecutionMode::IntraParallel { degree: 2 },
                )
                .unwrap();
                let mut rt = IntraRuntime::new(env, IntraConfig::paper());
                let mut ws = Workspace::new();
                let x = ws.add("x", vec![1.0; 4096]);
                let w = ws.add_zeros("w", 4096);
                let mut section = rt.section(&mut ws);
                section
                    .add_split(4096, |chunk| {
                        TaskDef::new(
                            "double",
                            |c| {
                                for i in 0..c.outputs[0].len() {
                                    c.outputs[0][i] = 2.0 * c.inputs[0][i];
                                }
                            },
                            vec![ArgSpec::input(x, chunk.clone()), ArgSpec::output(w, chunk)],
                        )
                    })
                    .unwrap();
                let _ = section.end().unwrap();
            })
            .unwrap_results()
        })
    });

    // Pure MPI ping-pong round trip through the simulated router.
    group.bench_function("simmpi_pingpong_1kb", |b| {
        b.iter(|| {
            run_cluster(&ClusterConfig::ideal(2), |proc| {
                let world = proc.world();
                let payload = vec![1.0f64; 128];
                for tag in 0..16 {
                    if world.rank() == 0 {
                        world.send(&payload, 1, tag).unwrap();
                        let _: Vec<f64> = world.recv(1, tag).unwrap();
                    } else {
                        let _: Vec<f64> = world.recv(0, tag).unwrap();
                        world.send(&payload, 0, tag).unwrap();
                    }
                }
            })
            .unwrap_results()
        })
    });

    // Scheduler assignment cost for a large section.
    group.bench_function("static_block_assign_2048_tasks", |b| {
        let weights = vec![1.0; 2048];
        b.iter_batched(
            || weights.clone(),
            |w| StaticBlockScheduler.assign(&w, &[0, 1]),
            BatchSize::SmallInput,
        )
    });

    group.finish();
}

criterion_group!(benches, bench_section_overhead);
criterion_main!(benches);
