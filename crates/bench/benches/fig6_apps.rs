//! Criterion wrapper around the four Figure 6 application studies
//! (reduced scale): AMG2013 PCG-27pt (6a), AMG2013 GMRES-7pt (6b), GTC (6c)
//! and MiniGhost (6d).

use criterion::{criterion_group, criterion_main, Criterion};
use ipr_bench::fig6::{self, Fig6App};
use ipr_bench::ExperimentScale;

fn bench_fig6(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig6");
    group.sample_size(10);
    for app in Fig6App::ALL {
        let rows = fig6::run(app, ExperimentScale::Small);
        for r in &rows {
            println!(
                "fig{}[{}/{}]: time={:.3}s sections={:.3}s others={:.3}s efficiency={:.2}",
                app.figure(),
                r.app,
                r.mode,
                r.time_s,
                r.sections_s,
                r.others_s,
                r.efficiency
            );
        }
        group.bench_function(format!("fig{}_{:?}_small", app.figure(), app), |b| {
            b.iter(|| fig6::run(app, ExperimentScale::Small))
        });
    }
    group.finish();
}

criterion_group!(benches, bench_fig6);
criterion_main!(benches);
