//! Criterion wrapper around the fabric microbenchmarks (reduced scale).
//!
//! The authoritative wall-clock numbers come from the `bench-json` binary
//! (which writes `BENCH.json`); this wrapper exists so `cargo bench fabric`
//! can watch the same patterns interactively.

use criterion::{criterion_group, criterion_main, Criterion};
use ipr_bench::fabric;

fn bench_fabric(c: &mut Criterion) {
    let mut group = c.benchmark_group("fabric");
    group.sample_size(10);
    group.bench_function("p2p_throughput", |b| {
        b.iter(|| fabric::p2p_throughput(2_000, 64))
    });
    group.bench_function("mailbox_depth", |b| {
        b.iter(|| fabric::mailbox_depth(256, 2, 16))
    });
    group.bench_function("replica_fanout_x2", |b| {
        b.iter(|| fabric::replica_fanout(2, 200, 64))
    });
    group.finish();
}

criterion_group!(benches, bench_fabric);
criterion_main!(benches);
