//! Criterion wrapper around the replica-link bandwidth ablation.

use criterion::{criterion_group, criterion_main, Criterion};
use ipr_bench::{ablations, ExperimentScale};

fn bench_bandwidth(c: &mut Criterion) {
    let rows = ablations::bandwidth(ExperimentScale::Small, &ablations::default_bandwidths());
    for r in &rows {
        println!(
            "bandwidth[{:.2} GB/s, {}]: intra efficiency={:.2}",
            r.bandwidth_gbs, r.kernel, r.efficiency
        );
    }
    let mut group = c.benchmark_group("ablation_bandwidth");
    group.sample_size(10);
    group.bench_function("kernel_bandwidth_sweep_small", |b| {
        b.iter(|| ablations::bandwidth(ExperimentScale::Small, &[0.9, 1.8]))
    });
    group.finish();
}

criterion_group!(benches, bench_bandwidth);
criterion_main!(benches);
