//! Criterion wrapper around the task-granularity ablation (the paper's
//! stated choice of 8 tasks per section).

use criterion::{criterion_group, criterion_main, Criterion};
use ipr_bench::{ablations, ExperimentScale};

fn bench_granularity(c: &mut Criterion) {
    let rows = ablations::granularity(ExperimentScale::Small, &ablations::default_task_counts());
    for r in &rows {
        println!(
            "granularity[{} tasks]: time={:.4}s efficiency={:.2}",
            r.tasks_per_section, r.time_s, r.efficiency
        );
    }
    let mut group = c.benchmark_group("ablation_granularity");
    group.sample_size(10);
    group.bench_function("sparsemv_task_sweep_small", |b| {
        b.iter(|| ablations::granularity(ExperimentScale::Small, &[2, 8, 32]))
    });
    group.finish();
}

criterion_group!(benches, bench_granularity);
criterion_main!(benches);
