//! Wall-clock microbenchmarks of the simmpi message fabric.
//!
//! Everything else in this crate measures *virtual* time — the simulated
//! cluster's clock, which is what the paper's figures are made of.  This
//! module measures the opposite: how fast the simulator host itself moves
//! messages.  Campaign sweeps run thousands of virtual-time simulations, so
//! host-side fabric overhead (mailbox matching, payload copies, wakeup
//! latency) directly bounds how many scenarios a sweep can cover.
//!
//! Each benchmark runs a small cluster with [`simmpi::run_cluster`] on the
//! *ideal* (zero-cost) machine model so that the measured wall-clock time is
//! dominated by the host fabric, not by the virtual-time bookkeeping, and
//! reports messages per wall-clock second plus the number of payload bytes
//! the datatype layer really copied ([`simmpi::copied_bytes`]).
//!
//! The `bench-json` binary (campaign crate) runs these benchmarks together
//! with a wall-clock-timed smoke campaign and emits the schema'd
//! `BENCH.json` described in the repository README, which is how the
//! repository tracks its host-performance trajectory across PRs.

use replication::ReplicatedComm;
use simmpi::{run_cluster, ClusterConfig, Tag};
use std::time::Instant;

/// Result of one fabric microbenchmark.
#[derive(Debug, Clone)]
pub struct FabricBench {
    /// Benchmark name (stable identifier used in `BENCH.json`).
    pub name: String,
    /// Logical messages moved end-to-end (sender-side count).
    pub messages: u64,
    /// Logical payload bytes moved end-to-end (`messages * payload_size`).
    pub payload_bytes: u64,
    /// Wall-clock duration of the measured region, in seconds.
    pub wall_s: f64,
    /// `messages / wall_s`.
    pub msgs_per_sec: f64,
    /// Replication degree of the benchmark (1 for plain point-to-point).
    /// A degree-`r` fan-out moves `r²` physical copies per logical message,
    /// so logical throughput is expected to fall with the degree — but only
    /// linearly if the fabric amortizes per-send fixed costs across the
    /// fan-out.
    pub degree: usize,
    /// `msgs_per_sec / degree`: the degree-normalized efficiency.  A fabric
    /// whose fan-out path is O(degree) per logical send keeps this roughly
    /// flat from x2 to x4; a cliff here is the tracked anomaly.
    pub msgs_per_sec_per_degree: f64,
    /// Host bytes materialized by the datatype layer during the benchmark
    /// (serialization + deserialization copies; see
    /// [`simmpi::copied_bytes`]).
    pub bytes_copied: u64,
    /// True if the benchmark's steady state is expected to copy *no*
    /// payload bytes per message (persistent-payload send path): its copy
    /// budget is then independent of the message count.
    pub zero_copy: bool,
}

/// Runs `bench` `reps` times and keeps the fastest repetition.  The CI hosts
/// this runs on are small (often a single shared core), so individual
/// repetitions see large scheduler noise; the minimum wall time is the
/// standard robust estimator for microbenchmarks.
pub fn best_of<F: Fn() -> FabricBench>(reps: usize, bench: F) -> FabricBench {
    let mut best = bench();
    for _ in 1..reps.max(1) {
        let b = bench();
        if b.wall_s < best.wall_s {
            best = b;
        }
    }
    best
}

fn finish(
    name: String,
    messages: u64,
    payload_bytes: u64,
    degree: usize,
    zero_copy: bool,
    t0: Instant,
) -> FabricBench {
    let wall_s = t0.elapsed().as_secs_f64().max(1e-9);
    let msgs_per_sec = messages as f64 / wall_s;
    FabricBench {
        name,
        messages,
        payload_bytes,
        wall_s,
        msgs_per_sec,
        degree,
        msgs_per_sec_per_degree: msgs_per_sec / degree.max(1) as f64,
        bytes_copied: simmpi::copied_bytes(),
        zero_copy,
    }
}

/// Point-to-point streaming throughput: rank 0 pushes `messages` payloads of
/// `payload` bytes to rank 1 on a single `(source, tag)` channel, rank 1
/// drains them in order.  The friendliest case for any mailbox design (the
/// match is always at the front); measures per-message fixed overhead.
pub fn p2p_throughput(messages: usize, payload: usize) -> FabricBench {
    let config = ClusterConfig::ideal(2);
    let data = vec![1u8; payload];
    simmpi::reset_copied_bytes();
    let t0 = Instant::now();
    let report = run_cluster(&config, move |proc| {
        let world = proc.world();
        if world.rank() == 0 {
            for _ in 0..messages {
                world.send(&data, 1, 7).unwrap();
            }
        } else {
            for _ in 0..messages {
                let v: Vec<u8> = world.recv(0, 7).unwrap();
                assert_eq!(v.len(), payload);
            }
        }
    });
    assert!(!report.any_panicked());
    finish(
        "p2p_throughput".to_string(),
        messages as u64,
        (messages * payload) as u64,
        1,
        false,
        t0,
    )
}

/// Mailbox depth scaling: rank 0 delivers `tags` messages with distinct tags,
/// rank 1 receives them in *reverse* tag order, `rounds` times.  Every
/// receive therefore matches near the back of the queue — the adversarial
/// case for a flat mailbox scan (O(depth) per receive, O(depth²) per round)
/// and the bread-and-butter case for indexed per-`(comm, src, tag)` lanes
/// (O(1) per receive).
pub fn mailbox_depth(tags: usize, rounds: usize, payload: usize) -> FabricBench {
    let config = ClusterConfig::ideal(2);
    let data = vec![2u8; payload];
    let ack_tag = tags as Tag;
    simmpi::reset_copied_bytes();
    let t0 = Instant::now();
    let report = run_cluster(&config, move |proc| {
        let world = proc.world();
        if world.rank() == 0 {
            for _ in 0..rounds {
                for t in 0..tags {
                    world.send(&data, 1, t as Tag).unwrap();
                }
                // Wait for the drain ack so rounds never overlap in the
                // mailbox (keeps the depth exactly `tags`).
                let _: Vec<u8> = world.recv(1, ack_tag).unwrap();
            }
        } else {
            for _ in 0..rounds {
                for t in (0..tags).rev() {
                    let v: Vec<u8> = world.recv(0, t as Tag).unwrap();
                    assert_eq!(v.len(), payload);
                }
                world.send(&[1u8], 0, ack_tag).unwrap();
            }
        }
    });
    assert!(!report.any_panicked());
    let messages = (tags * rounds) as u64;
    finish(
        "mailbox_depth".to_string(),
        messages,
        messages * payload as u64,
        1,
        false,
        t0,
    )
}

/// Replica fan-out: a replicated cluster of `2 * degree` physical processes
/// (2 logical ranks), where logical rank 0 streams `messages` payloads to
/// logical rank 1 over the replicated channel.  Every replica of the sender
/// emits the full stream to every replica of the destination (the rMPI-style
/// discipline), so the fabric carries `degree²` copies per logical message
/// while each receiver consumes exactly one stream — the duplicates sit in
/// the mailbox, which punishes O(depth) matching, and the reference-counted
/// fan-out punishes any copy-per-destination payload path.  The sender uses
/// the persistent-payload send, so the steady state is fully zero-copy: the
/// measured rate is pure protocol + fabric overhead.
pub fn replica_fanout(degree: usize, messages: usize, payload_elems: usize) -> FabricBench {
    assert!(degree >= 1);
    let config = ClusterConfig::ideal(2 * degree);
    let data: Vec<f64> = (0..payload_elems).map(|i| i as f64).collect();
    simmpi::reset_copied_bytes();
    let t0 = Instant::now();
    let report = run_cluster(&config, move |proc| {
        let world = proc.world();
        let rcomm = ReplicatedComm::new(world, degree).unwrap();
        if rcomm.logical_rank() == 0 {
            // Persistent-payload pattern (the replicated analogue of MPI
            // persistent requests): the body is serialized once, every send
            // shares it by reference count, and the per-message sequence
            // number travels out-of-band in the frame head — the steady
            // state copies nothing.
            let body = simmpi::to_payload(&data);
            for _ in 0..messages {
                rcomm.send_logical_payload(&body, 1, 3, body.len()).unwrap();
            }
        } else {
            for _ in 0..messages {
                // Zero-copy receive: borrow the sender's serialized buffer
                // instead of materializing a vector per copy.
                let body = rcomm.recv_logical_payload(0, 3).unwrap();
                let view = simmpi::typed_view::<f64>(&body).unwrap();
                assert_eq!(view.len(), payload_elems);
            }
        }
    });
    assert!(!report.any_panicked());
    finish(
        format!("replica_fanout_x{degree}"),
        messages as u64,
        (messages * payload_elems * std::mem::size_of::<f64>()) as u64,
        degree,
        true,
        t0,
    )
}

/// The default fabric suite at full (BENCH.json) scale.  Each benchmark is
/// the best of three repetitions (see [`best_of`]).
pub fn default_suite() -> Vec<FabricBench> {
    vec![
        best_of(3, || p2p_throughput(100_000, 256)),
        best_of(3, || mailbox_depth(4096, 8, 32)),
        best_of(3, || replica_fanout(2, 6_000, 256)),
        best_of(3, || replica_fanout(4, 2_000, 256)),
    ]
}

/// A reduced suite for quick regression runs (Criterion bench + tests).
pub fn smoke_suite() -> Vec<FabricBench> {
    vec![
        p2p_throughput(2_000, 64),
        mailbox_depth(256, 2, 16),
        replica_fanout(2, 200, 64),
        replica_fanout(4, 100, 64),
    ]
}

/// Structural invariant on a finished benchmark.  Wall-clock numbers are
/// never asserted; this is the check `make bench-smoke` gates CI on.
///
/// Copying benchmarks (plain send path) must have copied each logical
/// payload at least once (serialization is real) but no more than O(degree)
/// times — a copy-per-destination fan-out would show up as O(degree²)
/// copied bytes.  Zero-copy benchmarks (persistent-payload path) must show
/// copied bytes *independent of the message count*: one serialization per
/// sender replica for the whole run, nothing per message.
pub fn check_copy_budget(b: &FabricBench) -> Result<(), String> {
    if b.messages == 0 || b.wall_s <= 0.0 || !b.msgs_per_sec.is_finite() {
        return Err(format!("{}: degenerate measurement", b.name));
    }
    let per_msg = b.payload_bytes / b.messages.max(1);
    if b.zero_copy {
        if b.bytes_copied < per_msg {
            return Err(format!(
                "{}: copied {} < one payload {} — the body was never \
                 serialized at all",
                b.name, b.bytes_copied, per_msg
            ));
        }
        // One body serialization per sender replica, plus fixed slack for
        // control traffic; crucially this does NOT scale with `messages` —
        // any per-message copy creeping back into the persistent-payload
        // path trips this bound at bench scale.
        let budget = b.degree as u64 * per_msg + (1 << 20);
        if b.bytes_copied > budget {
            return Err(format!(
                "{}: copied {} bytes > zero-copy budget {} — the \
                 persistent-payload path is copying per message again",
                b.name, b.bytes_copied, budget
            ));
        }
        return Ok(());
    }
    if b.bytes_copied < b.payload_bytes {
        return Err(format!(
            "{}: copied {} < moved {} — payloads are not being serialized",
            b.name, b.bytes_copied, b.payload_bytes
        ));
    }
    // One serialization per sender replica plus one deserialization per
    // consuming receiver replica is 2·degree payload-sized copies; the +1
    // and the fixed slack absorb framing and control traffic.
    let budget = (2 * b.degree as u64 + 1) * b.payload_bytes + (1 << 20);
    if b.bytes_copied > budget {
        return Err(format!(
            "{}: copied {} bytes > O(degree) budget {} — the fan-out is \
             copying per destination again",
            b.name, b.bytes_copied, budget
        ));
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn microbenchmarks_move_the_advertised_messages() {
        for b in smoke_suite() {
            assert!(b.messages > 0, "{}", b.name);
            assert!(b.wall_s > 0.0, "{}", b.name);
            assert!(b.msgs_per_sec > 0.0, "{}", b.name);
            let copy_floor = if b.zero_copy {
                b.payload_bytes / b.messages
            } else {
                b.payload_bytes
            };
            assert!(
                b.bytes_copied >= copy_floor,
                "{}: the fabric must serialize the payload at least once \
                 (copied {} < {})",
                b.name,
                b.bytes_copied,
                copy_floor
            );
            assert!(b.degree >= 1, "{}", b.name);
            let expected = b.msgs_per_sec / b.degree as f64;
            assert!(
                (b.msgs_per_sec_per_degree - expected).abs() < 1e-9 * expected.abs().max(1.0),
                "{}: efficiency field out of sync with msgs_per_sec",
                b.name
            );
            check_copy_budget(&b).unwrap();
        }
    }
}
