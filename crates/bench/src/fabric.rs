//! Wall-clock microbenchmarks of the simmpi message fabric.
//!
//! Everything else in this crate measures *virtual* time — the simulated
//! cluster's clock, which is what the paper's figures are made of.  This
//! module measures the opposite: how fast the simulator host itself moves
//! messages.  Campaign sweeps run thousands of virtual-time simulations, so
//! host-side fabric overhead (mailbox matching, payload copies, wakeup
//! latency) directly bounds how many scenarios a sweep can cover.
//!
//! Each benchmark runs a small cluster with [`simmpi::run_cluster`] on the
//! *ideal* (zero-cost) machine model so that the measured wall-clock time is
//! dominated by the host fabric, not by the virtual-time bookkeeping, and
//! reports messages per wall-clock second plus the number of payload bytes
//! the datatype layer really copied ([`simmpi::copied_bytes`]).
//!
//! The `bench-json` binary (campaign crate) runs these benchmarks together
//! with a wall-clock-timed smoke campaign and emits the schema'd
//! `BENCH.json` described in the repository README, which is how the
//! repository tracks its host-performance trajectory across PRs.

use replication::ReplicatedComm;
use simmpi::{run_cluster, ClusterConfig, Tag};
use std::time::Instant;

/// Result of one fabric microbenchmark.
#[derive(Debug, Clone)]
pub struct FabricBench {
    /// Benchmark name (stable identifier used in `BENCH.json`).
    pub name: String,
    /// Logical messages moved end-to-end (sender-side count).
    pub messages: u64,
    /// Logical payload bytes moved end-to-end (`messages * payload_size`).
    pub payload_bytes: u64,
    /// Wall-clock duration of the measured region, in seconds.
    pub wall_s: f64,
    /// `messages / wall_s`.
    pub msgs_per_sec: f64,
    /// Host bytes materialized by the datatype layer during the benchmark
    /// (serialization + deserialization copies; see
    /// [`simmpi::copied_bytes`]).
    pub bytes_copied: u64,
}

/// Runs `bench` `reps` times and keeps the fastest repetition.  The CI hosts
/// this runs on are small (often a single shared core), so individual
/// repetitions see large scheduler noise; the minimum wall time is the
/// standard robust estimator for microbenchmarks.
pub fn best_of<F: Fn() -> FabricBench>(reps: usize, bench: F) -> FabricBench {
    let mut best = bench();
    for _ in 1..reps.max(1) {
        let b = bench();
        if b.wall_s < best.wall_s {
            best = b;
        }
    }
    best
}

fn finish(name: String, messages: u64, payload_bytes: u64, t0: Instant) -> FabricBench {
    let wall_s = t0.elapsed().as_secs_f64().max(1e-9);
    FabricBench {
        name,
        messages,
        payload_bytes,
        wall_s,
        msgs_per_sec: messages as f64 / wall_s,
        bytes_copied: simmpi::copied_bytes(),
    }
}

/// Point-to-point streaming throughput: rank 0 pushes `messages` payloads of
/// `payload` bytes to rank 1 on a single `(source, tag)` channel, rank 1
/// drains them in order.  The friendliest case for any mailbox design (the
/// match is always at the front); measures per-message fixed overhead.
pub fn p2p_throughput(messages: usize, payload: usize) -> FabricBench {
    let config = ClusterConfig::ideal(2);
    let data = vec![1u8; payload];
    simmpi::reset_copied_bytes();
    let t0 = Instant::now();
    let report = run_cluster(&config, move |proc| {
        let world = proc.world();
        if world.rank() == 0 {
            for _ in 0..messages {
                world.send(&data, 1, 7).unwrap();
            }
        } else {
            for _ in 0..messages {
                let v: Vec<u8> = world.recv(0, 7).unwrap();
                assert_eq!(v.len(), payload);
            }
        }
    });
    assert!(!report.any_panicked());
    finish(
        "p2p_throughput".to_string(),
        messages as u64,
        (messages * payload) as u64,
        t0,
    )
}

/// Mailbox depth scaling: rank 0 delivers `tags` messages with distinct tags,
/// rank 1 receives them in *reverse* tag order, `rounds` times.  Every
/// receive therefore matches near the back of the queue — the adversarial
/// case for a flat mailbox scan (O(depth) per receive, O(depth²) per round)
/// and the bread-and-butter case for indexed per-`(comm, src, tag)` lanes
/// (O(1) per receive).
pub fn mailbox_depth(tags: usize, rounds: usize, payload: usize) -> FabricBench {
    let config = ClusterConfig::ideal(2);
    let data = vec![2u8; payload];
    let ack_tag = tags as Tag;
    simmpi::reset_copied_bytes();
    let t0 = Instant::now();
    let report = run_cluster(&config, move |proc| {
        let world = proc.world();
        if world.rank() == 0 {
            for _ in 0..rounds {
                for t in 0..tags {
                    world.send(&data, 1, t as Tag).unwrap();
                }
                // Wait for the drain ack so rounds never overlap in the
                // mailbox (keeps the depth exactly `tags`).
                let _: Vec<u8> = world.recv(1, ack_tag).unwrap();
            }
        } else {
            for _ in 0..rounds {
                for t in (0..tags).rev() {
                    let v: Vec<u8> = world.recv(0, t as Tag).unwrap();
                    assert_eq!(v.len(), payload);
                }
                world.send(&[1u8], 0, ack_tag).unwrap();
            }
        }
    });
    assert!(!report.any_panicked());
    let messages = (tags * rounds) as u64;
    finish(
        "mailbox_depth".to_string(),
        messages,
        messages * payload as u64,
        t0,
    )
}

/// Replica fan-out: a replicated cluster of `2 * degree` physical processes
/// (2 logical ranks), where logical rank 0 streams `messages` payloads to
/// logical rank 1 over the replicated channel.  Every replica of the sender
/// emits the full stream to every replica of the destination (the rMPI-style
/// discipline), so the fabric carries `degree²` copies per logical message
/// while each receiver consumes exactly one stream — the duplicates sit in
/// the mailbox, which punishes O(depth) matching, and the per-copy
/// serialization punishes a copy-per-destination payload path.
pub fn replica_fanout(degree: usize, messages: usize, payload_elems: usize) -> FabricBench {
    assert!(degree >= 1);
    let config = ClusterConfig::ideal(2 * degree);
    let data: Vec<f64> = (0..payload_elems).map(|i| i as f64).collect();
    simmpi::reset_copied_bytes();
    let t0 = Instant::now();
    let report = run_cluster(&config, move |proc| {
        let world = proc.world();
        let rcomm = ReplicatedComm::new(world, degree).unwrap();
        if rcomm.logical_rank() == 0 {
            for _ in 0..messages {
                rcomm.send_logical(&data, 1, 3).unwrap();
            }
        } else {
            for _ in 0..messages {
                let v: Vec<f64> = rcomm.recv_logical(0, 3).unwrap();
                assert_eq!(v.len(), payload_elems);
            }
        }
    });
    assert!(!report.any_panicked());
    finish(
        format!("replica_fanout_x{degree}"),
        messages as u64,
        (messages * payload_elems * std::mem::size_of::<f64>()) as u64,
        t0,
    )
}

/// The default fabric suite at full (BENCH.json) scale.  Each benchmark is
/// the best of three repetitions (see [`best_of`]).
pub fn default_suite() -> Vec<FabricBench> {
    vec![
        best_of(3, || p2p_throughput(100_000, 256)),
        best_of(3, || mailbox_depth(4096, 8, 32)),
        best_of(3, || replica_fanout(2, 6_000, 256)),
        best_of(3, || replica_fanout(4, 2_000, 256)),
    ]
}

/// A reduced suite for quick regression runs (Criterion bench + tests).
pub fn smoke_suite() -> Vec<FabricBench> {
    vec![
        p2p_throughput(2_000, 64),
        mailbox_depth(256, 2, 16),
        replica_fanout(2, 200, 64),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn microbenchmarks_move_the_advertised_messages() {
        for b in smoke_suite() {
            assert!(b.messages > 0, "{}", b.name);
            assert!(b.wall_s > 0.0, "{}", b.name);
            assert!(b.msgs_per_sec > 0.0, "{}", b.name);
            assert!(
                b.bytes_copied >= b.payload_bytes,
                "{}: the fabric must at least serialize each logical payload \
                 once (copied {} < moved {})",
                b.name,
                b.bytes_copied,
                b.payload_bytes
            );
        }
    }
}
