//! Figure 6: full-application performance (AMG2013, GTC, MiniGhost).
//!
//! Methodology of the paper's Section V-D: the problem size is fixed and the
//! replicated configurations use twice as many physical processes as the
//! native run, so equal execution time means 50 % efficiency.  Each bar is
//! split into the time spent in intra-parallelized sections and the rest
//! ("others"); the efficiency is printed above the bar.
//!
//! Published outcomes: AMG2013/PCG-27pt ≈ 0.61, AMG2013/GMRES-7pt ≈ 0.59,
//! GTC ≈ 0.71, MiniGhost ≈ 0.51 (plain replication ≈ 0.48–0.49 everywhere).

use crate::scale::ExperimentScale;
use apps::{
    run_amg, run_gtc, run_minighost, AmgParams, AmgSolver, AppContext, AppRunReport, GtcParams,
    MiniGhostParams,
};
use ipr_core::{IntraConfig, TaskCost};
use kernels::KernelCost;
use replication::ExecutionMode;
use simcluster::{MachineModel, Topology};
use simmpi::{run_cluster, ClusterConfig};

/// Converts a kernel cost into a task cost (re-exported for the kernel-level
/// figure module).
pub fn to_task_cost(cost: KernelCost) -> TaskCost {
    TaskCost::new(cost.flops, cost.mem_bytes())
}

/// The application of one Figure 6 sub-plot.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Fig6App {
    /// Figure 6a: AMG2013, 27-point stencil, PCG solver.
    AmgPcg27,
    /// Figure 6b: AMG2013, 7-point stencil, GMRES solver.
    AmgGmres7,
    /// Figure 6c: GTC.
    Gtc,
    /// Figure 6d: MiniGhost.
    MiniGhost,
}

impl Fig6App {
    /// All four applications in figure order.
    pub const ALL: [Fig6App; 4] = [
        Fig6App::AmgPcg27,
        Fig6App::AmgGmres7,
        Fig6App::Gtc,
        Fig6App::MiniGhost,
    ];

    /// Display name.
    pub fn name(&self) -> &'static str {
        match self {
            Fig6App::AmgPcg27 => "AMG2013 (27-pt PCG)",
            Fig6App::AmgGmres7 => "AMG2013 (7-pt GMRES)",
            Fig6App::Gtc => "GTC",
            Fig6App::MiniGhost => "MiniGhost",
        }
    }

    /// Figure label in the paper.
    pub fn figure(&self) -> &'static str {
        match self {
            Fig6App::AmgPcg27 => "6a",
            Fig6App::AmgGmres7 => "6b",
            Fig6App::Gtc => "6c",
            Fig6App::MiniGhost => "6d",
        }
    }
}

/// One bar of a Figure 6 sub-plot.
#[derive(Debug, Clone)]
pub struct AppRow {
    /// Application name.
    pub app: &'static str,
    /// Configuration label.
    pub mode: &'static str,
    /// Number of physical processes used.
    pub procs: usize,
    /// Total execution time (virtual seconds, makespan).
    pub time_s: f64,
    /// Time spent in intra-parallel(izable) sections (average per process).
    pub sections_s: f64,
    /// Remaining time.
    pub others_s: f64,
    /// Efficiency (1.0 for native; 0.5 * T_native / T for the replicated
    /// configurations, which use twice the resources).
    pub efficiency: f64,
}

fn run_app(
    app: Fig6App,
    mode: ExecutionMode,
    scale: ExperimentScale,
    scheduler: Option<&'static str>,
) -> (f64, f64, usize) {
    let degree = mode.degree();
    let num_logical = scale.fig6_logical_procs();
    let procs = num_logical * degree;
    let machine = MachineModel::grid5000_ib20g();
    let topology = if degree > 1 {
        Topology::replica_disjoint(num_logical, degree, machine.cores_per_node)
    } else {
        Topology::block(procs, machine.cores_per_node)
    };
    let config = ClusterConfig::new(procs)
        .with_machine(machine)
        .with_topology(topology);

    let actual_edge = scale.actual_grid_edge();
    let particles = scale.actual_particles();
    let iters = scale.app_iterations();

    let report = run_cluster(&config, move |proc| {
        let intra = apps::driver::with_scheduler(IntraConfig::paper(), scheduler).unwrap();
        let mut ctx = AppContext::without_failures(proc, mode, intra).unwrap();
        let r: AppRunReport = match app {
            Fig6App::AmgPcg27 => {
                let params = AmgParams::paper_scale(AmgSolver::Pcg27, actual_edge, iters);
                run_amg(&mut ctx, &params).unwrap().report
            }
            Fig6App::AmgGmres7 => {
                let mut params =
                    AmgParams::paper_scale(AmgSolver::Gmres7, actual_edge, iters.div_ceil(8));
                params.restart = 10;
                run_amg(&mut ctx, &params).unwrap().report
            }
            Fig6App::Gtc => {
                let params = GtcParams::paper_scale(particles, iters);
                run_gtc(&mut ctx, &params).unwrap().report
            }
            Fig6App::MiniGhost => {
                let params = MiniGhostParams::paper_scale(actual_edge, iters);
                run_minighost(&mut ctx, &params).unwrap().report
            }
        };
        (r.total_time.as_secs(), r.section_time.as_secs())
    });
    let results = report.unwrap_results();
    let makespan = results.iter().map(|(t, _)| *t).fold(0.0f64, f64::max);
    let avg_sections = results.iter().map(|(_, s)| *s).sum::<f64>() / results.len() as f64;
    (makespan, avg_sections, procs)
}

/// Runs one Figure 6 sub-plot: native, replicated and intra bars.
pub fn run(app: Fig6App, scale: ExperimentScale) -> Vec<AppRow> {
    run_with_scheduler(app, scale, None)
}

/// [`run`] with an explicit scheduler from the ipr-core registry (`None`
/// keeps the paper's static block scheduler).  The `figures` CLI threads
/// its `[scheduler]` argument through here: `figures fig6c small locality`.
pub fn run_with_scheduler(
    app: Fig6App,
    scale: ExperimentScale,
    scheduler: Option<&'static str>,
) -> Vec<AppRow> {
    let (t_native, sec_native, procs_native) =
        run_app(app, ExecutionMode::Native, scale, scheduler);
    let (t_sdr, sec_sdr, procs_sdr) = run_app(
        app,
        ExecutionMode::Replicated { degree: 2 },
        scale,
        scheduler,
    );
    let (t_intra, sec_intra, procs_intra) = run_app(
        app,
        ExecutionMode::IntraParallel { degree: 2 },
        scale,
        scheduler,
    );
    vec![
        AppRow {
            app: app.name(),
            mode: "Open MPI",
            procs: procs_native,
            time_s: t_native,
            sections_s: sec_native,
            others_s: (t_native - sec_native).max(0.0),
            efficiency: 1.0,
        },
        AppRow {
            app: app.name(),
            mode: "SDR-MPI",
            procs: procs_sdr,
            time_s: t_sdr,
            sections_s: sec_sdr,
            others_s: (t_sdr - sec_sdr).max(0.0),
            efficiency: 0.5 * t_native / t_sdr,
        },
        AppRow {
            app: app.name(),
            mode: "intra",
            procs: procs_intra,
            time_s: t_intra,
            sections_s: sec_intra,
            others_s: (t_intra - sec_intra).max(0.0),
            efficiency: 0.5 * t_native / t_intra,
        },
    ]
}

/// Runs all four Figure 6 sub-plots.
pub fn run_all(scale: ExperimentScale) -> Vec<AppRow> {
    Fig6App::ALL
        .into_iter()
        .flat_map(|app| run(app, scale))
        .collect()
}
