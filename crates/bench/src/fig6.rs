//! Figure 6: full-application performance (AMG2013, GTC, MiniGhost).
//!
//! Methodology of the paper's Section V-D: the problem size is fixed and the
//! replicated configurations use twice as many physical processes as the
//! native run, so equal execution time means 50 % efficiency.  Each bar is
//! split into the time spent in intra-parallelized sections and the rest
//! ("others"); the efficiency is printed above the bar.
//!
//! Every bar is one run of the facade's typed [`Experiment`] builder — this
//! module only maps sub-plots to catalog [`AppId`]s and folds the
//! [`intra_replication::RunReport`] aggregates into figure rows.
//!
//! Published outcomes: AMG2013/PCG-27pt ≈ 0.61, AMG2013/GMRES-7pt ≈ 0.59,
//! GTC ≈ 0.71, MiniGhost ≈ 0.51 (plain replication ≈ 0.48–0.49 everywhere).

use crate::scale::ExperimentScale;
use apps::AppId;
use intra_replication::Experiment;
use ipr_core::{SchedulerKind, TaskCost};
use kernels::KernelCost;
use replication::ExecutionMode;

/// Converts a kernel cost into a task cost (re-exported for the kernel-level
/// figure module).
pub fn to_task_cost(cost: KernelCost) -> TaskCost {
    TaskCost::new(cost.flops, cost.mem_bytes())
}

/// The application of one Figure 6 sub-plot.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Fig6App {
    /// Figure 6a: AMG2013, 27-point stencil, PCG solver.
    AmgPcg27,
    /// Figure 6b: AMG2013, 7-point stencil, GMRES solver.
    AmgGmres7,
    /// Figure 6c: GTC.
    Gtc,
    /// Figure 6d: MiniGhost.
    MiniGhost,
}

impl Fig6App {
    /// All four applications in figure order.
    pub const ALL: [Fig6App; 4] = [
        Fig6App::AmgPcg27,
        Fig6App::AmgGmres7,
        Fig6App::Gtc,
        Fig6App::MiniGhost,
    ];

    /// Display name.
    pub fn name(&self) -> &'static str {
        match self {
            Fig6App::AmgPcg27 => "AMG2013 (27-pt PCG)",
            Fig6App::AmgGmres7 => "AMG2013 (7-pt GMRES)",
            Fig6App::Gtc => "GTC",
            Fig6App::MiniGhost => "MiniGhost",
        }
    }

    /// Figure label in the paper.
    pub fn figure(&self) -> &'static str {
        match self {
            Fig6App::AmgPcg27 => "6a",
            Fig6App::AmgGmres7 => "6b",
            Fig6App::Gtc => "6c",
            Fig6App::MiniGhost => "6d",
        }
    }

    /// The catalog application this sub-plot runs.
    pub fn app_id(&self) -> AppId {
        match self {
            Fig6App::AmgPcg27 => AppId::AmgPcg27,
            Fig6App::AmgGmres7 => AppId::AmgGmres7,
            Fig6App::Gtc => AppId::Gtc,
            Fig6App::MiniGhost => AppId::MiniGhost,
        }
    }
}

/// One bar of a Figure 6 sub-plot.
#[derive(Debug, Clone)]
pub struct AppRow {
    /// Application name.
    pub app: &'static str,
    /// Configuration label.
    pub mode: &'static str,
    /// Number of physical processes used.
    pub procs: usize,
    /// Total execution time (virtual seconds, makespan).
    pub time_s: f64,
    /// Time spent in intra-parallel(izable) sections (average per process).
    pub sections_s: f64,
    /// Remaining time.
    pub others_s: f64,
    /// Efficiency (1.0 for native; 0.5 * T_native / T for the replicated
    /// configurations, which use twice the resources).
    pub efficiency: f64,
}

fn run_app(
    app: Fig6App,
    mode: ExecutionMode,
    scale: ExperimentScale,
    scheduler: Option<SchedulerKind>,
) -> (f64, f64, usize) {
    let report = Experiment::builder()
        .app(app.app_id())
        .scale(scale)
        .execution_mode(mode)
        .scheduler(scheduler.unwrap_or(SchedulerKind::StaticBlock))
        .build()
        .expect("figure experiments are valid")
        .run()
        .expect("figure experiments execute");
    assert_eq!(
        report.completed(),
        report.procs,
        "failure-free figure runs complete on every rank"
    );
    (report.app_time_s(), report.mean_section_s(), report.procs)
}

/// Runs one Figure 6 sub-plot: native, replicated and intra bars.
pub fn run(app: Fig6App, scale: ExperimentScale) -> Vec<AppRow> {
    run_with_scheduler(app, scale, None)
}

/// [`run`] with an explicit scheduler (`None` keeps the paper's static block
/// scheduler).  The `figures` CLI parses its `[scheduler]` argument into a
/// [`SchedulerKind`] at the edge and threads it through here:
/// `figures fig6c small locality`.
pub fn run_with_scheduler(
    app: Fig6App,
    scale: ExperimentScale,
    scheduler: Option<SchedulerKind>,
) -> Vec<AppRow> {
    let (t_native, sec_native, procs_native) =
        run_app(app, ExecutionMode::Native, scale, scheduler);
    let (t_sdr, sec_sdr, procs_sdr) = run_app(
        app,
        ExecutionMode::Replicated { degree: 2 },
        scale,
        scheduler,
    );
    let (t_intra, sec_intra, procs_intra) = run_app(
        app,
        ExecutionMode::IntraParallel { degree: 2 },
        scale,
        scheduler,
    );
    vec![
        AppRow {
            app: app.name(),
            mode: "Open MPI",
            procs: procs_native,
            time_s: t_native,
            sections_s: sec_native,
            others_s: (t_native - sec_native).max(0.0),
            efficiency: 1.0,
        },
        AppRow {
            app: app.name(),
            mode: "SDR-MPI",
            procs: procs_sdr,
            time_s: t_sdr,
            sections_s: sec_sdr,
            others_s: (t_sdr - sec_sdr).max(0.0),
            efficiency: 0.5 * t_native / t_sdr,
        },
        AppRow {
            app: app.name(),
            mode: "intra",
            procs: procs_intra,
            time_s: t_intra,
            sections_s: sec_intra,
            others_s: (t_intra - sec_intra).max(0.0),
            efficiency: 0.5 * t_native / t_intra,
        },
    ]
}

/// Runs all four Figure 6 sub-plots.
pub fn run_all(scale: ExperimentScale) -> Vec<AppRow> {
    Fig6App::ALL
        .into_iter()
        .flat_map(|app| run(app, scale))
        .collect()
}
