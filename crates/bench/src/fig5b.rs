//! Figure 5b: HPCCG application weak scaling.
//!
//! The paper fixes the number of physical processes (128, 256, 512), keeps
//! the per-logical-process problem size constant (128³ for the native runs,
//! doubled for the replicated configurations, which use half as many logical
//! processes) and reports the total execution time, with the efficiency
//! above each point.  Intra-parallelization is applied only to ddot and
//! sparsemv (waxpby performs poorly, see Figure 5a), yielding ≈ 0.8
//! efficiency against 0.5 for plain replication.
//!
//! The cluster setup (machine model, replica-disjoint topology, seed) comes
//! from the facade's [`Experiment`] builder; only the per-process body is
//! custom, because the weak-scaling study overrides the per-rank problem
//! size instead of using the catalog workload.

use crate::scale::ExperimentScale;
use apps::{run_hpccg, AppId, HpccgParams, KernelSelection};
use intra_replication::Experiment;
use ipr_core::SchedulerKind;
use replication::ExecutionMode;

/// One point of Figure 5b.
#[derive(Debug, Clone)]
pub struct ScalingRow {
    /// Number of physical processes.
    pub procs: usize,
    /// Configuration label.
    pub mode: &'static str,
    /// Application execution time (virtual seconds, makespan).
    pub time_s: f64,
    /// Efficiency relative to the native run on the same resources.
    pub efficiency: f64,
}

fn hpccg_time(
    mode: ExecutionMode,
    procs: usize,
    scale: ExperimentScale,
    scheduler: Option<SchedulerKind>,
) -> f64 {
    let degree = mode.degree();
    let num_logical = procs / degree;
    assert!(num_logical > 0);
    let actual_edge = scale.actual_grid_edge();
    let iters = scale.app_iterations();
    let run = Experiment::builder()
        .app(AppId::Hpccg)
        .scale(scale)
        .execution_mode(mode)
        .scheduler(scheduler.unwrap_or(SchedulerKind::StaticBlock))
        .logical_procs(num_logical)
        .build()
        .expect("figure experiments are valid")
        .run_with(move |ctx| {
            // Per-logical-process problem size: 128^3 for native, doubled
            // along z for the replicated configurations (half as many
            // logical processes on the same physical resources).
            let params = HpccgParams {
                nx: actual_edge,
                ny: actual_edge,
                nz: actual_edge * degree,
                modeled_nx: 128,
                modeled_ny: 128,
                modeled_nz: 128 * degree,
                max_iters: iters,
                kernels: KernelSelection::paper_application(),
            };
            let out = run_hpccg(ctx, &params)?;
            Ok(out.report.total_time.as_secs())
        })
        .expect("figure experiments execute");
    run.unwrap_results().into_iter().fold(0.0f64, f64::max)
}

/// Runs the Figure 5b study: one row per (process count, configuration).
pub fn run(scale: ExperimentScale) -> Vec<ScalingRow> {
    run_with_scheduler(scale, None)
}

/// [`run`] with an explicit scheduler (`None` keeps the paper's static
/// block scheduler).  This is the scheduler knob of the `figures` CLI:
/// `figures fig5b small adaptive`.
pub fn run_with_scheduler(
    scale: ExperimentScale,
    scheduler: Option<SchedulerKind>,
) -> Vec<ScalingRow> {
    let mut rows = Vec::new();
    for procs in scale.fig5b_procs() {
        let t_native = hpccg_time(ExecutionMode::Native, procs, scale, scheduler);
        let t_sdr = hpccg_time(
            ExecutionMode::Replicated { degree: 2 },
            procs,
            scale,
            scheduler,
        );
        let t_intra = hpccg_time(
            ExecutionMode::IntraParallel { degree: 2 },
            procs,
            scale,
            scheduler,
        );
        for (mode, time) in [
            ("Open MPI", t_native),
            ("SDR-MPI", t_sdr),
            ("intra", t_intra),
        ] {
            rows.push(ScalingRow {
                procs,
                mode,
                time_s: time,
                efficiency: t_native / time,
            });
        }
    }
    rows
}
