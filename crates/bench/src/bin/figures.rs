//! Regenerates the paper's evaluation figures as text tables.
//!
//! ```text
//! cargo run --release -p ipr-bench --bin figures -- all          # every figure, paper scale
//! cargo run --release -p ipr-bench --bin figures -- fig5a small  # one figure, reduced scale
//! cargo run --release -p ipr-bench --bin figures -- granularity
//! ```
//!
//! Available figure ids: `fig5a`, `fig5b`, `fig6a`, `fig6b`, `fig6c`,
//! `fig6d`, `granularity`, `bandwidth`, `scheduler`, `all`.

use ipr_bench::fig6::Fig6App;
use ipr_bench::table::{f2, f3, render};
use ipr_bench::{ablations, fig5a, fig5b, fig6, ExperimentScale};

fn print_fig5a(scale: ExperimentScale) {
    let rows = fig5a::run(scale);
    let table_rows: Vec<Vec<String>> = rows
        .iter()
        .map(|r| {
            vec![
                r.kernel.to_string(),
                r.mode.to_string(),
                format!("{:.4}", r.time_s),
                f2(r.normalized),
                f2(r.efficiency),
                format!("{:.0}%", r.update_fraction * 100.0),
            ]
        })
        .collect();
    println!(
        "{}",
        render(
            "Figure 5a — HPCCG kernels, normalized time & efficiency",
            &[
                "kernel",
                "config",
                "time [s]",
                "normalized",
                "efficiency",
                "update share"
            ],
            &table_rows,
        )
    );
    println!("Paper reference: waxpby 0.5/0.34, ddot 0.5/0.99, sparsemv 0.5/0.94 (SDR/intra efficiency)\n");
}

fn print_fig5b(scale: ExperimentScale) {
    let rows = fig5b::run(scale);
    let table_rows: Vec<Vec<String>> = rows
        .iter()
        .map(|r| {
            vec![
                r.procs.to_string(),
                r.mode.to_string(),
                f3(r.time_s),
                f2(r.efficiency),
            ]
        })
        .collect();
    println!(
        "{}",
        render(
            "Figure 5b — HPCCG weak scaling (execution time & efficiency)",
            &["procs", "config", "time [s]", "efficiency"],
            &table_rows,
        )
    );
    println!(
        "Paper reference: SDR-MPI 0.5; intra 0.80 / 0.79 / 0.82 at 128 / 256 / 512 processes\n"
    );
}

fn print_fig6(app: Fig6App, scale: ExperimentScale) {
    let rows = fig6::run(app, scale);
    let table_rows: Vec<Vec<String>> = rows
        .iter()
        .map(|r| {
            vec![
                r.mode.to_string(),
                format!("{} ps", r.procs),
                f3(r.time_s),
                f3(r.sections_s),
                f3(r.others_s),
                f2(r.efficiency),
            ]
        })
        .collect();
    println!(
        "{}",
        render(
            &format!("Figure {} — {}", app.figure(), app.name()),
            &[
                "config",
                "procs",
                "time [s]",
                "sections [s]",
                "others [s]",
                "efficiency"
            ],
            &table_rows,
        )
    );
    let reference = match app {
        Fig6App::AmgPcg27 => "paper: 0.48 / 0.61 (SDR / intra), sections ≈ 62% of native time",
        Fig6App::AmgGmres7 => "paper: 0.49 / 0.59 (SDR / intra), sections ≈ 42% of native time",
        Fig6App::Gtc => "paper: 0.49 / 0.71 (SDR / intra), sections ≈ 75% of native time",
        Fig6App::MiniGhost => "paper: 0.49 / 0.51 (SDR / intra), sections ≈ 10% of native time",
    };
    println!("Paper reference: {reference}\n");
}

fn print_granularity(scale: ExperimentScale) {
    let rows = ablations::granularity(scale, &ablations::default_task_counts());
    let table_rows: Vec<Vec<String>> = rows
        .iter()
        .map(|r| {
            vec![
                r.tasks_per_section.to_string(),
                format!("{:.4}", r.time_s),
                f2(r.efficiency),
            ]
        })
        .collect();
    println!(
        "{}",
        render(
            "Ablation — tasks per section (sparsemv, intra)",
            &["tasks/section", "time [s]", "efficiency"],
            &table_rows,
        )
    );
    println!("Paper choice: 8 tasks per section (4 per replica)\n");
}

fn print_bandwidth(scale: ExperimentScale) {
    let rows = ablations::bandwidth(scale, &ablations::default_bandwidths());
    let table_rows: Vec<Vec<String>> = rows
        .iter()
        .map(|r| {
            vec![
                format!("{:.2}", r.bandwidth_gbs),
                r.kernel.to_string(),
                f2(r.efficiency),
            ]
        })
        .collect();
    println!(
        "{}",
        render(
            "Ablation — inter-node bandwidth vs intra efficiency",
            &["bandwidth [GB/s]", "kernel", "efficiency"],
            &table_rows,
        )
    );
}

fn print_scheduler(scale: ExperimentScale) {
    let rows = ablations::scheduler(scale);
    let table_rows: Vec<Vec<String>> = rows
        .iter()
        .map(|r| vec![r.scheduler.to_string(), format!("{:.4}", r.time_s)])
        .collect();
    println!(
        "{}",
        render(
            "Ablation — scheduler comparison on heterogeneous tasks",
            &["scheduler", "section time [s]"],
            &table_rows,
        )
    );
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let what = args.first().map(String::as_str).unwrap_or("all");
    let scale = args
        .get(1)
        .and_then(|s| ExperimentScale::parse(s))
        .unwrap_or(ExperimentScale::Full);

    println!("intra-replication figure harness — target: {what}, scale: {scale:?}\n");
    match what {
        "fig5a" => print_fig5a(scale),
        "fig5b" => print_fig5b(scale),
        "fig6a" => print_fig6(Fig6App::AmgPcg27, scale),
        "fig6b" => print_fig6(Fig6App::AmgGmres7, scale),
        "fig6c" => print_fig6(Fig6App::Gtc, scale),
        "fig6d" => print_fig6(Fig6App::MiniGhost, scale),
        "fig6" => {
            for app in Fig6App::ALL {
                print_fig6(app, scale);
            }
        }
        "granularity" => print_granularity(scale),
        "bandwidth" => print_bandwidth(scale),
        "scheduler" => print_scheduler(scale),
        "all" => {
            print_fig5a(scale);
            print_fig5b(scale);
            for app in Fig6App::ALL {
                print_fig6(app, scale);
            }
            print_granularity(scale);
            print_bandwidth(scale);
            print_scheduler(scale);
        }
        other => {
            eprintln!("unknown figure id '{other}'");
            eprintln!("expected one of: fig5a fig5b fig6a fig6b fig6c fig6d fig6 granularity bandwidth scheduler all");
            std::process::exit(2);
        }
    }
}
