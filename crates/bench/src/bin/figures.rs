//! Regenerates the paper's evaluation figures as text tables.
//!
//! ```text
//! cargo run --release -p ipr-bench --bin figures -- all            # every figure, paper scale
//! cargo run --release -p ipr-bench --bin figures -- fig5a small    # one figure, reduced scale
//! cargo run --release -p ipr-bench --bin figures -- granularity
//! cargo run --release -p ipr-bench --bin figures -- adaptive       # ABL-ADAPT scheduler study
//! cargo run --release -p ipr-bench --bin figures -- fig5b small adaptive   # scheduler knob
//! ```
//!
//! Available figure ids: `fig5` (the replication-vs-C/R efficiency
//! crossover), `fig5a`, `fig5b`, `fig6a`, `fig6b`, `fig6c`, `fig6d`,
//! `granularity`, `bandwidth`, `scheduler`, `adaptive`, `all`.
//! After the figure id, an optional scale (`full` / `small`, default
//! `full`) and an optional scheduler name can be given in any order; the
//! scheduler selects who runs the tasks inside intra-parallel sections for
//! the application figures (fig5b / fig6): `static-block` (paper default),
//! `round-robin`, `cost-aware`, `adaptive` or `locality`.

use ipr_bench::fig6::Fig6App;
use ipr_bench::table::{f2, f3, render};
use ipr_bench::{ablations, fig5, fig5a, fig5b, fig6, ExperimentScale};
use ipr_core::SchedulerKind;

fn print_fig5(scale: ExperimentScale) {
    let study = fig5::run(scale);
    let table_rows: Vec<Vec<String>> = study
        .rows
        .iter()
        .map(|r| {
            vec![
                format!("{:.4}", r.mtbf_s),
                format!("{:.2}x", r.mtbf_over_t0),
                f2(r.native_eff),
                r.native_recoveries.to_string(),
                f2(r.replicated_eff),
                r.replicated_recoveries.to_string(),
            ]
        })
        .collect();
    println!(
        "{}",
        render(
            "Figure 5 — replication vs checkpoint/restart efficiency crossover",
            &[
                "MTBF [s]",
                "MTBF/T0",
                "native+C/R eff",
                "rollbacks",
                "replicated2+C/R eff",
                "defeats"
            ],
            &table_rows,
        )
    );
    println!(
        "Daly-interval C/R, checkpoint cost {:.4}s, restart cost {:.4}s, failure-free native T0 = {:.4}s",
        study.ckpt_cost_s, study.restart_cost_s, study.baseline_s
    );
    match study.crossover_mtbf_s {
        Some(m) => println!(
            "Crossover: replication wins below a per-process MTBF of {:.4}s ({:.2}x T0); \
             checkpoint/restart wins above it\n",
            m,
            m / study.baseline_s
        ),
        None => println!("No crossover inside the swept MTBF grid\n"),
    }
}

fn print_fig5a(scale: ExperimentScale) {
    let rows = fig5a::run(scale);
    let table_rows: Vec<Vec<String>> = rows
        .iter()
        .map(|r| {
            vec![
                r.kernel.to_string(),
                r.mode.to_string(),
                format!("{:.4}", r.time_s),
                f2(r.normalized),
                f2(r.efficiency),
                format!("{:.0}%", r.update_fraction * 100.0),
            ]
        })
        .collect();
    println!(
        "{}",
        render(
            "Figure 5a — HPCCG kernels, normalized time & efficiency",
            &[
                "kernel",
                "config",
                "time [s]",
                "normalized",
                "efficiency",
                "update share"
            ],
            &table_rows,
        )
    );
    println!("Paper reference: waxpby 0.5/0.34, ddot 0.5/0.99, sparsemv 0.5/0.94 (SDR/intra efficiency)\n");
}

fn print_fig5b(scale: ExperimentScale, scheduler: Option<SchedulerKind>) {
    let rows = fig5b::run_with_scheduler(scale, scheduler);
    let table_rows: Vec<Vec<String>> = rows
        .iter()
        .map(|r| {
            vec![
                r.procs.to_string(),
                r.mode.to_string(),
                f3(r.time_s),
                f2(r.efficiency),
            ]
        })
        .collect();
    println!(
        "{}",
        render(
            "Figure 5b — HPCCG weak scaling (execution time & efficiency)",
            &["procs", "config", "time [s]", "efficiency"],
            &table_rows,
        )
    );
    println!(
        "Paper reference: SDR-MPI 0.5; intra 0.80 / 0.79 / 0.82 at 128 / 256 / 512 processes\n"
    );
}

fn print_fig6(app: Fig6App, scale: ExperimentScale, scheduler: Option<SchedulerKind>) {
    let rows = fig6::run_with_scheduler(app, scale, scheduler);
    let table_rows: Vec<Vec<String>> = rows
        .iter()
        .map(|r| {
            vec![
                r.mode.to_string(),
                format!("{} ps", r.procs),
                f3(r.time_s),
                f3(r.sections_s),
                f3(r.others_s),
                f2(r.efficiency),
            ]
        })
        .collect();
    println!(
        "{}",
        render(
            &format!("Figure {} — {}", app.figure(), app.name()),
            &[
                "config",
                "procs",
                "time [s]",
                "sections [s]",
                "others [s]",
                "efficiency"
            ],
            &table_rows,
        )
    );
    let reference = match app {
        Fig6App::AmgPcg27 => "paper: 0.48 / 0.61 (SDR / intra), sections ≈ 62% of native time",
        Fig6App::AmgGmres7 => "paper: 0.49 / 0.59 (SDR / intra), sections ≈ 42% of native time",
        Fig6App::Gtc => "paper: 0.49 / 0.71 (SDR / intra), sections ≈ 75% of native time",
        Fig6App::MiniGhost => "paper: 0.49 / 0.51 (SDR / intra), sections ≈ 10% of native time",
    };
    println!("Paper reference: {reference}\n");
}

fn print_granularity(scale: ExperimentScale) {
    let rows = ablations::granularity(scale, &ablations::default_task_counts());
    let table_rows: Vec<Vec<String>> = rows
        .iter()
        .map(|r| {
            vec![
                r.tasks_per_section.to_string(),
                format!("{:.4}", r.time_s),
                f2(r.efficiency),
            ]
        })
        .collect();
    println!(
        "{}",
        render(
            "Ablation — tasks per section (sparsemv, intra)",
            &["tasks/section", "time [s]", "efficiency"],
            &table_rows,
        )
    );
    println!("Paper choice: 8 tasks per section (4 per replica)\n");
}

fn print_bandwidth(scale: ExperimentScale) {
    let rows = ablations::bandwidth(scale, &ablations::default_bandwidths());
    let table_rows: Vec<Vec<String>> = rows
        .iter()
        .map(|r| {
            vec![
                format!("{:.2}", r.bandwidth_gbs),
                r.kernel.to_string(),
                f2(r.efficiency),
            ]
        })
        .collect();
    println!(
        "{}",
        render(
            "Ablation — inter-node bandwidth vs intra efficiency",
            &["bandwidth [GB/s]", "kernel", "efficiency"],
            &table_rows,
        )
    );
}

fn print_scheduler(scale: ExperimentScale) {
    let rows = ablations::scheduler(scale);
    let table_rows: Vec<Vec<String>> = rows
        .iter()
        .map(|r| vec![r.scheduler.to_string(), format!("{:.4}", r.time_s)])
        .collect();
    println!(
        "{}",
        render(
            "Ablation — scheduler comparison on heterogeneous tasks",
            &["scheduler", "section time [s]"],
            &table_rows,
        )
    );
}

fn print_adaptive(scale: ExperimentScale) {
    let rows = ablations::adaptive(scale);
    let iters = rows.iter().map(|r| r.iteration + 1).max().unwrap_or(0);
    // Pivot: one row per scheduler, one column per section instance.
    let schedulers: Vec<&'static str> = {
        let mut seen = Vec::new();
        for r in &rows {
            if !seen.contains(&r.scheduler) {
                seen.push(r.scheduler);
            }
        }
        seen
    };
    let mut headers: Vec<String> = vec!["scheduler".to_string()];
    headers.extend((0..iters).map(|i| format!("iter {i} [s]")));
    let header_refs: Vec<&str> = headers.iter().map(String::as_str).collect();
    let table_rows: Vec<Vec<String>> = schedulers
        .iter()
        .map(|s| {
            let mut row = vec![s.to_string()];
            for it in 0..iters {
                let m = rows
                    .iter()
                    .find(|r| r.scheduler == *s && r.iteration == it)
                    .map(|r| r.makespan_s)
                    .unwrap_or(f64::NAN);
                row.push(format!("{m:.4}"));
            }
            row
        })
        .collect();
    println!(
        "{}",
        render(
            "ABL-ADAPT — per-iteration makespan, heterogeneous HPCCG/GTC section",
            &header_refs,
            &table_rows,
        )
    );
    println!(
        "Expected: adaptive == cost-aware at iter 0 (no history), then matches or beats it\n\
         once the measured-cost EMA is warm (<= 3 iterations).\n"
    );
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let what = args.first().map(String::as_str).unwrap_or("all");
    // The optional scale and scheduler arguments are recognized by value
    // (in any order), so `figures fig5b adaptive` works and a typo errors
    // out instead of silently running the Full scale with the default
    // scheduler.
    let mut scale = ExperimentScale::Full;
    let mut scheduler: Option<SchedulerKind> = None;
    for arg in args.iter().skip(1) {
        if let Some(s) = ExperimentScale::parse(arg) {
            scale = s;
        } else if let Ok(kind) = arg.parse::<SchedulerKind>() {
            scheduler = Some(kind);
        } else {
            eprintln!(
                "unrecognized argument '{arg}': expected a scale (full, small) or a scheduler ({})",
                SchedulerKind::names().join(", ")
            );
            std::process::exit(2);
        }
    }

    println!(
        "intra-replication figure harness — target: {what}, scale: {scale:?}, scheduler: {}\n",
        scheduler
            .map(|k| k.name())
            .unwrap_or("static-block (paper default)")
    );
    match what {
        "fig5" => print_fig5(scale),
        "fig5a" => print_fig5a(scale),
        "fig5b" => print_fig5b(scale, scheduler),
        "fig6a" => print_fig6(Fig6App::AmgPcg27, scale, scheduler),
        "fig6b" => print_fig6(Fig6App::AmgGmres7, scale, scheduler),
        "fig6c" => print_fig6(Fig6App::Gtc, scale, scheduler),
        "fig6d" => print_fig6(Fig6App::MiniGhost, scale, scheduler),
        "fig6" => {
            for app in Fig6App::ALL {
                print_fig6(app, scale, scheduler);
            }
        }
        "granularity" => print_granularity(scale),
        "bandwidth" => print_bandwidth(scale),
        "scheduler" => print_scheduler(scale),
        "adaptive" => print_adaptive(scale),
        "all" => {
            print_fig5(scale);
            print_fig5a(scale);
            print_fig5b(scale, scheduler);
            for app in Fig6App::ALL {
                print_fig6(app, scale, scheduler);
            }
            print_granularity(scale);
            print_bandwidth(scale);
            print_scheduler(scale);
            print_adaptive(scale);
        }
        other => {
            eprintln!("unknown figure id '{other}'");
            eprintln!("expected one of: fig5 fig5a fig5b fig6a fig6b fig6c fig6d fig6 granularity bandwidth scheduler adaptive all");
            std::process::exit(2);
        }
    }
}
