//! Ablation studies for the design choices called out in DESIGN.md.
//!
//! * **Task granularity** (`ABL-GRAN`) — the paper uses 8 tasks per section
//!   (4 per replica) and argues that fewer tasks reduce transfer/compute
//!   overlap while more tasks add synchronization overhead.  The sweep
//!   reproduces that U-shape on the sparsemv kernel.
//! * **Replica-link bandwidth** (`ABL-NET`) — how the kernel efficiencies of
//!   Figure 5a move when the inter-node bandwidth changes (waxpby is
//!   bandwidth-bound, ddot is not).
//! * **Scheduler** (`ABL-SCHED`) — static block vs round-robin vs cost-aware
//!   scheduling on a section with heterogeneous task costs.
//! * **Adaptive scheduling** (`ABL-ADAPT`) — all five built-in schedulers
//!   on a heterogeneous HPCCG/GTC-like section repeated over iterations,
//!   showing the warm-up convergence of the history-driven
//!   `AdaptiveScheduler` (it must match `CostAwareScheduler` on the first
//!   instance and match-or-beat it afterwards).
//!
//! The studies that run intra-parallel sections are driven through the
//! facade's [`Experiment`] builder (custom bodies via
//! [`Experiment::run_with`], typed [`SchedulerKind`] axes); only the
//! bandwidth sweep stays on the kernel-level Figure 5a harness because it
//! perturbs the machine model itself.

use crate::fig5a;
use crate::scale::ExperimentScale;
use apps::AppId;
use intra_replication::Experiment;
use ipr_core::{ArgSpec, SchedulerKind, TaskCost, TaskDef, Workspace};
use replication::ExecutionMode;
use std::sync::Arc;

/// One row of the task-granularity sweep.
#[derive(Debug, Clone)]
pub struct GranularityRow {
    /// Tasks per section.
    pub tasks_per_section: usize,
    /// Average per-process section time (virtual seconds).
    pub time_s: f64,
    /// Efficiency relative to the native (non-replicated) kernel time.
    pub efficiency: f64,
}

/// Sweeps the number of tasks per section for the sparsemv kernel.
pub fn granularity(scale: ExperimentScale, task_counts: &[usize]) -> Vec<GranularityRow> {
    let procs = match scale {
        ExperimentScale::Full => 64,
        ExperimentScale::Small => 8,
        ExperimentScale::Tiny => 4,
    };
    let actual_edge = scale.actual_grid_edge();
    let modeled_edge = 128;
    let reps = scale.kernel_reps();

    let time_for = |tasks: usize, mode: ExecutionMode| -> f64 {
        let degree = mode.degree();
        let num_logical = procs / degree;
        let (ax, ay, az) = (actual_edge, actual_edge, actual_edge * degree);
        let (mx, my, mz) = (modeled_edge, modeled_edge, modeled_edge * degree);
        let actual_n = ax * ay * az;
        let modeled_n = mx * my * mz;
        let run = Experiment::builder()
            .app(AppId::Hpccg) // sparsemv is HPCCG's dominant kernel
            .scale(scale)
            .execution_mode(mode)
            .logical_procs(num_logical)
            .tasks_per_section(tasks)
            .modeled_scale(modeled_n as f64 / actual_n as f64)
            .build()
            .expect("ablation experiments are valid")
            .run_with(move |ctx| {
                let mut ws = Workspace::new();
                let x = ws.add("x", vec![1.0; actual_n]);
                let w = ws.add_zeros("w", actual_n);
                let matrix = Arc::new(kernels::sparse::CsrMatrix::stencil27(
                    ax, ay, az, false, false,
                ));
                let nnz_ratio = matrix.nnz() as f64 / actual_n as f64;
                let cost = kernels::sparse::spmv_cost(
                    modeled_n / tasks,
                    ((modeled_n as f64 * nnz_ratio) as usize) / tasks,
                );
                let cost = TaskCost::new(cost.flops, cost.mem_bytes());
                for _ in 0..reps {
                    let matrix = Arc::clone(&matrix);
                    let mut section = ctx.rt.section(&mut ws);
                    section.add_split(actual_n, |chunk| {
                        let matrix = Arc::clone(&matrix);
                        let (start, end) = (chunk.start, chunk.end);
                        TaskDef::new(
                            "sparsemv",
                            move |c| {
                                let rows = c.scalar_usize(0)..c.scalar_usize(1);
                                let mut scratch = vec![0.0; rows.end];
                                matrix.spmv_rows(rows.clone(), &c.inputs[0], &mut scratch);
                                c.outputs[0].copy_from_slice(&scratch[rows]);
                            },
                            vec![ArgSpec::input(x, 0..actual_n), ArgSpec::output(w, chunk)],
                        )
                        .with_scalars(vec![start as f64, end as f64])
                        .with_cost(cost)
                    })?;
                    let _ = section.end()?;
                }
                Ok(ctx.rt.report().total_section_time().as_secs() / reps as f64)
            })
            .expect("ablation experiments execute");
        let results = run.unwrap_results();
        results.iter().sum::<f64>() / results.len() as f64
    };

    let t_native = time_for(8, ExecutionMode::Native);
    task_counts
        .iter()
        .map(|&tasks| {
            let t = time_for(tasks, ExecutionMode::IntraParallel { degree: 2 });
            GranularityRow {
                tasks_per_section: tasks,
                time_s: t,
                efficiency: t_native / t,
            }
        })
        .collect()
}

/// One row of the bandwidth-sensitivity sweep.
#[derive(Debug, Clone)]
pub struct BandwidthRow {
    /// Inter-node bandwidth in GB/s.
    pub bandwidth_gbs: f64,
    /// Kernel name.
    pub kernel: &'static str,
    /// Intra-parallelization efficiency at that bandwidth.
    pub efficiency: f64,
}

/// Sweeps the inter-node bandwidth and reports the intra efficiency of the
/// three kernels of Figure 5a.
pub fn bandwidth(scale: ExperimentScale, bandwidths_gbs: &[f64]) -> Vec<BandwidthRow> {
    let mut rows = Vec::new();
    for &bw in bandwidths_gbs {
        let mut machine = simcluster::MachineModel::grid5000_ib20g();
        machine.inter_node = machine.inter_node.with_bandwidth(bw * 1e9);
        let kernel_rows = fig5a::run_with_machine(scale, machine);
        for kr in kernel_rows.into_iter().filter(|r| r.mode == "intra") {
            rows.push(BandwidthRow {
                bandwidth_gbs: bw,
                kernel: kr.kernel,
                efficiency: kr.efficiency,
            });
        }
    }
    rows
}

/// One row of the scheduler comparison.
#[derive(Debug, Clone)]
pub struct SchedulerRow {
    /// Scheduler name.
    pub scheduler: &'static str,
    /// Average per-process section time (virtual seconds).
    pub time_s: f64,
}

/// Compares the classic schedulers on a section whose tasks have strongly
/// heterogeneous costs (a geometric distribution of work).
pub fn scheduler(scale: ExperimentScale) -> Vec<SchedulerRow> {
    let reps = scale.kernel_reps();
    let mut rows = Vec::new();
    for kind in [
        SchedulerKind::StaticBlock,
        SchedulerKind::RoundRobin,
        SchedulerKind::CostAware,
    ] {
        let run = Experiment::builder()
            .app(AppId::Hpccg) // nominal: the section is synthetic
            .scale(scale)
            .execution_mode(ExecutionMode::IntraParallel { degree: 2 })
            .logical_procs(1)
            .scheduler(kind)
            .tasks_per_section(12)
            .build()
            .expect("ablation experiments are valid")
            .run_with(move |ctx| {
                let mut ws = Workspace::new();
                let out = ws.add_zeros("out", 12);
                for _ in 0..reps {
                    let mut section = ctx.rt.section(&mut ws);
                    for t in 0..12usize {
                        // Task t models 2^(t/3) units of work: heterogeneous.
                        let weight = (1 << (t / 3)) as f64;
                        section.add_task(
                            TaskDef::new(
                                "hetero",
                                |c| {
                                    c.outputs[0][0] = 1.0;
                                },
                                vec![ArgSpec::output(out, t..t + 1)],
                            )
                            .with_cost(TaskCost::new(weight * 1e8, weight * 1e8)),
                        )?;
                    }
                    let _ = section.end()?;
                }
                Ok(ctx.rt.report().total_section_time().as_secs() / reps as f64)
            })
            .expect("ablation experiments execute");
        let results = run.unwrap_results();
        rows.push(SchedulerRow {
            scheduler: kind.name(),
            time_s: results.iter().sum::<f64>() / results.len() as f64,
        });
    }
    rows
}

/// One row of the `ABL-ADAPT` adaptive-scheduling ablation.
#[derive(Debug, Clone)]
pub struct AdaptiveRow {
    /// Scheduler name (one per built-in scheduler).
    pub scheduler: &'static str,
    /// Section instance index (iteration of the same section).
    pub iteration: usize,
    /// Makespan of that instance: max over the replicas of the section time
    /// (virtual seconds).
    pub makespan_s: f64,
}

/// The heterogeneous HPCCG/GTC-like task set of `ABL-ADAPT`:
/// `(name, flops, mem_bytes)` per task.
///
/// Half the tasks are flop-bound ("push", GTC's particle push at a
/// realistic flops-per-particle) and half memory-bound ("sparsemv", HPCCG's
/// dominant kernel).  The declared scheduling weight,
/// `max(flops, mem_bytes)`, mixes units and mis-ranks tasks across the two
/// roofline regimes — `push-a` declares the largest weight but `spmv-b`
/// takes the most time — which is exactly the situation where scheduling
/// from measured durations pays off.
pub fn adaptive_task_set() -> Vec<(&'static str, f64, f64)> {
    vec![
        ("push-a", 1.0e9, 1.0e6),
        ("spmv-b", 1.0e7, 9.0e8),
        ("spmv-c", 1.0e7, 6.0e8),
        ("push-d", 5.0e8, 1.0e6),
        ("spmv-e", 1.0e7, 2.0e8),
        ("push-f", 2.0e8, 1.0e6),
    ]
}

/// Runs the `ABL-ADAPT` ablation: every built-in scheduler on `iters`
/// instances of the heterogeneous section, one row per (scheduler,
/// iteration).
///
/// Expected shape: `adaptive` equals `cost-aware` on iteration 0 (no
/// history yet) and matches-or-beats every declared-weight scheduler from
/// iteration 1 on (a single warm-up instance fills the cost model).
pub fn adaptive(scale: ExperimentScale) -> Vec<AdaptiveRow> {
    let iters = match scale {
        ExperimentScale::Full => 8,
        ExperimentScale::Small => 5,
        ExperimentScale::Tiny => 3,
    };
    let mut rows = Vec::new();
    for kind in SchedulerKind::ALL {
        let run = Experiment::builder()
            .app(AppId::Hpccg) // nominal: the section is synthetic
            .scale(scale)
            .execution_mode(ExecutionMode::IntraParallel { degree: 2 })
            .logical_procs(1)
            .scheduler(kind)
            .build()
            .expect("ablation experiments are valid")
            .run_with(move |ctx| {
                let mut ws = Workspace::new();
                let tasks = adaptive_task_set();
                let out = ws.add_zeros("out", tasks.len());
                for _ in 0..iters {
                    let mut section = ctx.rt.section(&mut ws);
                    for (t, (task_name, flops, mem)) in tasks.iter().enumerate() {
                        section.add_task(
                            TaskDef::new(
                                task_name,
                                |c| c.outputs[0][0] += 1.0,
                                vec![ArgSpec::inout(out, t..t + 1)],
                            )
                            .with_cost(TaskCost::new(*flops, *mem)),
                        )?;
                    }
                    let _ = section.end()?;
                }
                Ok(ctx
                    .rt
                    .report()
                    .sections()
                    .iter()
                    .map(|s| s.total_time().as_secs())
                    .collect::<Vec<f64>>())
            })
            .expect("ablation experiments execute");
        let per_proc = run.unwrap_results();
        for it in 0..iters {
            let makespan = per_proc.iter().map(|t| t[it]).fold(0.0f64, f64::max);
            rows.push(AdaptiveRow {
                scheduler: kind.name(),
                iteration: it,
                makespan_s: makespan,
            });
        }
    }
    rows
}

/// The granularity sweep used by the paper discussion (1 to 64 tasks).
pub fn default_task_counts() -> Vec<usize> {
    vec![1, 2, 4, 8, 16, 32, 64]
}

/// The default bandwidth sweep in GB/s (IB 20G is ~1.8 GB/s).
pub fn default_bandwidths() -> Vec<f64> {
    vec![0.45, 0.9, 1.8, 3.6, 7.2]
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The `ABL-ADAPT` acceptance criterion: `adaptive` matches or beats
    /// `cost-aware` on the heterogeneous section after at most 3 warm-up
    /// iterations (this workload needs exactly one).
    #[test]
    fn adaptive_matches_or_beats_cost_aware_after_warmup() {
        let rows = adaptive(ExperimentScale::Small);
        let makespan = |sched: &str, it: usize| {
            rows.iter()
                .find(|r| r.scheduler == sched && r.iteration == it)
                .expect("row exists")
                .makespan_s
        };
        let iters = rows.iter().filter(|r| r.scheduler == "adaptive").count();
        assert!(iters >= 4, "need warm-up + measured iterations");
        // Iteration 0: no history, identical to cost-aware.
        assert!((makespan("adaptive", 0) - makespan("cost-aware", 0)).abs() < 1e-9);
        // After the warm-up window, adaptive never loses to cost-aware, and
        // on this workload it wins outright.
        for it in 3..iters {
            assert!(
                makespan("adaptive", it) <= makespan("cost-aware", it) + 1e-9,
                "iteration {it}"
            );
        }
        assert!(makespan("adaptive", iters - 1) < 0.95 * makespan("cost-aware", iters - 1));
    }
}
