//! Minimal fixed-width table printing for the `figures` binary.

/// Renders a table with a header row and data rows as a fixed-width string.
pub fn render(title: &str, header: &[&str], rows: &[Vec<String>]) -> String {
    let mut widths: Vec<usize> = header.iter().map(|h| h.len()).collect();
    for row in rows {
        for (i, cell) in row.iter().enumerate() {
            if i < widths.len() {
                widths[i] = widths[i].max(cell.len());
            }
        }
    }
    let mut out = String::new();
    out.push_str(&format!("== {title} ==\n"));
    let fmt_row = |cells: &[String], widths: &[usize]| -> String {
        cells
            .iter()
            .enumerate()
            .map(|(i, c)| {
                format!(
                    "{:>width$}",
                    c,
                    width = widths.get(i).copied().unwrap_or(c.len())
                )
            })
            .collect::<Vec<_>>()
            .join("  ")
    };
    let header_cells: Vec<String> = header.iter().map(|s| s.to_string()).collect();
    out.push_str(&fmt_row(&header_cells, &widths));
    out.push('\n');
    out.push_str(&"-".repeat(widths.iter().sum::<usize>() + 2 * (widths.len() - 1)));
    out.push('\n');
    for row in rows {
        out.push_str(&fmt_row(row, &widths));
        out.push('\n');
    }
    out
}

/// Formats a float with 3 significant decimals.
pub fn f3(x: f64) -> String {
    format!("{x:.3}")
}

/// Formats a float with 2 decimals.
pub fn f2(x: f64) -> String {
    format!("{x:.2}")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn render_aligns_columns() {
        let s = render(
            "demo",
            &["kernel", "eff"],
            &[
                vec!["waxpby".to_string(), "0.34".to_string()],
                vec!["ddot".to_string(), "0.99".to_string()],
            ],
        );
        assert!(s.contains("== demo =="));
        assert!(s.contains("waxpby"));
        assert!(s.lines().count() >= 5);
    }

    #[test]
    fn float_formatting() {
        assert_eq!(f3(0.3456), "0.346");
        assert_eq!(f2(1.005), "1.00");
    }
}
