//! Experiment scale selection (re-exported from `apps`).
//!
//! [`ExperimentScale`] started life here but moved into the `apps` crate so
//! the root `intra-replication` facade (whose `Experiment` builder carries a
//! scale axis) can use it without depending on the bench harness.  This
//! module re-exports it so existing `ipr_bench::scale::ExperimentScale`
//! imports keep working.

pub use apps::scale::ExperimentScale;
