//! Figure 5a: kernel-level performance of intra-parallelization.
//!
//! The paper measures the average time a process spends inside each HPCCG
//! computation kernel (waxpby, ddot, sparsemv) on 512 cores, comparing the
//! unmodified library ("Open MPI"), classic active replication ("SDR-MPI")
//! and intra-parallelization ("intra"), all for the *same amount of physical
//! resources* (so the replicated configurations run half as many logical
//! processes, each with twice the data).  The published outcome:
//!
//! | kernel   | SDR-MPI | intra | intra update share |
//! |----------|---------|-------|--------------------|
//! | waxpby   | 0.50    | 0.34  | dominant           |
//! | ddot     | 0.50    | 0.99  | ~0                 |
//! | sparsemv | 0.50    | 0.94  | small              |

use crate::scale::ExperimentScale;
use ipr_core::{ArgSpec, IntraConfig, IntraRuntime, TaskDef, Workspace};
use kernels::sparse::{spmv_cost, CsrMatrix};
use kernels::vecops::{ddot_cost, waxpby_cost};
use replication::{ExecutionMode, ReplicatedEnv};
use simcluster::{MachineModel, Topology};
use simmpi::{run_cluster, ClusterConfig};
use std::sync::Arc;

/// The kernel under study.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Kernel {
    /// `w = alpha x + beta y`.
    Waxpby,
    /// Local dot product.
    Ddot,
    /// Sparse matrix-vector product (27-point operator).
    Sparsemv,
}

impl Kernel {
    /// All three kernels, in the order of the figure.
    pub const ALL: [Kernel; 3] = [Kernel::Waxpby, Kernel::Ddot, Kernel::Sparsemv];

    /// Display name.
    pub fn name(&self) -> &'static str {
        match self {
            Kernel::Waxpby => "waxpby",
            Kernel::Ddot => "ddot",
            Kernel::Sparsemv => "sparsemv",
        }
    }
}

/// One bar of Figure 5a.
#[derive(Debug, Clone)]
pub struct KernelRow {
    /// Kernel name.
    pub kernel: &'static str,
    /// Configuration label ("Open MPI", "SDR-MPI", "intra").
    pub mode: &'static str,
    /// Average per-process virtual time spent in the kernel (seconds).
    pub time_s: f64,
    /// Time normalized to the Open MPI configuration.
    pub normalized: f64,
    /// Efficiency (T_openmpi / T_mode).
    pub efficiency: f64,
    /// Fraction of the kernel time spent finishing update transfers (the
    /// dashed "intra updates" area; zero for the other configurations).
    pub update_fraction: f64,
}

/// Average per-process section time and update-drain time for one kernel in
/// one configuration.
fn kernel_time(
    kernel: Kernel,
    mode: ExecutionMode,
    procs: usize,
    actual_edge: usize,
    modeled_edge: usize,
    reps: usize,
    machine: MachineModel,
) -> (f64, f64) {
    let degree = mode.degree();
    let num_logical = procs / degree;
    assert!(num_logical > 0, "not enough processes for degree {degree}");
    // Same physical resources for every configuration: replicated runs have
    // half the logical processes, each owning twice the data (z is doubled).
    let (ax, ay, az) = (actual_edge, actual_edge, actual_edge * degree);
    let (mx, my, mz) = (modeled_edge, modeled_edge, modeled_edge * degree);
    let actual_n = ax * ay * az;
    let modeled_n = mx * my * mz;
    let scale = modeled_n as f64 / actual_n as f64;

    let topology = if degree > 1 {
        Topology::replica_disjoint(num_logical, degree, machine.cores_per_node)
    } else {
        Topology::block(procs, machine.cores_per_node)
    };
    let config = ClusterConfig::new(procs)
        .with_machine(machine)
        .with_topology(topology);

    let report = run_cluster(&config, move |proc| {
        let env = ReplicatedEnv::without_failures(proc, mode).unwrap();
        let intra_config = IntraConfig::paper().with_modeled_scale(scale);
        let tasks = intra_config.tasks_per_section;
        let mut rt = IntraRuntime::new(env, intra_config);

        let mut ws = Workspace::new();
        let x = ws.add("x", (0..actual_n).map(|i| (i % 13) as f64).collect());
        let y = ws.add("y", (0..actual_n).map(|i| (i % 7) as f64 * 0.5).collect());
        let w = ws.add_zeros("w", actual_n);
        let partial = ws.add_zeros("partial", tasks);
        let matrix = Arc::new(CsrMatrix::stencil27(ax, ay, az, false, false));
        let nnz = matrix.nnz();

        for _ in 0..reps {
            match kernel {
                Kernel::Waxpby => {
                    let cost = crate::fig6::to_task_cost(waxpby_cost(modeled_n / tasks));
                    let mut section = rt.section(&mut ws);
                    section
                        .add_split(actual_n, |chunk| {
                            TaskDef::new(
                                "waxpby",
                                |c| {
                                    let xs = &c.inputs[0];
                                    let ys = &c.inputs[1];
                                    let ws_ = &mut c.outputs[0];
                                    for i in 0..ws_.len() {
                                        ws_[i] = 2.0 * xs[i] + 0.5 * ys[i];
                                    }
                                },
                                vec![
                                    ArgSpec::input(x, chunk.clone()),
                                    ArgSpec::input(y, chunk.clone()),
                                    ArgSpec::output(w, chunk),
                                ],
                            )
                            .with_cost(cost)
                        })
                        .unwrap();
                    let _ = section.end().unwrap();
                }
                Kernel::Ddot => {
                    let cost = crate::fig6::to_task_cost(ddot_cost(modeled_n / tasks));
                    let mut section = rt.section(&mut ws);
                    let chunks = ipr_core::split_ranges(actual_n, tasks);
                    for (t, chunk) in chunks.into_iter().enumerate() {
                        section
                            .add_task(
                                TaskDef::new(
                                    "ddot",
                                    |c| {
                                        c.outputs[0][0] = c.inputs[0]
                                            .iter()
                                            .zip(c.inputs[1].iter())
                                            .map(|(a, b)| a * b)
                                            .sum();
                                    },
                                    vec![
                                        ArgSpec::input(x, chunk.clone()),
                                        ArgSpec::input(y, chunk),
                                        ArgSpec::output(partial, t..t + 1),
                                    ],
                                )
                                .with_cost(cost),
                            )
                            .unwrap();
                    }
                    let _ = section.end().unwrap();
                }
                Kernel::Sparsemv => {
                    let cost = crate::fig6::to_task_cost(spmv_cost(
                        modeled_n / tasks,
                        ((modeled_n as f64) * (nnz as f64 / actual_n as f64)) as usize / tasks,
                    ));
                    let matrix = Arc::clone(&matrix);
                    let mut section = rt.section(&mut ws);
                    section
                        .add_split(actual_n, |chunk| {
                            let matrix = Arc::clone(&matrix);
                            let (start, end) = (chunk.start, chunk.end);
                            TaskDef::new(
                                "sparsemv",
                                move |c| {
                                    let rows = c.scalar_usize(0)..c.scalar_usize(1);
                                    let mut scratch = vec![0.0; rows.end];
                                    matrix.spmv_rows(rows.clone(), &c.inputs[0], &mut scratch);
                                    c.outputs[0].copy_from_slice(&scratch[rows]);
                                },
                                vec![ArgSpec::input(x, 0..actual_n), ArgSpec::output(w, chunk)],
                            )
                            .with_scalars(vec![start as f64, end as f64])
                            .with_cost(cost)
                        })
                        .unwrap();
                    let _ = section.end().unwrap();
                }
            }
        }
        let rep_count = reps.max(1) as f64;
        let total = rt.report().total_section_time().as_secs() / rep_count;
        let drain = rt.report().total_update_drain_time().as_secs() / rep_count;
        (total, drain)
    });

    let results = report.unwrap_results();
    let n = results.len() as f64;
    let total: f64 = results.iter().map(|(t, _)| t).sum::<f64>() / n;
    let drain: f64 = results.iter().map(|(_, d)| d).sum::<f64>() / n;
    (total, drain)
}

/// Runs the Figure 5a study and returns one row per (kernel, configuration).
pub fn run(scale: ExperimentScale) -> Vec<KernelRow> {
    run_with_machine(scale, MachineModel::grid5000_ib20g())
}

/// Same as [`run`] but with an explicit machine model (used by the bandwidth
/// ablation).
pub fn run_with_machine(scale: ExperimentScale, machine: MachineModel) -> Vec<KernelRow> {
    let procs = scale.fig5a_procs();
    let actual_edge = scale.actual_grid_edge();
    let modeled_edge = 128;
    let reps = scale.kernel_reps();
    let mut rows = Vec::new();
    for kernel in Kernel::ALL {
        let (t_native, _) = kernel_time(
            kernel,
            ExecutionMode::Native,
            procs,
            actual_edge,
            modeled_edge,
            reps,
            machine,
        );
        let (t_sdr, _) = kernel_time(
            kernel,
            ExecutionMode::Replicated { degree: 2 },
            procs,
            actual_edge,
            modeled_edge,
            reps,
            machine,
        );
        let (t_intra, drain_intra) = kernel_time(
            kernel,
            ExecutionMode::IntraParallel { degree: 2 },
            procs,
            actual_edge,
            modeled_edge,
            reps,
            machine,
        );
        for (mode, time, drain) in [
            ("Open MPI", t_native, 0.0),
            ("SDR-MPI", t_sdr, 0.0),
            ("intra", t_intra, drain_intra),
        ] {
            rows.push(KernelRow {
                kernel: kernel.name(),
                mode,
                time_s: time,
                normalized: time / t_native,
                efficiency: t_native / time,
                update_fraction: if time > 0.0 { drain / time } else { 0.0 },
            });
        }
    }
    rows
}
