//! Wall-clock throughput microbenchmarks of the compute kernels.
//!
//! Like [`crate::fabric`], this measures *host* speed, not virtual time: how
//! many grid cells, matrix nonzeros, or vector elements per second the
//! kernels crate moves on the machine running the simulator.  The modeled
//! [`kernels::KernelCost`] descriptors — and therefore every virtual-time
//! report — are untouched by kernel implementation changes; these benchmarks
//! are how such changes are held to account in `BENCH.json`.
//!
//! Scales are chosen to match the paper's applications: the stencil runs on
//! a MiniGhost-sized local subgrid (64³, ~2 MiB of f64 per grid — well out
//! of L2, so cache blocking is what it measures), and the HPCCG trio
//! (`spmv`, `waxpby`, `ddot`) runs on a 32×32×64 local operator / 1M-element
//! vectors.

use kernels::stencil::{grid_sum_planes, stencil27, stencil27_pool};
use kernels::vecops::{ddot, ddot_lanes, waxpby};
use kernels::{CsrMatrix, Grid3d, KernelPool};
use std::time::Instant;

/// Result of one kernel throughput microbenchmark.
#[derive(Debug, Clone)]
pub struct KernelBench {
    /// Benchmark name (stable identifier used in `BENCH.json`).
    pub name: String,
    /// Timed iterations of the kernel.
    pub iters: usize,
    /// Work units processed per iteration (see `unit`).
    pub n: u64,
    /// What a work unit is: `"cells"`, `"nnz"`, or `"elems"`.
    pub unit: &'static str,
    /// Wall-clock duration of the measured region, in seconds.
    pub wall_s: f64,
    /// `n * iters / wall_s`.
    pub per_sec: f64,
    /// A value derived from the kernel output: keeps the compiler from
    /// discarding the work and gives the smoke gate a sanity check.
    pub checksum: f64,
}

/// Runs `bench` `reps` times and keeps the fastest repetition (same robust
/// minimum-wall-time estimator as [`crate::fabric::best_of`]).
pub fn best_of<F: Fn() -> KernelBench>(reps: usize, bench: F) -> KernelBench {
    let mut best = bench();
    for _ in 1..reps.max(1) {
        let b = bench();
        if b.wall_s < best.wall_s {
            best = b;
        }
    }
    best
}

fn finish(
    name: String,
    iters: usize,
    n: u64,
    unit: &'static str,
    checksum: f64,
    t0: Instant,
) -> KernelBench {
    let wall_s = t0.elapsed().as_secs_f64().max(1e-9);
    KernelBench {
        name,
        iters,
        n,
        unit,
        wall_s,
        per_sec: (n * iters as u64) as f64 / wall_s,
        checksum,
    }
}

/// 27-point stencil sweep over an `edge³` local subgrid (MiniGhost's kernel);
/// input and output alternate so every iteration reads the previous result.
pub fn stencil27_throughput(edge: usize, iters: usize) -> KernelBench {
    let mut a = Grid3d::from_fn(edge, edge, edge, |x, y, z| {
        ((x * 7 + y * 3 + z * 11) % 13) as f64 - 6.0
    });
    let mut b = Grid3d::filled(edge, edge, edge, 0.0);
    let t0 = Instant::now();
    for _ in 0..iters {
        stencil27(&a, &mut b);
        std::mem::swap(&mut a, &mut b);
    }
    let checksum = grid_sum_planes(&a, 0..edge);
    finish(
        format!("stencil27_mg{edge}"),
        iters,
        (edge * edge * edge) as u64,
        "cells",
        checksum,
        t0,
    )
}

/// The same sweep driven through a [`KernelPool`] sized to the host — one
/// task per interior z-plane, stolen freely.  On a single-core host this
/// degenerates to the sequential blocked sweep (same checksum either way:
/// pool execution is bit-identical for any worker count).
pub fn stencil27_pool_throughput(edge: usize, iters: usize) -> KernelBench {
    let pool = KernelPool::host_sized();
    let mut a = Grid3d::from_fn(edge, edge, edge, |x, y, z| {
        ((x * 7 + y * 3 + z * 11) % 13) as f64 - 6.0
    });
    let mut b = Grid3d::filled(edge, edge, edge, 0.0);
    let t0 = Instant::now();
    for _ in 0..iters {
        stencil27_pool(&a, &mut b, &pool);
        std::mem::swap(&mut a, &mut b);
    }
    let checksum = grid_sum_planes(&a, 0..edge);
    finish(
        format!("stencil27_pool_mg{edge}"),
        iters,
        (edge * edge * edge) as u64,
        "cells",
        checksum,
        t0,
    )
}

/// Sparse matrix-vector product on the HPCCG 27-point operator for an
/// `nx × ny × nz` local grid (with both z ghost planes, as a middle rank
/// sees it).  Throughput is counted in nonzeros per second.
pub fn spmv_throughput(nx: usize, ny: usize, nz: usize, iters: usize) -> KernelBench {
    let a = CsrMatrix::stencil27(nx, ny, nz, true, true);
    let x: Vec<f64> = (0..a.ncols())
        .map(|i| ((i % 17) as f64) * 0.25 - 2.0)
        .collect();
    let mut y = vec![0.0; a.nrows()];
    let t0 = Instant::now();
    for _ in 0..iters {
        a.spmv(&x, &mut y);
    }
    let checksum = y.iter().sum();
    finish(
        format!("spmv_hpccg_{nx}x{ny}x{nz}"),
        iters,
        a.nnz() as u64,
        "nnz",
        checksum,
        t0,
    )
}

/// `w = alpha x + beta y` on `n`-element vectors (the HPCCG update kernel).
pub fn waxpby_throughput(n: usize, iters: usize) -> KernelBench {
    let x: Vec<f64> = (0..n).map(|i| (i % 31) as f64 * 0.125).collect();
    let y: Vec<f64> = (0..n).map(|i| (i % 29) as f64 * 0.25 - 3.0).collect();
    let mut w = vec![0.0; n];
    let t0 = Instant::now();
    for _ in 0..iters {
        waxpby(1.0, &x, 0.75, &y, &mut w);
    }
    let checksum = w[n / 2] + w[n - 1];
    finish(
        format!("waxpby_hpccg_{n}"),
        iters,
        n as u64,
        "elems",
        checksum,
        t0,
    )
}

/// Dot product on `n`-element vectors (the HPCCG reduction kernel).
pub fn ddot_throughput(n: usize, iters: usize) -> KernelBench {
    let x: Vec<f64> = (0..n).map(|i| (i % 23) as f64 * 0.0625 - 0.5).collect();
    let y: Vec<f64> = (0..n).map(|i| (i % 19) as f64 * 0.03125).collect();
    let mut acc = 0.0;
    let t0 = Instant::now();
    for _ in 0..iters {
        acc += ddot(&x, &y);
    }
    finish(format!("ddot_hpccg_{n}"), iters, n as u64, "elems", acc, t0)
}

/// Dot product via the lane-parallel [`ddot_lanes`] variant; same scale as
/// [`ddot_throughput`] so the two entries expose the serial-chain cost.
pub fn ddot_lanes_throughput(n: usize, iters: usize) -> KernelBench {
    let x: Vec<f64> = (0..n).map(|i| (i % 23) as f64 * 0.0625 - 0.5).collect();
    let y: Vec<f64> = (0..n).map(|i| (i % 19) as f64 * 0.03125).collect();
    let mut acc = 0.0;
    let t0 = Instant::now();
    for _ in 0..iters {
        acc += ddot_lanes(&x, &y);
    }
    finish(
        format!("ddot_lanes_hpccg_{n}"),
        iters,
        n as u64,
        "elems",
        acc,
        t0,
    )
}

/// The default kernel suite at full (BENCH.json) scale.
pub fn default_suite() -> Vec<KernelBench> {
    vec![
        best_of(3, || stencil27_throughput(64, 8)),
        best_of(3, || stencil27_pool_throughput(64, 8)),
        best_of(3, || spmv_throughput(32, 32, 64, 10)),
        best_of(3, || waxpby_throughput(1 << 20, 40)),
        best_of(3, || ddot_throughput(1 << 20, 80)),
        best_of(3, || ddot_lanes_throughput(1 << 20, 80)),
    ]
}

/// A reduced suite for quick regression runs and the `bench-smoke` gate.
pub fn smoke_suite() -> Vec<KernelBench> {
    vec![
        stencil27_throughput(12, 2),
        stencil27_pool_throughput(12, 2),
        spmv_throughput(8, 8, 8, 2),
        waxpby_throughput(1 << 12, 4),
        ddot_throughput(1 << 12, 4),
        ddot_lanes_throughput(1 << 12, 4),
    ]
}

/// Structural invariant on a finished kernel benchmark (the `bench-smoke`
/// check): the kernel did real work and produced a finite result.  Never a
/// wall-clock assertion.
pub fn check_kernel_result(b: &KernelBench) -> Result<(), String> {
    if b.n == 0 || b.iters == 0 {
        return Err(format!("{}: no work configured", b.name));
    }
    if b.wall_s <= 0.0 || !b.per_sec.is_finite() || b.per_sec <= 0.0 {
        return Err(format!("{}: degenerate measurement", b.name));
    }
    if !b.checksum.is_finite() {
        return Err(format!("{}: non-finite checksum {}", b.name, b.checksum));
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn kernel_microbenchmarks_do_real_work() {
        for b in smoke_suite() {
            check_kernel_result(&b).unwrap();
        }
    }

    #[test]
    fn stencil_checksum_is_scale_stable() {
        // Same grid, same iteration count: the checksum is a pure function
        // of the kernel — two runs must agree bit-for-bit (the throughput
        // rewrite must not perturb the arithmetic).
        let a = stencil27_throughput(10, 3);
        let b = stencil27_throughput(10, 3);
        assert_eq!(a.checksum.to_bits(), b.checksum.to_bits());
    }

    #[test]
    fn pool_stencil_checksum_matches_sequential() {
        // Pool execution only redistributes which thread computes a plane;
        // the arithmetic is the sequential sweep's, bit for bit.
        let a = stencil27_throughput(10, 3);
        let b = stencil27_pool_throughput(10, 3);
        assert_eq!(a.checksum.to_bits(), b.checksum.to_bits());
    }
}
