//! # ipr-bench — experiment harness regenerating the paper's figures
//!
//! Every evaluation figure of the paper has a generator here:
//!
//! | Figure | Generator | Content |
//! |--------|-----------|---------|
//! | 5 | [`fig5::run`] | replication-vs-checkpoint/restart efficiency crossover |
//! | 5a | [`fig5a::run`] | waxpby / ddot / sparsemv kernel efficiency |
//! | 5b | [`fig5b::run`] | HPCCG weak scaling (128/256/512 processes) |
//! | 6a | [`fig6::run`] (`Fig6App::AmgPcg27`) | AMG2013, 27-pt PCG |
//! | 6b | [`fig6::run`] (`Fig6App::AmgGmres7`) | AMG2013, 7-pt GMRES |
//! | 6c | [`fig6::run`] (`Fig6App::Gtc`) | GTC charge/push |
//! | 6d | [`fig6::run`] (`Fig6App::MiniGhost`) | MiniGhost stencil + sum |
//! | — | [`ablations`] | task granularity, bandwidth, scheduler, adaptive-scheduling (`ABL-ADAPT`) ablations |
//! | — | [`fabric`] | wall-clock microbenchmarks of the simulator host's message fabric (feeds `BENCH.json`) |
//! | — | [`kernels`] | wall-clock throughput of the compute kernels at HPCCG/MiniGhost scales (feeds `BENCH.json`) |
//!
//! The `figures` binary prints the rows in the same form as the paper
//! (normalized time / execution time plus the efficiency above each bar);
//! the Criterion benches under `benches/` wrap the same generators at a
//! reduced scale so they can run repeatedly.

#![warn(missing_docs)]

pub mod ablations;
pub mod fabric;
pub mod fig5;
pub mod fig5a;
pub mod fig5b;
pub mod fig6;
pub mod kernels;
pub mod scale;
pub mod table;

pub use scale::ExperimentScale;
