//! Figure 5: the replication-vs-checkpoint/restart efficiency crossover.
//!
//! The paper's case for replication rests on a comparison against
//! coordinated checkpoint/restart at exascale failure rates: below some
//! MTBF, a checkpointed native run spends so much time rolling back and
//! re-executing lost work that running every process twice — halving the
//! ideal efficiency to 0.5, but absorbing almost every failure without a
//! rollback — comes out ahead.  This study reproduces that crossover from
//! swept [`Experiment`] runs:
//!
//! * **native + Daly C/R** — one replica per logical process, a Daly
//!   optimal-interval checkpoint plan, per-process exponential failures;
//! * **replicated(2) + Daly C/R** — the same logical processes duplicated,
//!   the same per-process hazard, the same plan (rollbacks now happen only
//!   on a *replica defeat*, i.e. both replicas of a logical process lost
//!   between consecutive recoveries).
//!
//! The x-axis is the per-process MTBF, swept geometrically around the
//! failure-free native makespan `T0`; the y-axis is the resource-adjusted
//! efficiency `useful_time / (makespan × degree)` from the run's
//! [`CkptStats`](intra_replication::CkptStats) accounting.  The crossover
//! threshold — the MTBF below
//! which replication wins — is interpolated between the two bracketing
//! grid points.

use crate::scale::ExperimentScale;
use apps::AppId;
use intra_replication::{CheckpointPlan, Experiment, FailurePlan};
use ipr_core::SchedulerKind;
use replication::{ExecutionMode, FailureRate};

/// One MTBF point of the crossover curve.
#[derive(Debug, Clone)]
pub struct CrossoverRow {
    /// Per-process MTBF in virtual seconds.
    pub mtbf_s: f64,
    /// MTBF as a multiple of the failure-free native makespan.
    pub mtbf_over_t0: f64,
    /// Efficiency of the checkpointed native run.
    pub native_eff: f64,
    /// Rollback-recoveries the native run paid.
    pub native_recoveries: usize,
    /// Efficiency of the checkpointed replicated(2) run.
    pub replicated_eff: f64,
    /// Rollback-recoveries (replica defeats) the replicated run paid.
    pub replicated_recoveries: usize,
}

/// The full crossover study.
#[derive(Debug, Clone)]
pub struct CrossoverStudy {
    /// Failure-free native makespan `T0` the sweep is scaled to, in
    /// virtual seconds.
    pub baseline_s: f64,
    /// Modeled checkpoint commit cost `C`, in virtual seconds.
    pub ckpt_cost_s: f64,
    /// Modeled restart cost `R`, in virtual seconds.
    pub restart_cost_s: f64,
    /// One row per swept MTBF, ascending.
    pub rows: Vec<CrossoverRow>,
    /// Per-process MTBF below which replication beats checkpointed native
    /// execution (linear interpolation between the bracketing grid
    /// points); `None` when the curves do not cross inside the grid.
    pub crossover_mtbf_s: Option<f64>,
}

/// MTBF grid, as multiples of the failure-free native makespan.
const MTBF_MULTIPLES: [f64; 11] = [
    0.125, 0.25, 0.5, 1.0, 2.0, 4.0, 8.0, 16.0, 32.0, 64.0, 128.0,
];

fn run_point(
    mode: ExecutionMode,
    scale: ExperimentScale,
    plan: CheckpointPlan,
    mtbf_s: f64,
    horizon_s: f64,
) -> (f64, usize) {
    let report = Experiment::builder()
        .app(AppId::Hpccg)
        .scale(scale)
        .execution_mode(mode)
        .scheduler(SchedulerKind::StaticBlock)
        .failures(FailurePlan::poisson_process(
            FailureRate::Constant(1.0 / mtbf_s),
            horizon_s,
        ))
        .checkpointing(plan)
        .build()
        .expect("crossover experiments are valid")
        .run()
        .expect("crossover experiments execute");
    let stats = report
        .ckpt
        .expect("checkpointed runs always report C/R accounting");
    (
        stats.efficiency(report.makespan_s, mode.degree()),
        stats.recoveries,
    )
}

/// The failure-free native makespan the sweep is scaled to.
fn baseline(scale: ExperimentScale) -> f64 {
    Experiment::builder()
        .app(AppId::Hpccg)
        .scale(scale)
        .execution_mode(ExecutionMode::Native)
        .scheduler(SchedulerKind::StaticBlock)
        .build()
        .expect("baseline experiment is valid")
        .run()
        .expect("baseline experiment executes")
        .makespan_s
}

/// Runs the crossover study at the given scale.
pub fn run(scale: ExperimentScale) -> CrossoverStudy {
    let t0 = baseline(scale);
    // Paper-flavoured cost model: a checkpoint commit costs ~1.5% of the
    // failure-free run, a restart twice that.
    let ckpt_cost_s = t0 / 64.0;
    let restart_cost_s = t0 / 32.0;
    let plan = CheckpointPlan::daly(ckpt_cost_s, restart_cost_s);
    // The failure horizon must cover the *extended* makespan of the most
    // failure-ridden run (rollbacks stretch the run well past T0).
    let horizon_s = 64.0 * t0;
    let rows: Vec<CrossoverRow> = MTBF_MULTIPLES
        .iter()
        .map(|&mult| {
            let mtbf_s = mult * t0;
            let (native_eff, native_recoveries) =
                run_point(ExecutionMode::Native, scale, plan, mtbf_s, horizon_s);
            let (replicated_eff, replicated_recoveries) = run_point(
                ExecutionMode::Replicated { degree: 2 },
                scale,
                plan,
                mtbf_s,
                horizon_s,
            );
            CrossoverRow {
                mtbf_s,
                mtbf_over_t0: mult,
                native_eff,
                native_recoveries,
                replicated_eff,
                replicated_recoveries,
            }
        })
        .collect();
    CrossoverStudy {
        baseline_s: t0,
        ckpt_cost_s,
        restart_cost_s,
        crossover_mtbf_s: crossover(&rows),
        rows,
    }
}

/// The MTBF at which the native curve overtakes the replicated one,
/// linearly interpolated inside the first bracketing interval (rows are
/// ascending in MTBF).  `None` when one side dominates the whole grid.
fn crossover(rows: &[CrossoverRow]) -> Option<f64> {
    for pair in rows.windows(2) {
        let (lo, hi) = (&pair[0], &pair[1]);
        let d_lo = lo.native_eff - lo.replicated_eff;
        let d_hi = hi.native_eff - hi.replicated_eff;
        if d_lo < 0.0 && d_hi >= 0.0 {
            let t = d_lo / (d_lo - d_hi);
            return Some(lo.mtbf_s + t * (hi.mtbf_s - lo.mtbf_s));
        }
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn the_crossover_study_reproduces_the_papers_shape() {
        let study = run(ExperimentScale::Tiny);
        assert!(study.baseline_s > 0.0);
        assert_eq!(study.rows.len(), MTBF_MULTIPLES.len());
        // Replication pins efficiency near 0.5 and pays almost no
        // rollbacks at the benign end of the grid.
        let last = study.rows.last().unwrap();
        assert!(last.replicated_eff <= 0.5 + 1e-9);
        // Native efficiency is monotone-ish: the benign end must beat the
        // hostile end decisively.
        let first = study.rows.first().unwrap();
        assert!(
            last.native_eff > first.native_eff,
            "native eff {} at MTBF {} !> {} at {}",
            last.native_eff,
            last.mtbf_s,
            first.native_eff,
            first.mtbf_s
        );
        // At the benign end, checkpointed native execution must beat
        // paying for every process twice.
        assert!(last.native_eff > last.replicated_eff);
        // Determinism: the study is a pure function of its axes.
        let again = run(ExperimentScale::Tiny);
        assert_eq!(study.baseline_s, again.baseline_s);
        for (a, b) in study.rows.iter().zip(&again.rows) {
            assert_eq!(a.native_eff, b.native_eff);
            assert_eq!(a.replicated_eff, b.replicated_eff);
        }
    }
}
