//! Deterministic random-number helpers.
//!
//! Simulated processes must be reproducible run-to-run regardless of thread
//! scheduling, so every process derives its own RNG from a global seed and
//! its rank.  Mixing uses SplitMix64 so that neighbouring ranks do not get
//! correlated streams.

use rand::rngs::SmallRng;
use rand::SeedableRng;

/// SplitMix64 step — a cheap, well-mixed 64-bit finalizer.
fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = x;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Derives a deterministic per-rank RNG from a global `seed` and the caller's
/// `rank` (or any other stream identifier).
pub fn seeded_rng(seed: u64, rank: usize) -> SmallRng {
    let mixed = splitmix64(seed ^ splitmix64(rank as u64 ^ 0xA076_1D64_78BD_642F));
    SmallRng::seed_from_u64(mixed)
}

/// Derives a deterministic sub-stream from an existing stream identifier,
/// e.g. one stream per (rank, iteration) pair.
pub fn substream(seed: u64, rank: usize, stream: usize) -> SmallRng {
    let mixed = splitmix64(seed ^ splitmix64(rank as u64) ^ splitmix64((stream as u64) << 32));
    SmallRng::seed_from_u64(mixed)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::Rng;

    #[test]
    fn same_seed_same_stream() {
        let mut a = seeded_rng(42, 3);
        let mut b = seeded_rng(42, 3);
        for _ in 0..16 {
            assert_eq!(a.gen::<u64>(), b.gen::<u64>());
        }
    }

    #[test]
    fn different_ranks_get_different_streams() {
        let mut a = seeded_rng(42, 0);
        let mut b = seeded_rng(42, 1);
        let va: Vec<u64> = (0..8).map(|_| a.gen()).collect();
        let vb: Vec<u64> = (0..8).map(|_| b.gen()).collect();
        assert_ne!(va, vb);
    }

    #[test]
    fn different_seeds_get_different_streams() {
        let mut a = seeded_rng(1, 0);
        let mut b = seeded_rng(2, 0);
        assert_ne!(a.gen::<u64>(), b.gen::<u64>());
    }

    #[test]
    fn substreams_differ_from_each_other() {
        let mut a = substream(7, 0, 0);
        let mut b = substream(7, 0, 1);
        assert_ne!(a.gen::<u64>(), b.gen::<u64>());
    }

    #[test]
    fn splitmix_is_not_identity() {
        assert_ne!(splitmix64(0), 0);
        assert_ne!(splitmix64(1), 1);
    }
}
