//! # simcluster — virtual cluster substrate
//!
//! This crate provides the *machine* under the simulated MPI runtime
//! (`simmpi`): a description of the compute nodes and the interconnect (the
//! paper's testbed is a 128-node cluster of 2.53 GHz 4-core Xeons linked by
//! InfiniBand 20G), virtual clocks used to account for compute and
//! communication time, the placement of physical processes on nodes, and a
//! shared failure status board used by the replication layer to inject and
//! detect crash-stop failures.
//!
//! Nothing in this crate spawns threads or moves messages; it only *models*
//! time and topology.  The execution engine lives in `simmpi`.
//!
//! ## Why a model?
//!
//! The reproduced paper reports *efficiency ratios* (time without replication
//! divided by time with replication / intra-parallelization) that are driven
//! by the ratio between the computation cost of a kernel and the size of the
//! updates that must be shipped between replicas.  A calibrated analytic
//! model of compute throughput and link bandwidth preserves those ratios
//! exactly, while the protocol itself executes for real (threads, real
//! messages, real payloads) so that every ordering and consistency property
//! is exercised.

#![warn(missing_docs)]
#![deny(unsafe_op_in_unsafe_fn)]

pub mod clock;
pub mod engine;
pub mod failure;
pub mod model;
pub mod rng;
pub mod stats;
pub mod time;
pub mod topology;

pub use clock::VirtualClock;
pub use engine::{Dispatch, TaskId, VirtualEngine};
pub use failure::{FailureEvent, FailureStatusBoard, FailureWaker, ProcessState};
pub use model::{ComputeModel, MachineModel, NetworkModel};
pub use rng::seeded_rng;
pub use stats::{Counter, StatsRegistry};
pub use time::SimTime;
pub use topology::{NodeId, Topology};
