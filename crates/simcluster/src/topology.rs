//! Physical process placement.
//!
//! The paper places the two replicas of a logical process on *different*
//! nodes (so that a node failure cannot kill both replicas) and fills each
//! 4-core node with 4 physical processes.  [`Topology`] captures the mapping
//! from physical rank to node, which the network layer uses to pick the
//! intra-node or inter-node link model, and which the replication layer uses
//! to validate replica placement.

use serde::{Deserialize, Serialize};

/// Identifier of a compute node in the virtual cluster.
pub type NodeId = usize;

/// Placement of physical ranks onto nodes.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Topology {
    placement: Vec<NodeId>,
    cores_per_node: usize,
}

impl Topology {
    /// Block placement: rank `r` lives on node `r / cores_per_node`.  This is
    /// the standard "fill one node, move to the next" MPI mapping.
    pub fn block(num_procs: usize, cores_per_node: usize) -> Self {
        assert!(cores_per_node > 0, "cores_per_node must be positive");
        let placement = (0..num_procs).map(|r| r / cores_per_node).collect();
        Topology {
            placement,
            cores_per_node,
        }
    }

    /// Round-robin placement: rank `r` lives on node `r % num_nodes`.
    pub fn round_robin(num_procs: usize, num_nodes: usize) -> Self {
        assert!(num_nodes > 0, "num_nodes must be positive");
        let placement = (0..num_procs).map(|r| r % num_nodes).collect();
        let cores_per_node = num_procs.div_ceil(num_nodes);
        Topology {
            placement,
            cores_per_node: cores_per_node.max(1),
        }
    }

    /// Replica-aware placement used by the replication experiments: the
    /// physical ranks are interpreted as `replica_id * num_logical +
    /// logical_rank` and the two replica sets are placed on disjoint halves
    /// of the machine, so replicas of the same logical process never share a
    /// node (mirroring the paper's setup) while each half keeps the usual
    /// block placement.
    pub fn replica_disjoint(
        num_logical: usize,
        replication_degree: usize,
        cores_per_node: usize,
    ) -> Self {
        assert!(cores_per_node > 0, "cores_per_node must be positive");
        assert!(
            replication_degree > 0,
            "replication degree must be positive"
        );
        let nodes_per_replica_set = num_logical.div_ceil(cores_per_node);
        let mut placement = Vec::with_capacity(num_logical * replication_degree);
        for replica in 0..replication_degree {
            for logical in 0..num_logical {
                let node = replica * nodes_per_replica_set + logical / cores_per_node;
                placement.push(node);
            }
        }
        Topology {
            placement,
            cores_per_node,
        }
    }

    /// Places every rank on its own node (no shared-memory neighbours).
    pub fn one_per_node(num_procs: usize) -> Self {
        Topology {
            placement: (0..num_procs).collect(),
            cores_per_node: 1,
        }
    }

    /// Places every rank on a single node (pure shared-memory run).
    pub fn single_node(num_procs: usize) -> Self {
        Topology {
            placement: vec![0; num_procs],
            cores_per_node: num_procs.max(1),
        }
    }

    /// Number of physical ranks covered by this topology.
    pub fn num_procs(&self) -> usize {
        self.placement.len()
    }

    /// Number of distinct nodes in use.
    pub fn num_nodes(&self) -> usize {
        self.placement.iter().copied().max().map_or(0, |m| m + 1)
    }

    /// Number of cores assumed per node.
    pub fn cores_per_node(&self) -> usize {
        self.cores_per_node
    }

    /// Node hosting physical rank `rank`.
    ///
    /// # Panics
    /// Panics if `rank` is out of range.
    pub fn node_of(&self, rank: usize) -> NodeId {
        self.placement[rank]
    }

    /// True if the two ranks are placed on the same node.
    pub fn same_node(&self, a: usize, b: usize) -> bool {
        self.placement[a] == self.placement[b]
    }

    /// All ranks placed on `node`.
    pub fn ranks_on(&self, node: NodeId) -> Vec<usize> {
        self.placement
            .iter()
            .enumerate()
            .filter_map(|(r, &n)| (n == node).then_some(r))
            .collect()
    }

    /// Rack hosting `node` when racks group `nodes_per_rack` consecutive
    /// nodes (rack r hosts nodes `r*n .. (r+1)*n`) — the correlated
    /// failure-domain view of the machine.
    ///
    /// # Panics
    /// Panics if `nodes_per_rack` is zero.
    pub fn rack_of(&self, node: NodeId, nodes_per_rack: usize) -> usize {
        assert!(nodes_per_rack > 0, "nodes_per_rack must be positive");
        node / nodes_per_rack
    }

    /// Number of racks in use when racks group `nodes_per_rack` consecutive
    /// nodes.
    ///
    /// # Panics
    /// Panics if `nodes_per_rack` is zero.
    pub fn num_racks(&self, nodes_per_rack: usize) -> usize {
        assert!(nodes_per_rack > 0, "nodes_per_rack must be positive");
        self.num_nodes().div_ceil(nodes_per_rack)
    }

    /// All ranks placed on any node of `rack`, ascending.
    ///
    /// # Panics
    /// Panics if `nodes_per_rack` is zero.
    pub fn ranks_on_rack(&self, rack: usize, nodes_per_rack: usize) -> Vec<usize> {
        assert!(nodes_per_rack > 0, "nodes_per_rack must be positive");
        self.placement
            .iter()
            .enumerate()
            .filter_map(|(r, &n)| (n / nodes_per_rack == rack).then_some(r))
            .collect()
    }

    /// True if the two ranks are placed on the same rack of
    /// `nodes_per_rack` consecutive nodes.
    ///
    /// # Panics
    /// Panics if `nodes_per_rack` is zero.
    pub fn same_rack(&self, a: usize, b: usize, nodes_per_rack: usize) -> bool {
        self.rack_of(self.placement[a], nodes_per_rack)
            == self.rack_of(self.placement[b], nodes_per_rack)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn block_placement_fills_nodes() {
        let t = Topology::block(8, 4);
        assert_eq!(t.num_procs(), 8);
        assert_eq!(t.num_nodes(), 2);
        assert_eq!(t.node_of(0), 0);
        assert_eq!(t.node_of(3), 0);
        assert_eq!(t.node_of(4), 1);
        assert!(t.same_node(0, 3));
        assert!(!t.same_node(3, 4));
    }

    #[test]
    fn round_robin_spreads_ranks() {
        let t = Topology::round_robin(8, 4);
        assert_eq!(t.num_nodes(), 4);
        assert_eq!(t.node_of(0), 0);
        assert_eq!(t.node_of(1), 1);
        assert_eq!(t.node_of(4), 0);
        assert!(t.same_node(0, 4));
    }

    #[test]
    fn replica_disjoint_keeps_replicas_apart() {
        // 8 logical processes, degree 2, 4 cores per node -> 4 nodes.
        let t = Topology::replica_disjoint(8, 2, 4);
        assert_eq!(t.num_procs(), 16);
        assert_eq!(t.num_nodes(), 4);
        for logical in 0..8 {
            let replica0 = logical; // replica 0 of `logical`
            let replica1 = 8 + logical; // replica 1 of `logical`
            assert!(
                !t.same_node(replica0, replica1),
                "replicas of logical {logical} share a node"
            );
        }
    }

    #[test]
    fn one_per_node_and_single_node() {
        let a = Topology::one_per_node(5);
        assert_eq!(a.num_nodes(), 5);
        assert!(!a.same_node(0, 1));
        let b = Topology::single_node(5);
        assert_eq!(b.num_nodes(), 1);
        assert!(b.same_node(0, 4));
    }

    #[test]
    fn ranks_on_lists_node_membership() {
        let t = Topology::block(8, 4);
        assert_eq!(t.ranks_on(0), vec![0, 1, 2, 3]);
        assert_eq!(t.ranks_on(1), vec![4, 5, 6, 7]);
        assert!(t.ranks_on(7).is_empty());
    }

    #[test]
    #[should_panic]
    fn node_of_out_of_range_panics() {
        let t = Topology::block(4, 4);
        let _ = t.node_of(4);
    }

    #[test]
    fn rack_views_group_consecutive_nodes() {
        // 16 ranks, 2 per node -> 8 nodes; racks of 3 nodes -> 3 racks.
        let t = Topology::block(16, 2);
        assert_eq!(t.num_racks(3), 3);
        assert_eq!(t.rack_of(0, 3), 0);
        assert_eq!(t.rack_of(2, 3), 0);
        assert_eq!(t.rack_of(3, 3), 1);
        assert_eq!(t.ranks_on_rack(0, 3), vec![0, 1, 2, 3, 4, 5]);
        assert_eq!(t.ranks_on_rack(2, 3), vec![12, 13, 14, 15]);
        assert!(t.same_rack(0, 5, 3));
        assert!(!t.same_rack(5, 6, 3));
        // One rack per node degenerates to the node view.
        assert_eq!(t.num_racks(1), t.num_nodes());
        assert_eq!(t.ranks_on_rack(1, 1), t.ranks_on(1));
    }

    #[test]
    #[should_panic]
    fn zero_nodes_per_rack_panics() {
        let t = Topology::block(4, 4);
        let _ = t.num_racks(0);
    }
}
