//! Virtual time.
//!
//! All timing in the simulator is expressed as [`SimTime`], a thin newtype
//! over `f64` seconds.  Using a dedicated type (instead of bare `f64`)
//! prevents accidentally mixing virtual durations with byte counts or flop
//! counts, which are also carried around as `f64` in the cost model.

use serde::{Deserialize, Serialize};
use std::cmp::Ordering;
use std::fmt;
use std::iter::Sum;
use std::ops::{Add, AddAssign, Div, Mul, Sub, SubAssign};

/// A point in (or duration of) virtual time, in seconds.
///
/// `SimTime` is totally ordered (NaN is considered a programming error and
/// compares as equal to itself so that sorting never panics).
#[derive(Debug, Clone, Copy, PartialEq, Default, Serialize, Deserialize)]
pub struct SimTime(f64);

impl SimTime {
    /// Time zero.
    pub const ZERO: SimTime = SimTime(0.0);

    /// Creates a time from seconds.  Negative or NaN inputs are clamped to 0.
    pub fn from_secs(secs: f64) -> Self {
        if secs.is_finite() && secs > 0.0 {
            SimTime(secs)
        } else {
            SimTime(0.0)
        }
    }

    /// Creates a time from microseconds.
    pub fn from_micros(us: f64) -> Self {
        Self::from_secs(us * 1e-6)
    }

    /// Creates a time from nanoseconds.
    pub fn from_nanos(ns: f64) -> Self {
        Self::from_secs(ns * 1e-9)
    }

    /// Creates a time from milliseconds.
    pub fn from_millis(ms: f64) -> Self {
        Self::from_secs(ms * 1e-3)
    }

    /// The raw number of seconds.
    pub fn as_secs(self) -> f64 {
        self.0
    }

    /// The time expressed in microseconds.
    pub fn as_micros(self) -> f64 {
        self.0 * 1e6
    }

    /// The time expressed in milliseconds.
    pub fn as_millis(self) -> f64 {
        self.0 * 1e3
    }

    /// Returns the maximum of two times.
    pub fn max(self, other: SimTime) -> SimTime {
        if self.0 >= other.0 {
            self
        } else {
            other
        }
    }

    /// Returns the minimum of two times.
    pub fn min(self, other: SimTime) -> SimTime {
        if self.0 <= other.0 {
            self
        } else {
            other
        }
    }

    /// Saturating subtraction: never goes below zero.
    pub fn saturating_sub(self, other: SimTime) -> SimTime {
        SimTime((self.0 - other.0).max(0.0))
    }

    /// True if this is exactly time zero.
    pub fn is_zero(self) -> bool {
        self.0 == 0.0
    }
}

impl Eq for SimTime {}

impl PartialOrd for SimTime {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for SimTime {
    fn cmp(&self, other: &Self) -> Ordering {
        // NaN never occurs for values built through the constructors; fall
        // back to Equal so that sorting containers of SimTime cannot panic.
        self.0.partial_cmp(&other.0).unwrap_or(Ordering::Equal)
    }
}

impl Add for SimTime {
    type Output = SimTime;
    fn add(self, rhs: SimTime) -> SimTime {
        SimTime(self.0 + rhs.0)
    }
}

impl AddAssign for SimTime {
    fn add_assign(&mut self, rhs: SimTime) {
        self.0 += rhs.0;
    }
}

impl Sub for SimTime {
    type Output = SimTime;
    fn sub(self, rhs: SimTime) -> SimTime {
        SimTime(self.0 - rhs.0)
    }
}

impl SubAssign for SimTime {
    fn sub_assign(&mut self, rhs: SimTime) {
        self.0 -= rhs.0;
    }
}

impl Mul<f64> for SimTime {
    type Output = SimTime;
    fn mul(self, rhs: f64) -> SimTime {
        SimTime(self.0 * rhs)
    }
}

impl Div<f64> for SimTime {
    type Output = SimTime;
    fn div(self, rhs: f64) -> SimTime {
        SimTime(self.0 / rhs)
    }
}

impl Div<SimTime> for SimTime {
    type Output = f64;
    fn div(self, rhs: SimTime) -> f64 {
        self.0 / rhs.0
    }
}

impl Sum for SimTime {
    fn sum<I: Iterator<Item = SimTime>>(iter: I) -> SimTime {
        iter.fold(SimTime::ZERO, |acc, t| acc + t)
    }
}

impl fmt::Display for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.0 >= 1.0 {
            write!(f, "{:.3}s", self.0)
        } else if self.0 >= 1e-3 {
            write!(f, "{:.3}ms", self.0 * 1e3)
        } else if self.0 >= 1e-6 {
            write!(f, "{:.3}us", self.0 * 1e6)
        } else {
            write!(f, "{:.1}ns", self.0 * 1e9)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constructors_and_accessors_round_trip() {
        assert_eq!(SimTime::from_secs(2.0).as_secs(), 2.0);
        assert!((SimTime::from_micros(3.0).as_secs() - 3e-6).abs() < 1e-18);
        assert!((SimTime::from_millis(5.0).as_secs() - 5e-3).abs() < 1e-15);
        assert!((SimTime::from_nanos(7.0).as_secs() - 7e-9).abs() < 1e-20);
    }

    #[test]
    fn negative_and_nan_clamp_to_zero() {
        assert_eq!(SimTime::from_secs(-1.0), SimTime::ZERO);
        assert_eq!(SimTime::from_secs(f64::NAN), SimTime::ZERO);
        assert_eq!(SimTime::from_secs(f64::NEG_INFINITY), SimTime::ZERO);
    }

    #[test]
    fn arithmetic_behaves_like_seconds() {
        let a = SimTime::from_secs(1.5);
        let b = SimTime::from_secs(0.5);
        assert_eq!((a + b).as_secs(), 2.0);
        assert_eq!((a - b).as_secs(), 1.0);
        assert_eq!((a * 2.0).as_secs(), 3.0);
        assert_eq!((a / 3.0).as_secs(), 0.5);
        assert_eq!(a / b, 3.0);
    }

    #[test]
    fn ordering_and_max_min() {
        let a = SimTime::from_secs(1.0);
        let b = SimTime::from_secs(2.0);
        assert!(a < b);
        assert_eq!(a.max(b), b);
        assert_eq!(a.min(b), a);
        assert_eq!(b.saturating_sub(a).as_secs(), 1.0);
        assert_eq!(a.saturating_sub(b), SimTime::ZERO);
    }

    #[test]
    fn sum_of_times() {
        let total: SimTime = (1..=4).map(|i| SimTime::from_secs(i as f64)).sum();
        assert_eq!(total.as_secs(), 10.0);
    }

    #[test]
    fn display_picks_sensible_units() {
        assert_eq!(format!("{}", SimTime::from_secs(1.5)), "1.500s");
        assert_eq!(format!("{}", SimTime::from_millis(2.0)), "2.000ms");
        assert_eq!(format!("{}", SimTime::from_micros(7.0)), "7.000us");
        assert_eq!(format!("{}", SimTime::from_nanos(12.0)), "12.0ns");
    }

    #[test]
    fn is_zero() {
        assert!(SimTime::ZERO.is_zero());
        assert!(!SimTime::from_secs(1e-12).is_zero());
    }
}
