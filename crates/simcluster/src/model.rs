//! Machine model: compute throughput and interconnect characteristics.
//!
//! The paper's testbed is a 128-node Grid'5000 cluster (2.53 GHz 4-core Intel
//! Xeon, 16 GB per node) with InfiniBand 20G.  [`MachineModel::grid5000_ib20g`]
//! encodes a calibration of that machine; the individual pieces
//! ([`NetworkModel`], [`ComputeModel`]) can be swapped to run sensitivity
//! sweeps (see the `ablation_bandwidth` bench).
//!
//! Compute time follows a simple roofline: a kernel that performs `flops`
//! floating-point operations while moving `mem_bytes` to/from memory takes
//! `max(flops / flops_per_s, mem_bytes / mem_bandwidth)` seconds.  For the
//! memory-bound kernels of the paper (waxpby, ddot, sparsemv, stencils) the
//! memory term dominates, which is exactly what makes waxpby a bad candidate
//! for intra-parallelization (its update is as large as its memory traffic)
//! and ddot a perfect one (its update is a single scalar).

use crate::time::SimTime;
use serde::{Deserialize, Serialize};

/// Point-to-point link model: `transfer_time = latency + bytes / bandwidth`
/// plus a fixed per-message CPU overhead charged to the sender.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct NetworkModel {
    /// One-way message latency in seconds.
    pub latency_s: f64,
    /// Sustained bandwidth in bytes per second.
    pub bandwidth_bytes_per_s: f64,
    /// CPU overhead charged to the sender per message (the LogP `o` term).
    pub send_overhead_s: f64,
    /// CPU overhead charged to the receiver per message.
    pub recv_overhead_s: f64,
}

impl NetworkModel {
    /// InfiniBand 20G (4X DDR): ~1.8 GB/s sustained, ~2.5 us latency.
    pub fn infiniband_20g() -> Self {
        NetworkModel {
            latency_s: 2.5e-6,
            bandwidth_bytes_per_s: 1.8e9,
            send_overhead_s: 0.4e-6,
            recv_overhead_s: 0.4e-6,
        }
    }

    /// 10 Gb Ethernet: ~1.1 GB/s, ~12 us latency.
    pub fn ethernet_10g() -> Self {
        NetworkModel {
            latency_s: 12e-6,
            bandwidth_bytes_per_s: 1.1e9,
            send_overhead_s: 1.5e-6,
            recv_overhead_s: 1.5e-6,
        }
    }

    /// Shared-memory transfer between two processes on the same node.
    pub fn intra_node() -> Self {
        NetworkModel {
            latency_s: 0.3e-6,
            bandwidth_bytes_per_s: 6.0e9,
            send_overhead_s: 0.1e-6,
            recv_overhead_s: 0.1e-6,
        }
    }

    /// An idealized, infinitely fast network.  Useful in unit tests that only
    /// care about protocol correctness, not timing.
    pub fn ideal() -> Self {
        NetworkModel {
            latency_s: 0.0,
            bandwidth_bytes_per_s: f64::INFINITY,
            send_overhead_s: 0.0,
            recv_overhead_s: 0.0,
        }
    }

    /// Returns a copy of this model with a different bandwidth (bytes/s).
    /// Used by the bandwidth-sensitivity ablation.
    pub fn with_bandwidth(mut self, bytes_per_s: f64) -> Self {
        self.bandwidth_bytes_per_s = bytes_per_s;
        self
    }

    /// Returns a copy of this model with a different latency (seconds).
    pub fn with_latency(mut self, latency_s: f64) -> Self {
        self.latency_s = latency_s;
        self
    }

    /// Wire time for a message of `bytes` bytes (latency + serialization),
    /// excluding sender/receiver CPU overheads.
    pub fn wire_time(&self, bytes: usize) -> SimTime {
        let ser = if self.bandwidth_bytes_per_s.is_finite() && self.bandwidth_bytes_per_s > 0.0 {
            bytes as f64 / self.bandwidth_bytes_per_s
        } else {
            0.0
        };
        SimTime::from_secs(self.latency_s + ser)
    }

    /// Time the sender's CPU is busy injecting a message of `bytes` bytes.
    /// The sender NIC serializes back-to-back sends, so this includes the
    /// serialization term (bytes / bandwidth) in addition to the fixed
    /// overhead; latency is *not* charged to the sender.
    pub fn sender_occupancy(&self, bytes: usize) -> SimTime {
        let ser = if self.bandwidth_bytes_per_s.is_finite() && self.bandwidth_bytes_per_s > 0.0 {
            bytes as f64 / self.bandwidth_bytes_per_s
        } else {
            0.0
        };
        SimTime::from_secs(self.send_overhead_s + ser)
    }

    /// Fixed CPU overhead charged to the receiver when a message completes.
    pub fn receiver_overhead(&self) -> SimTime {
        SimTime::from_secs(self.recv_overhead_s)
    }
}

impl Default for NetworkModel {
    fn default() -> Self {
        NetworkModel::infiniband_20g()
    }
}

/// Per-core compute model (roofline).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ComputeModel {
    /// Peak achievable floating-point rate per core, in flop/s.
    pub flops_per_s: f64,
    /// Sustained memory bandwidth available to one core, in bytes/s.
    pub mem_bandwidth_bytes_per_s: f64,
    /// Fixed cost of entering a compute region (loop setup, scheduling), s.
    pub per_region_overhead_s: f64,
}

impl ComputeModel {
    /// One core of a 2.53 GHz Nehalem-class Xeon: ~2 flop/cycle sustained on
    /// these memory-bound kernels and ~3.2 GB/s of per-core STREAM bandwidth
    /// when all four cores are active.
    pub fn xeon_2_53ghz() -> Self {
        ComputeModel {
            flops_per_s: 5.0e9,
            mem_bandwidth_bytes_per_s: 3.2e9,
            per_region_overhead_s: 0.5e-6,
        }
    }

    /// An idealized infinitely fast CPU (for protocol-only tests).
    pub fn ideal() -> Self {
        ComputeModel {
            flops_per_s: f64::INFINITY,
            mem_bandwidth_bytes_per_s: f64::INFINITY,
            per_region_overhead_s: 0.0,
        }
    }

    /// Roofline time for a region with the given flop count and memory
    /// traffic (bytes read + written).
    pub fn region_time(&self, flops: f64, mem_bytes: f64) -> SimTime {
        let t_flop = if self.flops_per_s.is_finite() && self.flops_per_s > 0.0 {
            flops / self.flops_per_s
        } else {
            0.0
        };
        let t_mem =
            if self.mem_bandwidth_bytes_per_s.is_finite() && self.mem_bandwidth_bytes_per_s > 0.0 {
                mem_bytes / self.mem_bandwidth_bytes_per_s
            } else {
                0.0
            };
        SimTime::from_secs(self.per_region_overhead_s + t_flop.max(t_mem))
    }

    /// Time to perform a plain memory copy of `bytes` bytes (used for the
    /// inout snapshot overhead of Section III-B2).
    pub fn memcpy_time(&self, bytes: usize) -> SimTime {
        if self.mem_bandwidth_bytes_per_s.is_finite() && self.mem_bandwidth_bytes_per_s > 0.0 {
            // A copy reads and writes every byte.
            SimTime::from_secs(2.0 * bytes as f64 / self.mem_bandwidth_bytes_per_s)
        } else {
            SimTime::ZERO
        }
    }
}

impl Default for ComputeModel {
    fn default() -> Self {
        ComputeModel::xeon_2_53ghz()
    }
}

/// Full machine model: compute per core plus the two relevant interconnect
/// classes (inter-node and intra-node).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct MachineModel {
    /// Per-core compute model.
    pub compute: ComputeModel,
    /// Link used between processes placed on different nodes.
    pub inter_node: NetworkModel,
    /// Link used between processes placed on the same node.
    pub intra_node: NetworkModel,
    /// Number of cores per node (used for default process placement).
    pub cores_per_node: usize,
}

impl MachineModel {
    /// Calibration of the paper's Grid'5000 testbed (Xeon 2.53 GHz, 4 cores,
    /// InfiniBand 20G).
    pub fn grid5000_ib20g() -> Self {
        MachineModel {
            compute: ComputeModel::xeon_2_53ghz(),
            inter_node: NetworkModel::infiniband_20g(),
            intra_node: NetworkModel::intra_node(),
            cores_per_node: 4,
        }
    }

    /// Fully idealized machine (zero-cost network and compute).
    pub fn ideal() -> Self {
        MachineModel {
            compute: ComputeModel::ideal(),
            inter_node: NetworkModel::ideal(),
            intra_node: NetworkModel::ideal(),
            cores_per_node: 4,
        }
    }

    /// Machine with an ideal CPU but a realistic network; convenient for
    /// tests that want deterministic, communication-dominated timings.
    pub fn ideal_compute_ib20g() -> Self {
        MachineModel {
            compute: ComputeModel::ideal(),
            inter_node: NetworkModel::infiniband_20g(),
            intra_node: NetworkModel::intra_node(),
            cores_per_node: 4,
        }
    }

    /// Link model to use between two physical ranks given whether they share
    /// a node.
    pub fn link(&self, same_node: bool) -> &NetworkModel {
        if same_node {
            &self.intra_node
        } else {
            &self.inter_node
        }
    }
}

impl Default for MachineModel {
    fn default() -> Self {
        MachineModel::grid5000_ib20g()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn wire_time_is_latency_plus_serialization() {
        let net = NetworkModel {
            latency_s: 1e-6,
            bandwidth_bytes_per_s: 1e9,
            send_overhead_s: 0.0,
            recv_overhead_s: 0.0,
        };
        let t = net.wire_time(1_000_000);
        assert!((t.as_secs() - (1e-6 + 1e-3)).abs() < 1e-12);
    }

    #[test]
    fn ideal_network_is_free() {
        let net = NetworkModel::ideal();
        assert_eq!(net.wire_time(1 << 30), SimTime::ZERO);
        assert_eq!(net.sender_occupancy(1 << 30), SimTime::ZERO);
        assert_eq!(net.receiver_overhead(), SimTime::ZERO);
    }

    #[test]
    fn sender_occupancy_excludes_latency() {
        let net = NetworkModel {
            latency_s: 1.0,
            bandwidth_bytes_per_s: 100.0,
            send_overhead_s: 0.25,
            recv_overhead_s: 0.0,
        };
        // 50 bytes at 100 B/s = 0.5 s of serialization + 0.25 s overhead.
        assert!((net.sender_occupancy(50).as_secs() - 0.75).abs() < 1e-12);
    }

    #[test]
    fn roofline_takes_the_max_term() {
        let cm = ComputeModel {
            flops_per_s: 10.0,
            mem_bandwidth_bytes_per_s: 100.0,
            per_region_overhead_s: 0.0,
        };
        // flop-bound: 100 flops -> 10 s, 10 bytes -> 0.1 s.
        assert!((cm.region_time(100.0, 10.0).as_secs() - 10.0).abs() < 1e-12);
        // memory-bound: 1 flop -> 0.1 s, 1000 bytes -> 10 s.
        assert!((cm.region_time(1.0, 1000.0).as_secs() - 10.0).abs() < 1e-12);
    }

    #[test]
    fn memcpy_counts_read_and_write_traffic() {
        let cm = ComputeModel {
            flops_per_s: 1.0,
            mem_bandwidth_bytes_per_s: 8.0,
            per_region_overhead_s: 0.0,
        };
        assert!((cm.memcpy_time(8).as_secs() - 2.0).abs() < 1e-12);
    }

    #[test]
    fn machine_selects_link_by_locality() {
        let m = MachineModel::grid5000_ib20g();
        assert_eq!(*m.link(true), m.intra_node);
        assert_eq!(*m.link(false), m.inter_node);
    }

    #[test]
    fn calibration_orders_of_magnitude_are_sane() {
        let m = MachineModel::grid5000_ib20g();
        // 1 MB over IB should take on the order of half a millisecond.
        let t = m.inter_node.wire_time(1 << 20).as_secs();
        assert!(t > 1e-4 && t < 2e-3, "unexpected IB transfer time {t}");
        // waxpby on 1M doubles: 3 Mflop, 24 MB of traffic -> memory bound,
        // several milliseconds.
        let c = m.compute.region_time(3.0e6, 24.0e6).as_secs();
        assert!(c > 1e-3 && c < 2e-2, "unexpected compute time {c}");
    }

    #[test]
    fn with_bandwidth_and_latency_builders() {
        let net = NetworkModel::infiniband_20g()
            .with_bandwidth(2.0e9)
            .with_latency(5e-6);
        assert_eq!(net.bandwidth_bytes_per_s, 2.0e9);
        assert_eq!(net.latency_s, 5e-6);
    }
}
