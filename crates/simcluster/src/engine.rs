//! Discrete-event virtual-time scheduling core.
//!
//! [`VirtualEngine`] is the deterministic heart of the event-driven
//! execution strategy: a priority queue of *timers* keyed by virtual time
//! plus a FIFO *ready list* of tasks that can run immediately.  It knows
//! nothing about MPI, mailboxes or failure semantics — `simmpi::engine`
//! builds the cooperative rank scheduler on top of it.
//!
//! ## Determinism
//!
//! Dispatch order is a pure function of the calls made against the engine:
//!
//! * ready tasks dispatch strictly FIFO in the order they were made ready;
//! * timers dispatch in virtual-time order, ties broken by insertion order
//!   (a strictly monotone sequence number), never by heap internals;
//! * virtual *now* only moves when a timer fires, and never backwards.
//!
//! The engine is single-threaded by construction (callers wrap it in a lock
//! when driving it from a worker pool); all determinism obligations beyond
//! dispatch order — e.g. that task *results* do not depend on dispatch
//! interleaving — belong to the layer above.

use crate::time::SimTime;
use std::cmp::Reverse;
use std::collections::{BinaryHeap, VecDeque};

/// Identifier of a task registered with a [`VirtualEngine`].
///
/// The engine does not allocate ids; callers use whatever dense indexing
/// they already have (the rank number, in `simmpi`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct TaskId(pub usize);

/// What the engine hands back on [`VirtualEngine::next`]: the task to run
/// and the virtual time at which it resumes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Dispatch {
    /// The task to resume.
    pub task: TaskId,
    /// Virtual time of the resumption (the engine's `now`).
    pub at: SimTime,
}

/// Deterministic discrete-event scheduler: a virtual-time timer queue plus
/// a FIFO ready list.
///
/// ```
/// use simcluster::{SimTime, TaskId, VirtualEngine};
///
/// let mut engine = VirtualEngine::new();
/// engine.schedule_at(TaskId(0), SimTime::from_secs(2.0));
/// engine.schedule_at(TaskId(1), SimTime::from_secs(1.0));
/// engine.make_ready(TaskId(2));
///
/// // Ready tasks dispatch first (virtual now does not move)…
/// assert_eq!(engine.next().unwrap().task, TaskId(2));
/// // …then timers in virtual-time order, advancing now.
/// assert_eq!(engine.next().unwrap().task, TaskId(1));
/// assert_eq!(engine.now(), SimTime::from_secs(1.0));
/// assert_eq!(engine.next().unwrap().task, TaskId(0));
/// assert!(engine.next().is_none());
/// ```
#[derive(Debug, Default)]
pub struct VirtualEngine {
    now: SimTime,
    ready: VecDeque<TaskId>,
    /// Min-heap over `(time, seq, task)` — `seq` makes equal-time pops
    /// follow insertion order exactly.
    timers: BinaryHeap<Reverse<(SimTime, u64, TaskId)>>,
    seq: u64,
    dispatched: u64,
}

impl VirtualEngine {
    /// An empty engine at virtual time zero.
    pub fn new() -> Self {
        Self::default()
    }

    /// Current virtual time: the time of the latest timer dispatched.
    /// Monotonically non-decreasing.
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Appends `task` to the ready list: it dispatches (FIFO) before any
    /// timer fires, at the current virtual time.
    pub fn make_ready(&mut self, task: TaskId) {
        self.ready.push_back(task);
    }

    /// Schedules `task` to resume at virtual time `at`.  Scheduling in the
    /// past (`at < now`) is allowed — conservative per-rank clocks can lag
    /// global virtual time — and dispatches at the current `now` without
    /// moving time backwards.
    pub fn schedule_at(&mut self, task: TaskId, at: SimTime) {
        let seq = self.seq;
        self.seq += 1;
        self.timers.push(Reverse((at, seq, task)));
    }

    /// Pops the next task to run: the oldest ready task if any, otherwise
    /// the earliest timer (advancing virtual `now` to its time).  `None`
    /// means the engine is idle — every task is parked or finished.
    ///
    /// Deliberately iterator-shaped, but not an `Iterator` impl: dispatch
    /// consumers interleave `next` with `make_ready`/`schedule_at`, which
    /// iterator adapters would hide behind a borrow.
    #[allow(clippy::should_implement_trait)]
    pub fn next(&mut self) -> Option<Dispatch> {
        let dispatch = if let Some(task) = self.ready.pop_front() {
            Dispatch { task, at: self.now }
        } else {
            let Reverse((at, _, task)) = self.timers.pop()?;
            self.now = self.now.max(at);
            Dispatch { task, at: self.now }
        };
        self.dispatched += 1;
        Some(dispatch)
    }

    /// True if neither the ready list nor the timer queue holds a task.
    pub fn is_idle(&self) -> bool {
        self.ready.is_empty() && self.timers.is_empty()
    }

    /// Number of tasks waiting (ready + timed).
    pub fn pending(&self) -> usize {
        self.ready.len() + self.timers.len()
    }

    /// Total dispatches served so far (diagnostic; one per `next`).
    pub fn dispatched(&self) -> u64 {
        self.dispatched
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(secs: f64) -> SimTime {
        SimTime::from_secs(secs)
    }

    #[test]
    fn ready_tasks_dispatch_fifo_before_any_timer() {
        let mut e = VirtualEngine::new();
        e.schedule_at(TaskId(9), t(0.5));
        e.make_ready(TaskId(1));
        e.make_ready(TaskId(2));
        assert_eq!(
            e.next().unwrap(),
            Dispatch {
                task: TaskId(1),
                at: SimTime::ZERO
            }
        );
        assert_eq!(
            e.next().unwrap(),
            Dispatch {
                task: TaskId(2),
                at: SimTime::ZERO
            }
        );
        assert_eq!(e.next().unwrap().task, TaskId(9));
        assert_eq!(e.now(), t(0.5));
    }

    #[test]
    fn timers_fire_in_time_order_with_insertion_tie_break() {
        let mut e = VirtualEngine::new();
        e.schedule_at(TaskId(3), t(2.0));
        e.schedule_at(TaskId(1), t(1.0));
        e.schedule_at(TaskId(2), t(1.0)); // same time, inserted later
        let order: Vec<TaskId> = std::iter::from_fn(|| e.next().map(|d| d.task)).collect();
        assert_eq!(order, vec![TaskId(1), TaskId(2), TaskId(3)]);
        assert_eq!(e.now(), t(2.0));
        assert!(e.is_idle());
    }

    #[test]
    fn now_never_moves_backwards() {
        let mut e = VirtualEngine::new();
        e.schedule_at(TaskId(0), t(5.0));
        assert_eq!(e.next().unwrap().at, t(5.0));
        // A timer in the past dispatches at the current now.
        e.schedule_at(TaskId(1), t(1.0));
        let d = e.next().unwrap();
        assert_eq!(d.task, TaskId(1));
        assert_eq!(d.at, t(5.0));
        assert_eq!(e.now(), t(5.0));
    }

    #[test]
    fn counters_track_pending_and_dispatched() {
        let mut e = VirtualEngine::new();
        assert!(e.is_idle());
        e.make_ready(TaskId(0));
        e.schedule_at(TaskId(1), t(1.0));
        assert_eq!(e.pending(), 2);
        assert!(!e.is_idle());
        e.next();
        e.next();
        assert_eq!(e.pending(), 0);
        assert_eq!(e.dispatched(), 2);
    }

    #[test]
    fn dispatch_order_is_reproducible() {
        let run = || {
            let mut e = VirtualEngine::new();
            for i in 0..100usize {
                if i % 3 == 0 {
                    e.make_ready(TaskId(i));
                } else {
                    e.schedule_at(TaskId(i), t((i % 7) as f64));
                }
            }
            std::iter::from_fn(move || e.next().map(|d| d.task)).collect::<Vec<_>>()
        };
        assert_eq!(run(), run());
    }
}
