//! Crash-stop failure injection and detection.
//!
//! The paper assumes crash-stop failures of physical processes (replicas) and
//! assumes a failure detector exists ("Failure detection is outside the scope
//! of this paper").  We implement the part the protocols need: a shared
//! [`FailureStatusBoard`] on which the injector marks processes as dead, and
//! which the runtime layers query when a receive from a dead peer must return
//! an error instead of blocking forever.
//!
//! A crashed process stops executing at the injection point; the messages it
//! sent *before* the crash remain deliverable (they were already handed to
//! the network), while nothing sent after the crash exists — this mirrors the
//! semantics the paper relies on for partially transmitted task updates.

use crate::time::SimTime;
use parking_lot::{Condvar, Mutex};
use serde::{Deserialize, Serialize};
use std::sync::Arc;

/// Liveness of one simulated physical process.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum ProcessState {
    /// The process is running normally.
    Alive,
    /// The process has crashed (crash-stop).
    Failed,
}

/// A recorded failure.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct FailureEvent {
    /// Physical rank that failed.
    pub rank: usize,
    /// Virtual time at which the failure was injected (as observed by the
    /// failing process's own clock).
    pub time: SimTime,
}

#[derive(Debug)]
struct Board {
    states: Vec<ProcessState>,
    events: Vec<FailureEvent>,
    /// Monotonic counter bumped at every failure; cheap "something changed"
    /// check for detectors.
    epoch: u64,
}

/// A callback invoked (outside the board lock) every time the failure state
/// changes.  Registered by blocking subsystems — the message router wires one
/// up so that a crash signaled on the board immediately wakes every blocked
/// receiver, with no polling.
pub type FailureWaker = Arc<dyn Fn() + Send + Sync>;

/// Shared, thread-safe view of which physical processes have crashed.
///
/// Cloning the board is cheap (it is an `Arc`); all clones observe the same
/// state.
#[derive(Clone)]
pub struct FailureStatusBoard {
    inner: Arc<(Mutex<Board>, Condvar)>,
    wakers: Arc<Mutex<Vec<FailureWaker>>>,
}

impl std::fmt::Debug for FailureStatusBoard {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("FailureStatusBoard")
            .field("board", &*self.inner.0.lock())
            .finish_non_exhaustive()
    }
}

impl FailureStatusBoard {
    /// Creates a board for `num_procs` processes, all alive.
    pub fn new(num_procs: usize) -> Self {
        FailureStatusBoard {
            inner: Arc::new((
                Mutex::new(Board {
                    states: vec![ProcessState::Alive; num_procs],
                    events: Vec::new(),
                    epoch: 0,
                }),
                Condvar::new(),
            )),
            wakers: Arc::new(Mutex::new(Vec::new())),
        }
    }

    /// Registers a waker called after every state change (failure or
    /// recovery), outside the board lock.  Wakers must be cheap and must not
    /// block on the board themselves.
    pub fn register_waker(&self, waker: FailureWaker) {
        self.wakers.lock().push(waker);
    }

    fn wake_all(&self) {
        // Snapshot under the lock, invoke outside it: a waker typically
        // grabs other locks (mailboxes) and must not nest inside ours.
        let wakers: Vec<FailureWaker> = self.wakers.lock().clone();
        for w in &wakers {
            w();
        }
    }

    /// Number of processes tracked.
    pub fn num_procs(&self) -> usize {
        self.inner.0.lock().states.len()
    }

    /// Marks `rank` as failed at virtual time `time`.  Idempotent: marking an
    /// already-failed process again is a no-op and does not bump the epoch.
    pub fn mark_failed(&self, rank: usize, time: SimTime) {
        {
            let (lock, cvar) = &*self.inner;
            let mut board = lock.lock();
            if board.states[rank] == ProcessState::Failed {
                return;
            }
            board.states[rank] = ProcessState::Failed;
            board.events.push(FailureEvent { rank, time });
            board.epoch += 1;
            cvar.notify_all();
        }
        self.wake_all();
    }

    /// Marks `rank` as alive again (replica restart — the paper's discussion
    /// section points out that restarting failed replicas quickly matters).
    pub fn mark_recovered(&self, rank: usize) {
        {
            let (lock, cvar) = &*self.inner;
            let mut board = lock.lock();
            if board.states[rank] == ProcessState::Alive {
                return;
            }
            board.states[rank] = ProcessState::Alive;
            board.epoch += 1;
            cvar.notify_all();
        }
        self.wake_all();
    }

    /// Liveness of `rank`.
    pub fn state_of(&self, rank: usize) -> ProcessState {
        self.inner.0.lock().states[rank]
    }

    /// True if `rank` has crashed.
    pub fn is_failed(&self, rank: usize) -> bool {
        self.state_of(rank) == ProcessState::Failed
    }

    /// All ranks currently alive.
    pub fn alive_ranks(&self) -> Vec<usize> {
        self.inner
            .0
            .lock()
            .states
            .iter()
            .enumerate()
            .filter_map(|(r, &s)| (s == ProcessState::Alive).then_some(r))
            .collect()
    }

    /// All ranks currently failed.
    pub fn failed_ranks(&self) -> Vec<usize> {
        self.inner
            .0
            .lock()
            .states
            .iter()
            .enumerate()
            .filter_map(|(r, &s)| (s == ProcessState::Failed).then_some(r))
            .collect()
    }

    /// Complete failure history.
    pub fn events(&self) -> Vec<FailureEvent> {
        self.inner.0.lock().events.clone()
    }

    /// Current epoch (bumped on every state change).
    pub fn epoch(&self) -> u64 {
        self.inner.0.lock().epoch
    }

    /// Blocks the calling thread until the epoch differs from
    /// `observed_epoch` (i.e. until at least one failure/recovery happened
    /// after the caller last looked).  Intended for test harnesses; the
    /// protocol layers use non-blocking queries.
    pub fn wait_for_change(&self, observed_epoch: u64) {
        let (lock, cvar) = &*self.inner;
        let mut board = lock.lock();
        while board.epoch == observed_epoch {
            cvar.wait(&mut board);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::thread;

    #[test]
    fn everyone_starts_alive() {
        let b = FailureStatusBoard::new(4);
        assert_eq!(b.num_procs(), 4);
        assert_eq!(b.alive_ranks(), vec![0, 1, 2, 3]);
        assert!(b.failed_ranks().is_empty());
        assert_eq!(b.epoch(), 0);
    }

    #[test]
    fn mark_failed_is_visible_and_idempotent() {
        let b = FailureStatusBoard::new(3);
        b.mark_failed(1, SimTime::from_secs(2.0));
        assert!(b.is_failed(1));
        assert!(!b.is_failed(0));
        assert_eq!(b.epoch(), 1);
        b.mark_failed(1, SimTime::from_secs(3.0));
        assert_eq!(b.epoch(), 1, "re-marking must not bump the epoch");
        assert_eq!(b.events().len(), 1);
        assert_eq!(b.failed_ranks(), vec![1]);
    }

    #[test]
    fn recovery_restores_liveness() {
        let b = FailureStatusBoard::new(2);
        b.mark_failed(0, SimTime::ZERO);
        assert!(b.is_failed(0));
        b.mark_recovered(0);
        assert!(!b.is_failed(0));
        assert_eq!(b.epoch(), 2);
        // Recovering an alive process is a no-op.
        b.mark_recovered(0);
        assert_eq!(b.epoch(), 2);
    }

    #[test]
    fn clones_share_state() {
        let a = FailureStatusBoard::new(2);
        let b = a.clone();
        a.mark_failed(1, SimTime::ZERO);
        assert!(b.is_failed(1));
    }

    #[test]
    fn wait_for_change_wakes_on_failure() {
        let b = FailureStatusBoard::new(2);
        let observed = b.epoch();
        let waiter = {
            let b = b.clone();
            thread::spawn(move || {
                b.wait_for_change(observed);
                b.failed_ranks()
            })
        };
        // Give the waiter a moment to block, then inject.
        thread::sleep(std::time::Duration::from_millis(10));
        b.mark_failed(0, SimTime::from_secs(1.0));
        let failed = waiter.join().expect("waiter thread panicked");
        assert_eq!(failed, vec![0]);
    }

    #[test]
    fn events_record_time() {
        let b = FailureStatusBoard::new(2);
        b.mark_failed(1, SimTime::from_secs(4.5));
        let ev = b.events();
        assert_eq!(ev.len(), 1);
        assert_eq!(ev[0].rank, 1);
        assert_eq!(ev[0].time.as_secs(), 4.5);
    }
}
