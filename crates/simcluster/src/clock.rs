//! Per-process virtual clocks.
//!
//! Every simulated physical process owns a [`VirtualClock`].  Compute regions
//! advance it by their modeled duration; the message-passing layer advances
//! it according to the LogP-style rules implemented in `simmpi`:
//!
//! * a send charges the sender its *occupancy* (overhead + serialization) and
//!   stamps the message with the sender's clock at the moment injection
//!   finished;
//! * a receive completes no earlier than `max(receiver clock, message
//!   arrival)`, where arrival = stamp + latency + size/bandwidth.
//!
//! For deterministic message-passing programs this conservative rule yields
//! the same virtual timeline as a full discrete-event simulation, while
//! letting every process run freely on its own OS thread.

use crate::time::SimTime;
use serde::{Deserialize, Serialize};

/// A monotonically non-decreasing virtual clock owned by one simulated
/// process.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct VirtualClock {
    now: SimTime,
    /// Total time attributed to compute regions.
    compute: SimTime,
    /// Total time attributed to communication (sender occupancy + waiting).
    comm: SimTime,
    /// Total time spent blocked waiting for messages that had not yet
    /// arrived (a subset of `comm`).
    wait: SimTime,
}

impl VirtualClock {
    /// A clock starting at time zero.
    pub fn new() -> Self {
        Self::default()
    }

    /// Current virtual time.
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Advances the clock by `dt`, attributing the time to computation.
    pub fn advance_compute(&mut self, dt: SimTime) {
        self.now += dt;
        self.compute += dt;
    }

    /// Advances the clock by `dt`, attributing the time to communication
    /// overhead (e.g. sender occupancy, receiver overhead).
    pub fn advance_comm(&mut self, dt: SimTime) {
        self.now += dt;
        self.comm += dt;
    }

    /// Advances the clock to `target` if it is in the future, attributing the
    /// jump to waiting for communication.  Returns the amount of time waited.
    pub fn wait_until(&mut self, target: SimTime) -> SimTime {
        if target > self.now {
            let waited = target - self.now;
            self.now = target;
            self.comm += waited;
            self.wait += waited;
            waited
        } else {
            SimTime::ZERO
        }
    }

    /// Advances the clock by `dt` without attributing it to either bucket
    /// (used for application phases we explicitly do not break down).
    pub fn advance_other(&mut self, dt: SimTime) {
        self.now += dt;
    }

    /// Total virtual time attributed to computation.
    pub fn compute_time(&self) -> SimTime {
        self.compute
    }

    /// Total virtual time attributed to communication (incl. waiting).
    pub fn comm_time(&self) -> SimTime {
        self.comm
    }

    /// Virtual time spent blocked waiting for remote progress.
    pub fn wait_time(&self) -> SimTime {
        self.wait
    }

    /// Resets the breakdown counters (but not the current time).  Useful when
    /// an application wants per-phase breakdowns.
    pub fn reset_breakdown(&mut self) {
        self.compute = SimTime::ZERO;
        self.comm = SimTime::ZERO;
        self.wait = SimTime::ZERO;
    }

    /// Takes a snapshot of the current time, used to measure a region.
    pub fn mark(&self) -> SimTime {
        self.now
    }

    /// Time elapsed since a snapshot obtained from [`VirtualClock::mark`].
    pub fn since(&self, mark: SimTime) -> SimTime {
        self.now.saturating_sub(mark)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn starts_at_zero() {
        let c = VirtualClock::new();
        assert_eq!(c.now(), SimTime::ZERO);
        assert_eq!(c.compute_time(), SimTime::ZERO);
        assert_eq!(c.comm_time(), SimTime::ZERO);
    }

    #[test]
    fn advance_attributes_time_to_buckets() {
        let mut c = VirtualClock::new();
        c.advance_compute(SimTime::from_secs(2.0));
        c.advance_comm(SimTime::from_secs(1.0));
        assert_eq!(c.now().as_secs(), 3.0);
        assert_eq!(c.compute_time().as_secs(), 2.0);
        assert_eq!(c.comm_time().as_secs(), 1.0);
        assert_eq!(c.wait_time(), SimTime::ZERO);
    }

    #[test]
    fn wait_until_only_moves_forward() {
        let mut c = VirtualClock::new();
        c.advance_compute(SimTime::from_secs(5.0));
        let waited = c.wait_until(SimTime::from_secs(3.0));
        assert_eq!(waited, SimTime::ZERO);
        assert_eq!(c.now().as_secs(), 5.0);
        let waited = c.wait_until(SimTime::from_secs(7.5));
        assert_eq!(waited.as_secs(), 2.5);
        assert_eq!(c.now().as_secs(), 7.5);
        assert_eq!(c.wait_time().as_secs(), 2.5);
        // waiting counts as communication time
        assert_eq!(c.comm_time().as_secs(), 2.5);
    }

    #[test]
    fn mark_and_since_measure_regions() {
        let mut c = VirtualClock::new();
        let m = c.mark();
        c.advance_compute(SimTime::from_secs(1.0));
        c.advance_comm(SimTime::from_secs(0.5));
        assert_eq!(c.since(m).as_secs(), 1.5);
    }

    #[test]
    fn reset_breakdown_keeps_now() {
        let mut c = VirtualClock::new();
        c.advance_compute(SimTime::from_secs(1.0));
        c.reset_breakdown();
        assert_eq!(c.now().as_secs(), 1.0);
        assert_eq!(c.compute_time(), SimTime::ZERO);
    }
}
