//! Lightweight shared counters for instrumentation.
//!
//! The runtime layers (MPI, replication, intra-parallelization) count
//! messages, bytes, task executions, re-executions after failures, etc.  A
//! [`StatsRegistry`] is a small named-counter registry that can be cloned
//! across threads; counters are plain relaxed atomics because they are only
//! read after the simulated run has completed.

use parking_lot::RwLock;
use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// A single named counter.
#[derive(Debug, Default)]
pub struct Counter {
    value: AtomicU64,
}

impl Counter {
    /// Adds `n` to the counter.
    pub fn add(&self, n: u64) {
        self.value.fetch_add(n, Ordering::Relaxed);
    }

    /// Increments the counter by one.
    pub fn incr(&self) {
        self.add(1);
    }

    /// Current value.
    pub fn get(&self) -> u64 {
        self.value.load(Ordering::Relaxed)
    }
}

/// A registry of named counters shared between the threads of a simulation.
#[derive(Debug, Clone, Default)]
pub struct StatsRegistry {
    counters: Arc<RwLock<BTreeMap<String, Arc<Counter>>>>,
}

impl StatsRegistry {
    /// Creates an empty registry.
    pub fn new() -> Self {
        Self::default()
    }

    /// Returns the counter named `name`, creating it on first use.
    pub fn counter(&self, name: &str) -> Arc<Counter> {
        if let Some(c) = self.counters.read().get(name) {
            return Arc::clone(c);
        }
        let mut w = self.counters.write();
        Arc::clone(w.entry(name.to_string()).or_default())
    }

    /// Convenience: adds `n` to the counter named `name`.
    pub fn add(&self, name: &str, n: u64) {
        self.counter(name).add(n);
    }

    /// Convenience: increments the counter named `name`.
    pub fn incr(&self, name: &str) {
        self.counter(name).incr();
    }

    /// Current value of the counter named `name` (0 if it was never touched).
    pub fn get(&self, name: &str) -> u64 {
        self.counters.read().get(name).map_or(0, |c| c.get())
    }

    /// Snapshot of all counters, sorted by name.
    pub fn snapshot(&self) -> Vec<(String, u64)> {
        self.counters
            .read()
            .iter()
            .map(|(k, v)| (k.clone(), v.get()))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::thread;

    #[test]
    fn counters_accumulate() {
        let s = StatsRegistry::new();
        s.incr("messages");
        s.add("messages", 4);
        s.add("bytes", 128);
        assert_eq!(s.get("messages"), 5);
        assert_eq!(s.get("bytes"), 128);
        assert_eq!(s.get("missing"), 0);
    }

    #[test]
    fn snapshot_is_sorted_by_name() {
        let s = StatsRegistry::new();
        s.incr("zeta");
        s.incr("alpha");
        let snap = s.snapshot();
        assert_eq!(snap[0].0, "alpha");
        assert_eq!(snap[1].0, "zeta");
    }

    #[test]
    fn clones_share_counters_across_threads() {
        let s = StatsRegistry::new();
        let mut handles = Vec::new();
        for _ in 0..4 {
            let s = s.clone();
            handles.push(thread::spawn(move || {
                for _ in 0..1000 {
                    s.incr("ops");
                }
            }));
        }
        for h in handles {
            h.join().expect("stats thread panicked");
        }
        assert_eq!(s.get("ops"), 4000);
    }

    #[test]
    fn counter_handle_can_be_cached() {
        let s = StatsRegistry::new();
        let c = s.counter("cached");
        c.add(7);
        assert_eq!(s.get("cached"), 7);
    }
}
