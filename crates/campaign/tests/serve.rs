//! End-to-end tests of the file-queue sweep service: submit → serve →
//! results, warm re-submission as pure cache replay, and concurrent
//! submitters against one server.

use apps::{AppId, ExperimentScale};
use campaign::report::v1;
use campaign::spec::RunSpec;
use campaign::{serve, FailureSpec, Json, RunCache, ServeOptions, Spool};
use ipr_core::SchedulerKind;
use replication::ExecutionMode;
use std::sync::Arc;
use std::time::Duration;

struct TempTree(std::path::PathBuf);

impl TempTree {
    fn new(tag: &str) -> Self {
        let dir = std::env::temp_dir().join(format!("ipr-serve-test-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        TempTree(dir)
    }
    fn path(&self, sub: &str) -> std::path::PathBuf {
        self.0.join(sub)
    }
}

impl Drop for TempTree {
    fn drop(&mut self) {
        let _ = std::fs::remove_dir_all(&self.0);
    }
}

fn drain_options() -> ServeOptions {
    ServeOptions {
        workers: 4,
        drain: true,
        poll: Duration::from_millis(5),
    }
}

fn mini_specs(seeds: &[u64]) -> Vec<RunSpec> {
    seeds
        .iter()
        .enumerate()
        .map(|(i, &seed)| RunSpec {
            index: i,
            app: AppId::Hpccg,
            scale: ExperimentScale::Tiny,
            mode: ExecutionMode::IntraParallel { degree: 2 },
            scheduler: SchedulerKind::StaticBlock,
            failure: FailureSpec::None,
            seed,
            ckpt: None,
        })
        .collect()
}

#[test]
fn submitted_jobs_are_served_with_streaming_results() {
    let tree = TempTree::new("basic");
    let spool = Spool::open(tree.path("spool")).unwrap();
    let cache = Arc::new(RunCache::open(tree.path("cache")).unwrap());
    let specs = mini_specs(&[43, 44, 45]);
    spool.submit_specs("first", &specs).unwrap();

    let summaries = serve(&spool, &cache, &drain_options()).unwrap();
    assert_eq!(summaries.len(), 1);
    let s = &summaries[0];
    assert_eq!(
        (s.id.as_str(), s.runs, s.executed, s.cache_hits),
        ("first", 3, 3, 0)
    );
    assert_eq!(s.error, None);

    // The final report is a valid v1 envelope in spec order.
    let text = std::fs::read_to_string(spool.result_path("first")).unwrap();
    let doc = Json::parse(&text).unwrap();
    assert_eq!(v1::document_schema(&doc), Some(v1::SCHEMA));
    let report = v1::Report::from_json(&doc).unwrap();
    assert_eq!(report.campaign, "first");
    let ids: Vec<_> = report.runs.iter().map(|r| r.id.clone()).collect();
    let expected: Vec<_> = specs.iter().map(RunSpec::id).collect();
    assert_eq!(ids, expected);

    // The JSONL stream has one parsable line per run, each indexed, none
    // cached on this cold pass.
    let stream = std::fs::read_to_string(spool.stream_path("first")).unwrap();
    let lines: Vec<Json> = stream.lines().map(|l| Json::parse(l).unwrap()).collect();
    assert_eq!(lines.len(), specs.len());
    let mut indices: Vec<usize> = lines
        .iter()
        .map(|l| l.get("index").and_then(Json::as_f64).unwrap() as usize)
        .collect();
    indices.sort_unstable();
    assert_eq!(indices, vec![0, 1, 2]);
    assert!(lines
        .iter()
        .all(|l| l.get("cached").and_then(Json::as_bool) == Some(false)));

    // Status reflects the finished job.
    let status = spool.status().unwrap();
    assert!(status.queued.is_empty() && status.active.is_empty());
    assert_eq!(status.done.len(), 1);
    assert_eq!(status.done[0], *s);
}

#[test]
fn warm_resubmission_replays_the_cache_byte_identically() {
    let tree = TempTree::new("warm");
    let spool = Spool::open(tree.path("spool")).unwrap();
    let cache = Arc::new(RunCache::open(tree.path("cache")).unwrap());

    spool.submit_grid("cold", "smoke").unwrap();
    let cold = serve(&spool, &cache, &drain_options()).unwrap();
    assert_eq!(cold.len(), 1);
    assert_eq!(cold[0].cache_hits, 0);
    assert!(cold[0].executed > 0);

    spool.submit_grid("warm", "smoke").unwrap();
    let warm = serve(&spool, &cache, &drain_options()).unwrap();
    assert_eq!(warm.len(), 1);
    assert_eq!(
        (warm[0].executed, warm[0].cache_hits),
        (0, cold[0].runs),
        "warm re-sweep must be 100% cache hits"
    );

    // Byte-identical final reports — wall clocks included, because hits
    // replay the stored records verbatim.
    let cold_text = std::fs::read_to_string(spool.result_path("cold")).unwrap();
    let warm_text = std::fs::read_to_string(spool.result_path("warm")).unwrap();
    assert_eq!(cold_text, warm_text);

    // Every streamed line of the warm pass is marked cached.
    let stream = std::fs::read_to_string(spool.stream_path("warm")).unwrap();
    assert!(stream.lines().all(|l| Json::parse(l)
        .unwrap()
        .get("cached")
        .and_then(Json::as_bool)
        == Some(true)));
}

#[test]
fn concurrent_submitters_get_stable_aggregate_output() {
    let tree = TempTree::new("concurrent");
    let spool = Arc::new(Spool::open(tree.path("spool")).unwrap());
    let cache = Arc::new(RunCache::open(tree.path("cache")).unwrap());

    // A resident server in the background...
    let server = {
        let spool = Arc::clone(&spool);
        let cache = Arc::clone(&cache);
        std::thread::spawn(move || {
            serve(
                &spool,
                &cache,
                &ServeOptions {
                    workers: 4,
                    drain: false,
                    poll: Duration::from_millis(5),
                },
            )
            .unwrap()
        })
    };

    // ...while N clients submit concurrently: four distinct jobs, every
    // one carrying the *same* spec list.
    let specs = mini_specs(&[50, 51]);
    std::thread::scope(|scope| {
        for client in 0..4 {
            let spool = Arc::clone(&spool);
            let specs = specs.clone();
            scope.spawn(move || {
                spool
                    .submit_specs(&format!("client{client}"), &specs)
                    .unwrap();
            });
        }
    });

    // Wait for all four to finish, then stop the server.
    let deadline = std::time::Instant::now() + Duration::from_secs(120);
    loop {
        let status = spool.status().unwrap();
        if status.done.len() == 4 {
            break;
        }
        assert!(
            std::time::Instant::now() < deadline,
            "server did not finish 4 jobs in time: {status:?}"
        );
        std::thread::sleep(Duration::from_millis(10));
    }
    spool.request_stop().unwrap();
    let summaries = server.join().unwrap();
    assert_eq!(summaries.len(), 4);

    // Aggregate accounting: every job produced every run, and each run
    // executed either fresh or from cache — never neither.
    for s in &summaries {
        assert_eq!(s.error, None);
        assert_eq!(s.runs, specs.len());
        assert_eq!(s.executed + s.cache_hits, s.runs);
    }
    // The simulation executed each distinct spec at least once overall.
    let executed_total: usize = summaries.iter().map(|s| s.executed).sum();
    assert!(executed_total >= specs.len());

    // Stable aggregate output: all four reports agree byte-for-byte on the
    // deterministic payload (wall clocks may differ between jobs that
    // raced to execute the same spec, so compare stripped).
    let stripped = |id: &str| {
        let text = std::fs::read_to_string(spool.result_path(id)).unwrap();
        let mut doc = Json::parse(&text).unwrap();
        campaign::strip_informational(&mut doc);
        // The campaign name is the job id by design; normalize it away.
        if let Json::Obj(fields) = &mut doc {
            fields.retain(|(k, _)| k != "campaign");
        }
        doc.render()
    };
    let first = stripped("client0");
    for client in 1..4 {
        assert_eq!(
            first,
            stripped(&format!("client{client}")),
            "client{client}"
        );
    }
}

#[test]
fn bad_jobs_fail_with_a_recorded_error() {
    let tree = TempTree::new("bad");
    let spool = Spool::open(tree.path("spool")).unwrap();
    let cache = Arc::new(RunCache::open(tree.path("cache")).unwrap());
    spool.submit_grid("oops", "no-such-grid").unwrap();
    let summaries = serve(&spool, &cache, &drain_options()).unwrap();
    assert_eq!(summaries.len(), 1);
    let error = summaries[0].error.as_deref().unwrap();
    assert!(error.contains("no-such-grid"), "{error}");
    // The failure is durable: visible in a fresh status scan.
    let status = spool.status().unwrap();
    assert_eq!(status.done.len(), 1);
    assert!(status.done[0].error.is_some());
    // Duplicate ids are rejected at submission time.
    let err = spool.submit_grid("oops", "smoke").unwrap_err();
    assert_eq!(err.kind(), std::io::ErrorKind::AlreadyExists);
}
