//! Property test: the facade's typed `Experiment` and the campaign's grid
//! form `RunSpec` are two lossless views of the same axes.

use apps::{AppId, ExperimentScale};
use campaign::spec::RunSpec;
use intra_replication::{CheckpointPlan, FailurePlan};
use ipr_core::SchedulerKind;
use proptest::prelude::*;
use replication::{ExecutionMode, FailureRate};

const SCALES: [ExperimentScale; 3] = [
    ExperimentScale::Full,
    ExperimentScale::Small,
    ExperimentScale::Tiny,
];

proptest! {
    #[test]
    fn experiment_round_trips_through_run_spec(
        app_i in 0usize..AppId::ALL.len(),
        scale_i in 0usize..SCALES.len(),
        mode_i in 0usize..3,
        degree in 2usize..5,
        sched_i in 0usize..SchedulerKind::ALL.len(),
        fail_i in 0usize..8,
        ckpt_i in 0usize..4,
        seed in 0u64..10_000,
        index in 0usize..64,
    ) {
        let mode = match mode_i {
            0 => ExecutionMode::Native,
            1 => ExecutionMode::Replicated { degree },
            _ => ExecutionMode::IntraParallel { degree },
        };
        let failure = match fail_i {
            0 => FailurePlan::None,
            1 => FailurePlan::poisson(0.5),
            2 => FailurePlan::poisson_process(
                FailureRate::Ramp { start: 0.0, end: 2.0 },
                2.0,
            ),
            3 => FailurePlan::poisson_process(
                FailureRate::Burst { base: 0.1, peak: 4.0, center: 0.5, width: 0.25 },
                1.5,
            ),
            4 => FailurePlan::poisson_process(FailureRate::weibull_hpc(360.0), 1.0),
            5 => FailurePlan::poisson_process(
                // Negative log-space location: the label embeds `--`.
                FailureRate::LogNormal { mu: -0.5, sigma: 1.25 },
                2.0,
            ),
            6 => FailurePlan::node_failures(FailureRate::Constant(1.0)),
            _ => FailurePlan::rack_failures(
                4,
                FailureRate::Weibull { shape: 0.7, scale_s: 90.0 },
            ),
        };
        // Exact-decimal costs so the label (which prints the floats) parses
        // back to the identical plan.
        let ckpt = match ckpt_i {
            0 => None,
            1 => Some(CheckpointPlan::fixed(0.05, 0.005, 0.01)),
            2 => Some(CheckpointPlan::young(0.005, 0.01)),
            _ => Some(CheckpointPlan::daly(0.0625, 0.125)),
        };
        let spec = RunSpec {
            index,
            app: AppId::ALL[app_i],
            scale: SCALES[scale_i],
            mode,
            scheduler: SchedulerKind::ALL[sched_i],
            failure,
            seed,
            ckpt,
        };

        // Grid form -> typed experiment -> grid form is the identity.
        let experiment = spec.experiment().unwrap();
        prop_assert_eq!(RunSpec::from_experiment(index, &experiment), spec.clone());

        // Typed experiment -> grid form -> typed experiment is too (the
        // index is campaign bookkeeping, not an experiment axis).
        let regrid = RunSpec::from_experiment(0, &experiment);
        prop_assert_eq!(regrid.experiment().unwrap(), experiment.clone());

        // The run id is a pure function of the axes, not of the index.
        prop_assert_eq!(spec.id(), RunSpec::from_experiment(7, &experiment).id());

        // The experiment agrees with the spec on the derived quantities the
        // runner reports.
        prop_assert_eq!(experiment.procs(), spec.procs());
    }
}
