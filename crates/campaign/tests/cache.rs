//! Run-cache correctness: warm hits are byte-identical to the cold runs
//! that populated them, the fingerprint is sensitive to every `RunSpec`
//! axis, and stale entries (schema bump, corruption) read as misses.

use apps::{AppId, ExperimentScale};
use campaign::cache::{fingerprint, fingerprint_material, run_specs_cached, RunCache};
use campaign::spec::RunSpec;
use campaign::{strip_informational, CampaignGrid, CampaignReport, FailureSpec, Json};
use intra_replication::FailurePlan;
use ipr_core::SchedulerKind;
use proptest::prelude::*;
use replication::{ExecutionMode, FailureRate};
use std::sync::Arc;

fn temp_dir(tag: &str) -> std::path::PathBuf {
    let dir = std::env::temp_dir().join(format!("ipr-cache-test-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

fn mini_specs() -> Vec<RunSpec> {
    // A 4-run slice of the smoke axes: native and intra2, two seeds.
    let mut specs = Vec::new();
    for (i, (mode, seed)) in [
        (ExecutionMode::Native, 43),
        (ExecutionMode::Native, 44),
        (ExecutionMode::IntraParallel { degree: 2 }, 43),
        (ExecutionMode::IntraParallel { degree: 2 }, 44),
    ]
    .into_iter()
    .enumerate()
    {
        specs.push(RunSpec {
            index: i,
            app: AppId::Hpccg,
            scale: ExperimentScale::Tiny,
            mode,
            scheduler: SchedulerKind::StaticBlock,
            failure: FailureSpec::None,
            seed,
            ckpt: None,
        });
    }
    specs
}

fn render(runs: Vec<campaign::RunResult>) -> String {
    CampaignReport {
        campaign: "mini".into(),
        scale: "tiny".into(),
        runs,
    }
    .to_json()
    .render()
}

#[test]
fn warm_hits_are_byte_identical_to_the_cold_run() {
    let dir = temp_dir("warm");
    let cache = Arc::new(RunCache::open(&dir).unwrap());
    let specs = mini_specs();

    let cold = run_specs_cached(&specs, 2, &cache);
    assert_eq!(cold.executed, specs.len());
    assert_eq!(cold.hits, 0);
    assert_eq!(cache.len(), specs.len());

    let warm = run_specs_cached(&specs, 1, &cache);
    assert_eq!(warm.executed, 0, "warm re-sweep must execute nothing");
    assert_eq!(warm.hits, specs.len());

    // Full byte identity — *including* the informational wall clock,
    // because a hit replays the record stored by the cold run verbatim.
    assert_eq!(render(cold.runs), render(warm.runs));
    std::fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn cached_results_are_jobs_invariant() {
    // jobs=1 against one cache, jobs=8 against another: the deterministic
    // payload must agree (wall clocks are host noise and are stripped).
    let dir1 = temp_dir("j1");
    let dir8 = temp_dir("j8");
    let specs = mini_specs();
    let c1 = run_specs_cached(&specs, 1, &Arc::new(RunCache::open(&dir1).unwrap()));
    let c8 = run_specs_cached(&specs, 8, &Arc::new(RunCache::open(&dir8).unwrap()));
    let strip = |runs| {
        let mut doc = Json::parse(&render(runs)).unwrap();
        strip_informational(&mut doc);
        doc.render()
    };
    assert_eq!(strip(c1.runs), strip(c8.runs));
    std::fs::remove_dir_all(&dir1).unwrap();
    std::fs::remove_dir_all(&dir8).unwrap();
}

#[test]
fn smoke_grid_warm_resweep_executes_zero_runs() {
    let dir = temp_dir("smoke");
    let cache = Arc::new(RunCache::open(&dir).unwrap());
    let specs = CampaignGrid::smoke().expand();
    let cold = run_specs_cached(&specs, 4, &cache);
    assert_eq!((cold.executed, cold.hits), (specs.len(), 0));
    let warm = run_specs_cached(&specs, 4, &cache);
    assert_eq!((warm.executed, warm.hits), (0, specs.len()));
    assert_eq!(render(cold.runs), render(warm.runs));
    std::fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn schema_bump_changes_the_fingerprint() {
    // The fingerprint hashes material that embeds the report schema and
    // the determinism epoch; bumping either changes every address, which
    // is how a schema bump orphans (invalidates) all previous entries.
    let spec = &mini_specs()[0];
    let material = fingerprint_material(spec);
    assert!(material.contains("|schema=ipr-report/1|"), "{material}");
    let bumped_schema = material.replace("schema=ipr-report/1", "schema=ipr-report/2");
    let bumped_epoch = material.replace("epoch=", "epoch=9");
    assert_ne!(material, bumped_schema);
    assert_ne!(material, bumped_epoch);
    // Same axes, same schema, same epoch => same address.
    assert_eq!(fingerprint(spec), fingerprint(&spec.clone()));
}

#[test]
fn stale_or_corrupt_entries_read_as_misses() {
    let dir = temp_dir("stale");
    let cache = Arc::new(RunCache::open(&dir).unwrap());
    let specs = mini_specs();
    let spec = &specs[0];
    let result = campaign::run_spec(spec);
    cache.put(spec, &result).unwrap();
    assert_eq!(cache.get(spec), Some(result.clone()));

    let path = dir.join(format!("{:016x}.json", fingerprint(spec)));

    // An entry written under a *previous* cache-entry schema: miss.
    let text = std::fs::read_to_string(&path).unwrap();
    std::fs::write(
        &path,
        text.replace("ipr-cache-entry/1", "ipr-cache-entry/0"),
    )
    .unwrap();
    assert_eq!(cache.get(spec), None);

    // A truncated (corrupt) entry: miss, and re-running heals it.
    std::fs::write(&path, "{ not json").unwrap();
    assert_eq!(cache.get(spec), None);
    cache.put(spec, &result).unwrap();
    assert_eq!(cache.get(spec), Some(result));
    std::fs::remove_dir_all(&dir).unwrap();
}

const SCALES: [ExperimentScale; 3] = [
    ExperimentScale::Full,
    ExperimentScale::Small,
    ExperimentScale::Tiny,
];

fn nth_failure(i: usize) -> FailurePlan {
    match i {
        0 => FailurePlan::None,
        1 => FailurePlan::poisson(0.5),
        2 => FailurePlan::poisson_process(
            FailureRate::Ramp {
                start: 0.0,
                end: 2.0,
            },
            2.0,
        ),
        3 => FailurePlan::poisson_process(FailureRate::weibull_hpc(360.0), 1.0),
        4 => FailurePlan::node_failures(FailureRate::Constant(1.0)),
        _ => FailurePlan::rack_failures(
            4,
            FailureRate::Weibull {
                shape: 0.7,
                scale_s: 90.0,
            },
        ),
    }
}

proptest! {
    // The fingerprint must separate any two specs that differ on any axis
    // (and must not depend on the grid index, which is bookkeeping).  The
    // strategy reuses the PR 5 round-trip domain: every spec goes through
    // the lossless Experiment conversion on the way to its fingerprint.
    #[test]
    fn fingerprint_separates_every_axis(
        app_i in 0usize..AppId::ALL.len(),
        scale_i in 0usize..SCALES.len(),
        mode_i in 0usize..3,
        degree in 2usize..5,
        sched_i in 0usize..SchedulerKind::ALL.len(),
        fail_i in 0usize..6,
        seed in 0u64..10_000,
        app_j in 0usize..AppId::ALL.len(),
        scale_j in 0usize..SCALES.len(),
        mode_j in 0usize..3,
        degree_j in 2usize..5,
        sched_j in 0usize..SchedulerKind::ALL.len(),
        fail_j in 0usize..6,
        seed_j in 0u64..10_000,
    ) {
        let build = |app_i: usize, scale_i: usize, mode_i: usize, degree: usize,
                     sched_i: usize, fail_i: usize, seed: u64, index: usize| {
            let mode = match mode_i {
                0 => ExecutionMode::Native,
                1 => ExecutionMode::Replicated { degree },
                _ => ExecutionMode::IntraParallel { degree },
            };
            RunSpec {
                index,
                app: AppId::ALL[app_i],
                scale: SCALES[scale_i],
                mode,
                scheduler: SchedulerKind::ALL[sched_i],
                failure: nth_failure(fail_i),
                seed,
                ckpt: None,
            }
        };
        let a = build(app_i, scale_i, mode_i, degree, sched_i, fail_i, seed, 0);
        let b = build(app_j, scale_j, mode_j, degree_j, sched_j, fail_j, seed_j, 63);

        // The index is not an axis: same axes at different grid positions
        // share an address.
        let moved = RunSpec { index: 17, ..a.clone() };
        prop_assert_eq!(fingerprint(&a), fingerprint(&moved));

        // Axis-differing specs have different material (and the material is
        // what the 64-bit hash addresses).
        let same_axes = RunSpec { index: a.index, ..b.clone() } == a;
        if same_axes {
            prop_assert_eq!(fingerprint_material(&a), fingerprint_material(&b));
        } else {
            prop_assert_ne!(fingerprint_material(&a), fingerprint_material(&b));
            prop_assert_ne!(fingerprint(&a), fingerprint(&b));
        }
    }
}
