//! Golden-baseline gate for the event-driven weak-scaling campaign.
//!
//! The checked-in `golden/weak_scaling.json` was recorded with one engine
//! worker; these tests prove the report is a pure function of the virtual
//! execution — byte-identical at every worker count — and that the engine
//! actually delivers the scale the sweep presets promise (10k logical
//! ranks well inside a debug-build test budget).

use campaign::{diff_reports, run_weak_sweep, strip_informational, Json, WeakSweep};

/// The golden baseline, recorded via
/// `campaign weak --sweep weak-smoke --workers 1 --strip-informational`.
const GOLDEN: &str = include_str!("../golden/weak_scaling.json");

/// Renders a sweep execution the way the golden was recorded: informational
/// host-side fields stripped, so the bytes are comparable.
fn render_stripped(sweep: &WeakSweep, workers: usize) -> String {
    let mut doc = run_weak_sweep(sweep, workers).to_json();
    strip_informational(&mut doc);
    doc.render()
}

#[test]
fn weak_smoke_is_byte_identical_to_golden_at_any_worker_count() {
    let sweep = WeakSweep::smoke();
    // 1 is the recording configuration, 4 forces real interleaving on any
    // host, 0 is "auto" (whatever parallelism this machine offers).
    for workers in [1, 4, 0] {
        assert_eq!(
            render_stripped(&sweep, workers),
            GOLDEN,
            "weak-smoke diverged from golden at workers={workers}"
        );
    }
}

#[test]
fn weak_smoke_passes_the_zero_tolerance_diff_gate() {
    // The diff gate is what CI runs; unlike the byte comparison it must
    // accept an *unstripped* candidate (wall_time_ms and dispatches are
    // informational) while still gating every deterministic field.
    let baseline = Json::parse(GOLDEN).expect("golden parses");
    let candidate = run_weak_sweep(&WeakSweep::smoke(), 0).to_json();
    let violations = diff_reports(&baseline, &candidate, 0.0);
    assert!(violations.is_empty(), "{violations:?}");
}

#[test]
fn ten_thousand_logical_ranks_run_inside_the_test_budget() {
    // The thread-per-rank world tops out around a few thousand OS threads;
    // this is the regression gate proving the event engine holds at 10k
    // logical ranks (20k physical in intra mode).  The sweep takes ~4 s in
    // a debug build; the bound is generous so CI noise cannot flake it,
    // while still catching any return to thread-per-rank scaling (which
    // would abort on thread exhaustion long before the timer).
    let started = std::time::Instant::now();
    let report = run_weak_sweep(&WeakSweep::scale_10k(), 0);
    let elapsed = started.elapsed();
    assert!(
        elapsed.as_secs() < 120,
        "weak-10k took {elapsed:?}, expected well under 120s"
    );
    assert_eq!(report.rows.len(), 2, "native and intra rows");
    for row in &report.rows {
        assert_eq!(
            row.completed, row.procs,
            "{}: every rank must complete",
            row.id
        );
        assert_eq!(row.errored, 0, "{}: no deadlocks or panics", row.id);
        assert!(row.makespan_s > 0.0, "{}: non-trivial makespan", row.id);
    }
    // Weak scaling: the intra row simulates twice the physical ranks.
    assert_eq!(report.rows[0].procs, 10_000);
    assert_eq!(report.rows[1].procs, 20_000);
}
