//! End-to-end campaign-engine tests: parallelism never changes results,
//! run outcomes are internally consistent, and the diff gate catches
//! perturbations.

use apps::ExperimentScale;
use campaign::spec::{FailureSpec, RunSpec};
use campaign::{diff_reports, run_specs, strip_informational, CampaignGrid, CampaignReport, Json};
use ipr_core::SchedulerKind;
use replication::{ExecutionMode, FailureRate};

/// A minimal grid (subset of smoke) used by the tests: one app, all three
/// modes, with and without failures.
fn mini_grid() -> CampaignGrid {
    CampaignGrid {
        name: "mini".to_string(),
        scale: ExperimentScale::Tiny,
        apps: vec![apps::AppId::Hpccg],
        modes: vec![
            ExecutionMode::Native,
            ExecutionMode::Replicated { degree: 2 },
            ExecutionMode::IntraParallel { degree: 2 },
        ],
        schedulers: vec![SchedulerKind::StaticBlock],
        failures: vec![
            FailureSpec::None,
            FailureSpec::Poisson {
                rate: FailureRate::Constant(0.5),
                horizon_s: 1.0,
            },
        ],
        ckpts: vec![None],
        seeds: vec![43],
    }
}

/// Renders a report with the informational wall-clock fields stripped: what
/// remains is exactly the deterministic content, byte-comparable.
fn render(runs: Vec<campaign::RunResult>) -> String {
    let mut json = CampaignReport {
        campaign: "mini".into(),
        scale: "tiny".into(),
        runs,
    }
    .to_json();
    strip_informational(&mut json);
    json.render()
}

#[test]
fn parallel_execution_is_byte_identical_to_sequential() {
    let specs: Vec<RunSpec> = mini_grid().expand();
    let sequential = render(run_specs(&specs, 1));
    let parallel = render(run_specs(&specs, 8));
    assert_eq!(
        sequential, parallel,
        "--jobs must never change campaign results"
    );
    // And the whole thing is reproducible.
    let again = render(run_specs(&specs, 3));
    assert_eq!(sequential, again);
}

#[test]
fn wall_time_is_recorded_but_never_gated() {
    let specs: Vec<RunSpec> = mini_grid().expand();
    let runs = run_specs(&specs[..1], 1);
    assert!(
        runs[0].wall_time_ms > 0.0,
        "every run records its host wall-clock time"
    );
    // Two executions of the same spec differ (if at all) only in wall time:
    // the diff must accept them at zero tolerance.
    let a = Json::parse(&report_json(run_specs(&specs[..1], 1))).unwrap();
    let b = Json::parse(&report_json(run_specs(&specs[..1], 1))).unwrap();
    assert!(diff_reports(&a, &b, 0.0).is_empty());
}

fn report_json(runs: Vec<campaign::RunResult>) -> String {
    CampaignReport {
        campaign: "mini".into(),
        scale: "tiny".into(),
        runs,
    }
    .to_json()
    .render()
}

#[test]
fn run_outcomes_are_internally_consistent() {
    let specs = mini_grid().expand();
    let runs = run_specs(&specs, 2);
    assert_eq!(runs.len(), specs.len());
    for (spec, run) in specs.iter().zip(&runs) {
        assert_eq!(run.id, spec.id());
        assert_eq!(run.procs, spec.procs());
        assert_eq!(
            run.completed + run.crashed + run.errored,
            run.procs,
            "{}: every rank must be classified exactly once",
            run.id
        );
        if matches!(spec.failure, FailureSpec::None) {
            assert_eq!(run.crashed, 0, "{}: no injected failures", run.id);
            assert_eq!(run.failure_events, 0, "{}", run.id);
            assert_eq!(run.completed, run.procs, "{}", run.id);
            assert!(run.makespan_s > 0.0, "{}", run.id);
        }
    }
    // The failing intra run of this grid loses one replica and recovers by
    // re-execution (this is the scenario the smoke gate pins down).
    let intra_fail = runs
        .iter()
        .find(|r| r.mode == "intra2" && r.failure != "none")
        .expect("grid contains a failing intra run");
    assert_eq!(intra_fail.crashed, 1);
    assert_eq!(intra_fail.completed, 3);
    assert!(intra_fail.tasks_reexecuted > 0);
}

#[test]
fn diff_gate_accepts_identity_and_rejects_perturbations() {
    let specs: Vec<RunSpec> = mini_grid()
        .expand()
        .into_iter()
        .filter(|s| matches!(s.failure, FailureSpec::None))
        .collect();
    let runs = run_specs(&specs, 2);
    let text = render(runs);
    let baseline = Json::parse(&text).unwrap();
    assert!(diff_reports(&baseline, &baseline, 0.0).is_empty());

    // A perturbed makespan passes a loose gate and fails a strict one.
    let perturbed = Json::parse(&text.replace("\"makespan_s\": 0.", "\"makespan_s\": 1.")).unwrap();
    assert_ne!(
        baseline, perturbed,
        "the perturbation must change something"
    );
    assert!(!diff_reports(&baseline, &perturbed, 1e-9).is_empty());

    // A dropped run is always a violation.
    let report = CampaignReport {
        campaign: "mini".into(),
        scale: "tiny".into(),
        runs: run_specs(&specs[..1], 1),
    };
    let shorter = Json::parse(&report.to_json().render()).unwrap();
    assert!(!diff_reports(&baseline, &shorter, 1.0).is_empty());
}
