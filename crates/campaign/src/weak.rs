//! Weak-scaling sweeps on the event-driven engine.
//!
//! The classic campaign grid runs the paper's proxy applications with one OS
//! thread per simulated rank, which caps it at a few hundred ranks.  A
//! [`WeakSweep`] instead drives [`apps::run_weak_scaling`] — cooperative
//! rank state machines on `simmpi`'s discrete-event engine — so the sweep
//! axis is the *logical rank count itself*, from tens to hundreds of
//! thousands of ranks, in the paper's three configurations.
//!
//! Everything follows the campaign conventions: rows are deterministic
//! (byte-identical JSON at any engine worker count), metric fields end in
//! `_s` so [`crate::diff::diff_reports`] applies its relative tolerance, and
//! the host wall clock lives in the informational `wall_time_ms` field that
//! the golden gate ignores.

use crate::json::Json;
use crate::spec::FailureSpec;
use apps::{run_weak_scaling, WeakMode, WeakScalingSpec};
use simcluster::SimTime;

/// One fully-determined weak-scaling run.
#[derive(Debug, Clone, PartialEq)]
pub struct WeakRunSpec {
    /// Position in the expanded sweep (stable across executions).
    pub index: usize,
    /// Logical rank count (physical = `logical * mode degree`).
    pub logical: usize,
    /// Execution configuration.
    pub mode: WeakMode,
    /// Solver iterations to model.
    pub iters: usize,
    /// Failure behaviour (crash times drawn per physical rank, exactly like
    /// the classic grid's Poisson axis).
    pub failure: FailureSpec,
    /// Seed of the failure traces.
    pub seed: u64,
}

impl WeakRunSpec {
    /// Unique, human-readable run id, a pure function of the configuration,
    /// e.g. `weak32-intra2-none-s42`.
    pub fn id(&self) -> String {
        format!(
            "weak{}-{}-{}-s{}",
            self.logical,
            self.mode.label(),
            self.failure.label(),
            self.seed
        )
    }

    /// Number of physical ranks the run simulates.
    pub fn procs(&self) -> usize {
        self.logical * self.mode.degree()
    }

    /// Per-rank crash times of this run.  Poisson plans take the first
    /// arrival of each physical rank's trace (same sampler, seed discipline
    /// and labels as the classic grid's failure axis); correlated plans
    /// expand each group's first event over the co-located ranks of the
    /// run's topology — the same one [`apps::run_weak_scaling`] places the
    /// ranks on.
    pub fn crashes(&self) -> Vec<(usize, SimTime)> {
        match self.failure {
            FailureSpec::None => Vec::new(),
            FailureSpec::Poisson { rate, horizon_s } => {
                let horizon = SimTime::from_secs(horizon_s);
                (0..self.procs())
                    .filter_map(|rank| {
                        replication::sample_failure_trace(rate, horizon, self.seed, rank)
                            .first()
                            .map(|&t| (rank, t))
                    })
                    .collect()
            }
            FailureSpec::Correlated {
                domain,
                rate,
                horizon_s,
            } => {
                let topology = self
                    .workload()
                    .topology(&simcluster::MachineModel::grid5000_ib20g());
                replication::CorrelatedPlan::new(domain, rate, SimTime::from_secs(horizon_s))
                    .crashes(&topology, self.seed)
            }
        }
    }

    /// The workload spec this run executes.
    pub fn workload(&self) -> WeakScalingSpec {
        WeakScalingSpec::new(self.logical, self.mode).with_iters(self.iters)
    }
}

/// A declarative weak-scaling sweep: the cross product of logical sizes ×
/// modes × failure behaviours × seeds.
#[derive(Debug, Clone)]
pub struct WeakSweep {
    /// Sweep name (used in reports and output file names).
    pub name: String,
    /// Logical rank counts to sweep.
    pub logical: Vec<usize>,
    /// Execution configurations to sweep.
    pub modes: Vec<WeakMode>,
    /// Solver iterations per run.
    pub iters: usize,
    /// Failure behaviours to sweep.
    pub failures: Vec<FailureSpec>,
    /// Seeds to sweep.
    pub seeds: Vec<u64>,
}

impl WeakSweep {
    /// Expands the sweep into its runs, in deterministic axis order
    /// (size-major, seed-minor).
    pub fn expand(&self) -> Vec<WeakRunSpec> {
        let mut specs = Vec::new();
        for &logical in &self.logical {
            for &mode in &self.modes {
                for &failure in &self.failures {
                    for &seed in &self.seeds {
                        specs.push(WeakRunSpec {
                            index: specs.len(),
                            logical,
                            mode,
                            iters: self.iters,
                            failure,
                            seed,
                        });
                    }
                }
            }
        }
        specs
    }

    /// The CI weak-scaling smoke sweep: two small sizes, all three modes,
    /// failure-free and failing.  Gated against
    /// `crates/campaign/golden/weak_scaling.json`.
    pub fn smoke() -> Self {
        WeakSweep {
            name: "weak-smoke".to_string(),
            logical: vec![8, 32],
            modes: vec![WeakMode::Native, WeakMode::Replicated, WeakMode::Intra],
            iters: 3,
            failures: vec![
                FailureSpec::None,
                FailureSpec::poisson(crate::grid::SMOKE_FAILURE_RATE),
            ],
            seeds: vec![42],
        }
    }

    /// 10k logical ranks (up to 20k physical), native vs intra,
    /// failure-free — the scale smoke that proves the engine runs four
    /// orders of magnitude past the thread-per-rank ceiling.
    pub fn scale_10k() -> Self {
        WeakSweep {
            name: "weak-10k".to_string(),
            logical: vec![10_000],
            modes: vec![WeakMode::Native, WeakMode::Intra],
            iters: 2,
            failures: vec![FailureSpec::None],
            seeds: vec![42],
        }
    }

    /// 100k logical ranks (200k physical), intra only, one iteration —
    /// the headline weak-scaling point (manual / bench use).
    pub fn scale_100k() -> Self {
        WeakSweep {
            name: "weak-100k".to_string(),
            logical: vec![100_000],
            modes: vec![WeakMode::Intra],
            iters: 1,
            failures: vec![FailureSpec::None],
            seeds: vec![42],
        }
    }

    /// One million logical ranks, native, one iteration — the headline
    /// scale point proving the event-driven engine holds a 1M-rank world
    /// (release-mode only; the run is minutes of wall clock and gigabytes
    /// of rank state, gated structurally, never on wall clock).
    pub fn scale_1m() -> Self {
        WeakSweep {
            name: "weak-1m".to_string(),
            logical: vec![1_000_000],
            modes: vec![WeakMode::Native],
            iters: 1,
            failures: vec![FailureSpec::None],
            seeds: vec![42],
        }
    }

    /// Weak scaling under realistic failure pressure: 1k logical ranks,
    /// native vs intra, with the fitted Weibull MTBF hazard per rank and
    /// rack-correlated events (one rack = 8 nodes) — the sweep that shows
    /// replica-disjoint placement absorbing correlated losses at scale.
    pub fn failures() -> Self {
        WeakSweep {
            name: "weak-failures".to_string(),
            logical: vec![1_000],
            modes: vec![WeakMode::Native, WeakMode::Intra],
            iters: 2,
            failures: vec![
                FailureSpec::Poisson {
                    rate: replication::FailureRate::weibull_hpc(FailureSpec::DEFAULT_HORIZON_S),
                    horizon_s: FailureSpec::DEFAULT_HORIZON_S,
                },
                FailureSpec::Correlated {
                    domain: replication::FailureDomain::Rack { nodes_per_rack: 8 },
                    rate: replication::FailureRate::Constant(0.2),
                    horizon_s: FailureSpec::DEFAULT_HORIZON_S,
                },
            ],
            seeds: vec![42],
        }
    }

    /// Looks up a built-in sweep by name.
    pub fn by_name(name: &str) -> Option<Self> {
        match name {
            "weak-smoke" => Some(Self::smoke()),
            "weak-10k" => Some(Self::scale_10k()),
            "weak-100k" => Some(Self::scale_100k()),
            "weak-1m" => Some(Self::scale_1m()),
            "weak-failures" => Some(Self::failures()),
            _ => None,
        }
    }

    /// Names of the built-in sweeps.
    pub fn builtin_names() -> &'static [&'static str] {
        &[
            "weak-smoke",
            "weak-10k",
            "weak-100k",
            "weak-1m",
            "weak-failures",
        ]
    }
}

/// The aggregated result of one weak-scaling run.
#[derive(Debug, Clone, PartialEq)]
pub struct WeakRow {
    /// Run id ([`WeakRunSpec::id`]).
    pub id: String,
    /// Logical rank count.
    pub logical: usize,
    /// Mode label.
    pub mode: String,
    /// Failure label.
    pub failure: String,
    /// Failure-trace seed.
    pub seed: u64,
    /// Physical ranks simulated.
    pub procs: usize,
    /// Ranks that ran to completion.
    pub completed: usize,
    /// Ranks that crashed.
    pub crashed: usize,
    /// Ranks that ended in an error (deadlock, panic, step budget).
    pub errored: usize,
    /// Crash events that actually fired within the run.
    pub failure_events: usize,
    /// Receives that resolved as peer failures across all ranks.
    pub holes: u64,
    /// Point-to-point messages injected.
    pub messages: u64,
    /// Engine dispatches consumed (informational: varies with worker
    /// interleaving when failure wakeups race message deliveries).
    pub dispatches: u64,
    /// Virtual makespan in seconds.
    pub makespan_s: f64,
    /// Mean per-rank virtual compute time in seconds.
    pub mean_compute_s: f64,
    /// Mean per-rank virtual communication time in seconds.
    pub mean_comm_s: f64,
    /// Mean per-rank virtual wait time in seconds.
    pub mean_wait_s: f64,
    /// Host wall clock of the run in milliseconds (informational, excluded
    /// from the golden gate).
    pub wall_time_ms: f64,
}

/// The aggregated result of one weak-scaling sweep execution.
#[derive(Debug, Clone, PartialEq)]
pub struct WeakReport {
    /// Sweep name.
    pub sweep: String,
    /// Per-run rows in sweep order.
    pub rows: Vec<WeakRow>,
}

impl WeakReport {
    /// The report as a JSON document; rendering it is byte-deterministic at
    /// any engine worker count (modulo the informational `wall_time_ms`),
    /// which is what the golden weak-scaling gate compares against.
    pub fn to_json(&self) -> Json {
        Json::obj(vec![
            ("schema", Json::Str(crate::report::v1::SCHEMA.to_string())),
            ("sweep", Json::Str(self.sweep.clone())),
            (
                "runs",
                Json::Arr(self.rows.iter().map(row_to_json).collect()),
            ),
        ])
    }
}

fn row_to_json(r: &WeakRow) -> Json {
    Json::obj(vec![
        ("id", Json::Str(r.id.clone())),
        ("logical", Json::Num(r.logical as f64)),
        ("mode", Json::Str(r.mode.clone())),
        ("failure", Json::Str(r.failure.clone())),
        ("seed", Json::Num(r.seed as f64)),
        ("procs", Json::Num(r.procs as f64)),
        ("completed", Json::Num(r.completed as f64)),
        ("crashed", Json::Num(r.crashed as f64)),
        ("errored", Json::Num(r.errored as f64)),
        ("failure_events", Json::Num(r.failure_events as f64)),
        ("holes", Json::Num(r.holes as f64)),
        ("messages", Json::Num(r.messages as f64)),
        // Informational (host scheduler detail): excluded from the
        // tolerance diff, see `crate::diff::INFORMATIONAL_KEYS`.
        ("dispatches", Json::Num(r.dispatches as f64)),
        ("makespan_s", Json::Num(r.makespan_s)),
        ("mean_compute_s", Json::Num(r.mean_compute_s)),
        ("mean_comm_s", Json::Num(r.mean_comm_s)),
        ("mean_wait_s", Json::Num(r.mean_wait_s)),
        // Informational (host wall clock): excluded from the tolerance
        // diff, see `crate::diff::INFORMATIONAL_KEYS`.
        ("wall_time_ms", Json::Num(r.wall_time_ms)),
    ])
}

/// Executes one weak-scaling run with the given engine worker count
/// (`0` = host parallelism; the row is identical for every value).
pub fn run_weak_spec(spec: &WeakRunSpec, workers: usize) -> WeakRow {
    let workload = spec.workload().with_workers(workers);
    let started = std::time::Instant::now();
    let report = run_weak_scaling(&workload, &spec.crashes());
    let wall_time_ms = started.elapsed().as_secs_f64() * 1e3;
    let n = report.ranks.len().max(1) as f64;
    // Sums run in rank order, so the means are deterministic f64 results.
    let mean = |f: &dyn Fn(&simmpi::VirtualRankReport) -> f64| -> f64 {
        report.ranks.iter().map(f).sum::<f64>() / n
    };
    WeakRow {
        id: spec.id(),
        logical: spec.logical,
        mode: spec.mode.label().to_string(),
        failure: spec.failure.label(),
        seed: spec.seed,
        procs: spec.procs(),
        completed: report.num_completed(),
        crashed: report.num_crashed(),
        errored: report.errors().len(),
        failure_events: report.failures.len(),
        // Holes ride in the result fraction: `iters + holes * 1e-6`.
        holes: report
            .ranks
            .iter()
            .filter_map(|r| r.result)
            .map(|v| (v.fract() * 1e6).round() as u64)
            .sum(),
        messages: report.messages,
        dispatches: report.dispatches,
        makespan_s: report.makespan().as_secs(),
        mean_compute_s: mean(&|r| r.compute_time.as_secs()),
        mean_comm_s: mean(&|r| r.comm_time.as_secs()),
        mean_wait_s: mean(&|r| r.wait_time.as_secs()),
        wall_time_ms,
    }
}

/// Executes a whole sweep.  Runs execute sequentially — each one already
/// spreads across the engine's worker threads — in expansion order.
pub fn run_weak_sweep(sweep: &WeakSweep, workers: usize) -> WeakReport {
    WeakReport {
        sweep: sweep.name.clone(),
        rows: sweep
            .expand()
            .iter()
            .map(|spec| run_weak_spec(spec, workers))
            .collect(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn expansion_is_deterministic_with_unique_ids() {
        let sweep = WeakSweep::smoke();
        let specs = sweep.expand();
        let expected =
            sweep.logical.len() * sweep.modes.len() * sweep.failures.len() * sweep.seeds.len();
        assert_eq!(specs.len(), expected);
        for (i, spec) in specs.iter().enumerate() {
            assert_eq!(spec.index, i);
        }
        assert_eq!(sweep.expand(), specs);
        let mut ids: Vec<String> = specs.iter().map(WeakRunSpec::id).collect();
        ids.sort();
        ids.dedup();
        assert_eq!(ids.len(), specs.len());
    }

    #[test]
    fn builtin_sweeps_resolve_by_name() {
        for name in WeakSweep::builtin_names() {
            let sweep = WeakSweep::by_name(name).unwrap();
            assert_eq!(&sweep.name, name);
            assert!(!sweep.expand().is_empty());
        }
        assert!(WeakSweep::by_name("nope").is_none());
    }

    #[test]
    fn crash_times_are_deterministic_and_respect_the_horizon() {
        let spec = WeakRunSpec {
            index: 0,
            logical: 16,
            mode: WeakMode::Intra,
            iters: 2,
            failure: FailureSpec::poisson(5.0),
            seed: 42,
        };
        let a = spec.crashes();
        assert_eq!(a, spec.crashes());
        assert!(!a.is_empty(), "rate 5.0 over 32 ranks must fire somewhere");
        for &(rank, t) in &a {
            assert!(rank < spec.procs());
            assert!(t < SimTime::from_secs(FailureSpec::DEFAULT_HORIZON_S));
        }
        assert!(spec_none_has_no_crashes());
    }

    fn spec_none_has_no_crashes() -> bool {
        WeakRunSpec {
            index: 0,
            logical: 16,
            mode: WeakMode::Native,
            iters: 1,
            failure: FailureSpec::None,
            seed: 42,
        }
        .crashes()
        .is_empty()
    }

    #[test]
    fn a_small_row_is_reproducible_across_worker_counts() {
        let spec = WeakRunSpec {
            index: 0,
            logical: 12,
            mode: WeakMode::Intra,
            iters: 2,
            failure: FailureSpec::poisson(crate::grid::SMOKE_FAILURE_RATE),
            seed: 42,
        };
        let mut a = run_weak_spec(&spec, 1);
        let mut b = run_weak_spec(&spec, 4);
        // Informational fields measure the host, not the simulation.
        a.wall_time_ms = 0.0;
        b.wall_time_ms = 0.0;
        a.dispatches = 0;
        b.dispatches = 0;
        assert_eq!(a, b);
        assert_eq!(a.procs, 24);
        assert_eq!(a.completed + a.crashed + a.errored, a.procs);
    }
}
