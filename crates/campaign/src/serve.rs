//! `campaign serve`: a persistent sweep service over a file-queue protocol.
//!
//! Dependency-freedom rules out sockets-plus-serde, so the wire is a
//! **spool directory** — the classic mail/printer-queue shape, which gets
//! atomicity from `rename(2)` instead of a connection protocol:
//!
//! ```text
//! spool/
//!   jobs/<id>.json      submitted jobs (written via temp + rename)
//!   active/<id>.json    claimed by the server (claim = atomic rename)
//!   results/<id>.jsonl  per-run records, streamed in completion order
//!   results/<id>.json   final v1 report, grid order, written atomically
//!   done/<id>.json      job summary (runs / executed / cache hits)
//!   stop                graceful-shutdown request marker
//! ```
//!
//! Any number of clients submit concurrently ([`Spool::submit_grid`] /
//! [`Spool::submit_specs`]); claiming moves the job file into `active/`,
//! so exactly one server instance owns each job even if several servers
//! share a spool.  The server executes every job through the shared
//! work-stealing pool ([`crate::queue::ExecutorPool`]) and the
//! content-addressed run cache ([`crate::cache::RunCache`]): a re-submitted
//! sweep replays its cached runs verbatim and executes only the delta, and
//! because cached rows carry their originally measured values, the warm
//! final report is byte-identical to the cold one.
//!
//! Determinism split: `results/<id>.json` is in grid order and fully
//! deterministic (modulo informational fields); `results/<id>.jsonl` is in
//! *completion* order — it exists for progress streaming, not for gating.

use crate::cache::{run_specs_cached_on, RunCache};
use crate::grid::CampaignGrid;
use crate::queue::ExecutorPool;
use crate::report::v1;
use crate::spec::RunSpec;
use crate::Json;
use parking_lot::Mutex;
use std::io::{self, Write as _};
use std::path::{Path, PathBuf};
use std::sync::Arc;
use std::time::Duration;

/// Schema tag of job files.
pub const JOB_SCHEMA: &str = "ipr-job/1";
/// Schema tag of job summaries (`done/<id>.json`).
pub const SUMMARY_SCHEMA: &str = "ipr-serve/1";

/// A spool directory handle: the client *and* server side of the protocol.
pub struct Spool {
    root: PathBuf,
}

/// What became of one job: how much ran, how much replayed from cache.
#[derive(Debug, Clone, PartialEq)]
pub struct JobSummary {
    /// Job id (the submitter chose it).
    pub id: String,
    /// Campaign name the job expanded to (grid name, or the job id for
    /// explicit spec lists).
    pub campaign: String,
    /// Total runs in the job.
    pub runs: usize,
    /// Runs actually executed (cache misses).
    pub executed: usize,
    /// Runs replayed from the cache.
    pub cache_hits: usize,
    /// Host wall-clock for the whole job, in milliseconds (informational).
    pub wall_ms: f64,
    /// Failure description if the job could not run (bad grid name,
    /// malformed spec list); `None` on success.
    pub error: Option<String>,
}

impl JobSummary {
    fn to_json(&self) -> Json {
        let mut fields = vec![
            ("schema", Json::Str(SUMMARY_SCHEMA.to_string())),
            ("id", Json::Str(self.id.clone())),
            ("campaign", Json::Str(self.campaign.clone())),
            ("runs", Json::Num(self.runs as f64)),
            ("executed", Json::Num(self.executed as f64)),
            ("cache_hits", Json::Num(self.cache_hits as f64)),
            ("wall_ms", Json::Num(self.wall_ms)),
        ];
        if let Some(e) = &self.error {
            fields.push(("error", Json::Str(e.clone())));
        }
        Json::obj(fields)
    }

    fn from_json(doc: &Json) -> Option<Self> {
        if doc.get("schema").and_then(Json::as_str) != Some(SUMMARY_SCHEMA) {
            return None;
        }
        let count = |k: &str| doc.get(k).and_then(Json::as_f64).map(|v| v as usize);
        Some(JobSummary {
            id: doc.get("id").and_then(Json::as_str)?.to_string(),
            campaign: doc.get("campaign").and_then(Json::as_str)?.to_string(),
            runs: count("runs")?,
            executed: count("executed")?,
            cache_hits: count("cache_hits")?,
            wall_ms: doc.get("wall_ms").and_then(Json::as_f64).unwrap_or(0.0),
            error: doc.get("error").and_then(Json::as_str).map(str::to_string),
        })
    }
}

/// Snapshot of a spool: what is queued, being executed, and finished.
#[derive(Debug, Clone, PartialEq)]
pub struct SpoolStatus {
    /// Submitted, unclaimed job ids (sorted).
    pub queued: Vec<String>,
    /// Jobs a server currently owns (sorted).
    pub active: Vec<String>,
    /// Finished jobs, by summary (sorted by id).
    pub done: Vec<JobSummary>,
}

fn valid_job_id(id: &str) -> bool {
    !id.is_empty()
        && id.len() <= 128
        && id
            .chars()
            .all(|c| c.is_ascii_alphanumeric() || matches!(c, '-' | '_' | '.'))
        && !id.starts_with('.')
}

fn job_ids(dir: &Path) -> io::Result<Vec<String>> {
    let mut ids = Vec::new();
    for entry in std::fs::read_dir(dir)? {
        let name = entry?.file_name().to_string_lossy().into_owned();
        if let Some(id) = name.strip_suffix(".json") {
            if valid_job_id(id) {
                ids.push(id.to_string());
            }
        }
    }
    ids.sort();
    Ok(ids)
}

/// Writes `text` to `path` atomically (temp file in the same directory,
/// then rename).
fn write_atomic(path: &Path, text: &str) -> io::Result<()> {
    let dir = path.parent().unwrap_or_else(|| Path::new("."));
    let name = path
        .file_name()
        .map(|n| n.to_string_lossy().into_owned())
        .unwrap_or_default();
    let tmp = dir.join(format!(".tmp-{}-{name}", std::process::id()));
    std::fs::write(&tmp, text)?;
    std::fs::rename(&tmp, path)
}

impl Spool {
    /// Opens (creating if needed) the spool rooted at `root`.
    pub fn open(root: impl Into<PathBuf>) -> io::Result<Self> {
        let root = root.into();
        for sub in ["jobs", "active", "results", "done"] {
            std::fs::create_dir_all(root.join(sub))?;
        }
        Ok(Spool { root })
    }

    /// The spool root.
    pub fn root(&self) -> &Path {
        &self.root
    }

    fn dir(&self, sub: &str) -> PathBuf {
        self.root.join(sub)
    }

    fn job_path(&self, sub: &str, id: &str) -> PathBuf {
        self.dir(sub).join(format!("{id}.json"))
    }

    /// Path of a job's final (grid-order, v1) report.
    pub fn result_path(&self, id: &str) -> PathBuf {
        self.job_path("results", id)
    }

    /// Path of a job's streaming JSONL record (completion order).
    pub fn stream_path(&self, id: &str) -> PathBuf {
        self.dir("results").join(format!("{id}.jsonl"))
    }

    fn submit(&self, id: &str, body: Json) -> io::Result<()> {
        if !valid_job_id(id) {
            return Err(io::Error::new(
                io::ErrorKind::InvalidInput,
                format!("invalid job id '{id}' (use [A-Za-z0-9._-], not leading with '.')"),
            ));
        }
        for sub in ["jobs", "active", "done"] {
            if self.job_path(sub, id).exists() {
                return Err(io::Error::new(
                    io::ErrorKind::AlreadyExists,
                    format!("job '{id}' already exists in {sub}/"),
                ));
            }
        }
        write_atomic(&self.job_path("jobs", id), &body.render())
    }

    /// Submits a built-in grid by name as job `id`.
    pub fn submit_grid(&self, id: &str, grid: &str) -> io::Result<()> {
        self.submit(
            id,
            Json::obj(vec![
                ("schema", Json::Str(JOB_SCHEMA.to_string())),
                ("id", Json::Str(id.to_string())),
                ("grid", Json::Str(grid.to_string())),
            ]),
        )
    }

    /// Submits an explicit list of run specs as job `id`.
    pub fn submit_specs(&self, id: &str, specs: &[RunSpec]) -> io::Result<()> {
        self.submit(
            id,
            Json::obj(vec![
                ("schema", Json::Str(JOB_SCHEMA.to_string())),
                ("id", Json::Str(id.to_string())),
                (
                    "specs",
                    Json::Arr(specs.iter().map(RunSpec::to_json).collect()),
                ),
            ]),
        )
    }

    /// Asks a running server to finish its active jobs and exit.
    pub fn request_stop(&self) -> io::Result<()> {
        std::fs::write(self.root.join("stop"), "stop\n")
    }

    fn stop_requested(&self) -> bool {
        self.root.join("stop").exists()
    }

    fn clear_stop(&self) {
        let _ = std::fs::remove_file(self.root.join("stop"));
    }

    /// Takes a snapshot of the spool.
    pub fn status(&self) -> io::Result<SpoolStatus> {
        let mut done = Vec::new();
        for id in job_ids(&self.dir("done"))? {
            let text = std::fs::read_to_string(self.job_path("done", &id))?;
            if let Some(summary) = Json::parse(&text)
                .ok()
                .as_ref()
                .and_then(JobSummary::from_json)
            {
                done.push(summary);
            }
        }
        Ok(SpoolStatus {
            queued: job_ids(&self.dir("jobs"))?,
            active: job_ids(&self.dir("active"))?,
            done,
        })
    }

    /// Claims every currently queued job (atomic rename into `active/`);
    /// returns the claimed ids in sorted order.  A rename lost to another
    /// server instance is simply skipped.
    fn claim_all(&self) -> io::Result<Vec<String>> {
        let mut claimed = Vec::new();
        for id in job_ids(&self.dir("jobs"))? {
            if std::fs::rename(self.job_path("jobs", &id), self.job_path("active", &id)).is_ok() {
                claimed.push(id);
            }
        }
        Ok(claimed)
    }

    /// Moves orphaned `active/` jobs (a previous server died mid-job) back
    /// into `jobs/` so they run again.  Called once at server start, when
    /// no other server shares the spool.
    fn recover_orphans(&self) -> io::Result<()> {
        for id in job_ids(&self.dir("active"))? {
            let _ = std::fs::rename(self.job_path("active", &id), self.job_path("jobs", &id));
        }
        Ok(())
    }
}

/// Server tuning knobs.
pub struct ServeOptions {
    /// Executor-pool worker threads.
    pub workers: usize,
    /// Exit once the queue is empty instead of waiting for more jobs
    /// (batch mode; what `make serve-smoke` uses).
    pub drain: bool,
    /// Poll interval while idle.
    pub poll: Duration,
}

impl Default for ServeOptions {
    fn default() -> Self {
        ServeOptions {
            workers: 4,
            drain: false,
            poll: Duration::from_millis(50),
        }
    }
}

fn expand_job(doc: &Json, id: &str) -> Result<(String, String, Vec<RunSpec>), String> {
    if doc.get("schema").and_then(Json::as_str) != Some(JOB_SCHEMA) {
        return Err(format!("job '{id}': missing schema tag \"{JOB_SCHEMA}\""));
    }
    if let Some(grid_name) = doc.get("grid").and_then(Json::as_str) {
        let grid = CampaignGrid::by_name(grid_name)
            .ok_or_else(|| format!("job '{id}': unknown grid '{grid_name}'"))?;
        return Ok((
            grid.name.clone(),
            grid.scale.name().to_string(),
            grid.expand(),
        ));
    }
    if let Some(items) = doc.get("specs").and_then(Json::as_arr) {
        let specs = items
            .iter()
            .enumerate()
            .map(|(i, item)| RunSpec::from_json(i, item))
            .collect::<Result<Vec<_>, _>>()
            .map_err(|e| format!("job '{id}': {e}"))?;
        let scale = match specs.as_slice() {
            [] => "none".to_string(),
            [first, rest @ ..] if rest.iter().all(|s| s.scale == first.scale) => {
                first.scale.name().to_string()
            }
            _ => "mixed".to_string(),
        };
        return Ok((id.to_string(), scale, specs));
    }
    Err(format!("job '{id}': neither 'grid' nor 'specs' present"))
}

fn process_job(
    spool: &Spool,
    pool: &ExecutorPool,
    cache: &Arc<RunCache>,
    id: &str,
) -> io::Result<JobSummary> {
    let started = std::time::Instant::now();
    let fail = |campaign: &str, error: String| JobSummary {
        id: id.to_string(),
        campaign: campaign.to_string(),
        runs: 0,
        executed: 0,
        cache_hits: 0,
        wall_ms: 0.0,
        error: Some(error),
    };
    let text = std::fs::read_to_string(spool.job_path("active", id))?;
    let summary = match Json::parse(&text)
        .map_err(|e| format!("job '{id}': unparsable: {e}"))
        .and_then(|doc| expand_job(&doc, id))
    {
        Err(error) => fail(id, error),
        Ok((campaign, scale, specs)) => {
            // Stream per-run records (completion order) while the batch runs.
            let stream = std::fs::File::create(spool.stream_path(id))?;
            let stream = Arc::new(Mutex::new(stream));
            let batch = run_specs_cached_on(pool, &specs, cache, move |index, cached, run| {
                let line = Json::obj(vec![
                    ("index", Json::Num(index as f64)),
                    ("cached", Json::Bool(cached)),
                    ("run", run.to_json()),
                ])
                .render_compact();
                let mut file = stream.lock();
                let _ = writeln!(file, "{line}");
                let _ = file.flush();
            });
            let report = v1::Report {
                campaign: campaign.clone(),
                scale,
                runs: batch.runs,
            };
            write_atomic(&spool.result_path(id), &report.to_json().render())?;
            JobSummary {
                id: id.to_string(),
                campaign,
                runs: report.runs.len(),
                executed: batch.executed,
                cache_hits: batch.hits,
                wall_ms: started.elapsed().as_secs_f64() * 1e3,
                error: None,
            }
        }
    };
    write_atomic(&spool.job_path("done", id), &summary.to_json().render())?;
    std::fs::remove_file(spool.job_path("active", id))?;
    Ok(summary)
}

/// Runs the server loop over `spool`: claim queued jobs, execute them on a
/// shared work-stealing pool through the run cache, repeat.  Returns the
/// summaries of every job processed in this session, in completion order.
///
/// Exits when a stop marker appears ([`Spool::request_stop`]; consumed on
/// exit) or, with [`ServeOptions::drain`], as soon as the queue is empty.
pub fn serve(
    spool: &Spool,
    cache: &Arc<RunCache>,
    options: &ServeOptions,
) -> io::Result<Vec<JobSummary>> {
    spool.recover_orphans()?;
    let pool = ExecutorPool::new(options.workers);
    let summaries: Mutex<Vec<JobSummary>> = Mutex::new(Vec::new());
    let failure: Mutex<Option<io::Error>> = Mutex::new(None);
    loop {
        let claimed = spool.claim_all()?;
        if claimed.is_empty() {
            if options.drain || spool.stop_requested() {
                break;
            }
            std::thread::sleep(options.poll);
            continue;
        }
        // One coordinator thread per claimed job: jobs run *concurrently*
        // (their runs interleave on the shared pool), so one huge sweep
        // does not starve a small one submitted after it.
        std::thread::scope(|scope| {
            for id in &claimed {
                scope.spawn(|| match process_job(spool, &pool, cache, id) {
                    Ok(summary) => summaries.lock().push(summary),
                    Err(e) => {
                        failure.lock().get_or_insert(e);
                    }
                });
            }
        });
        if let Some(e) = failure.lock().take() {
            pool.shutdown();
            return Err(e);
        }
        if spool.stop_requested() {
            break;
        }
    }
    pool.shutdown();
    spool.clear_stop();
    Ok(summaries.into_inner())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn job_ids_are_validated() {
        assert!(valid_job_id("smoke-1"));
        assert!(valid_job_id("a.b_c-3"));
        assert!(!valid_job_id(""));
        assert!(!valid_job_id(".hidden"));
        assert!(!valid_job_id("a/b"));
        assert!(!valid_job_id("a b"));
        assert!(!valid_job_id(&"x".repeat(200)));
    }

    #[test]
    fn summaries_round_trip_through_json() {
        let summary = JobSummary {
            id: "first".into(),
            campaign: "smoke".into(),
            runs: 12,
            executed: 12,
            cache_hits: 0,
            wall_ms: 81.5,
            error: None,
        };
        assert_eq!(
            JobSummary::from_json(&summary.to_json()),
            Some(summary.clone())
        );
        let failed = JobSummary {
            error: Some("job 'first': unknown grid 'nope'".into()),
            ..summary
        };
        assert_eq!(JobSummary::from_json(&failed.to_json()), Some(failed));
        // Wrong schema tag: not a summary.
        let alien = Json::obj(vec![("schema", Json::Str("ipr-report/1".into()))]);
        assert_eq!(JobSummary::from_json(&alien), None);
    }
}
