//! `bench-json` — wall-clock benchmark harness emitting the `BENCH.json`
//! trajectory entry for this build.
//!
//! ```text
//! bench-json [--label NAME] [--jobs N] [--out FILE] [--append FILE] [--quick] [--smoke]
//! ```
//!
//! Runs the fabric microbenchmarks (`ipr_bench::fabric`), the kernel
//! throughput microbenchmarks (`ipr_bench::kernels`), a wall-clock
//! timed smoke campaign, and the event-engine weak-scaling sweeps
//! (`weak_scaling_10k`, and `weak_scaling_100k` unless `--quick`), then
//! writes one schema'd entry:
//!
//! * `--out FILE` writes a fresh single-entry document;
//! * `--append FILE` reads an existing trajectory document (creating it when
//!   absent), appends the entry, and writes it back — this is how the
//!   checked-in `BENCH.json` accumulates one entry per PR;
//! * with neither flag the entry is printed to stdout.
//!
//! `--smoke` is the CI gate (`make bench-smoke`): it runs only the fabric
//! and kernel suites at tiny scale and asserts *structural* invariants —
//! the zero-copy byte budgets and the entry schema — never wall-clock
//! numbers, so it stays green on arbitrarily slow shared runners.
//!
//! All numbers are host wall-clock measurements; nothing here affects the
//! virtual-time results the golden campaign baseline gates on.

use campaign::{
    run_campaign, run_weak_sweep, serve, CampaignGrid, Json, RunCache, ServeOptions, Spool,
    WeakSweep,
};
use ipr_bench::fabric::{self, FabricBench};
use ipr_bench::kernels::{self, KernelBench};
use std::process::ExitCode;
use std::sync::Arc;
use std::time::{Duration, Instant, SystemTime, UNIX_EPOCH};

/// Version tag of the `BENCH.json` document layout (see README).
const SCHEMA: &str = "ipr-bench/1";

fn fabric_to_json(b: &FabricBench) -> Json {
    Json::obj(vec![
        ("name", Json::Str(b.name.to_string())),
        ("kind", Json::Str("fabric".to_string())),
        ("messages", Json::Num(b.messages as f64)),
        ("payload_bytes", Json::Num(b.payload_bytes as f64)),
        ("wall_s", Json::Num(round6(b.wall_s))),
        ("msgs_per_sec", Json::Num(b.msgs_per_sec.round())),
        ("degree", Json::Num(b.degree as f64)),
        (
            "msgs_per_sec_per_degree",
            Json::Num(b.msgs_per_sec_per_degree.round()),
        ),
        ("bytes_copied", Json::Num(b.bytes_copied as f64)),
    ])
}

fn kernel_to_json(b: &KernelBench) -> Json {
    Json::obj(vec![
        ("name", Json::Str(b.name.to_string())),
        ("kind", Json::Str("kernel".to_string())),
        ("iters", Json::Num(b.iters as f64)),
        ("n", Json::Num(b.n as f64)),
        ("unit", Json::Str(b.unit.to_string())),
        ("wall_s", Json::Num(round6(b.wall_s))),
        ("per_sec", Json::Num(b.per_sec.round())),
    ])
}

/// The `--smoke` CI gate: tiny-scale fabric + kernel suites, structural
/// invariants only (copy budgets, schema fields — never wall-clock).
fn run_smoke() -> ExitCode {
    let mut failures = 0usize;
    let mut entries: Vec<Json> = Vec::new();
    for b in fabric::smoke_suite() {
        eprintln!(
            "bench-smoke fabric {:<18} degree {} ({} msgs, {} bytes copied)",
            b.name, b.degree, b.messages, b.bytes_copied
        );
        if let Err(e) = fabric::check_copy_budget(&b) {
            eprintln!("bench-smoke FAIL: {e}");
            failures += 1;
        }
        entries.push(fabric_to_json(&b));
    }
    for b in kernels::smoke_suite() {
        eprintln!(
            "bench-smoke kernel {:<18} ({} iters x {} {})",
            b.name, b.iters, b.n, b.unit
        );
        if let Err(e) = kernels::check_kernel_result(&b) {
            eprintln!("bench-smoke FAIL: {e}");
            failures += 1;
        }
        entries.push(kernel_to_json(&b));
    }
    // Schema check: every emitted entry must carry the fields the BENCH.json
    // trajectory tooling keys on.
    for entry in &entries {
        for field in ["name", "kind", "wall_s"] {
            if entry.get(field).is_none() {
                eprintln!(
                    "bench-smoke FAIL: entry missing '{field}': {}",
                    entry.render()
                );
                failures += 1;
            }
        }
    }
    if failures > 0 {
        eprintln!("bench-smoke: {failures} structural check(s) failed");
        return ExitCode::FAILURE;
    }
    eprintln!(
        "bench-smoke: {} entries structurally sound (no wall-clock assertions)",
        entries.len()
    );
    ExitCode::SUCCESS
}

fn round6(v: f64) -> f64 {
    (v * 1e6).round() / 1e6
}

fn main() -> ExitCode {
    let mut label = "local".to_string();
    let mut jobs = 4usize;
    let mut out: Option<String> = None;
    let mut append: Option<String> = None;
    let mut quick = false;
    let mut smoke = false;
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--label" => match it.next() {
                Some(v) => label = v.clone(),
                None => return usage(),
            },
            "--jobs" => match it.next().and_then(|v| v.parse().ok()) {
                Some(v) if v >= 1 => jobs = v,
                _ => return usage(),
            },
            "--out" => match it.next() {
                Some(v) => out = Some(v.clone()),
                None => return usage(),
            },
            "--append" => match it.next() {
                Some(v) => append = Some(v.clone()),
                None => return usage(),
            },
            "--quick" => quick = true,
            "--smoke" => smoke = true,
            _ => return usage(),
        }
    }
    if out.is_some() && append.is_some() {
        eprintln!("--out and --append are mutually exclusive");
        return usage();
    }
    if smoke {
        return run_smoke();
    }

    // --- fabric microbenchmarks ---------------------------------------
    let suite = if quick {
        fabric::smoke_suite()
    } else {
        fabric::default_suite()
    };
    let mut results: Vec<Json> = Vec::new();
    for b in &suite {
        eprintln!(
            "fabric {:<18} {:>9.0} msgs/s  ({:.0}/s per degree-{}, {} msgs in {:.3}s, {} bytes copied)",
            b.name,
            b.msgs_per_sec,
            b.msgs_per_sec_per_degree,
            b.degree,
            b.messages,
            b.wall_s,
            b.bytes_copied
        );
        results.push(fabric_to_json(b));
    }

    // --- kernel throughput microbenchmarks ----------------------------
    let ksuite = if quick {
        kernels::smoke_suite()
    } else {
        kernels::default_suite()
    };
    for b in &ksuite {
        eprintln!(
            "kernel {:<18} {:>9.2} M{}/s  ({} iters x {} in {:.3}s)",
            b.name,
            b.per_sec / 1e6,
            b.unit,
            b.iters,
            b.n,
            b.wall_s
        );
        results.push(kernel_to_json(b));
    }

    // --- wall-clock timed smoke campaign ------------------------------
    // One smoke sweep takes ~10 ms, far too short to time reliably, so the
    // sweep is repeated and the mean per-sweep wall time reported.
    let grid = CampaignGrid::by_name("smoke").expect("smoke grid is built in");
    let num_runs = grid.expand().len();
    let sweeps = if quick { 3 } else { 40 };
    let t0 = Instant::now();
    for _ in 0..sweeps {
        let report = run_campaign(&grid, jobs);
        assert_eq!(report.runs.len(), num_runs);
    }
    let wall_s = t0.elapsed().as_secs_f64();
    let sweep_ms = 1e3 * wall_s / sweeps as f64;
    eprintln!(
        "campaign_smoke     {sweep_ms:>9.2} ms/sweep  ({sweeps} sweeps x {num_runs} runs, {jobs} jobs)"
    );
    results.push(Json::obj(vec![
        ("name", Json::Str("campaign_smoke".to_string())),
        ("kind", Json::Str("campaign".to_string())),
        ("runs", Json::Num(num_runs as f64)),
        ("sweeps", Json::Num(sweeps as f64)),
        ("jobs", Json::Num(jobs as f64)),
        ("wall_s", Json::Num(round6(wall_s))),
        ("sweep_ms", Json::Num(round6(sweep_ms))),
    ]));

    // --- wall-clock timed checkpointed campaign ------------------------
    // The C/R hot path: the `ckpt` grid exercises coordinated checkpoint
    // commits, allreduce-synchronized boundaries and rollback-recovery
    // replay in every run that carries a plan.
    {
        let grid = CampaignGrid::by_name("ckpt").expect("ckpt grid is built in");
        let num_runs = grid.expand().len();
        let sweeps = if quick { 3 } else { 40 };
        let t0 = Instant::now();
        for _ in 0..sweeps {
            let report = run_campaign(&grid, jobs);
            assert_eq!(report.runs.len(), num_runs);
        }
        let wall_s = t0.elapsed().as_secs_f64();
        let sweep_ms = 1e3 * wall_s / sweeps as f64;
        eprintln!(
            "ckpt_overhead      {sweep_ms:>9.2} ms/sweep  ({sweeps} sweeps x {num_runs} runs, {jobs} jobs)"
        );
        results.push(Json::obj(vec![
            ("name", Json::Str("ckpt_overhead".to_string())),
            ("kind", Json::Str("campaign".to_string())),
            ("runs", Json::Num(num_runs as f64)),
            ("sweeps", Json::Num(sweeps as f64)),
            ("jobs", Json::Num(jobs as f64)),
            ("wall_s", Json::Num(round6(wall_s))),
            ("sweep_ms", Json::Num(round6(sweep_ms))),
        ]));
    }

    // --- sweep-server sustained throughput -----------------------------
    // Queue >= 1000 specs (the smoke axes replicated across seeds, split
    // into 8 concurrent jobs) into a fresh spool with a cold cache, then
    // drain it through `campaign::serve` and report specs/s.  This times
    // the whole service path: file-queue claim, work-stealing execution,
    // cache writes, and streaming JSONL results.
    {
        let base = CampaignGrid::by_name("smoke").expect("smoke grid is built in");
        let mut grid = base.clone();
        grid.seeds = (42u64..42 + 84).collect(); // 12 axes x 84 seeds = 1008 specs
        let specs = grid.expand();
        let num_jobs = 8usize;
        let chunk = specs.len().div_ceil(num_jobs);
        let root = std::env::temp_dir().join(format!("ipr-bench-serve-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&root);
        let spool = Spool::open(root.join("spool")).expect("spool");
        let cache = Arc::new(RunCache::open(root.join("cache")).expect("cache"));
        for (i, part) in specs.chunks(chunk).enumerate() {
            let mut part = part.to_vec();
            for (j, spec) in part.iter_mut().enumerate() {
                spec.index = j;
            }
            spool
                .submit_specs(&format!("bench{i}"), &part)
                .expect("submit");
        }
        let options = ServeOptions {
            workers: jobs,
            drain: true,
            poll: Duration::from_millis(1),
        };
        let t0 = Instant::now();
        let summaries = serve(&spool, &cache, &options).expect("serve");
        let wall_s = t0.elapsed().as_secs_f64();
        let executed: usize = summaries.iter().map(|s| s.executed).sum();
        assert_eq!(executed, specs.len(), "cold serve must execute every spec");
        assert!(summaries.iter().all(|s| s.error.is_none()));
        let sweeps_per_sec = specs.len() as f64 / wall_s;
        eprintln!(
            "serve_throughput   {sweeps_per_sec:>9.0} specs/s  ({} specs in {} jobs, {jobs} workers, {wall_s:.3}s)",
            specs.len(),
            summaries.len(),
        );
        results.push(Json::obj(vec![
            ("name", Json::Str("serve_throughput".to_string())),
            ("kind", Json::Str("serve".to_string())),
            ("queued_specs", Json::Num(specs.len() as f64)),
            ("queued_jobs", Json::Num(summaries.len() as f64)),
            ("workers", Json::Num(jobs as f64)),
            ("wall_s", Json::Num(round6(wall_s))),
            ("sweeps_per_sec", Json::Num(sweeps_per_sec.round())),
        ]));
        let _ = std::fs::remove_dir_all(&root);
    }

    // --- event-engine weak-scaling sweeps ------------------------------
    // Wall-clock per sweep at scales no thread-per-rank run can reach.
    // Each sweep runs once (10k is seconds, 100k tens of seconds, 1M
    // minutes); the quick mode keeps only the 10k point.  The assertions
    // are structural (every rank completes) — never wall-clock.
    let weak_sweeps: Vec<WeakSweep> = if quick {
        vec![WeakSweep::scale_10k()]
    } else {
        vec![
            WeakSweep::scale_10k(),
            WeakSweep::scale_100k(),
            WeakSweep::scale_1m(),
        ]
    };
    for sweep in &weak_sweeps {
        let t0 = Instant::now();
        let report = run_weak_sweep(sweep, 0);
        let wall_s = t0.elapsed().as_secs_f64();
        let procs: usize = report.rows.iter().map(|r| r.procs).sum();
        let messages: u64 = report.rows.iter().map(|r| r.messages).sum();
        assert!(
            report.rows.iter().all(|r| r.completed == r.procs),
            "weak sweep '{}' left incomplete ranks",
            sweep.name
        );
        let name = match sweep.name.as_str() {
            "weak-10k" => "weak_scaling_10k",
            "weak-100k" => "weak_scaling_100k",
            "weak-1m" => "weak_scaling_1m",
            other => other,
        };
        eprintln!(
            "{name:<18} {:>9.2} s/sweep  ({} runs, {procs} physical ranks, {messages} msgs)",
            wall_s,
            report.rows.len(),
        );
        results.push(Json::obj(vec![
            ("name", Json::Str(name.to_string())),
            ("kind", Json::Str("weak".to_string())),
            ("runs", Json::Num(report.rows.len() as f64)),
            ("physical_ranks", Json::Num(procs as f64)),
            ("messages", Json::Num(messages as f64)),
            ("wall_s", Json::Num(round6(wall_s))),
            ("ranks_per_sec", Json::Num((procs as f64 / wall_s).round())),
        ]));
    }

    let date_unix_s = SystemTime::now()
        .duration_since(UNIX_EPOCH)
        .map(|d| d.as_secs())
        .unwrap_or(0);
    let entry = Json::obj(vec![
        ("label", Json::Str(label)),
        ("date_unix_s", Json::Num(date_unix_s as f64)),
        ("results", Json::Arr(results)),
    ]);

    let doc = match &append {
        Some(path) => {
            let mut entries = match std::fs::read_to_string(path) {
                Ok(text) => match Json::parse(&text) {
                    Ok(doc) => match doc.get("entries") {
                        Some(Json::Arr(entries)) => entries.clone(),
                        _ => {
                            eprintln!("{path}: no 'entries' array; refusing to clobber");
                            return ExitCode::FAILURE;
                        }
                    },
                    Err(e) => {
                        eprintln!("{path}: {e}; refusing to clobber");
                        return ExitCode::FAILURE;
                    }
                },
                // Only a genuinely absent file starts a fresh trajectory;
                // any other read failure must not clobber existing history.
                Err(e) if e.kind() == std::io::ErrorKind::NotFound => Vec::new(),
                Err(e) => {
                    eprintln!("cannot read {path}: {e}; refusing to clobber");
                    return ExitCode::FAILURE;
                }
            };
            entries.push(entry);
            Json::obj(vec![
                ("schema", Json::Str(SCHEMA.to_string())),
                ("entries", Json::Arr(entries)),
            ])
        }
        None => Json::obj(vec![
            ("schema", Json::Str(SCHEMA.to_string())),
            ("entries", Json::Arr(vec![entry])),
        ]),
    };

    let text = doc.render();
    match append.as_deref().or(out.as_deref()) {
        Some(path) => {
            if let Err(e) = std::fs::write(path, &text) {
                eprintln!("cannot write {path}: {e}");
                return ExitCode::FAILURE;
            }
            eprintln!("wrote {path}");
        }
        None => println!("{text}"),
    }
    ExitCode::SUCCESS
}

fn usage() -> ExitCode {
    eprintln!(
        "usage: bench-json [--label NAME] [--jobs N] [--out FILE] [--append FILE] [--quick] [--smoke]"
    );
    ExitCode::from(2)
}
