//! Campaign CLI: run sweep grids, list them, diff reports — and serve
//! sweeps as a long-running, cached service.
//!
//! ```text
//! campaign list                        # built-in grids
//! campaign list smoke                  # the runs a grid expands into
//! campaign run --grid smoke --jobs 4 --out smoke.json [--csv smoke.csv]
//! campaign run --grid smoke --cache-dir target/campaign-cache  # reuse cached runs
//! campaign weak list                   # built-in weak-scaling sweeps
//! campaign weak --sweep weak-smoke --workers 4 --out weak.json
//! campaign diff golden/smoke.json smoke.json [--tol 1e-9]
//!
//! campaign serve  --spool DIR [--cache-dir DIR] [--jobs N] [--drain]
//! campaign submit --spool DIR --id ID --grid NAME
//! campaign status --spool DIR
//! campaign results --spool DIR --id ID [--stream]
//! campaign stop   --spool DIR
//! ```
//!
//! `run` writes a deterministic JSON report (byte-identical for any
//! `--jobs` value); `diff` validates the `ipr-report/1` schema tag on both
//! documents and exits non-zero if the candidate diverges from the
//! baseline beyond the tolerance, which is how CI gates on the golden
//! smoke baseline.  The service verbs speak the file-queue protocol of
//! [`campaign::serve`]: submissions land in `DIR/jobs/`, the server claims
//! and executes them through the content-addressed run cache, streams
//! per-run JSONL into `DIR/results/`, and a re-submitted sweep replays
//! cached runs byte-identically while executing only the delta.

use campaign::{
    diff_documents, run_campaign, run_specs_cached, run_weak_sweep, strip_informational,
    CampaignGrid, CampaignReport, Json, RunCache, ServeOptions, Spool, WeakSweep,
};
use std::process::ExitCode;
use std::sync::Arc;

fn usage() -> ExitCode {
    eprintln!(
        "usage:\n  campaign list [GRID]\n  campaign run --grid NAME [--jobs N] [--out FILE] [--csv FILE] [--cache-dir DIR] [--strip-informational]\n  campaign weak list\n  campaign weak [--sweep NAME] [--workers N] [--out FILE] [--strip-informational]\n  campaign diff BASELINE CANDIDATE [--tol REL]\n  campaign serve --spool DIR [--cache-dir DIR] [--jobs N] [--drain] [--poll-ms N]\n  campaign submit --spool DIR --id ID --grid NAME\n  campaign status --spool DIR\n  campaign results --spool DIR --id ID [--stream]\n  campaign stop --spool DIR\n\n--strip-informational drops the non-deterministic wall-clock fields from\nthe JSON report (used when regenerating golden baselines).\n\nbuilt-in grids: {}\nbuilt-in weak sweeps: {}",
        CampaignGrid::builtin_names().join(", "),
        WeakSweep::builtin_names().join(", ")
    );
    ExitCode::from(2)
}

fn cmd_list(args: &[String]) -> ExitCode {
    match args {
        [] => {
            println!("built-in campaign grids:");
            for name in CampaignGrid::builtin_names() {
                let grid = CampaignGrid::by_name(name).expect("builtin");
                println!(
                    "  {name:<12} {} runs at scale {}",
                    grid.expand().len(),
                    grid.scale.name()
                );
            }
            ExitCode::SUCCESS
        }
        [name] => match CampaignGrid::by_name(name) {
            Some(grid) => {
                for spec in grid.expand() {
                    println!("{:>4}  {} ({} procs)", spec.index, spec.id(), spec.procs());
                }
                ExitCode::SUCCESS
            }
            None => {
                eprintln!(
                    "unknown grid '{name}'; expected one of: {}",
                    CampaignGrid::builtin_names().join(", ")
                );
                ExitCode::from(2)
            }
        },
        _ => usage(),
    }
}

fn cmd_run(args: &[String]) -> ExitCode {
    let mut grid_name = "smoke".to_string();
    let mut jobs = 1usize;
    let mut out: Option<String> = None;
    let mut csv: Option<String> = None;
    let mut cache_dir: Option<String> = None;
    let mut strip = false;
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        let mut value = |flag: &str| -> Option<String> {
            let v = it.next().cloned();
            if v.is_none() {
                eprintln!("{flag} needs a value");
            }
            v
        };
        match arg.as_str() {
            "--grid" => match value("--grid") {
                Some(v) => grid_name = v,
                None => return ExitCode::from(2),
            },
            "--jobs" => match value("--jobs").and_then(|v| v.parse().ok()) {
                Some(v) => jobs = v,
                None => {
                    eprintln!("--jobs needs a positive integer");
                    return ExitCode::from(2);
                }
            },
            "--out" => match value("--out") {
                Some(v) => out = Some(v),
                None => return ExitCode::from(2),
            },
            "--csv" => match value("--csv") {
                Some(v) => csv = Some(v),
                None => return ExitCode::from(2),
            },
            "--cache-dir" => match value("--cache-dir") {
                Some(v) => cache_dir = Some(v),
                None => return ExitCode::from(2),
            },
            "--strip-informational" => strip = true,
            other => {
                eprintln!("unknown argument '{other}'");
                return usage();
            }
        }
    }
    let Some(grid) = CampaignGrid::by_name(&grid_name) else {
        eprintln!(
            "unknown grid '{grid_name}'; expected one of: {}",
            CampaignGrid::builtin_names().join(", ")
        );
        return ExitCode::from(2);
    };
    let num_runs = grid.expand().len();
    eprintln!("campaign '{grid_name}': {num_runs} runs, {jobs} job(s)");
    let started = std::time::Instant::now();
    let report = match &cache_dir {
        None => run_campaign(&grid, jobs),
        Some(dir) => {
            let cache = match RunCache::open(dir) {
                Ok(cache) => Arc::new(cache),
                Err(e) => {
                    eprintln!("cannot open cache {dir}: {e}");
                    return ExitCode::FAILURE;
                }
            };
            let specs = grid.expand();
            let batch = run_specs_cached(&specs, jobs, &cache);
            eprintln!("cache: {} hit(s), {} executed", batch.hits, batch.executed);
            CampaignReport {
                campaign: grid.name.clone(),
                scale: grid.scale.name().to_string(),
                runs: batch.runs,
            }
        }
    };
    eprintln!(
        "campaign '{grid_name}' finished in {:.2}s wall-clock",
        started.elapsed().as_secs_f64()
    );
    let mut doc = report.to_json();
    if strip {
        // Golden baselines must not bake in host wall-clock noise.
        strip_informational(&mut doc);
    }
    let json = doc.render();
    match &out {
        Some(path) => {
            if let Err(e) = std::fs::write(path, &json) {
                eprintln!("cannot write {path}: {e}");
                return ExitCode::FAILURE;
            }
            eprintln!("wrote {path}");
        }
        None => print!("{json}"),
    }
    if let Some(path) = &csv {
        if let Err(e) = std::fs::write(path, report.to_csv()) {
            eprintln!("cannot write {path}: {e}");
            return ExitCode::FAILURE;
        }
        eprintln!("wrote {path}");
    }
    ExitCode::SUCCESS
}

fn cmd_weak(args: &[String]) -> ExitCode {
    if args.len() == 1 && args[0] == "list" {
        println!("built-in weak-scaling sweeps:");
        for name in WeakSweep::builtin_names() {
            let sweep = WeakSweep::by_name(name).expect("builtin");
            let specs = sweep.expand();
            let max_procs = specs.iter().map(|s| s.procs()).max().unwrap_or(0);
            println!(
                "  {name:<12} {} runs, up to {max_procs} physical ranks",
                specs.len()
            );
        }
        return ExitCode::SUCCESS;
    }
    let mut sweep_name = "weak-smoke".to_string();
    let mut workers = 0usize;
    let mut out: Option<String> = None;
    let mut strip = false;
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        let mut value = |flag: &str| -> Option<String> {
            let v = it.next().cloned();
            if v.is_none() {
                eprintln!("{flag} needs a value");
            }
            v
        };
        match arg.as_str() {
            "--sweep" => match value("--sweep") {
                Some(v) => sweep_name = v,
                None => return ExitCode::from(2),
            },
            "--workers" => match value("--workers").and_then(|v| v.parse().ok()) {
                Some(v) => workers = v,
                None => {
                    eprintln!("--workers needs a non-negative integer (0 = host parallelism)");
                    return ExitCode::from(2);
                }
            },
            "--out" => match value("--out") {
                Some(v) => out = Some(v),
                None => return ExitCode::from(2),
            },
            "--strip-informational" => strip = true,
            other => {
                eprintln!("unknown argument '{other}'");
                return usage();
            }
        }
    }
    let Some(sweep) = WeakSweep::by_name(&sweep_name) else {
        eprintln!(
            "unknown weak sweep '{sweep_name}'; expected one of: {}",
            WeakSweep::builtin_names().join(", ")
        );
        return ExitCode::from(2);
    };
    let num_runs = sweep.expand().len();
    eprintln!("weak sweep '{sweep_name}': {num_runs} runs, {workers} engine worker(s) (0 = auto)");
    let started = std::time::Instant::now();
    let report = run_weak_sweep(&sweep, workers);
    eprintln!(
        "weak sweep '{sweep_name}' finished in {:.2}s wall-clock",
        started.elapsed().as_secs_f64()
    );
    let mut doc = report.to_json();
    if strip {
        // Golden baselines must not bake in host wall-clock noise.
        strip_informational(&mut doc);
    }
    let json = doc.render();
    match &out {
        Some(path) => {
            if let Err(e) = std::fs::write(path, &json) {
                eprintln!("cannot write {path}: {e}");
                return ExitCode::FAILURE;
            }
            eprintln!("wrote {path}");
            ExitCode::SUCCESS
        }
        None => {
            print!("{json}");
            ExitCode::SUCCESS
        }
    }
}

fn cmd_diff(args: &[String]) -> ExitCode {
    let mut paths = Vec::new();
    let mut tol = 0.0f64;
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--tol" => match it.next().and_then(|v| v.parse::<f64>().ok()) {
                Some(v) if v.is_finite() && v >= 0.0 => tol = v,
                _ => {
                    eprintln!("--tol needs a finite non-negative number");
                    return ExitCode::from(2);
                }
            },
            other => paths.push(other.to_string()),
        }
    }
    let [baseline_path, candidate_path] = paths.as_slice() else {
        return usage();
    };
    let load = |path: &str| -> Result<Json, String> {
        let text = std::fs::read_to_string(path).map_err(|e| format!("cannot read {path}: {e}"))?;
        Json::parse(&text).map_err(|e| format!("{path}: {e}"))
    };
    let (baseline, candidate) = match (load(baseline_path), load(candidate_path)) {
        (Ok(b), Ok(c)) => (b, c),
        (Err(e), _) | (_, Err(e)) => {
            eprintln!("{e}");
            return ExitCode::FAILURE;
        }
    };
    let violations = match diff_documents(&baseline, &candidate, tol) {
        Ok(v) => v,
        Err(e) => {
            // A schema mismatch is a usage error, not a divergence: the two
            // documents are not comparable at all.
            eprintln!("SCHEMA: {e}");
            return ExitCode::from(2);
        }
    };
    if violations.is_empty() {
        println!("OK: {candidate_path} matches {baseline_path} (relative tolerance {tol})");
        ExitCode::SUCCESS
    } else {
        eprintln!(
            "FAIL: {candidate_path} diverges from {baseline_path} ({} violation(s), relative tolerance {tol}):",
            violations.len()
        );
        for v in &violations {
            eprintln!("  {v}");
        }
        ExitCode::FAILURE
    }
}

/// Parses `--spool DIR` plus verb-specific flags shared by the service
/// commands; returns the remaining (flag, value-or-empty) pairs untouched.
fn open_spool(spool: &Option<String>) -> Result<Spool, ExitCode> {
    let Some(dir) = spool else {
        eprintln!("--spool DIR is required");
        return Err(ExitCode::from(2));
    };
    Spool::open(dir).map_err(|e| {
        eprintln!("cannot open spool {dir}: {e}");
        ExitCode::FAILURE
    })
}

fn cmd_serve(args: &[String]) -> ExitCode {
    let mut spool_dir: Option<String> = None;
    let mut cache_dir: Option<String> = None;
    let mut options = ServeOptions::default();
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--spool" => spool_dir = it.next().cloned(),
            "--cache-dir" => cache_dir = it.next().cloned(),
            "--jobs" => match it.next().and_then(|v| v.parse().ok()) {
                Some(v) => options.workers = v,
                None => {
                    eprintln!("--jobs needs a positive integer");
                    return ExitCode::from(2);
                }
            },
            "--poll-ms" => match it.next().and_then(|v| v.parse().ok()) {
                Some(v) => options.poll = std::time::Duration::from_millis(v),
                None => {
                    eprintln!("--poll-ms needs a non-negative integer");
                    return ExitCode::from(2);
                }
            },
            "--drain" => options.drain = true,
            other => {
                eprintln!("unknown argument '{other}'");
                return usage();
            }
        }
    }
    let spool = match open_spool(&spool_dir) {
        Ok(s) => s,
        Err(code) => return code,
    };
    let cache_dir = cache_dir.unwrap_or_else(|| RunCache::default_dir().display().to_string());
    let cache = match RunCache::open(&cache_dir) {
        Ok(cache) => Arc::new(cache),
        Err(e) => {
            eprintln!("cannot open cache {cache_dir}: {e}");
            return ExitCode::FAILURE;
        }
    };
    eprintln!(
        "serving spool {} with {} worker(s), cache {} ({})",
        spool.root().display(),
        options.workers,
        cache_dir,
        if options.drain { "drain" } else { "resident" },
    );
    match campaign::serve(&spool, &cache, &options) {
        Ok(summaries) => {
            for s in &summaries {
                match &s.error {
                    Some(e) => eprintln!("job {}: FAILED: {e}", s.id),
                    None => eprintln!(
                        "job {}: {} run(s), {} executed, {} cache hit(s), {:.1}ms",
                        s.id, s.runs, s.executed, s.cache_hits, s.wall_ms
                    ),
                }
            }
            if summaries.iter().any(|s| s.error.is_some()) {
                ExitCode::FAILURE
            } else {
                ExitCode::SUCCESS
            }
        }
        Err(e) => {
            eprintln!("serve failed: {e}");
            ExitCode::FAILURE
        }
    }
}

fn cmd_submit(args: &[String]) -> ExitCode {
    let mut spool_dir: Option<String> = None;
    let mut id: Option<String> = None;
    let mut grid: Option<String> = None;
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--spool" => spool_dir = it.next().cloned(),
            "--id" => id = it.next().cloned(),
            "--grid" => grid = it.next().cloned(),
            other => {
                eprintln!("unknown argument '{other}'");
                return usage();
            }
        }
    }
    let spool = match open_spool(&spool_dir) {
        Ok(s) => s,
        Err(code) => return code,
    };
    let (Some(id), Some(grid)) = (id, grid) else {
        eprintln!("submit needs --id ID and --grid NAME");
        return ExitCode::from(2);
    };
    if CampaignGrid::by_name(&grid).is_none() {
        eprintln!(
            "unknown grid '{grid}'; expected one of: {}",
            CampaignGrid::builtin_names().join(", ")
        );
        return ExitCode::from(2);
    }
    match spool.submit_grid(&id, &grid) {
        Ok(()) => {
            eprintln!("submitted job '{id}' (grid {grid})");
            ExitCode::SUCCESS
        }
        Err(e) => {
            eprintln!("cannot submit '{id}': {e}");
            ExitCode::FAILURE
        }
    }
}

fn cmd_status(args: &[String]) -> ExitCode {
    let mut spool_dir: Option<String> = None;
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--spool" => spool_dir = it.next().cloned(),
            other => {
                eprintln!("unknown argument '{other}'");
                return usage();
            }
        }
    }
    let spool = match open_spool(&spool_dir) {
        Ok(s) => s,
        Err(code) => return code,
    };
    match spool.status() {
        Ok(status) => {
            println!("queued: {}", status.queued.len());
            for id in &status.queued {
                println!("  {id}");
            }
            println!("active: {}", status.active.len());
            for id in &status.active {
                println!("  {id}");
            }
            println!("done: {}", status.done.len());
            for s in &status.done {
                match &s.error {
                    Some(e) => println!("  {} FAILED: {e}", s.id),
                    None => println!(
                        "  {} {} {} run(s) {} executed {} cache-hit(s)",
                        s.id, s.campaign, s.runs, s.executed, s.cache_hits
                    ),
                }
            }
            ExitCode::SUCCESS
        }
        Err(e) => {
            eprintln!("cannot read spool: {e}");
            ExitCode::FAILURE
        }
    }
}

fn cmd_results(args: &[String]) -> ExitCode {
    let mut spool_dir: Option<String> = None;
    let mut id: Option<String> = None;
    let mut stream = false;
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--spool" => spool_dir = it.next().cloned(),
            "--id" => id = it.next().cloned(),
            "--stream" => stream = true,
            other => {
                eprintln!("unknown argument '{other}'");
                return usage();
            }
        }
    }
    let spool = match open_spool(&spool_dir) {
        Ok(s) => s,
        Err(code) => return code,
    };
    let Some(id) = id else {
        eprintln!("results needs --id ID");
        return ExitCode::from(2);
    };
    let path = if stream {
        spool.stream_path(&id)
    } else {
        spool.result_path(&id)
    };
    match std::fs::read_to_string(&path) {
        Ok(text) => {
            print!("{text}");
            ExitCode::SUCCESS
        }
        Err(e) => {
            eprintln!("no results for '{id}' at {}: {e}", path.display());
            ExitCode::FAILURE
        }
    }
}

fn cmd_stop(args: &[String]) -> ExitCode {
    let mut spool_dir: Option<String> = None;
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--spool" => spool_dir = it.next().cloned(),
            other => {
                eprintln!("unknown argument '{other}'");
                return usage();
            }
        }
    }
    let spool = match open_spool(&spool_dir) {
        Ok(s) => s,
        Err(code) => return code,
    };
    match spool.request_stop() {
        Ok(()) => {
            eprintln!("stop requested");
            ExitCode::SUCCESS
        }
        Err(e) => {
            eprintln!("cannot request stop: {e}");
            ExitCode::FAILURE
        }
    }
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match args.split_first() {
        Some((cmd, rest)) => match cmd.as_str() {
            "list" => cmd_list(rest),
            "run" => cmd_run(rest),
            "weak" => cmd_weak(rest),
            "diff" => cmd_diff(rest),
            "serve" => cmd_serve(rest),
            "submit" => cmd_submit(rest),
            "status" => cmd_status(rest),
            "results" => cmd_results(rest),
            "stop" => cmd_stop(rest),
            _ => usage(),
        },
        None => usage(),
    }
}
