//! Campaign CLI: run sweep grids, list them, and diff reports.
//!
//! ```text
//! campaign list                        # built-in grids
//! campaign list smoke                  # the runs a grid expands into
//! campaign run --grid smoke --jobs 4 --out smoke.json [--csv smoke.csv]
//! campaign weak list                   # built-in weak-scaling sweeps
//! campaign weak --sweep weak-smoke --workers 4 --out weak.json
//! campaign diff golden/smoke.json smoke.json [--tol 1e-9]
//! ```
//!
//! `run` writes a deterministic JSON report (byte-identical for any
//! `--jobs` value); `diff` exits non-zero if the candidate diverges from
//! the baseline beyond the tolerance, which is how CI gates on the golden
//! smoke baseline.

use campaign::{
    diff_reports, run_campaign, run_weak_sweep, strip_informational, CampaignGrid, Json, WeakSweep,
};
use std::process::ExitCode;

fn usage() -> ExitCode {
    eprintln!(
        "usage:\n  campaign list [GRID]\n  campaign run --grid NAME [--jobs N] [--out FILE] [--csv FILE] [--strip-informational]\n  campaign weak list\n  campaign weak [--sweep NAME] [--workers N] [--out FILE] [--strip-informational]\n  campaign diff BASELINE CANDIDATE [--tol REL]\n\n--strip-informational drops the non-deterministic wall-clock fields from\nthe JSON report (used when regenerating golden baselines).\n\nbuilt-in grids: {}\nbuilt-in weak sweeps: {}",
        CampaignGrid::builtin_names().join(", "),
        WeakSweep::builtin_names().join(", ")
    );
    ExitCode::from(2)
}

fn cmd_list(args: &[String]) -> ExitCode {
    match args {
        [] => {
            println!("built-in campaign grids:");
            for name in CampaignGrid::builtin_names() {
                let grid = CampaignGrid::by_name(name).expect("builtin");
                println!(
                    "  {name:<12} {} runs at scale {}",
                    grid.expand().len(),
                    grid.scale.name()
                );
            }
            ExitCode::SUCCESS
        }
        [name] => match CampaignGrid::by_name(name) {
            Some(grid) => {
                for spec in grid.expand() {
                    println!("{:>4}  {} ({} procs)", spec.index, spec.id(), spec.procs());
                }
                ExitCode::SUCCESS
            }
            None => {
                eprintln!(
                    "unknown grid '{name}'; expected one of: {}",
                    CampaignGrid::builtin_names().join(", ")
                );
                ExitCode::from(2)
            }
        },
        _ => usage(),
    }
}

fn cmd_run(args: &[String]) -> ExitCode {
    let mut grid_name = "smoke".to_string();
    let mut jobs = 1usize;
    let mut out: Option<String> = None;
    let mut csv: Option<String> = None;
    let mut strip = false;
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        let mut value = |flag: &str| -> Option<String> {
            let v = it.next().cloned();
            if v.is_none() {
                eprintln!("{flag} needs a value");
            }
            v
        };
        match arg.as_str() {
            "--grid" => match value("--grid") {
                Some(v) => grid_name = v,
                None => return ExitCode::from(2),
            },
            "--jobs" => match value("--jobs").and_then(|v| v.parse().ok()) {
                Some(v) => jobs = v,
                None => {
                    eprintln!("--jobs needs a positive integer");
                    return ExitCode::from(2);
                }
            },
            "--out" => match value("--out") {
                Some(v) => out = Some(v),
                None => return ExitCode::from(2),
            },
            "--csv" => match value("--csv") {
                Some(v) => csv = Some(v),
                None => return ExitCode::from(2),
            },
            "--strip-informational" => strip = true,
            other => {
                eprintln!("unknown argument '{other}'");
                return usage();
            }
        }
    }
    let Some(grid) = CampaignGrid::by_name(&grid_name) else {
        eprintln!(
            "unknown grid '{grid_name}'; expected one of: {}",
            CampaignGrid::builtin_names().join(", ")
        );
        return ExitCode::from(2);
    };
    let num_runs = grid.expand().len();
    eprintln!("campaign '{grid_name}': {num_runs} runs, {jobs} job(s)");
    let started = std::time::Instant::now();
    let report = run_campaign(&grid, jobs);
    eprintln!(
        "campaign '{grid_name}' finished in {:.2}s wall-clock",
        started.elapsed().as_secs_f64()
    );
    let mut doc = report.to_json();
    if strip {
        // Golden baselines must not bake in host wall-clock noise.
        strip_informational(&mut doc);
    }
    let json = doc.render();
    match &out {
        Some(path) => {
            if let Err(e) = std::fs::write(path, &json) {
                eprintln!("cannot write {path}: {e}");
                return ExitCode::FAILURE;
            }
            eprintln!("wrote {path}");
        }
        None => print!("{json}"),
    }
    if let Some(path) = &csv {
        if let Err(e) = std::fs::write(path, report.to_csv()) {
            eprintln!("cannot write {path}: {e}");
            return ExitCode::FAILURE;
        }
        eprintln!("wrote {path}");
    }
    ExitCode::SUCCESS
}

fn cmd_weak(args: &[String]) -> ExitCode {
    if args.len() == 1 && args[0] == "list" {
        println!("built-in weak-scaling sweeps:");
        for name in WeakSweep::builtin_names() {
            let sweep = WeakSweep::by_name(name).expect("builtin");
            let specs = sweep.expand();
            let max_procs = specs.iter().map(|s| s.procs()).max().unwrap_or(0);
            println!(
                "  {name:<12} {} runs, up to {max_procs} physical ranks",
                specs.len()
            );
        }
        return ExitCode::SUCCESS;
    }
    let mut sweep_name = "weak-smoke".to_string();
    let mut workers = 0usize;
    let mut out: Option<String> = None;
    let mut strip = false;
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        let mut value = |flag: &str| -> Option<String> {
            let v = it.next().cloned();
            if v.is_none() {
                eprintln!("{flag} needs a value");
            }
            v
        };
        match arg.as_str() {
            "--sweep" => match value("--sweep") {
                Some(v) => sweep_name = v,
                None => return ExitCode::from(2),
            },
            "--workers" => match value("--workers").and_then(|v| v.parse().ok()) {
                Some(v) => workers = v,
                None => {
                    eprintln!("--workers needs a non-negative integer (0 = host parallelism)");
                    return ExitCode::from(2);
                }
            },
            "--out" => match value("--out") {
                Some(v) => out = Some(v),
                None => return ExitCode::from(2),
            },
            "--strip-informational" => strip = true,
            other => {
                eprintln!("unknown argument '{other}'");
                return usage();
            }
        }
    }
    let Some(sweep) = WeakSweep::by_name(&sweep_name) else {
        eprintln!(
            "unknown weak sweep '{sweep_name}'; expected one of: {}",
            WeakSweep::builtin_names().join(", ")
        );
        return ExitCode::from(2);
    };
    let num_runs = sweep.expand().len();
    eprintln!("weak sweep '{sweep_name}': {num_runs} runs, {workers} engine worker(s) (0 = auto)");
    let started = std::time::Instant::now();
    let report = run_weak_sweep(&sweep, workers);
    eprintln!(
        "weak sweep '{sweep_name}' finished in {:.2}s wall-clock",
        started.elapsed().as_secs_f64()
    );
    let mut doc = report.to_json();
    if strip {
        // Golden baselines must not bake in host wall-clock noise.
        strip_informational(&mut doc);
    }
    let json = doc.render();
    match &out {
        Some(path) => {
            if let Err(e) = std::fs::write(path, &json) {
                eprintln!("cannot write {path}: {e}");
                return ExitCode::FAILURE;
            }
            eprintln!("wrote {path}");
            ExitCode::SUCCESS
        }
        None => {
            print!("{json}");
            ExitCode::SUCCESS
        }
    }
}

fn cmd_diff(args: &[String]) -> ExitCode {
    let mut paths = Vec::new();
    let mut tol = 0.0f64;
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--tol" => match it.next().and_then(|v| v.parse::<f64>().ok()) {
                Some(v) if v.is_finite() && v >= 0.0 => tol = v,
                _ => {
                    eprintln!("--tol needs a finite non-negative number");
                    return ExitCode::from(2);
                }
            },
            other => paths.push(other.to_string()),
        }
    }
    let [baseline_path, candidate_path] = paths.as_slice() else {
        return usage();
    };
    let load = |path: &str| -> Result<Json, String> {
        let text = std::fs::read_to_string(path).map_err(|e| format!("cannot read {path}: {e}"))?;
        Json::parse(&text).map_err(|e| format!("{path}: {e}"))
    };
    let (baseline, candidate) = match (load(baseline_path), load(candidate_path)) {
        (Ok(b), Ok(c)) => (b, c),
        (Err(e), _) | (_, Err(e)) => {
            eprintln!("{e}");
            return ExitCode::FAILURE;
        }
    };
    let violations = diff_reports(&baseline, &candidate, tol);
    if violations.is_empty() {
        println!("OK: {candidate_path} matches {baseline_path} (relative tolerance {tol})");
        ExitCode::SUCCESS
    } else {
        eprintln!(
            "FAIL: {candidate_path} diverges from {baseline_path} ({} violation(s), relative tolerance {tol}):",
            violations.len()
        );
        for v in &violations {
            eprintln!("  {v}");
        }
        ExitCode::FAILURE
    }
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match args.split_first() {
        Some((cmd, rest)) => match cmd.as_str() {
            "list" => cmd_list(rest),
            "run" => cmd_run(rest),
            "weak" => cmd_weak(rest),
            "diff" => cmd_diff(rest),
            _ => usage(),
        },
        None => usage(),
    }
}
