//! Tolerance-aware comparison of two campaign reports.
//!
//! The diff is what turns a checked-in golden JSON into a regression gate:
//! it walks baseline and candidate structurally and requires exact
//! agreement on everything discrete — run ids, labels, seeds, task and
//! crash counts.  The relative tolerance applies only to *metric* fields,
//! and *informational* fields (host wall clocks, dispatch counts) are
//! ignored entirely.  A field's class comes from the versioned report
//! schema ([`crate::report::v1::FIELDS`]); for keys the schema does not
//! declare, the historical spelling heuristic (`*_s` / `verification` ⇒
//! metric, everything else discrete) still applies, and *no* unknown key
//! is ever treated as informational — a new wall-clock-ish field must be
//! declared in the schema before the gate will ignore it.  With the
//! default tolerance of zero the gate is bit-exact, so it also catches any
//! determinism violation.
//!
//! [`diff_documents`] is the schema-checked entry point the CLI uses: it
//! validates the `schema` version tag on both documents and rejects
//! mismatches with a typed [`SchemaError`] instead of silently comparing
//! incompatible reports.  [`diff_reports`] is the raw structural walk.

use crate::json::Json;
use crate::report::v1::{self, FieldClass, SchemaError};

/// One detected divergence, as a human-readable `path: message` line.
pub type Violation = String;

/// The informational field names, re-exported from the v1 schema (see
/// [`v1::INFORMATIONAL_KEYS`]); the schema declaration, not this list, is
/// what the diff consults.
pub use crate::report::v1::INFORMATIONAL_KEYS;

fn is_informational_key(key: &str) -> bool {
    v1::is_informational(key)
}

/// Removes every informational field (recursively) from a JSON document.
/// Used by determinism checks that want byte-identical renderings of two
/// reports modulo the host wall clock.
pub fn strip_informational(json: &mut Json) {
    match json {
        Json::Obj(fields) => {
            fields.retain(|(k, _)| !is_informational_key(k));
            for (_, v) in fields {
                strip_informational(v);
            }
        }
        Json::Arr(items) => {
            for v in items {
                strip_informational(v);
            }
        }
        _ => {}
    }
}

/// True if the field named `key` is a continuous metric (eligible for the
/// relative tolerance).  The schema declaration wins; keys the schema does
/// not know fall back to the spelling heuristic (virtual-time fields end in
/// `_s`; `verification` is a residual).  Everything else — counts, seeds,
/// ids — is discrete and compared exactly.
fn is_metric_key(key: &str) -> bool {
    match v1::field_class(key) {
        Some(class) => class == FieldClass::Metric,
        None => key.ends_with("_s") || key == "verification",
    }
}

/// Compares two reports; an empty result means the candidate matches the
/// baseline within `tol` — a relative tolerance applied to metric fields
/// only (virtual times, keys ending `_s`, and `verification`); everything
/// discrete is compared exactly.
pub fn diff_reports(baseline: &Json, candidate: &Json, tol: f64) -> Vec<Violation> {
    let mut violations = Vec::new();
    diff_value("$", None, baseline, candidate, tol, &mut violations);
    violations
}

/// The schema-checked diff: validates that both documents carry this
/// build's report-schema version tag ([`v1::SCHEMA`]) before comparing
/// them, and rejects missing, unknown, or mismatched tags with a typed
/// [`SchemaError`].  This is the entry point `campaign diff` uses; tools
/// comparing raw fragments can still call [`diff_reports`] directly.
pub fn diff_documents(
    baseline: &Json,
    candidate: &Json,
    tol: f64,
) -> Result<Vec<Violation>, SchemaError> {
    let base_tag = v1::document_schema(baseline).map(str::to_string);
    let cand_tag = v1::document_schema(candidate).map(str::to_string);
    if let (Some(b), Some(c)) = (&base_tag, &cand_tag) {
        if b != c {
            return Err(SchemaError::Mismatch {
                baseline: b.clone(),
                candidate: c.clone(),
            });
        }
    }
    v1::check_envelope(baseline, "baseline")?;
    v1::check_envelope(candidate, "candidate")?;
    Ok(diff_reports(baseline, candidate, tol))
}

fn type_name(v: &Json) -> &'static str {
    match v {
        Json::Null => "null",
        Json::Bool(_) => "bool",
        Json::Num(_) => "number",
        Json::Str(_) => "string",
        Json::Arr(_) => "array",
        Json::Obj(_) => "object",
    }
}

/// Label used in paths for a run entry, if the element is an object with an
/// `id` field (makes violations readable: `$.runs[hpccg-...]` instead of
/// `$.runs[3]`).
fn element_label(v: &Json, index: usize) -> String {
    v.get("id")
        .and_then(Json::as_str)
        .map_or_else(|| index.to_string(), str::to_string)
}

fn diff_value(
    path: &str,
    key: Option<&str>,
    a: &Json,
    b: &Json,
    tol: f64,
    out: &mut Vec<Violation>,
) {
    match (a, b) {
        (Json::Num(x), Json::Num(y)) => {
            if key.is_some_and(is_metric_key) {
                // Strictly relative: the allowed drift scales with the value
                // itself, so small metrics (sub-second times, residuals) are
                // not silently ungated.  A baseline of exactly 0 therefore
                // requires an exact 0 in the candidate.
                let scale = x.abs().max(y.abs());
                if (x - y).abs() > tol * scale {
                    out.push(format!(
                        "{path}: expected {x}, got {y} (relative tolerance {tol})"
                    ));
                }
            } else if x != y {
                out.push(format!("{path}: expected {x}, got {y}"));
            }
        }
        (Json::Str(x), Json::Str(y)) => {
            if x != y {
                out.push(format!("{path}: expected \"{x}\", got \"{y}\""));
            }
        }
        (Json::Bool(x), Json::Bool(y)) => {
            if x != y {
                out.push(format!("{path}: expected {x}, got {y}"));
            }
        }
        (Json::Null, Json::Null) => {}
        (Json::Arr(xs), Json::Arr(ys)) => {
            if xs.len() != ys.len() {
                out.push(format!(
                    "{path}: expected {} elements, got {}",
                    xs.len(),
                    ys.len()
                ));
            }
            for (i, (x, y)) in xs.iter().zip(ys.iter()).enumerate() {
                let label = element_label(x, i);
                // Elements inherit the array's key, so an array of metric
                // values keeps its tolerance.
                diff_value(&format!("{path}[{label}]"), key, x, y, tol, out);
            }
        }
        (Json::Obj(xs), Json::Obj(ys)) => {
            for (k, x) in xs {
                if is_informational_key(k) {
                    continue;
                }
                match ys.iter().find(|(yk, _)| yk == k) {
                    Some((_, y)) => diff_value(&format!("{path}.{k}"), Some(k), x, y, tol, out),
                    None => out.push(format!("{path}.{k}: missing from candidate")),
                }
            }
            for (k, _) in ys {
                if is_informational_key(k) {
                    continue;
                }
                if !xs.iter().any(|(xk, _)| xk == k) {
                    out.push(format!("{path}.{k}: unexpected field in candidate"));
                }
            }
        }
        _ => out.push(format!(
            "{path}: expected {}, got {}",
            type_name(a),
            type_name(b)
        )),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn j(text: &str) -> Json {
        Json::parse(text).unwrap()
    }

    #[test]
    fn identical_documents_have_no_violations() {
        let doc = j(r#"{"a": 1, "b": [1.5, {"id": "x", "section_s": 0.25}]}"#);
        assert!(diff_reports(&doc, &doc, 0.0).is_empty());
    }

    #[test]
    fn discrete_fields_are_compared_exactly_even_with_tolerance() {
        let a = j(r#"{"tasks_executed": 64}"#);
        let b = j(r#"{"tasks_executed": 65}"#);
        let v = diff_reports(&a, &b, 0.5);
        assert_eq!(v.len(), 1);
        assert!(v[0].contains("$.tasks_executed"), "{v:?}");
    }

    #[test]
    fn metric_fields_respect_the_relative_tolerance() {
        let a = j(r#"{"makespan_s": 1.0004, "verification": 2.0}"#);
        let b = j(r#"{"makespan_s": 1.0006, "verification": 2.001}"#);
        assert!(diff_reports(&a, &b, 1e-3).is_empty());
        assert_eq!(diff_reports(&a, &b, 1e-7).len(), 2);
        // Zero tolerance is an exact gate.
        assert_eq!(diff_reports(&a, &b, 0.0).len(), 2);
        assert!(diff_reports(&a, &a, 0.0).is_empty());
    }

    #[test]
    fn small_metrics_are_not_ungated_by_the_tolerance() {
        // The tolerance is strictly relative: a residual degrading from 1e-8
        // to 9e-4 is five orders of magnitude of drift and must fail even a
        // loose gate, and a zero baseline admits only an exact zero.
        let a = j(r#"{"verification": 1e-8, "update_drain_s": 0}"#);
        let b = j(r#"{"verification": 9e-4, "update_drain_s": 1e-9}"#);
        assert_eq!(diff_reports(&a, &b, 1e-3).len(), 2);
        assert!(diff_reports(&a, &a, 1e-3).is_empty());
    }

    #[test]
    fn metric_fields_get_tolerance_even_on_whole_number_values() {
        // A virtual time that happens to land on an integer must still be
        // compared with the tolerance, not exactly.
        let a = j(r#"{"makespan_s": 10}"#);
        let b = j(r#"{"makespan_s": 11}"#);
        assert!(diff_reports(&a, &b, 0.1).is_empty());
        assert_eq!(diff_reports(&a, &b, 1e-3).len(), 1);
    }

    #[test]
    fn structural_divergences_are_reported_with_paths() {
        let a = j(r#"{"runs": [{"id": "x", "n": 1}, {"id": "y", "n": 2}]}"#);
        let b = j(r#"{"runs": [{"id": "x", "n": 1}]}"#);
        let v = diff_reports(&a, &b, 0.0);
        assert!(v.iter().any(|m| m.contains("$.runs: expected 2 elements")));

        let c = j(r#"{"runs": [{"id": "x", "n": 1}, {"id": "z", "n": 2}]}"#);
        let v = diff_reports(&a, &c, 0.0);
        assert!(v.iter().any(|m| m.contains("$.runs[y].id")), "{v:?}");

        let d = j(r#"{"runs": "oops"}"#);
        let v = diff_reports(&a, &d, 0.0);
        assert!(v.iter().any(|m| m.contains("expected array, got string")));
    }

    #[test]
    fn informational_fields_are_ignored_entirely() {
        // Different values: ignored.
        let a = j(r#"{"makespan_s": 1.0, "wall_time_ms": 12.0}"#);
        let b = j(r#"{"makespan_s": 1.0, "wall_time_ms": 99.0}"#);
        assert!(diff_reports(&a, &b, 0.0).is_empty());
        // Present on one side only (golden predates the field): ignored in
        // both directions.
        let without = j(r#"{"makespan_s": 1.0}"#);
        assert!(diff_reports(&without, &a, 0.0).is_empty());
        assert!(diff_reports(&a, &without, 0.0).is_empty());
        // Nested inside runs too.
        let ra = j(r#"{"runs": [{"id": "x", "n": 1, "wall_time_ms": 3.5}]}"#);
        let rb = j(r#"{"runs": [{"id": "x", "n": 1}]}"#);
        assert!(diff_reports(&ra, &rb, 0.0).is_empty());
        // And stripping produces byte-identical renderings.
        let mut stripped = ra.clone();
        strip_informational(&mut stripped);
        assert_eq!(stripped.render(), rb.render());
        // The non-informational fields are still gated.
        let rc = j(r#"{"runs": [{"id": "x", "n": 2}]}"#);
        assert!(!diff_reports(&ra, &rc, 0.0).is_empty());
    }

    #[test]
    fn missing_and_extra_fields_are_reported() {
        let a = j(r#"{"x": 1, "y": 2}"#);
        let b = j(r#"{"x": 1, "z": 3}"#);
        let v = diff_reports(&a, &b, 0.0);
        assert!(v.iter().any(|m| m.contains("$.y: missing")));
        assert!(v.iter().any(|m| m.contains("$.z: unexpected")));
    }

    #[test]
    fn unknown_keys_are_never_informational() {
        // A wall-clock-ish field that is *not* declared in the schema is
        // still gated: only a schema declaration can make the diff ignore
        // a field.
        let a = j(r#"{"elapsed_wall_ms": 12.0}"#);
        let b = j(r#"{"elapsed_wall_ms": 99.0}"#);
        assert_eq!(diff_reports(&a, &b, 0.0).len(), 1);
    }

    #[test]
    fn schema_checked_diff_rejects_bad_envelopes() {
        let good = j(r#"{"schema": "ipr-report/1", "runs": []}"#);
        let other = j(r#"{"schema": "ipr-report/2", "runs": []}"#);
        let untagged = j(r#"{"runs": []}"#);

        assert_eq!(diff_documents(&good, &good, 0.0), Ok(vec![]));
        assert_eq!(
            diff_documents(&good, &other, 0.0),
            Err(SchemaError::Mismatch {
                baseline: "ipr-report/1".into(),
                candidate: "ipr-report/2".into()
            })
        );
        assert_eq!(
            diff_documents(&untagged, &good, 0.0),
            Err(SchemaError::Missing {
                which: "baseline".into()
            })
        );
        assert_eq!(
            diff_documents(&good, &untagged, 0.0),
            Err(SchemaError::Missing {
                which: "candidate".into()
            })
        );
        // Two documents that agree on a *future* schema are still rejected
        // by this build (unknown version), not silently compared.
        assert_eq!(
            diff_documents(&other, &other, 0.0),
            Err(SchemaError::Unknown {
                which: "baseline".into(),
                found: "ipr-report/2".into()
            })
        );
    }
}
