//! Machine-readable campaign reports (JSON + CSV).

use crate::json::Json;
use crate::runner::RunResult;

/// The aggregated result of one campaign execution.
#[derive(Debug, Clone, PartialEq)]
pub struct CampaignReport {
    /// Grid name.
    pub campaign: String,
    /// Scale preset name.
    pub scale: String,
    /// Per-run results in grid order.
    pub runs: Vec<RunResult>,
}

impl CampaignReport {
    /// The report as a JSON document.  Rendering [`Json::render`] of this
    /// value is byte-deterministic, which is what the golden-baseline gate
    /// compares against.
    pub fn to_json(&self) -> Json {
        Json::obj(vec![
            ("campaign", Json::Str(self.campaign.clone())),
            ("scale", Json::Str(self.scale.clone())),
            (
                "runs",
                Json::Arr(self.runs.iter().map(run_to_json).collect()),
            ),
        ])
    }

    /// The report as CSV (header + one row per run), deterministic.
    pub fn to_csv(&self) -> String {
        let mut out = String::from(
            "id,app,scale,mode,scheduler,failure,seed,procs,completed,crashed,errored,\
             failure_events,scheduled_crashes,makespan_s,section_s,update_drain_s,\
             tasks_executed,tasks_received,tasks_reexecuted,update_bytes_sent,verification,\
             wall_time_ms\n",
        );
        for r in &self.runs {
            out.push_str(&format!(
                "{},{},{},{},{},{},{},{},{},{},{},{},{},{},{},{},{},{},{},{},{},{}\n",
                r.id,
                r.app,
                r.scale,
                r.mode,
                r.scheduler,
                r.failure,
                r.seed,
                r.procs,
                r.completed,
                r.crashed,
                r.errored,
                r.failure_events,
                r.scheduled_crashes,
                r.makespan_s,
                r.section_s,
                r.update_drain_s,
                r.tasks_executed,
                r.tasks_received,
                r.tasks_reexecuted,
                r.update_bytes_sent,
                r.verification,
                r.wall_time_ms,
            ));
        }
        out
    }
}

fn run_to_json(r: &RunResult) -> Json {
    Json::obj(vec![
        ("id", Json::Str(r.id.clone())),
        ("app", Json::Str(r.app.clone())),
        ("scale", Json::Str(r.scale.clone())),
        ("mode", Json::Str(r.mode.clone())),
        ("scheduler", Json::Str(r.scheduler.clone())),
        ("failure", Json::Str(r.failure.clone())),
        ("seed", Json::Num(r.seed as f64)),
        ("procs", Json::Num(r.procs as f64)),
        ("completed", Json::Num(r.completed as f64)),
        ("crashed", Json::Num(r.crashed as f64)),
        ("errored", Json::Num(r.errored as f64)),
        ("failure_events", Json::Num(r.failure_events as f64)),
        ("scheduled_crashes", Json::Num(r.scheduled_crashes as f64)),
        ("makespan_s", Json::Num(r.makespan_s)),
        ("section_s", Json::Num(r.section_s)),
        ("update_drain_s", Json::Num(r.update_drain_s)),
        ("tasks_executed", Json::Num(r.tasks_executed as f64)),
        ("tasks_received", Json::Num(r.tasks_received as f64)),
        ("tasks_reexecuted", Json::Num(r.tasks_reexecuted as f64)),
        ("update_bytes_sent", Json::Num(r.update_bytes_sent as f64)),
        ("verification", Json::Num(r.verification)),
        // Informational (host wall clock, non-deterministic): excluded from
        // the tolerance diff, see `crate::diff::INFORMATIONAL_KEYS`.
        ("wall_time_ms", Json::Num(r.wall_time_ms)),
    ])
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> CampaignReport {
        CampaignReport {
            campaign: "smoke".into(),
            scale: "tiny".into(),
            runs: vec![RunResult {
                id: "hpccg-tiny-native-static-block-none-s42".into(),
                app: "hpccg".into(),
                scale: "tiny".into(),
                mode: "native".into(),
                scheduler: "static-block".into(),
                failure: "none".into(),
                seed: 42,
                procs: 2,
                completed: 2,
                crashed: 0,
                errored: 0,
                failure_events: 0,
                scheduled_crashes: 0,
                makespan_s: 1.5,
                section_s: 0.75,
                update_drain_s: 0.25,
                tasks_executed: 64,
                tasks_received: 0,
                tasks_reexecuted: 0,
                update_bytes_sent: 0,
                verification: 1e-6,
                wall_time_ms: 12.5,
            }],
        }
    }

    #[test]
    fn json_rendering_is_parsable_and_stable() {
        let report = sample();
        let text = report.to_json().render();
        let parsed = Json::parse(&text).unwrap();
        assert_eq!(parsed.get("campaign").and_then(Json::as_str), Some("smoke"));
        let runs = parsed.get("runs").and_then(Json::as_arr).unwrap();
        assert_eq!(runs.len(), 1);
        assert_eq!(runs[0].get("procs").and_then(Json::as_f64), Some(2.0));
        assert_eq!(parsed.render(), text);
    }

    #[test]
    fn csv_has_a_row_per_run() {
        let csv = sample().to_csv();
        let lines: Vec<&str> = csv.lines().collect();
        assert_eq!(lines.len(), 2);
        assert!(lines[0].starts_with("id,app,scale,"));
        assert!(lines[1].starts_with("hpccg-tiny-native-static-block-none-s42,hpccg,"));
    }
}
